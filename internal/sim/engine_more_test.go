package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// Regression: Stop on a timer whose event already executed must report
// false — the callback has run, there is nothing left to cancel. The old
// heap never marked executed events dead, so Stop lied.
func TestTimerStopAfterRun(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tm := e.Schedule(time.Millisecond, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event did not run")
	}
	if tm.Stop() {
		t.Error("Stop after the event executed should report false")
	}
}

// Stop from inside the callback itself reports false: the callback is no
// longer pending at that point.
func TestTimerStopDuringCallback(t *testing.T) {
	e := NewEngine(1)
	var tm Timer
	var stopped bool
	tm = e.Schedule(time.Millisecond, func() { stopped = tm.Stop() })
	e.Run()
	if stopped {
		t.Error("Stop from inside the running callback should report false")
	}
}

// A slot is recycled after execution; a stale Timer for its previous
// occupant must not cancel the new event.
func TestTimerStaleHandleAfterReuse(t *testing.T) {
	e := NewEngine(1)
	first := e.Schedule(time.Millisecond, func() {})
	e.Run()
	ran := false
	e.Schedule(time.Millisecond, func() { ran = true }) // reuses the slot
	if first.Stop() {
		t.Error("stale timer stopped a recycled slot's new event")
	}
	e.Run()
	if !ran {
		t.Error("new event in recycled slot did not run")
	}
}

// Timers handed out before a Reset must not cancel events scheduled after
// it.
func TestTimerInvalidatedByReset(t *testing.T) {
	e := NewEngine(1)
	old := e.Schedule(time.Millisecond, func() {})
	e.Reset()
	ran := false
	e.Schedule(time.Millisecond, func() { ran = true })
	if old.Stop() {
		t.Error("pre-Reset timer cancelled a post-Reset event")
	}
	e.Run()
	if !ran {
		t.Error("post-Reset event did not run")
	}
}

func TestZeroTimerStop(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Error("zero Timer Stop should report false")
	}
}

func TestScheduleCall(t *testing.T) {
	e := NewEngine(1)
	type pair struct{ x, y int }
	var got []pair
	fn := func(a, b any) { got = append(got, pair{*a.(*int), *b.(*int)}) }
	one, two, three := 1, 2, 3
	e.ScheduleCall(3*time.Millisecond, fn, &three, &one)
	e.ScheduleCall(time.Millisecond, fn, &one, &two)
	tm := e.ScheduleCall(2*time.Millisecond, fn, &two, &three)
	if !tm.Stop() {
		t.Fatal("Stop on pending ScheduleCall event should report true")
	}
	e.Run()
	want := []pair{{1, 2}, {3, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Property: an engine that ran an arbitrary prefix of work and was Reset
// is indistinguishable from a fresh NewEngine with the same seed — same
// event order, same clock readings, same Rand stream.
func TestPropertyResetIndistinguishableFromNew(t *testing.T) {
	script := func(e *Engine) []int64 {
		var out []int64
		for i := 0; i < 40; i++ {
			d := time.Duration(e.Rand().Intn(500)) * time.Microsecond
			e.Schedule(d, func() {
				out = append(out, int64(e.Now()), e.Rand().Int63n(1000))
			})
		}
		e.Run()
		return out
	}
	f := func(seed int64, preDelays []uint16, runFor uint16) bool {
		fresh := NewEngine(seed)
		want := script(fresh)

		reset := NewEngine(seed)
		for _, d := range preDelays {
			reset.Schedule(time.Duration(d)*time.Microsecond, func() {
				reset.Rand().Int63() // consume randomness pre-Reset
			})
		}
		reset.RunFor(time.Duration(runFor) * time.Microsecond) // partial run
		reset.Reset()
		got := script(reset)

		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Mass-cancelled timers must not grow the pending queue unboundedly: the
// heap compacts once dead entries outnumber live ones.
func TestMassCancelCompaction(t *testing.T) {
	e := NewEngine(1)
	const n = 100_000
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, e.Schedule(time.Duration(i)*time.Microsecond, func() {}))
	}
	keep := 5
	for _, tm := range timers[keep:] {
		if !tm.Stop() {
			t.Fatal("Stop on a pending timer should report true")
		}
	}
	if got := e.Pending(); got != keep {
		t.Fatalf("Pending = %d, want %d", got, keep)
	}
	// Compaction keeps the heap proportional to the live events, not the
	// cancelled ones.
	if len(e.heap) > 2*keep+64 {
		t.Fatalf("heap holds %d entries for %d live events; compaction failed", len(e.heap), keep)
	}
	ran := 0
	e.Schedule(time.Hour, func() {})
	e.RunUntil(2*time.Hour, func() bool { ran = int(e.Executed()); return false })
	if ran != keep+1 {
		t.Fatalf("executed %d events, want %d survivors", ran, keep+1)
	}
}

// Steady-state scheduling allocates nothing: slots and heap capacity are
// recycled, and ScheduleCall carries its arguments without a closure.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	fn := func(a, b any) {}
	x := 0
	// Warm the arena.
	for i := 0; i < 64; i++ {
		e.ScheduleCall(time.Millisecond, fn, &x, &x)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.ScheduleCall(time.Millisecond, fn, &x, &x)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state ScheduleCall+Run allocates %.1f objects per run, want 0", allocs)
	}
}
