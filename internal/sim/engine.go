// Package sim provides a deterministic discrete-event simulation engine.
//
// Everything in the reproduction — packet delivery, middlebox injection
// races, DNS lookups, TCP timeouts — is scheduled on a single Engine. The
// engine is strictly single-threaded: callbacks run inside Run/RunUntil on
// the caller's goroutine, which makes every experiment bit-for-bit
// reproducible for a given seed.
//
// The scheduler is built for the packet hot path: events are stored by
// value in an arena (a slot-addressed slice that is recycled, never
// freed), the priority queue is a binary heap of arena indices, and
// cancellation hands out generation-counted Timer values instead of
// pinning per-event allocations. Steady state, Schedule and ScheduleCall
// allocate nothing: scheduling a packet hop costs a slot reuse and a heap
// sift. Cancelled events die lazily — they are skipped when popped, and
// when more than half the queue is dead the heap compacts in one pass —
// so mass-cancelled timers cannot grow Pending memory unboundedly.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/obs"
)

// Time is a virtual timestamp measured from the start of the simulation.
type Time time.Duration

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback, stored by value in the engine's arena.
// Exactly one of fn and fn2 is set; fn2 carries its two arguments inline
// so hot-path callers can schedule without building a closure.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events run FIFO
	fn   func()
	fn2  func(a, b any)
	a, b any
	// gen counts the slot's reuses; a Timer whose generation no longer
	// matches refers to an event that already ran, was cancelled, or was
	// dropped by Reset.
	gen  uint32
	dead bool
}

// Timer is a handle to a scheduled event; Stop cancels it. The zero Timer
// is valid and Stop on it reports false.
type Timer struct {
	eng *Engine
	idx int32
	gen uint32
}

// Stop cancels the timer. It reports whether the callback had not yet run:
// false when the event already executed, was already stopped, or was
// dropped by an engine Reset.
func (t Timer) Stop() bool {
	e := t.eng
	if e == nil || int(t.idx) >= len(e.arena) {
		return false
	}
	ev := &e.arena[t.idx]
	if ev.gen != t.gen || ev.dead {
		return false
	}
	ev.dead = true
	ev.fn, ev.fn2, ev.a, ev.b = nil, nil, nil, nil
	e.deadCount++
	e.cCancelled.Inc()
	e.maybeCompact()
	return true
}

// Engine is a deterministic discrete-event scheduler with a virtual clock
// and a seeded random source. The zero value is not usable; construct with
// NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	seed   int64
	rng    *rand.Rand
	events uint64 // total events executed, for instrumentation

	arena []event // slot-addressed event storage, recycled via free
	free  []int32 // released arena slots
	heap  []int32 // binary heap of arena indices ordered by (at, seq)
	// deadCount is how many cancelled events still sit in heap awaiting
	// lazy removal.
	deadCount int

	// reg is the engine-owned telemetry registry — the per-world registry
	// every component built on this engine resolves instruments from. Its
	// contents count virtual events only, so they are as deterministic as
	// the event order itself: Reset rewinds them with the clock, and a
	// reset world's counters are byte-identical to a fresh build's.
	reg        *obs.Registry
	cScheduled *obs.Counter
	cRun       *obs.Counter
	cCancelled *obs.Counter
	cRecycled  *obs.Counter
	gHeapDepth *obs.Gauge
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	e := &Engine{seed: seed, rng: rand.New(rand.NewSource(seed))}
	e.reg = obs.NewRegistry()
	e.bindObs()
	return e
}

// bindObs resolves the engine's own instruments from its registry. With
// reg nil (StripTelemetry) every instrument comes back nil, and nil
// instruments are no-ops.
func (e *Engine) bindObs() {
	e.cScheduled = e.reg.Counter("sim_events_scheduled_total")
	e.cRun = e.reg.Counter("sim_events_run_total")
	e.cCancelled = e.reg.Counter("sim_events_cancelled_total")
	e.cRecycled = e.reg.Counter("sim_arena_recycles_total")
	e.gHeapDepth = e.reg.Gauge("sim_heap_depth")
}

// Obs returns the engine-owned per-world telemetry registry. Components
// built on the engine (network, middleboxes, traffic generators) resolve
// their instruments here at construction time, so World.Reset — which
// resets the engine — rewinds every world metric in one place. Returns
// nil after StripTelemetry.
func (e *Engine) Obs() *obs.Registry { return e.reg }

// StripTelemetry discards the engine's registry and rebinds every
// instrument to nil, turning the telemetry layer into no-ops. Call it
// right after NewEngine, before wiring components, to measure or run
// without instrumentation; components built earlier keep counting into
// the discarded registry.
func (e *Engine) StripTelemetry() {
	e.reg = nil
	e.bindObs()
}

// Reset restores the engine to its just-constructed state: the clock back
// at zero, every pending event dropped, and the random source reseeded
// with the original seed. Components built on the engine keep their
// pointers to it, so a world can be rewound without rebuilding — the
// foundation of campaign world pooling. After Reset the engine is
// indistinguishable from NewEngine(seed), which is what makes a reset
// world produce byte-identical measurements to a freshly built one. The
// arena keeps its capacity; slot generations advance so Timers from
// before the reset can no longer cancel anything.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.events = 0
	e.deadCount = 0
	e.heap = e.heap[:0]
	e.free = e.free[:0]
	for i := range e.arena {
		ev := &e.arena[i]
		ev.gen++
		ev.fn, ev.fn2, ev.a, ev.b = nil, nil, nil, nil
		ev.dead = false
		e.free = append(e.free, int32(i))
	}
	e.rng = rand.New(rand.NewSource(e.seed))
	e.reg.Reset()
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of scheduled (not yet executed, not
// cancelled) events.
func (e *Engine) Pending() int { return len(e.heap) - e.deadCount }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.events }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. The returned Timer can cancel the event.
//
//repolint:hotpath
func (e *Engine) Schedule(d Duration, fn func()) Timer {
	idx := e.alloc(d)
	e.arena[idx].fn = fn
	return Timer{eng: e, idx: idx, gen: e.arena[idx].gen}
}

// ScheduleCall runs fn(a, b) after delay d of virtual time, storing the
// two arguments inline in the event so the caller needs no per-event
// closure. With a long-lived fn and pointer-shaped arguments a scheduled
// packet hop allocates nothing.
//
//repolint:hotpath
func (e *Engine) ScheduleCall(d Duration, fn func(a, b any), a, b any) Timer {
	idx := e.alloc(d)
	ev := &e.arena[idx]
	ev.fn2, ev.a, ev.b = fn, a, b
	return Timer{eng: e, idx: idx, gen: ev.gen}
}

// alloc reserves an arena slot for an event at now+d and pushes it on the
// heap. The slot's callback fields are zero; callers fill them.
//
//repolint:hotpath
func (e *Engine) alloc(d Duration) int32 {
	if d < 0 {
		d = 0
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{})
		idx = int32(len(e.arena) - 1)
	}
	ev := &e.arena[idx]
	ev.at = e.now.Add(d)
	ev.seq = e.seq
	e.seq++
	e.heapPush(idx)
	e.cScheduled.Inc()
	e.gHeapDepth.Set(int64(len(e.heap)))
	return idx
}

// release recycles an arena slot, invalidating outstanding Timers for it.
//
//repolint:hotpath
func (e *Engine) release(idx int32) {
	ev := &e.arena[idx]
	ev.gen++
	ev.fn, ev.fn2, ev.a, ev.b = nil, nil, nil, nil
	ev.dead = false
	e.free = append(e.free, idx)
	e.cRecycled.Inc()
}

// less orders heap entries by (at, seq); seq is unique so the order is
// total and execution deterministic.
func (e *Engine) less(x, y int32) bool {
	a, b := &e.arena[x], &e.arena[y]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// heapPop removes and returns the smallest entry. The heap must be
// non-empty.
func (e *Engine) heapPop() int32 {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	e.siftDown(0)
	return top
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && e.less(h[r], h[l]) {
			small = r
		}
		if !e.less(h[small], h[i]) {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// maybeCompact removes dead entries from the heap in one pass once they
// outnumber the live ones, bounding the memory a burst of cancellations
// can pin. Small heaps are left to lazy pop-time cleanup.
func (e *Engine) maybeCompact() {
	if e.deadCount*2 <= len(e.heap) || len(e.heap) < 64 {
		return
	}
	live := e.heap[:0]
	for _, idx := range e.heap {
		if e.arena[idx].dead {
			e.release(idx)
		} else {
			live = append(live, idx)
		}
	}
	e.heap = live
	e.deadCount = 0
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// peek returns the time of the earliest live event, pruning dead entries
// off the top of the heap as it goes.
func (e *Engine) peek() (Time, bool) {
	for len(e.heap) > 0 {
		idx := e.heap[0]
		if !e.arena[idx].dead {
			return e.arena[idx].at, true
		}
		e.heapPop()
		e.deadCount--
		e.release(idx)
	}
	return 0, false
}

// NextAt returns the virtual time of the earliest pending event, or false
// when the queue is empty. Pump loops use it to size run slices without
// stepping blind through empty stretches of virtual time.
func (e *Engine) NextAt() (Time, bool) { return e.peek() }

// step executes the earliest pending event. It reports false when the queue
// is empty.
//
//repolint:hotpath
func (e *Engine) step() bool {
	for len(e.heap) > 0 {
		idx := e.heapPop()
		ev := &e.arena[idx]
		if ev.dead {
			e.deadCount--
			e.release(idx)
			continue
		}
		at := ev.at
		fn, fn2, a, b := ev.fn, ev.fn2, ev.a, ev.b
		// Release before running: the callback may schedule (growing the
		// arena) and a Stop on this event's Timer must now report false —
		// the callback is no longer pending.
		e.release(idx)
		e.now = at
		e.events++
		e.cRun.Inc()
		e.gHeapDepth.Set(int64(len(e.heap)))
		if fn != nil {
			fn()
		} else {
			fn2(a, b)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.step() {
	}
}

// ErrDeadline is returned by RunUntil when the condition did not become true
// before the virtual deadline or queue exhaustion.
var ErrDeadline = fmt.Errorf("sim: deadline exceeded")

// RunUntil executes events until cond() reports true, returning nil, or
// until the virtual clock passes the deadline (now+timeout) or the queue
// drains, returning ErrDeadline. cond is checked after every event.
func (e *Engine) RunUntil(timeout Duration, cond func() bool) error {
	deadline := e.now.Add(timeout)
	if cond() {
		return nil
	}
	for {
		at, ok := e.peek()
		if !ok || at > deadline {
			break
		}
		if !e.step() {
			break
		}
		if cond() {
			return nil
		}
	}
	// Advance the clock to the deadline so successive timeouts accumulate
	// the way wall-clock retries would.
	if e.now < deadline {
		e.now = deadline
	}
	return ErrDeadline
}

// RunFor executes events for d of virtual time and then returns, leaving
// later events queued. The clock always ends at now+d.
func (e *Engine) RunFor(d Duration) {
	deadline := e.now.Add(d)
	for {
		at, ok := e.peek()
		if !ok || at > deadline {
			break
		}
		if !e.step() {
			break
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}
