// Package sim provides a deterministic discrete-event simulation engine.
//
// Everything in the reproduction — packet delivery, middlebox injection
// races, DNS lookups, TCP timeouts — is scheduled on a single Engine. The
// engine is strictly single-threaded: callbacks run inside Run/RunUntil on
// the caller's goroutine, which makes every experiment bit-for-bit
// reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp measured from the start of the simulation.
type Time time.Duration

// Duration aliases time.Duration for readability at call sites.
type Duration = time.Duration

func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break so equal-time events run FIFO
	fn   func()
	dead bool
	idx  int
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the callback had not yet run.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// Engine is a deterministic discrete-event scheduler with a virtual clock
// and a seeded random source. The zero value is not usable; construct with
// NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	seed   int64
	queue  eventHeap
	rng    *rand.Rand
	events uint64 // total events executed, for instrumentation
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Reset restores the engine to its just-constructed state: the clock back
// at zero, every pending event dropped, and the random source reseeded
// with the original seed. Components built on the engine keep their
// pointers to it, so a world can be rewound without rebuilding — the
// foundation of campaign world pooling. After Reset the engine is
// indistinguishable from NewEngine(seed), which is what makes a reset
// world produce byte-identical measurements to a freshly built one.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.queue = nil
	e.events = 0
	e.rng = rand.New(rand.NewSource(e.seed))
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of scheduled (not yet executed) events.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.events }

// Schedule runs fn after delay d of virtual time. A negative delay is
// treated as zero. The returned Timer can cancel the event.
func (e *Engine) Schedule(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	ev := &event{at: e.now.Add(d), seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// step executes the earliest pending event. It reports false when the queue
// is empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.events++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.step() {
	}
}

// ErrDeadline is returned by RunUntil when the condition did not become true
// before the virtual deadline or queue exhaustion.
var ErrDeadline = fmt.Errorf("sim: deadline exceeded")

// RunUntil executes events until cond() reports true, returning nil, or
// until the virtual clock passes the deadline (now+timeout) or the queue
// drains, returning ErrDeadline. cond is checked after every event.
func (e *Engine) RunUntil(timeout Duration, cond func() bool) error {
	deadline := e.now.Add(timeout)
	if cond() {
		return nil
	}
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		if !e.step() {
			break
		}
		if cond() {
			return nil
		}
	}
	// Advance the clock to the deadline so successive timeouts accumulate
	// the way wall-clock retries would.
	if e.now < deadline {
		e.now = deadline
	}
	return ErrDeadline
}

// RunFor executes events for d of virtual time and then returns, leaving
// later events queued. The clock always ends at now+d.
func (e *Engine) RunFor(d Duration) {
	deadline := e.now.Add(d)
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		if !e.step() {
			break
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}
