package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun prices the core scheduling loop: one event
// scheduled and executed per iteration, steady state. The arena heap makes
// this allocation-free; the closure form pays only for closures the caller
// itself builds.
func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	n := 0
	fn := func() { n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Millisecond, fn)
		e.Run()
	}
}

// BenchmarkScheduleCallRun is the closure-free hot-path form used by the
// packet pipeline: fn plus two pointer arguments stored inline.
func BenchmarkScheduleCallRun(b *testing.B) {
	e := NewEngine(1)
	n := 0
	fn := func(a, _ any) { n += *a.(*int) }
	one := 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleCall(time.Millisecond, fn, &one, nil)
		e.Run()
	}
}

// BenchmarkScheduleDeep prices heap churn with a deep pending queue, the
// shape of a busy world mid-campaign.
func BenchmarkScheduleDeep(b *testing.B) {
	e := NewEngine(1)
	fn := func(a, _ any) {}
	for i := 0; i < 4096; i++ {
		e.ScheduleCall(time.Hour, fn, nil, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleCall(time.Millisecond, fn, nil, nil)
		e.step()
	}
}

// BenchmarkScheduleStop prices cancel-heavy workloads (retransmit timers,
// handler expiries) including the lazy compaction they trigger.
func BenchmarkScheduleStop(b *testing.B) {
	e := NewEngine(1)
	fn := func(a, _ any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.ScheduleCall(time.Millisecond, fn, nil, nil)
		tm.Stop()
	}
	b.StopTimer()
	e.Run()
}

// BenchmarkEngineReset prices the world-pooling rewind.
func BenchmarkEngineReset(b *testing.B) {
	e := NewEngine(1)
	fn := func(a, _ any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.ScheduleCall(time.Millisecond, fn, nil, nil)
		}
		e.Reset()
	}
}
