package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Errorf("Now = %v, want 3ms", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.Schedule(time.Millisecond, func() {
		e.Schedule(time.Millisecond, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 1 || fired[0] != Time(2*time.Millisecond) {
		t.Fatalf("nested event fired at %v, want [2ms]", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tm := e.Schedule(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Error("first Stop should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	e.Run()
	if ran {
		t.Error("stopped timer still fired")
	}
}

func TestRunUntilSuccess(t *testing.T) {
	e := NewEngine(1)
	done := false
	e.Schedule(5*time.Millisecond, func() { done = true })
	if err := e.RunUntil(time.Second, func() bool { return done }); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if e.Now() != Time(5*time.Millisecond) {
		t.Errorf("Now = %v, want 5ms", e.Now())
	}
}

func TestRunUntilDeadline(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Hour, func() {})
	err := e.RunUntil(time.Millisecond, func() bool { return false })
	if err != ErrDeadline {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if e.Now() != Time(time.Millisecond) {
		t.Errorf("clock should advance to deadline, got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("future event should remain queued")
	}
}

func TestRunUntilImmediateCondition(t *testing.T) {
	e := NewEngine(1)
	if err := e.RunUntil(0, func() bool { return true }); err != nil {
		t.Fatalf("RunUntil with already-true cond: %v", err)
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	var n int
	e.Schedule(time.Millisecond, func() { n++ })
	e.Schedule(10*time.Millisecond, func() { n++ })
	e.RunFor(5 * time.Millisecond)
	if n != 1 {
		t.Errorf("events run = %d, want 1", n)
	}
	if e.Now() != Time(5*time.Millisecond) {
		t.Errorf("Now = %v, want 5ms", e.Now())
	}
	e.Run()
	if n != 2 {
		t.Errorf("remaining event lost")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var vals []int64
		for i := 0; i < 100; i++ {
			d := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
			e.Schedule(d, func() { vals = append(vals, int64(e.Now())) })
		}
		e.Run()
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Errorf("negative delay should run at t=0, ran=%v now=%v", ran, e.Now())
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(time.Millisecond, func() {})
	}
	e.Run()
	if e.Executed() != 7 {
		t.Errorf("Executed = %d, want 7", e.Executed())
	}
}

// Property: events always execute in nondecreasing time order, regardless of
// the insertion order of delays.
func TestPropertyMonotonicExecution(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var times []Time
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, e.Now())
			})
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
