// Package trafficgen synthesizes population-scale background traffic: per
// ISP, a pool of users who browse a Zipf-ranked site list with exponential
// think times, mixing DNS lookups, HTTP page fetches and HTTPS handshakes.
// Their packets enter the world through dedicated generator hosts on the
// ISP's edges and cross the same links and middlebox flow tables the
// measurement probes do, which is what makes load-dependent censorship
// behavior — flow-table eviction misses, injection races under pressure —
// observable while a campaign measures.
//
// The tick path is allocation-free at steady state: user records live in
// one flat slice per generator host, every packet a user sends is embedded
// in its record and re-initialized in place, request payloads (GET bytes,
// ClientHello, DNS query) are pre-rendered per target at build time, and
// all scheduling goes through sim.Engine.ScheduleCall with package-level
// dispatchers. The TestBackgroundTickZeroAlloc gate and the repolint
// hotpathalloc analyzer both enforce this.
//
// Everything a generator does is driven by the engine's seeded RNG in
// event order, so background load is as deterministic as the rest of the
// world: Start is called once after the world is built and once at the end
// of every World.Reset, producing the identical draw sequence either way —
// the property campaign replica pooling depends on.
package trafficgen

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/obs"
)

// BasePort is the first local port a generator host assigns its users;
// user i on a host holds TCP and UDP port BasePort+i for every flow.
const BasePort = 10000

// flowDeadline bounds one flow attempt: a user whose request got
// blackholed (or aimed at a dead address) gives up after this much virtual
// time and thinks again.
const flowDeadline = 2 * time.Second

// Target is one destination of the shared ranked site list, with every
// request pre-rendered at build time so the tick path never allocates.
type Target struct {
	Domain string
	// Addr is where the population connects (the in-region answer for the
	// domain).
	Addr netip.Addr
	// Req is the rendered HTTP GET (Host header included), TLS the
	// rendered ClientHello carrying the domain as SNI, DNSQ the rendered
	// DNS A query.
	Req  []byte
	TLS  []byte
	DNSQ []byte
}

// ISPConfig seats one ISP's population on its edge generator hosts.
type ISPConfig struct {
	Name string
	// Hosts are the ISP's generator hosts (one per edge), dedicated to the
	// population: trafficgen owns their TCP handler and the user-port UDP
	// handlers.
	Hosts []*netsim.Host
	Users int
	// Request-mix weights; all zero means pure HTTP.
	DNSShare, HTTPShare, HTTPSShare float64
	// Think is the mean of the exponential think-time distribution.
	Think time.Duration
	// ZipfS is the popularity exponent over the ranked target list.
	ZipfS float64
	// Resolver receives the population's DNS queries (the ISP's
	// subscriber-default resolver).
	Resolver netip.Addr
}

// Generator drives the configured populations through the world's engine.
type Generator struct {
	eng     *sim.Engine
	targets []Target
	isps    []*genISP
	users   int

	// Obs instruments from the world registry; all virtual-event driven,
	// so background-load telemetry is deterministic like the load itself.
	cFlows    *obs.Counter
	cWakes    *obs.Counter
	cReqDNS   *obs.Counter
	cReqHTTP  *obs.Counter
	cReqHTTPS *obs.Counter
}

type genISP struct {
	cfg genISP0
	// cdf is the Zipf cumulative distribution over the shared target list.
	cdf []float64
	// dnsCut/httpCut partition [0,1): below dnsCut → DNS, below httpCut →
	// HTTP, else HTTPS.
	dnsCut, httpCut float64
	hosts           []*genHost
}

// genISP0 is the subset of ISPConfig the tick path reads.
type genISP0 struct {
	name     string
	think    float64 // mean think time in nanoseconds
	resolver netip.Addr
}

// genHost owns the users seated on one generator host and demultiplexes
// arriving packets to them by destination port.
type genHost struct {
	g     *Generator
	isp   *genISP
	host  *netsim.Host
	users []user
}

type userState uint8

const (
	stIdle userState = iota
	stDNS            // DNS query in flight
	stSyn            // TCP SYN sent, waiting for SYN-ACK
	stReq            // request sent, waiting for first response bytes
)

// user is one synthetic subscriber. The record embeds every packet it ever
// sends; a packet slot is re-initialized in place right before each send
// and is never reused while a previous flight could still be live (one
// flow at a time, distinct slots per step, think time ≫ path latency).
type user struct {
	gh       *genHost
	port     uint16
	state    userState
	dst      netip.Addr
	dstPort  uint16
	iss      uint32
	reqLen   uint32
	deadline sim.Timer

	synSeg, ackSeg, reqSeg, rstSeg netpkt.TCPSegment
	synPkt, ackPkt, reqPkt, rstPkt netpkt.Packet
	udpDgram                       netpkt.UDPDatagram
	udpPkt                         netpkt.Packet
}

// Top-level dispatchers keep ScheduleCall closure-free: referencing a
// named function as a value points at static code, so scheduling never
// allocates.
func wakeFn(a, b any)     { a.(*user).wake() }
func deadlineFn(a, b any) { a.(*user).expire() }

// New builds a generator: it seats each ISP's users round-robin across the
// ISP's generator hosts, precomputes the Zipf tables, and claims the
// hosts' TCP and per-user-port UDP handlers. Call it before the network's
// MarkBaseline so the UDP registrations survive World.Reset; nothing here
// draws engine randomness or schedules events — Start does that.
func New(eng *sim.Engine, targets []Target, isps []ISPConfig) *Generator {
	g := &Generator{eng: eng, targets: targets}
	reg := eng.Obs()
	g.cFlows = reg.Counter("trafficgen_flows_total")
	g.cWakes = reg.Counter("trafficgen_wakes_total")
	g.cReqDNS = reg.Counter(obs.Name("trafficgen_requests_total", "kind", "dns"))
	g.cReqHTTP = reg.Counter(obs.Name("trafficgen_requests_total", "kind", "http"))
	g.cReqHTTPS = reg.Counter(obs.Name("trafficgen_requests_total", "kind", "https"))
	for i := range isps {
		cfg := isps[i]
		if cfg.Users <= 0 || len(cfg.Hosts) == 0 || len(targets) == 0 {
			continue
		}
		total := cfg.DNSShare + cfg.HTTPShare + cfg.HTTPSShare
		if total <= 0 {
			cfg.HTTPShare, total = 1, 1
		}
		think := cfg.Think
		if think <= 0 {
			think = 3 * time.Second
		}
		gi := &genISP{
			cfg:     genISP0{name: cfg.Name, think: float64(think), resolver: cfg.Resolver},
			cdf:     zipfCDF(len(targets), cfg.ZipfS),
			dnsCut:  cfg.DNSShare / total,
			httpCut: (cfg.DNSShare + cfg.HTTPShare) / total,
		}
		n := len(cfg.Hosts)
		for h := 0; h < n; h++ {
			cnt := cfg.Users / n
			if h < cfg.Users%n {
				cnt++
			}
			if cnt == 0 {
				continue
			}
			if cnt > 1<<16-BasePort {
				panic(fmt.Sprintf("trafficgen: %s seats %d users on one host, exceeding the %d-port space",
					cfg.Name, cnt, 1<<16-BasePort))
			}
			gh := &genHost{g: g, isp: gi, host: cfg.Hosts[h], users: make([]user, cnt)}
			for u := range gh.users {
				gh.users[u].gh = gh
				gh.users[u].port = BasePort + uint16(u)
				gh.host.SetUDPHandler(gh.users[u].port, gh.handleUDP)
			}
			gh.host.SetTCPHandler(gh.handleTCP)
			gi.hosts = append(gi.hosts, gh)
		}
		g.users += cfg.Users
		g.isps = append(g.isps, gi)
	}
	return g
}

// Users returns the total seated population.
func (g *Generator) Users() int { return g.users }

// Flows returns the number of flow attempts completed or abandoned since
// the last Start. It is a shim over the generator's obs flow counter.
func (g *Generator) Flows() uint64 { return g.cFlows.Value() }

// Start rewinds every user to idle and primes one staggered wake per user
// from the engine RNG. It runs once at the end of world construction and
// once at the end of every World.Reset; because the engine RNG is freshly
// seeded at both points and users are visited in fixed build order, the
// draw sequence — and therefore all background load — is identical, which
// is what keeps a reset world byte-identical to a fresh one.
func (g *Generator) Start() {
	g.cFlows.Reset()
	rng := g.eng.Rand()
	for _, gi := range g.isps {
		think := gi.cfg.think
		for _, gh := range gi.hosts {
			for u := range gh.users {
				usr := &gh.users[u]
				usr.deadline.Stop()
				usr.state = stIdle
				g.eng.ScheduleCall(time.Duration(rng.Float64()*think), wakeFn, usr, nil)
			}
		}
	}
}

// wake starts one flow: sample a target by popularity, a request kind by
// mix weight, and send the opening packet.
//
//repolint:hotpath
func (u *user) wake() {
	gh := u.gh
	gi := gh.isp
	gh.g.cWakes.Inc()
	rng := gh.g.eng.Rand()
	tgt := &gh.g.targets[sampleCDF(gi.cdf, rng.Float64())]
	mix := rng.Float64()
	switch {
	case mix < gi.dnsCut:
		gh.g.cReqDNS.Inc()
		u.state = stDNS
		u.dst = gi.cfg.resolver
		u.udpDgram = netpkt.UDPDatagram{SrcPort: u.port, DstPort: 53, Payload: tgt.DNSQ}
		u.udpPkt = netpkt.Packet{
			IP:  netpkt.IPv4{Src: gh.host.Addr(), Dst: u.dst, TTL: 64, Protocol: netpkt.ProtoUDP},
			UDP: &u.udpDgram,
		}
		gh.host.Send(&u.udpPkt)
	default:
		payload := tgt.Req
		u.dstPort = 80
		if mix >= gi.httpCut {
			payload = tgt.TLS
			u.dstPort = 443
			gh.g.cReqHTTPS.Inc()
		} else {
			gh.g.cReqHTTP.Inc()
		}
		u.state = stSyn
		u.dst = tgt.Addr
		u.iss = rng.Uint32()
		u.reqLen = uint32(len(payload))
		u.synSeg = netpkt.TCPSegment{
			SrcPort: u.port, DstPort: u.dstPort,
			Seq: u.iss, Flags: netpkt.SYN, Window: 65535,
		}
		u.reqSeg = netpkt.TCPSegment{
			SrcPort: u.port, DstPort: u.dstPort,
			Seq: u.iss + 1, Flags: netpkt.ACK | netpkt.PSH, Window: 65535,
			Payload: payload,
		}
		u.initTCP(&u.synPkt, &u.synSeg)
		gh.host.Send(&u.synPkt)
	}
	u.deadline = gh.g.eng.ScheduleCall(flowDeadline, deadlineFn, u, nil)
}

// initTCP re-initializes an embedded packet slot in place (routers mutate
// the shared packet's TTL in flight, so headers are rebuilt per send).
//
//repolint:hotpath
func (u *user) initTCP(p *netpkt.Packet, seg *netpkt.TCPSegment) {
	p.IP = netpkt.IPv4{Src: u.gh.host.Addr(), Dst: u.dst, TTL: 64, Protocol: netpkt.ProtoTCP}
	p.TCP = seg
	p.UDP = nil
	p.ICMP = nil
}

// handleTCP demultiplexes an arriving TCP packet to its user by local
// port. Packets from anyone but the user's current peer — late responses
// racing a forged RST, stack resets from finished flows — are ignored.
//
//repolint:hotpath
func (gh *genHost) handleTCP(pkt *netpkt.Packet) {
	tcp := pkt.TCP
	i := int(tcp.DstPort) - BasePort
	if i < 0 || i >= len(gh.users) {
		return
	}
	u := &gh.users[i]
	if pkt.IP.Src != u.dst || tcp.SrcPort != u.dstPort {
		return
	}
	switch u.state {
	case stSyn:
		if tcp.Flags.Has(netpkt.SYN|netpkt.ACK) && tcp.Ack == u.iss+1 {
			// Establish, then request — two packets on the same FIFO path,
			// so every on-path middlebox observes the completed handshake
			// before it sees payload.
			u.ackSeg = netpkt.TCPSegment{
				SrcPort: u.port, DstPort: u.dstPort,
				Seq: u.iss + 1, Ack: tcp.Seq + 1, Flags: netpkt.ACK, Window: 65535,
			}
			u.initTCP(&u.ackPkt, &u.ackSeg)
			gh.host.Send(&u.ackPkt)
			u.reqSeg.Ack = tcp.Seq + 1
			u.initTCP(&u.reqPkt, &u.reqSeg)
			gh.host.Send(&u.reqPkt)
			u.state = stReq
			return
		}
		if tcp.Flags.Has(netpkt.RST) {
			u.finish()
		}
	case stReq:
		if tcp.Flags.Has(netpkt.RST) {
			u.finish()
			return
		}
		if len(tcp.Payload) > 0 || tcp.Flags.Has(netpkt.FIN) {
			// First response bytes (real page or forged notification): tear
			// the connection down the cheap way, like embedded HTTP clients
			// under churn do. The RST carries the sequence the server
			// expects next, so its stack drops the connection immediately.
			u.rstSeg = netpkt.TCPSegment{
				SrcPort: u.port, DstPort: u.dstPort,
				Seq: u.iss + 1 + u.reqLen, Flags: netpkt.RST, Window: 65535,
			}
			u.initTCP(&u.rstPkt, &u.rstSeg)
			gh.host.Send(&u.rstPkt)
			u.finish()
		}
	}
}

// handleUDP completes a DNS flow: any answer to the user's query port ends
// the visit (poisoned and honest answers alike keep the population's
// traffic shape identical).
//
//repolint:hotpath
func (gh *genHost) handleUDP(pkt *netpkt.Packet) {
	i := int(pkt.UDP.DstPort) - BasePort
	if i < 0 || i >= len(gh.users) {
		return
	}
	u := &gh.users[i]
	if u.state != stDNS || pkt.IP.Src != u.dst {
		return
	}
	u.finish()
}

// finish ends the current flow and schedules the next think-time wake.
//
//repolint:hotpath
func (u *user) finish() {
	u.deadline.Stop()
	u.rest()
}

// expire is the deadline path: the flow hung (blackholed request, dead
// destination) and the user gives up.
//
//repolint:hotpath
func (u *user) expire() {
	if u.state == stIdle {
		return
	}
	u.rest()
}

//repolint:hotpath
func (u *user) rest() {
	g := u.gh.g
	g.cFlows.Inc()
	u.state = stIdle
	think := u.gh.isp.cfg.think
	d := g.eng.Rand().ExpFloat64() * think
	if cap := 8 * think; d > cap {
		d = cap
	}
	g.eng.ScheduleCall(time.Duration(d), wakeFn, u, nil)
}

// zipfCDF precomputes the cumulative Zipf(s) popularity distribution over
// n ranked targets: weight(rank r) ∝ (r+1)^-s.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// sampleCDF returns the first index whose cumulative weight exceeds r —
// a hand-rolled binary search, because sort.Search builds a closure and
// the tick path must not allocate.
//
//repolint:hotpath
func sampleCDF(cdf []float64, r float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cdf[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
