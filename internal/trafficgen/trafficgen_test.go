package trafficgen_test

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/httpwire"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trafficgen"
)

// loadWorld is a minimal two-router world for exercising the generator in
// isolation: generator hosts on one side, a silent sink behind a bounded
// interceptor on the other. SYNs cross the box (churning its flow table)
// and die at the sink, so every user cycles through the full tick path —
// wake, Zipf sample, packet build, send, deadline expiry, re-think —
// forever.
type loadWorld struct {
	eng  *sim.Engine
	gen  *trafficgen.Generator
	box  *middlebox.Interceptor
	sink netip.Addr
}

func buildLoadWorld(tb testing.TB, hosts, users int) *loadWorld {
	tb.Helper()
	eng := sim.NewEngine(7)
	net := netsim.New(eng)

	genR := net.AddRouter("gen", 101, netip.AddrFrom4([4]byte{10, 0, 0, 1}))
	sinkR := net.AddRouter("sink", 64501, netip.AddrFrom4([4]byte{10, 1, 0, 1}))
	net.Link(genR, sinkR, 2*time.Millisecond)
	net.ClaimPrefix(netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, 0, 0}), 24), genR)
	net.ClaimPrefix(netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 1, 0, 0}), 24), sinkR)

	var genHosts []*netsim.Host
	for i := 0; i < hosts; i++ {
		addr := netip.AddrFrom4([4]byte{10, 0, 0, byte(200 + i)})
		genHosts = append(genHosts, net.AddHost(addr, genR, time.Millisecond))
	}
	// The sink has no TCP handler: arriving SYNs vanish and users take the
	// deadline path, the steadiest possible churn.
	sink := netip.AddrFrom4([4]byte{10, 1, 0, 2})
	net.AddHost(sink, sinkR, time.Millisecond)

	box := middlebox.NewInterceptor(net, middlebox.Config{
		ID: "loadbox", ASN: 64501,
		Blocklist:    middlebox.NewBlocklist(nil),
		Scope:        middlebox.ScopeAll,
		FlowCapacity: 64,
	}, true)
	sinkR.AttachInline(box)

	targets := make([]trafficgen.Target, 8)
	for i := range targets {
		d := fmt.Sprintf("bg%d.example.com", i)
		targets[i] = trafficgen.Target{
			Domain: d, Addr: sink,
			Req: httpwire.StandardGET(d, "/"),
		}
	}

	net.Build()
	gen := trafficgen.New(eng, targets, []trafficgen.ISPConfig{{
		Name: "load", Hosts: genHosts, Users: users,
		HTTPShare: 1, Think: 200 * time.Millisecond, ZipfS: 1.1,
	}})
	net.MarkBaseline()
	gen.Start()
	return &loadWorld{eng: eng, gen: gen, box: box, sink: sink}
}

// TestBackgroundTickZeroAlloc is the CI gate on the tentpole's hot-path
// contract: once warm, driving population-scale background traffic — user
// wakes, Zipf draws, packet sends, flow-table churn with evictions, and
// deadline-driven rescheduling — allocates nothing.
func TestBackgroundTickZeroAlloc(t *testing.T) {
	w := buildLoadWorld(t, 1, 128)

	// Warm: two full deadline cycles seed the timer arena, the flow
	// table's slot arena and every per-user packet.
	w.eng.RunFor(6 * time.Second)
	if w.gen.Flows() == 0 {
		t.Fatalf("warmup drove no flows")
	}
	if w.box.Evictions() == 0 {
		t.Fatalf("warmup churned no flow-table capacity (box len %d)", w.box.Len())
	}

	allocs := testing.AllocsPerRun(10, func() {
		w.eng.RunFor(500 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("background tick allocated %.1f times per 500ms slice, want 0", allocs)
	}
}

// TestGeneratorRestartDeterminism pins the Start contract Reset relies on:
// rewinding the engine and calling Start again reproduces the exact flow
// and eviction sequence of the first run.
func TestGeneratorRestartDeterminism(t *testing.T) {
	w := buildLoadWorld(t, 1, 64)

	run := func() (uint64, uint64, int) {
		w.eng.RunFor(5 * time.Second)
		return w.gen.Flows(), w.box.Evictions(), w.box.Len()
	}
	f1, e1, l1 := run()
	if f1 == 0 {
		t.Fatalf("no flows generated")
	}

	w.eng.Reset()
	w.box.Reset()
	w.gen.Start()
	f2, e2, l2 := run()
	if f1 != f2 || e1 != e2 || l1 != l2 {
		t.Fatalf("restart diverged: flows %d/%d evictions %d/%d len %d/%d", f1, f2, e1, e2, l1, l2)
	}
}

// TestUsersSeatedAcrossHosts checks the round-robin seating and the
// port-space invariant.
func TestUsersSeatedAcrossHosts(t *testing.T) {
	w := buildLoadWorld(t, 3, 100)
	if got := w.gen.Users(); got != 100 {
		t.Fatalf("Users() = %d, want 100", got)
	}
	// First flows finish only after the 2s flow deadline fires.
	w.eng.RunFor(3 * time.Second)
	if w.gen.Flows() == 0 {
		t.Fatalf("multi-host population generated no flows")
	}
}
