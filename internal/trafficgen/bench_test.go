package trafficgen_test

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkBackgroundLoad measures how real time scales with population
// size: each iteration advances the same two-router load world by one
// virtual second. flows/vsec is the generated load level, evictions and
// flowtable the pressure it puts on the bounded middlebox table. The
// users=0 case is the idle-world floor every other point is compared
// against (the users-vs-throughput curve in BENCH_campaign.json).
func BenchmarkBackgroundLoad(b *testing.B) {
	for _, users := range []int{0, 1000, 10000, 100000} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			w := buildLoadWorld(b, 3, users)
			w.eng.RunFor(3 * time.Second) // settle past the first deadline cycle
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.eng.RunFor(time.Second)
			}
			b.StopTimer()
			virtual := float64(b.N) + 3
			b.ReportMetric(float64(w.gen.Flows())/virtual, "flows/vsec")
			b.ReportMetric(float64(w.box.Evictions()), "evictions")
			b.ReportMetric(float64(w.box.Len()), "flowtable")
		})
	}
}
