package httpwire

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Response is an HTTP/1.1 response with a fully buffered body.
type Response struct {
	Proto      string
	StatusCode int
	Status     string // reason phrase
	Headers    []Header
	Body       []byte
}

// NewResponse builds a response with the given status and body, setting
// Content-Length automatically.
func NewResponse(code int, reason string, body []byte) *Response {
	return &Response{
		Proto:      "HTTP/1.1",
		StatusCode: code,
		Status:     reason,
		Body:       body,
		Headers: []Header{
			{Name: "Content-Length", Raw: " " + strconv.Itoa(len(body))},
		},
	}
}

// AddHeader appends a canonical "name: value" header.
func (r *Response) AddHeader(name, value string) *Response {
	r.Headers = append(r.Headers, Header{Name: name, Raw: " " + value})
	return r
}

// HeaderValue returns the trimmed value of the first header matching name
// case-insensitively.
func (r *Response) HeaderValue(name string) (string, bool) {
	for _, h := range r.Headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value(), true
		}
	}
	return "", false
}

// HeaderNames returns the field names in order. OONI's web_connectivity
// compares exactly this set (names, not values) between control and
// experiment responses.
func (r *Response) HeaderNames() []string {
	names := make([]string, len(r.Headers))
	for i, h := range r.Headers {
		names[i] = h.Name
	}
	return names
}

// Marshal renders the response to wire bytes.
func (r *Response) Marshal() []byte {
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "%s %d %s%s", r.Proto, r.StatusCode, r.Status, CRLF)
	for _, h := range r.Headers {
		sb.WriteString(h.Name)
		sb.WriteByte(':')
		sb.WriteString(h.Raw)
		sb.WriteString(CRLF)
	}
	sb.WriteString(CRLF)
	sb.Write(r.Body)
	return sb.Bytes()
}

// ParseResponse consumes one response from the front of stream. If the
// header block declares a Content-Length larger than the available bytes it
// returns ErrIncomplete; with no Content-Length the remainder of the stream
// is taken as the body (connection-delimited).
func ParseResponse(stream []byte) (*Response, []byte, error) {
	idx := bytes.Index(stream, []byte(CRLF+CRLF))
	if idx < 0 {
		return nil, stream, ErrIncomplete
	}
	head := string(stream[:idx])
	rest := stream[idx+4:]
	lines := strings.Split(head, CRLF)
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, rest, fmt.Errorf("httpwire: malformed status line %q", lines[0])
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, rest, fmt.Errorf("httpwire: bad status code in %q", lines[0])
	}
	resp := &Response{Proto: parts[0], StatusCode: code}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	for _, l := range lines[1:] {
		colon := strings.IndexByte(l, ':')
		if colon <= 0 {
			return nil, rest, fmt.Errorf("httpwire: malformed response header %q", l)
		}
		resp.Headers = append(resp.Headers, Header{Name: l[:colon], Raw: l[colon+1:]})
	}
	if cl, ok := resp.HeaderValue("Content-Length"); ok {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, rest, fmt.Errorf("httpwire: bad Content-Length %q", cl)
		}
		if len(rest) < n {
			return nil, stream, ErrIncomplete
		}
		resp.Body = append([]byte(nil), rest[:n]...)
		return resp, rest[n:], nil
	}
	resp.Body = append([]byte(nil), rest...)
	return resp, nil, nil
}

// Title extracts the contents of the first <title> element of an HTML body,
// case-insensitively, or "" if none. OONI compares titles between control
// and experiment measurements.
func Title(body []byte) string {
	lower := bytes.ToLower(body)
	start := bytes.Index(lower, []byte("<title>"))
	if start < 0 {
		return ""
	}
	start += len("<title>")
	end := bytes.Index(lower[start:], []byte("</title>"))
	if end < 0 {
		return ""
	}
	return strings.TrimSpace(string(body[start : start+end]))
}
