// Package httpwire implements an exact-byte HTTP/1.1 message model.
//
// The reproduction cannot use net/http because the experiments depend on
// byte-level control that real HTTP libraries deliberately hide: the paper's
// evasions work by mutating the case of the Host keyword ("HOst:"), padding
// the value with extra spaces or tabs, or appending a second Host header
// after the end of the request — bytes a censoring middlebox matches
// literally but an RFC 2616 server normalizes away. Requests are therefore
// built and parsed as raw bytes, with the builder preserving exactly what
// the caller wrote and the parser applying RFC 2616 semantics
// (case-insensitive field names, LWS trimming).
package httpwire

import (
	"bytes"
	"fmt"
	"strings"
)

// CRLF terminates HTTP lines; a bare CRLF terminates the header block.
const CRLF = "\r\n"

// Header is one header field exactly as written: Name keeps its case, Raw
// keeps the spacing of the original "Name:value" line after the colon.
type Header struct {
	Name string
	Raw  string // everything after the colon, unmodified
}

// Value returns the RFC 2616 field value: Raw with leading/trailing
// whitespace (spaces and tabs) removed.
func (h Header) Value() string { return strings.Trim(h.Raw, " \t") }

// Request is a parsed HTTP/1.1 request.
type Request struct {
	Method  string
	Target  string
	Proto   string
	Headers []Header
}

// Host returns the value of the first Host header, matched
// case-insensitively per RFC 2616. This is what a compliant origin server
// uses to pick the virtual host.
func (r *Request) Host() (string, bool) {
	for _, h := range r.Headers {
		if strings.EqualFold(h.Name, "Host") {
			return strings.ToLower(h.Value()), true
		}
	}
	return "", false
}

// HeaderValue returns the trimmed value of the first header whose name
// matches name case-insensitively.
func (r *Request) HeaderValue(name string) (string, bool) {
	for _, h := range r.Headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value(), true
		}
	}
	return "", false
}

// RequestBuilder assembles a request byte-for-byte. Every mutator writes
// exactly what it is given; nothing is canonicalized. The zero value is not
// useful; start with NewGET.
type RequestBuilder struct {
	requestLine string
	lines       []string
}

// NewGET starts a standard request line "GET <path> HTTP/1.1".
func NewGET(path string) *RequestBuilder {
	return &RequestBuilder{requestLine: "GET " + path + " HTTP/1.1"}
}

// NewRequestLine starts from an arbitrary request line (used to test method
// and version case mutations like "get" or "HTTP/1.0").
func NewRequestLine(line string) *RequestBuilder {
	return &RequestBuilder{requestLine: line}
}

// Header appends "name: value" with canonical single-space separation.
func (b *RequestBuilder) Header(name, value string) *RequestBuilder {
	b.lines = append(b.lines, name+": "+value)
	return b
}

// RawLine appends an arbitrary header line exactly as given (no colon or
// spacing is added). This is the hook the evasion suite uses.
func (b *RequestBuilder) RawLine(line string) *RequestBuilder {
	b.lines = append(b.lines, line)
	return b
}

// Bytes renders the request including the terminating blank line.
func (b *RequestBuilder) Bytes() []byte {
	var sb strings.Builder
	sb.WriteString(b.requestLine)
	sb.WriteString(CRLF)
	for _, l := range b.lines {
		sb.WriteString(l)
		sb.WriteString(CRLF)
	}
	sb.WriteString(CRLF)
	return []byte(sb.String())
}

// StandardGET renders the request a mainstream browser would send: title-
// case Host first, plus a User-Agent. This is the baseline the censors in
// the paper are tuned to match.
func StandardGET(host, path string) []byte {
	return NewGET(path).
		Header("Host", host).
		Header("User-Agent", "Mozilla/5.0 (X11; Linux x86_64) repro/1.0").
		Header("Accept", "*/*").
		Header("Connection", "close").
		Bytes()
}

// ErrIncomplete reports that the byte stream does not yet contain a full
// header block; callers should wait for more data.
var ErrIncomplete = fmt.Errorf("httpwire: incomplete request")

// ParseRequest consumes one request from the front of stream, returning the
// request and the unconsumed remainder. It implements an origin server's
// view: field names are matched case-insensitively later via Host(), and
// malformed messages produce an error (servers answer those with 400).
func ParseRequest(stream []byte) (*Request, []byte, error) {
	idx := bytes.Index(stream, []byte(CRLF+CRLF))
	if idx < 0 {
		return nil, stream, ErrIncomplete
	}
	head := string(stream[:idx])
	rest := stream[idx+4:]
	lines := strings.Split(head, CRLF)
	// Tolerate leading whitespace junk before the request line (e.g. the
	// " Host: allowed.com" tail the covert-IM evasion leaves behind is NOT
	// tolerated — it has no request line — but empty lines are skipped).
	for len(lines) > 0 && strings.TrimSpace(lines[0]) == "" {
		lines = lines[1:]
	}
	if len(lines) == 0 {
		return nil, rest, fmt.Errorf("httpwire: empty request")
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, rest, fmt.Errorf("httpwire: malformed request line %q", lines[0])
	}
	// RFC 2616 methods are case-sensitive tokens; a compliant server
	// rejects "get".
	method := parts[0]
	if method != strings.ToUpper(method) {
		return nil, rest, fmt.Errorf("httpwire: invalid method %q", method)
	}
	req := &Request{Method: method, Target: parts[1], Proto: parts[2]}
	for _, l := range lines[1:] {
		if strings.TrimSpace(l) == "" {
			continue
		}
		colon := strings.IndexByte(l, ':')
		if colon <= 0 {
			return nil, rest, fmt.Errorf("httpwire: malformed header line %q", l)
		}
		name := l[:colon]
		// RFC 7230 forbids whitespace between field name and colon.
		if strings.ContainsAny(name, " \t") {
			return nil, rest, fmt.Errorf("httpwire: whitespace in field name %q", name)
		}
		req.Headers = append(req.Headers, Header{Name: name, Raw: l[colon+1:]})
	}
	return req, rest, nil
}
