package httpwire

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestStandardGETParses(t *testing.T) {
	b := StandardGET("blocked.example.in", "/")
	req, rest, err := ParseRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover bytes: %q", rest)
	}
	if req.Method != "GET" || req.Target != "/" || req.Proto != "HTTP/1.1" {
		t.Errorf("request line = %s %s %s", req.Method, req.Target, req.Proto)
	}
	host, ok := req.Host()
	if !ok || host != "blocked.example.in" {
		t.Errorf("Host = %q, %v", host, ok)
	}
}

// The wiretap-middlebox evasion: a server must accept "HOst:" etc. per RFC
// 2616, even though the middleboxes do literal matches.
func TestHostCaseInsensitive(t *testing.T) {
	for _, variant := range []string{"HOst", "HoST", "HoSt", "HOST", "host"} {
		b := NewGET("/").RawLine(variant + ": blocked.example.in").Bytes()
		req, _, err := ParseRequest(b)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		host, ok := req.Host()
		if !ok || host != "blocked.example.in" {
			t.Errorf("%s: Host = %q, %v", variant, host, ok)
		}
	}
}

// The overt-IM evasion: extra spaces/tabs around the Host value must be
// stripped by a compliant server.
func TestHostWhitespacePadding(t *testing.T) {
	cases := []string{
		"Host:  blocked.example.in",
		"Host:\tblocked.example.in",
		"Host: blocked.example.in   ",
		"Host:   blocked.example.in\t",
	}
	for _, line := range cases {
		b := NewGET("/").RawLine(line).Bytes()
		req, _, err := ParseRequest(b)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		host, ok := req.Host()
		if !ok || host != "blocked.example.in" {
			t.Errorf("%q: Host = %q", line, host)
		}
	}
}

// First Host wins at the server (RFC 2616 vhost selection); the covert IM
// in the paper matches the last one instead.
func TestFirstHostWins(t *testing.T) {
	b := NewGET("/").
		Header("Host", "blocked.example.in").
		Header("Host", "allowed.example.in").
		Bytes()
	req, _, err := ParseRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := req.Host()
	if host != "blocked.example.in" {
		t.Errorf("server picked %q, want first Host", host)
	}
}

func TestLowercaseMethodRejected(t *testing.T) {
	b := NewRequestLine("get / HTTP/1.1").Header("Host", "x.in").Bytes()
	if _, _, err := ParseRequest(b); err == nil {
		t.Error("lowercase method accepted")
	}
}

func TestIncompleteRequest(t *testing.T) {
	b := []byte("GET / HTTP/1.1\r\nHost: x.in\r\n") // no terminating blank line
	if _, _, err := ParseRequest(b); err != ErrIncomplete {
		t.Errorf("err = %v, want ErrIncomplete", err)
	}
}

func TestTrailingGarbageIsSecondMessage(t *testing.T) {
	// The covert-IM evasion payload: valid request, then junk that the
	// server should treat as a malformed second request.
	payload := append(StandardGET("blocked.example.in", "/"), []byte(" Host: allowed.example.in\r\n\r\n")...)
	req, rest, err := ParseRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := req.Host(); h != "blocked.example.in" {
		t.Errorf("first request host = %q", h)
	}
	if _, _, err := ParseRequest(rest); err == nil || err == ErrIncomplete {
		t.Errorf("junk second message should be a hard parse error, got %v", err)
	}
}

func TestWhitespaceBeforeColonRejected(t *testing.T) {
	b := NewGET("/").RawLine("Host : x.in").Bytes()
	if _, _, err := ParseRequest(b); err == nil {
		t.Error("space before colon accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	body := []byte("<html><title>Hi There</title><body>hello</body></html>")
	r := NewResponse(200, "OK", body).
		AddHeader("Content-Type", "text/html").
		AddHeader("Server", "repro/1.0")
	b := r.Marshal()
	got, rest, err := ParseResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("leftover: %q", rest)
	}
	if got.StatusCode != 200 || got.Status != "OK" {
		t.Errorf("status = %d %s", got.StatusCode, got.Status)
	}
	if !bytes.Equal(got.Body, body) {
		t.Errorf("body mismatch")
	}
	if ct, _ := got.HeaderValue("content-type"); ct != "text/html" {
		t.Errorf("Content-Type = %q", ct)
	}
	names := got.HeaderNames()
	if len(names) != 3 || names[0] != "Content-Length" {
		t.Errorf("header names = %v", names)
	}
}

func TestResponseIncompleteBody(t *testing.T) {
	r := NewResponse(200, "OK", []byte("0123456789"))
	b := r.Marshal()
	if _, _, err := ParseResponse(b[:len(b)-3]); err != ErrIncomplete {
		t.Errorf("err = %v, want ErrIncomplete", err)
	}
}

func TestResponseNoContentLength(t *testing.T) {
	raw := []byte("HTTP/1.1 200 OK\r\nServer: x\r\n\r\nconnection-delimited body")
	r, rest, err := ParseResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Body) != "connection-delimited body" || rest != nil {
		t.Errorf("body = %q rest = %q", r.Body, rest)
	}
}

func TestPipelinedResponses(t *testing.T) {
	b := append(NewResponse(200, "OK", []byte("first")).Marshal(),
		NewResponse(400, "Bad Request", []byte("second")).Marshal()...)
	r1, rest, err := ParseResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	r2, rest, err := ParseResponse(rest)
	if err != nil {
		t.Fatal(err)
	}
	if r1.StatusCode != 200 || string(r1.Body) != "first" {
		t.Errorf("r1 = %d %q", r1.StatusCode, r1.Body)
	}
	if r2.StatusCode != 400 || string(r2.Body) != "second" || len(rest) != 0 {
		t.Errorf("r2 = %d %q rest=%q", r2.StatusCode, r2.Body, rest)
	}
}

func TestTitle(t *testing.T) {
	cases := []struct{ body, want string }{
		{"<html><title>My Site</title></html>", "My Site"},
		{"<HTML><TITLE> spaced </TITLE></HTML>", "spaced"},
		{"<html>no title</html>", ""},
		{"<title>unterminated", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := Title([]byte(c.body)); got != c.want {
			t.Errorf("Title(%q) = %q, want %q", c.body, got, c.want)
		}
	}
}

func TestHeaderValueTrimming(t *testing.T) {
	h := Header{Name: "X", Raw: "  \t value with spaces \t "}
	if h.Value() != "value with spaces" {
		t.Errorf("Value = %q", h.Value())
	}
}

// Property: whatever headers we write with the builder, the parser returns
// them in order with names intact.
func TestPropertyBuilderParserAgree(t *testing.T) {
	f := func(names, values []string) bool {
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		if n > 20 {
			n = 20
		}
		b := NewGET("/page")
		var wantNames []string
		for i := 0; i < n; i++ {
			name := sanitizeToken(names[i])
			val := sanitizeValue(values[i])
			if name == "" {
				continue
			}
			b.Header(name, val)
			wantNames = append(wantNames, name)
		}
		req, _, err := ParseRequest(b.Bytes())
		if err != nil {
			return false
		}
		if len(req.Headers) != len(wantNames) {
			return false
		}
		for i, h := range req.Headers {
			if h.Name != wantNames[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sanitizeToken(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '-' {
			sb.WriteRune(r)
		}
	}
	if sb.Len() > 32 {
		return sb.String()[:32]
	}
	return sb.String()
}

func sanitizeValue(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 0x21 && r < 0x7f && r != ':' {
			sb.WriteRune(r)
		}
	}
	if sb.Len() > 64 {
		return sb.String()[:64]
	}
	return sb.String()
}
