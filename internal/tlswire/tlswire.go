// Package tlswire implements just enough of the TLS 1.2 record and
// handshake framing to put realistic ClientHello bytes — including the SNI
// extension — on simulated port-443 connections.
//
// The paper observed "fewer than five instances of HTTPS filtering which
// were actually due to manipulated DNS responses" (§4.2): the Indian
// middleboxes of 2018 inspected only TCP port 80 and never parsed SNI.
// This package exists so the reproduction can demonstrate that negative
// result mechanically: HTTPS requests for censored domains sail through
// every middlebox, and the only HTTPS breakage comes from poisoned
// resolution (see probe.DetectHTTPS and the httpsim tests).
package tlswire

import (
	"encoding/binary"
	"fmt"
)

// Record/handshake constants (RFC 5246).
const (
	RecordHandshake   = 22
	HandshakeHello    = 1
	extServerName     = 0
	sniHostName       = 0
	versionTLS12      = 0x0303
	helloRandomLength = 32
)

// ClientHello builds a TLS record containing a minimal ClientHello with
// the given SNI host name. random must be 32 bytes (pass zeros for
// deterministic tests).
func ClientHello(sni string, random [32]byte) ([]byte, error) {
	if len(sni) == 0 || len(sni) > 255 {
		return nil, fmt.Errorf("tlswire: bad SNI length %d", len(sni))
	}
	// server_name extension body: list length, type, name length, name.
	name := []byte(sni)
	sniEntry := make([]byte, 0, len(name)+5)
	sniEntry = append(sniEntry, sniHostName)
	sniEntry = binary.BigEndian.AppendUint16(sniEntry, uint16(len(name)))
	sniEntry = append(sniEntry, name...)
	ext := make([]byte, 0, len(sniEntry)+6)
	ext = binary.BigEndian.AppendUint16(ext, extServerName)
	ext = binary.BigEndian.AppendUint16(ext, uint16(len(sniEntry)+2))
	ext = binary.BigEndian.AppendUint16(ext, uint16(len(sniEntry)))
	ext = append(ext, sniEntry...)

	body := make([]byte, 0, 64+len(ext))
	body = binary.BigEndian.AppendUint16(body, versionTLS12)
	body = append(body, random[:]...)
	body = append(body, 0)                             // session id length
	body = binary.BigEndian.AppendUint16(body, 2)      // cipher suites length
	body = binary.BigEndian.AppendUint16(body, 0xc02f) // one suite
	body = append(body, 1, 0)                          // compression: null
	body = binary.BigEndian.AppendUint16(body, uint16(len(ext)))
	body = append(body, ext...)

	hs := make([]byte, 0, len(body)+4)
	hs = append(hs, HandshakeHello)
	hs = append(hs, byte(len(body)>>16), byte(len(body)>>8), byte(len(body)))
	hs = append(hs, body...)

	rec := make([]byte, 0, len(hs)+5)
	rec = append(rec, RecordHandshake)
	rec = binary.BigEndian.AppendUint16(rec, versionTLS12)
	rec = binary.BigEndian.AppendUint16(rec, uint16(len(hs)))
	rec = append(rec, hs...)
	return rec, nil
}

// ParseSNI extracts the server name from a ClientHello record, the way an
// SNI-inspecting censor (which India's 2018 middleboxes were not) would.
func ParseSNI(b []byte) (string, error) {
	if len(b) < 5 || b[0] != RecordHandshake {
		return "", fmt.Errorf("tlswire: not a handshake record")
	}
	recLen := int(binary.BigEndian.Uint16(b[3:5]))
	if len(b) < 5+recLen {
		return "", fmt.Errorf("tlswire: truncated record")
	}
	hs := b[5 : 5+recLen]
	if len(hs) < 4 || hs[0] != HandshakeHello {
		return "", fmt.Errorf("tlswire: not a ClientHello")
	}
	body := hs[4:]
	// Fixed prefix: version(2) + random(32), then session id.
	off := 2 + helloRandomLength
	if len(body) < off+1 {
		return "", fmt.Errorf("tlswire: short hello")
	}
	sessLen := int(body[off])
	off += 1 + sessLen
	if len(body) < off+2 {
		return "", fmt.Errorf("tlswire: short cipher suites")
	}
	csLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2 + csLen
	if len(body) < off+1 {
		return "", fmt.Errorf("tlswire: short compression")
	}
	compLen := int(body[off])
	off += 1 + compLen
	if len(body) < off+2 {
		return "", fmt.Errorf("tlswire: no extensions")
	}
	extLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if len(body) < off+extLen {
		return "", fmt.Errorf("tlswire: truncated extensions")
	}
	exts := body[off : off+extLen]
	for len(exts) >= 4 {
		typ := binary.BigEndian.Uint16(exts[0:2])
		l := int(binary.BigEndian.Uint16(exts[2:4]))
		if len(exts) < 4+l {
			return "", fmt.Errorf("tlswire: truncated extension")
		}
		if typ == extServerName {
			e := exts[4 : 4+l]
			if len(e) < 5 || e[2] != sniHostName {
				return "", fmt.Errorf("tlswire: malformed SNI")
			}
			n := int(binary.BigEndian.Uint16(e[3:5]))
			if len(e) < 5+n {
				return "", fmt.Errorf("tlswire: truncated SNI name")
			}
			return string(e[5 : 5+n]), nil
		}
		exts = exts[4+l:]
	}
	return "", fmt.Errorf("tlswire: no SNI extension")
}
