package tlswire

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClientHelloRoundTrip(t *testing.T) {
	var r [32]byte
	for i := range r {
		r[i] = byte(i)
	}
	rec, err := ClientHello("blocked.example.in", r)
	if err != nil {
		t.Fatal(err)
	}
	sni, err := ParseSNI(rec)
	if err != nil {
		t.Fatal(err)
	}
	if sni != "blocked.example.in" {
		t.Errorf("SNI = %q", sni)
	}
}

func TestClientHelloValidation(t *testing.T) {
	var r [32]byte
	if _, err := ClientHello("", r); err == nil {
		t.Error("empty SNI accepted")
	}
	if _, err := ClientHello(strings.Repeat("x", 256), r); err == nil {
		t.Error("oversized SNI accepted")
	}
}

func TestParseSNIRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{RecordHandshake, 3, 3, 0, 10}, // truncated record
		{23, 3, 3, 0, 1, 0},            // wrong record type
		{RecordHandshake, 3, 3, 0, 4, 2, 0, 0, 0}, // not a ClientHello
	}
	for i, b := range cases {
		if _, err := ParseSNI(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// Property: every well-formed domain round-trips through the handshake
// encoding; the parser never panics on truncations.
func TestPropertyRoundTripAndTruncation(t *testing.T) {
	f := func(raw []byte, cut uint16) bool {
		var sb strings.Builder
		for _, c := range raw {
			sb.WriteByte("abcdefghijklmnopqrstuvwxyz0123456789-."[int(c)%38])
		}
		sni := strings.Trim(sb.String(), "-.")
		if sni == "" || len(sni) > 255 {
			return true
		}
		var r [32]byte
		rec, err := ClientHello(sni, r)
		if err != nil {
			return false
		}
		got, err := ParseSNI(rec)
		if err != nil || got != sni {
			return false
		}
		// Any truncation must error, not panic.
		n := int(cut) % len(rec)
		_, _ = ParseSNI(rec[:n])
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
