package pcapwire

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
)

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func u16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func testPacket(payload string) *netpkt.Packet {
	return netpkt.NewTCP(
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
		&netpkt.TCPSegment{
			SrcPort: 40000, DstPort: 80,
			Flags: netpkt.PSH | netpkt.ACK, Seq: 7, Ack: 9, Window: 65535,
			Payload: []byte(payload),
		})
}

func TestGlobalHeaderAndRecords(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	at := sim.Time(1500 * time.Millisecond)
	pkt := testPacket("GET / HTTP/1.1\r\n")
	if err := pw.WritePacket(at, pkt); err != nil {
		t.Fatal(err)
	}
	if pw.Packets() != 1 {
		t.Fatalf("Packets = %d, want 1", pw.Packets())
	}

	b := buf.Bytes()
	if len(b) < 24+16 {
		t.Fatalf("file too short: %d bytes", len(b))
	}
	if got := u32(b[0:]); got != Magic {
		t.Errorf("magic = %#x, want %#x", got, uint32(Magic))
	}
	if maj, min := u16(b[4:]), u16(b[6:]); maj != 2 || min != 4 {
		t.Errorf("version = %d.%d, want 2.4", maj, min)
	}
	if got := u32(b[16:]); got != SnapLen {
		t.Errorf("snaplen = %d, want %d", got, SnapLen)
	}
	if got := u32(b[20:]); got != LinkTypeRaw {
		t.Errorf("linktype = %d, want %d (LINKTYPE_RAW)", got, LinkTypeRaw)
	}

	rec := b[24:]
	if sec, usec := u32(rec[0:]), u32(rec[4:]); sec != 1 || usec != 500000 {
		t.Errorf("timestamp = %d.%06d, want 1.500000", sec, usec)
	}
	wantLen := pkt.WireLen()
	if incl, orig := u32(rec[8:]), u32(rec[12:]); int(incl) != wantLen || int(orig) != wantLen {
		t.Errorf("record lengths = %d/%d, want %d", incl, orig, wantLen)
	}
	raw := rec[16:]
	if len(raw) != wantLen {
		t.Fatalf("record body %d bytes, want %d", len(raw), wantLen)
	}
	back, err := netpkt.Parse(raw)
	if err != nil {
		t.Fatalf("record bytes do not parse as IPv4: %v", err)
	}
	if back.TCP == nil || string(back.TCP.Payload) != "GET / HTTP/1.1\r\n" {
		t.Errorf("round-tripped packet lost its payload: %+v", back)
	}
}

func TestDeterministicBytes(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		pw, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := pw.WritePacket(sim.Time(i)*sim.Time(time.Millisecond), testPacket("x")); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("two identical capture sequences produced different bytes")
	}
}
