// Package pcapwire writes classic libpcap capture files of simulated
// flows, using only the standard library. The format is the original
// 24-byte-global-header pcap (magic 0xa1b2c3d4, version 2.4) with
// LINKTYPE_RAW records — each packet is the raw IPv4 wire image produced
// by netpkt's marshaller, so Wireshark opens the files directly and
// dissects TCP/UDP/ICMP and the HTTP payloads inside.
//
// Timestamps are the simulation's virtual clock, seconds/microseconds
// from time zero. That is deliberate: a capture of the same scenario and
// seed is byte-identical run to run, which is what lets the campaign
// layer treat .pcap files as golden artifacts.
package pcapwire

import (
	"io"
	"time"

	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/sim"
)

const (
	// Magic is the classic pcap magic (microsecond timestamps). Written
	// little-endian; readers detect byte order from it.
	Magic = 0xa1b2c3d4
	// VersionMajor and VersionMinor are the only version ever deployed.
	VersionMajor = 2
	VersionMinor = 4
	// LinkTypeRaw is LINKTYPE_RAW: each record starts at the IP header.
	LinkTypeRaw = 101
	// SnapLen is the advertised snapshot length; records are never
	// truncated (simulated packets are far smaller).
	SnapLen = 65535
)

// Writer emits one pcap stream: the global header at construction, then
// one 16-byte record header plus raw packet bytes per WritePacket. It is
// not safe for concurrent use; the sim side is single-threaded anyway.
type Writer struct {
	w       io.Writer
	scratch []byte // reused marshal buffer
	packets int
	err     error // first write error, sticky
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// NewWriter writes the global header and returns the record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	putU32(hdr[0:], Magic)
	putU16(hdr[4:], VersionMajor)
	putU16(hdr[6:], VersionMinor)
	// thiszone and sigfigs stay zero (UTC, no extra precision).
	putU32(hdr[16:], SnapLen)
	putU32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// WriteRaw writes one record of pre-marshalled wire bytes stamped with the
// virtual time at.
func (pw *Writer) WriteRaw(at sim.Time, raw []byte) error {
	if pw.err != nil {
		return pw.err
	}
	d := time.Duration(at)
	var hdr [16]byte
	putU32(hdr[0:], uint32(d/time.Second))
	putU32(hdr[4:], uint32(d%time.Second/time.Microsecond))
	putU32(hdr[8:], uint32(len(raw)))
	putU32(hdr[12:], uint32(len(raw)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		pw.err = err
		return err
	}
	if _, err := pw.w.Write(raw); err != nil {
		pw.err = err
		return err
	}
	pw.packets++
	return nil
}

// WritePacket marshals pkt to its IPv4 wire image and writes one record.
// The packet is serialized during the call, so live (still-mutating)
// simulator packets are safe to pass.
func (pw *Writer) WritePacket(at sim.Time, pkt *netpkt.Packet) error {
	if pw.err != nil {
		return pw.err
	}
	out, err := pkt.AppendMarshal(pw.scratch[:0])
	if err != nil {
		pw.err = err
		return err
	}
	pw.scratch = out
	return pw.WriteRaw(at, out)
}

// Packets returns how many records were written.
func (pw *Writer) Packets() int { return pw.packets }

// Err returns the sticky first error, if any.
func (pw *Writer) Err() error { return pw.err }

// Tap adapts the writer into a netsim host tap: install with Host.SetTap
// to record every packet crossing the host. Write errors stick and are
// surfaced by Err when the capture is collected.
func (pw *Writer) Tap() netsim.PacketTap {
	return func(at sim.Time, _ netsim.Direction, pkt *netpkt.Packet) {
		_ = pw.WritePacket(at, pkt)
	}
}

// WriteCaptures writes a complete pcap file from a Start/StopCapture
// record list.
func WriteCaptures(w io.Writer, recs []netsim.Captured) error {
	pw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := pw.WritePacket(r.At, r.Pkt); err != nil {
			return err
		}
	}
	return nil
}
