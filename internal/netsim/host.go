package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
)

// Direction of a captured packet relative to the capturing host.
type Direction int

// Capture directions.
const (
	DirOut Direction = iota
	DirIn
)

func (d Direction) String() string {
	if d == DirOut {
		return ">"
	}
	return "<"
}

// Captured is one pcap-style capture record.
type Captured struct {
	At  sim.Time
	Dir Direction
	Pkt *netpkt.Packet
}

func (c Captured) String() string {
	return fmt.Sprintf("%-12v %s %s", c.At, c.Dir, c.Pkt.Summary())
}

// IngressFilter decides whether an arriving packet is accepted (true) or
// dropped before any protocol processing. It is the simulation's iptables
// hook: the paper's client-side anti-censorship drops middlebox FIN/RST
// packets here, working from raw wire bytes. raw comes from a pooled
// buffer and is valid only for the duration of the call — filters that
// need the bytes afterwards must copy (or parse) them.
type IngressFilter func(raw []byte, pkt *netpkt.Packet) bool

// Host is an end system: it originates packets and dispatches arriving ones
// to protocol handlers.
type Host struct {
	addr          netip.Addr
	router        *Router
	accessLatency time.Duration
	net           *Network

	tcpHandler  func(*netpkt.Packet)
	udpHandlers map[uint16]func(*netpkt.Packet)
	icmpHandler func(*netpkt.Packet)

	filter IngressFilter

	capturing bool
	captures  []Captured
	// tap is the persistent capture hook (pcap writers): unlike the
	// Start/StopCapture window — which probes open and close around their
	// own flows — it observes every packet until cleared or the runtime
	// baseline is restored.
	tap PacketTap

	// baseline is the handler registration captured by MarkBaseline — the
	// pristine build-time state RestoreBaseline rewinds to.
	baseline *hostBaseline
}

// hostBaseline snapshots the handler state a world build leaves behind.
type hostBaseline struct {
	udpHandlers map[uint16]func(*netpkt.Packet)
	icmpHandler func(*netpkt.Packet)
	filter      IngressFilter
}

// AddHost attaches a host with address addr to router r.
func (n *Network) AddHost(addr netip.Addr, r *Router, accessLatency time.Duration) *Host {
	if _, dup := n.hosts[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate host %v", addr))
	}
	h := &Host{
		addr:          addr,
		router:        r,
		accessLatency: accessLatency,
		net:           n,
		udpHandlers:   make(map[uint16]func(*netpkt.Packet)),
	}
	n.hosts[addr] = h
	return h
}

// RemoveHost detaches a host from the network: packets to its address fall
// back to prefix routing (usually a claimed-prefix drop). It exists for
// bridge-owned endpoints seated after Build and removed with their
// bridge's lifecycle; build-time hosts are permanent.
func (n *Network) RemoveHost(h *Host) { delete(n.hosts, h.addr) }

// Addr returns the host's address.
func (h *Host) Addr() netip.Addr { return h.addr }

// Router returns the host's access router.
func (h *Host) Router() *Router { return h.router }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.net.eng }

// Send transmits a packet from this host. The caller sets pkt.IP.Src
// (normally the host's own address; raw probes may spoof).
//
//repolint:hotpath
func (h *Host) Send(pkt *netpkt.Packet) { h.net.SendFromHost(h, pkt) }

// SendAfter transmits a packet from this host after d of virtual time,
// without building a per-call closure (the processing-latency pattern of
// resolvers and middleboxes).
//
//repolint:hotpath
func (h *Host) SendAfter(d time.Duration, pkt *netpkt.Packet) {
	h.net.eng.ScheduleCall(d, h.net.sendFn, h, pkt)
}

// SetTCPHandler registers the function receiving all TCP packets
// (typically a tcpsim.Stack).
func (h *Host) SetTCPHandler(fn func(*netpkt.Packet)) { h.tcpHandler = fn }

// SetUDPHandler registers a handler for one UDP destination port.
func (h *Host) SetUDPHandler(port uint16, fn func(*netpkt.Packet)) {
	if fn == nil {
		delete(h.udpHandlers, port)
		return
	}
	h.udpHandlers[port] = fn
}

// SetICMPHandler registers the handler for arriving ICMP messages.
func (h *Host) SetICMPHandler(fn func(*netpkt.Packet)) { h.icmpHandler = fn }

// SetIngressFilter installs (or clears, with nil) the host's packet filter.
func (h *Host) SetIngressFilter(f IngressFilter) { h.filter = f }

// MarkBaseline records the host's current handler registration (UDP
// handlers, ICMP handler, ingress filter) as the pristine state
// RestoreBaseline rewinds to. The world builder calls it once the topology
// is assembled; everything registered afterwards — ephemeral DNS query
// ports, tracer ICMP hooks, evasion packet filters — is runtime state.
func (h *Host) MarkBaseline() {
	udp := make(map[uint16]func(*netpkt.Packet), len(h.udpHandlers))
	for p, fn := range h.udpHandlers {
		udp[p] = fn
	}
	h.baseline = &hostBaseline{udpHandlers: udp, icmpHandler: h.icmpHandler, filter: h.filter}
}

// RestoreBaseline rewinds the host to the MarkBaseline snapshot and drops
// any in-progress capture. A no-op when no baseline was marked. The
// handler map is cleared and refilled in place so a world reset does not
// churn one allocation per host.
func (h *Host) RestoreBaseline() {
	if h.baseline == nil {
		return
	}
	clear(h.udpHandlers)
	for p, fn := range h.baseline.udpHandlers {
		h.udpHandlers[p] = fn
	}
	h.icmpHandler = h.baseline.icmpHandler
	h.filter = h.baseline.filter
	h.capturing = false
	h.captures = nil
	h.tap = nil
}

// PacketTap observes one packet crossing a host. The packet is live
// simulator state: an outbound one mutates in flight (per-hop TTL
// decrement), so a tap that keeps bytes must serialize or copy during the
// call.
type PacketTap func(at sim.Time, dir Direction, pkt *netpkt.Packet)

// SetTap installs (or clears, with nil) the host's persistent capture tap.
// The tap runs for every packet in and out of the host, independent of the
// Start/StopCapture window, so a pcap writer keeps recording across the
// capture windows probes open for themselves. RestoreBaseline clears it.
func (h *Host) SetTap(fn PacketTap) { h.tap = fn }

// StartCapture begins recording all packets in and out of the host.
func (h *Host) StartCapture() {
	h.capturing = true
	h.captures = nil
}

// StopCapture stops recording and returns the capture.
func (h *Host) StopCapture() []Captured {
	h.capturing = false
	out := h.captures
	h.captures = nil
	return out
}

// Captures returns the capture so far without stopping.
func (h *Host) Captures() []Captured { return h.captures }

//repolint:hotpath
func (h *Host) capture(dir Direction, pkt *netpkt.Packet) {
	if h.tap != nil {
		h.tap(h.net.eng.Now(), dir, pkt)
	}
	if !h.capturing {
		return
	}
	rec := Captured{At: h.net.eng.Now(), Dir: dir, Pkt: pkt}
	if dir == DirOut {
		// Outbound packets mutate in flight (per-hop TTL decrement), so
		// the record needs its own copy. Delivery is terminal — an inbound
		// packet never changes again — so DirIn records share the packet.
		rec.Pkt = pkt.Clone()
	}
	h.captures = append(h.captures, rec)
}

// deliver dispatches an arriving packet: filter, capture, then protocol
// handler.
//
//repolint:hotpath
func (h *Host) deliver(pkt *netpkt.Packet) {
	if h.filter != nil {
		// Eager pooled marshal: the buffer is sized to the wire image so
		// serialization never reallocates, and a lazy raw thunk would cost
		// the closure allocation this path exists to avoid.
		buf := h.net.pool.Get(pkt.WireLen())
		var raw []byte
		if out, err := pkt.AppendMarshal(buf); err == nil {
			raw = out
			buf = out
		}
		keep := h.filter(raw, pkt)
		h.net.pool.Put(buf)
		if !keep {
			return
		}
	}
	h.capture(DirIn, pkt)
	switch {
	case pkt.TCP != nil:
		if h.tcpHandler != nil {
			h.tcpHandler(pkt)
		}
	case pkt.UDP != nil:
		if fn, ok := h.udpHandlers[pkt.UDP.DstPort]; ok {
			fn(pkt)
		}
		// No ICMP port-unreachable for unhandled UDP: scanned dead ports
		// simply time out, as the paper's resolver scans assume.
	case pkt.ICMP != nil:
		if h.icmpHandler != nil {
			h.icmpHandler(pkt)
		}
	}
}
