package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
)

func addr(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

// lineNetwork builds client - r0 - r1 - ... - r(k-1) - server.
func lineNetwork(t testing.TB, k int) (*sim.Engine, *Network, *Host, *Host, []*Router) {
	t.Helper()
	eng := sim.NewEngine(1)
	n := New(eng)
	routers := make([]*Router, k)
	for i := 0; i < k; i++ {
		routers[i] = n.AddRouter("r", 100, addr(100, 64, byte(i), 1))
		if i > 0 {
			n.Link(routers[i-1], routers[i], time.Millisecond)
		}
	}
	client := n.AddHost(addr(10, 0, 0, 2), routers[0], time.Millisecond)
	server := n.AddHost(addr(203, 0, 113, 80), routers[k-1], time.Millisecond)
	n.Build()
	return eng, n, client, server, routers
}

func TestDelivery(t *testing.T) {
	eng, _, client, server, _ := lineNetwork(t, 4)
	var got *netpkt.Packet
	server.SetUDPHandler(53, func(p *netpkt.Packet) { got = p })
	pkt := netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 9999, DstPort: 53, Payload: []byte("q")})
	client.Send(pkt)
	eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.IP.TTL != 64-4 {
		t.Errorf("TTL at delivery = %d, want 60 (4 router hops)", got.IP.TTL)
	}
}

func TestHopsBetween(t *testing.T) {
	_, n, client, server, _ := lineNetwork(t, 4)
	if h := n.HopsBetween(client, server); h != 5 {
		t.Errorf("hops = %d, want 5 (4 routers + host)", h)
	}
}

func TestTTLExpiryICMP(t *testing.T) {
	for ttl := 1; ttl <= 4; ttl++ {
		eng, _, client, server, routers := lineNetwork(t, 4)
		var icmp *netpkt.Packet
		client.SetICMPHandler(func(p *netpkt.Packet) { icmp = p })
		pkt := netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 40000, DstPort: 53})
		pkt.IP.TTL = uint8(ttl)
		client.Send(pkt)
		eng.Run()
		if icmp == nil {
			t.Fatalf("ttl=%d: no ICMP received", ttl)
		}
		if icmp.ICMP.Type != netpkt.ICMPTimeExceeded {
			t.Fatalf("ttl=%d: got %v", ttl, icmp.ICMP.Kind())
		}
		if icmp.IP.Src != routers[ttl-1].Addr {
			t.Errorf("ttl=%d: ICMP from %v, want router %d (%v)", ttl, icmp.IP.Src, ttl-1, routers[ttl-1].Addr)
		}
		fk, ok := icmp.ICMP.OriginalFlow()
		if !ok || fk.SrcPort != 40000 {
			t.Errorf("ttl=%d: original flow not recoverable: %v", ttl, fk)
		}
	}
}

func TestTTLJustEnoughDelivers(t *testing.T) {
	eng, _, client, server, _ := lineNetwork(t, 4)
	delivered := false
	server.SetUDPHandler(53, func(p *netpkt.Packet) { delivered = true })
	pkt := netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 53})
	pkt.IP.TTL = 5 // hops n = 5 reaches the host; n-1 = 4 dies at last router
	client.Send(pkt)
	eng.Run()
	if !delivered {
		t.Error("TTL=n packet should reach the destination host")
	}
}

func TestAnonymizedRouterSilent(t *testing.T) {
	eng, _, client, server, routers := lineNetwork(t, 4)
	routers[1].Anonymized = true
	var icmp *netpkt.Packet
	client.SetICMPHandler(func(p *netpkt.Packet) { icmp = p })
	pkt := netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 53})
	pkt.IP.TTL = 2
	client.Send(pkt)
	eng.Run()
	if icmp != nil {
		t.Error("anonymized router should not emit ICMP")
	}
}

type recordingTap struct{ seen []netpkt.FlowKey }

func (rt *recordingTap) Observe(p *netpkt.Packet, at *Router) { rt.seen = append(rt.seen, p.Flow()) }

func TestTapSeesBothDirections(t *testing.T) {
	eng, _, client, server, routers := lineNetwork(t, 4)
	tap := &recordingTap{}
	routers[2].AttachTap(tap)
	server.SetUDPHandler(53, func(p *netpkt.Packet) {
		reply := netpkt.NewUDP(server.Addr(), client.Addr(), &netpkt.UDPDatagram{SrcPort: 53, DstPort: p.UDP.SrcPort, Payload: []byte("r")})
		server.Send(reply)
	})
	client.Send(netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 7777, DstPort: 53, Payload: []byte("q")}))
	eng.Run()
	if len(tap.seen) != 2 {
		t.Fatalf("tap saw %d packets, want 2 (both directions)", len(tap.seen))
	}
	if tap.seen[0].Reverse() != tap.seen[1] {
		t.Errorf("tap flows not symmetric: %v vs %v", tap.seen[0], tap.seen[1])
	}
}

type consumeInline struct{ n int }

func (ci *consumeInline) Process(p *netpkt.Packet, at *Router) bool {
	ci.n++
	return p.UDP != nil && p.UDP.DstPort == 53
}

func TestInlineConsumes(t *testing.T) {
	eng, _, client, server, routers := lineNetwork(t, 4)
	ci := &consumeInline{}
	routers[1].AttachInline(ci)
	delivered := 0
	server.SetUDPHandler(53, func(p *netpkt.Packet) { delivered++ })
	server.SetUDPHandler(54, func(p *netpkt.Packet) { delivered++ })
	client.Send(netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 53}))
	client.Send(netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 54}))
	eng.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (port-53 packet consumed inline)", delivered)
	}
	if ci.n != 2 {
		t.Errorf("inline saw %d packets, want 2", ci.n)
	}
}

// Inline elements must see matching packets even when the TTL expires at
// their hop — this is how the iterative tracer elicits a censorship
// response instead of ICMP at the middlebox hop.
func TestInlineBeforeTTLExpiry(t *testing.T) {
	eng, _, client, server, routers := lineNetwork(t, 4)
	ci := &consumeInline{}
	routers[1].AttachInline(ci)
	var icmp *netpkt.Packet
	client.SetICMPHandler(func(p *netpkt.Packet) { icmp = p })
	pkt := netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 53})
	pkt.IP.TTL = 2 // would expire exactly at routers[1]
	client.Send(pkt)
	eng.Run()
	if ci.n != 1 {
		t.Error("inline did not see the expiring packet")
	}
	if icmp != nil {
		t.Error("consumed packet must not also produce ICMP")
	}
}

func TestInjectAt(t *testing.T) {
	eng, n, client, _, routers := lineNetwork(t, 4)
	var got *netpkt.Packet
	client.SetUDPHandler(1234, func(p *netpkt.Packet) { got = p })
	forged := netpkt.NewUDP(addr(203, 0, 113, 80), client.Addr(), &netpkt.UDPDatagram{SrcPort: 53, DstPort: 1234, Payload: []byte("forged")})
	n.InjectAt(routers[2], forged)
	eng.Run()
	if got == nil {
		t.Fatal("injected packet not delivered")
	}
	if got.IP.Src != addr(203, 0, 113, 80) {
		t.Errorf("forged source lost: %v", got.IP.Src)
	}
}

func TestPathSymmetry(t *testing.T) {
	// Diamond topology with an equal-cost tie: a-b1-c and a-b2-c.
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddRouter("a", 1, addr(100, 0, 0, 1))
	b1 := n.AddRouter("b1", 1, addr(100, 0, 0, 2))
	b2 := n.AddRouter("b2", 1, addr(100, 0, 0, 3))
	c := n.AddRouter("c", 1, addr(100, 0, 0, 4))
	n.Link(a, b1, time.Millisecond)
	n.Link(a, b2, time.Millisecond)
	n.Link(b1, c, time.Millisecond)
	n.Link(b2, c, time.Millisecond)
	n.Build()
	fwd := n.PathRouters(a, c)
	rev := n.PathRouters(c, a)
	if len(fwd) != 3 || len(rev) != 3 {
		t.Fatalf("path lengths: %d, %d", len(fwd), len(rev))
	}
	for i := range fwd {
		if fwd[i] != rev[len(rev)-1-i] {
			t.Fatalf("paths not symmetric: %v vs %v", fwd, rev)
		}
	}
}

func TestDisconnectedDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	r1 := n.AddRouter("r1", 1, addr(100, 0, 0, 1))
	r2 := n.AddRouter("r2", 2, addr(100, 0, 0, 2)) // no link
	h1 := n.AddHost(addr(10, 0, 0, 1), r1, time.Millisecond)
	n.AddHost(addr(10, 0, 1, 1), r2, time.Millisecond)
	n.Build()
	h1.Send(netpkt.NewUDP(h1.Addr(), addr(10, 0, 1, 1), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 2}))
	eng.Run()
	if n.Drops != 1 {
		t.Errorf("Drops = %d, want 1", n.Drops)
	}
}

func TestDeadPrefixAddressDrops(t *testing.T) {
	eng, n, client, _, routers := lineNetwork(t, 4)
	n.ClaimPrefix(netip.MustParsePrefix("203.0.114.0/24"), routers[3])
	n.Build()
	client.Send(netpkt.NewUDP(client.Addr(), addr(203, 0, 114, 77), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 53}))
	eng.Run()
	if n.Drops != 1 {
		t.Errorf("Drops = %d, want 1 (dead IP in claimed prefix)", n.Drops)
	}
}

func TestASNOf(t *testing.T) {
	_, n, client, server, routers := lineNetwork(t, 4)
	n.ClaimPrefix(netip.MustParsePrefix("203.0.114.0/24"), routers[3])
	if n.ASNOf(client.Addr()) != 100 || n.ASNOf(server.Addr()) != 100 {
		t.Error("host ASN lookup failed")
	}
	if n.ASNOf(addr(203, 0, 114, 9)) != 100 {
		t.Error("prefix ASN lookup failed")
	}
	if n.ASNOf(addr(8, 8, 8, 8)) != 0 {
		t.Error("unrouted address should have ASN 0")
	}
}

func TestIngressFilterDrops(t *testing.T) {
	eng, _, client, server, _ := lineNetwork(t, 4)
	got := 0
	client.SetUDPHandler(99, func(p *netpkt.Packet) { got++ })
	client.SetIngressFilter(func(raw []byte, p *netpkt.Packet) bool {
		return p.UDP == nil || string(p.UDP.Payload) != "evil"
	})
	server.Send(netpkt.NewUDP(server.Addr(), client.Addr(), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 99, Payload: []byte("evil")}))
	server.Send(netpkt.NewUDP(server.Addr(), client.Addr(), &netpkt.UDPDatagram{SrcPort: 1, DstPort: 99, Payload: []byte("good")}))
	eng.Run()
	if got != 1 {
		t.Errorf("delivered %d, want 1 (filter drops 'evil')", got)
	}
}

func TestCapture(t *testing.T) {
	eng, _, client, server, _ := lineNetwork(t, 4)
	server.SetUDPHandler(53, func(p *netpkt.Packet) {
		server.Send(netpkt.NewUDP(server.Addr(), client.Addr(), &netpkt.UDPDatagram{SrcPort: 53, DstPort: p.UDP.SrcPort}))
	})
	client.StartCapture()
	client.Send(netpkt.NewUDP(client.Addr(), server.Addr(), &netpkt.UDPDatagram{SrcPort: 5000, DstPort: 53}))
	eng.Run()
	cap := client.StopCapture()
	if len(cap) != 2 {
		t.Fatalf("captured %d, want 2", len(cap))
	}
	if cap[0].Dir != DirOut || cap[1].Dir != DirIn {
		t.Errorf("directions: %v %v", cap[0].Dir, cap[1].Dir)
	}
	if cap[1].At <= cap[0].At {
		t.Error("capture timestamps not increasing")
	}
}

// Property: on random connected graphs, every router pair routes
// symmetrically and paths terminate.
func TestPropertyRandomTopologySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine(seed)
		n := New(eng)
		rng := eng.Rand()
		R := 3 + rng.Intn(12)
		rs := make([]*Router, R)
		for i := range rs {
			rs[i] = n.AddRouter("r", 1, addr(100, 1, byte(i), 1))
			if i > 0 {
				n.Link(rs[rng.Intn(i)], rs[i], time.Millisecond) // spanning tree
			}
		}
		for e := 0; e < R/2; e++ { // extra edges
			a, b := rng.Intn(R), rng.Intn(R)
			if a != b {
				n.Link(rs[a], rs[b], time.Millisecond)
			}
		}
		n.Build()
		for i := 0; i < R; i++ {
			for j := i + 1; j < R; j++ {
				fwd := n.PathRouters(rs[i], rs[j])
				rev := n.PathRouters(rs[j], rs[i])
				if fwd == nil || rev == nil || len(fwd) != len(rev) {
					return false
				}
				for k := range fwd {
					if fwd[k] != rev[len(rev)-1-k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
