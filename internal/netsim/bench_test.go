package netsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
)

// forwardChain builds a linear topology host A — r0 — r1 — … — r(n-1) — host
// B and returns the engine, the sending host and a reusable packet
// addressed to B.
func forwardChain(tb testing.TB, hops int) (*sim.Engine, *Host, *netpkt.Packet) {
	tb.Helper()
	return forwardChainOn(tb, sim.NewEngine(1), hops)
}

// forwardChainOn is forwardChain on a caller-supplied engine, so the
// telemetry benchmark can strip the engine's registry before the network
// resolves its instruments.
func forwardChainOn(tb testing.TB, eng *sim.Engine, hops int) (*sim.Engine, *Host, *netpkt.Packet) {
	tb.Helper()
	n := New(eng)
	routers := make([]*Router, hops)
	for i := range routers {
		routers[i] = n.AddRouter("r", 64500, netip.AddrFrom4([4]byte{10, 0, byte(i), 1}))
		if i > 0 {
			n.Link(routers[i-1], routers[i], time.Millisecond)
		}
	}
	src := n.AddHost(netip.MustParseAddr("10.1.0.1"), routers[0], time.Millisecond)
	dst := n.AddHost(netip.MustParseAddr("10.2.0.1"), routers[hops-1], time.Millisecond)
	delivered := 0
	dst.SetUDPHandler(4242, func(*netpkt.Packet) { delivered++ })
	n.Build()
	pkt := netpkt.NewUDP(src.Addr(), dst.Addr(), &netpkt.UDPDatagram{
		SrcPort: 9999, DstPort: 4242, Payload: []byte("steady-state payload"),
	})
	return eng, src, pkt
}

// TestForwardSteadyStateZeroAlloc is the hot-path contract: once the
// engine's arena is warm, forwarding a packet across N hops — send,
// per-hop arrival, delivery dispatch — allocates nothing. The packet is
// reused across iterations exactly like a pooled buffer would be.
func TestForwardSteadyStateZeroAlloc(t *testing.T) {
	eng, src, pkt := forwardChain(t, 8)
	// Warm the engine arena and the route.
	pkt.IP.TTL = 64
	src.Send(pkt)
	eng.Run()
	allocs := testing.AllocsPerRun(100, func() {
		pkt.IP.TTL = 64
		src.Send(pkt)
		eng.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state forward allocates %.1f objects per packet, want 0", allocs)
	}
}

// BenchmarkPacketForward prices the end-to-end per-packet pipeline across
// an 8-router path. CI runs it with -benchmem and fails the build if it
// reports a nonzero allocs/op.
func BenchmarkPacketForward(b *testing.B) {
	eng, src, pkt := forwardChain(b, 8)
	pkt.IP.TTL = 64
	src.Send(pkt)
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.IP.TTL = 64
		src.Send(pkt)
		eng.Run()
	}
}

// BenchmarkPacketForwardTapped is the same pipeline with a wiretap-style
// per-hop inspection cost modelled by a counting tap, pricing the Observe
// fan-out on the forwarding path.
func BenchmarkPacketForwardTapped(b *testing.B) {
	eng, src, pkt := forwardChain(b, 8)
	// Attach a counting tap at every router.
	seen := 0
	var tap tapFunc = func(p *netpkt.Packet, at *Router) { seen++ }
	for _, r := range src.Network().Routers() {
		r.AttachTap(tap)
	}
	pkt.IP.TTL = 64
	src.Send(pkt)
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.IP.TTL = 64
		src.Send(pkt)
		eng.Run()
	}
}

// BenchmarkTelemetryOverhead prices the obs layer on the same 8-hop
// pipeline: "instrumented" runs with the engine's live registry (the
// default), "stripped" with StripTelemetry rebinding every instrument to
// nil before the network resolves them. The delta is the telemetry tax;
// CI records both and fails if either variant allocates.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, strip bool) {
		eng := sim.NewEngine(1)
		if strip {
			eng.StripTelemetry()
		}
		_, src, pkt := forwardChainOn(b, eng, 8)
		pkt.IP.TTL = 64
		src.Send(pkt)
		eng.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pkt.IP.TTL = 64
			src.Send(pkt)
			eng.Run()
		}
	}
	b.Run("instrumented", func(b *testing.B) { run(b, false) })
	b.Run("stripped", func(b *testing.B) { run(b, true) })
}

// TestTelemetryCountsForward cross-checks the instruments against the
// bench topology: one warm 8-hop send forwards the packet through every
// router and delivers it once, visible in the engine registry.
func TestTelemetryCountsForward(t *testing.T) {
	eng, src, pkt := forwardChain(t, 8)
	reg := eng.Obs()
	pkt.IP.TTL = 64
	src.Send(pkt)
	eng.Run()
	fwd := reg.Counter("netsim_packets_forwarded_total").Value()
	del := reg.Counter("netsim_packets_delivered_total").Value()
	if fwd < 8 {
		t.Errorf("forwarded = %d, want >= 8 (one per hop)", fwd)
	}
	if del != 1 {
		t.Errorf("delivered = %d, want 1", del)
	}
	if drops := reg.Counter("netsim_packets_dropped_total").Value(); drops != 0 {
		t.Errorf("dropped = %d, want 0", drops)
	}
	eng.Reset()
	if reg.Counter("netsim_packets_forwarded_total").Value() != 0 {
		t.Errorf("engine reset did not rewind the world registry")
	}
}

// tapFunc adapts a function to the Tap interface for tests.
type tapFunc func(*netpkt.Packet, *Router)

func (f tapFunc) Observe(p *netpkt.Packet, at *Router) { f(p, at) }

// TestFilteredDeliveryZeroAlloc pins the pooled ingress-filter path: the
// wire image is marshaled into a buffer sized by WireLen, so a filtered
// delivery — marshal, filter call, release — allocates nothing steady
// state.
func TestFilteredDeliveryZeroAlloc(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	r := n.AddRouter("r", 64500, netip.MustParseAddr("10.0.0.1"))
	src := n.AddHost(netip.MustParseAddr("10.1.0.1"), r, time.Millisecond)
	dst := n.AddHost(netip.MustParseAddr("10.2.0.1"), r, time.Millisecond)
	rawSeen := 0
	dst.SetIngressFilter(func(raw []byte, p *netpkt.Packet) bool {
		if len(raw) == p.WireLen() {
			rawSeen++
		}
		return true
	})
	dst.SetUDPHandler(99, func(*netpkt.Packet) {})
	n.Build()
	pkt := netpkt.NewUDP(src.Addr(), dst.Addr(), &netpkt.UDPDatagram{
		SrcPort: 1, DstPort: 99, Payload: bytes.Repeat([]byte("p"), 180),
	})
	pkt.IP.TTL = 64
	src.Send(pkt)
	eng.Run()
	allocs := testing.AllocsPerRun(100, func() {
		pkt.IP.TTL = 64
		src.Send(pkt)
		eng.Run()
	})
	if rawSeen == 0 {
		t.Fatal("filter never saw a full wire image")
	}
	if allocs != 0 {
		t.Errorf("filtered delivery allocates %.1f objects per packet, want 0", allocs)
	}
}
