// Package netsim simulates a router-level Internet: routers joined by
// latency-bearing links, hosts attached to routers, static shortest-path
// routing, per-hop TTL decrement with ICMP Time Exceeded generation, and
// attachment points for on-path network elements (inline boxes that may
// consume packets, and taps that receive copies) — the two ways the paper's
// interceptive and wiretap middleboxes sit in ISP networks.
//
// The simulation is deterministic: all delivery is scheduled on a sim.Engine
// and forwarding paths are canonical (the path used from A to B is always
// the exact reverse of the path used from B to A), which mirrors the
// symmetric intra-AS routing the paper's traceroute methodology relies on.
package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
	"repro/obs"
)

// Tap receives a copy of every packet crossing the router it is attached
// to. Wiretap middleboxes implement Tap.
type Tap interface {
	Observe(pkt *netpkt.Packet, at *Router)
}

// Inline sees every packet crossing its router before forwarding and may
// consume it (returning true), in which case the packet travels no further.
// Interceptive middleboxes implement Inline.
type Inline interface {
	Process(pkt *netpkt.Packet, at *Router) bool
}

// Router is one router-level hop.
type Router struct {
	ID   int
	Name string
	ASN  int
	Addr netip.Addr
	// Anonymized routers do not emit ICMP Time Exceeded; they show up as
	// asterisks in traceroute, exactly how the paper says middlebox-
	// hosting routers behave in all tested ISPs (§6.1).
	Anonymized bool

	taps   []Tap
	inline []Inline
	policy func(dst netip.Addr) (*Router, bool)
	net    *Network
}

// SetPolicy installs a policy-routing hook consulted before the global
// shortest-path table: returning (next, true) forwards the packet to next
// (which must be directly linked). This is the simulation's stand-in for
// BGP policy — customer ISPs steering destinations through a chosen
// transit provider, and providers steering return traffic symmetrically so
// their on-path boxes see both directions of transiting flows.
func (r *Router) SetPolicy(fn func(dst netip.Addr) (*Router, bool)) { r.policy = fn }

// AttachTap attaches a wiretap to the router.
func (r *Router) AttachTap(t Tap) { r.taps = append(r.taps, t) }

// AttachInline attaches an inline element to the router.
func (r *Router) AttachInline(i Inline) { r.inline = append(r.inline, i) }

// Network returns the network the router belongs to.
func (r *Router) Network() *Network { return r.net }

// edge is one directed adjacency.
type edge struct {
	to      int
	latency time.Duration
}

// prefixEntry homes an advertised prefix at a router.
type prefixEntry struct {
	prefix netip.Prefix
	router *Router
	asn    int
}

// Network owns the topology and schedules all packet movement.
type Network struct {
	eng     *sim.Engine
	routers []*Router
	adj     [][]edge
	hosts   map[netip.Addr]*Host

	prefixes []prefixEntry

	// dist[a*R+b] is the hop distance between routers (-1 disconnected).
	dist []int16
	// nextHop[v*R+d] is the fallback tree: the lowest-ID neighbor of v one
	// hop closer to d. Used for packets that have left their canonical
	// path (policy detours, spoofed sources, router-originated ICMP).
	nextHop []int32
	// pairPath[a*R+b] (a<b) is the canonical router path between a and b,
	// inclusive. Both directions of a flow follow this same path, so
	// on-path middleboxes observe complete conversations, matching the
	// symmetric intra-AS routing the paper's methodology relies on.
	pairPath [][]int32
	built    bool

	// Drops counts packets dropped for having no route or no receiving
	// host; useful for experiment sanity checks.
	Drops uint64

	// pool recycles transient wire buffers (ingress-filter images, ICMP
	// quotes); single-threaded like the engine.
	pool netpkt.BufPool
	// arriveFn/deliverFn/sendFn are the long-lived dispatch callbacks the
	// hot path schedules through sim.Engine.ScheduleCall, so forwarding a
	// packet across N hops builds no per-hop closures: steady state, a
	// forwarded packet allocates nothing.
	arriveFn  func(a, b any)
	deliverFn func(a, b any)
	sendFn    func(a, b any)

	// Per-world telemetry, resolved once from the engine registry: packet
	// counts are virtual-event driven and thus deterministic.
	cForwarded *obs.Counter
	cDelivered *obs.Counter
	cDropped   *obs.Counter
}

// New creates an empty network on the given engine.
func New(eng *sim.Engine) *Network {
	n := &Network{eng: eng, hosts: make(map[netip.Addr]*Host)}
	n.arriveFn = func(a, b any) { n.arriveAtRouter(a.(*Router), b.(*netpkt.Packet)) }
	n.deliverFn = func(a, b any) { a.(*Host).deliver(b.(*netpkt.Packet)) }
	n.sendFn = func(a, b any) { n.SendFromHost(a.(*Host), b.(*netpkt.Packet)) }
	reg := eng.Obs()
	n.cForwarded = reg.Counter("netsim_packets_forwarded_total")
	n.cDelivered = reg.Counter("netsim_packets_delivered_total")
	n.cDropped = reg.Counter("netsim_packets_dropped_total")
	n.pool.ObsGets = reg.Counter("netsim_pool_gets_total")
	n.pool.ObsHits = reg.Counter("netsim_pool_hits_total")
	return n
}

// BufPool exposes the network's wire-buffer free list for components that
// serialize on the packet path (same single-threaded contract as the
// engine).
func (n *Network) BufPool() *netpkt.BufPool { return &n.pool }

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.eng }

// AddRouter creates a router. addr is the router's interface address used
// as the source of ICMP errors it generates.
func (n *Network) AddRouter(name string, asn int, addr netip.Addr) *Router {
	r := &Router{ID: len(n.routers), Name: name, ASN: asn, Addr: addr, net: n}
	n.routers = append(n.routers, r)
	n.adj = append(n.adj, nil)
	n.built = false
	return r
}

// Routers returns all routers in creation order.
func (n *Network) Routers() []*Router { return n.routers }

// Link joins two routers bidirectionally with the given one-way latency.
func (n *Network) Link(a, b *Router, latency time.Duration) {
	if a.net != n || b.net != n {
		panic("netsim: linking routers from a different network")
	}
	n.adj[a.ID] = append(n.adj[a.ID], edge{to: b.ID, latency: latency})
	n.adj[b.ID] = append(n.adj[b.ID], edge{to: a.ID, latency: latency})
	n.built = false
}

// ClaimPrefix homes an advertised prefix at a router. Packets to addresses
// within the prefix that have no registered host are routed to the router
// and dropped there (a dead IP). Prefix claims also drive the AS lookup
// used by the probe's "resolved IP in client AS" heuristic.
func (n *Network) ClaimPrefix(p netip.Prefix, r *Router) {
	n.prefixes = append(n.prefixes, prefixEntry{prefix: p, router: r, asn: r.ASN})
}

// Prefixes returns all advertised prefixes with their origin ASN, the
// simulation's analogue of the public CIDR report the paper used to find
// target prefixes per ISP.
func (n *Network) Prefixes() []PrefixInfo {
	out := make([]PrefixInfo, len(n.prefixes))
	for i, pe := range n.prefixes {
		out[i] = PrefixInfo{Prefix: pe.prefix, ASN: pe.asn}
	}
	return out
}

// PrefixInfo is one advertised route.
type PrefixInfo struct {
	Prefix netip.Prefix
	ASN    int
}

// ASNOf returns the origin ASN advertising addr, or 0 if unrouted.
func (n *Network) ASNOf(addr netip.Addr) int {
	if h, ok := n.hosts[addr]; ok {
		return h.router.ASN
	}
	for _, pe := range n.prefixes {
		if pe.prefix.Contains(addr) {
			return pe.asn
		}
	}
	return 0
}

// homeRouter finds the router a destination address lives behind.
func (n *Network) homeRouter(addr netip.Addr) *Router {
	if h, ok := n.hosts[addr]; ok {
		return h.router
	}
	for _, pe := range n.prefixes {
		if pe.prefix.Contains(addr) {
			return pe.router
		}
	}
	return nil
}

// Host returns the host registered at addr, if any.
func (n *Network) Host(addr netip.Addr) (*Host, bool) {
	h, ok := n.hosts[addr]
	return h, ok
}

// MarkBaseline snapshots every host's handler registration as the pristine
// build-time state (see Host.MarkBaseline).
func (n *Network) MarkBaseline() {
	for _, h := range n.hosts {
		h.MarkBaseline()
	}
}

// ResetRuntime rewinds the network's runtime state — per-host handler
// registrations, captures, filters, and the drop counter — to the
// MarkBaseline snapshot. Topology, routing tables and policies are
// build-time state and stay untouched.
func (n *Network) ResetRuntime() {
	n.Drops = 0
	// Reset is an ownership hand-off point: a parked replica world may be
	// adopted by a different campaign worker.
	n.RebindPool()
	for _, h := range n.hosts {
		h.RestoreBaseline()
	}
}

// RebindPool releases the buffer pool's goroutine binding at a serialized
// ownership hand-off (race/repolint_debug builds; a no-op otherwise). The
// caller asserts all prior use of the network happened-before this call.
func (n *Network) RebindPool() { n.pool.Rebind() }

// Build computes routing tables. It must be called after topology changes
// and before traffic is sent. Paths are canonical per unordered router
// pair: the route B->A is the exact reverse of A->B, so on-path elements
// see both directions of every flow they intercept.
func (n *Network) Build() {
	R := len(n.routers)
	// Sort adjacency for deterministic iteration.
	for i := range n.adj {
		sort.Slice(n.adj[i], func(a, b int) bool { return n.adj[i][a].to < n.adj[i][b].to })
	}
	// All-pairs hop distances by BFS from every router.
	n.dist = make([]int16, R*R)
	for i := range n.dist {
		n.dist[i] = -1
	}
	queue := make([]int32, 0, R)
	for s := 0; s < R; s++ {
		n.dist[s*R+s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			du := n.dist[s*R+int(u)]
			for _, e := range n.adj[u] {
				if n.dist[s*R+e.to] == -1 {
					n.dist[s*R+e.to] = du + 1
					queue = append(queue, int32(e.to))
				}
			}
		}
	}
	// Fallback tree: lowest-ID neighbor one hop closer to each destination.
	n.nextHop = make([]int32, R*R)
	for v := 0; v < R; v++ {
		for d := 0; d < R; d++ {
			n.nextHop[v*R+d] = -1
			dv := n.dist[d*R+v]
			if v == d || dv <= 0 {
				continue
			}
			for _, e := range n.adj[v] { // sorted: first match is lowest ID
				if n.dist[d*R+e.to] == dv-1 {
					n.nextHop[v*R+d] = int32(e.to)
					break
				}
			}
		}
	}
	// Canonical per-pair paths: for a<b the lexicographically smallest
	// shortest path walked greedily from a; both directions use it.
	n.pairPath = make([][]int32, R*R)
	for a := 0; a < R; a++ {
		for b := a + 1; b < R; b++ {
			if n.dist[a*R+b] < 0 {
				continue
			}
			d := int(n.dist[a*R+b])
			path := make([]int32, 0, d+1)
			cur := int32(a)
			path = append(path, cur)
			for cur != int32(b) {
				dc := n.dist[b*R+int(cur)]
				for _, e := range n.adj[cur] {
					if n.dist[b*R+e.to] == dc-1 {
						cur = int32(e.to)
						break
					}
				}
				path = append(path, cur)
			}
			n.pairPath[a*R+b] = path
		}
	}
	n.built = true
}

// pairPathFor returns the canonical path from a to b (oriented a->b).
func (n *Network) pairPathFor(a, b int) []int32 {
	R := len(n.routers)
	if a == b {
		return nil
	}
	if a < b {
		return n.pairPath[a*R+b]
	}
	fwd := n.pairPath[b*R+a]
	if fwd == nil {
		return nil
	}
	rev := make([]int32, len(fwd))
	for i, v := range fwd {
		rev[len(fwd)-1-i] = v
	}
	return rev
}

// nextToward picks the next hop at router cur for a packet whose source
// homes at srcHome (may be nil) and whose destination homes at dstHome:
// the canonical pair path when cur is on it, else the fallback tree.
func (n *Network) nextToward(cur *Router, srcHome, dstHome *Router) *Router {
	R := len(n.routers)
	if srcHome != nil && srcHome != dstHome {
		lo, hi := srcHome.ID, dstHome.ID
		if lo > hi {
			lo, hi = hi, lo
		}
		if path := n.pairPath[lo*R+hi]; path != nil {
			towardEnd := path[len(path)-1] == int32(dstHome.ID)
			for i, v := range path {
				if v != int32(cur.ID) {
					continue
				}
				if towardEnd && i+1 < len(path) {
					return n.routers[path[i+1]]
				}
				if !towardEnd && i > 0 {
					return n.routers[path[i-1]]
				}
				break
			}
		}
	}
	nh := n.nextHop[cur.ID*R+dstHome.ID]
	if nh < 0 {
		return nil
	}
	return n.routers[nh]
}

// PathRouters returns the canonical router path between two routers,
// inclusive of both endpoints, or nil if disconnected.
func (n *Network) PathRouters(a, b *Router) []*Router {
	if !n.built {
		panic("netsim: Build not called")
	}
	ids := n.pairPathFor(a.ID, b.ID)
	if ids == nil {
		return nil
	}
	path := make([]*Router, len(ids))
	for i, v := range ids {
		path[i] = n.routers[v]
	}
	return path
}

// linkLatency returns the latency of the direct link a->b.
func (n *Network) linkLatency(a, b int) time.Duration {
	for _, e := range n.adj[a] {
		if e.to == b {
			return e.latency
		}
	}
	return time.Millisecond
}

// SendFromHost injects a packet originating at host h.
//
//repolint:hotpath
func (n *Network) SendFromHost(h *Host, pkt *netpkt.Packet) {
	if !n.built {
		panic("netsim: Build not called")
	}
	h.capture(DirOut, pkt)
	n.eng.ScheduleCall(h.accessLatency, n.arriveFn, h.router, pkt)
}

// InjectAt routes a packet into the network as if generated at router r
// (used by middleboxes for forged responses). The packet is not inspected
// by r's own taps or inline elements and r does not decrement its TTL.
//
//repolint:hotpath
func (n *Network) InjectAt(r *Router, pkt *netpkt.Packet) {
	if !n.built {
		panic("netsim: Build not called")
	}
	n.forwardFrom(r, pkt)
}

// arriveAtRouter is the per-hop pipeline: taps, inline elements, TTL
// decrement (with ICMP Time Exceeded), then forwarding or local delivery.
// Inline inspection happens before TTL handling: an interceptive box grabs
// a matching packet even when its TTL would expire at that hop, which is
// why the paper's iterative tracer sees censorship notifications instead of
// ICMP once the probe TTL reaches the middlebox hop.
//
//repolint:hotpath
func (n *Network) arriveAtRouter(r *Router, pkt *netpkt.Packet) {
	n.cForwarded.Inc()
	for _, t := range r.taps {
		t.Observe(pkt, r)
	}
	for _, i := range r.inline {
		if i.Process(pkt, r) {
			return
		}
	}
	if pkt.IP.TTL <= 1 {
		pkt.IP.TTL = 0
		if !r.Anonymized {
			n.forwardFrom(r, n.timeExceeded(r, pkt))
		}
		return
	}
	pkt.IP.TTL--
	n.forwardFrom(r, pkt)
}

// timeExceeded builds the router's ICMP Time Exceeded for an expired
// packet, quoting its wire image through the pooled scratch path. TCP
// quotes never serialize the payload (AppendQuote); other transports
// need the full image, so the buffer is sized for it up front.
//
//repolint:hotpath
func (n *Network) timeExceeded(r *Router, expired *netpkt.Packet) *netpkt.Packet {
	need := 64
	if expired.TCP == nil {
		need = expired.WireLen()
	}
	buf := n.pool.Get(need)
	wire, err := expired.AppendQuote(buf)
	if err != nil {
		wire = buf[:0]
	}
	te := netpkt.NewTimeExceededFromWire(r.Addr, expired.IP.Src, wire)
	n.pool.Put(wire)
	return te
}

// forwardFrom moves a packet one step from router r: local delivery if the
// destination host hangs off r, otherwise on to the next hop.
//
//repolint:hotpath
func (n *Network) forwardFrom(r *Router, pkt *netpkt.Packet) {
	dst := pkt.IP.Dst
	if h, ok := n.hosts[dst]; ok && h.router == r {
		n.cDelivered.Inc()
		n.eng.ScheduleCall(h.accessLatency, n.deliverFn, h, pkt)
		return
	}
	if r.policy != nil {
		if next, ok := r.policy(dst); ok {
			n.eng.ScheduleCall(n.linkLatency(r.ID, next.ID), n.arriveFn, next, pkt)
			return
		}
	}
	home := n.homeRouter(dst)
	if home == nil {
		n.Drops++
		n.cDropped.Inc()
		return
	}
	if home == r {
		// Dead address inside a claimed prefix: silently dropped, like a
		// non-responding IP in a scanned ISP prefix.
		n.Drops++
		n.cDropped.Inc()
		return
	}
	next := n.nextToward(r, n.homeRouter(pkt.IP.Src), home)
	if next == nil {
		n.Drops++
		n.cDropped.Inc()
		return
	}
	n.eng.ScheduleCall(n.linkLatency(r.ID, next.ID), n.arriveFn, next, pkt)
}

// PathBetweenHosts returns the router path a packet from host a to host b
// actually takes, honouring per-router policy routing. Nil if unroutable.
func (n *Network) PathBetweenHosts(a, b *Host) []*Router {
	return n.pathFrom(a.router, b.addr)
}

// PathHostToAddr returns the router path a packet from host a to an
// arbitrary destination address takes (the address need not have a live
// host — dead IPs inside claimed prefixes route to their home router).
func (n *Network) PathHostToAddr(a *Host, dst netip.Addr) []*Router {
	return n.pathFrom(a.router, dst)
}

func (n *Network) pathFrom(start *Router, dstAddr netip.Addr) []*Router {
	if !n.built {
		panic("netsim: Build not called")
	}
	home := n.homeRouter(dstAddr)
	if home == nil {
		return nil
	}
	cur := start
	path := []*Router{cur}
	for cur != home {
		var next *Router
		if cur.policy != nil {
			if nh, ok := cur.policy(dstAddr); ok {
				next = nh
			}
		}
		if next == nil {
			next = n.nextToward(cur, start, home)
			if next == nil {
				return nil
			}
		}
		cur = next
		path = append(path, cur)
		if len(path) > len(n.routers) {
			panic("netsim: policy routing loop")
		}
	}
	return path
}

// HopsBetween returns the paper's hop count n between two hosts: the number
// of routers on the path plus one (the destination host). A traceroute
// probe with TTL n-1 dies at the last router; TTL n reaches the host.
func (n *Network) HopsBetween(a, b *Host) int {
	p := n.PathBetweenHosts(a, b)
	if p == nil {
		return 0
	}
	return len(p) + 1
}

func (n *Network) String() string {
	return fmt.Sprintf("netsim.Network{routers=%d hosts=%d prefixes=%d}",
		len(n.routers), len(n.hosts), len(n.prefixes))
}
