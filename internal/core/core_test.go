package core

import (
	"testing"

	"repro/internal/anticensor"
)

func TestFacadeEndToEnd(t *testing.T) {
	w := NewWorld(SmallWorldConfig())
	p := NewProbe(w, "Idea")

	// Find a blocked domain via the oracle and confirm the probe detects
	// it through the façade.
	var blocked string
	for _, d := range w.ISP("Idea").HTTPList {
		if tr := w.TruthFor(w.ISP("Idea"), d); tr.HTTPFiltered {
			if s, ok := w.Catalog.Site(d); ok && s.Kind == 0 /* KindNormal */ {
				blocked = d
				break
			}
		}
	}
	if blocked == "" {
		t.Skip("no blocked normal domain")
	}
	det := p.DetectHTTP(blocked)
	if !det.Blocked {
		t.Errorf("façade probe missed blocked domain: %+v", det)
	}
	if !Evade(p, anticensor.TechExtraSpace, blocked) {
		t.Error("façade evasion failed")
	}
}

func TestFacadeConfigs(t *testing.T) {
	if DefaultWorldConfig().PBWCount != 1200 {
		t.Error("default world must carry 1200 PBWs")
	}
	if QuickSuiteOptions().World.PBWCount >= DefaultSuiteOptions().World.PBWCount {
		t.Error("quick options should be smaller than default")
	}
}
