// Package core was the public façade of the reproduction: a file of type
// aliases over the internal packages.
//
// Deprecated: use the top-level censor package instead. It replaces this
// façade with a context-aware Session, functional options, a uniform
// Measurement interface over every detector, and a concurrent campaign
// runner with deterministic JSONL output. The equivalent of the old
// façade flow:
//
//	sess, _ := censor.NewSession(ctx, censor.WithScale(censor.ScaleSmall))
//	results, _ := sess.Measure(ctx, "Airtel", censor.HTTP(), "porn-site-001.com")
//	fmt.Println(results[0].Blocked)
//
// The aliases below remain for one release so existing callers keep
// compiling; they will be removed together with this package.
package core

import (
	"repro/internal/anticensor"
	"repro/internal/experiments"
	"repro/internal/ispnet"
	"repro/internal/ooni"
	"repro/internal/probe"
)

// Re-exported types.
type (
	// World is the assembled simulated Internet.
	World = ispnet.World
	// WorldConfig sizes the world.
	WorldConfig = ispnet.Config
	// ISP is one built network operator.
	ISP = ispnet.ISP
	// Probe is the measurement client toolkit.
	Probe = probe.Probe
	// ScanConfig sizes coverage scans.
	ScanConfig = probe.ScanConfig
	// Suite runs the paper's evaluation.
	Suite = experiments.Suite
	// SuiteOptions sizes a suite run.
	SuiteOptions = experiments.Options
	// OONIRunner replicates OONI web_connectivity.
	OONIRunner = ooni.Runner
	// EvasionTechnique is one §5 anti-censorship technique.
	EvasionTechnique = anticensor.Technique
)

// DefaultWorldConfig is the paper-scale world (1200 PBWs, Alexa 1000, 40
// vantage points, the nine ISPs plus TATA).
//
// Deprecated: use censor.NewSession with censor.WithScale(censor.ScalePaper).
func DefaultWorldConfig() WorldConfig { return ispnet.DefaultConfig() }

// SmallWorldConfig is a reduced world for experimentation.
//
// Deprecated: use censor.NewSession with censor.WithScale(censor.ScaleSmall).
func SmallWorldConfig() WorldConfig { return ispnet.SmallConfig() }

// NewWorld builds a simulated Internet.
//
// Deprecated: censor.Session owns world construction; use Session.World
// for direct access.
func NewWorld(cfg WorldConfig) *World { return ispnet.NewWorld(cfg) }

// NewProbe attaches a measurement probe to an ISP's client.
//
// Deprecated: use censor.Session.Vantage and Vantage.Probe.
func NewProbe(w *World, ispName string) *Probe {
	return probe.New(w, w.ISP(ispName))
}

// NewSuite builds an experiment suite (its own world included).
//
// Deprecated: use experiments.NewSuiteWith over a censor.Session.
func NewSuite(opt SuiteOptions) *Suite { return experiments.NewSuite(opt) }

// DefaultSuiteOptions is the paper-scale evaluation configuration.
//
// Deprecated: use experiments.DefaultOptions.
func DefaultSuiteOptions() SuiteOptions { return experiments.DefaultOptions() }

// QuickSuiteOptions is the fast smoke configuration.
//
// Deprecated: use experiments.QuickOptions.
func QuickSuiteOptions() SuiteOptions { return experiments.QuickOptions() }

// Evade runs one anti-censorship technique for a domain.
//
// Deprecated: use anticensor.Evade with a censor vantage probe.
func Evade(p *Probe, t EvasionTechnique, domain string) bool {
	return anticensor.Evade(p, t, domain).Success
}
