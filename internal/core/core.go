// Package core is the public façade of the reproduction: it re-exports the
// world builder, the probe toolkit, and the experiment suite behind a
// small, stable API, so downstream users (the cmd tools and examples) do
// not need to know the internal package layout.
//
// A typical session:
//
//	w := core.NewWorld(core.DefaultWorldConfig())
//	p := core.NewProbe(w, "Airtel")
//	det := p.DetectHTTP("porn-site-001.com")
//	fmt.Println(det.Blocked)
package core

import (
	"repro/internal/anticensor"
	"repro/internal/experiments"
	"repro/internal/ispnet"
	"repro/internal/ooni"
	"repro/internal/probe"
)

// Re-exported types.
type (
	// World is the assembled simulated Internet.
	World = ispnet.World
	// WorldConfig sizes the world.
	WorldConfig = ispnet.Config
	// ISP is one built network operator.
	ISP = ispnet.ISP
	// Probe is the measurement client toolkit.
	Probe = probe.Probe
	// ScanConfig sizes coverage scans.
	ScanConfig = probe.ScanConfig
	// Suite runs the paper's evaluation.
	Suite = experiments.Suite
	// SuiteOptions sizes a suite run.
	SuiteOptions = experiments.Options
	// OONIRunner replicates OONI web_connectivity.
	OONIRunner = ooni.Runner
	// EvasionTechnique is one §5 anti-censorship technique.
	EvasionTechnique = anticensor.Technique
)

// DefaultWorldConfig is the paper-scale world (1200 PBWs, Alexa 1000, 40
// vantage points, the nine ISPs plus TATA).
func DefaultWorldConfig() WorldConfig { return ispnet.DefaultConfig() }

// SmallWorldConfig is a reduced world for experimentation.
func SmallWorldConfig() WorldConfig { return ispnet.SmallConfig() }

// NewWorld builds a simulated Internet.
func NewWorld(cfg WorldConfig) *World { return ispnet.NewWorld(cfg) }

// NewProbe attaches a measurement probe to an ISP's client.
func NewProbe(w *World, ispName string) *Probe {
	return probe.New(w, w.ISP(ispName))
}

// NewSuite builds an experiment suite (its own world included).
func NewSuite(opt SuiteOptions) *Suite { return experiments.NewSuite(opt) }

// DefaultSuiteOptions is the paper-scale evaluation configuration.
func DefaultSuiteOptions() SuiteOptions { return experiments.DefaultOptions() }

// QuickSuiteOptions is the fast smoke configuration.
func QuickSuiteOptions() SuiteOptions { return experiments.QuickOptions() }

// Evade runs one anti-censorship technique for a domain.
func Evade(p *Probe, t EvasionTechnique, domain string) bool {
	return anticensor.Evade(p, t, domain).Success
}
