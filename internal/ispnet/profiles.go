// Package ispnet assembles the simulated Indian Internet of the paper: the
// nine studied ISPs plus TATA as a censorious transit, a global fabric of
// web-hosting pods, the external measurement infrastructure (Tor exits,
// OONI control, PlanetLab-style vantage points), middlebox deployment, DNS
// resolver fleets, and the peering/transit relationships that produce the
// paper's collateral-damage observations.
//
// Everything tunable is calibrated from numbers the paper publishes
// (Table 2, Table 3, Figure 2/5, §4.1); everything measured is produced by
// running the probe code against the resulting packet-level network.
package ispnet

import (
	"time"

	"repro/internal/middlebox"
)

// CensorKind is the censorship mechanism an ISP operates itself.
type CensorKind int

// Censorship mechanisms found by the paper (§4): HTTP filtering by wiretap
// or interceptive middleboxes, DNS poisoning, or nothing.
const (
	CensorNone CensorKind = iota
	CensorWM
	CensorIMOvert
	CensorIMCovert
	CensorDNS
)

func (k CensorKind) String() string {
	return [...]string{"none", "wiretap", "interceptive-overt", "interceptive-covert", "dns-poisoning"}[k]
}

// TransitLink declares that a customer ISP reaches one hosting region
// through a provider, and how many PBWs the provider's peering-link
// middlebox carries (Table 3 calibration).
type TransitLink struct {
	Provider string
	// Region is "US", "EU" or "ALL" (single-homed customers).
	Region string
	// CollateralCount is the size of the provider's blocklist on this
	// peering link.
	CollateralCount int
}

// Profile is the static calibration for one ISP.
type Profile struct {
	Name string
	ASN  int
	// Base octets: the ISP owns Base1.Base2.0.0/16.
	Base1, Base2 byte

	// Edges is the number of access/aggregation units; each claims a /24
	// with subscriber hosts.
	Edges int

	// Borders is the number of egress units connecting to the global
	// pods; 0 for transit-customer ISPs.
	Borders int

	// HTTP filtering calibration (Table 2).
	Boxes         int     // middleboxes deployed (on Borders)
	BoxesSrcOrDst int     // subset also inspecting traffic *to* the ISP
	Consistency   float64 // per-URL share of boxes carrying it (Figure 5)
	BlockCount    int     // size of the ISP's HTTP blocklist
	Censor        CensorKind
	Style         middlebox.NotifStyle
	WMLossProb    float64 // wiretap race losses (paper: ~3/10)

	// DNS filtering calibration (§4.1, Figure 2).
	Resolvers          int
	PoisonedResolvers  int
	DNSBlockCount      int
	DNSConsistency     float64
	ClientResolverSize int // poison-list size of the client's default resolver

	// Transits lists upstream providers for customer ISPs (Table 3).
	Transits []TransitLink

	// Population is the synthetic background-user calibration (trafficgen);
	// Users == 0 means the ISP contributes no background traffic.
	Population Population
	// FlowCapacity bounds each of the ISP's middlebox flow tables
	// (including boxes it deploys on customer peering links); 0 keeps the
	// middlebox default.
	FlowCapacity int
}

// Population calibrates one ISP's synthetic background users. The shares
// are relative weights over request kinds (normalized at build time); the
// compiler resolves zero Think/ZipfS to defaults when Users > 0.
type Population struct {
	Users int
	// Request mix weights; all zero means pure HTTP.
	DNSShare, HTTPShare, HTTPSShare float64
	// Think is the mean of the exponential think-time distribution between
	// one user's page visits.
	Think time.Duration
	// ZipfS is the Zipf popularity exponent over the ranked site list
	// (Alexa ranks first, then the PBW population).
	ZipfS float64
}

// ASNs for the simulated ISPs and fabric.
const (
	ASNAirtel   = 101
	ASNIdea     = 102
	ASNVodafone = 103
	ASNJio      = 104
	ASNMTNL     = 105
	ASNBSNL     = 106
	ASNNKN      = 107
	ASNSify     = 108
	ASNSiti     = 109
	ASNTATA     = 110
	ASNHub      = 64500
	ASNPodsUS   = 64501
	ASNPodsEU   = 64502
	ASNINDC     = 64510
	ASNExt      = 64520
)

// DefaultProfiles returns the calibrated ten-ISP world of the paper,
// compiled from the PaperScenario spec — the calibration data itself lives
// there, so the paper is just one preset in the scenario space.
//
// Coverage arithmetic (Table 2): within-ISP coverage ≈ Boxes/Borders since
// each destination pod is served by exactly one border; outside coverage ≈
// BoxesSrcOrDst/Borders since only src-or-dst-scoped boxes see inbound
// probes. Airtel 12/16 = 75% & 9/16 = 56%; Idea 11/12 = 91.7% both;
// Vodafone 9/80 = 11.25% & 2/80 = 2.5%; Jio 2/32 = 6.25% & 0 (all boxes
// source-only — the paper's hypothesis for never seeing Jio boxes from
// outside, stated as "filtering ... for source IPs belonging to Jio").
func DefaultProfiles() []Profile {
	return DefaultConfig().Profiles
}

// HTTPCensoring reports whether the profile operates HTTP middleboxes.
func (p *Profile) HTTPCensoring() bool {
	return p.Censor == CensorWM || p.Censor == CensorIMOvert || p.Censor == CensorIMCovert
}
