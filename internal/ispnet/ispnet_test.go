package ispnet

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/websim"
)

// sharedWorld builds one small world reused across read-mostly tests.
var sharedWorld *World

func world(t *testing.T) *World {
	t.Helper()
	if sharedWorld == nil {
		sharedWorld = NewWorld(SmallConfig())
	}
	// Each test runs on its own goroutine; handing the shared world out is
	// a serialized ownership transfer.
	sharedWorld.Rebind()
	return sharedWorld
}

func TestWorldShape(t *testing.T) {
	w := world(t)
	if len(w.ISPList) != 10 {
		t.Fatalf("ISPs = %d", len(w.ISPList))
	}
	for _, name := range []string{"Airtel", "Idea", "Vodafone", "Jio", "MTNL", "BSNL", "NKN", "Sify", "Siti", "TATA"} {
		isp := w.ISP(name)
		if isp == nil {
			t.Fatalf("missing ISP %s", name)
		}
		if isp.Client == nil {
			t.Errorf("%s: no client", name)
		}
		if len(isp.Targets) < 2 {
			t.Errorf("%s: no scan targets", name)
		}
	}
	a := w.ISP("Airtel")
	if len(a.Borders) != 16 || len(a.Boxes) < 12 {
		t.Errorf("Airtel borders=%d boxes=%d", len(a.Borders), len(a.Boxes))
	}
	if len(w.ISP("MTNL").Resolvers) == 0 || len(w.ISP("BSNL").Resolvers) == 0 {
		t.Error("DNS ISPs need resolver fleets")
	}
	if got := len(w.VPs); got != 16 {
		t.Errorf("VPs = %d", got)
	}
}

// fetchFromClient does a plain browser-style fetch of a domain from an
// ISP's client, resolving via the ISP default resolver.
func fetchFromClient(t *testing.T, w *World, isp *ISP, domain string) (stream []byte, reset bool) {
	t.Helper()
	addrs, _, err := isp.Client.DNS.ResolveA(isp.DefaultResolver, domain, 2*time.Second)
	if err != nil || len(addrs) == 0 {
		t.Fatalf("%s: resolve %s: %v", isp.Name, domain, err)
	}
	c := isp.Client.TCP.Connect(addrs[0], 80)
	if err := c.WaitEstablished(2 * time.Second); err != nil {
		return nil, true
	}
	c.Send(httpwire.StandardGET(domain, "/"))
	c.WaitQuiet(3 * time.Second)
	_, wasReset := c.WasReset()
	out := append([]byte(nil), c.Stream()...)
	c.Abort()
	w.Eng.RunFor(100 * time.Millisecond)
	return out, wasReset
}

func pickSite(w *World, wantKind websim.Kind, blockedBy *ISP, wantBlocked bool) *websim.Site {
	inList := map[string]bool{}
	if blockedBy != nil {
		for _, d := range blockedBy.HTTPList {
			inList[d] = true
		}
	}
	for _, s := range w.Catalog.PBW {
		if s.Kind != wantKind {
			continue
		}
		if blockedBy != nil && inList[s.Domain] != wantBlocked {
			continue
		}
		return s
	}
	return nil
}

func TestCleanFetchWorks(t *testing.T) {
	w := world(t)
	for _, name := range []string{"Airtel", "Idea", "Vodafone", "Jio", "NKN", "Siti"} {
		isp := w.ISP(name)
		site := pickSite(w, websim.KindNormal, isp, false)
		if site == nil {
			t.Fatalf("%s: no unblocked normal site", name)
		}
		// Ensure it's also not collaterally blocked.
		truth := w.TruthFor(isp, site.Domain)
		if truth.Blocked() {
			continue
		}
		stream, reset := fetchFromClient(t, w, isp, site.Domain)
		if reset || !bytes.Contains(stream, []byte("portal")) {
			t.Errorf("%s: clean fetch of %s failed (reset=%v stream=%.60q)", name, site.Domain, reset, stream)
		}
	}
}

func TestBlockedFetchCensored(t *testing.T) {
	w := world(t)
	cases := []struct {
		isp       string
		signature string // empty = covert RST
	}{
		{"Airtel", "airtel.in/dot"},
		{"Idea", "competent Government Authority"},
		{"Vodafone", ""},
		{"Jio", "restricted"},
	}
	for _, c := range cases {
		isp := w.ISP(c.isp)
		// Find a (domain, destination) pair crossing a box: the boxes are
		// destination-agnostic, and low-coverage ISPs (Jio ~6%) may block
		// nothing on the sites' own paths in a small world.
		domain, dst := blockedPair(t, w, isp)
		// Retry a few times: wiretap boxes lose ~30% of races.
		var sawCensorship bool
		for attempt := 0; attempt < 6 && !sawCensorship; attempt++ {
			conn := isp.Client.TCP.Connect(dst, 80)
			if err := conn.WaitEstablished(2 * time.Second); err != nil {
				continue
			}
			conn.Send(httpwire.NewGET("/").Header("Host", domain).Bytes())
			conn.WaitQuiet(2 * time.Second)
			_, reset := conn.WasReset()
			stream := conn.Stream()
			conn.Abort()
			w.Eng.RunFor(100 * time.Millisecond)
			if c.signature == "" {
				sawCensorship = reset && len(stream) == 0
			} else {
				sawCensorship = bytes.Contains(stream, []byte(c.signature))
			}
		}
		if !sawCensorship {
			t.Errorf("%s: censorship of %s never observed", c.isp, domain)
		}
	}
}

// blockedPair finds a (domain, destination address) whose path from the
// ISP client crosses a middlebox carrying the domain.
func blockedPair(t *testing.T, w *World, isp *ISP) (string, netip.Addr) {
	t.Helper()
	for _, d := range isp.HTTPList {
		if s, ok := w.Catalog.Site(d); ok {
			if blocked, _ := w.HTTPTruthOnPath(isp.Client, s.Addr(websim.RegionIN), d); blocked {
				return d, s.Addr(websim.RegionIN)
			}
		}
	}
	for _, a := range w.Catalog.Alexa {
		for _, d := range isp.HTTPList {
			if blocked, _ := w.HTTPTruthOnPath(isp.Client, a.Addr(websim.RegionUS), d); blocked {
				return d, a.Addr(websim.RegionUS)
			}
		}
	}
	t.Fatalf("%s: no blocked (domain,dst) pair", isp.Name)
	return "", netip.Addr{}
}

func TestDNSPoisoningAtClient(t *testing.T) {
	w := world(t)
	for _, name := range []string{"MTNL", "BSNL"} {
		isp := w.ISP(name)
		if !isp.Resolvers[0].Poisoned() {
			t.Fatalf("%s: default resolver not poisoned", name)
		}
		var victim string
		for _, d := range isp.DNSList {
			if isp.Resolvers[0].PoisonsDomain(d) {
				victim = d
				break
			}
		}
		addrs, _, err := isp.Client.DNS.ResolveA(isp.DefaultResolver, victim, 2*time.Second)
		if err != nil || len(addrs) == 0 {
			t.Fatalf("%s: resolve: %v", name, err)
		}
		// Manipulated answer: the ISP block host or a bogon.
		if addrs[0] != isp.BlockIP && addrs[0].As4()[0] != 10 {
			t.Errorf("%s: poisoned answer = %v", name, addrs[0])
		}
		// The honest truth from outside differs.
		truth, _, err := w.Control.DNS.ResolveA(w.GoogleDNS, victim, 2*time.Second)
		if err != nil || len(truth) == 0 {
			t.Fatalf("control resolve: %v", err)
		}
		if truth[0] == addrs[0] {
			t.Errorf("%s: control resolution matches poisoned answer", name)
		}
	}
}

func TestCollateralDamageNKN(t *testing.T) {
	w := world(t)
	nkn := w.ISP("NKN")
	if len(nkn.Boxes) != 0 {
		t.Fatal("NKN must not own middleboxes")
	}
	peers := nkn.Peers()
	if len(peers) != 2 {
		t.Fatalf("NKN peers = %d", len(peers))
	}
	// Find a domain blocked on NKN's path; the responsible box must belong
	// to Vodafone or TATA.
	found := 0
	for _, d := range w.Catalog.PBWDomains() {
		tr := w.TruthFor(nkn, d)
		if !tr.HTTPFiltered {
			continue
		}
		found++
		if tr.By.Owner != "Vodafone" && tr.By.Owner != "TATA" {
			t.Errorf("NKN collateral from %s", tr.By.Owner)
		}
	}
	if found == 0 {
		t.Fatal("no collateral damage observed in NKN")
	}
	// Verify one end to end: the fetch is actually censored.
	var domain string
	for _, d := range w.Catalog.PBWDomains() {
		if tr := w.TruthFor(nkn, d); tr.HTTPFiltered && tr.By.Owner == "Vodafone" {
			domain = d
			break
		}
	}
	if domain == "" {
		t.Fatal("no Vodafone-collateral domain")
	}
	_, reset := fetchFromClient(t, w, nkn, domain)
	if !reset {
		t.Errorf("Vodafone covert collateral should reset the connection")
	}
}

func TestTransitPathSymmetry(t *testing.T) {
	w := world(t)
	nkn := w.ISP("NKN")
	// For a pod-hosted site, forward and reverse paths must be reverses of
	// each other (the peering box needs both directions).
	site := pickSite(w, websim.KindNormal, nil, false)
	addr := site.Addr(websim.RegionIN)
	sh, ok := w.Net.Host(addr)
	if !ok {
		t.Fatal("site host missing")
	}
	fwd := w.Net.PathBetweenHosts(nkn.Client.Host, sh)
	rev := w.Net.PathBetweenHosts(sh, nkn.Client.Host)
	if len(fwd) == 0 || len(fwd) != len(rev) {
		t.Fatalf("path lengths %d vs %d", len(fwd), len(rev))
	}
	for i := range fwd {
		if fwd[i] != rev[len(rev)-1-i] {
			t.Fatalf("asymmetric transit path:\n fwd=%v\n rev=%v", routerNames(fwd), routerNames(rev))
		}
	}
}

func routerNames(rs []*netsim.Router) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

func TestOracleMatchesBoxLists(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	_, http := w.TruthSet(idea)
	// Every truly-blocked domain must be in the ISP's union list.
	inList := map[string]bool{}
	for _, d := range idea.HTTPList {
		inList[d] = true
	}
	for d := range http {
		if !inList[d] {
			t.Errorf("oracle blocked %s not in Idea list", d)
		}
	}
	// Idea has ~92%% coverage and high consistency, so most of the list
	// should be blocked from the client.
	if len(http) < len(idea.HTTPList)/2 {
		t.Errorf("only %d/%d Idea sites blocked from client", len(http), len(idea.HTTPList))
	}
}

func TestJioInvisibleFromOutside(t *testing.T) {
	w := world(t)
	jio := w.ISP("Jio")
	// From every VP, no Jio box may trigger toward Jio targets.
	for _, vp := range w.VPs {
		for _, tgt := range jio.Targets[:2] {
			for _, d := range jio.HTTPList[:5] {
				if blocked, _ := w.HTTPTruthOnPath(vp, tgt, d); blocked {
					t.Fatalf("Jio box visible from VP %v", vp.Addr())
				}
			}
		}
	}
	// But from inside, some (domain, destination) pairs are filtered.
	blockedPair(t, w, jio)
}

func TestCDNRegionalResolution(t *testing.T) {
	w := world(t)
	var cdn *websim.Site
	for _, s := range w.Catalog.PBW {
		if s.Kind == websim.KindCDN && s.Addrs[websim.RegionIN] != s.Addrs[websim.RegionUS] {
			cdn = s
			break
		}
	}
	if cdn == nil {
		t.Skip("no regional CDN site in small catalog")
	}
	airtel := w.ISP("Airtel")
	inAddrs, _, err := airtel.Client.DNS.ResolveA(airtel.DefaultResolver, cdn.Domain, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	usAddrs, _, err := w.Control.DNS.ResolveA(w.GoogleDNS, cdn.Domain, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if inAddrs[0] == usAddrs[0] {
		t.Error("regional CDN resolved identically from IN and US")
	}
}

func TestCirculantProperties(t *testing.T) {
	domains := make([]string, 200)
	for i := range domains {
		domains[i] = pickDomains(world(t).Catalog.PBWDomains(), 200, "circ")[i]
	}
	K, s := 12, 0.123
	lists := circulantLists(domains, K, s, "test")
	// Union must equal the full list.
	union := map[string]bool{}
	total := 0
	for _, l := range lists {
		for _, d := range l {
			union[d] = true
		}
		total += len(l)
	}
	if len(union) != len(domains) {
		t.Errorf("union = %d, want %d", len(union), len(domains))
	}
	// Average per-URL width must be near s*K.
	avgW := float64(total) / float64(len(domains))
	if avgW < s*float64(K)*0.8 || avgW > s*float64(K)*1.3 {
		t.Errorf("avg width = %.2f, want ~%.2f", avgW, s*float64(K))
	}
}

func TestPickDomainsDeterministicDisjointSalts(t *testing.T) {
	w := world(t)
	all := w.Catalog.PBWDomains()
	a1 := pickDomains(all, 50, "salt-a")
	a2 := pickDomains(all, 50, "salt-a")
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("pickDomains not deterministic")
		}
	}
	b := pickDomains(all, 50, "salt-b")
	same := 0
	for _, d := range a1 {
		for _, e := range b {
			if d == e {
				same++
			}
		}
	}
	if same == 50 {
		t.Error("different salts produced identical selections")
	}
}

func TestGoneSiteTimesOut(t *testing.T) {
	w := world(t)
	var gone *websim.Site
	for _, s := range w.Catalog.PBW {
		if s.Kind == websim.KindGone {
			gone = s
			break
		}
	}
	if gone == nil {
		t.Skip("no gone site")
	}
	// Resolves fine...
	addrs, _, err := w.Control.DNS.ResolveA(w.GoogleDNS, gone.Domain, 2*time.Second)
	if err != nil || len(addrs) == 0 {
		t.Fatalf("gone site should still resolve: %v", err)
	}
	// ...but connecting times out.
	c := w.Control.TCP.Connect(addrs[0], 80)
	if err := c.WaitEstablished(2 * time.Second); err == nil {
		t.Error("connect to gone site succeeded")
	}
}
