package ispnet

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/httpwire"
	"repro/internal/middlebox"
	"repro/internal/websim"
)

// TestPaperScenarioCompile pins the compiler's address/ASN assignment and
// style lowering to the historical hand-written calibration, so the
// "paper is just a preset" refactor cannot drift the world.
func TestPaperScenarioCompile(t *testing.T) {
	cfg, err := PaperScenario().Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if cfg.Seed != 2018 || cfg.PBWCount != 1200 || cfg.AlexaCount != 1000 || cfg.VPCount != 40 || cfg.Pods != 80 {
		t.Fatalf("paper sizing drifted: %+v", cfg)
	}
	if len(cfg.Profiles) != 10 {
		t.Fatalf("got %d profiles, want 10", len(cfg.Profiles))
	}
	spot := map[string]struct {
		asn   int
		base2 byte
		style middlebox.NotifStyle
	}{
		"Airtel":   {ASNAirtel, 10, middlebox.StyleAirtel},
		"Idea":     {ASNIdea, 20, middlebox.StyleIdea},
		"Vodafone": {ASNVodafone, 30, middlebox.StyleVodafone},
		"Jio":      {ASNJio, 40, middlebox.StyleJio},
		"MTNL":     {ASNMTNL, 50, middlebox.NotifStyle{}},
		"TATA":     {ASNTATA, 100, middlebox.StyleTATA},
	}
	for _, p := range cfg.Profiles {
		want, ok := spot[p.Name]
		if !ok {
			continue
		}
		if p.ASN != want.asn || p.Base1 != 23 || p.Base2 != want.base2 {
			t.Errorf("%s addressing: ASN %d base %d.%d, want ASN %d base 23.%d",
				p.Name, p.ASN, p.Base1, p.Base2, want.asn, want.base2)
		}
		if !reflect.DeepEqual(p.Style, want.style) {
			t.Errorf("%s style drifted:\n got %+v\nwant %+v", p.Name, p.Style, want.style)
		}
	}
	airtel := cfg.Profiles[0]
	if airtel.Boxes != 12 || airtel.BoxesSrcOrDst != 9 || airtel.Consistency != 0.123 ||
		airtel.BlockCount != 234 || airtel.Censor != CensorWM || airtel.WMLossProb != 0.3 {
		t.Errorf("Airtel calibration drifted: %+v", airtel)
	}
	mtnl := cfg.Profiles[4]
	if mtnl.Resolvers != 448 || mtnl.PoisonedResolvers != 345 || mtnl.DNSBlockCount != 450 ||
		mtnl.DNSConsistency != 0.424 || mtnl.ClientResolverSize != 45 || len(mtnl.Transits) != 2 {
		t.Errorf("MTNL calibration drifted: %+v", mtnl)
	}
	if mtnl.Transits[0] != (TransitLink{Provider: "TATA", Region: "US", CollateralCount: 134}) {
		t.Errorf("MTNL transit drifted: %+v", mtnl.Transits[0])
	}
}

// TestSmallScenarioCompile checks the reduced preset only resizes.
func TestSmallScenarioCompile(t *testing.T) {
	small, err := SmallScenario().Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	paper, _ := PaperScenario().Compile()
	if small.PBWCount != 240 || small.AlexaCount != 100 || small.VPCount != 16 {
		t.Fatalf("small sizing drifted: %+v", small)
	}
	if !reflect.DeepEqual(small.Profiles, paper.Profiles) {
		t.Fatal("small profiles differ from paper profiles")
	}
}

// TestScenarioJSONRoundTrip: a spec survives marshal/unmarshal with an
// identical compiled config.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, sc := range []Scenario{PaperScenario(), SmallScenario()} {
		raw, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", sc.Name, err)
		}
		var back Scenario
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: Unmarshal: %v", sc.Name, err)
		}
		want, _ := sc.Compile()
		got, err := back.Compile()
		if err != nil {
			t.Fatalf("%s: Compile after round trip: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: compiled config changed across JSON round trip", sc.Name)
		}
	}
}

// TestScenarioValidate rejects the malformed-spec catalogue.
func TestScenarioValidate(t *testing.T) {
	base := func() Scenario { return SmallScenario() }
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no ISPs", func(s *Scenario) { s.ISPs = nil }, "no ISPs"},
		{"negative edges", func(s *Scenario) { s.ISPs[0].Edges = -3 }, "negative"},
		{"zero edges", func(s *Scenario) { s.ISPs[0].Edges = 0 }, "edges"},
		{"consistency above 1", func(s *Scenario) { s.ISPs[0].Consistency = 1.5 }, "outside [0,1]"},
		{"dns consistency below 0", func(s *Scenario) { s.ISPs[4].DNSConsistency = -0.1 }, "outside [0,1]"},
		{"unknown mechanism", func(s *Scenario) { s.ISPs[0].Mechanism = "deep-packet-magic" }, "unknown mechanism"},
		{"unknown transit provider", func(s *Scenario) { s.ISPs[4].Transits[0].Provider = "Hathway" }, "unknown transit provider"},
		{"self transit", func(s *Scenario) { s.ISPs[4].Transits[0].Provider = "MTNL" }, "itself"},
		{"bad transit region", func(s *Scenario) { s.ISPs[4].Transits[0].Region = "APAC" }, "transit region"},
		{"duplicate ISP", func(s *Scenario) { s.ISPs[1].Name = "Airtel" }, "duplicate"},
		{"boxes without borders", func(s *Scenario) {
			s.ISPs[0].Borders = 0
			s.ISPs[0].Transits = []TransitSpec{{Provider: "TATA", Region: "ALL", Collateral: 5}}
		}, "borders"},
		{"inbound exceeds boxes", func(s *Scenario) { s.ISPs[0].InboundMiddleboxes = 99 }, "exceeds middleboxes"},
		{"poisoned exceeds resolvers", func(s *Scenario) { s.ISPs[4].PoisonedResolvers = 9999 }, "exceeds resolvers"},
		{"unreachable region", func(s *Scenario) { s.ISPs[4].Transits = s.ISPs[4].Transits[:1] }, "hosting region"},
		{"http fields on dns censor", func(s *Scenario) { s.ISPs[4].Middleboxes = 3 }, "mechanism is"},
		{"dns fields on wiretap censor", func(s *Scenario) { s.ISPs[0].DNSBlocklist = 10 }, "mechanism is"},
		{"loss prob on interceptive", func(s *Scenario) { s.ISPs[1].WiretapLossProb = 0.3 }, "only wiretap boxes race"},
		{"consistency on dns censor", func(s *Scenario) { s.ISPs[4].Consistency = 0.4 }, "mechanism is"},
		{"dns consistency on clean ISP", func(s *Scenario) { s.ISPs[6].DNSConsistency = 0.2 }, "mechanism is"},
		{"too few pods", func(s *Scenario) { s.Pods = 2 }, "Pods"},
		{"no vantage points", func(s *Scenario) { s.VantagePoints = 0 }, "VantagePoints"},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutate(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, err := sc.Compile(); err == nil {
			t.Errorf("%s: Compile accepted the spec", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("unmutated small scenario rejected: %v", err)
	}
}

// TestWorldReset is the unit-level pooling contract: drive censoring
// traffic through a world, Reset it, and require the same fetch to behave
// byte-identically to a freshly built world.
func TestWorldReset(t *testing.T) {
	cfg := SmallConfig()
	dirty := NewWorld(cfg)
	isp := dirty.ISP("Idea")

	var blocked string
	var dst = dirty.Catalog.PBW[0].Addr(websim.RegionIN)
	for _, d := range isp.HTTPList {
		if s, ok := dirty.Catalog.Site(d); ok && s.Kind == websim.KindNormal {
			if yes, _ := dirty.HTTPTruthOnPath(isp.Client, s.Addr(websim.RegionIN), d); yes {
				blocked, dst = d, s.Addr(websim.RegionIN)
				break
			}
		}
	}
	if blocked == "" {
		t.Skip("no blocked normal-kind domain at small scale")
	}

	// fetch digests one raw GET for the blocked domain: connection fate
	// plus the exact byte stream received (notification pages included).
	fetch := func(w *World) string {
		i := w.ISP("Idea")
		c := i.Client.TCP.Connect(dst, 80)
		if err := c.WaitEstablished(2 * time.Second); err != nil {
			return "no-connect"
		}
		c.Send(httpwire.NewGET("/").Header("Host", blocked).Bytes())
		w.Eng.RunFor(2 * time.Second)
		return fmt.Sprintf("dead=%v closed=%v stream=%x", c.Dead(), c.PeerClosed(), c.Stream())
	}

	// Dirty the world thoroughly: fetches, DNS queries, engine time.
	for i := 0; i < 5; i++ {
		fetch(dirty)
		dirty.ISP("MTNL").Client.DNS.Query(dirty.ISP("MTNL").DefaultResolver, blocked, time.Second)
	}
	if dirty.Eng.Now() == 0 {
		t.Fatal("traffic did not advance the engine clock")
	}
	dirty.Reset()
	if dirty.Eng.Now() != 0 || dirty.Eng.Pending() != 0 {
		t.Fatalf("Reset left engine at now=%v pending=%d", dirty.Eng.Now(), dirty.Eng.Pending())
	}
	if n := isp.Boxes[0].Triggers(); n != 0 {
		t.Fatalf("Reset left %d triggers on %s", n, isp.Boxes[0].ID)
	}

	fresh := NewWorld(cfg)
	got, want := fetch(dirty), fetch(fresh)
	if got != want {
		t.Fatalf("reset world diverged from fresh world:\nreset: %s\nfresh: %s", got, want)
	}
	// And again: a second reset cycle must also match.
	dirty.Reset()
	fresh2 := NewWorld(cfg)
	if got, want := fetch(dirty), fetch(fresh2); got != want {
		t.Fatalf("second reset cycle diverged:\nreset: %s\nfresh: %s", got, want)
	}
}
