package ispnet

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/httpwire"
	"repro/internal/websim"
)

// findEvictionTarget picks a blocklisted, genuinely-hosted domain whose
// path from the ISP's client crosses a middlebox carrying it: the flow a
// dallying fetch drives through that box's bounded table.
func findEvictionTarget(t *testing.T, w *World, ispName string) (string, netip.Addr, *BoxRef) {
	t.Helper()
	isp := w.ISP(ispName)
	pb := w.podBorders[ispName]
	for _, d := range isp.HTTPList {
		site, ok := w.Catalog.Site(d)
		if !ok || (site.Kind != websim.KindNormal && site.Kind != websim.KindDynamic) {
			continue
		}
		addr := site.Addr(websim.RegionIN)
		if !addr.IsValid() || addr.As4()[0] != 199 {
			continue
		}
		br := pb[int(addr.As4()[1])]
		if br == nil {
			continue
		}
		for _, b := range w.BoxesAt(br) {
			if b.Owner == ispName && b.List.Contains(d) {
				return d, addr, b
			}
		}
	}
	t.Fatalf("no covered blocklisted domain found for %s", ispName)
	return "", netip.Addr{}, nil
}

// dallyFetch opens a connection, idles long enough for background load to
// turn the on-path flow table over, then sends the blocklisted GET.
func dallyFetch(w *World, domain string, addr netip.Addr, dally time.Duration) ([]byte, bool) {
	client := w.ISP("Idea").Client
	w.Eng.RunFor(time.Second)
	conn := client.TCP.Connect(addr, 80)
	if err := conn.WaitEstablished(5 * time.Second); err != nil {
		return nil, false
	}
	w.Eng.RunFor(dally)
	conn.Send(httpwire.StandardGET(domain, "/"))
	stream := conn.WaitQuiet(3 * time.Second)
	_, reset := conn.WasReset()
	return stream, reset
}

// TestLoadDependentEvictionMiss is the tentpole's acceptance property: on
// paper-2018-loaded (11k background users, 2048-entry flow tables), a
// connection that idles between handshake and request gets its flow state
// evicted by background churn, so the blocklisted GET sails past the
// censor — a miss the idle world never shows. The effect is deterministic:
// a reset world reproduces it byte-for-byte.
func TestLoadDependentEvictionMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale loaded world (minutes of virtual time)")
	}
	// Background flows cross the chosen border at ~40-50/s, so the
	// 2048-entry table fills within ~50s of virtual time; dallying 80s
	// leaves comfortable margin for the dallying flow to reach the LRU
	// head and be displaced.
	const dally = 80 * time.Second

	loaded := NewWorld(mustCompile(LoadedScenario()))
	if loaded.Traffic == nil || loaded.Traffic.Users() < 10000 {
		t.Fatalf("loaded world seats %v users, want >= 10000", loaded.Traffic)
	}
	domain, addr, box := findEvictionTarget(t, loaded, "Idea")

	var marker string
	for _, sig := range loaded.NotifSignatures() {
		if sig.ISP == "Idea" {
			marker = sig.Marker
		}
	}
	if marker == "" {
		t.Fatalf("no Idea notification signature")
	}

	// Idle control: the same calibration with the populations stripped
	// (bounded tables kept). The flow entry survives the dally untouched
	// and the GET is censored.
	idleSpec := LoadedScenario()
	for i := range idleSpec.ISPs {
		idleSpec.ISPs[i].Population = PopulationSpec{}
	}
	idle := NewWorld(mustCompile(idleSpec))
	idleStream, idleReset := dallyFetch(idle, domain, addr, dally)
	if !strings.Contains(string(idleStream), marker) {
		t.Fatalf("idle world: dallying fetch of %s was not censored (reset=%v, stream=%q)",
			domain, idleReset, truncate(idleStream))
	}

	// Loaded world: background churn evicts the dallying flow, the box no
	// longer recognizes the connection, and the real page comes back.
	stream, reset := dallyFetch(loaded, domain, addr, dally)
	evictions := box.Evictions()
	if evictions == 0 {
		t.Fatalf("background load drove no evictions through %s (len %d)", box.ID, box.FlowLen())
	}
	if strings.Contains(string(stream), marker) {
		t.Fatalf("loaded world: censor still triggered on %s despite churn (evictions %d)", domain, evictions)
	}
	if !strings.Contains(string(stream), " 200 ") {
		t.Fatalf("loaded world: no real response for %s (reset=%v, stream=%q)", domain, reset, truncate(stream))
	}

	// Determinism: a reset world reproduces the miss byte-for-byte,
	// eviction counter included — the campaign replica-pooling contract
	// under load.
	loaded.Reset()
	stream2, _ := dallyFetch(loaded, domain, addr, dally)
	if !bytes.Equal(stream, stream2) {
		t.Fatalf("reset world diverged: %d vs %d stream bytes", len(stream), len(stream2))
	}
	if e2 := box.Evictions(); e2 != evictions {
		t.Fatalf("reset world eviction count diverged: %d vs %d", evictions, e2)
	}
}

func truncate(b []byte) string {
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

// TestLoadedScenarioCompiles pins the preset's shape: it validates, seats
// at least 10k users, and bounds every censoring ISP's flow tables.
func TestLoadedScenarioCompiles(t *testing.T) {
	s := LoadedScenario()
	if err := s.Validate(); err != nil {
		t.Fatalf("LoadedScenario invalid: %v", err)
	}
	cfg := mustCompile(s)
	total := 0
	for _, p := range cfg.Profiles {
		total += p.Population.Users
		if p.HTTPCensoring() && p.FlowCapacity == 0 {
			t.Errorf("%s censors HTTP but keeps an unbounded flow table", p.Name)
		}
	}
	if total < 10000 {
		t.Fatalf("loaded scenario seats %d users, want >= 10000", total)
	}
}
