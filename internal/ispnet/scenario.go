package ispnet

import (
	"fmt"
	"time"

	"repro/internal/middlebox"
)

// This file is the scenario compiler: the declarative world-building
// schema (Scenario and its parts) and the lowering that turns a validated
// spec into the packet-level Config NewWorld consumes. The public censor
// package mirrors these types one-to-one so that external callers can
// describe worlds without naming anything under internal/; the paper's own
// calibration is just one spec (PaperScenario), which is what DefaultConfig
// and DefaultProfiles are derived from.

// Scenario declaratively describes one simulated Internet: global sizing
// plus one ISPSpec per network operator. Addressing and AS numbers are
// assigned by the compiler from ISP order, so a spec carries only
// behaviour, never wire-level layout.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Seed drives every random draw of the simulation; same seed, same
	// world, same measurements.
	Seed int64 `json:"seed"`
	// PBWSites is the potentially-blocked-website population (the paper
	// measured 1200); blocklist sizes are scaled against a 1200 baseline.
	PBWSites int `json:"pbw_sites"`
	// AlexaSites is the popular-destination population used as scan
	// targets and controls.
	AlexaSites int `json:"alexa_sites"`
	// VantagePoints is the number of PlanetLab-style outside vantage
	// points spread across the hosting fabric.
	VantagePoints int `json:"vantage_points"`
	// Pods is the number of global web-hosting pods (first half US,
	// second half EU).
	Pods int `json:"pods"`

	ISPs []ISPSpec `json:"isps"`
}

// ISPSpec describes one network operator: topology sizing, the censorship
// mechanism it runs, and the mechanism's calibration.
type ISPSpec struct {
	Name string `json:"name"`
	// Mechanism is the censorship the ISP operates itself: "none",
	// "wiretap", "interceptive-overt", "interceptive-covert" or
	// "dns-poisoning".
	Mechanism string `json:"mechanism"`

	// Edges is the number of access/aggregation units; each claims a /24
	// with subscriber hosts. The measurement client lives on the first.
	Edges int `json:"edges"`
	// Borders is the number of egress units peering with the hosting
	// pods; 0 for transit-customer ISPs (which then need Transits).
	Borders int `json:"borders,omitempty"`

	// HTTP filtering calibration (mechanisms wiretap / interceptive-*).
	Middleboxes int `json:"middleboxes,omitempty"`
	// InboundMiddleboxes is the subset of boxes that also inspect traffic
	// addressed *to* the ISP, making them visible to outside probes.
	InboundMiddleboxes int     `json:"inbound_middleboxes,omitempty"`
	Consistency        float64 `json:"consistency,omitempty"`
	HTTPBlocklist      int     `json:"http_blocklist,omitempty"`
	// WiretapLossProb is the probability a wiretap box loses the
	// injection race (the paper observed ~3 in 10).
	WiretapLossProb float64 `json:"wiretap_loss_prob,omitempty"`
	// Notification styles the forged censorship response; also used for
	// boxes this ISP operates on customer peering links.
	Notification NotifSpec `json:"notification,omitempty"`

	// DNS filtering calibration (mechanism dns-poisoning; Resolvers alone
	// may be set for any mechanism to size an honest fleet).
	Resolvers         int     `json:"resolvers,omitempty"`
	PoisonedResolvers int     `json:"poisoned_resolvers,omitempty"`
	DNSBlocklist      int     `json:"dns_blocklist,omitempty"`
	DNSConsistency    float64 `json:"dns_consistency,omitempty"`
	// ClientResolverPoison caps the poison list of the subscriber-default
	// resolver.
	ClientResolverPoison int `json:"client_resolver_poison,omitempty"`

	// Population adds synthetic background users whose DNS/HTTP/HTTPS
	// traffic flows through the same links and middlebox flow tables the
	// campaign measures (trafficgen).
	Population PopulationSpec `json:"population,omitempty"`
	// FlowCapacity bounds each of this ISP's middlebox flow tables; at
	// capacity the coldest live flow is evicted, which under population
	// load produces the eviction-induced censorship misses the paper's
	// stateful boxes imply. 0 keeps the generous middlebox default.
	FlowCapacity int `json:"flow_capacity,omitempty"`

	Transits []TransitSpec `json:"transits,omitempty"`
}

// PopulationSpec describes one ISP's synthetic background users. DNS, HTTP
// and HTTPS are relative request-mix weights (all zero means pure HTTP);
// ThinkMS is the mean think time between a user's page visits in
// milliseconds (default 3000); Zipf is the popularity exponent over the
// ranked site list (default 1.1).
type PopulationSpec struct {
	Users   int     `json:"users,omitempty"`
	DNS     float64 `json:"dns,omitempty"`
	HTTP    float64 `json:"http,omitempty"`
	HTTPS   float64 `json:"https,omitempty"`
	ThinkMS int     `json:"think_ms,omitempty"`
	Zipf    float64 `json:"zipf,omitempty"`
}

// NotifSpec is the censorship-notification style of an ISP's middleboxes —
// the forged response body and the wire-level signatures the paper used
// for attribution. The zero value means an anonymous default style.
type NotifSpec struct {
	// Body is the notification HTML; empty plus Covert means a bare RST.
	Body string `json:"body,omitempty"`
	// MimicHeaders copies a typical origin server's header names onto the
	// forged response — the property that blinds OONI's header check.
	MimicHeaders bool `json:"mimic_headers,omitempty"`
	// IPID pins the IP identification field of injected packets (Airtel's
	// boxes always use 242).
	IPID uint16 `json:"ipid,omitempty"`
	// Covert marks a style that sends only a RST, no notification page.
	Covert bool `json:"covert,omitempty"`
}

// TransitSpec wires the ISP to an upstream provider for one hosting
// region. The provider deploys a middlebox on the peering link carrying
// Collateral blocklist entries — the paper's collateral-damage mechanism.
type TransitSpec struct {
	Provider string `json:"provider"`
	// Region is "US", "EU" or "ALL" (single-homed customers).
	Region string `json:"region"`
	// Collateral is the size of the provider's blocklist on this link.
	Collateral int `json:"collateral"`
}

// mechanisms maps spec strings to censor kinds; the strings are
// CensorKind.String() values so specs and reports speak one vocabulary.
var mechanisms = map[string]CensorKind{
	CensorNone.String():     CensorNone,
	CensorWM.String():       CensorWM,
	CensorIMOvert.String():  CensorIMOvert,
	CensorIMCovert.String(): CensorIMCovert,
	CensorDNS.String():      CensorDNS,
}

// MechanismNames lists the accepted ISPSpec.Mechanism values in kind
// order.
func MechanismNames() []string {
	return []string{
		CensorNone.String(), CensorWM.String(), CensorIMOvert.String(),
		CensorIMCovert.String(), CensorDNS.String(),
	}
}

// maxScenarioISPs bounds the ISP list: the compiler assigns each ISP the
// 23.(10*(i+1)).0.0/16 address block, so ordinal 24 would overflow the
// second octet.
const maxScenarioISPs = 24

// maxUsersPerEdge is the synthetic-user seating of one edge: each edge
// hosts one traffic-generator host whose users hold fixed source ports
// 10000..49999.
const maxUsersPerEdge = 40000

// Validate checks the scenario for structural errors: impossible sizings,
// unknown mechanisms or transit providers, calibration outside its domain,
// and worlds whose clients could never reach the hosting fabric. It
// returns the first error found, naming the offending ISP.
func (s Scenario) Validate() error {
	if len(s.ISPs) == 0 {
		return fmt.Errorf("scenario %q: no ISPs", s.Name)
	}
	if len(s.ISPs) > maxScenarioISPs {
		return fmt.Errorf("scenario %q: %d ISPs exceeds the %d the address plan holds", s.Name, len(s.ISPs), maxScenarioISPs)
	}
	if s.PBWSites < 1 || s.AlexaSites < 1 {
		return fmt.Errorf("scenario %q: PBWSites and AlexaSites must be ≥ 1 (got %d, %d)", s.Name, s.PBWSites, s.AlexaSites)
	}
	if s.VantagePoints < 1 {
		return fmt.Errorf("scenario %q: VantagePoints must be ≥ 1 (got %d)", s.Name, s.VantagePoints)
	}
	if s.Pods < 4 {
		return fmt.Errorf("scenario %q: Pods must be ≥ 4 to seat the hosting fabric (got %d)", s.Name, s.Pods)
	}
	if s.Pods > 250 {
		return fmt.Errorf("scenario %q: Pods must be ≤ 250, one /16 per pod (got %d)", s.Name, s.Pods)
	}
	byName := make(map[string]*ISPSpec, len(s.ISPs))
	for i := range s.ISPs {
		isp := &s.ISPs[i]
		if isp.Name == "" {
			return fmt.Errorf("scenario %q: ISP %d has no name", s.Name, i)
		}
		if _, dup := byName[isp.Name]; dup {
			return fmt.Errorf("scenario %q: duplicate ISP %q", s.Name, isp.Name)
		}
		byName[isp.Name] = isp
	}
	providers := make(map[string]bool)
	for i := range s.ISPs {
		for _, t := range s.ISPs[i].Transits {
			providers[t.Provider] = true
		}
	}
	for i := range s.ISPs {
		if err := s.validateISP(&s.ISPs[i], byName, providers); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

func (s Scenario) validateISP(isp *ISPSpec, byName map[string]*ISPSpec, providers map[string]bool) error {
	kind, known := mechanisms[isp.Mechanism]
	if isp.Mechanism == "" {
		kind, known = CensorNone, true
	}
	if !known {
		return fmt.Errorf("ISP %q: unknown mechanism %q (one of: %v)", isp.Name, isp.Mechanism, MechanismNames())
	}
	for _, n := range []struct {
		what string
		v    int
	}{
		{"edges", isp.Edges}, {"borders", isp.Borders},
		{"middleboxes", isp.Middleboxes}, {"inbound_middleboxes", isp.InboundMiddleboxes},
		{"http_blocklist", isp.HTTPBlocklist}, {"resolvers", isp.Resolvers},
		{"poisoned_resolvers", isp.PoisonedResolvers}, {"dns_blocklist", isp.DNSBlocklist},
		{"client_resolver_poison", isp.ClientResolverPoison},
	} {
		if n.v < 0 {
			return fmt.Errorf("ISP %q: negative %s (%d)", isp.Name, n.what, n.v)
		}
	}
	if isp.Edges < 1 {
		return fmt.Errorf("ISP %q: edges must be ≥ 1, the measurement client lives on one", isp.Name)
	}
	if isp.Consistency < 0 || isp.Consistency > 1 {
		return fmt.Errorf("ISP %q: consistency %v outside [0,1]", isp.Name, isp.Consistency)
	}
	if isp.DNSConsistency < 0 || isp.DNSConsistency > 1 {
		return fmt.Errorf("ISP %q: dns_consistency %v outside [0,1]", isp.Name, isp.DNSConsistency)
	}
	if isp.WiretapLossProb < 0 || isp.WiretapLossProb > 1 {
		return fmt.Errorf("ISP %q: wiretap_loss_prob %v outside [0,1]", isp.Name, isp.WiretapLossProb)
	}

	// Calibration set for a mechanism that never reads it is rejected, not
	// ignored: a spec author who writes wiretap_loss_prob on an
	// interceptive ISP believes in an evasion window that will not exist.
	httpCensoring := kind == CensorWM || kind == CensorIMOvert || kind == CensorIMCovert
	if httpCensoring {
		if isp.Middleboxes < 1 {
			return fmt.Errorf("ISP %q: mechanism %s needs middleboxes ≥ 1", isp.Name, isp.Mechanism)
		}
		if isp.Borders < 1 {
			return fmt.Errorf("ISP %q: middleboxes deploy on borders; borders must be ≥ 1", isp.Name)
		}
		if isp.HTTPBlocklist < 1 {
			return fmt.Errorf("ISP %q: mechanism %s needs http_blocklist ≥ 1", isp.Name, isp.Mechanism)
		}
	} else if isp.Middleboxes > 0 || isp.HTTPBlocklist > 0 || isp.Consistency != 0 {
		return fmt.Errorf("ISP %q: middleboxes/http_blocklist/consistency set but mechanism is %q", isp.Name, isp.Mechanism)
	}
	if kind != CensorWM && isp.WiretapLossProb != 0 {
		return fmt.Errorf("ISP %q: wiretap_loss_prob set but mechanism is %q — only wiretap boxes race", isp.Name, isp.Mechanism)
	}
	if isp.InboundMiddleboxes > isp.Middleboxes {
		return fmt.Errorf("ISP %q: inbound_middleboxes %d exceeds middleboxes %d", isp.Name, isp.InboundMiddleboxes, isp.Middleboxes)
	}

	if kind == CensorDNS {
		if isp.Resolvers < 1 || isp.PoisonedResolvers < 1 {
			return fmt.Errorf("ISP %q: dns-poisoning needs resolvers ≥ 1 and poisoned_resolvers ≥ 1", isp.Name)
		}
		if isp.DNSBlocklist < 1 {
			return fmt.Errorf("ISP %q: dns-poisoning needs dns_blocklist ≥ 1", isp.Name)
		}
	} else if isp.PoisonedResolvers > 0 || isp.DNSBlocklist > 0 || isp.DNSConsistency != 0 || isp.ClientResolverPoison > 0 {
		return fmt.Errorf("ISP %q: poisoned_resolvers/dns_blocklist/dns_consistency/client_resolver_poison set but mechanism is %q", isp.Name, isp.Mechanism)
	}
	if isp.PoisonedResolvers > isp.Resolvers {
		return fmt.Errorf("ISP %q: poisoned_resolvers %d exceeds resolvers %d", isp.Name, isp.PoisonedResolvers, isp.Resolvers)
	}

	pop := isp.Population
	if pop.Users < 0 || pop.ThinkMS < 0 {
		return fmt.Errorf("ISP %q: negative population users/think_ms (%d/%d)", isp.Name, pop.Users, pop.ThinkMS)
	}
	if pop.DNS < 0 || pop.HTTP < 0 || pop.HTTPS < 0 || pop.Zipf < 0 {
		return fmt.Errorf("ISP %q: negative population mix weight or zipf exponent", isp.Name)
	}
	if pop.Users == 0 && pop != (PopulationSpec{}) {
		return fmt.Errorf("ISP %q: population calibration set but users is 0", isp.Name)
	}
	if pop.Users > maxUsersPerEdge*isp.Edges {
		return fmt.Errorf("ISP %q: population %d exceeds %d users the %d edge(s) can seat (%d ports each)",
			isp.Name, pop.Users, maxUsersPerEdge*isp.Edges, isp.Edges, maxUsersPerEdge)
	}
	if isp.FlowCapacity < 0 {
		return fmt.Errorf("ISP %q: negative flow_capacity (%d)", isp.Name, isp.FlowCapacity)
	}
	if isp.FlowCapacity > 0 && !httpCensoring && !providers[isp.Name] {
		return fmt.Errorf("ISP %q: flow_capacity set but the ISP deploys no middleboxes (mechanism %q, not a transit provider)", isp.Name, isp.Mechanism)
	}

	coversUS, coversEU := isp.Borders > 0, isp.Borders > 0
	for _, t := range isp.Transits {
		p, ok := byName[t.Provider]
		if !ok {
			return fmt.Errorf("ISP %q: unknown transit provider %q", isp.Name, t.Provider)
		}
		if t.Provider == isp.Name {
			return fmt.Errorf("ISP %q: transits through itself", isp.Name)
		}
		if p.Borders < 1 {
			return fmt.Errorf("ISP %q: transit provider %q has no borders, so return traffic would bypass the peering link", isp.Name, t.Provider)
		}
		if t.Collateral < 1 {
			return fmt.Errorf("ISP %q: transit via %q needs collateral ≥ 1", isp.Name, t.Provider)
		}
		switch t.Region {
		case "ALL":
			coversUS, coversEU = true, true
		case "US":
			coversUS = true
		case "EU":
			coversEU = true
		default:
			return fmt.Errorf("ISP %q: transit region %q (want US, EU or ALL)", isp.Name, t.Region)
		}
	}
	if !coversUS || !coversEU {
		return fmt.Errorf("ISP %q: no route to every hosting region — needs borders or transit coverage of US and EU", isp.Name)
	}
	return nil
}

// Compile validates the scenario and lowers it to the packet-level world
// configuration: AS numbers 101+i and the 23.(10*(i+1)).0.0/16 block are
// assigned from ISP order, mechanism strings become CensorKinds, and
// notification specs become middlebox styles.
func (s Scenario) Compile() (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	cfg := Config{
		Seed:       s.Seed,
		PBWCount:   s.PBWSites,
		AlexaCount: s.AlexaSites,
		VPCount:    s.VantagePoints,
		Pods:       s.Pods,
	}
	for i, isp := range s.ISPs {
		kind := mechanisms[isp.Mechanism]
		p := Profile{
			Name: isp.Name, ASN: 101 + i, Base1: 23, Base2: byte(10 * (i + 1)),
			Edges: isp.Edges, Borders: isp.Borders,
			Boxes: isp.Middleboxes, BoxesSrcOrDst: isp.InboundMiddleboxes,
			Consistency: isp.Consistency, BlockCount: isp.HTTPBlocklist,
			Censor: kind, WMLossProb: isp.WiretapLossProb,
			Resolvers: isp.Resolvers, PoisonedResolvers: isp.PoisonedResolvers,
			DNSBlockCount: isp.DNSBlocklist, DNSConsistency: isp.DNSConsistency,
			ClientResolverSize: isp.ClientResolverPoison,
			FlowCapacity:       isp.FlowCapacity,
		}
		if isp.Population.Users > 0 {
			p.Population = Population{
				Users:      isp.Population.Users,
				DNSShare:   isp.Population.DNS,
				HTTPShare:  isp.Population.HTTP,
				HTTPSShare: isp.Population.HTTPS,
				Think:      time.Duration(isp.Population.ThinkMS) * time.Millisecond,
				ZipfS:      isp.Population.Zipf,
			}
			if p.Population.Think == 0 {
				p.Population.Think = 3 * time.Second
			}
			if p.Population.ZipfS == 0 {
				p.Population.ZipfS = 1.1
			}
			if p.Population.DNSShare == 0 && p.Population.HTTPShare == 0 && p.Population.HTTPSShare == 0 {
				p.Population.HTTPShare = 1
			}
		}
		if isp.Notification != (NotifSpec{}) {
			p.Style = middlebox.NotifStyle{
				ISP:          isp.Name,
				BodyHTML:     isp.Notification.Body,
				MimicHeaders: isp.Notification.MimicHeaders,
				IPID:         isp.Notification.IPID,
				Covert:       isp.Notification.Covert,
			}
		}
		for _, t := range isp.Transits {
			p.Transits = append(p.Transits, TransitLink{
				Provider: t.Provider, Region: t.Region, CollateralCount: t.Collateral,
			})
		}
		cfg.Profiles = append(cfg.Profiles, p)
	}
	return cfg, nil
}

// notifSpecOf lifts a middlebox style back into spec form (the ISP name is
// reassigned by the compiler).
func notifSpecOf(st middlebox.NotifStyle) NotifSpec {
	return NotifSpec{Body: st.BodyHTML, MimicHeaders: st.MimicHeaders, IPID: st.IPID, Covert: st.Covert}
}

// PaperScenario is the Table 2/Table 3 calibration of Yadav et al. as a
// scenario spec: the nine studied ISPs plus TATA, the 1200-website
// population, Alexa 1000 and 40 vantage points. Compiling it yields
// exactly DefaultConfig — the paper is one point in the scenario space.
func PaperScenario() Scenario {
	return Scenario{
		Name:        "paper-2018",
		Description: "the nine studied Indian ISPs plus TATA, calibrated from the paper's Tables 2-3 and Figures 2/5",
		Seed:        2018, PBWSites: 1200, AlexaSites: 1000, VantagePoints: 40, Pods: 80,
		ISPs: []ISPSpec{
			{
				Name: "Airtel", Mechanism: CensorWM.String(),
				Edges: 10, Borders: 16,
				Middleboxes: 12, InboundMiddleboxes: 9, Consistency: 0.123, HTTPBlocklist: 234,
				WiretapLossProb: 0.3, Notification: notifSpecOf(middlebox.StyleAirtel),
			},
			{
				Name: "Idea", Mechanism: CensorIMOvert.String(),
				Edges: 8, Borders: 12,
				Middleboxes: 11, InboundMiddleboxes: 11, Consistency: 0.768, HTTPBlocklist: 338,
				Notification: notifSpecOf(middlebox.StyleIdea),
			},
			{
				Name: "Vodafone", Mechanism: CensorIMCovert.String(),
				Edges: 8, Borders: 80,
				Middleboxes: 9, InboundMiddleboxes: 1, Consistency: 0.116, HTTPBlocklist: 483,
				Notification: notifSpecOf(middlebox.StyleVodafone),
			},
			{
				Name: "Jio", Mechanism: CensorWM.String(),
				Edges: 8, Borders: 32,
				Middleboxes: 2, InboundMiddleboxes: 0, Consistency: 0.5, HTTPBlocklist: 200,
				WiretapLossProb: 0.3, Notification: notifSpecOf(middlebox.StyleJio),
			},
			{
				Name: "MTNL", Mechanism: CensorDNS.String(),
				Edges:     56,
				Resolvers: 448, PoisonedResolvers: 345,
				DNSBlocklist: 450, DNSConsistency: 0.424, ClientResolverPoison: 45,
				Transits: []TransitSpec{
					{Provider: "TATA", Region: "US", Collateral: 134},
					{Provider: "Airtel", Region: "EU", Collateral: 25},
				},
			},
			{
				Name: "BSNL", Mechanism: CensorDNS.String(),
				Edges:     23,
				Resolvers: 182, PoisonedResolvers: 17,
				DNSBlocklist: 300, DNSConsistency: 0.075, ClientResolverPoison: 22,
				Transits: []TransitSpec{
					{Provider: "TATA", Region: "US", Collateral: 156},
					{Provider: "Airtel", Region: "EU", Collateral: 1},
				},
			},
			{
				Name: "NKN", Mechanism: CensorNone.String(),
				Edges: 4,
				Transits: []TransitSpec{
					{Provider: "Vodafone", Region: "US", Collateral: 69},
					{Provider: "TATA", Region: "EU", Collateral: 8},
				},
			},
			{
				Name: "Sify", Mechanism: CensorNone.String(),
				Edges: 4,
				Transits: []TransitSpec{
					{Provider: "TATA", Region: "US", Collateral: 142},
					{Provider: "Airtel", Region: "EU", Collateral: 2},
				},
			},
			{
				Name: "Siti", Mechanism: CensorNone.String(),
				Edges: 4,
				Transits: []TransitSpec{
					{Provider: "Airtel", Region: "ALL", Collateral: 110},
				},
			},
			{
				Name: "TATA", Mechanism: CensorNone.String(),
				Edges: 6, Borders: 16,
				Notification: notifSpecOf(middlebox.StyleTATA),
			},
		},
	}
}

// LoadedScenario is the paper calibration under population-scale load:
// 11000 synthetic users spread over the ten ISPs in rough subscriber-share
// proportion, and realistic (bounded) flow tables on every ISP that
// deploys middleboxes. Under this load the HTTP boxes' 2048-entry tables
// turn over in tens of seconds, so a connection that idles between
// handshake and request loses its flow state — the eviction-induced
// censorship miss an idle world never shows.
func LoadedScenario() Scenario {
	s := PaperScenario()
	s.Name = "paper-2018-loaded"
	s.Description = "the paper's ten-ISP world with 11k synthetic background users and bounded middlebox flow tables"
	users := []struct {
		name  string
		users int
		cap   int
	}{
		{"Airtel", 3000, 2048},
		{"Idea", 3000, 2048},
		{"Vodafone", 1200, 2048},
		{"Jio", 1800, 2048},
		{"MTNL", 400, 0},
		{"BSNL", 400, 0},
		{"NKN", 100, 0},
		{"Sify", 50, 0},
		{"Siti", 50, 0},
		{"TATA", 0, 2048},
	}
	for i := range s.ISPs {
		isp := &s.ISPs[i]
		for _, u := range users {
			if u.name != isp.Name {
				continue
			}
			isp.FlowCapacity = u.cap
			if u.users > 0 {
				isp.Population = PopulationSpec{
					Users: u.users,
					DNS:   0.1, HTTP: 0.8, HTTPS: 0.1,
					ThinkMS: 2000, Zipf: 1.1,
				}
			}
		}
	}
	return s
}

// SmallScenario is the paper calibration at reduced scale — the same ten
// ISPs over 240 PBWs, Alexa 100 and 16 vantage points — for tests and
// smoke runs. Compiling it yields exactly SmallConfig.
func SmallScenario() Scenario {
	s := PaperScenario()
	s.Name = "small"
	s.Description = "the paper's ten-ISP world at reduced scale (240 PBWs) for experimentation and tests"
	s.PBWSites = 240
	s.AlexaSites = 100
	s.VantagePoints = 16
	return s
}
