package ispnet

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"time"

	"repro/internal/dnssim"
	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/trafficgen"
	"repro/internal/websim"
	"repro/obs"
)

// Config sizes the world. The zero value is not useful; use DefaultConfig.
type Config struct {
	Seed       int64
	PBWCount   int
	AlexaCount int
	VPCount    int // PlanetLab-style vantage points spread across pods
	Pods       int
	Profiles   []Profile
}

// DefaultConfig is the paper-scale world: 1200 PBWs, Alexa 1000, 40 VPs —
// the compiled PaperScenario.
func DefaultConfig() Config {
	return mustCompile(PaperScenario())
}

// SmallConfig is a reduced world for unit tests: same structure, fewer
// sites and vantage points — the compiled SmallScenario.
func SmallConfig() Config {
	return mustCompile(SmallScenario())
}

// mustCompile lowers a scenario known to validate (the built-in ones).
func mustCompile(s Scenario) Config {
	cfg, err := s.Compile()
	if err != nil {
		panic(fmt.Sprintf("ispnet: built-in scenario %q: %v", s.Name, err))
	}
	return cfg
}

// Endpoint is a measurement-capable host: TCP stack, DNS stub, and an
// ordinary web server (the paper's remote controlled hosts double as both
// vantage points and observation servers).
type Endpoint struct {
	Host   *netsim.Host
	TCP    *tcpsim.Stack
	DNS    *dnssim.Client
	Server *websim.Server
	Region websim.Region
	Pod    int // pod index for VPs, -1 otherwise
	// World links back to the world the endpoint lives in (signature
	// catalogue, engine access).
	World *World
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() netip.Addr { return e.Host.Addr() }

// BoxRef is the world's registry entry for one deployed middlebox.
type BoxRef struct {
	ID     string
	Owner  string
	ASN    int
	Router *netsim.Router
	Kind   CensorKind
	List   middlebox.Blocklist
	Scope  middlebox.Scope
	WM     *middlebox.Wiretap
	IM     *middlebox.Interceptor
}

// Triggers returns the box's trigger count.
func (b *BoxRef) Triggers() int {
	if b.WM != nil {
		return b.WM.Triggers
	}
	return b.IM.Triggers
}

// Evictions returns how many live flows the box's bounded flow table has
// displaced under capacity pressure since the last reset.
func (b *BoxRef) Evictions() uint64 {
	if b.WM != nil {
		return b.WM.Evictions()
	}
	return b.IM.Evictions()
}

// FlowLen returns the box's current flow-table occupancy.
func (b *BoxRef) FlowLen() int {
	if b.WM != nil {
		return b.WM.Len()
	}
	return b.IM.Len()
}

// ISP is one built network operator.
type ISP struct {
	Profile
	World *World

	Core    *netsim.Router
	Edges   []*netsim.Router
	Borders []*netsim.Router

	Prefixes []netip.Prefix
	Client   *Endpoint
	// DefaultResolver is what the ISP hands its subscribers via DHCP.
	DefaultResolver netip.Addr
	Resolvers       []*dnssim.Resolver
	Boxes           []*BoxRef
	// HTTPList is the ISP's full HTTP blocklist (union over its boxes);
	// DNSList the DNS one.
	HTTPList []string
	DNSList  []string
	// Targets are in-ISP hosts with TCP port 80 open, the destinations the
	// paper's outside-in scans discover (2 per prefix).
	Targets []netip.Addr
	// BlockIP is the static address poisoned resolvers usually answer with.
	BlockIP netip.Addr

	// genHosts are the per-edge generator hosts that carry the ISP's
	// synthetic background population (nil when Population.Users == 0).
	genHosts []*netsim.Host

	peers []transitPeer
}

// Peers returns the ISP's wired transit links (provider name, peering
// router, collateral list size).
func (i *ISP) Peers() []struct {
	Provider string
	Router   *netsim.Router
} {
	out := make([]struct {
		Provider string
		Router   *netsim.Router
	}, len(i.peers))
	for k, tp := range i.peers {
		out[k].Provider = tp.provider.Name
		out[k].Router = tp.router
	}
	return out
}

// World is the fully assembled simulation.
type World struct {
	Cfg       Config
	Eng       *sim.Engine
	Net       *netsim.Network
	Catalog   *websim.Catalog
	Authority *dnssim.CatalogAuthority

	ISPs    map[string]*ISP
	ISPList []*ISP

	Hub  *netsim.Router
	Pods []*netsim.Router

	TorExit   *Endpoint
	Control   *Endpoint
	GoogleDNS netip.Addr
	VPs       []*Endpoint

	// Traffic drives the synthetic background populations; nil when no
	// profile seats users.
	Traffic *trafficgen.Generator

	boxesByRouter map[int][]*BoxRef
	regionByASN   map[int]websim.Region
	addrCounters  map[int]int
	podBorders    map[string][]*netsim.Router // ISP -> border adjacent to each pod
	podPolicies   map[int]*podPolicy

	// resetters rewind the runtime state of every stateful component built
	// into the world (TCP stacks, web servers, DNS clients and resolvers),
	// in build order; Reset runs them after rewinding the engine.
	resetters []func()
	// notifSigs is the per-world notification catalogue (build-time).
	notifSigs []NotifSignature
}

// onReset registers a component rewind to run during Reset.
func (w *World) onReset(fn func()) { w.resetters = append(w.resetters, fn) }

// Obs returns the world's telemetry registry — the engine-owned per-world
// registry every component resolved its instruments from at build time.
// Its contents count virtual events only and rewind with Reset, so they
// are byte-identical across pooled replicas and campaign workers.
func (w *World) Obs() *obs.Registry { return w.Eng.Obs() }

// Rebind marks a serialized ownership hand-off: the caller asserts that
// all previous use of the world happened-before this call (it holds the
// mutex, or took the world from a parked pool) and that whichever
// goroutine touches the world next owns it. It releases the buffer pool's
// goroutine guard in race/repolint_debug builds and costs nothing
// otherwise. Reset implies it.
func (w *World) Rebind() { w.Net.RebindPool() }

// Reset restores the world to its just-built state: the engine clock,
// event queue and random source rewind to the seed, every TCP stack drops
// its connections, web servers forget their fetch counters, middleboxes
// clear flow tables and trigger counts, and hosts lose runtime handler
// registrations (ephemeral DNS ports, tracer ICMP hooks, packet filters).
// Topology, routing, blocklists and resolver poisoning are build-time
// state and survive.
//
// The contract — enforced by the campaign determinism tests — is that a
// reset world is indistinguishable from NewWorld(w.Cfg): the same
// measurement sequence produces byte-identical results on either. This is
// what lets a campaign runner pool worlds per worker instead of paying one
// build per task.
func (w *World) Reset() {
	w.Eng.Reset()
	w.Net.ResetRuntime()
	for _, fn := range w.resetters {
		fn()
	}
	for _, isp := range w.ISPList {
		for _, b := range isp.Boxes {
			if b.WM != nil {
				b.WM.Reset()
			}
			if b.IM != nil {
				b.IM.Reset()
			}
		}
		for _, r := range isp.Resolvers {
			r.Reset()
		}
	}
	if w.Traffic != nil {
		w.Traffic.Start()
	}
}

func hashStr(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// pickDomains deterministically selects count domains from all, keyed by
// salt, returned in original (website-ID) order.
func pickDomains(all []string, count int, salt string) []string {
	if count >= len(all) {
		out := make([]string, len(all))
		copy(out, all)
		return out
	}
	idx := make([]int, len(all))
	for i := range idx {
		idx[i] = i
	}
	// Salt goes first: FNV-1a mixes a shared suffix through the same final
	// bijection for every domain, which can preserve relative order; a
	// differing prefix perturbs the whole hash.
	sort.Slice(idx, func(a, b int) bool {
		ha, hb := hashStr(salt+"|"+all[idx[a]]), hashStr(salt+"|"+all[idx[b]])
		if ha != hb {
			return ha < hb
		}
		return idx[a] < idx[b]
	})
	chosen := append([]int(nil), idx[:count]...)
	sort.Ints(chosen)
	out := make([]string, count)
	for i, j := range chosen {
		out[i] = all[j]
	}
	return out
}

// circulantLists spreads domains across K boxes so that each domain sits on
// about s*K consecutive boxes (at least one). Per-URL widths average s*K,
// making the measured consistency metric land on s while keeping the union
// equal to the full list — the structure behind Figures 2 and 5.
func circulantLists(domains []string, K int, s float64, salt string) []([]string) {
	lists := make([][]string, K)
	if K == 0 {
		return lists
	}
	base := int(s * float64(K))
	frac := s*float64(K) - float64(base)
	for r, d := range domains {
		w := base
		if hashStr("w|"+salt+"|"+d)%1000 < uint64(frac*1000) {
			w++
		}
		if w < 1 {
			w = 1
		}
		if w > K {
			w = K
		}
		// Spread window starts evenly around the ring; r%K would leave
		// boxes beyond len(domains)+w empty whenever K > len(domains).
		start := r * K / len(domains)
		for m := 0; m < w; m++ {
			b := (start + m) % K
			lists[b] = append(lists[b], d)
		}
	}
	return lists
}

// NewWorld builds the full simulation.
func NewWorld(cfg Config) *World {
	w := &World{
		Cfg:           cfg,
		Eng:           sim.NewEngine(cfg.Seed),
		ISPs:          make(map[string]*ISP),
		boxesByRouter: make(map[int][]*BoxRef),
		regionByASN:   make(map[int]websim.Region),
		addrCounters:  make(map[int]int),
		podBorders:    make(map[string][]*netsim.Router),
	}
	w.Net = netsim.New(w.Eng)
	w.Catalog = websim.NewCatalog(cfg.PBWCount, cfg.AlexaCount)
	w.Authority = &dnssim.CatalogAuthority{Catalog: w.Catalog}

	w.buildFabric()
	w.buildWeb()
	for i := range cfg.Profiles {
		w.buildISP(&cfg.Profiles[i])
	}
	w.buildMeasurementInfra()
	w.createPeerings()
	w.Net.Build()
	w.wireTransits()
	w.buildNotifSignatures()
	w.buildTraffic()
	// Everything registered on hosts from here on is runtime state that
	// Reset rewinds.
	w.Net.MarkBaseline()
	if w.Traffic != nil {
		// Prime the background population. This is the first engine-RNG
		// consumer after the (draw-free) build, exactly as it is after
		// Reset rewinds the RNG — the byte-identity contract holds with
		// load flowing.
		w.Traffic.Start()
	}
	return w
}

// region mapping ----------------------------------------------------------

// podRegion maps a pod index to its hosting region: first half US, second
// half EU.
func (w *World) podRegion(p int) websim.Region {
	if p < w.Cfg.Pods/2 {
		return websim.RegionUS
	}
	return websim.RegionEU
}

// RegionOf geolocates an address by its originating AS.
func (w *World) RegionOf(addr netip.Addr) websim.Region {
	if r, ok := w.regionByASN[w.Net.ASNOf(addr)]; ok {
		return r
	}
	return websim.RegionUS
}

// fabric -------------------------------------------------------------------

func (w *World) buildFabric() {
	w.Hub = w.Net.AddRouter("hub", ASNHub, netip.AddrFrom4([4]byte{190, 0, 0, 1}))
	w.regionByASN[ASNHub] = websim.RegionUS
	w.regionByASN[ASNPodsUS] = websim.RegionUS
	w.regionByASN[ASNPodsEU] = websim.RegionEU
	w.regionByASN[ASNINDC] = websim.RegionIN
	w.regionByASN[ASNExt] = websim.RegionUS
	for p := 0; p < w.Cfg.Pods; p++ {
		asn := ASNPodsUS
		if w.podRegion(p) == websim.RegionEU {
			asn = ASNPodsEU
		}
		pod := w.Net.AddRouter(fmt.Sprintf("pod%d", p), asn, netip.AddrFrom4([4]byte{190, 1, byte(p), 1}))
		w.Net.Link(pod, w.Hub, 5*time.Millisecond)
		w.Net.ClaimPrefix(netip.PrefixFrom(netip.AddrFrom4([4]byte{199, byte(p), 0, 0}), 16), pod)
		w.Pods = append(w.Pods, pod)
	}
}

// podIndex wraps a nominal pod index into the configured range, keeping
// the web fabric's fixed placement spots (CDN edges, the parking service)
// valid in scenario worlds with few pods. Identity at the calibrated 80.
func (w *World) podIndex(i int) int { return i % w.Cfg.Pods }

// podAddr allocates the next host address in a pod's prefix.
func (w *World) podAddr(p int) netip.Addr {
	c := w.addrCounters[p]
	w.addrCounters[p] = c + 1
	return netip.AddrFrom4([4]byte{199, byte(p), byte(1 + c/250), byte(1 + c%250)})
}

// newEndpoint builds a host with TCP stack, DNS stub and a web server.
func (w *World) newEndpoint(addr netip.Addr, r *netsim.Router, region websim.Region, profile websim.ServerProfile) *Endpoint {
	h := w.Net.AddHost(addr, r, time.Millisecond)
	st := tcpsim.NewStack(h)
	srv := websim.NewServer(st, region, profile)
	srv.EnableHTTPS()
	dns := dnssim.NewClient(h)
	w.onReset(st.Reset)
	w.onReset(srv.Reset)
	w.onReset(dns.Reset)
	return &Endpoint{
		Host: h, TCP: st, DNS: dns,
		Server: srv,
		Region: region, Pod: -1,
		World: w,
	}
}

// NotifSignature fingerprints one ISP's censorship notification: any
// stream containing Marker was forged by that ISP's middleboxes.
type NotifSignature struct {
	ISP    string
	Marker string
}

// NotifSignatures is the notification catalogue of this world — what the
// paper's researchers assembled by browsing blocked sites from every
// vantage (§6.1), derived from the deployed styles: one signature per
// ISP whose boxes send a notification body. Scenario worlds thus get
// attribution for their own custom censors, not just the paper's four.
// The catalogue is build-time state, computed once (it survives Reset).
func (w *World) NotifSignatures() []NotifSignature { return w.notifSigs }

func (w *World) buildNotifSignatures() {
	for _, isp := range w.ISPList {
		if body := isp.Profile.Style.BodyHTML; body != "" {
			w.notifSigs = append(w.notifSigs, NotifSignature{ISP: isp.Name, Marker: body})
		}
	}
}

// web ----------------------------------------------------------------------

func (w *World) buildWeb() {
	// IN-DC: the neutral Indian hosting AS (CDN IN edges, IN parking).
	indc := w.Net.AddRouter("in-dc", ASNINDC, netip.AddrFrom4([4]byte{61, 50, 255, 1}))
	w.Net.Link(indc, w.Hub, 4*time.Millisecond)
	w.Net.ClaimPrefix(netip.MustParsePrefix("61.50.0.0/16"), indc)

	cdnIN := w.newEndpoint(netip.MustParseAddr("61.50.0.200"), indc, websim.RegionIN, websim.ProfileCDNEdge)

	pUS, pEU := w.podIndex(7), w.podIndex(w.Cfg.Pods/2+7)
	cdnUS := w.newEndpoint(w.podAddr(pUS), w.Pods[pUS], websim.RegionUS, websim.ProfileCDNEdge)
	cdnEU := w.newEndpoint(w.podAddr(pEU), w.Pods[pEU], websim.RegionEU, websim.ProfileCDNEdge)
	// Several anycast CDN deployments spread across pods: one IP per
	// deployment worldwide, geo-dependent content, and — because they sit
	// behind different borders — realistic path diversity for the sites
	// they host.
	var cdnAny []*Endpoint
	for _, p := range []int{17, 22, w.Cfg.Pods/2 + 1, w.Cfg.Pods/2 + 26} {
		p = w.podIndex(p)
		ep := w.newEndpoint(w.podAddr(p), w.Pods[p], websim.RegionUS, websim.ProfileCDNEdge)
		ep.Server.RegionOf = w.RegionOf
		cdnAny = append(cdnAny, ep)
	}
	// One anycast parking service: same address worldwide, region-local
	// placeholder pages (content AND header names differ by requester
	// location) — OONI's DNS check passes, its HTTP checks all fail.
	park := w.newEndpoint(w.podAddr(w.podIndex(27)), w.Pods[w.podIndex(27)], websim.RegionUS, websim.ProfileParkIntl)
	park.Server.ServeParked()
	park.Server.RegionOf = w.RegionOf

	all := append(append([]*websim.Site(nil), w.Catalog.PBW...), w.Catalog.Alexa...)
	for _, site := range all {
		switch site.Kind {
		case websim.KindNormal, websim.KindDynamic:
			p := int(hashStr("pod|"+site.Domain) % uint64(w.Cfg.Pods))
			region := w.podRegion(p)
			site.HomeRegion = region
			addr := w.podAddr(p)
			ep := w.newEndpoint(addr, w.Pods[p], region, websim.ProfileStandard)
			ep.Server.Host(site)
			for _, rg := range w.Catalog.Regions {
				site.Addrs[rg] = addr
			}
		case websim.KindCDN:
			if hashStr("anycast|"+site.Domain)%100 < 75 {
				// Anycast edge: one IP worldwide, geo-dependent content.
				ep := cdnAny[hashStr("anyedge|"+site.Domain)%uint64(len(cdnAny))]
				ep.Server.Host(site)
				for _, rg := range w.Catalog.Regions {
					site.Addrs[rg] = ep.Addr()
				}
			} else {
				cdnIN.Server.Host(site)
				cdnUS.Server.Host(site)
				cdnEU.Server.Host(site)
				site.Addrs[websim.RegionIN] = cdnIN.Addr()
				site.Addrs[websim.RegionUS] = cdnUS.Addr()
				site.Addrs[websim.RegionEU] = cdnEU.Addr()
			}
		case websim.KindDead:
			for _, rg := range w.Catalog.Regions {
				site.Addrs[rg] = park.Addr()
			}
		case websim.KindGone:
			// Resolves into a claimed prefix where nothing listens.
			p := int(hashStr("pod|"+site.Domain) % uint64(w.Cfg.Pods))
			addr := netip.AddrFrom4([4]byte{199, byte(p), 250, byte(1 + site.PBWIndex%250)})
			for _, rg := range w.Catalog.Regions {
				site.Addrs[rg] = addr
			}
		}
	}
}

// measurement infrastructure ------------------------------------------------

func (w *World) buildMeasurementInfra() {
	ext := w.Net.AddRouter("ext-m", ASNExt, netip.AddrFrom4([4]byte{198, 51, 255, 1}))
	w.Net.Link(ext, w.Hub, 4*time.Millisecond)
	w.Net.ClaimPrefix(netip.MustParsePrefix("198.51.0.0/16"), ext)

	w.TorExit = w.newEndpoint(netip.MustParseAddr("198.51.0.10"), ext, websim.RegionUS, websim.ProfileStandard)
	w.Control = w.newEndpoint(netip.MustParseAddr("198.51.0.11"), ext, websim.RegionUS, websim.ProfileStandard)
	gdns := w.Net.AddHost(netip.MustParseAddr("198.51.0.53"), ext, time.Millisecond)
	w.onReset(dnssim.NewResolver(gdns, websim.RegionUS, w.Authority, time.Millisecond).Reset)
	w.GoogleDNS = gdns.Addr()

	for v := 0; v < w.Cfg.VPCount; v++ {
		// Spread vantage points evenly across pods, mixing parities, so
		// they sample the ISPs' border routers uniformly, like globally
		// scattered PlanetLab nodes.
		p := (v*w.Cfg.Pods/w.Cfg.VPCount + v%2) % w.Cfg.Pods
		ep := w.newEndpoint(w.podAddr(p), w.Pods[p], w.podRegion(p), websim.ProfileStandard)
		ep.Pod = p
		w.VPs = append(w.VPs, ep)
	}
}

// ISPs -----------------------------------------------------------------------

func (w *World) buildISP(p *Profile) {
	a := byte(p.ASN - 100)
	isp := &ISP{Profile: *p, World: w}
	w.regionByASN[p.ASN] = websim.RegionIN

	isp.Core = w.Net.AddRouter(p.Name+"-core", p.ASN, netip.AddrFrom4([4]byte{100, a, 0, 1}))
	isp.BlockIP = netip.AddrFrom4([4]byte{p.Base1, p.Base2, 255, 1})

	// Edges: each claims a /24 with two always-on port-80 hosts (the scan
	// targets) and a slice of the resolver fleet.
	resolversLeft := p.Resolvers
	for e := 0; e < p.Edges; e++ {
		er := w.Net.AddRouter(fmt.Sprintf("%s-edge%d", p.Name, e), p.ASN,
			netip.AddrFrom4([4]byte{100, a, byte(10 + e), 1}))
		w.Net.Link(isp.Core, er, time.Millisecond)
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{p.Base1, p.Base2, byte(e), 0}), 24)
		w.Net.ClaimPrefix(prefix, er)
		isp.Prefixes = append(isp.Prefixes, prefix)
		isp.Edges = append(isp.Edges, er)
		for t := 1; t <= 2; t++ {
			addr := netip.AddrFrom4([4]byte{p.Base1, p.Base2, byte(e), byte(t)})
			ep := w.newEndpoint(addr, er, websim.RegionIN, websim.ProfileStandard)
			_ = ep
			isp.Targets = append(isp.Targets, addr)
		}
		for k := 0; k < 8 && resolversLeft > 0; k++ {
			addr := netip.AddrFrom4([4]byte{p.Base1, p.Base2, byte(e), byte(10 + k)})
			rh := w.Net.AddHost(addr, er, time.Millisecond)
			isp.Resolvers = append(isp.Resolvers, dnssim.NewResolver(rh, websim.RegionIN, w.Authority, time.Millisecond))
			resolversLeft--
		}
		if p.Population.Users > 0 {
			// The edge's background-population generator host: one address
			// aggregates the edge's synthetic subscribers (distinguished by
			// local port), the way a CGNAT egress would.
			addr := netip.AddrFrom4([4]byte{p.Base1, p.Base2, byte(e), 200})
			isp.genHosts = append(isp.genHosts, w.Net.AddHost(addr, er, time.Millisecond))
		}
	}
	// /16 fallback at the core so dead in-ISP addresses route and drop.
	w.Net.ClaimPrefix(netip.PrefixFrom(netip.AddrFrom4([4]byte{p.Base1, p.Base2, 0, 0}), 16), isp.Core)

	// The measurement client.
	clientAddr := netip.AddrFrom4([4]byte{p.Base1, p.Base2, 0, 100})
	isp.Client = w.newEndpoint(clientAddr, isp.Edges[0], websim.RegionIN, websim.ProfileStandard)

	// Borders and their pod adjacencies.
	if p.Borders > 0 {
		pb := make([]*netsim.Router, w.Cfg.Pods)
		for j := 0; j < p.Borders; j++ {
			br := w.Net.AddRouter(fmt.Sprintf("%s-border%d", p.Name, j), p.ASN,
				netip.AddrFrom4([4]byte{100, a, byte(120 + j), 1}))
			w.Net.Link(isp.Core, br, time.Millisecond)
			lo := j * w.Cfg.Pods / p.Borders
			hi := (j + 1) * w.Cfg.Pods / p.Borders
			for pd := lo; pd < hi; pd++ {
				w.Net.Link(br, w.Pods[pd], 5*time.Millisecond)
				pb[pd] = br
			}
			isp.Borders = append(isp.Borders, br)
		}
		w.podBorders[p.Name] = pb
	}

	// Blocklists.
	pbw := w.Catalog.PBWDomains()
	if p.BlockCount > 0 {
		isp.HTTPList = pickDomains(pbw, scaled(p.BlockCount, w), p.Name+"|http")
	}
	if p.DNSBlockCount > 0 {
		isp.DNSList = pickDomains(pbw, scaled(p.DNSBlockCount, w), p.Name+"|dns")
	}

	// HTTP middleboxes on evenly spread borders.
	if p.HTTPCensoring() && p.Boxes > 0 {
		lists := circulantLists(isp.HTTPList, p.Boxes, p.Consistency, p.Name)
		for k := 0; k < p.Boxes; k++ {
			j := k * p.Borders / p.Boxes
			router := isp.Borders[j]
			router.Anonymized = true
			scope := middlebox.ScopeSrcOnly
			if k < p.BoxesSrcOrDst {
				scope = middlebox.ScopeSrcOrDst
			}
			w.deployBox(isp, fmt.Sprintf("%s-box%d", p.Name, k), router, p.Censor, lists[k], scope)
		}
	}

	// DNS poisoning: the first PoisonedResolvers resolvers get circulant
	// poison lists; the client's default resolver (#0) keeps only its
	// first ClientResolverSize entries.
	if p.Censor == CensorDNS && p.PoisonedResolvers > 0 {
		k := p.PoisonedResolvers
		if k > len(isp.Resolvers) {
			k = len(isp.Resolvers)
		}
		lists := circulantLists(isp.DNSList, k, p.DNSConsistency, p.Name+"|dns")
		for i := 0; i < k; i++ {
			list := lists[i]
			if i == 0 && p.ClientResolverSize > 0 && len(list) > p.ClientResolverSize {
				list = list[:p.ClientResolverSize]
			}
			for _, d := range list {
				isp.Resolvers[i].PoisonDomain(d, dnssim.Poison{Addr: w.poisonAddr(isp, i, d)})
			}
		}
	}
	if len(isp.Resolvers) > 0 {
		isp.DefaultResolver = isp.Resolvers[0].Addr()
	} else {
		// Non-DNS-censoring ISPs still run an honest subscriber resolver.
		addr := netip.AddrFrom4([4]byte{p.Base1, p.Base2, 0, 53})
		rh := w.Net.AddHost(addr, isp.Edges[0], time.Millisecond)
		isp.Resolvers = append(isp.Resolvers, dnssim.NewResolver(rh, websim.RegionIN, w.Authority, time.Millisecond))
		isp.DefaultResolver = addr
	}

	w.ISPs[p.Name] = isp
	w.ISPList = append(w.ISPList, isp)
}

// scaled shrinks calibration counts proportionally for small worlds.
func scaled(n int, w *World) int {
	if w.Cfg.PBWCount >= 1200 {
		return n
	}
	v := n * w.Cfg.PBWCount / 1200
	if v < 1 {
		v = 1
	}
	return v
}

// poisonAddr picks the manipulated answer for a (resolver, domain) pair:
// mostly the ISP's static block host, sometimes a bogon — both patterns the
// paper's frequency analysis observed.
func (w *World) poisonAddr(isp *ISP, resolver int, domain string) netip.Addr {
	h := hashStr(fmt.Sprintf("%s|%d|%s|poison", isp.Name, resolver, domain))
	if h%100 < 70 {
		return isp.BlockIP
	}
	return netip.AddrFrom4([4]byte{10, 66, byte(h >> 8), byte(h >> 16)})
}

// deployBox instantiates one middlebox and registers it.
func (w *World) deployBox(isp *ISP, id string, router *netsim.Router, kind CensorKind, list []string, scope middlebox.Scope) *BoxRef {
	cfg := middlebox.Config{
		ID: id, ASN: isp.ASN,
		Blocklist:     middlebox.NewBlocklist(list),
		Scope:         scope,
		OwnPrefixes:   isp.Prefixes,
		LastHostMatch: kind == CensorIMCovert,
		Style:         isp.Profile.Style,
		FlowCapacity:  isp.Profile.FlowCapacity,
	}
	ref := &BoxRef{ID: id, Owner: isp.Name, ASN: isp.ASN, Router: router, Kind: kind, List: cfg.Blocklist, Scope: scope}
	switch kind {
	case CensorWM:
		ref.WM = middlebox.NewWiretap(w.Net, cfg, isp.WMLossProb)
		router.AttachTap(ref.WM)
	case CensorIMOvert:
		ref.IM = middlebox.NewInterceptor(w.Net, cfg, true)
		router.AttachInline(ref.IM)
	case CensorIMCovert:
		ref.IM = middlebox.NewInterceptor(w.Net, cfg, false)
		router.AttachInline(ref.IM)
	}
	isp.Boxes = append(isp.Boxes, ref)
	w.boxesByRouter[router.ID] = append(w.boxesByRouter[router.ID], ref)
	return ref
}

// BoxesAt returns the middleboxes deployed at a router.
func (w *World) BoxesAt(r *netsim.Router) []*BoxRef { return w.boxesByRouter[r.ID] }

// AttachBridgeHost seats a bridge-owned host on the ISP's client edge — the
// same access router, latency and routing position as the measurement
// client, so bridge traffic crosses the same middleboxes. Addresses come
// from the .0.210+ slot range the builder leaves free (client .0.100,
// resolvers .0.10+, background generators .e.200); slots are reclaimed when
// DetachBridgeHost removes the host. The host carries no handlers — callers
// seat their own stacks.
func (w *World) AttachBridgeHost(isp *ISP) (*netsim.Host, error) {
	for k := 0; k < 40; k++ {
		addr := netip.AddrFrom4([4]byte{isp.Base1, isp.Base2, 0, byte(210 + k)})
		if _, ok := w.Net.Host(addr); !ok {
			return w.Net.AddHost(addr, isp.Edges[0], time.Millisecond), nil
		}
	}
	return nil, fmt.Errorf("ispnet: %s: no free bridge host slots (40 in use)", isp.Name)
}

// DetachBridgeHost removes a bridge-owned host seated by AttachBridgeHost,
// freeing its address slot.
func (w *World) DetachBridgeHost(h *netsim.Host) { w.Net.RemoveHost(h) }

// ISP returns a built ISP by name.
func (w *World) ISP(name string) *ISP { return w.ISPs[name] }
