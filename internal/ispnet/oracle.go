package ispnet

import (
	"net/netip"

	"repro/internal/middlebox"
	"repro/internal/websim"
)

// The oracle answers, from the simulator's own configuration, what the
// paper's authors established by manually browsing from each vantage
// point: which sites are actually interfered with for a given client. All
// detector accuracy metrics (Table 1) are computed against these answers.

// Truth is the ground-truth censorship status of one site from one client.
type Truth struct {
	Domain string
	// DNSPoisoned: the client's default resolver manipulates this domain.
	DNSPoisoned bool
	// HTTPFiltered: a middlebox on the client's path to the site's address
	// carries this domain.
	HTTPFiltered bool
	// By is the middlebox responsible for HTTP filtering (nil if none).
	By *BoxRef
}

// Blocked reports whether any mechanism interferes.
func (t Truth) Blocked() bool { return t.DNSPoisoned || t.HTTPFiltered }

// boxWouldTrigger mirrors the middlebox scope check for a client->server
// flow crossing the box.
func (w *World) boxWouldTrigger(b *BoxRef, src, dst netip.Addr, domain string) bool {
	if !b.List.Contains(domain) {
		return false
	}
	owner := w.ISPs[b.Owner]
	inOwn := func(a netip.Addr) bool {
		for _, p := range owner.Prefixes {
			if p.Contains(a) {
				return true
			}
		}
		return false
	}
	switch b.Scope {
	case middlebox.ScopeAll:
		return true
	case middlebox.ScopeSrcOrDst:
		return inOwn(src) || inOwn(dst)
	default:
		return inOwn(src)
	}
}

// HTTPTruthOnPath reports whether (and by which box) a GET for domain from
// the endpoint to dstAddr would be censored.
func (w *World) HTTPTruthOnPath(from *Endpoint, dstAddr netip.Addr, domain string) (bool, *BoxRef) {
	path := w.Net.PathHostToAddr(from.Host, dstAddr)
	for _, r := range path {
		for _, b := range w.boxesByRouter[r.ID] {
			if w.boxWouldTrigger(b, from.Addr(), dstAddr, domain) {
				return true, b
			}
		}
	}
	return false, nil
}

// TruthFor computes the full ground truth for one site from an ISP's
// measurement client.
func (w *World) TruthFor(isp *ISP, domain string) Truth {
	t := Truth{Domain: domain}
	if len(isp.Resolvers) > 0 {
		t.DNSPoisoned = isp.Resolvers[0].PoisonsDomain(domain)
	}
	site, ok := w.Catalog.Site(domain)
	if !ok {
		return t
	}
	// Manual verification browses with the site's real (IN-view) address.
	addr := site.Addr(websim.RegionIN)
	t.HTTPFiltered, t.By = w.HTTPTruthOnPath(isp.Client, addr, domain)
	return t
}

// TruthSet computes ground truth for every PBW from an ISP's client,
// returning the domains truly blocked by each mechanism.
func (w *World) TruthSet(isp *ISP) (dns, http map[string]bool) {
	dns = make(map[string]bool)
	http = make(map[string]bool)
	for _, d := range w.Catalog.PBWDomains() {
		t := w.TruthFor(isp, d)
		if t.DNSPoisoned {
			dns[d] = true
		}
		if t.HTTPFiltered {
			http[d] = true
		}
	}
	return dns, http
}
