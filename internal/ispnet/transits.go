package ispnet

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/middlebox"
	"repro/internal/netsim"
	"repro/internal/websim"
)

// createPeerings builds the customer-transit relationships of Table 3: each
// transit link gets a dedicated peering router owned by the provider,
// carrying one of the provider's middleboxes — the mechanism behind the
// paper's intra-country collateral damage.
//
// Must run before Net.Build (it adds routers and links).
func (w *World) createPeerings() {
	for _, isp := range w.ISPList {
		for i, tl := range isp.Transits {
			provider := w.ISPs[tl.Provider]
			if provider == nil {
				panic(fmt.Sprintf("ispnet: unknown transit provider %q", tl.Provider))
			}
			pa := byte(provider.ASN - 100)
			peer := w.Net.AddRouter(
				fmt.Sprintf("%s-peer-%s", provider.Name, isp.Name),
				provider.ASN,
				netip.AddrFrom4([4]byte{100, pa, byte(200 + 4*peerIdx(isp) + i), 1}),
			)
			peer.Anonymized = true
			w.Net.Link(isp.Core, peer, 2*time.Millisecond)
			w.Net.Link(peer, provider.Core, 2*time.Millisecond)
			isp.peers = append(isp.peers, transitPeer{link: tl, provider: provider, router: peer})

			// The provider's middlebox on this peering link, carrying
			// exactly the calibrated collateral list.
			list := w.collateralList(isp, provider, tl)
			kind := provider.Censor
			if !provider.HTTPCensoring() {
				kind = CensorWM // TATA operates wiretap boxes on customer links
			}
			w.deployBox(provider, fmt.Sprintf("%s-peerbox-%s", provider.Name, isp.Name),
				peer, kind, list, middlebox.ScopeAll)
		}
	}
}

// peerIdx gives each customer a small stable index for address allocation.
func peerIdx(isp *ISP) int {
	switch isp.Name {
	case "NKN":
		return 0
	case "Sify":
		return 1
	case "Siti":
		return 2
	case "MTNL":
		return 3
	case "BSNL":
		return 4
	default:
		return 5
	}
}

// collateralList samples the provider's peering-link blocklist: PBWs with
// stable dedicated hosting (normal/dynamic kinds) in the region this
// transit link serves, preferring the provider's own HTTP list.
func (w *World) collateralList(customer, provider *ISP, tl TransitLink) []string {
	inProvider := map[string]bool{}
	for _, d := range provider.HTTPList {
		inProvider[d] = true
	}
	var pool, fallback []string
	for _, s := range w.Catalog.PBW {
		if s.Kind != websim.KindNormal && s.Kind != websim.KindDynamic {
			continue
		}
		if tl.Region == "US" && s.HomeRegion != websim.RegionUS {
			continue
		}
		if tl.Region == "EU" && s.HomeRegion != websim.RegionEU {
			continue
		}
		if len(inProvider) == 0 || inProvider[s.Domain] {
			pool = append(pool, s.Domain)
		} else {
			fallback = append(fallback, s.Domain)
		}
	}
	count := scaled(tl.CollateralCount, w)
	if len(pool) < count {
		pool = append(pool, fallback...)
	}
	return pickDomains(pool, count, customer.Name+"|"+provider.Name+"|collateral")
}

// transitPeer records one wired transit link.
type transitPeer struct {
	link     TransitLink
	provider *ISP
	router   *netsim.Router
}

// wireTransits installs the policy routing that steers customer traffic
// through the calibrated transit per hosting region, symmetrically in both
// directions so the peering middleboxes see complete flows.
//
// Must run after Net.Build.
func (w *World) wireTransits() {
	for _, isp := range w.ISPList {
		if len(isp.peers) == 0 {
			continue
		}
		isp := isp
		// Forward: at the customer core, destinations in global pods pick
		// the transit assigned to their hosting region.
		isp.Core.SetPolicy(func(dst netip.Addr) (*netsim.Router, bool) {
			p, ok := w.podOf(dst)
			if !ok {
				return nil, false
			}
			region := w.podRegion(p)
			for _, tp := range isp.peers {
				if tp.link.Region == "ALL" ||
					(tp.link.Region == "US" && region == websim.RegionUS) ||
					(tp.link.Region == "EU" && region == websim.RegionEU) {
					return tp.router, true
				}
			}
			return nil, false
		})
		// Reverse: at every pod, traffic back to the customer enters the
		// same provider via the provider's border adjacent to that pod.
		for p, pod := range w.Pods {
			region := w.podRegion(p)
			var next *netsim.Router
			for _, tp := range isp.peers {
				if tp.link.Region == "ALL" ||
					(tp.link.Region == "US" && region == websim.RegionUS) ||
					(tp.link.Region == "EU" && region == websim.RegionEU) {
					if pb := w.podBorders[tp.provider.Name]; pb != nil {
						next = pb[p]
					}
				}
			}
			if next == nil {
				continue
			}
			w.addPodPolicy(pod, isp.Prefixes, next)
		}
	}
	for _, pp := range w.podPolicies {
		pp.install()
	}
}

// podPolicy accumulates per-pod (prefixes -> next hop) rules so multiple
// customers compose into a single policy closure.
type podPolicy struct {
	pod   *netsim.Router
	rules []podRule
}

type podRule struct {
	prefixes []netip.Prefix
	next     *netsim.Router
}

func (w *World) addPodPolicy(pod *netsim.Router, prefixes []netip.Prefix, next *netsim.Router) {
	if w.podPolicies == nil {
		w.podPolicies = make(map[int]*podPolicy)
	}
	pp := w.podPolicies[pod.ID]
	if pp == nil {
		pp = &podPolicy{pod: pod}
		w.podPolicies[pod.ID] = pp
	}
	pp.rules = append(pp.rules, podRule{prefixes: prefixes, next: next})
}

func (pp *podPolicy) install() {
	rules := pp.rules
	pp.pod.SetPolicy(func(dst netip.Addr) (*netsim.Router, bool) {
		for _, r := range rules {
			for _, pfx := range r.prefixes {
				if pfx.Contains(dst) {
					return r.next, true
				}
			}
		}
		return nil, false
	})
}

// podOf maps an address to its pod index (web-hosting space 199.p.0.0/16).
func (w *World) podOf(addr netip.Addr) (int, bool) {
	b := addr.As4()
	if b[0] != 199 || int(b[1]) >= w.Cfg.Pods {
		return 0, false
	}
	return int(b[1]), true
}
