package ispnet

import (
	"fmt"

	"repro/internal/dnswire"
	"repro/internal/httpwire"
	"repro/internal/tlswire"
	"repro/internal/trafficgen"
	"repro/internal/websim"
)

// buildTraffic compiles the profiles' Population calibrations into the
// world's background-traffic generator. It runs after every ISP is built
// (generator hosts and default resolvers exist) and before MarkBaseline
// (the generator's handler registrations are baseline state); it draws no
// engine randomness — Traffic.Start, called after the baseline is marked,
// does that.
func (w *World) buildTraffic() {
	var isps []trafficgen.ISPConfig
	for _, isp := range w.ISPList {
		pop := isp.Profile.Population
		if pop.Users <= 0 || len(isp.genHosts) == 0 {
			continue
		}
		isps = append(isps, trafficgen.ISPConfig{
			Name:       isp.Name,
			Hosts:      isp.genHosts,
			Users:      pop.Users,
			DNSShare:   pop.DNSShare,
			HTTPShare:  pop.HTTPShare,
			HTTPSShare: pop.HTTPSShare,
			Think:      pop.Think,
			ZipfS:      pop.ZipfS,
			Resolver:   isp.DefaultResolver,
		})
	}
	if len(isps) == 0 {
		return
	}
	w.Traffic = trafficgen.New(w.Eng, w.trafficTargets(), isps)
}

// trafficTargets renders the shared ranked site list the populations
// browse: Alexa sites first (the popular head of the Zipf distribution),
// then the potentially-blocked population — so a real-world-shaped slice
// of background flows carries blocklisted Host headers past the boxes.
// Every request is rendered once here; the tick path only points at these
// bytes.
func (w *World) trafficTargets() []trafficgen.Target {
	domains := append([]string(nil), w.Catalog.AlexaDomains()...)
	domains = append(domains, w.Catalog.PBWDomains()...)
	targets := make([]trafficgen.Target, 0, len(domains))
	for _, d := range domains {
		site, ok := w.Catalog.Site(d)
		if !ok {
			continue
		}
		addr := site.Addr(websim.RegionIN)
		if !addr.IsValid() {
			continue
		}
		hello, err := tlswire.ClientHello(d, tlsRandom(d))
		if err != nil {
			panic(fmt.Sprintf("trafficgen: render ClientHello for %s: %v", d, err))
		}
		query, err := dnswire.NewQuery(uint16(hashStr(d)), d).Marshal()
		if err != nil {
			panic(fmt.Sprintf("trafficgen: render DNS query for %s: %v", d, err))
		}
		targets = append(targets, trafficgen.Target{
			Domain: d,
			Addr:   addr,
			Req:    httpwire.StandardGET(d, "/"),
			TLS:    hello,
			DNSQ:   query,
		})
	}
	return targets
}

// tlsRandom derives a deterministic ClientHello random for a domain from
// the build-time string hash — no engine randomness, so rendering targets
// never perturbs the world's draw sequence.
func tlsRandom(domain string) [32]byte {
	var out [32]byte
	h := hashStr(domain + "|tls-random")
	for i := 0; i < 32; i += 8 {
		for j := 0; j < 8; j++ {
			out[i+j] = byte(h >> (8 * j))
		}
		h = hashStr(fmt.Sprintf("%s|tls-random|%d", domain, i))
	}
	return out
}
