// Package ooni replicates OONI's web_connectivity test with the published
// comparison rules the paper dissects in §6.2, so that Table 1 — OONI's
// precision and recall per ISP — can be reproduced and explained:
//
//   - DNS consistency compares client-resolver answers against the control
//     (Google) resolver; CDN-steered sites that legitimately resolve
//     differently per region become false positives.
//   - HTTP blocking requires ALL of: body-length proportion below 0.7,
//     response header *names* differing, and titles differing (titles are
//     compared only when both contain a word of five or more characters).
//     Censorship notifications that mimic a typical server's header names
//     and carry no title therefore pass as "consistent" — false negatives.
//   - A fetch failure (reset/timeout) while the control succeeds is
//     flagged as http-failure.
package ooni

import (
	"net/netip"
	"strings"
	"time"

	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/probe"
)

// Blocking is OONI's verdict for one measurement.
type Blocking string

// Verdicts mirroring web_connectivity's blocking values.
const (
	BlockingNone        Blocking = ""
	BlockingDNS         Blocking = "dns"
	BlockingTCP         Blocking = "tcp_ip"
	BlockingHTTPDiff    Blocking = "http-diff"
	BlockingHTTPFailure Blocking = "http-failure"
)

// Measurement is one web_connectivity result.
type Measurement struct {
	Domain     string
	Verdict    Blocking
	Accessible bool

	DNSConsistent bool
	TCPSucceeded  bool
	BodyPropOK    bool
	HeadersMatch  bool
	TitleMatch    bool
	TitleCompared bool
}

// Runner executes web_connectivity from an ISP client against the control
// vantage.
type Runner struct {
	World   *ispnet.World
	ISP     *ispnet.ISP
	Timeout time.Duration
}

// NewRunner builds a runner for one ISP.
func NewRunner(w *ispnet.World, isp *ispnet.ISP) *Runner {
	return &Runner{World: w, ISP: isp, Timeout: 3 * time.Second}
}

// bodyProportion is OONI's min/max body length ratio with 0.7 threshold.
func bodyProportion(a, b int) bool {
	if a == 0 && b == 0 {
		return true
	}
	if a == 0 || b == 0 {
		return false
	}
	min, max := a, b
	if min > max {
		min, max = max, min
	}
	return float64(min)/float64(max) > 0.7
}

// headerNamesMatch compares response header name sets, case-insensitively,
// ignoring order — OONI compares names, not values.
func headerNamesMatch(a, b *httpwire.Response) bool {
	set := func(r *httpwire.Response) map[string]bool {
		m := map[string]bool{}
		for _, n := range r.HeaderNames() {
			m[strings.ToLower(n)] = true
		}
		return m
	}
	sa, sb := set(a), set(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}

// longWord reports whether the title has a word of five or more
// characters — OONI's precondition for comparing titles at all.
func longWord(title string) bool {
	for _, w := range strings.Fields(title) {
		if len(w) >= 5 {
			return true
		}
	}
	return false
}

// Run measures one domain.
func (r *Runner) Run(domain string) Measurement {
	m := Measurement{Domain: domain}

	// Control measurement: resolve via the public resolver, fetch from
	// the control host.
	ctrlAddrs, _, err := r.World.Control.DNS.ResolveA(r.World.GoogleDNS, domain, r.Timeout)
	ctrlOK := err == nil && len(ctrlAddrs) > 0
	var ctrlFetch *probe.FetchResult
	if ctrlOK {
		ctrlFetch = probe.GetFrom(r.World.Control, ctrlAddrs[0], domain, nil, r.Timeout)
	}

	// Experiment: resolve via the ISP's default resolver, fetch directly.
	expAddrs, _, err := r.ISP.Client.DNS.ResolveA(r.ISP.DefaultResolver, domain, r.Timeout)
	expOK := err == nil && len(expAddrs) > 0

	// DNS consistency: answer overlap, or matching origin AS.
	m.DNSConsistent = true
	if ctrlOK && expOK {
		m.DNSConsistent = r.dnsConsistent(expAddrs, ctrlAddrs)
	}
	if !m.DNSConsistent {
		m.Verdict = BlockingDNS
		return m
	}
	if !expOK {
		if ctrlOK {
			m.Verdict = BlockingDNS
		}
		return m
	}

	// TCP connect.
	conn := r.ISP.Client.TCP.Connect(expAddrs[0], 80)
	if err := conn.WaitEstablished(r.Timeout); err != nil {
		if ctrlFetch != nil && ctrlFetch.Connected {
			m.Verdict = BlockingTCP
		}
		return m
	}
	m.TCPSucceeded = true
	conn.Abort()

	// HTTP comparison.
	expFetch := probe.GetFrom(r.ISP.Client, expAddrs[0], domain, nil, r.Timeout)
	if ctrlFetch == nil || len(ctrlFetch.Responses) == 0 {
		return m // no control baseline; OONI reports anomaly=false
	}
	if len(expFetch.Responses) == 0 {
		m.Verdict = BlockingHTTPFailure
		return m
	}
	ctrlResp, expResp := ctrlFetch.Responses[0], expFetch.Responses[0]
	m.BodyPropOK = bodyProportion(len(expResp.Body), len(ctrlResp.Body))
	m.HeadersMatch = headerNamesMatch(expResp, ctrlResp)
	expTitle, ctrlTitle := httpwire.Title(expResp.Body), httpwire.Title(ctrlResp.Body)
	m.TitleCompared = longWord(expTitle) && longWord(ctrlTitle)
	if m.TitleCompared {
		m.TitleMatch = strings.EqualFold(expTitle, ctrlTitle)
	}
	// Blocked only when every compared condition indicates difference —
	// a single "consistent" signal clears the site (§6.2).
	titleDiffers := m.TitleCompared && !m.TitleMatch || !m.TitleCompared
	if !m.BodyPropOK && !m.HeadersMatch && titleDiffers {
		m.Verdict = BlockingHTTPDiff
		return m
	}
	m.Accessible = true
	return m
}

// dnsConsistent applies OONI's answer comparison: any shared address, or
// any shared origin ASN.
func (r *Runner) dnsConsistent(exp, ctrl []netip.Addr) bool {
	ctrlSet := map[netip.Addr]bool{}
	ctrlASNs := map[int]bool{}
	for _, a := range ctrl {
		ctrlSet[a] = true
		if asn := r.World.Net.ASNOf(a); asn != 0 {
			ctrlASNs[asn] = true
		}
	}
	for _, a := range exp {
		if ctrlSet[a] {
			return true
		}
		if asn := r.World.Net.ASNOf(a); asn != 0 && ctrlASNs[asn] {
			return true
		}
	}
	return false
}

// Report aggregates a full PBW run.
type Report struct {
	ISP string
	// Flagged maps each mechanism to the set of domains OONI flagged.
	FlaggedDNS, FlaggedTCP, FlaggedHTTP, FlaggedAny map[string]bool
	// Measurements holds the raw per-domain records when the report was
	// built by RunAll; flag-only builders (Add) leave it empty.
	Measurements []Measurement
}

// NewReport builds an empty report for an ISP.
func NewReport(isp string) *Report {
	return &Report{
		ISP:        isp,
		FlaggedDNS: map[string]bool{}, FlaggedTCP: map[string]bool{},
		FlaggedHTTP: map[string]bool{}, FlaggedAny: map[string]bool{},
	}
}

// Add buckets one verdict into the report's flag sets — the single home
// of OONI's verdict→mechanism bucketing rules.
func (rep *Report) Add(domain string, v Blocking) {
	switch v {
	case BlockingDNS:
		rep.FlaggedDNS[domain] = true
	case BlockingTCP:
		rep.FlaggedTCP[domain] = true
	case BlockingHTTPDiff, BlockingHTTPFailure:
		rep.FlaggedHTTP[domain] = true
	}
	if v != BlockingNone {
		rep.FlaggedAny[domain] = true
	}
}

// RunAll measures every domain and buckets the flags.
func (r *Runner) RunAll(domains []string) *Report {
	rep := NewReport(r.ISP.Name)
	for _, d := range domains {
		m := r.Run(d)
		rep.Measurements = append(rep.Measurements, m)
		rep.Add(d, m.Verdict)
	}
	return rep
}

// Accuracy is one Table 1 cell.
type Accuracy struct {
	Precision, Recall float64
	TruePositives     int
	Flagged, Truth    int
}

// Evaluate computes the Table 1 row for this report against ground truth
// sets (from the oracle, standing in for the authors' manual checks).
func Evaluate(rep *Report, truthDNS, truthHTTP map[string]bool) (total, dns, tcp, http Accuracy) {
	truthAny := map[string]bool{}
	for d := range truthDNS {
		truthAny[d] = true
	}
	for d := range truthHTTP {
		truthAny[d] = true
	}
	eval := func(flagged, truth map[string]bool) Accuracy {
		p, r, tp := probe.PrecisionRecall(flagged, truth)
		return Accuracy{Precision: p, Recall: r, TruePositives: tp, Flagged: len(flagged), Truth: len(truth)}
	}
	return eval(rep.FlaggedAny, truthAny),
		eval(rep.FlaggedDNS, truthDNS),
		eval(rep.FlaggedTCP, map[string]bool{}),
		eval(rep.FlaggedHTTP, truthHTTP)
}
