package ooni

import (
	"testing"

	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/websim"
)

var sharedWorld *ispnet.World

func world(t testing.TB) *ispnet.World {
	t.Helper()
	if sharedWorld == nil {
		sharedWorld = ispnet.NewWorld(ispnet.SmallConfig())
	}
	// Each test runs on its own goroutine; handing the shared world out is
	// a serialized ownership transfer.
	sharedWorld.Rebind()
	return sharedWorld
}

func TestBodyProportion(t *testing.T) {
	cases := []struct {
		a, b int
		want bool
	}{
		{100, 100, true}, {80, 100, true}, {60, 100, false},
		{0, 0, true}, {0, 100, false}, {100, 71, true},
	}
	for _, c := range cases {
		if got := bodyProportion(c.a, c.b); got != c.want {
			t.Errorf("bodyProportion(%d,%d) = %v", c.a, c.b, got)
		}
	}
}

func TestHeaderNamesMatch(t *testing.T) {
	a := httpwire.NewResponse(200, "OK", nil).AddHeader("Content-Type", "text/html").AddHeader("Server", "x")
	b := httpwire.NewResponse(200, "OK", nil).AddHeader("server", "y").AddHeader("content-type", "z")
	if !headerNamesMatch(a, b) {
		t.Error("case-insensitive name sets should match")
	}
	c := httpwire.NewResponse(200, "OK", nil).AddHeader("Content-Type", "text/html").AddHeader("Via", "1.1")
	if headerNamesMatch(a, c) {
		t.Error("different name sets should not match")
	}
}

func TestLongWord(t *testing.T) {
	if !longWord("My Wonderful Site") || longWord("a to be") || longWord("") {
		t.Error("longWord misbehaves")
	}
}

func TestCleanSiteAccessible(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	r := NewRunner(w, idea)
	for _, s := range w.Catalog.PBW {
		if s.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(idea, s.Domain); tr.Blocked() {
			continue
		}
		m := r.Run(s.Domain)
		if m.Verdict != BlockingNone {
			t.Errorf("clean normal site %s flagged %q", s.Domain, m.Verdict)
		}
		break
	}
}

// OONI's documented false-positive on region-dependent parked domains: the
// body, headers and title all differ between control and experiment even
// though nothing is censored.
func TestParkedSiteFalsePositive(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	r := NewRunner(w, idea)
	fps := 0
	for _, s := range w.Catalog.PBW {
		if s.Kind != websim.KindDead {
			continue
		}
		if tr := w.TruthFor(idea, s.Domain); tr.Blocked() {
			continue
		}
		if m := r.Run(s.Domain); m.Verdict == BlockingHTTPDiff {
			fps++
		}
	}
	if fps == 0 {
		t.Error("expected OONI false positives on parked domains")
	}
}

// OONI's documented false-negative: a wiretap notification that mimics the
// origin's header names and carries no title is judged consistent.
func TestWMNotificationFalseNegative(t *testing.T) {
	w := world(t)
	airtel := w.ISP("Airtel")
	r := NewRunner(w, airtel)
	_, httpTruth := w.TruthSet(airtel)
	fns := 0
	checked := 0
	for d := range httpTruth {
		s, _ := w.Catalog.Site(d)
		if s == nil || s.Kind != websim.KindNormal {
			continue
		}
		if checked >= 8 {
			break
		}
		checked++
		if m := r.Run(d); m.Verdict == BlockingNone {
			fns++
		}
	}
	if checked == 0 {
		t.Skip("no blocked normal sites")
	}
	if fns == 0 {
		t.Errorf("expected false negatives from header mimicry (checked %d)", checked)
	}
}

// Vodafone's covert RST yields http-failure — a true positive — so its
// recall lands much higher than the wiretap ISPs', as in Table 1.
func TestCovertResetDetected(t *testing.T) {
	w := world(t)
	vod := w.ISP("Vodafone")
	r := NewRunner(w, vod)
	_, httpTruth := w.TruthSet(vod)
	detected := 0
	checked := 0
	for d := range httpTruth {
		if checked >= 5 {
			break
		}
		checked++
		if m := r.Run(d); m.Verdict == BlockingHTTPFailure {
			detected++
		}
	}
	if checked == 0 {
		t.Skip("no blocked sites on Vodafone client paths")
	}
	if detected == 0 {
		t.Error("covert resets never detected as http-failure")
	}
}

func TestDNSFlaggingMTNL(t *testing.T) {
	w := world(t)
	mtnl := w.ISP("MTNL")
	r := NewRunner(w, mtnl)
	var victim string
	for _, d := range mtnl.DNSList {
		if mtnl.Resolvers[0].PoisonsDomain(d) {
			victim = d
			break
		}
	}
	m := r.Run(victim)
	if m.Verdict != BlockingDNS {
		t.Errorf("poisoned domain verdict = %q, want dns", m.Verdict)
	}
}

func TestEvaluatePrecisionRecall(t *testing.T) {
	rep := &Report{
		FlaggedDNS:  map[string]bool{"a": true, "b": true},
		FlaggedTCP:  map[string]bool{},
		FlaggedHTTP: map[string]bool{"c": true},
		FlaggedAny:  map[string]bool{"a": true, "b": true, "c": true},
	}
	truthDNS := map[string]bool{"a": true, "x": true}
	truthHTTP := map[string]bool{"c": true}
	total, dns, tcp, http := Evaluate(rep, truthDNS, truthHTTP)
	if dns.Precision != 0.5 || dns.Recall != 0.5 {
		t.Errorf("dns = %+v", dns)
	}
	if http.Precision != 1 || http.Recall != 1 {
		t.Errorf("http = %+v", http)
	}
	if tcp.Precision != 0 || tcp.Recall != 0 {
		t.Errorf("tcp = %+v", tcp)
	}
	// truthAny = {a,x,c}; flaggedAny = {a,b,c}: TPs are a and c.
	if total.TruePositives != 2 || total.Truth != 3 || total.Flagged != 3 {
		t.Errorf("total = %+v", total)
	}
}
