// Package cliutil holds the flag-parsing helpers the command-line tools
// share: scenario resolution (registry preset or JSON spec file),
// detector lookup, and list splitting — one implementation, one error
// wording, for censorscan and censord both.
package cliutil

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/censor"
)

// ReadScenario resolves a -scenario argument: a registered preset name,
// or a JSON spec file (validated before any world is built). Unknown
// names fail fast listing the registered presets; preset reports whether
// the spec came from the registry (a JSON file never counts, whatever
// its name field claims).
func ReadScenario(arg string) (sc censor.Scenario, preset bool, err error) {
	if sc, ok := censor.LookupScenario(arg); ok {
		return sc, true, nil
	}
	raw, err := os.ReadFile(arg)
	if err != nil {
		if os.IsNotExist(err) && !strings.ContainsAny(arg, "./\\") {
			return censor.Scenario{}, false, fmt.Errorf("unknown scenario %q (registered: %s; or pass a JSON spec file)",
				arg, strings.Join(censor.Scenarios(), ", "))
		}
		return censor.Scenario{}, false, fmt.Errorf("scenario file %s: %v", arg, err)
	}
	if err := json.Unmarshal(raw, &sc); err != nil {
		return censor.Scenario{}, false, fmt.Errorf("scenario file %s: %v", arg, err)
	}
	if err := sc.Validate(); err != nil {
		return censor.Scenario{}, false, fmt.Errorf("scenario file %s: %v", arg, err)
	}
	return sc, false, nil
}

// PickMeasurements resolves a comma-separated -measure list against the
// detector registry (empty = nil: the campaign default, every
// registered detector).
func PickMeasurements(measure string) ([]censor.Measurement, error) {
	if measure == "" {
		return nil, nil
	}
	var out []censor.Measurement
	for _, k := range SplitList(measure) {
		m, ok := censor.Lookup(k)
		if !ok {
			return nil, fmt.Errorf("unknown detector %q (registered: %s)",
				k, strings.Join(censor.Names(), ", "))
		}
		out = append(out, m)
	}
	return out, nil
}

// SplitList splits a comma-separated flag value, trimming blanks.
func SplitList(s string) []string {
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}
