// Package tcpsim implements a lightweight TCP state machine over netsim
// hosts: three-way handshake, sequence/acknowledgement accounting, orderly
// FIN teardown, RST handling, and stack-level resets for packets that match
// no connection.
//
// Fidelity to real kernel behaviour matters here because the paper's
// censorship middleboxes work by forging exactly the packets a real client
// stack will honour: a 200-OK payload with FIN set and correct seq/ack
// numbers tears the connection down, the real server response then arrives
// on a dead connection and is answered with RST. The same strictness makes
// the countermeasures meaningful: a forged RST with a stale sequence number
// is ignored, and the client-side packet filter can drop middlebox packets
// before they ever reach this state machine.
//
// Simplifications relative to a production stack (documented here):
// segments are delivered in order by the simulator so there is no
// reassembly queue (out-of-order data is dropped with a duplicate ACK), and
// there are no retransmissions — losses in the simulation are deliberate
// (middlebox blackholing) and the experiments detect them via timeouts.
package tcpsim

import (
	"fmt"
	"net/netip"

	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// State is a TCP connection state.
type State int

// Connection states (RFC 793 subset).
const (
	StateSynSent State = iota
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
	StateClosed
	StateReset // terminated by a valid RST
)

var stateNames = [...]string{
	"SYN-SENT", "SYN-RCVD", "ESTABLISHED", "FIN-WAIT-1", "FIN-WAIT-2",
	"CLOSE-WAIT", "CLOSING", "LAST-ACK", "TIME-WAIT", "CLOSED", "RESET",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Stack multiplexes TCP connections for one host.
type Stack struct {
	host      *netsim.Host
	eng       *sim.Engine
	listeners map[uint16]func(*Conn)
	conns     map[netpkt.FlowKey]*Conn
	// portRefs tracks how many live connections use each local port, so
	// ephemeral allocation is O(1) even with tens of thousands of
	// connections (mass scans).
	portRefs map[uint16]int
	nextPort uint16

	// RSTsSent counts stack-level resets for packets matching no
	// connection — the signal the paper observed when a censored
	// connection's real response finally arrived.
	RSTsSent int
}

// NewStack attaches a TCP stack to the host.
func NewStack(h *netsim.Host) *Stack {
	s := &Stack{
		host:      h,
		eng:       h.Engine(),
		listeners: make(map[uint16]func(*Conn)),
		conns:     make(map[netpkt.FlowKey]*Conn),
		portRefs:  make(map[uint16]int),
		nextPort:  32768,
	}
	h.SetTCPHandler(s.handle)
	return s
}

// Host returns the stack's host.
func (s *Stack) Host() *netsim.Host { return s.host }

// Engine returns the simulation engine.
func (s *Stack) Engine() *sim.Engine { return s.eng }

// Listen registers an accept callback for a local port. A nil callback
// unregisters the port (bridge listeners close this way); connections
// already accepted are unaffected.
func (s *Stack) Listen(port uint16, onAccept func(*Conn)) {
	if onAccept == nil {
		delete(s.listeners, port)
		return
	}
	s.listeners[port] = onAccept
}

// ephemeralPort allocates a fresh local port in O(1).
func (s *Stack) ephemeralPort() uint16 {
	for {
		p := s.nextPort
		s.nextPort++
		if s.nextPort < 32768 {
			s.nextPort = 32768
		}
		if s.portRefs[p] == 0 && s.listeners[p] == nil {
			return p
		}
	}
}

// Connect starts an active open to dst:port and returns the connection in
// SYN-SENT state; drive the engine (e.g. with WaitEstablished) to progress.
func (s *Stack) Connect(dst netip.Addr, port uint16) *Conn {
	c := &Conn{
		stack:      s,
		localAddr:  s.host.Addr(),
		localPort:  s.ephemeralPort(),
		remoteAddr: dst,
		remotePort: port,
		state:      StateSynSent,
		iss:        s.eng.Rand().Uint32(),
	}
	c.sndNxt = c.iss
	s.insert(c)
	c.sendSegment(&netpkt.TCPSegment{Flags: netpkt.SYN, Seq: c.sndNxt, Window: 65535}, 0, 0)
	c.sndNxt++
	c.sndUna = c.sndNxt
	return c
}

// insert registers a connection for demux and port accounting.
func (s *Stack) insert(c *Conn) {
	s.conns[c.flowKey()] = c
	s.portRefs[c.localPort]++
}

// handle dispatches an arriving TCP packet.
func (s *Stack) handle(pkt *netpkt.Packet) {
	key := pkt.Flow().Reverse() // our local-first key
	if c, ok := s.conns[key]; ok {
		c.handleSegment(pkt.TCP)
		return
	}
	if onAccept, ok := s.listeners[pkt.TCP.DstPort]; ok && pkt.TCP.Flags.Has(netpkt.SYN) && !pkt.TCP.Flags.Has(netpkt.ACK) {
		c := &Conn{
			stack:      s,
			localAddr:  s.host.Addr(),
			localPort:  pkt.TCP.DstPort,
			remoteAddr: pkt.IP.Src,
			remotePort: pkt.TCP.SrcPort,
			state:      StateSynRcvd,
			iss:        s.eng.Rand().Uint32(),
			onAccept:   onAccept,
		}
		c.rcvNxt = pkt.TCP.Seq + 1
		c.sndNxt = c.iss
		c.peerWnd = pkt.TCP.Window
		s.insert(c)
		c.sendSegment(&netpkt.TCPSegment{Flags: netpkt.SYN | netpkt.ACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: 65535}, 0, 0)
		c.sndNxt++
		c.sndUna = c.sndNxt
		return
	}
	// No connection, no listener: stack-level RST (unless it is itself RST).
	if pkt.TCP.Flags.Has(netpkt.RST) {
		return
	}
	s.RSTsSent++
	seg := &netpkt.TCPSegment{SrcPort: pkt.TCP.DstPort, DstPort: pkt.TCP.SrcPort}
	if pkt.TCP.Flags.Has(netpkt.ACK) {
		seg.Flags = netpkt.RST
		seg.Seq = pkt.TCP.Ack
	} else {
		seg.Flags = netpkt.RST | netpkt.ACK
		seg.Ack = pkt.TCP.Seq + pkt.TCP.SeqSpan()
	}
	out := netpkt.NewTCP(s.host.Addr(), pkt.IP.Src, seg)
	s.host.Send(out)
}

// remove drops the connection from the stack's demux table.
func (s *Stack) remove(c *Conn) {
	key := c.flowKey()
	if _, ok := s.conns[key]; !ok {
		return
	}
	delete(s.conns, key)
	if s.portRefs[c.localPort] <= 1 {
		delete(s.portRefs, c.localPort)
	} else {
		s.portRefs[c.localPort]--
	}
}

// OpenConns returns the number of live connections (debug/tests).
func (s *Stack) OpenConns() int { return len(s.conns) }

// Reset drops every connection and rewinds port allocation and counters to
// the stack's just-constructed state. Listeners — build-time wiring of the
// servers living on this host — are kept. Connection timers scheduled on
// the engine must be discarded separately (Engine.Reset does). Maps are
// cleared in place, keeping their capacity for the next campaign task.
func (s *Stack) Reset() {
	clear(s.conns)
	clear(s.portRefs)
	s.nextPort = 32768
	s.RSTsSent = 0
}
