package tcpsim

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func addr(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

type fixture struct {
	eng      *sim.Engine
	net      *netsim.Network
	client   *netsim.Host
	server   *netsim.Host
	cstack   *Stack
	sstack   *Stack
	routers  []*netsim.Router
	accepted []*Conn
}

func newFixture(t testing.TB, hops int) *fixture {
	if t != nil {
		t.Helper()
	}
	eng := sim.NewEngine(7)
	n := netsim.New(eng)
	routers := make([]*netsim.Router, hops)
	for i := range routers {
		routers[i] = n.AddRouter("r", 10, addr(100, 64, byte(i), 1))
		if i > 0 {
			n.Link(routers[i-1], routers[i], time.Millisecond)
		}
	}
	client := n.AddHost(addr(10, 0, 0, 2), routers[0], time.Millisecond)
	server := n.AddHost(addr(203, 0, 113, 80), routers[hops-1], time.Millisecond)
	n.Build()
	f := &fixture{
		eng: eng, net: n, client: client, server: server,
		cstack: NewStack(client), sstack: NewStack(server), routers: routers,
	}
	f.sstack.Listen(80, func(c *Conn) { f.accepted = append(f.accepted, c) })
	return f
}

func TestHandshake(t *testing.T) {
	f := newFixture(t, 3)
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(50 * time.Millisecond) // let the final ACK land
	if len(f.accepted) != 1 {
		t.Fatalf("accepted %d conns, want 1", len(f.accepted))
	}
	if f.accepted[0].State() != StateEstablished {
		t.Errorf("server conn state = %v", f.accepted[0].State())
	}
}

func TestDataExchange(t *testing.T) {
	f := newFixture(t, 3)
	var serverGot []byte
	f.sstack.Listen(80, func(c *Conn) {
		c.OnData = func(c *Conn) {
			serverGot = c.Stream()
			if bytes.HasSuffix(c.Stream(), []byte("\r\n\r\n")) {
				c.Send([]byte("HTTP/1.1 200 OK\r\n\r\nhello"))
			}
		}
	})
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	req := []byte("GET / HTTP/1.1\r\nHost: x.in\r\n\r\n")
	c.Send(req)
	got := c.WaitStream(25, time.Second)
	if !bytes.Equal(serverGot, req) {
		t.Errorf("server got %q", serverGot)
	}
	if !bytes.Contains(got, []byte("hello")) {
		t.Errorf("client got %q", got)
	}
}

func TestSegmentedReassembly(t *testing.T) {
	f := newFixture(t, 3)
	var serverGot []byte
	f.sstack.Listen(80, func(c *Conn) {
		c.OnData = func(c *Conn) { serverGot = c.Stream() }
	})
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	payload := []byte("GET / HTTP/1.1\r\nHost: blocked.example.in\r\n\r\n")
	c.SendSegmented(payload, 5)
	f.eng.RunFor(time.Second)
	if !bytes.Equal(serverGot, payload) {
		t.Errorf("reassembled = %q, want %q", serverGot, payload)
	}
}

func TestOrderlyClose(t *testing.T) {
	f := newFixture(t, 3)
	f.sstack.Listen(80, func(sc *Conn) {
		sc.OnData = func(sc *Conn) {
			if sc.PeerClosed() && sc.State() == StateCloseWait {
				sc.Close()
			}
		}
	})
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if !c.WaitClosed(5 * time.Second) {
		t.Fatalf("client conn not closed: state=%v", c.State())
	}
	f.eng.RunFor(2 * time.Second)
	if f.sstack.OpenConns() != 0 {
		t.Errorf("server still has %d conns", f.sstack.OpenConns())
	}
}

func TestConnectRefused(t *testing.T) {
	f := newFixture(t, 3)
	c := f.cstack.Connect(f.server.Addr(), 8080) // nothing listens
	err := c.WaitEstablished(time.Second)
	if err == nil {
		t.Fatal("connect to closed port succeeded")
	}
	if c.State() != StateReset {
		t.Errorf("state = %v, want RESET", c.State())
	}
}

// A forged FIN+PSH with correct seq/ack (the wiretap middlebox's
// notification packet) must be accepted and tear the stream down.
func TestForgedFINAccepted(t *testing.T) {
	f := newFixture(t, 3)
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(50 * time.Millisecond)
	notification := []byte("HTTP/1.1 200 OK\r\n\r\nThis site is blocked")
	forged := netpkt.NewTCP(f.server.Addr(), f.client.Addr(), &netpkt.TCPSegment{
		SrcPort: 80, DstPort: c.LocalPort(),
		Seq: c.RcvNxt(), Ack: c.SndNxt(),
		Flags: netpkt.FIN | netpkt.PSH | netpkt.ACK, Window: 65535,
		Payload: notification,
	})
	f.net.InjectAt(f.routers[1], forged)
	f.eng.RunFor(time.Second)
	if !c.PeerClosed() {
		t.Error("forged FIN not honoured")
	}
	if !bytes.Equal(c.Stream(), notification) {
		t.Errorf("stream = %q", c.Stream())
	}
}

func TestStaleRSTIgnoredValidRSTKills(t *testing.T) {
	f := newFixture(t, 3)
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	// Stale RST: wrong sequence number.
	stale := netpkt.NewTCP(f.server.Addr(), f.client.Addr(), &netpkt.TCPSegment{
		SrcPort: 80, DstPort: c.LocalPort(), Seq: c.RcvNxt() + 1000, Flags: netpkt.RST,
	})
	f.net.InjectAt(f.routers[1], stale)
	f.eng.RunFor(time.Second)
	if _, reset := c.WasReset(); reset {
		t.Fatal("stale RST accepted")
	}
	// Valid RST: exact rcvNxt.
	valid := netpkt.NewTCP(f.server.Addr(), f.client.Addr(), &netpkt.TCPSegment{
		SrcPort: 80, DstPort: c.LocalPort(), Seq: c.RcvNxt(), Flags: netpkt.RST,
	})
	f.net.InjectAt(f.routers[1], valid)
	f.eng.RunFor(time.Second)
	if _, reset := c.WasReset(); !reset {
		t.Fatal("valid RST ignored")
	}
	if c.State() != StateReset {
		t.Errorf("state = %v", c.State())
	}
}

// After a connection is reset, a late real response must elicit a
// stack-level RST — the paper observed exactly this when the genuine
// server response arrived after the censor's forged teardown.
func TestLateDataAfterResetGetsRST(t *testing.T) {
	f := newFixture(t, 3)
	var sconn *Conn
	f.sstack.Listen(80, func(c *Conn) { sconn = c })
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(50 * time.Millisecond)
	// Kill the client side with a valid forged RST.
	f.net.InjectAt(f.routers[1], netpkt.NewTCP(f.server.Addr(), f.client.Addr(), &netpkt.TCPSegment{
		SrcPort: 80, DstPort: c.LocalPort(), Seq: c.RcvNxt(), Flags: netpkt.RST,
	}))
	f.eng.RunFor(time.Second)
	before := f.cstack.RSTsSent
	// Server now sends its (late) response.
	sconn.Send([]byte("real content"))
	f.eng.RunFor(time.Second)
	if f.cstack.RSTsSent != before+1 {
		t.Errorf("client stack RSTs = %d, want %d", f.cstack.RSTsSent, before+1)
	}
	if _, reset := sconn.WasReset(); !reset {
		t.Error("server conn should be reset by the client's stack-level RST")
	}
}

func TestOutOfOrderDupAck(t *testing.T) {
	f := newFixture(t, 3)
	var sconn *Conn
	f.sstack.Listen(80, func(c *Conn) { sconn = c })
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(50 * time.Millisecond)
	// Send a segment 100 bytes ahead of the expected sequence.
	c.SendRaw([]byte("future data"), RawOpts{SeqOffset: 100})
	f.eng.RunFor(time.Second)
	if sconn.DupAcks != 1 {
		t.Errorf("server DupAcks = %d, want 1", sconn.DupAcks)
	}
	if len(sconn.Stream()) != 0 {
		t.Errorf("out-of-order data must not be delivered: %q", sconn.Stream())
	}
}

// The paired-TTL experiment sends the same GET twice at the same sequence
// position; the server must treat the second as a retransmission-like
// in-order segment when the first never arrived.
func TestSameSeqRetransmission(t *testing.T) {
	f := newFixture(t, 3)
	var sconn *Conn
	f.sstack.Listen(80, func(c *Conn) { sconn = c })
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(50 * time.Millisecond)
	payload := []byte("GET / HTTP/1.1\r\nHost: x.in\r\n\r\n")
	c.SendRaw(payload, RawOpts{TTL: 2, Advance: false}) // dies before the server
	c.SendRaw(payload, RawOpts{Advance: true})          // same seq, full TTL
	f.eng.RunFor(time.Second)
	if !bytes.Equal(sconn.Stream(), payload) {
		t.Errorf("server stream = %q", sconn.Stream())
	}
	if sconn.DupAcks != 0 {
		t.Errorf("dup acks = %d, want 0", sconn.DupAcks)
	}
}

func TestAbortSendsRST(t *testing.T) {
	f := newFixture(t, 3)
	var sconn *Conn
	f.sstack.Listen(80, func(c *Conn) { sconn = c })
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(50 * time.Millisecond)
	c.Abort()
	f.eng.RunFor(time.Second)
	if _, reset := sconn.WasReset(); !reset {
		t.Error("server side not reset by Abort")
	}
	if c.State() != StateClosed {
		t.Errorf("client state = %v", c.State())
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	f := newFixture(t, 3)
	seen := map[uint16]bool{}
	for i := 0; i < 50; i++ {
		c := f.cstack.Connect(f.server.Addr(), 80)
		if seen[c.LocalPort()] {
			t.Fatalf("port %d reused", c.LocalPort())
		}
		seen[c.LocalPort()] = true
	}
}

func TestIPIDOnRawSegments(t *testing.T) {
	f := newFixture(t, 3)
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.server.StartCapture()
	c.SendRaw([]byte("x"), RawOpts{IPID: 242, Advance: true})
	f.eng.RunFor(time.Second)
	cap := f.server.StopCapture()
	found := false
	for _, rec := range cap {
		if rec.Pkt.IP.ID == 242 {
			found = true
		}
	}
	if !found {
		t.Error("IP-ID 242 not preserved end to end")
	}
}

// Property: any payload, split into any number of segments, reassembles
// identically at the server.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(payload []byte, nSeg uint8) bool {
		if len(payload) == 0 {
			return true
		}
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		fix := newFixture(nil, 4)
		var got []byte
		fix.sstack.Listen(80, func(c *Conn) {
			c.OnData = func(c *Conn) { got = c.Stream() }
		})
		c := fix.cstack.Connect(fix.server.Addr(), 80)
		if err := c.WaitEstablished(time.Second); err != nil {
			return false
		}
		c.SendSegmented(payload, int(nSeg%7)+1)
		fix.eng.RunFor(2 * time.Second)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
