package tcpsim

import (
	"testing"
	"time"

	"repro/internal/netpkt"
)

// Both sides closing at once (simultaneous close) must converge without
// leaking connections.
func TestSimultaneousClose(t *testing.T) {
	f := newFixture(t, 3)
	var sconn *Conn
	f.sstack.Listen(80, func(c *Conn) { sconn = c })
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(50 * time.Millisecond)
	c.Close()
	sconn.Close()
	f.eng.RunFor(5 * time.Second)
	if !c.Dead() || !sconn.Dead() {
		t.Errorf("states after simultaneous close: client=%v server=%v", c.State(), sconn.State())
	}
	if f.cstack.OpenConns() != 0 || f.sstack.OpenConns() != 0 {
		t.Errorf("leaked conns: client=%d server=%d", f.cstack.OpenConns(), f.sstack.OpenConns())
	}
}

// Closing twice or aborting a closed connection must be harmless.
func TestCloseIdempotent(t *testing.T) {
	f := newFixture(t, 3)
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	c.Abort()
	c.Abort()
	f.eng.RunFor(time.Second)
	if f.cstack.OpenConns() != 0 {
		t.Errorf("conns = %d", f.cstack.OpenConns())
	}
}

// Port accounting: thousands of short connections must not leak ports or
// slow down allocation (regression test for the O(n) ephemeral scan).
func TestPortAccountingUnderChurn(t *testing.T) {
	f := newFixture(t, 3)
	for i := 0; i < 3000; i++ {
		c := f.cstack.Connect(f.server.Addr(), 80)
		if err := c.WaitEstablished(time.Second); err != nil {
			t.Fatal(err)
		}
		c.Abort()
		f.eng.RunFor(10 * time.Millisecond)
	}
	if f.cstack.OpenConns() != 0 {
		t.Errorf("open conns = %d", f.cstack.OpenConns())
	}
	if len(f.cstack.portRefs) != 0 {
		t.Errorf("leaked port refs = %d", len(f.cstack.portRefs))
	}
}

// A SYN to a listening port while a connection from the same 4-tuple is
// half-closed must not corrupt the table.
func TestHalfClosedThenData(t *testing.T) {
	f := newFixture(t, 3)
	var sconn *Conn
	f.sstack.Listen(80, func(c *Conn) { sconn = c })
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(50 * time.Millisecond)
	// Server half-closes; client keeps sending.
	sconn.Close()
	f.eng.RunFor(time.Second)
	if !c.PeerClosed() {
		t.Fatal("client did not see server FIN")
	}
	c.Send([]byte("late data"))
	f.eng.RunFor(time.Second)
	if string(sconn.Stream()) != "late data" {
		t.Errorf("server stream = %q", sconn.Stream())
	}
}

// Window-probe style zero-length ACKs must not advance state or crash.
func TestPureAckStorm(t *testing.T) {
	f := newFixture(t, 3)
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.SendRaw(nil, RawOpts{Flags: netpkt.ACK})
	}
	f.eng.RunFor(time.Second)
	if c.State() != StateEstablished {
		t.Errorf("state = %v", c.State())
	}
}

// A forged FIN with a sequence number in the future must not be accepted.
func TestFutureFINRejected(t *testing.T) {
	f := newFixture(t, 3)
	c := f.cstack.Connect(f.server.Addr(), 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	forged := netpkt.NewTCP(f.server.Addr(), f.client.Addr(), &netpkt.TCPSegment{
		SrcPort: 80, DstPort: c.LocalPort(),
		Seq: c.RcvNxt() + 5000, Ack: c.SndNxt(),
		Flags: netpkt.FIN | netpkt.ACK, Window: 65535,
	})
	f.net.InjectAt(f.routers[1], forged)
	f.eng.RunFor(time.Second)
	if c.PeerClosed() {
		t.Error("out-of-window FIN accepted")
	}
}
