package tcpsim

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
)

// Conn is one TCP connection endpoint.
type Conn struct {
	stack      *Stack
	localAddr  netip.Addr
	localPort  uint16
	remoteAddr netip.Addr
	remotePort uint16

	state  State
	iss    uint32 // initial send sequence
	sndNxt uint32 // next sequence to send
	sndUna uint32 // oldest unacknowledged sequence (cumulative-ACK left edge)
	rcvNxt uint32 // next sequence expected

	recvBuf []byte
	// readOff is the consuming read cursor into recvBuf: bytes before it
	// were handed out through ReadStream/Consume and may be discarded by
	// compaction. Probe-style callers that never Consume keep it at zero,
	// which is what keeps Stream() meaning "everything received".
	readOff int
	// peerWnd is the window the remote advertised on its last segment.
	peerWnd uint16
	// recvWindow, when positive, bounds the advertised receive window to
	// recvWindow minus the unconsumed bytes (long-lived bridge connections
	// push back on senders instead of buffering without bound). Zero keeps
	// the historical fixed 65535 advertisement.
	recvWindow int
	// lastWnd is the window value of our most recent segment, so Consume
	// knows when a zero-window it advertised has reopened.
	lastWnd uint16
	// peerFIN records that the remote (or something forging it) closed the
	// stream, and finSeen the virtual time it happened.
	peerFIN bool
	finAt   sim.Time
	// resetBy holds the segment of the RST that killed the connection.
	resetBy *netpkt.TCPSegment

	onAccept func(*Conn)
	// OnData fires whenever new in-order payload is appended to the
	// receive buffer (and on FIN). Servers parse requests from here.
	OnData func(*Conn)
	// OnStateChange fires after every state transition — the completion
	// hook blocking bridge APIs (connect, accept, close) wait on.
	OnStateChange func(*Conn)
	// OnAck fires when the cumulative ACK advances, opening send window —
	// the hook bridge writers block on for backpressure.
	OnAck func(*Conn)

	// DupAcks counts out-of-order segments answered with duplicate ACKs.
	DupAcks int
}

// flowKey is the local-first demux key.
func (c *Conn) flowKey() netpkt.FlowKey {
	return netpkt.FlowKey{
		Src: c.localAddr, Dst: c.remoteAddr,
		SrcPort: c.localPort, DstPort: c.remotePort,
		Proto: netpkt.ProtoTCP,
	}
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() netip.Addr { return c.localAddr }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteAddr returns the remote address.
func (c *Conn) RemoteAddr() netip.Addr { return c.remoteAddr }

// RemotePort returns the remote port.
func (c *Conn) RemotePort() uint16 { return c.remotePort }

// Stream returns the bytes received in order so far. On connections whose
// owner consumes via ReadStream/Consume the retained prefix may have been
// compacted away; probe-style callers that never Consume always see the
// full stream from byte zero.
func (c *Conn) Stream() []byte { return c.recvBuf }

// ReadStream returns the received bytes not yet consumed by Consume. It is
// the read-cursor view bridge connections drain from, leaving Stream() to
// the callers that want the whole history.
func (c *Conn) ReadStream() []byte { return c.recvBuf[c.readOff:] }

// Buffered returns how many received bytes are waiting to be consumed.
func (c *Conn) Buffered() int { return len(c.recvBuf) - c.readOff }

// Consume advances the read cursor past n bytes previously returned by
// ReadStream. Once the consumed prefix dominates the buffer it is
// compacted in place, so a long-lived connection holds only its unread
// tail. If consuming reopens a zero receive window it advertised, a
// window-update ACK is sent so a blocked peer resumes.
func (c *Conn) Consume(n int) {
	if n < 0 || n > c.Buffered() {
		panic(fmt.Sprintf("tcpsim: Consume(%d) with %d buffered", n, c.Buffered()))
	}
	c.readOff += n
	if c.readOff >= 4096 && c.readOff*2 >= len(c.recvBuf) {
		m := copy(c.recvBuf, c.recvBuf[c.readOff:])
		c.recvBuf = c.recvBuf[:m]
		c.readOff = 0
	}
	if c.recvWindow > 0 && c.lastWnd == 0 && c.advertWindow() > 0 && !c.Dead() {
		c.sendAck()
	}
}

// SetRecvWindow bounds the window this side advertises to n minus the
// unconsumed bytes (n ≤ 0 restores the fixed 65535 advertisement). The
// simulated stack never drops in-window data, so the bound is cooperative:
// it throttles peers that honour the advertised window — bridge writers do
// — rather than hard-limiting the buffer.
func (c *Conn) SetRecvWindow(n int) { c.recvWindow = n }

// advertWindow computes the receive window for outgoing segments.
func (c *Conn) advertWindow() uint16 {
	if c.recvWindow <= 0 {
		return 65535
	}
	w := c.recvWindow - c.Buffered()
	if w <= 0 {
		return 0
	}
	if w > 65535 {
		w = 65535
	}
	return uint16(w)
}

// InFlight returns how many sequence units (payload bytes plus SYN/FIN)
// have been sent but not cumulatively acknowledged.
func (c *Conn) InFlight() int { return int(int32(c.sndNxt - c.sndUna)) }

// PeerWindow returns the window the remote advertised on its most recent
// segment.
func (c *Conn) PeerWindow() int { return int(c.peerWnd) }

// PeerClosed reports whether a FIN was accepted from the remote side.
func (c *Conn) PeerClosed() bool { return c.peerFIN }

// WasReset reports whether the connection was killed by a valid RST, and
// returns that segment.
func (c *Conn) WasReset() (*netpkt.TCPSegment, bool) { return c.resetBy, c.resetBy != nil }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool {
	return c.state != StateSynSent && c.state != StateSynRcvd && c.state != StateClosed && c.state != StateReset
}

// Dead reports whether the connection is fully terminated.
func (c *Conn) Dead() bool { return c.state == StateClosed || c.state == StateReset }

// SndNxt exposes the next send sequence number (probes craft raw segments
// relative to it).
func (c *Conn) SndNxt() uint32 { return c.sndNxt }

// RcvNxt exposes the next expected receive sequence number.
func (c *Conn) RcvNxt() uint32 { return c.rcvNxt }

// sendSegment fills in addressing and transmits. ttl/ipid of zero use
// defaults.
func (c *Conn) sendSegment(seg *netpkt.TCPSegment, ttl uint8, ipid uint16) {
	seg.SrcPort = c.localPort
	seg.DstPort = c.remotePort
	pkt := netpkt.NewTCP(c.localAddr, c.remoteAddr, seg)
	if ttl != 0 {
		pkt.IP.TTL = ttl
	}
	pkt.IP.ID = ipid
	c.stack.host.Send(pkt)
}

// setState transitions the connection state and fires OnStateChange.
func (c *Conn) setState(s State) {
	if c.state == s {
		return
	}
	c.state = s
	if c.OnStateChange != nil {
		c.OnStateChange(c)
	}
}

// Send transmits payload as one PSH+ACK segment, advancing sndNxt.
func (c *Conn) Send(payload []byte) {
	c.lastWnd = c.advertWindow()
	c.sendSegment(&netpkt.TCPSegment{
		Flags: netpkt.PSH | netpkt.ACK, Seq: c.sndNxt, Ack: c.rcvNxt,
		Window: c.lastWnd, Payload: payload,
	}, 0, 0)
	c.sndNxt += uint32(len(payload))
}

// SendSegmented transmits payload split across n back-to-back segments.
// On-path boxes that match patterns per packet (all the middleboxes in the
// paper) never see the full request; the receiving stack reassembles the
// stream transparently — the fragmentation evasion of §5.
func (c *Conn) SendSegmented(payload []byte, n int) {
	if n < 1 {
		n = 1
	}
	chunk := (len(payload) + n - 1) / n
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		c.Send(payload[off:end])
	}
}

// RawOpts controls crafted segments sent on an existing connection.
type RawOpts struct {
	TTL       uint8  // 0 = default 64
	IPID      uint16 // IP identification field
	SeqOffset int32  // offset from current sndNxt
	// Advance moves sndNxt past the payload. The paper's paired-TTL
	// experiment sends the same GET twice (TTL n-1 then n) at the same
	// sequence position: the first with Advance=false.
	Advance bool
	Flags   netpkt.TCPFlags // 0 = PSH|ACK
}

// SendRaw transmits a crafted payload segment on the connection.
func (c *Conn) SendRaw(payload []byte, o RawOpts) {
	flags := o.Flags
	if flags == 0 {
		flags = netpkt.PSH | netpkt.ACK
	}
	c.sendSegment(&netpkt.TCPSegment{
		Flags: flags, Seq: c.sndNxt + uint32(o.SeqOffset), Ack: c.rcvNxt,
		Window: 65535, Payload: payload,
	}, o.TTL, o.IPID)
	if o.Advance {
		c.sndNxt += uint32(len(payload))
	}
}

// Close starts an orderly shutdown (FIN).
func (c *Conn) Close() {
	switch c.state {
	case StateEstablished:
		c.setState(StateFinWait1)
	case StateCloseWait:
		c.setState(StateLastAck)
	default:
		return
	}
	c.lastWnd = c.advertWindow()
	c.sendSegment(&netpkt.TCPSegment{
		Flags: netpkt.FIN | netpkt.ACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: c.lastWnd,
	}, 0, 0)
	c.sndNxt++
}

// Abort sends RST and discards the connection, the way a client stack
// gives up on a half-closed connection whose teardown never completes
// (the interceptive-middlebox blackhole case in §4.2.1).
func (c *Conn) Abort() {
	if c.Dead() {
		return
	}
	c.sendSegment(&netpkt.TCPSegment{Flags: netpkt.RST, Seq: c.sndNxt}, 0, 0)
	c.setState(StateClosed)
	c.stack.remove(c)
}

// handleSegment is the receive-side state machine.
func (c *Conn) handleSegment(seg *netpkt.TCPSegment) {
	// RST processing: accepted only at the exact expected sequence (or
	// during SYN-SENT with a valid ACK). A stale RST — e.g. one forged by
	// a wiretap middlebox that lost the race against the real response —
	// is ignored, exactly like a real stack.
	if seg.Flags.Has(netpkt.RST) {
		ok := false
		switch c.state {
		case StateSynSent:
			ok = seg.Flags.Has(netpkt.ACK) && seg.Ack == c.sndNxt
		default:
			ok = seg.Seq == c.rcvNxt
		}
		if ok {
			c.resetBy = seg
			c.setState(StateReset)
			c.stack.remove(c)
		}
		return
	}

	// Window and cumulative-ACK accounting, before any state handling:
	// every non-RST segment refreshes the peer's advertised window, and an
	// in-range ACK advances the unacknowledged left edge (opening send
	// window for backpressured bridge writers).
	c.peerWnd = seg.Window
	if seg.Flags.Has(netpkt.ACK) && seqLE(c.sndUna, seg.Ack) && seqLE(seg.Ack, c.sndNxt) && seg.Ack != c.sndUna {
		c.sndUna = seg.Ack
		if c.OnAck != nil {
			c.OnAck(c)
		}
	}

	switch c.state {
	case StateSynSent:
		if seg.Flags.Has(netpkt.SYN|netpkt.ACK) && seg.Ack == c.sndNxt {
			c.rcvNxt = seg.Seq + 1
			c.setState(StateEstablished)
			c.sendAck()
		}
		return
	case StateSynRcvd:
		if seg.Flags.Has(netpkt.ACK) && seg.Ack == c.sndNxt {
			c.setState(StateEstablished)
			if c.onAccept != nil {
				c.onAccept(c)
			}
			// Fall through to process piggybacked data.
			if len(seg.Payload) > 0 || seg.Flags.Has(netpkt.FIN) {
				c.processData(seg)
			}
		}
		return
	case StateClosed, StateReset:
		return
	}

	// Established and closing states: our FIN being acknowledged drives
	// the active-close ladder.
	if seg.Flags.Has(netpkt.ACK) && seg.Ack == c.sndNxt {
		switch c.state {
		case StateFinWait1:
			c.setState(StateFinWait2)
		case StateClosing:
			c.enterTimeWait()
		case StateLastAck:
			c.setState(StateClosed)
			c.stack.remove(c)
			return
		}
	}

	if len(seg.Payload) > 0 || seg.Flags.Has(netpkt.FIN) {
		c.processData(seg)
	}
}

// processData handles in-order payload and FIN.
func (c *Conn) processData(seg *netpkt.TCPSegment) {
	if seg.Seq != c.rcvNxt {
		// Out-of-order or stale (e.g. the real server response arriving
		// after a forged one already consumed that sequence range):
		// duplicate-ACK and drop.
		c.DupAcks++
		c.sendAck()
		return
	}
	if len(seg.Payload) > 0 {
		c.recvBuf = append(c.recvBuf, seg.Payload...)
		c.rcvNxt += uint32(len(seg.Payload))
	}
	if seg.Flags.Has(netpkt.FIN) {
		c.rcvNxt++
		c.peerFIN = true
		c.finAt = c.stack.eng.Now()
		switch c.state {
		case StateEstablished:
			c.setState(StateCloseWait)
		case StateFinWait1:
			c.setState(StateClosing)
		case StateFinWait2:
			c.enterTimeWait()
		}
	}
	c.sendAck()
	if c.OnData != nil {
		c.OnData(c)
	}
}

func (c *Conn) sendAck() {
	c.lastWnd = c.advertWindow()
	c.sendSegment(&netpkt.TCPSegment{Flags: netpkt.ACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: c.lastWnd}, 0, 0)
}

// seqLE reports a ≤ b in sequence space (RFC 1982 serial arithmetic).
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

func (c *Conn) enterTimeWait() {
	c.setState(StateTimeWait)
	c.stack.eng.ScheduleCall(time.Second, timeWaitExpire, c, nil)
}

// timeWaitExpire is the shared TIME-WAIT timer callback (scheduled via
// ScheduleCall so teardown does not allocate a closure per connection).
func timeWaitExpire(a, _ any) {
	c := a.(*Conn)
	if c.state == StateTimeWait {
		c.setState(StateClosed)
		c.stack.remove(c)
	}
}

// WaitEstablished drives the engine until the handshake completes, the
// connection dies, or the timeout elapses.
func (c *Conn) WaitEstablished(timeout time.Duration) error {
	err := c.stack.eng.RunUntil(timeout, func() bool { return c.Established() || c.Dead() })
	if err != nil {
		return fmt.Errorf("tcpsim: connect %v:%d: %w", c.remoteAddr, c.remotePort, err)
	}
	if c.Dead() {
		return fmt.Errorf("tcpsim: connect %v:%d: connection refused/reset", c.remoteAddr, c.remotePort)
	}
	return nil
}

// WaitStream drives the engine until the receive buffer reaches n bytes,
// the peer closes, the connection resets, or the timeout elapses. It
// returns the buffered stream.
func (c *Conn) WaitStream(n int, timeout time.Duration) []byte {
	_ = c.stack.eng.RunUntil(timeout, func() bool {
		return len(c.recvBuf) >= n || c.peerFIN || c.Dead()
	})
	return c.recvBuf
}

// WaitQuiet drives the engine for the given duration (lets in-flight
// exchanges settle) and returns the buffered stream.
func (c *Conn) WaitQuiet(d time.Duration) []byte {
	c.stack.eng.RunFor(d)
	return c.recvBuf
}

// WaitClosed drives the engine until the connection is fully dead.
func (c *Conn) WaitClosed(timeout time.Duration) bool {
	_ = c.stack.eng.RunUntil(timeout, func() bool { return c.Dead() })
	return c.Dead()
}
