package tcpsim

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
)

// Conn is one TCP connection endpoint.
type Conn struct {
	stack      *Stack
	localAddr  netip.Addr
	localPort  uint16
	remoteAddr netip.Addr
	remotePort uint16

	state  State
	iss    uint32 // initial send sequence
	sndNxt uint32 // next sequence to send
	rcvNxt uint32 // next sequence expected

	recvBuf []byte
	// peerFIN records that the remote (or something forging it) closed the
	// stream, and finSeen the virtual time it happened.
	peerFIN bool
	finAt   sim.Time
	// resetBy holds the segment of the RST that killed the connection.
	resetBy *netpkt.TCPSegment

	onAccept func(*Conn)
	// OnData fires whenever new in-order payload is appended to the
	// receive buffer (and on FIN). Servers parse requests from here.
	OnData func(*Conn)

	// DupAcks counts out-of-order segments answered with duplicate ACKs.
	DupAcks int
}

// flowKey is the local-first demux key.
func (c *Conn) flowKey() netpkt.FlowKey {
	return netpkt.FlowKey{
		Src: c.localAddr, Dst: c.remoteAddr,
		SrcPort: c.localPort, DstPort: c.remotePort,
		Proto: netpkt.ProtoTCP,
	}
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() netip.Addr { return c.localAddr }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteAddr returns the remote address.
func (c *Conn) RemoteAddr() netip.Addr { return c.remoteAddr }

// RemotePort returns the remote port.
func (c *Conn) RemotePort() uint16 { return c.remotePort }

// Stream returns the bytes received in order so far.
func (c *Conn) Stream() []byte { return c.recvBuf }

// PeerClosed reports whether a FIN was accepted from the remote side.
func (c *Conn) PeerClosed() bool { return c.peerFIN }

// WasReset reports whether the connection was killed by a valid RST, and
// returns that segment.
func (c *Conn) WasReset() (*netpkt.TCPSegment, bool) { return c.resetBy, c.resetBy != nil }

// Established reports whether the handshake completed.
func (c *Conn) Established() bool {
	return c.state != StateSynSent && c.state != StateSynRcvd && c.state != StateClosed && c.state != StateReset
}

// Dead reports whether the connection is fully terminated.
func (c *Conn) Dead() bool { return c.state == StateClosed || c.state == StateReset }

// SndNxt exposes the next send sequence number (probes craft raw segments
// relative to it).
func (c *Conn) SndNxt() uint32 { return c.sndNxt }

// RcvNxt exposes the next expected receive sequence number.
func (c *Conn) RcvNxt() uint32 { return c.rcvNxt }

// sendSegment fills in addressing and transmits. ttl/ipid of zero use
// defaults.
func (c *Conn) sendSegment(seg *netpkt.TCPSegment, ttl uint8, ipid uint16) {
	seg.SrcPort = c.localPort
	seg.DstPort = c.remotePort
	pkt := netpkt.NewTCP(c.localAddr, c.remoteAddr, seg)
	if ttl != 0 {
		pkt.IP.TTL = ttl
	}
	pkt.IP.ID = ipid
	c.stack.host.Send(pkt)
}

// Send transmits payload as one PSH+ACK segment, advancing sndNxt.
func (c *Conn) Send(payload []byte) {
	c.sendSegment(&netpkt.TCPSegment{
		Flags: netpkt.PSH | netpkt.ACK, Seq: c.sndNxt, Ack: c.rcvNxt,
		Window: 65535, Payload: payload,
	}, 0, 0)
	c.sndNxt += uint32(len(payload))
}

// SendSegmented transmits payload split across n back-to-back segments.
// On-path boxes that match patterns per packet (all the middleboxes in the
// paper) never see the full request; the receiving stack reassembles the
// stream transparently — the fragmentation evasion of §5.
func (c *Conn) SendSegmented(payload []byte, n int) {
	if n < 1 {
		n = 1
	}
	chunk := (len(payload) + n - 1) / n
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		c.Send(payload[off:end])
	}
}

// RawOpts controls crafted segments sent on an existing connection.
type RawOpts struct {
	TTL       uint8  // 0 = default 64
	IPID      uint16 // IP identification field
	SeqOffset int32  // offset from current sndNxt
	// Advance moves sndNxt past the payload. The paper's paired-TTL
	// experiment sends the same GET twice (TTL n-1 then n) at the same
	// sequence position: the first with Advance=false.
	Advance bool
	Flags   netpkt.TCPFlags // 0 = PSH|ACK
}

// SendRaw transmits a crafted payload segment on the connection.
func (c *Conn) SendRaw(payload []byte, o RawOpts) {
	flags := o.Flags
	if flags == 0 {
		flags = netpkt.PSH | netpkt.ACK
	}
	c.sendSegment(&netpkt.TCPSegment{
		Flags: flags, Seq: c.sndNxt + uint32(o.SeqOffset), Ack: c.rcvNxt,
		Window: 65535, Payload: payload,
	}, o.TTL, o.IPID)
	if o.Advance {
		c.sndNxt += uint32(len(payload))
	}
}

// Close starts an orderly shutdown (FIN).
func (c *Conn) Close() {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	default:
		return
	}
	c.sendSegment(&netpkt.TCPSegment{
		Flags: netpkt.FIN | netpkt.ACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: 65535,
	}, 0, 0)
	c.sndNxt++
}

// Abort sends RST and discards the connection, the way a client stack
// gives up on a half-closed connection whose teardown never completes
// (the interceptive-middlebox blackhole case in §4.2.1).
func (c *Conn) Abort() {
	if c.Dead() {
		return
	}
	c.sendSegment(&netpkt.TCPSegment{Flags: netpkt.RST, Seq: c.sndNxt}, 0, 0)
	c.state = StateClosed
	c.stack.remove(c)
}

// handleSegment is the receive-side state machine.
func (c *Conn) handleSegment(seg *netpkt.TCPSegment) {
	// RST processing: accepted only at the exact expected sequence (or
	// during SYN-SENT with a valid ACK). A stale RST — e.g. one forged by
	// a wiretap middlebox that lost the race against the real response —
	// is ignored, exactly like a real stack.
	if seg.Flags.Has(netpkt.RST) {
		ok := false
		switch c.state {
		case StateSynSent:
			ok = seg.Flags.Has(netpkt.ACK) && seg.Ack == c.sndNxt
		default:
			ok = seg.Seq == c.rcvNxt
		}
		if ok {
			c.resetBy = seg
			c.state = StateReset
			c.stack.remove(c)
		}
		return
	}

	switch c.state {
	case StateSynSent:
		if seg.Flags.Has(netpkt.SYN|netpkt.ACK) && seg.Ack == c.sndNxt {
			c.rcvNxt = seg.Seq + 1
			c.state = StateEstablished
			c.sendAck()
		}
		return
	case StateSynRcvd:
		if seg.Flags.Has(netpkt.ACK) && seg.Ack == c.sndNxt {
			c.state = StateEstablished
			if c.onAccept != nil {
				c.onAccept(c)
			}
			// Fall through to process piggybacked data.
			if len(seg.Payload) > 0 || seg.Flags.Has(netpkt.FIN) {
				c.processData(seg)
			}
		}
		return
	case StateClosed, StateReset:
		return
	}

	// Established and closing states: our FIN being acknowledged drives
	// the active-close ladder.
	if seg.Flags.Has(netpkt.ACK) && seg.Ack == c.sndNxt {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateClosing:
			c.enterTimeWait()
		case StateLastAck:
			c.state = StateClosed
			c.stack.remove(c)
			return
		}
	}

	if len(seg.Payload) > 0 || seg.Flags.Has(netpkt.FIN) {
		c.processData(seg)
	}
}

// processData handles in-order payload and FIN.
func (c *Conn) processData(seg *netpkt.TCPSegment) {
	if seg.Seq != c.rcvNxt {
		// Out-of-order or stale (e.g. the real server response arriving
		// after a forged one already consumed that sequence range):
		// duplicate-ACK and drop.
		c.DupAcks++
		c.sendAck()
		return
	}
	if len(seg.Payload) > 0 {
		c.recvBuf = append(c.recvBuf, seg.Payload...)
		c.rcvNxt += uint32(len(seg.Payload))
	}
	if seg.Flags.Has(netpkt.FIN) {
		c.rcvNxt++
		c.peerFIN = true
		c.finAt = c.stack.eng.Now()
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait1:
			c.state = StateClosing
		case StateFinWait2:
			c.enterTimeWait()
		}
	}
	c.sendAck()
	if c.OnData != nil {
		c.OnData(c)
	}
}

func (c *Conn) sendAck() {
	c.sendSegment(&netpkt.TCPSegment{Flags: netpkt.ACK, Seq: c.sndNxt, Ack: c.rcvNxt, Window: 65535}, 0, 0)
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.stack.eng.ScheduleCall(time.Second, timeWaitExpire, c, nil)
}

// timeWaitExpire is the shared TIME-WAIT timer callback (scheduled via
// ScheduleCall so teardown does not allocate a closure per connection).
func timeWaitExpire(a, _ any) {
	c := a.(*Conn)
	if c.state == StateTimeWait {
		c.state = StateClosed
		c.stack.remove(c)
	}
}

// WaitEstablished drives the engine until the handshake completes, the
// connection dies, or the timeout elapses.
func (c *Conn) WaitEstablished(timeout time.Duration) error {
	err := c.stack.eng.RunUntil(timeout, func() bool { return c.Established() || c.Dead() })
	if err != nil {
		return fmt.Errorf("tcpsim: connect %v:%d: %w", c.remoteAddr, c.remotePort, err)
	}
	if c.Dead() {
		return fmt.Errorf("tcpsim: connect %v:%d: connection refused/reset", c.remoteAddr, c.remotePort)
	}
	return nil
}

// WaitStream drives the engine until the receive buffer reaches n bytes,
// the peer closes, the connection resets, or the timeout elapses. It
// returns the buffered stream.
func (c *Conn) WaitStream(n int, timeout time.Duration) []byte {
	_ = c.stack.eng.RunUntil(timeout, func() bool {
		return len(c.recvBuf) >= n || c.peerFIN || c.Dead()
	})
	return c.recvBuf
}

// WaitQuiet drives the engine for the given duration (lets in-flight
// exchanges settle) and returns the buffered stream.
func (c *Conn) WaitQuiet(d time.Duration) []byte {
	c.stack.eng.RunFor(d)
	return c.recvBuf
}

// WaitClosed drives the engine until the connection is fully dead.
func (c *Conn) WaitClosed(timeout time.Duration) bool {
	_ = c.stack.eng.RunUntil(timeout, func() bool { return c.Dead() })
	return c.Dead()
}
