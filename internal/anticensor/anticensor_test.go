package anticensor

import (
	"bytes"
	"net/netip"
	"testing"

	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/middlebox"
	"repro/internal/netpkt"
	"repro/internal/probe"
	"repro/internal/websim"
)

var sharedWorld *ispnet.World

func world(t testing.TB) *ispnet.World {
	t.Helper()
	if sharedWorld == nil {
		sharedWorld = ispnet.NewWorld(ispnet.SmallConfig())
	}
	// Each test runs on its own goroutine; handing the shared world out is
	// a serialized ownership transfer.
	sharedWorld.Rebind()
	return sharedWorld
}

func blockedDomain(t testing.TB, w *ispnet.World, isp *ispnet.ISP) string {
	t.Helper()
	for _, d := range isp.HTTPList {
		s, _ := w.Catalog.Site(d)
		if s == nil || s.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
			return d
		}
	}
	t.Skipf("%s: no blocked normal domain on client paths", isp.Name)
	return ""
}

// CraftRequest outputs must never match the middlebox matcher but must
// parse at an RFC 2616 server.
func TestCraftedRequestsEvadeMatcherButParse(t *testing.T) {
	for _, tech := range []Technique{TechHostCase, TechExtraSpace, TechTrailingSpace} {
		req, ok := CraftRequest(tech, "blocked.example.com")
		if !ok {
			t.Fatalf("%s: no request", tech)
		}
		if _, matched := middlebox.ExtractHost(req, false); matched {
			t.Errorf("%s: matcher still extracts a host", tech)
		}
		if _, matched := middlebox.ExtractHost(req, true); matched && tech != TechHostCase {
			// last-Host matching scans the whole payload; the case
			// mutation hides the keyword entirely, padding hides the value.
			t.Errorf("%s: covert matcher still matches", tech)
		}
		parsed, _, err := httpwire.ParseRequest(req)
		if err != nil {
			t.Fatalf("%s: server rejects: %v", tech, err)
		}
		if h, _ := parsed.Host(); h != "blocked.example.com" {
			t.Errorf("%s: server sees host %q", tech, h)
		}
	}
	// Multi-host: covert matcher must see the decoy.
	req, _ := CraftRequest(TechMultiHost, "blocked.example.com")
	if got, ok := middlebox.ExtractHost(req, true); !ok || got != "popular-0000.com" {
		t.Errorf("multi-host: covert matcher sees %q", got)
	}
	parsed, _, err := httpwire.ParseRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := parsed.Host(); h != "blocked.example.com" {
		t.Errorf("multi-host: server sees %q", h)
	}
}

func TestFINRSTDropperFilter(t *testing.T) {
	site := mustAddr("151.10.0.9")
	other := mustAddr("151.10.0.10")
	f := FINRSTDropper(site, 242)
	mk := func(src string, flags netpkt.TCPFlags, ipid uint16) *netpkt.Packet {
		p := netpkt.NewTCP(mustAddr(src), mustAddr("10.0.0.1"), &netpkt.TCPSegment{
			SrcPort: 80, DstPort: 1234, Flags: flags,
		})
		p.IP.ID = ipid
		return p
	}
	cases := []struct {
		pkt  *netpkt.Packet
		pass bool
	}{
		{mk("151.10.0.9", netpkt.FIN|netpkt.ACK, 0), false},
		{mk("151.10.0.9", netpkt.RST, 0), false},
		{mk("151.10.0.9", netpkt.PSH|netpkt.ACK, 0), true}, // data passes
		{mk("151.10.0.10", netpkt.RST, 242), false},        // IP-ID rule
		{mk("151.10.0.10", netpkt.RST, 7), true},           // other source, normal ipid
		{mk("151.10.0.10", netpkt.PSH|netpkt.ACK, 242), true},
	}
	_ = other
	for i, c := range cases {
		raw, _ := c.pkt.Marshal()
		if got := f(raw, c.pkt); got != c.pass {
			t.Errorf("case %d: pass = %v, want %v", i, got, c.pass)
		}
	}
}

func TestEvadeWiretapAirtel(t *testing.T) {
	w := world(t)
	airtel := w.ISP("Airtel")
	p := probe.New(w, airtel)
	d := blockedDomain(t, w, airtel)
	for _, tech := range []Technique{TechHostCase, TechDropFINRST, TechSegmented, TechExtraSpace} {
		ok := false
		for r := 0; r < 3 && !ok; r++ { // wiretap race noise
			ok = Evade(p, tech, d).Success
		}
		if !ok {
			t.Errorf("Airtel: %s failed", tech)
		}
	}
}

func TestEvadeInterceptiveIdea(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	p := probe.New(w, idea)
	d := blockedDomain(t, w, idea)
	for _, tech := range []Technique{TechExtraSpace, TechTrailingSpace, TechHostCase, TechSegmented} {
		if at := Evade(p, tech, d); !at.Success {
			t.Errorf("Idea: %s failed: %+v", tech, at)
		}
	}
	// The FIN/RST dropper cannot beat an interceptive box: the request
	// itself is consumed.
	if at := Evade(p, TechDropFINRST, d); at.Success {
		t.Error("Idea: dropper should NOT succeed against an interceptive box")
	}
}

func TestEvadeCovertVodafone(t *testing.T) {
	w := world(t)
	vod := w.ISP("Vodafone")
	p := probe.New(w, vod)
	d := blockedDomain(t, w, vod)
	for _, tech := range []Technique{TechMultiHost, TechHostCase, TechSegmented} {
		at := Evade(p, tech, d)
		if !at.Success {
			t.Errorf("Vodafone: %s failed: %+v", tech, at)
		}
	}
	// Multi-host specifically: the stream must carry real content AND the
	// server's 400 for the trailing junk.
	addrs, err := p.ResolveViaTor(d)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := CraftRequest(TechMultiHost, d)
	fr := probe.GetFrom(vod.Client, addrs[0], d, req, p.Timeout)
	if len(fr.Responses) < 2 || fr.Responses[0].StatusCode != 200 || fr.Responses[1].StatusCode != 400 {
		t.Errorf("multi-host responses: %d", len(fr.Responses))
	}
	if !bytes.Contains(fr.Responses[0].Body, []byte("portal")) {
		t.Error("first response is not the real content")
	}
}

func TestEvadeDNSPoisoningMTNL(t *testing.T) {
	w := world(t)
	mtnl := w.ISP("MTNL")
	p := probe.New(w, mtnl)
	var victim string
	for _, d := range mtnl.DNSList {
		s, _ := w.Catalog.Site(d)
		if s != nil && s.Kind == websim.KindNormal && mtnl.Resolvers[0].PoisonsDomain(d) {
			if tr := w.TruthFor(mtnl, d); !tr.HTTPFiltered { // DNS-only victim
				victim = d
				break
			}
		}
	}
	if victim == "" {
		t.Skip("no DNS-only victim")
	}
	at := Evade(p, TechAltResolver, victim)
	if !at.Success {
		t.Errorf("alternate resolver failed: %+v", at)
	}
}

func TestRunMatrixAllISPsEvadable(t *testing.T) {
	w := world(t)
	for _, name := range []string{"Airtel", "Idea", "Vodafone", "Jio"} {
		isp := w.ISP(name)
		p := probe.New(w, isp)
		var blocked []string
		for _, d := range isp.HTTPList {
			s, _ := w.Catalog.Site(d)
			if s == nil || s.Kind != websim.KindNormal {
				continue
			}
			if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
				blocked = append(blocked, d)
			}
			if len(blocked) == 3 {
				break
			}
		}
		if len(blocked) == 0 {
			continue
		}
		m := RunMatrix(p, blocked, AllTechniques, 2)
		if m.AnyPerDomain != m.Tried {
			t.Errorf("%s: evaded %d/%d blocked domains", name, m.AnyPerDomain, m.Tried)
		}
	}
}

func mustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}
