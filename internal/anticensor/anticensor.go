// Package anticensor implements the paper's §5 evasion techniques — the
// ones that defeated every middlebox in every ISP without proxies, VPNs or
// Tor. Each technique is expressed as either a crafted request builder
// (exploiting the middleboxes' literal matching vs the servers' RFC 2616
// tolerance) or a client-side packet-filter rule (dropping the forged
// teardown packets a wiretap box injects).
package anticensor

import (
	"bytes"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/probe"
	"repro/internal/tcpsim"
)

// Technique identifies one evasion.
type Technique string

// The §5 techniques.
const (
	// TechHostCase mutates the case of the Host keyword ("HOst:"):
	// middleboxes match literally, servers are case-insensitive. Worked
	// against the wiretap boxes of Airtel and Jio.
	TechHostCase Technique = "host-keyword-case"
	// TechExtraSpace pads the Host value with an extra space: defeats the
	// overt interceptive boxes (Idea).
	TechExtraSpace Technique = "host-extra-space"
	// TechTrailingSpace appends a space after the domain.
	TechTrailingSpace Technique = "host-trailing-space"
	// TechMultiHost appends a second, uncensored Host after the end of
	// the request: covert interceptive boxes (Vodafone) match only the
	// last Host; the server answers the real request plus a 400.
	TechMultiHost Technique = "multiple-host-headers"
	// TechSegmented splits the GET across TCP segments: per-packet
	// matchers never see a complete Host line.
	TechSegmented Technique = "segmented-request"
	// TechDropFINRST installs a local packet filter dropping forged
	// FIN/RST packets (optionally keyed on Airtel's fixed IP-ID 242);
	// the real response then renders. Only helps against wiretap boxes —
	// interceptive boxes consume the request itself.
	TechDropFINRST Technique = "drop-fin-rst"
	// TechAltResolver switches to an uncensored public resolver —
	// the complete fix for BSNL/MTNL DNS poisoning.
	TechAltResolver Technique = "alternate-resolver"
)

// AllTechniques lists every HTTP evasion (DNS evasion is separate).
var AllTechniques = []Technique{
	TechHostCase, TechExtraSpace, TechTrailingSpace, TechMultiHost,
	TechSegmented, TechDropFINRST,
}

// CraftRequest renders the technique's request bytes for a domain, or
// ok=false when the technique is not a request mutation.
func CraftRequest(t Technique, domain string) (req []byte, ok bool) {
	switch t {
	case TechHostCase:
		return httpwire.NewGET("/").RawLine("HOst: " + domain).Bytes(), true
	case TechExtraSpace:
		return httpwire.NewGET("/").RawLine("Host:  " + domain).Bytes(), true
	case TechTrailingSpace:
		return httpwire.NewGET("/").RawLine("Host: " + domain + " ").Bytes(), true
	case TechMultiHost:
		base := httpwire.NewGET("/").Header("Host", domain).Bytes()
		return append(base, []byte(" Host: popular-0000.com\r\n\r\n")...), true
	default:
		return nil, false
	}
}

// FINRSTDropper builds the iptables-like ingress rule of §5: drop any
// TCP packet from siteAddr carrying FIN or RST; when ipid is non-zero,
// also drop any packet bearing that IP identifier (Airtel's 242). The
// filter works on raw wire bytes, like a real netfilter rule.
func FINRSTDropper(siteAddr netip.Addr, ipid uint16) netsim.IngressFilter {
	return func(raw []byte, pkt *netpkt.Packet) bool {
		p := pkt
		if p == nil {
			parsed, err := netpkt.Parse(raw)
			if err != nil {
				return true
			}
			p = parsed
		}
		if p.TCP == nil {
			return true
		}
		if ipid != 0 && p.IP.ID == ipid && (p.TCP.Flags.Has(netpkt.FIN) || p.TCP.Flags.Has(netpkt.RST)) {
			return false
		}
		if p.IP.Src == siteAddr && (p.TCP.Flags.Has(netpkt.FIN) || p.TCP.Flags.Has(netpkt.RST)) {
			return false
		}
		return true
	}
}

// Attempt is the outcome of one evasion attempt.
type Attempt struct {
	Technique Technique
	Domain    string
	// Success: the client received genuine site content.
	Success bool
	// Censored: a censorship response was still observed.
	Censored bool
	Detail   string
}

// Evade tries one technique for one censored domain from the ISP client.
// The destination address is resolved through Tor (combining with the
// alternate-resolver evasion when local DNS is also poisoned).
func Evade(p *probe.Probe, t Technique, domain string) *Attempt {
	at := &Attempt{Technique: t, Domain: domain}
	addrs, err := p.ResolveViaTor(domain)
	if err != nil {
		at.Detail = "unresolvable: " + err.Error()
		return at
	}
	addr := addrs[0]
	ep := p.ISP.Client
	eng := p.World.Eng

	switch t {
	case TechAltResolver:
		// DNS-only evasion: resolving via the public resolver must give a
		// non-manipulated answer; then a plain fetch works (for DNS-only
		// censors).
		fr := probe.GetFrom(ep, addr, domain, nil, p.Timeout)
		at.Success = goodContent(fr.Stream, fr.Responses)
		at.Censored = fr.Notification || (fr.Reset && len(fr.Responses) == 0)
		return at

	case TechDropFINRST:
		// The paper keyed its drop rule on Airtel's pinned IP-ID 242; the
		// profile's style carries whatever this world's censor pins (0 for
		// censors without the signature, which disables the IP-ID rule).
		ipid := p.ISP.Profile.Style.IPID
		ep.Host.SetIngressFilter(FINRSTDropper(addr, ipid))
		defer ep.Host.SetIngressFilter(nil)
		fr := probe.GetFrom(ep, addr, domain, nil, p.Timeout)
		at.Success = goodContent(fr.Stream, fr.Responses)
		at.Censored = fr.Notification
		return at

	case TechSegmented:
		c, err := ep.TCP.Connect(addr, 80), error(nil)
		if err = c.WaitEstablished(p.Timeout); err != nil {
			at.Detail = "connect failed"
			return at
		}
		c.SendSegmented(httpwire.NewGET("/").Header("Host", domain).Bytes(), 4)
		eng.RunFor(p.Timeout)
		at.Success = goodContent(c.Stream(), nil)
		at.Censored = censoredStream(p.World, c)
		c.Abort()
		eng.RunFor(10 * time.Millisecond)
		return at

	default:
		req, ok := CraftRequest(t, domain)
		if !ok {
			at.Detail = fmt.Sprintf("technique %s builds no request", t)
			return at
		}
		fr := probe.GetFrom(ep, addr, domain, req, p.Timeout)
		at.Success = goodContent(fr.Stream, fr.Responses)
		at.Censored = fr.Notification || (fr.Reset && len(fr.Responses) == 0)
		return at
	}
}

// goodContent recognizes genuine site content: a 200 response whose body
// looks like the simulated web's pages rather than a censorship notice.
func goodContent(stream []byte, responses []*httpwire.Response) bool {
	if responses == nil {
		var rest []byte = stream
		for len(rest) > 0 {
			resp, r2, err := httpwire.ParseResponse(rest)
			if err != nil {
				break
			}
			responses = append(responses, resp)
			rest = r2
		}
	}
	for _, r := range responses {
		if r.StatusCode == 200 && bytes.Contains(r.Body, []byte("portal")) {
			return true
		}
	}
	return false
}

func censoredStream(w *ispnet.World, c *tcpsim.Conn) bool {
	if _, reset := c.WasReset(); reset && len(c.Stream()) == 0 {
		return true
	}
	_, notified := probe.MatchSignatureIn(w, c.Stream())
	return notified
}

// Matrix evaluates every technique against a sample of an ISP's blocked
// domains, reproducing §5's claim table ("we managed to anti-censor all
// blocked websites in all ISPs under test").
type Matrix struct {
	ISP string
	// Success[technique] = successes out of Tried.
	Success map[Technique]int
	Tried   int
	// AnyPerDomain counts domains evaded by at least one technique.
	AnyPerDomain int
}

// RunMatrix evaluates the techniques over blocked domains.
func RunMatrix(p *probe.Probe, blocked []string, techniques []Technique, perDomainRetries int) *Matrix {
	m := &Matrix{ISP: p.ISP.Name, Success: map[Technique]int{}}
	for _, d := range blocked {
		m.Tried++
		evaded := false
		for _, t := range techniques {
			ok := false
			for r := 0; r <= perDomainRetries && !ok; r++ {
				ok = Evade(p, t, d).Success
			}
			if ok {
				m.Success[t]++
				evaded = true
			}
		}
		if evaded {
			m.AnyPerDomain++
		}
	}
	return m
}
