package websim

import (
	"fmt"
	"strings"
)

// words is the vocabulary for deterministic pseudo-content.
var words = []string{
	"stream", "access", "portal", "media", "forum", "network", "channel",
	"gallery", "archive", "update", "review", "profile", "market", "signal",
	"digest", "weekly", "report", "source", "mirror", "index",
}

// line produces the i-th deterministic content line for a domain.
func line(domain string, i int) string {
	h := hash64(fmt.Sprintf("%s#%d", domain, i))
	return fmt.Sprintf("<p>%s %s %s %d</p>",
		words[h%uint64(len(words))],
		words[(h>>8)%uint64(len(words))],
		words[(h>>16)%uint64(len(words))],
		h%9973)
}

// PageSpec describes a render request.
type PageSpec struct {
	Site   *Site
	Region Region
	// Fetch is the server's per-domain fetch counter, driving dynamic
	// content churn.
	Fetch int
}

// RenderBody produces the deterministic HTML body for a page fetch.
//
// Layout: title, a stable base section derived from the domain, then —
// depending on the site kind — a regional section (CDN) and/or a per-fetch
// feed section (dynamic). Section sizes are chosen so that:
//   - plain CDN sites differ across regions by well under a 0.3 line-diff
//     (only ads change), while RegionalTemplate CDN sites differ by more;
//   - dynamic sites with BigFeed churn past the threshold between fetches,
//     others stay under it.
func RenderBody(spec PageSpec) []byte {
	s := spec.Site
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s portal %s</title></head><body>\n",
		s.Domain, s.Category)
	baseLines := 30 + int(hash64(s.Domain+"|len")%20)
	for i := 0; i < baseLines; i++ {
		b.WriteString(line(s.Domain, i))
		b.WriteString("\n")
	}
	switch s.Kind {
	case KindCDN:
		if s.RegionalTemplate {
			// Regional template: a block comparable to the base content.
			for i := 0; i < baseLines; i++ {
				b.WriteString(line(fmt.Sprintf("%s|tmpl|%s", s.Domain, spec.Region), i))
				b.WriteString("\n")
			}
		} else {
			// Only localized ads: a few lines.
			for i := 0; i < 3; i++ {
				fmt.Fprintf(&b, "<p>ad %s %s %d</p>\n", spec.Region, s.Domain, i)
			}
		}
	case KindDynamic:
		feedLines := 4
		if s.BigFeed {
			feedLines = baseLines
		}
		for i := 0; i < feedLines; i++ {
			b.WriteString(line(fmt.Sprintf("%s|feed|%d", s.Domain, spec.Fetch), i))
			b.WriteString("\n")
		}
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// RenderParkedBody is what a parking edge serves for a dead domain. The
// page is entirely region-dependent — the distributed-hosting artifact the
// paper identifies as an OONI false-positive source.
func RenderParkedBody(domain string, region Region) []byte {
	var b strings.Builder
	switch region {
	case RegionIN:
		fmt.Fprintf(&b, "<html><head><title>domain parked notice</title></head><body>\n")
		fmt.Fprintf(&b, "<h1>%s is parked</h1>\n", domain)
		for i := 0; i < 12; i++ {
			b.WriteString(line(domain+"|park-in", i))
			b.WriteString("\n")
		}
	default:
		fmt.Fprintf(&b, "<html><head><title>purchase this premium domain</title></head><body>\n")
		fmt.Fprintf(&b, "<h1>Buy %s today</h1>\n", domain)
		for i := 0; i < 40; i++ {
			b.WriteString(line(domain+"|park-intl", i))
			b.WriteString("\n")
		}
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}
