package websim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/tcpsim"
	"repro/internal/tlswire"
)

// EnableHTTPS makes the server answer TLS handshakes on port 443. The
// simulation does not encrypt — it answers a valid ClientHello with a
// synthetic ServerHello record followed by an opaque application-data
// record derived from the requested (SNI) site's content, enough to tell
// "the handshake completed and content flowed" from "the connection was
// interfered with".
//
// The point of HTTPS in this reproduction is a negative result: the
// paper's middleboxes inspect only TCP port 80 and never parse SNI, so
// censored domains load fine over HTTPS unless DNS poisoning broke
// resolution first (§4.2: "fewer than five instances of HTTPS filtering
// which were actually due to manipulated DNS responses").
func (s *Server) EnableHTTPS() {
	s.stack.Listen(443, s.acceptTLS)
}

func (s *Server) acceptTLS(c *tcpsim.Conn) {
	responded := false
	c.OnData = func(c *tcpsim.Conn) {
		if responded {
			return
		}
		sni, err := tlswire.ParseSNI(c.Stream())
		if err != nil {
			return // wait for more bytes; garbage simply never completes
		}
		responded = true
		if !s.parking {
			if _, hosted := s.sites[sni]; !hosted {
				// TLS alert: unrecognized_name (simplified as RST-free
				// close, like SNI-strict frontends).
				c.Close()
				return
			}
		}
		s.Requests++
		c.Send(serverHelloFor(sni))
		c.Close()
	}
}

// serverHelloFor renders the synthetic ServerHello + application data.
func serverHelloFor(sni string) []byte {
	payload := []byte(fmt.Sprintf("SERVERHELLO:%s", sni))
	rec := make([]byte, 0, len(payload)+5)
	rec = append(rec, tlswire.RecordHandshake)
	rec = binary.BigEndian.AppendUint16(rec, 0x0303)
	rec = binary.BigEndian.AppendUint16(rec, uint16(len(payload)))
	rec = append(rec, payload...)
	return rec
}
