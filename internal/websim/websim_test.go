package websim

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/difflib"
	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func TestCatalogShape(t *testing.T) {
	c := NewCatalog(1200, 1000)
	if len(c.PBW) != 1200 {
		t.Fatalf("PBW count = %d", len(c.PBW))
	}
	if len(c.Alexa) != 1000 {
		t.Fatalf("Alexa count = %d", len(c.Alexa))
	}
	cats := map[Category]int{}
	kinds := map[Kind]int{}
	for i, s := range c.PBW {
		if s.PBWIndex != i {
			t.Fatalf("PBWIndex mismatch at %d", i)
		}
		cats[s.Category]++
		kinds[s.Kind]++
	}
	for _, cat := range Categories {
		if cats[cat] == 0 {
			t.Errorf("category %s empty", cat)
		}
	}
	// Kind mix should roughly match the calibrated fractions.
	if kinds[KindNormal] < 500 || kinds[KindCDN] < 150 || kinds[KindDead] < 50 || kinds[KindDynamic] < 80 || kinds[KindGone] < 15 {
		t.Errorf("kind mix off: %v", kinds)
	}
	for _, s := range c.Alexa {
		if s.Kind != KindNormal {
			t.Errorf("alexa site %s kind %v", s.Domain, s.Kind)
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := NewCatalog(300, 100)
	b := NewCatalog(300, 100)
	for i := range a.PBW {
		if a.PBW[i].Domain != b.PBW[i].Domain || a.PBW[i].Kind != b.PBW[i].Kind {
			t.Fatalf("catalog not deterministic at %d", i)
		}
	}
}

func TestContentStableForNormalSites(t *testing.T) {
	c := NewCatalog(300, 0)
	var normal *Site
	for _, s := range c.PBW {
		if s.Kind == KindNormal {
			normal = s
			break
		}
	}
	b1 := RenderBody(PageSpec{Site: normal, Region: RegionIN, Fetch: 1})
	b2 := RenderBody(PageSpec{Site: normal, Region: RegionUS, Fetch: 5})
	if !bytes.Equal(b1, b2) {
		t.Error("normal site content should not vary by region or fetch")
	}
}

func TestCDNRegionalDiffs(t *testing.T) {
	c := NewCatalog(1200, 0)
	var plain, templ *Site
	for _, s := range c.PBW {
		if s.Kind == KindCDN {
			if s.RegionalTemplate && templ == nil {
				templ = s
			}
			if !s.RegionalTemplate && plain == nil {
				plain = s
			}
		}
	}
	if plain == nil || templ == nil {
		t.Fatal("need both CDN variants in catalog")
	}
	pin := string(RenderBody(PageSpec{Site: plain, Region: RegionIN, Fetch: 1}))
	pus := string(RenderBody(PageSpec{Site: plain, Region: RegionUS, Fetch: 1}))
	if d := 1 - difflib.RatioLines(pin, pus); d >= 0.3 {
		t.Errorf("plain CDN regional diff = %.2f, want < 0.3", d)
	}
	tin := string(RenderBody(PageSpec{Site: templ, Region: RegionIN, Fetch: 1}))
	tus := string(RenderBody(PageSpec{Site: templ, Region: RegionUS, Fetch: 1}))
	if d := 1 - difflib.RatioLines(tin, tus); d < 0.3 {
		t.Errorf("regional-template CDN diff = %.2f, want >= 0.3", d)
	}
}

func TestDynamicFeedChurn(t *testing.T) {
	c := NewCatalog(1200, 0)
	var small, big *Site
	for _, s := range c.PBW {
		if s.Kind == KindDynamic {
			if s.BigFeed && big == nil {
				big = s
			}
			if !s.BigFeed && small == nil {
				small = s
			}
		}
	}
	if small == nil || big == nil {
		t.Fatal("need both dynamic variants")
	}
	s1 := string(RenderBody(PageSpec{Site: small, Region: RegionIN, Fetch: 1}))
	s2 := string(RenderBody(PageSpec{Site: small, Region: RegionIN, Fetch: 2}))
	if d := 1 - difflib.RatioLines(s1, s2); d >= 0.3 {
		t.Errorf("small feed churn = %.2f, want < 0.3", d)
	}
	b1 := string(RenderBody(PageSpec{Site: big, Region: RegionIN, Fetch: 1}))
	b2 := string(RenderBody(PageSpec{Site: big, Region: RegionIN, Fetch: 2}))
	if d := 1 - difflib.RatioLines(b1, b2); d < 0.3 {
		t.Errorf("big feed churn = %.2f, want >= 0.3", d)
	}
}

func TestParkedPagesDifferByRegion(t *testing.T) {
	in := string(RenderParkedBody("dead.example.com", RegionIN))
	us := string(RenderParkedBody("dead.example.com", RegionUS))
	if d := 1 - difflib.RatioLines(in, us); d < 0.3 {
		t.Errorf("parked regional diff = %.2f, want >= 0.3", d)
	}
	if httpwire.Title([]byte(in)) == httpwire.Title([]byte(us)) {
		t.Error("parked titles should differ by region")
	}
}

// serverFixture builds client -- r0 -- r1 -- server with a websim Server.
type serverFixture struct {
	eng    *sim.Engine
	client *tcpsim.Stack
	server *Server
	saddr  netip.Addr
}

func newServerFixture(t *testing.T, profile ServerProfile) *serverFixture {
	t.Helper()
	eng := sim.NewEngine(3)
	n := netsim.New(eng)
	r0 := n.AddRouter("r0", 1, netip.MustParseAddr("100.64.0.1"))
	r1 := n.AddRouter("r1", 1, netip.MustParseAddr("100.64.1.1"))
	n.Link(r0, r1, time.Millisecond)
	ch := n.AddHost(netip.MustParseAddr("10.0.0.2"), r0, time.Millisecond)
	sh := n.AddHost(netip.MustParseAddr("151.10.0.9"), r1, time.Millisecond)
	n.Build()
	cstack := tcpsim.NewStack(ch)
	sstack := tcpsim.NewStack(sh)
	srv := NewServer(sstack, RegionUS, profile)
	return &serverFixture{eng: eng, client: cstack, server: srv, saddr: sh.Addr()}
}

func fetch(t *testing.T, f *serverFixture, rawReq []byte) []*httpwire.Response {
	t.Helper()
	c := f.client.Connect(f.saddr, 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	c.Send(rawReq)
	stream := c.WaitQuiet(2 * time.Second)
	var out []*httpwire.Response
	for len(stream) > 0 {
		resp, rest, err := httpwire.ParseResponse(stream)
		if err != nil {
			break
		}
		out = append(out, resp)
		stream = rest
	}
	c.Abort()
	return out
}

func TestServerServesHostedSite(t *testing.T) {
	f := newServerFixture(t, ProfileStandard)
	cat := NewCatalog(50, 0)
	site := cat.PBW[0]
	f.server.Host(site)
	resps := fetch(t, f, httpwire.StandardGET(site.Domain, "/"))
	if len(resps) != 1 || resps[0].StatusCode != 200 {
		t.Fatalf("responses = %+v", resps)
	}
	if !bytes.Contains(resps[0].Body, []byte(site.Domain)) {
		t.Error("body does not mention the domain")
	}
	if srvr, ok := resps[0].HeaderValue("Server"); !ok || srvr != "nginx/1.14.2" {
		t.Errorf("Server header = %q", srvr)
	}
}

func TestServerUnknownHost404(t *testing.T) {
	f := newServerFixture(t, ProfileStandard)
	resps := fetch(t, f, httpwire.StandardGET("blocked.example.in", "/"))
	if len(resps) != 1 || resps[0].StatusCode != 404 {
		t.Fatalf("responses = %+v", resps)
	}
}

func TestServerHostCaseInsensitive(t *testing.T) {
	f := newServerFixture(t, ProfileStandard)
	cat := NewCatalog(50, 0)
	site := cat.PBW[0]
	f.server.Host(site)
	req := httpwire.NewGET("/").RawLine("HOst: "+site.Domain).Header("Connection", "keep-alive").Bytes()
	resps := fetch(t, f, req)
	if len(resps) != 1 || resps[0].StatusCode != 200 {
		t.Fatalf("case-mutated Host rejected: %+v", resps)
	}
}

// The covert-IM evasion payload must yield the real content plus a 400 for
// the trailing junk — two responses on one connection.
func TestServerMultiHostEvasionPayload(t *testing.T) {
	f := newServerFixture(t, ProfileStandard)
	cat := NewCatalog(50, 0)
	site := cat.PBW[0]
	f.server.Host(site)
	payload := append(httpwire.NewGET("/").Header("Host", site.Domain).Bytes(),
		[]byte(" Host: allowed.example.com\r\n\r\n")...)
	resps := fetch(t, f, payload)
	if len(resps) != 2 {
		t.Fatalf("got %d responses, want 2", len(resps))
	}
	if resps[0].StatusCode != 200 || resps[1].StatusCode != 400 {
		t.Errorf("status codes = %d, %d; want 200, 400", resps[0].StatusCode, resps[1].StatusCode)
	}
}

func TestServerParking(t *testing.T) {
	f := newServerFixture(t, ProfileParkIntl)
	f.server.ServeParked()
	resps := fetch(t, f, httpwire.StandardGET("whatever-domain.net", "/"))
	if len(resps) != 1 || resps[0].StatusCode != 200 {
		t.Fatalf("parking response = %+v", resps)
	}
	if !strings.Contains(string(resps[0].Body), "whatever-domain.net") {
		t.Error("parked page should mention the domain")
	}
}

func TestServerConnectionClose(t *testing.T) {
	f := newServerFixture(t, ProfileStandard)
	cat := NewCatalog(50, 0)
	f.server.Host(cat.PBW[0])
	c := f.client.Connect(f.saddr, 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	c.Send(httpwire.StandardGET(cat.PBW[0].Domain, "/")) // has Connection: close
	f.eng.RunFor(2 * time.Second)
	if !c.PeerClosed() {
		t.Error("server should close after Connection: close")
	}
}

func TestServerPipelining(t *testing.T) {
	f := newServerFixture(t, ProfileStandard)
	cat := NewCatalog(50, 0)
	f.server.Host(cat.PBW[0])
	f.server.Host(cat.PBW[1])
	req := append(
		httpwire.NewGET("/").Header("Host", cat.PBW[0].Domain).Bytes(),
		httpwire.NewGET("/").Header("Host", cat.PBW[1].Domain).Bytes()...)
	resps := fetch(t, f, req)
	if len(resps) != 2 {
		t.Fatalf("got %d responses, want 2", len(resps))
	}
	if f.server.Requests != 2 {
		t.Errorf("server Requests = %d", f.server.Requests)
	}
}
