// Package websim builds the simulated web: the catalog of potentially
// blocked websites (PBWs) and popular (Alexa-style) destinations, their
// hosting model (dedicated hosts, CDN edges, domain-parking services), the
// deterministic content each serves per region and per fetch, and the HTTP
// server logic that runs on every web host.
//
// The catalog deliberately contains the messy realities the paper blames
// for OONI's false positives: CDN-hosted domains that resolve to different
// edges (and serve different bytes) per region, dynamic sites whose news
// feeds and advertisements change between fetches, parked domains whose
// placeholder pages depend on which parking edge answers, and gone domains
// that still resolve but no longer host anything.
package websim

import (
	"fmt"
	"hash/fnv"
	"net/netip"
)

// Region is a coarse geography used for CDN edge selection and
// region-dependent content.
type Region int

// Regions in the simulation.
const (
	RegionIN Region = iota // India
	RegionUS
	RegionEU
	regionCount
)

func (r Region) String() string {
	switch r {
	case RegionIN:
		return "IN"
	case RegionUS:
		return "US"
	case RegionEU:
		return "EU"
	default:
		return fmt.Sprintf("region(%d)", int(r))
	}
}

// Kind classifies how a site is hosted and how its content behaves.
type Kind int

// Site kinds.
const (
	KindNormal  Kind = iota // dedicated hosting, stable content
	KindCDN                 // regional edges, region-dependent content
	KindDynamic             // dedicated hosting, per-fetch feeds and ads
	KindDead                // parked: resolves to a parking service
	KindGone                // resolves to an address nothing listens on
)

func (k Kind) String() string {
	return [...]string{"normal", "cdn", "dynamic", "dead", "gone"}[k]
}

// Category is one of the paper's seven PBW content categories.
type Category string

// The seven categories of §3.
var Categories = []Category{
	"escort", "porn", "music", "torrent", "politics", "tools", "social",
}

// categoryQuota splits the 1200 PBWs across categories.
var categoryQuota = map[Category]int{
	"escort": 150, "porn": 400, "music": 120, "torrent": 180,
	"politics": 150, "tools": 100, "social": 100,
}

// Site is one website in the simulated web.
type Site struct {
	Domain   string
	Category Category
	Kind     Kind
	// PBWIndex is the site's position in the potentially-blocked list, or
	// -1 for Alexa-only sites.
	PBWIndex int

	// HomeRegion is where a dedicated site is hosted.
	HomeRegion Region
	// RegionalTemplate marks CDN sites whose page template (not just ads)
	// differs per region — the big-content-diff false-positive source.
	RegionalTemplate bool
	// RegionalHeaders marks sites whose response header names differ per
	// region (edge software differences).
	RegionalHeaders bool
	// BigFeed marks dynamic sites whose per-fetch churn exceeds typical
	// diff thresholds.
	BigFeed bool

	// Addrs is filled in by the world builder: the address a resolver in
	// each region hands out.
	Addrs map[Region]netip.Addr
}

// Addr returns the address the site resolves to from the given region.
func (s *Site) Addr(r Region) netip.Addr { return s.Addrs[r] }

// hash64 gives a stable per-string seed for all deterministic choices.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// hashBool derives a deterministic boolean with probability pct/100 from a
// labelled hash of the domain. The label leads so FNV decorrelates the
// different per-domain decisions.
func hashBool(domain, label string, pct uint64) bool {
	return hash64(label+"|"+domain)%100 < pct
}

// Catalog is the full simulated web.
type Catalog struct {
	PBW     []*Site          // the 1200 potentially blocked websites, in ID order
	Alexa   []*Site          // the Alexa-style top destinations
	ByName  map[string]*Site // every site by domain
	Regions []Region
}

// tldFor spreads plausible TLDs deterministically.
func tldFor(domain string) string {
	switch hash64(domain) % 5 {
	case 0:
		return "in"
	case 1:
		return "net"
	case 2:
		return "org"
	default:
		return "com"
	}
}

// kindFor assigns the hosting/content kind with the calibrated mix: 8%
// dead, 3% gone, 20% CDN, 12% dynamic, rest normal (calibrated to the paper).
func kindFor(domain string) Kind {
	v := hash64("kind|"+domain) % 100
	switch {
	case v < 8:
		return KindDead
	case v < 11:
		return KindGone
	case v < 31:
		return KindCDN
	case v < 43:
		return KindDynamic
	default:
		return KindNormal
	}
}

// NewCatalog builds the deterministic site population: nPBW potentially
// blocked sites across the seven categories plus nAlexa popular sites.
func NewCatalog(nPBW, nAlexa int) *Catalog {
	c := &Catalog{ByName: make(map[string]*Site), Regions: []Region{RegionIN, RegionUS, RegionEU}}
	// Distribute PBWs across categories proportionally to the quotas.
	total := 0
	for _, q := range categoryQuota {
		total += q
	}
	idx := 0
	for _, cat := range Categories {
		n := categoryQuota[cat] * nPBW / total
		for i := 0; i < n && idx < nPBW; i++ {
			name := fmt.Sprintf("%s-site-%03d", cat, i)
			domain := fmt.Sprintf("%s.%s", name, tldFor(name))
			s := &Site{
				Domain:   domain,
				Category: cat,
				Kind:     kindFor(domain),
				PBWIndex: idx,
				Addrs:    make(map[Region]netip.Addr),
			}
			s.HomeRegion = RegionUS
			if hashBool(domain, "home", 50) {
				s.HomeRegion = RegionEU
			}
			s.RegionalTemplate = s.Kind == KindCDN && hashBool(domain, "template", 50)
			s.RegionalHeaders = (s.Kind == KindCDN && hashBool(domain, "hdrs", 40)) || s.Kind == KindDead
			s.BigFeed = s.Kind == KindDynamic && hashBool(domain, "feed", 50)
			c.PBW = append(c.PBW, s)
			c.ByName[domain] = s
			idx++
		}
	}
	// Fill any rounding shortfall with extra porn-category sites (the
	// largest category in the paper's corpus).
	for idx < nPBW {
		name := fmt.Sprintf("porn-extra-%03d", idx)
		domain := name + ".com"
		s := &Site{Domain: domain, Category: "porn", Kind: kindFor(domain),
			PBWIndex: idx, HomeRegion: RegionUS, Addrs: make(map[Region]netip.Addr)}
		c.PBW = append(c.PBW, s)
		c.ByName[domain] = s
		idx++
	}
	// Alexa sites: always normal hosting so they make dependable scan
	// destinations.
	for i := 0; i < nAlexa; i++ {
		domain := fmt.Sprintf("popular-%04d.com", i)
		s := &Site{
			Domain: domain, Category: "alexa", Kind: KindNormal, PBWIndex: -1,
			HomeRegion: RegionUS, Addrs: make(map[Region]netip.Addr),
		}
		if hashBool(domain, "home", 50) {
			s.HomeRegion = RegionEU
		}
		c.Alexa = append(c.Alexa, s)
		c.ByName[domain] = s
	}
	return c
}

// Site returns the site for a domain.
func (c *Catalog) Site(domain string) (*Site, bool) {
	s, ok := c.ByName[domain]
	return s, ok
}

// PBWDomains lists the potentially-blocked domains in ID order — the
// probe's input list.
func (c *Catalog) PBWDomains() []string {
	out := make([]string, len(c.PBW))
	for i, s := range c.PBW {
		out[i] = s.Domain
	}
	return out
}

// AlexaDomains lists the popular destinations in rank order.
func (c *Catalog) AlexaDomains() []string {
	out := make([]string, len(c.Alexa))
	for i, s := range c.Alexa {
		out[i] = s.Domain
	}
	return out
}
