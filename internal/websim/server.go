package websim

import (
	"fmt"
	"net/netip"

	"repro/internal/httpwire"
	"repro/internal/tcpsim"
)

// ServerProfile selects which response header names a server emits. OONI's
// web_connectivity compares header *names* between control and experiment,
// so profile differences across regions are a false-positive source and
// profile mimicry by censors a false-negative source.
type ServerProfile int

// Profiles.
const (
	ProfileStandard ServerProfile = iota // Content-Length, Content-Type, Server
	ProfileCDNEdge                       // + Via, X-Cache
	ProfileParkIN                        // parking software used by the IN edge
	ProfileParkIntl                      // different parking software elsewhere
)

// apply attaches profile headers (beyond Content-Length, which NewResponse
// sets) to a response.
func (p ServerProfile) apply(r *httpwire.Response, region Region) {
	r.AddHeader("Content-Type", "text/html")
	switch p {
	case ProfileStandard:
		r.AddHeader("Server", "nginx/1.14.2")
	case ProfileCDNEdge:
		r.AddHeader("Server", "cdn-edge/3.1")
		r.AddHeader("Via", fmt.Sprintf("1.1 edge-%s", region))
		r.AddHeader("X-Cache", "HIT")
	case ProfileParkIN:
		r.AddHeader("Server", "parkd/1.0")
		r.AddHeader("X-Parked-By", "in-hosting")
	case ProfileParkIntl:
		r.AddHeader("Server", "ParkingCo-Web")
		r.AddHeader("X-Listing", "premium")
		r.AddHeader("X-Broker", "auto")
	}
}

// Server implements the origin-server behaviour for one web host. A host
// may serve a single dedicated site, a whole CDN edge, or a parking
// service.
type Server struct {
	stack   *tcpsim.Stack
	region  Region
	profile ServerProfile

	// RegionOf, when set, selects the served region from the client's
	// source address — the behaviour of an anycast CDN edge, whose single
	// IP serves location-dependent content (a paper-documented OONI
	// false-positive source that DNS comparison cannot see).
	RegionOf func(netip.Addr) Region

	// sites the host serves by domain; nil Site with parking=true means
	// "serve a parked page for any domain".
	sites   map[string]*Site
	parking bool

	fetches map[string]int
	// respCache holds fully marshaled response bytes per (host, region,
	// fetch) — page content is a pure function of those three, so the
	// body rendering and header formatting run once per distinct page, not
	// once per request. Entries for non-dynamic sites use fetch 0 (their
	// content ignores the counter). The cache is correctness-neutral (a
	// miss regenerates identical bytes) and therefore survives Reset.
	respCache map[respKey][]byte
	// Requests counts successfully served requests (tests/metrics).
	Requests int
}

// respKey identifies one cached response.
type respKey struct {
	host   string
	region Region
	fetch  int
}

// respCacheMax bounds the cache; on overflow it is dropped wholesale
// (regeneration is deterministic, so eviction never affects output).
const respCacheMax = 4096

func (s *Server) cachedResponse(key respKey) ([]byte, bool) {
	b, ok := s.respCache[key]
	return b, ok
}

func (s *Server) storeResponse(key respKey, b []byte) {
	if s.respCache == nil || len(s.respCache) >= respCacheMax {
		s.respCache = make(map[respKey][]byte)
	}
	s.respCache[key] = b
}

// NewServer attaches server logic to a TCP stack, listening on port 80.
func NewServer(stack *tcpsim.Stack, region Region, profile ServerProfile) *Server {
	s := &Server{
		stack: stack, region: region, profile: profile,
		sites:   make(map[string]*Site),
		fetches: make(map[string]int),
	}
	stack.Listen(80, s.accept)
	return s
}

// Host adds a site to this server's virtual hosts.
func (s *Server) Host(site *Site) { s.sites[site.Domain] = site }

// ServeParked turns the server into a parking edge answering any domain.
func (s *Server) ServeParked() { s.parking = true }

// Reset rewinds per-fetch state — the fetch counters that drive dynamic
// content and the request tally — to the just-built state. Hosted sites
// and parking mode are build-time configuration and stay, as does the
// response cache: regeneration is deterministic, so cached bytes are
// exactly what a fresh server would serve.
func (s *Server) Reset() {
	clear(s.fetches)
	s.Requests = 0
}

// accept wires per-connection request parsing.
func (s *Server) accept(c *tcpsim.Conn) {
	var consumed int
	c.OnData = func(c *tcpsim.Conn) {
		stream := c.Stream()[consumed:]
		for {
			req, rest, err := httpwire.ParseRequest(stream)
			if err == httpwire.ErrIncomplete {
				return
			}
			consumed += len(stream) - len(rest)
			stream = rest
			if err != nil {
				// Malformed message (e.g. the trailing junk left by the
				// multiple-Host evasion): 400, keep the connection.
				c.Send(httpwire.NewResponse(400, "Bad Request", []byte("<html><body>Bad Request</body></html>")).Marshal())
				continue
			}
			s.respond(c, req)
		}
	}
}

// respond serves one parsed request per RFC 2616 semantics: the first Host
// header, matched case-insensitively with LWS-trimmed value, selects the
// virtual host.
func (s *Server) respond(c *tcpsim.Conn, req *httpwire.Request) {
	host, ok := req.Host()
	if !ok {
		c.Send(httpwire.NewResponse(400, "Bad Request", []byte("<html><body>Missing Host</body></html>")).Marshal())
		return
	}
	region := s.region
	if s.RegionOf != nil {
		region = s.RegionOf(c.RemoteAddr())
	}
	s.Requests++
	if s.parking {
		// Parking services answer on one (anycast) address but route the
		// request to region-local infrastructure: content, headers and
		// title all depend on where the client sits — the GoDaddy-style
		// false positive of §6.2. Only some listings run different edge
		// software per region (different header names); the rest differ
		// in content alone, which OONI's header check clears.
		key := respKey{host: host, region: region}
		wire, ok := s.cachedResponse(key)
		if !ok {
			resp := httpwire.NewResponse(200, "OK", RenderParkedBody(host, region))
			profile := ProfileParkIntl
			if region == RegionIN && hashBool(host, "park-soft", 40) {
				profile = ProfileParkIN
			}
			profile.apply(resp, region)
			wire = resp.Marshal()
			s.storeResponse(key, wire)
		}
		c.Send(wire)
		s.finish(c, req)
		return
	}
	site, hosted := s.sites[host]
	if !hosted {
		// A server that does not host the requested domain — the
		// paper's remote-controlled hosts respond exactly like this.
		resp := httpwire.NewResponse(404, "Not Found", []byte("<html><body>No such site here</body></html>"))
		s.profile.apply(resp, region)
		c.Send(resp.Marshal())
		s.finish(c, req)
		return
	}
	s.fetches[host]++
	// The fetch counter shapes content only for dynamic sites; everything
	// else caches under fetch 0, one entry per (host, region).
	key := respKey{host: host, region: region}
	if site.Kind == KindDynamic {
		key.fetch = s.fetches[host]
	}
	wire, ok := s.cachedResponse(key)
	if !ok {
		resp := httpwire.NewResponse(200, "OK", RenderBody(PageSpec{
			Site: site, Region: region, Fetch: s.fetches[host],
		}))
		profile := s.profile
		if site.RegionalHeaders && region == RegionIN {
			// Regional edge running different software: different header
			// names.
			profile = ProfileCDNEdge
		}
		profile.apply(resp, region)
		wire = resp.Marshal()
		s.storeResponse(key, wire)
	}
	c.Send(wire)
	s.finish(c, req)
}

// finish closes the connection if the client asked for it.
func (s *Server) finish(c *tcpsim.Conn, req *httpwire.Request) {
	if v, ok := req.HeaderValue("Connection"); ok && v == "close" {
		c.Close()
	}
}
