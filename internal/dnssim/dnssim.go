// Package dnssim provides the DNS side of the simulation: an authoritative
// view of the simulated web (which address a domain has, per region), open
// recursive resolvers that ISPs run — some of them poisoned, answering
// censored domains with an ISP block-page address or a bogon — and a stub
// client for hosts that need lookups.
//
// The paper found DNS censorship in exactly two of the nine ISPs (MTNL and
// BSNL), implemented by poisoning the ISPs' own resolvers rather than by
// on-path injection; the Iterative Network Tracer variant that proves this
// (responses always come from the last hop) runs against these resolvers.
package dnssim

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/websim"
)

// Authority answers what a domain truly resolves to from a given region.
type Authority interface {
	Lookup(domain string, region websim.Region) ([]netip.Addr, dnswire.RCode)
}

// CatalogAuthority implements Authority from a websim catalog with filled
// per-region addresses.
type CatalogAuthority struct {
	Catalog *websim.Catalog
}

// Lookup resolves a domain the way the real DNS would: per-region CDN
// steering included.
func (a *CatalogAuthority) Lookup(domain string, region websim.Region) ([]netip.Addr, dnswire.RCode) {
	site, ok := a.Catalog.Site(domain)
	if !ok {
		return nil, dnswire.RCodeNXDomain
	}
	addr, ok := site.Addrs[region]
	if !ok {
		return nil, dnswire.RCodeServFail
	}
	return []netip.Addr{addr}, dnswire.RCodeNoError
}

// Poison describes how a poisoned resolver answers one censored domain.
type Poison struct {
	Addr netip.Addr // the manipulated answer (ISP block host or bogon)
}

// Resolver is one recursive resolver host.
type Resolver struct {
	host      *netsim.Host
	region    websim.Region
	authority Authority
	latency   time.Duration

	poison map[string]Poison

	// Queries and PoisonedAnswers count traffic for metrics.
	Queries         int
	PoisonedAnswers int
}

// NewResolver binds resolver logic to a host's UDP port 53.
func NewResolver(h *netsim.Host, region websim.Region, authority Authority, latency time.Duration) *Resolver {
	r := &Resolver{
		host: h, region: region, authority: authority, latency: latency,
		poison: make(map[string]Poison),
	}
	h.SetUDPHandler(53, r.handle)
	return r
}

// Host returns the resolver's host.
func (r *Resolver) Host() *netsim.Host { return r.host }

// Addr returns the resolver's address.
func (r *Resolver) Addr() netip.Addr { return r.host.Addr() }

// PoisonDomain makes the resolver answer domain with the given address.
func (r *Resolver) PoisonDomain(domain string, p Poison) { r.poison[domain] = p }

// Poisoned reports whether the resolver manipulates any domain.
func (r *Resolver) Poisoned() bool { return len(r.poison) > 0 }

// PoisonsDomain reports whether the resolver manipulates one domain.
func (r *Resolver) PoisonsDomain(domain string) bool {
	_, ok := r.poison[domain]
	return ok
}

// PoisonList returns the censored domains this resolver manipulates,
// sorted so the same configuration always lists the same way.
func (r *Resolver) PoisonList() []string {
	out := make([]string, 0, len(r.poison))
	for d := range r.poison {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Reset clears the traffic counters. The poison list is build-time
// configuration and stays.
func (r *Resolver) Reset() {
	r.Queries = 0
	r.PoisonedAnswers = 0
}

// handle answers one DNS query datagram.
func (r *Resolver) handle(pkt *netpkt.Packet) {
	q, err := dnswire.Parse(pkt.UDP.Payload)
	if err != nil || q.Response || len(q.Questions) == 0 {
		return
	}
	r.Queries++
	domain := q.Questions[0].Name
	var resp *dnswire.Message
	if p, bad := r.poison[domain]; bad {
		r.PoisonedAnswers++
		resp = q.Answer(dnswire.RCodeNoError, 60, p.Addr)
	} else {
		addrs, rcode := r.authority.Lookup(domain, r.region)
		resp = q.Answer(rcode, 300, addrs...)
	}
	payload, err := resp.Marshal()
	if err != nil {
		return
	}
	out := netpkt.NewUDP(r.host.Addr(), pkt.IP.Src, &netpkt.UDPDatagram{
		SrcPort: 53, DstPort: pkt.UDP.SrcPort, Payload: payload,
	})
	r.host.SendAfter(r.latency, out)
}
