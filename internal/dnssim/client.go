package dnssim

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netpkt"
	"repro/internal/netsim"
)

// Client is a stub resolver for one host. It supports synchronous lookups
// (driving the engine), fire-and-forget async queries for mass scans, and
// TTL-limited raw queries for the DNS variant of the Iterative Network
// Tracer.
type Client struct {
	host     *netsim.Host
	nextPort uint16
	nextID   uint16
}

// NewClient creates a stub resolver on the host.
func NewClient(h *netsim.Host) *Client {
	return &Client{host: h, nextPort: 20000, nextID: 1}
}

// Reset rewinds port and transaction-ID allocation to the
// just-constructed state. The response handlers registered on the host for
// in-flight queries are runtime state the host's own baseline restore
// clears (netsim.Host.RestoreBaseline).
func (c *Client) Reset() {
	c.nextPort = 20000
	c.nextID = 1
}

// alloc reserves a fresh ephemeral port and transaction ID.
func (c *Client) alloc() (uint16, uint16) {
	p, id := c.nextPort, c.nextID
	c.nextPort++
	if c.nextPort < 20000 {
		c.nextPort = 20000
	}
	c.nextID++
	return p, id
}

// send fires one query datagram and registers cb for the first response
// arriving on the query's port. ttl of 0 means the default 64.
func (c *Client) send(resolver netip.Addr, domain string, ttl uint8, cb func(*dnswire.Message, netip.Addr)) error {
	port, id := c.alloc()
	q := dnswire.NewQuery(id, domain)
	payload, err := q.Marshal()
	if err != nil {
		return err
	}
	c.host.SetUDPHandler(port, func(pkt *netpkt.Packet) {
		m, err := dnswire.Parse(pkt.UDP.Payload)
		if err != nil || m.ID != id || !m.Response {
			return
		}
		c.host.SetUDPHandler(port, nil)
		cb(m, pkt.IP.Src)
	})
	// Expire the handler so mass scans with mostly-dead targets do not
	// accumulate registrations.
	c.host.Engine().Schedule(30*time.Second, func() { c.host.SetUDPHandler(port, nil) })
	out := netpkt.NewUDP(c.host.Addr(), resolver, &netpkt.UDPDatagram{
		SrcPort: port, DstPort: 53, Payload: payload,
	})
	if ttl != 0 {
		out.IP.TTL = ttl
	}
	c.host.Send(out)
	return nil
}

// QueryAsync sends a query and invokes cb on the first matching response.
// Nothing is invoked on timeout; callers run the engine and harvest.
func (c *Client) QueryAsync(resolver netip.Addr, domain string, cb func(*dnswire.Message, netip.Addr)) {
	_ = c.send(resolver, domain, 0, cb)
}

// Query performs a blocking lookup, driving the engine until a response
// arrives or the timeout elapses.
func (c *Client) Query(resolver netip.Addr, domain string, timeout time.Duration) (*dnswire.Message, error) {
	var got *dnswire.Message
	if err := c.send(resolver, domain, 0, func(m *dnswire.Message, _ netip.Addr) { got = m }); err != nil {
		return nil, err
	}
	err := c.host.Engine().RunUntil(timeout, func() bool { return got != nil })
	if err != nil {
		return nil, fmt.Errorf("dnssim: query %s @%v: timeout", domain, resolver)
	}
	return got, nil
}

// ResolveA performs Query and extracts the A-record addresses.
func (c *Client) ResolveA(resolver netip.Addr, domain string, timeout time.Duration) ([]netip.Addr, dnswire.RCode, error) {
	m, err := c.Query(resolver, domain, timeout)
	if err != nil {
		return nil, 0, err
	}
	var addrs []netip.Addr
	for _, a := range m.Answers {
		addrs = append(addrs, a.Addr)
	}
	return addrs, m.RCode, nil
}

// TTLProbe sends a query with a limited IP TTL and reports what came back
// first: a DNS response (Answer non-nil, From set) or nothing before the
// timeout. The caller watches ICMP separately via the host's ICMP handler.
// This is the building block of the DNS tracer that distinguishes resolver
// poisoning (answers only from the final hop) from on-path injection
// (answers from intermediate hops).
func (c *Client) TTLProbe(resolver netip.Addr, domain string, ttl uint8, timeout time.Duration) (answer *dnswire.Message, from netip.Addr, ok bool) {
	var m *dnswire.Message
	var src netip.Addr
	_ = c.send(resolver, domain, ttl, func(resp *dnswire.Message, s netip.Addr) {
		m = resp
		src = s
	})
	_ = c.host.Engine().RunUntil(timeout, func() bool { return m != nil })
	if m == nil {
		return nil, netip.Addr{}, false
	}
	return m, src, true
}
