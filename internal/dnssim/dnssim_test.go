package dnssim

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/websim"
)

type fixture struct {
	eng      *sim.Engine
	net      *netsim.Network
	client   *Client
	chost    *netsim.Host
	resolver *Resolver
	cat      *websim.Catalog
	routers  []*netsim.Router
}

func newFixture(t *testing.T, hops int) *fixture {
	t.Helper()
	eng := sim.NewEngine(11)
	n := netsim.New(eng)
	routers := make([]*netsim.Router, hops)
	for i := range routers {
		routers[i] = n.AddRouter("r", 55, netip.AddrFrom4([4]byte{100, 64, byte(i), 1}))
		if i > 0 {
			n.Link(routers[i-1], routers[i], time.Millisecond)
		}
	}
	ch := n.AddHost(netip.MustParseAddr("10.1.0.2"), routers[0], time.Millisecond)
	rh := n.AddHost(netip.MustParseAddr("10.1.9.53"), routers[hops-1], time.Millisecond)
	n.Build()

	cat := websim.NewCatalog(100, 10)
	// Assign fake addresses so the authority can answer.
	for i, s := range cat.PBW {
		base := netip.AddrFrom4([4]byte{151, 10, byte(i / 250), byte(i%250 + 1)})
		s.Addrs[websim.RegionIN] = base
		s.Addrs[websim.RegionUS] = base
		s.Addrs[websim.RegionEU] = base
		if s.Kind == websim.KindCDN {
			s.Addrs[websim.RegionIN] = netip.AddrFrom4([4]byte{61, 50, 200, 1})
		}
	}
	auth := &CatalogAuthority{Catalog: cat}
	res := NewResolver(rh, websim.RegionIN, auth, time.Millisecond)
	return &fixture{
		eng: eng, net: n, client: NewClient(ch), chost: ch,
		resolver: res, cat: cat, routers: routers,
	}
}

func TestResolveHonest(t *testing.T) {
	f := newFixture(t, 3)
	var normal *websim.Site
	for _, s := range f.cat.PBW {
		if s.Kind == websim.KindNormal {
			normal = s
			break
		}
	}
	addrs, rcode, err := f.client.ResolveA(f.resolver.Addr(), normal.Domain, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != dnswire.RCodeNoError || len(addrs) != 1 || addrs[0] != normal.Addrs[websim.RegionIN] {
		t.Errorf("resolve = %v %v", addrs, rcode)
	}
}

func TestResolveRegional(t *testing.T) {
	f := newFixture(t, 3)
	var cdn *websim.Site
	for _, s := range f.cat.PBW {
		if s.Kind == websim.KindCDN {
			cdn = s
			break
		}
	}
	addrs, _, err := f.client.ResolveA(f.resolver.Addr(), cdn.Domain, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] != netip.MustParseAddr("61.50.200.1") {
		t.Errorf("IN resolver should return IN edge, got %v", addrs[0])
	}
}

func TestResolveNXDomain(t *testing.T) {
	f := newFixture(t, 3)
	_, rcode, err := f.client.ResolveA(f.resolver.Addr(), "no-such-site.invalid", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", rcode)
	}
}

func TestPoisonedResolver(t *testing.T) {
	f := newFixture(t, 3)
	victim := f.cat.PBW[0]
	blockIP := netip.MustParseAddr("10.1.255.1")
	f.resolver.PoisonDomain(victim.Domain, Poison{Addr: blockIP})
	addrs, rcode, err := f.client.ResolveA(f.resolver.Addr(), victim.Domain, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rcode != dnswire.RCodeNoError || addrs[0] != blockIP {
		t.Errorf("poisoned answer = %v %v", addrs, rcode)
	}
	if f.resolver.PoisonedAnswers != 1 {
		t.Errorf("PoisonedAnswers = %d", f.resolver.PoisonedAnswers)
	}
	// Non-poisoned domains still resolve honestly.
	other := f.cat.PBW[1]
	addrs, _, err = f.client.ResolveA(f.resolver.Addr(), other.Domain, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if addrs[0] == blockIP {
		t.Error("unpoisoned domain got the block IP")
	}
}

func TestQueryTimeout(t *testing.T) {
	f := newFixture(t, 3)
	deadResolver := netip.MustParseAddr("10.1.9.54") // nothing there
	_, err := f.client.Query(deadResolver, "x.com", 100*time.Millisecond)
	if err == nil {
		t.Error("query to dead resolver should time out")
	}
}

func TestQueryAsyncScan(t *testing.T) {
	f := newFixture(t, 3)
	responders := map[netip.Addr]bool{}
	targets := []netip.Addr{
		f.resolver.Addr(),
		netip.MustParseAddr("10.1.9.99"), // dead
		netip.MustParseAddr("10.1.9.98"), // dead
	}
	for _, dst := range targets {
		dst := dst
		f.client.QueryAsync(dst, f.cat.PBW[3].Domain, func(m *dnswire.Message, from netip.Addr) {
			responders[from] = true
		})
	}
	f.eng.RunFor(2 * time.Second)
	if len(responders) != 1 || !responders[f.resolver.Addr()] {
		t.Errorf("responders = %v", responders)
	}
}

// The DNS tracer primitive: with poisoning (not injection), TTL-limited
// queries yield answers only when the TTL reaches the resolver itself.
func TestTTLProbePoisoningSignature(t *testing.T) {
	f := newFixture(t, 4)
	victim := f.cat.PBW[0]
	f.resolver.PoisonDomain(victim.Domain, Poison{Addr: netip.MustParseAddr("10.1.255.1")})
	hops := f.net.HopsBetween(f.chost, f.resolver.Host())
	for ttl := 1; ttl < hops; ttl++ {
		if _, _, ok := f.client.TTLProbe(f.resolver.Addr(), victim.Domain, uint8(ttl), 300*time.Millisecond); ok {
			t.Errorf("ttl=%d: got a DNS answer before the final hop — looks like injection", ttl)
		}
	}
	m, from, ok := f.client.TTLProbe(f.resolver.Addr(), victim.Domain, uint8(hops), time.Second)
	if !ok {
		t.Fatal("no answer at full TTL")
	}
	if from != f.resolver.Addr() {
		t.Errorf("answer from %v, want resolver", from)
	}
	if len(m.Answers) != 1 {
		t.Errorf("answers = %v", m.Answers)
	}
}

func TestMismatchedIDIgnored(t *testing.T) {
	f := newFixture(t, 3)
	got := 0
	f.client.QueryAsync(f.resolver.Addr(), f.cat.PBW[0].Domain, func(m *dnswire.Message, from netip.Addr) { got++ })
	// Forge a response with the wrong transaction ID to the client's port.
	forged := dnswire.NewQuery(9999, f.cat.PBW[0].Domain).Answer(dnswire.RCodeNoError, 60, netip.MustParseAddr("6.6.6.6"))
	payload, _ := forged.Marshal()
	f.net.InjectAt(f.routers[1], netpkt.NewUDP(f.resolver.Addr(), f.chost.Addr(), &netpkt.UDPDatagram{
		SrcPort: 53, DstPort: 20000, Payload: payload,
	}))
	f.eng.RunFor(2 * time.Second)
	if got != 1 {
		t.Errorf("callbacks = %d, want 1 (forged ID must be ignored, real answer accepted)", got)
	}
}
