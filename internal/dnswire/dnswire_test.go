package dnswire

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.Example.COM.")
	b, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 0x1234 || m.Response || !m.RecursionDesired {
		t.Errorf("header mismatch: %+v", m)
	}
	if len(m.Questions) != 1 || m.Questions[0].Name != "www.example.com" {
		t.Errorf("question = %+v", m.Questions)
	}
	if m.Questions[0].Type != TypeA || m.Questions[0].Class != ClassIN {
		t.Errorf("qtype/qclass = %d/%d", m.Questions[0].Type, m.Questions[0].Class)
	}
}

func TestAnswerRoundTrip(t *testing.T) {
	q := NewQuery(7, "blocked.example.in")
	a1 := netip.AddrFrom4([4]byte{192, 0, 2, 1})
	a2 := netip.AddrFrom4([4]byte{192, 0, 2, 2})
	resp := q.Answer(RCodeNoError, 300, a1, a2)
	b, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Response || !m.RecursionAvailable || m.RCode != RCodeNoError {
		t.Errorf("response header: %+v", m)
	}
	if len(m.Answers) != 2 || m.Answers[0].Addr != a1 || m.Answers[1].Addr != a2 {
		t.Errorf("answers = %+v", m.Answers)
	}
	if m.Answers[0].Name != "blocked.example.in" || m.Answers[0].TTL != 300 {
		t.Errorf("answer rr = %+v", m.Answers[0])
	}
}

func TestNameCompressionUsed(t *testing.T) {
	q := NewQuery(1, "a-long-domain-name.example.org")
	resp := q.Answer(RCodeNoError, 60,
		netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		netip.AddrFrom4([4]byte{2, 2, 2, 2}),
		netip.AddrFrom4([4]byte{3, 3, 3, 3}))
	b, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// With compression each answer name is a 2-byte pointer; uncompressed
	// it would be 32 bytes. 3 answers uncompressed would exceed this bound.
	if len(b) > 12+32+4+3*(2+14) {
		t.Errorf("message not compressed: %d bytes", len(b))
	}
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m.Answers {
		if a.Name != "a-long-domain-name.example.org" {
			t.Errorf("decompressed name = %q", a.Name)
		}
	}
}

func TestNXDomain(t *testing.T) {
	q := NewQuery(9, "nonexistent.test")
	resp := q.Answer(RCodeNXDomain, 0)
	b, _ := resp.Marshal()
	m, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.RCode != RCodeNXDomain || len(m.Answers) != 0 {
		t.Errorf("nxdomain response = %+v", m)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		// header claiming one question but no body
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0},
		// label running past end
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 9, 'a'},
		// forward compression pointer
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0x20},
	}
	for i, b := range cases {
		if _, err := Parse(b); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestCompressionLoopRejected(t *testing.T) {
	// Pointer at offset 12 pointing to itself is a forward/self pointer.
	b := []byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 12, 0, 1, 0, 1}
	if _, err := Parse(b); err == nil {
		t.Error("self-pointing compression accepted")
	}
}

func TestLabelTooLong(t *testing.T) {
	q := NewQuery(1, strings.Repeat("x", 64)+".com")
	if _, err := q.Marshal(); err == nil {
		t.Error("64-byte label accepted")
	}
}

func TestRCodeStrings(t *testing.T) {
	if RCodeNXDomain.String() != "NXDOMAIN" || RCodeNoError.String() != "NOERROR" {
		t.Error("rcode strings wrong")
	}
}

// Property: query for any well-formed name round-trips.
func TestPropertyNameRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a well-formed name out of the fuzz bytes.
		var labels []string
		for i := 0; i < len(raw) && len(labels) < 6; i += 8 {
			end := i + 8
			if end > len(raw) {
				end = len(raw)
			}
			var sb strings.Builder
			for _, c := range raw[i:end] {
				sb.WriteByte("abcdefghijklmnopqrstuvwxyz0123456789-"[int(c)%37])
			}
			if sb.Len() > 0 {
				labels = append(labels, sb.String())
			}
		}
		if len(labels) == 0 {
			return true
		}
		name := strings.Join(labels, ".")
		name = strings.Trim(name, "-.")
		if name == "" || strings.Contains(name, "..") {
			return true
		}
		q := NewQuery(1, name)
		b, err := q.Marshal()
		if err != nil {
			return false
		}
		m, err := Parse(b)
		if err != nil {
			return false
		}
		return m.Questions[0].Name == canonical(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: answers with arbitrary IPv4 addresses round-trip.
func TestPropertyAnswerRoundTrip(t *testing.T) {
	f := func(id uint16, ip [4]byte, ttl uint32) bool {
		q := NewQuery(id, "site.example")
		resp := q.Answer(RCodeNoError, ttl, netip.AddrFrom4(ip))
		b, err := resp.Marshal()
		if err != nil {
			return false
		}
		m, err := Parse(b)
		if err != nil || len(m.Answers) != 1 {
			return false
		}
		return m.ID == id && m.Answers[0].Addr == netip.AddrFrom4(ip) && m.Answers[0].TTL == ttl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
