// Package dnswire implements the subset of the RFC 1035 DNS wire format the
// reproduction needs: A-record queries and responses with name compression.
// Both the simulated resolvers and the probe's DNS measurement code speak
// this format over simulated UDP, so a censor that injects or poisons
// responses must produce bytes a real stub resolver would accept.
package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// RCode is a DNS response code.
type RCode uint8

// Response codes used in the simulation.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeRefused  RCode = 5
)

func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE(%d)", uint8(r))
	}
}

// Record types and classes.
const (
	TypeA   uint16 = 1
	ClassIN uint16 = 1
)

// Question is one DNS question.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// ARecord is an answer-section A record.
type ARecord struct {
	Name string
	TTL  uint32
	Addr netip.Addr
}

// Message is a DNS message restricted to A queries/answers.
type Message struct {
	ID                 uint16
	Response           bool
	RecursionDesired   bool
	RecursionAvailable bool
	Authoritative      bool
	RCode              RCode
	Questions          []Question
	Answers            []ARecord
}

// NewQuery builds a recursive A query for name with the given transaction ID.
func NewQuery(id uint16, name string) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: canonical(name), Type: TypeA, Class: ClassIN}},
	}
}

// Answer builds the response to q carrying the given addresses. An empty
// addrs slice with RCodeNoError yields a NODATA answer.
func (m *Message) Answer(rcode RCode, ttl uint32, addrs ...netip.Addr) *Message {
	r := &Message{
		ID:                 m.ID,
		Response:           true,
		RecursionDesired:   m.RecursionDesired,
		RecursionAvailable: true,
		RCode:              rcode,
		Questions:          append([]Question(nil), m.Questions...),
	}
	if len(m.Questions) > 0 {
		for _, a := range addrs {
			r.Answers = append(r.Answers, ARecord{Name: m.Questions[0].Name, TTL: ttl, Addr: a})
		}
	}
	return r
}

// canonical lower-cases and strips any trailing dot.
func canonical(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// Marshal serializes the message to wire bytes, compressing answer names
// that repeat the question name.
func (m *Message) Marshal() ([]byte, error) {
	b := make([]byte, 12, 64)
	binary.BigEndian.PutUint16(b[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode) & 0x0f
	binary.BigEndian.PutUint16(b[2:4], flags)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(b[6:8], uint16(len(m.Answers)))

	nameOffsets := map[string]int{}
	var err error
	for _, q := range m.Questions {
		if b, err = appendName(b, q.Name, nameOffsets); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, q.Type)
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, a := range m.Answers {
		if b, err = appendName(b, a.Name, nameOffsets); err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint16(b, TypeA)
		b = binary.BigEndian.AppendUint16(b, ClassIN)
		b = binary.BigEndian.AppendUint32(b, a.TTL)
		b = binary.BigEndian.AppendUint16(b, 4)
		if !a.Addr.Is4() {
			return nil, fmt.Errorf("dnswire: A record with non-IPv4 address %v", a.Addr)
		}
		v4 := a.Addr.As4()
		b = append(b, v4[:]...)
	}
	return b, nil
}

// appendName appends name in wire format, emitting a compression pointer if
// the exact name was already written.
func appendName(b []byte, name string, offsets map[string]int) ([]byte, error) {
	name = canonical(name)
	if name == "" {
		return append(b, 0), nil
	}
	if off, ok := offsets[name]; ok && off < 0x3fff {
		return binary.BigEndian.AppendUint16(b, 0xc000|uint16(off)), nil
	}
	offsets[name] = len(b)
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			return nil, fmt.Errorf("dnswire: empty label in %q", name)
		}
		if len(label) > 63 {
			return nil, fmt.Errorf("dnswire: label too long in %q", name)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

// Parse decodes wire bytes into a Message. Unknown record types in the
// answer section are skipped, not rejected.
func Parse(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("dnswire: short message (%d bytes)", len(b))
	}
	m := &Message{ID: binary.BigEndian.Uint16(b[0:2])}
	flags := binary.BigEndian.Uint16(b[2:4])
	m.Response = flags&(1<<15) != 0
	m.Authoritative = flags&(1<<10) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0x0f)
	qd := int(binary.BigEndian.Uint16(b[4:6]))
	an := int(binary.BigEndian.Uint16(b[6:8]))

	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := parseName(b, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(b) {
			return nil, fmt.Errorf("dnswire: truncated question")
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off : off+2]),
			Class: binary.BigEndian.Uint16(b[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := parseName(b, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+10 > len(b) {
			return nil, fmt.Errorf("dnswire: truncated answer")
		}
		typ := binary.BigEndian.Uint16(b[off : off+2])
		ttl := binary.BigEndian.Uint32(b[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(b[off+8 : off+10]))
		off += 10
		if off+rdlen > len(b) {
			return nil, fmt.Errorf("dnswire: truncated rdata")
		}
		if typ == TypeA && rdlen == 4 {
			m.Answers = append(m.Answers, ARecord{
				Name: name, TTL: ttl,
				Addr: netip.AddrFrom4([4]byte(b[off : off+4])),
			})
		}
		off += rdlen
	}
	return m, nil
}

// parseName decodes a possibly-compressed name starting at off, returning
// the name and the offset just past it.
func parseName(b []byte, off int) (string, int, error) {
	var labels []string
	end := -1 // offset after the name in the original stream
	jumps := 0
	for {
		if off >= len(b) {
			return "", 0, fmt.Errorf("dnswire: name runs past message")
		}
		c := int(b[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			return strings.Join(labels, "."), end, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(b) {
				return "", 0, fmt.Errorf("dnswire: truncated compression pointer")
			}
			if end < 0 {
				end = off + 2
			}
			ptr := (c&0x3f)<<8 | int(b[off+1])
			if ptr >= off {
				return "", 0, fmt.Errorf("dnswire: forward compression pointer")
			}
			off = ptr
			if jumps++; jumps > 32 {
				return "", 0, fmt.Errorf("dnswire: compression loop")
			}
		case c&0xc0 != 0:
			return "", 0, fmt.Errorf("dnswire: bad label type %#x", c)
		default:
			if off+1+c > len(b) {
				return "", 0, fmt.Errorf("dnswire: truncated label")
			}
			labels = append(labels, string(b[off+1:off+1+c]))
			off += 1 + c
		}
	}
}
