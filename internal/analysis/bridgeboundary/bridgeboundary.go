// Package bridgeboundary enforces the netbridge concurrency contract:
// inside a bridge package — a goroutine-driven adapter seating real code
// on the single-threaded simulation — only functions whose doc comment
// carries //repolint:pump may call into the simulation packages. Every
// other function runs (or may run) on a foreign goroutine and must reach
// the sim by submitting a closure to the pump, never by calling it
// directly; a direct call is a data race against the engine.
//
// repro/netbridge is covered by construction; other packages opt in with
// a //repolint:bridge file marker. Calls into passive data packages
// (netpkt, dnswire, pcapwire) are fine anywhere — they hold no engine
// state. Function literals inherit the pump-ness of the declaration that
// lexically encloses them: a closure built inside a plain function is
// assumed to run wherever that function runs, and the common pattern of
// handing such a closure to the pump is expressed by putting the sim
// calls in a separate pump-marked method instead.
package bridgeboundary

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the bridge-boundary contract check.
var Analyzer = &analysis.Analyzer{
	Name: "bridgeboundary",
	Key:  "bridgeboundary",
	Doc:  "sim-package calls in bridge packages must sit in //repolint:pump functions",
	Run:  run,
}

// bridgePkgs are covered without a marker.
var bridgePkgs = map[string]bool{
	"repro/netbridge": true,
}

// simPkgs hold live engine state and may only be touched from the pump.
// The passive wire/data packages (netpkt, dnswire, pcapwire) are absent
// deliberately: encoding a packet or writing a pcap record is safe from
// any goroutine.
var simPkgs = map[string]bool{
	"repro/internal/sim":        true,
	"repro/internal/netsim":     true,
	"repro/internal/tcpsim":     true,
	"repro/internal/dnssim":     true,
	"repro/internal/websim":     true,
	"repro/internal/ispnet":     true,
	"repro/internal/middlebox":  true,
	"repro/internal/trafficgen": true,
}

func run(pass *analysis.Pass) error {
	if !bridgePkgs[pass.Pkg.Path()] && !pass.Dirs.Marked("bridge") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil || analysis.PumpFunc(d) {
					continue
				}
				checkBody(pass, d.Body, d.Name.Name)
			case *ast.GenDecl:
				// Package-level initializers (including func literals bound
				// to vars) never run on the pump.
				checkBody(pass, d, "package initializer")
			}
		}
	}
	return nil
}

// checkBody reports every call into a sim package found under n, which is
// known not to be pump context.
func checkBody(pass *analysis.Pass, n ast.Node, where string) {
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := callee(pass, call)
		if !ok {
			return true
		}
		pkg := fn.Pkg()
		if pkg == nil || !simPkgs[pkg.Path()] {
			return true
		}
		pass.Reportf(call.Pos(), "call to %s.%s outside a //repolint:pump function (in %s): simulation state may only be touched on the pump goroutine",
			shortPath(pkg.Path()), fn.Name(), where)
		return true
	})
}

// callee resolves a call expression to the *types.Func it invokes, if the
// callee is a named function or method. Calls through function-typed
// values (fields, parameters) resolve to variables, not funcs, and are
// skipped: the boundary is drawn where sim identifiers are named.
func callee(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}

func shortPath(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
