package bridgeboundary_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bridgeboundary"
)

func TestBridgeBoundary(t *testing.T) {
	analysistest.Run(t, bridgeboundary.Analyzer, "bridgeleak")
}

// TestNetbridgeClean pins the real bridge package to the contract: every
// sim-touching call sits in a //repolint:pump function.
func TestNetbridgeClean(t *testing.T) {
	analysistest.RunClean(t, bridgeboundary.Analyzer, "../../../netbridge", "repro/netbridge")
}
