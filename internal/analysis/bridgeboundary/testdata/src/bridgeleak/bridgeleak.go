// Package bridgeleak is the bridgeboundary fixture: a miniature bridge
// package that touches the simulation from every context the analyzer
// must distinguish — pump-marked functions (legal), plain functions and
// their closures (violations), package initializers (violations), calls
// through function-typed values (out of scope), and a waived hatch.
//
//repolint:bridge
package bridgeleak

import (
	"repro/internal/netpkt"
	"repro/internal/sim"
)

type bridge struct {
	eng  *sim.Engine
	poll func() sim.Time
}

// pumpStep runs on the pump goroutine and owns the engine.
//
//repolint:pump
func (b *bridge) pumpStep() sim.Time {
	b.eng.Schedule(1, func() {})
	return b.eng.Now()
}

// leak is a plain method: any goroutine may call it, so it must not
// touch the engine directly.
func (b *bridge) leak() sim.Time {
	return b.eng.Now() // want `call to sim\.Now outside a //repolint:pump function \(in leak\)`
}

// closureLeak shows that a closure inherits its enclosing declaration's
// context: the literal is built in a plain method, so its body is not
// pump context either.
func (b *bridge) closureLeak() func() int {
	return func() int {
		return b.eng.Pending() // want `call to sim\.Pending outside a //repolint:pump function \(in closureLeak\)`
	}
}

// pumpClosure is the legal version: the whole declaration is pump
// context, closures included.
//
//repolint:pump
func (b *bridge) pumpClosure() func() int {
	return func() int { return b.eng.Pending() }
}

// initLeak demonstrates that package-level initializers are never pump
// context.
var initLeak = func(e *sim.Engine) sim.Time {
	return e.Now() // want `call to sim\.Now outside a //repolint:pump function \(in package initializer\)`
}

// indirect calls through function-typed values are out of scope: the
// boundary is drawn where sim identifiers are named.
func (b *bridge) indirect() sim.Time { return b.poll() }

// passive data packages are safe from any goroutine.
func encode() int {
	var p netpkt.Packet
	raw, _ := p.Marshal()
	return len(raw)
}

// waived keeps one documented exception alive so the suppression path is
// exercised.
func (b *bridge) waived() int {
	//repolint:allow bridgeboundary -- fixture: documented off-pump read for the waiver path
	return b.eng.Pending()
}
