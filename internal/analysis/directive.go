package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive vocabulary. Directives are machine-readable comments of the
// form //repolint:<verb> and carry the contracts analyzers enforce:
//
//	//repolint:allow <key> -- <reason>
//	    Waives findings with that key on the same line or the line
//	    directly below (so the directive can sit above a declaration or
//	    trail the offending expression). The reason is mandatory; an
//	    allow without one is itself a finding.
//
//	//repolint:hotpath
//	    In a function's doc comment: marks the function as part of the
//	    steady-state packet path, opting it into hotpathalloc.
//
//	//repolint:deterministic
//	    Anywhere in a file: marks the whole package as deterministic,
//	    opting it into simdeterminism. The repo's simulation packages
//	    are built in; the marker exists for fixtures and new packages.
//
//	//repolint:public
//	    Anywhere in a file: marks the package as public API surface,
//	    opting it into apisurface.
//
//	//repolint:pump
//	    In a function's doc comment: marks the function as running on a
//	    bridge pump goroutine, where calling into the simulation packages
//	    is legal. Checked by bridgeboundary.
//
//	//repolint:bridge
//	    Anywhere in a file: marks the package as a bridge between real
//	    goroutines and the simulation, opting it into bridgeboundary.
//	    repro/netbridge is built in; the marker exists for fixtures.
const directivePrefix = "//repolint:"

// Allow is one parsed //repolint:allow directive.
type Allow struct {
	Key    string
	Reason string
	Pos    token.Position
	used   bool
}

// Directives is the parsed directive set of one package.
type Directives struct {
	// allows indexes allow directives by file name and line.
	allows map[string]map[int][]*Allow
	// marks holds package-opt-in markers ("deterministic", "public").
	marks map[string]bool
	// malformed collects directives the parser rejected, reported by the
	// runner as unsuppressable findings.
	malformed []Diagnostic
}

// Marked reports whether any file in the package carries the given marker
// directive.
func (d *Directives) Marked(name string) bool { return d.marks[name] }

// HotpathFunc reports whether fn's doc comment carries //repolint:hotpath.
func HotpathFunc(fn *ast.FuncDecl) bool { return funcMarked(fn, "hotpath") }

// PumpFunc reports whether fn's doc comment carries //repolint:pump.
func PumpFunc(fn *ast.FuncDecl) bool { return funcMarked(fn, "pump") }

func funcMarked(fn *ast.FuncDecl, verb string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directivePrefix+verb {
			return true
		}
	}
	return false
}

// parseDirectives scans every comment in the package's files. knownKeys
// maps valid allow keys (from the analyzer set) so typos are caught.
func parseDirectives(fset *token.FileSet, files []*ast.File, knownKeys map[string]bool) *Directives {
	d := &Directives{
		allows: map[string]map[int][]*Allow{},
		marks:  map[string]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, directivePrefix)
				verb, arg, _ := strings.Cut(rest, " ")
				switch verb {
				case "hotpath", "deterministic", "public", "pump", "bridge":
					if strings.TrimSpace(arg) != "" {
						d.malformed = append(d.malformed, Diagnostic{
							Analyzer: "repolint", Pos: pos,
							Message: "repolint:" + verb + " takes no arguments",
						})
						continue
					}
					d.marks[verb] = true
				case "allow":
					key, reason, ok := strings.Cut(strings.TrimSpace(arg), "--")
					key = strings.TrimSpace(key)
					reason = strings.TrimSpace(reason)
					switch {
					case key == "":
						d.malformed = append(d.malformed, Diagnostic{
							Analyzer: "repolint", Pos: pos,
							Message: "repolint:allow needs a key: //repolint:allow <key> -- <reason>",
						})
					case !knownKeys[key]:
						d.malformed = append(d.malformed, Diagnostic{
							Analyzer: "repolint", Pos: pos,
							Message: "repolint:allow names unknown key " + key + " (known: " + joinKeys(knownKeys) + ")",
						})
					case !ok || reason == "":
						d.malformed = append(d.malformed, Diagnostic{
							Analyzer: "repolint", Pos: pos,
							Message: "repolint:allow " + key + " is missing its reason: //repolint:allow " + key + " -- <reason>",
						})
					default:
						byLine := d.allows[pos.Filename]
						if byLine == nil {
							byLine = map[int][]*Allow{}
							d.allows[pos.Filename] = byLine
						}
						byLine[pos.Line] = append(byLine[pos.Line], &Allow{Key: key, Reason: reason, Pos: pos})
					}
				default:
					d.malformed = append(d.malformed, Diagnostic{
						Analyzer: "repolint", Pos: pos,
						Message: "unknown repolint directive //repolint:" + verb,
					})
				}
			}
		}
	}
	return d
}

// suppressed reports whether an allow directive waives diag: one with the
// matching key on the diagnostic's line or the line directly above. The
// matching directive is marked used so stale waivers can be reported.
func (d *Directives) suppressed(diag Diagnostic) bool {
	byLine := d.allows[diag.Pos.Filename]
	if byLine == nil || diag.Key == "" {
		return false
	}
	for _, line := range [2]int{diag.Pos.Line, diag.Pos.Line - 1} {
		for _, a := range byLine[line] {
			if a.Key == diag.Key {
				a.used = true
				return true
			}
		}
	}
	return false
}

// unused returns diagnostics for allow directives that waived nothing
// among the analyzers whose keys are in ranKeys — a stale waiver is a
// contract comment that no longer matches the code.
func (d *Directives) unused(ranKeys map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, byLine := range d.allows {
		for _, allows := range byLine {
			for _, a := range allows {
				if !a.used && ranKeys[a.Key] {
					out = append(out, Diagnostic{
						Analyzer: "repolint", Pos: a.Pos,
						Message: "unused //repolint:allow " + a.Key + " directive (nothing to waive here)",
					})
				}
			}
		}
	}
	return out
}

func joinKeys(keys map[string]bool) string {
	out := make([]string, 0, len(keys))
	for k := range keys {
		out = append(out, k)
	}
	// Deterministic order for error messages.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return strings.Join(out, ", ")
}
