// Package simdet is the simdeterminism fixture: a package opted into the
// deterministic contract via the file directive, with one violation and
// one allowed form of each banned pattern.
//
//repolint:deterministic
package simdet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/obs"
)

type engine struct{}

func (engine) Schedule(d time.Duration, fn func()) {}
func (engine) Now() time.Duration                  { return 0 }

// wallClock reads the machine clock — the canonical rerun-breaker.
func wallClock() time.Duration {
	t := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(t) // want `time.Since reads the wall clock`
}

// virtualClock uses the engine's clock and duration arithmetic: allowed.
func virtualClock(e engine) time.Duration {
	return e.Now() + 5*time.Millisecond
}

// globalRand draws from the process-global source.
func globalRand() int {
	return rand.Intn(10) // want `rand.Intn draws from the global random source`
}

// seededRand builds and uses an explicitly seeded source: allowed.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// wallStamp stamps telemetry with the machine clock through the obs
// escape hatch — banned in deterministic packages like the direct read.
func wallStamp(tr *obs.Tracer) {
	tr.SetClock(obs.WallClock) // want `obs.WallClock reads the machine clock`
}

// virtualStamp would wire an engine clock instead: allowed.
func virtualStamp(tr *obs.Tracer, e engine) {
	tr.SetClock(func() int64 { return int64(e.Now()) })
}

// waivedClock shows the escape hatch: the waiver names its reason.
func waivedClock() time.Time {
	//repolint:allow determinism -- build-time stamp only, never scheduled on
	return time.Now()
}

// scheduleInMapOrder schedules an event per map entry: event order
// follows Go's randomized map iteration.
func scheduleInMapOrder(e engine, m map[string]time.Duration) {
	for _, d := range m {
		e.Schedule(d, nil) // want `Schedule inside a map range`
	}
}

// scheduleSorted iterates a sorted key copy: allowed.
func scheduleSorted(e engine, m map[string]time.Duration) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Schedule(m[k], nil)
	}
}

// collectUnsorted builds output in map order and never sorts it.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration order`
	}
	return out
}

// printInMapOrder writes output from inside the range.
func printInMapOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order`
	}
}
