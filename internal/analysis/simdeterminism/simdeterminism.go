// Package simdeterminism enforces the byte-identical-rerun contract of
// the simulation packages: no wall clocks, no global random source, and
// no map iteration order feeding scheduling or output.
//
// The deterministic world — engine, packet network, TCP/DNS/web
// simulators, middleboxes, world builder and probe — must produce the
// same measurement bytes for the same seed on every run; that is what
// the parallel-vs-sequential campaign tests pin and what the paper's
// methodology (repeated scans diffed across time) presumes. The three
// banned patterns are exactly the ways Go code silently breaks that:
// time.Now and friends read the machine's clock instead of the engine's
// virtual one, package-level math/rand draws from a process-global
// source seeded who-knows-when, and ranging over a map schedules or
// emits in an order Go deliberately randomizes per run.
package simdeterminism

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the simdeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Key:  "determinism",
	Doc: "forbid wall clocks, global math/rand and map-order scheduling/output " +
		"in the deterministic simulation packages",
	Run: run,
}

// deterministicPkgs is the built-in opt-in set: everything that runs
// inside a sim.Engine callback or builds the world it runs in. Other
// packages opt in with a //repolint:deterministic file directive.
var deterministicPkgs = map[string]bool{
	"repro/internal/sim":        true,
	"repro/internal/netsim":     true,
	"repro/internal/tcpsim":     true,
	"repro/internal/dnssim":     true,
	"repro/internal/websim":     true,
	"repro/internal/middlebox":  true,
	"repro/internal/ispnet":     true,
	"repro/internal/probe":      true,
	"repro/internal/trafficgen": true,
	// The telemetry layer feeds instruments and spans from inside engine
	// callbacks; a wall-clock stamp there would differ per rerun.
	"repro/obs": true,
}

// wallClockFuncs are the time package functions that read or wait on the
// machine clock. Duration arithmetic and formatting stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// seededConstructors are the math/rand package-level functions that build
// explicitly seeded sources — the only sanctioned way to randomness.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// scheduleNames are method names that hand work to the engine or network;
// calling one inside a map range makes event order follow map order.
var scheduleNames = map[string]bool{
	"Schedule": true, "ScheduleCall": true, "Send": true, "SendAfter": true,
	"SendFromHost": true, "InjectAt": true,
}

// sortNames are the sort/slices calls that make collect-then-sort legal.
var sortNames = map[string]bool{
	"Sort": true, "Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "SortFunc": true,
	"SortStableFunc": true,
}

func run(pass *analysis.Pass) error {
	if !deterministicPkgs[pass.Pkg.Path()] && !pass.Dirs.Marked("deterministic") {
		return nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods are fine: rand.Rand values are seeded per engine
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(id.Pos(), "time.%s reads the wall clock; deterministic packages must use the engine's virtual clock (sim.Engine.Now)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededConstructors[fn.Name()] {
				pass.Reportf(id.Pos(), "%s.%s draws from the global random source; use the engine's seeded source (sim.Engine.Rand)", fn.Pkg().Name(), fn.Name())
			}
		case "repro/obs":
			// obs.WallClock is the telemetry layer's waived time.Now: legal
			// for process-side tracers, a rerun-breaker anywhere a span or
			// metric stamp feeds deterministic state.
			if fn.Name() == "WallClock" {
				pass.Reportf(id.Pos(), "obs.WallClock reads the machine clock; sim-side spans and metric stamps must use engine virtual time (sim.Engine.Now)")
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd)
		}
	}
	return nil
}

// checkMapRanges flags range-over-map loops in fd whose bodies schedule
// events or build ordered output, unless the output is sorted afterwards
// in the same function (the collect-then-sort idiom).
func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if scheduleNames[sel.Sel.Name] {
						pass.Reportf(n.Pos(), "%s inside a map range schedules events in map iteration order; iterate a sorted copy of the keys", sel.Sel.Name)
						return true
					}
					if isOutputCall(pass, sel) {
						pass.Reportf(n.Pos(), "writing output inside a map range emits in map iteration order; iterate a sorted copy of the keys")
						return true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
						continue
					}
					target := types.ExprString(n.Lhs[i])
					if !sortedLater(pass, fd, target) {
						pass.Reportf(n.Pos(), "appending to %s inside a map range builds output in map iteration order; sort it before use or iterate sorted keys", target)
					}
				}
			}
			return true
		})
		return true
	})
}

// isOutputCall reports whether sel is a fmt print call or an io-style
// Write/WriteString/WriteByte method — order-sensitive output.
func isOutputCall(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		// Only method calls count: sel.X is a value, not a package name.
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return false
			}
		}
		return true
	}
	if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		return true
	}
	return false
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedLater reports whether fd contains a sort/slices call whose first
// argument is (or contains) target — the collect-then-sort idiom that
// makes appending in map order harmless.
func sortedLater(pass *analysis.Pass, fd *ast.FuncDecl, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortNames[sel.Sel.Name] {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, isPkg := pass.TypesInfo.Uses[pkg].(*types.PkgName); !isPkg ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
