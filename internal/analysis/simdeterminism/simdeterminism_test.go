package simdeterminism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, simdeterminism.Analyzer, "simdet")
}
