package timerbyvalue_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/timerbyvalue"
)

func TestTimerByValue(t *testing.T) {
	analysistest.Run(t, timerbyvalue.Analyzer, "timerptr")
}
