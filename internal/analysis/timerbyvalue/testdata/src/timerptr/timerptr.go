// Package timerptr is the timerbyvalue fixture: every way of turning the
// value-only sim.Timer handle into a pointer, next to the allowed
// value-copy idioms.
package timerptr

import (
	"time"

	"repro/internal/sim"
)

// pinned stores the handle behind a pointer, pinning one event's handle
// across engine resets.
type pinned struct {
	t *sim.Timer // want `\*sim.Timer in a type`
}

// stopLater takes the handle by pointer for no reason.
func stopLater(t *sim.Timer) { // want `\*sim.Timer in a type`
	t.Stop()
}

// escape takes the address of a live handle.
func escape(eng *sim.Engine) *sim.Timer { // want `\*sim.Timer in a type`
	tm := eng.Schedule(time.Millisecond, noop)
	return &tm // want `taking the address of a sim.Timer`
}

// fresh builds a pointer handle from the builtin.
func fresh() {
	t := new(sim.Timer) // want `new\(sim.Timer\) makes a pointer handle`
	t.Stop()
}

// byValue is the intended shape: copy freely, Stop on stale copies is safe.
func byValue(eng *sim.Engine) bool {
	tm := eng.Schedule(time.Millisecond, noop)
	cp := tm
	return cp.Stop()
}

// held stores the handle by value: allowed.
type held struct {
	t sim.Timer
}

// waived shows the escape hatch with its mandatory reason.
func waived(t sim.Timer) {
	//repolint:allow timer -- exercising the waiver path in the fixture
	p := &t
	_ = p
}

func noop() {}
