// Package timerbyvalue enforces sim.Timer's value-only design: the
// handle is a generation-counted (engine, slot, gen) triple, and Stop on
// a stale copy is already safe — so taking its address, storing *Timer
// fields, or passing *Timer parameters buys nothing and reintroduces
// exactly the per-event pointer pinning the arena rewrite removed.
// Timers are copied freely; a pointer would let one event's handle alias
// another's slot across a Reset.
package timerbyvalue

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the timerbyvalue pass.
var Analyzer = &analysis.Analyzer{
	Name: "timerbyvalue",
	Key:  "timer",
	Doc:  "forbid *sim.Timer: the generation-counted handle is value-only by design",
	Run:  run,
}

const simPkgPath = "repro/internal/sim"

func isSimTimer(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Timer" && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND && isSimTimer(pass.TypesInfo.TypeOf(n.X)) {
					pass.Reportf(n.Pos(), "taking the address of a sim.Timer; the handle is value-only (copy it, Stop on stale copies is safe)")
				}
			case *ast.StarExpr:
				tv, ok := pass.TypesInfo.Types[n]
				if !ok || !tv.IsType() {
					return true
				}
				if ptr, ok := tv.Type.(*types.Pointer); ok && isSimTimer(ptr.Elem()) {
					pass.Reportf(n.Pos(), "*sim.Timer in a type; the handle is value-only (store and pass sim.Timer by value)")
				}
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || id.Name != "new" || len(n.Args) != 1 {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.IsType() && isSimTimer(tv.Type) {
					pass.Reportf(n.Pos(), "new(sim.Timer) makes a pointer handle; the zero Timer value is already valid")
				}
			}
			return true
		})
	}
	return nil
}
