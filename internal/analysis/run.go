package analysis

import "sort"

// Run executes the analyzers over one loaded package: parse directives,
// collect findings, apply //repolint:allow suppression, and report both
// malformed directives and stale waivers as findings of their own. The
// returned diagnostics are position-sorted.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	keys := map[string]bool{}
	for _, a := range analyzers {
		keys[a.Key] = true
	}
	dirs := parseDirectives(pkg.Fset, pkg.Files, keys)

	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			Dirs:      dirs,
			report:    func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}

	out := make([]Diagnostic, 0, len(raw))
	for _, d := range raw {
		if !dirs.suppressed(d) {
			out = append(out, d)
		}
	}
	out = append(out, dirs.malformed...)
	out = append(out, dirs.unused(keys)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
