// Package sinkcontract enforces the Drain-serializes contract on
// censor.Sink implementations: Stream.Drain delivers results one at a
// time from a single goroutine, which is the only reason JSONLSink and
// CSVSink need no locks. A Write that spawns goroutines re-introduces
// the concurrency Drain exists to remove (and races the Flush that
// follows the last Write); a Write that mutates package-level state
// shares it with every other sink instance and campaign in the process.
//
// The same contract covers the batch path: censor.BatchSink's
// WriteBatch is called from the same single Drain goroutine, one task
// batch at a time, so WriteBatch implementations are held to the same
// no-goroutine / no-package-level-mutation rules as Write.
package sinkcontract

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the sinkcontract pass.
var Analyzer = &analysis.Analyzer{
	Name: "sinkcontract",
	Key:  "sink",
	Doc: "forbid goroutine spawns and package-level mutation inside " +
		"censor.Sink Write and censor.BatchSink WriteBatch implementations " +
		"(Stream.Drain serializes both)",
	Run: run,
}

const censorPkgPath = "repro/censor"

func run(pass *analysis.Pass) error {
	sink := sinkInterface(pass.Pkg, "Sink")
	if sink == nil {
		return nil
	}
	// BatchSink postdates Sink; resolve it independently so the analyzer
	// degrades to Write-only checking against an older censor package.
	batch := sinkInterface(pass.Pkg, "BatchSink")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			var iface *types.Interface
			var label string
			switch fd.Name.Name {
			case "Write":
				iface, label = sink, "Sink.Write"
			case "WriteBatch":
				iface, label = batch, "BatchSink.WriteBatch"
			default:
				continue
			}
			if iface == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv()
			if recv == nil || !implementsSink(recv.Type(), iface) {
				continue
			}
			checkWrite(pass, fd, label)
		}
	}
	return nil
}

// sinkInterface resolves the named censor interface (Sink, BatchSink)
// from the package under analysis or its direct imports; nil when the
// package cannot implement it.
func sinkInterface(pkg *types.Package, name string) *types.Interface {
	src := pkg
	if pkg.Path() != censorPkgPath {
		src = nil
		for _, imp := range pkg.Imports() {
			if imp.Path() == censorPkgPath {
				src = imp
				break
			}
		}
	}
	if src == nil {
		return nil
	}
	tn, ok := src.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// implementsSink reports whether the receiver's type (or its pointer)
// satisfies censor.Sink.
func implementsSink(recv types.Type, sink *types.Interface) bool {
	if types.Implements(recv, sink) {
		return true
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), sink)
	}
	return false
}

// checkWrite walks one Write or WriteBatch implementation, including
// nested func literals, for contract violations. label names the
// interface method in diagnostics ("Sink.Write", "BatchSink.WriteBatch").
func checkWrite(pass *analysis.Pass, fd *ast.FuncDecl, label string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s spawns a goroutine; Drain serializes writes and Flush follows the last Write — finish the work inline", label)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "AfterFunc" {
				if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
					if p := obj.Pkg().Path(); p == "time" || p == "context" {
						pass.Reportf(n.Pos(), "%s.AfterFunc inside %s runs its callback on a new goroutine after Drain has moved on", obj.Pkg().Name(), label)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := packageLevelTarget(pass, lhs); v != nil {
					pass.Reportf(lhs.Pos(), "%s mutates package-level %s; sink state must live on the sink instance", label, v.Name())
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(pass, n.X); v != nil {
				pass.Reportf(n.X.Pos(), "%s mutates package-level %s; sink state must live on the sink instance", label, v.Name())
			}
		}
		return true
	})
}

// packageLevelTarget resolves the base identifier of an assignment target
// and returns the variable when it is package-level (directly, or the
// base of a field/index/pointer expression).
func packageLevelTarget(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[x].(*types.Var)
			if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return nil
			}
			return v
		default:
			return nil
		}
	}
}
