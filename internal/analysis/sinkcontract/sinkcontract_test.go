package sinkcontract_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sinkcontract"
)

func TestSinkContract(t *testing.T) {
	analysistest.Run(t, sinkcontract.Analyzer, "sinkgo")
}
