// Package sinkgo is the sinkcontract fixture: Sink implementations that
// break the Drain-serializes contract, next to a compliant one and a
// Write method on a type that is not a Sink at all.
package sinkgo

import (
	"time"

	"repro/censor"
)

// total is the package-level state a well-behaved sink must not touch.
var total int

// asyncSink violates the contract three ways.
type asyncSink struct {
	n int
}

func (s *asyncSink) Write(r censor.Result) error {
	go func() { // want `Sink.Write spawns a goroutine`
		s.n++
	}()
	time.AfterFunc(time.Millisecond, s.flush) // want `time.AfterFunc inside Sink.Write`
	total++                                   // want `mutates package-level total`
	return nil
}

func (s *asyncSink) Flush() error { return nil }

func (s *asyncSink) flush() {}

// countSink keeps all state on the instance: allowed.
type countSink struct {
	n     int
	byDom map[string]int
}

func (s *countSink) Write(r censor.Result) error {
	s.n++
	if s.byDom == nil {
		s.byDom = make(map[string]int)
	}
	s.byDom[r.Domain]++
	return nil
}

func (s *countSink) Flush() error { return nil }

// notASink has a Write method but no Flush, so it does not implement
// censor.Sink and the contract does not apply.
type notASink struct{}

func (notASink) Write(r censor.Result) error {
	go func() {}()
	total++
	return nil
}

// waivedSink shows the escape hatch with its mandatory reason.
type waivedSink struct{}

func (waivedSink) Write(r censor.Result) error {
	//repolint:allow sink -- exercising the waiver path in the fixture
	go func() {}()
	return nil
}

func (waivedSink) Flush() error { return nil }

// asyncBatchSink implements censor.BatchSink; its WriteBatch breaks the
// same contract Write is held to.
type asyncBatchSink struct {
	n int
}

func (s *asyncBatchSink) Write(r censor.Result) error { return nil }

func (s *asyncBatchSink) WriteBatch(rs []censor.Result) error {
	go func() { // want `BatchSink.WriteBatch spawns a goroutine`
		s.n += len(rs)
	}()
	time.AfterFunc(time.Millisecond, s.flush) // want `time.AfterFunc inside BatchSink.WriteBatch`
	total += len(rs)                          // want `BatchSink.WriteBatch mutates package-level total`
	return nil
}

func (s *asyncBatchSink) Flush() error { return nil }

func (s *asyncBatchSink) flush() {}

// batchCountSink keeps all state on the instance: allowed on both faces.
type batchCountSink struct {
	n, batches int
}

func (s *batchCountSink) Write(r censor.Result) error { s.n++; return nil }

func (s *batchCountSink) WriteBatch(rs []censor.Result) error {
	s.batches++
	s.n += len(rs)
	return nil
}

func (s *batchCountSink) Flush() error { return nil }

// notABatchSink has a WriteBatch method but no Write/Flush, so it does
// not implement censor.BatchSink and the contract does not apply.
type notABatchSink struct{}

func (notABatchSink) WriteBatch(rs []censor.Result) error {
	go func() {}()
	total++
	return nil
}
