package apisurface_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/apisurface"
)

func TestAPISurface(t *testing.T) {
	analysistest.Run(t, apisurface.Analyzer, "apileak")
}

// TestNetbridgeClean pins the newest public package to the surface
// contract: netbridge exports only stdlib and repro/censor types.
func TestNetbridgeClean(t *testing.T) {
	analysistest.RunClean(t, apisurface.Analyzer, "../../../netbridge", "repro/netbridge")
}
