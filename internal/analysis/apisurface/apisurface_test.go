package apisurface_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/apisurface"
)

func TestAPISurface(t *testing.T) {
	analysistest.Run(t, apisurface.Analyzer, "apileak")
}
