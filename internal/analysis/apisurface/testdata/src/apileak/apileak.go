// Package apileak is the apisurface fixture: a package opted into the
// public-surface contract that leaks repro/internal types every way the
// analyzer must catch, next to clean declarations and a waived hatch.
//
//repolint:public
package apileak

import (
	"repro/internal/netpkt"
	"repro/internal/sim"
)

// NewLeaky returns an internal engine to any importer.
func NewLeaky() *sim.Engine { // want `exported func NewLeaky references internal type repro/internal/sim\.Engine`
	return nil
}

// DefaultPool is an exported var of an internal type.
var DefaultPool *netpkt.BufPool // want `exported var DefaultPool references internal type repro/internal/netpkt\.BufPool`

// LeakySession exposes the engine through an exported field.
type LeakySession struct {
	Eng  *sim.Engine // want `exported field LeakySession\.Eng references internal type repro/internal/sim\.Engine`
	name string
}

// Prober leaks through an interface method signature.
type Prober interface {
	Attach(e *sim.Engine) // want `exported method Prober\.Attach references internal type repro/internal/sim\.Engine`
}

// Defended is declared directly from an internal type.
type Defended sim.Engine // want `exported type Defended is declared from internal type repro/internal/sim\.Engine`

// Session keeps the engine private and leaks it only through an exported
// method.
type Session struct {
	eng *sim.Engine
}

// Engine hands the private engine out.
func (s *Session) Engine() *sim.Engine { // want `exported method Session\.Engine references internal type repro/internal/sim\.Engine`
	return s.eng
}

// Run is a clean exported method: builtin types only.
func (s *Session) Run(steps int) error { return nil }

// Clean is a fully public-shaped type.
type Clean struct {
	Name    string
	Blocked bool
}

// newEngine is unexported; internal types are fine below the surface.
func newEngine() *sim.Engine { return nil }

// Escape mirrors the documented oracle hatches (Session.World,
// Vantage.Probe): the waiver carries its reason at the declaration.
//
//repolint:allow apisurface -- fixture hatch mirroring the censor oracle accessors
func Escape() *sim.Engine { return nil }
