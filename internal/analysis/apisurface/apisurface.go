// Package apisurface enforces the clean public surface of the censor,
// monitor, and netbridge packages: no repro/internal type may appear in
// an exported signature, exported struct field, exported var, or type
// declaration.
// The option/scenario layer exists precisely so external callers can
// build any world from JSON alone; an internal type in the surface would
// couple them to packages the module forbids them to import.
//
// It is the analyzer form of the hand-rolled AST walk that used to live
// in censor/scenario_test.go. The documented oracle escape hatches —
// Session.World, Vantage.World, Vantage.Probe — carry explicit
// //repolint:allow apisurface waivers at their declarations, so the
// exceptions are visible in the source they except.
package apisurface

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the apisurface pass.
var Analyzer = &analysis.Analyzer{
	Name: "apisurface",
	Key:  "apisurface",
	Doc: "forbid repro/internal types in the exported surface of the public " +
		"censor, monitor, and netbridge packages",
	Run: run,
}

// publicPkgs is the built-in opt-in set; other packages opt in with a
// //repolint:public file directive.
var publicPkgs = map[string]bool{
	"repro/censor":    true,
	"repro/monitor":   true,
	"repro/netbridge": true,
}

func run(pass *analysis.Pass) error {
	if !publicPkgs[pass.Pkg.Path()] && !pass.Dirs.Marked("public") {
		return nil
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			reportLeaks(pass, o.Pos(), "func "+name, o.Type())
		case *types.Var:
			reportLeaks(pass, o.Pos(), "var "+name, o.Type())
		case *types.Const:
			reportLeaks(pass, o.Pos(), "const "+name, o.Type())
		case *types.TypeName:
			checkTypeName(pass, o)
		}
	}
	// type Foo = internal.Bar / type Foo internal.Bar erase the reference
	// in the type structure, so catch direct named RHS at the AST level.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				rhs := ts.Type
				if star, ok := rhs.(*ast.StarExpr); ok {
					rhs = star.X
				}
				if sel, ok := rhs.(*ast.SelectorExpr); ok {
					if tn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); ok && internalPkg(tn.Pkg()) {
						pass.Reportf(ts.Name.Pos(), "exported type %s is declared from internal type %s", ts.Name.Name, typeString(tn.Type()))
					}
				}
			}
		}
	}
	return nil
}

// checkTypeName walks an exported named type's public face: exported (and
// embedded) struct fields, exported interface methods, the structure of
// other underlying types, and every exported method's signature.
func checkTypeName(pass *analysis.Pass, tn *types.TypeName) {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		// Alias: the aliased type is the whole surface.
		reportLeaks(pass, tn.Pos(), "type "+tn.Name(), tn.Type())
		return
	}
	name := tn.Name()
	switch u := named.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() && !f.Embedded() {
				continue
			}
			reportLeaks(pass, f.Pos(), "field "+name+"."+f.Name(), f.Type())
		}
	case *types.Interface:
		for i := 0; i < u.NumExplicitMethods(); i++ {
			m := u.ExplicitMethod(i)
			if m.Exported() {
				reportLeaks(pass, m.Pos(), "method "+name+"."+m.Name(), m.Type())
			}
		}
	default:
		reportLeaks(pass, tn.Pos(), "type "+name, named.Underlying())
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Exported() {
			reportLeaks(pass, m.Pos(), "method "+name+"."+m.Name(), m.Type())
		}
	}
}

// reportLeaks reports every internal named type reachable through t's
// structure (stopping at named types, which are surfaces of their own).
func reportLeaks(pass *analysis.Pass, pos token.Pos, what string, t types.Type) {
	for _, leak := range collectLeaks(t, map[types.Type]bool{}) {
		pass.Reportf(pos, "exported %s references internal type %s", what, leak)
	}
}

func collectLeaks(t types.Type, seen map[types.Type]bool) []string {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if seen[t] {
		return nil
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if internalPkg(t.Obj().Pkg()) {
			return []string{typeString(t)}
		}
		return nil
	case *types.Pointer:
		return collectLeaks(t.Elem(), seen)
	case *types.Slice:
		return collectLeaks(t.Elem(), seen)
	case *types.Array:
		return collectLeaks(t.Elem(), seen)
	case *types.Chan:
		return collectLeaks(t.Elem(), seen)
	case *types.Map:
		return append(collectLeaks(t.Key(), seen), collectLeaks(t.Elem(), seen)...)
	case *types.Signature:
		var out []string
		for i := 0; i < t.Params().Len(); i++ {
			out = append(out, collectLeaks(t.Params().At(i).Type(), seen)...)
		}
		for i := 0; i < t.Results().Len(); i++ {
			out = append(out, collectLeaks(t.Results().At(i).Type(), seen)...)
		}
		return out
	case *types.Struct:
		var out []string
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if f.Exported() || f.Embedded() {
				out = append(out, collectLeaks(f.Type(), seen)...)
			}
		}
		return out
	case *types.Interface:
		var out []string
		for i := 0; i < t.NumEmbeddeds(); i++ {
			out = append(out, collectLeaks(t.EmbeddedType(i), seen)...)
		}
		for i := 0; i < t.NumExplicitMethods(); i++ {
			if m := t.ExplicitMethod(i); m.Exported() {
				out = append(out, collectLeaks(m.Type(), seen)...)
			}
		}
		return out
	}
	return nil
}

func internalPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return strings.Contains(pkg.Path(), "/internal/") || strings.HasSuffix(pkg.Path(), "/internal")
}

func typeString(t types.Type) string {
	return types.TypeString(t, nil)
}
