// Package hotpath is the hotpathalloc fixture. forwardClosure reproduces
// the exact per-hop closure-capture pattern the PR 5 hot-path rewrite
// eliminated (Schedule with a func literal capturing the packet), so a
// regression to it is caught at lint time rather than by the alloc
// benchmark gate.
package hotpath

import (
	"fmt"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
)

type host struct{ name string }

func deliver(a, b any) {}

// deliverFn is the long-lived dispatcher ScheduleCall routes through.
var deliverFn = deliver

// forwardClosure is the pre-PR-5 shape: every forwarded packet allocates
// a closure capturing h and pkt.
//
//repolint:hotpath
func forwardClosure(eng *sim.Engine, h *host, pkt *netpkt.Packet) {
	eng.Schedule(time.Millisecond, func() { // want `func literal allocates a closure`
		deliver(h, pkt)
	})
}

// forwardDispatch is the rewritten shape: inline args, no closure.
//
//repolint:hotpath
func forwardDispatch(eng *sim.Engine, h *host, pkt *netpkt.Packet) {
	eng.ScheduleCall(time.Millisecond, deliverFn, h, pkt)
}

// formatOnHotPath hits the remaining three banned patterns.
//
//repolint:hotpath
func formatOnHotPath(h *host, n int) []byte {
	msg := fmt.Sprintf("host %s", h.name) // want `fmt.Sprintf allocates`
	msg = msg + h.name                    // want `string concatenation`
	msg += "!"                            // want `string concatenation`
	buf := make([]byte, n)                // want `make\(\[\]byte\) on the hot path`
	return append(buf, msg...)
}

// pooledBuffer draws from the pool; the pool's own refill is the one
// sanctioned make([]byte), waived with a reasoned allow.
//
//repolint:hotpath
func pooledBuffer(pool *netpkt.BufPool, n int) []byte {
	buf := pool.Get(n)
	if cap(buf) < n {
		//repolint:allow alloc -- fallback when the request exceeds the poolable maximum
		buf = make([]byte, 0, n)
	}
	return buf
}

// unmarked is not on the hot path: the same patterns are fine here.
func unmarked(eng *sim.Engine, h *host) string {
	eng.Schedule(time.Millisecond, func() { deliver(h, nil) })
	b := make([]byte, 8)
	return fmt.Sprintf("%s %d", h.name, len(b)) + "?"
}
