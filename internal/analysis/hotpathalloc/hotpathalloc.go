// Package hotpathalloc enforces the zero-alloc contract on functions
// annotated //repolint:hotpath — the steady-state packet forward and
// delivery path PR 5 rewrote around the event arena and buffer pool.
//
// The CI benchmark gate (BenchmarkPacketForward must report 0 allocs/op)
// catches a regression after the fact; this analyzer names the offending
// line at lint time. Inside a hotpath function it flags the four
// allocation patterns the rewrite eliminated:
//
//   - Schedule with a func literal: every call allocates the closure.
//     Use ScheduleCall with a long-lived dispatcher and inline args.
//   - fmt formatting: Sprintf/Errorf/Fprintf allocate unconditionally.
//   - string concatenation: non-constant + on strings allocates.
//   - make([]byte, ...): transient wire buffers must come from the
//     per-network netpkt.BufPool (waive the pool's own refill sites
//     with //repolint:allow alloc).
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Key:  "alloc",
	Doc: "forbid per-call allocation patterns (Schedule closures, fmt, string " +
		"concatenation, non-pooled []byte) in functions marked //repolint:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HotpathFunc(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n) && !isConstant(pass, n) {
				pass.Reportf(n.OpPos, "string concatenation allocates on the hot path; pre-render or use pooled append")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				pass.Reportf(n.TokPos, "string concatenation allocates on the hot path; pre-render or use pooled append")
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Schedule" {
		for _, arg := range call.Args {
			if _, isLit := arg.(*ast.FuncLit); isLit {
				pass.Reportf(call.Pos(), "Schedule with a func literal allocates a closure per call; use ScheduleCall with a long-lived dispatcher")
				break
			}
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path; pre-render the bytes or append manually", obj.Name())
		}
	case *ast.Ident:
		if fun.Name != "make" {
			return
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin || len(call.Args) == 0 {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || !tv.IsType() {
			return
		}
		if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
				pass.Reportf(call.Pos(), "make([]byte) on the hot path; draw transient wire buffers from netpkt.BufPool")
			}
		}
	}
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
