// Package analysistest runs a repolint analyzer over a fixture package
// and checks its findings against // want expectations, mirroring the
// x/tools analysistest contract on the repo's own framework.
//
// Fixtures live under the analyzer package in testdata/src/<name>/ —
// ordinary Go packages the go tool ignores but the framework's source
// loader can still type-check, including imports of real repro packages.
// A line expecting a finding carries a trailing comment with one quoted
// regexp per expected diagnostic:
//
//	eng.Schedule(d, func() { ... }) // want `closure`
//
// Lines without a want comment must produce no finding, so each fixture
// proves both halves of a contract: the violation is caught and the
// allowed form (or an explicit //repolint:allow waiver) stays silent.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRE matches the quoted patterns of a want comment, accepting both
// backquoted and double-quoted forms.
var wantRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> relative to the caller's package
// directory, runs the analyzer (with directive suppression, exactly as
// cmd/repolint would), and fails t on any mismatch between findings and
// // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader := analysis.NewLoader()
	pkg, err := loader.Load(dir, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, q := range wantRE.FindAllString(rest, -1) {
					re, err := regexp.Compile(q[1 : len(q)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", filename, line, q, err)
					}
					wants = append(wants, &expectation{file: filename, line: line, pattern: re})
				}
			}
		}
	}

	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		if !match(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// match marks and reports the first unmatched expectation covering d.
func match(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// RunClean loads a real package by directory and import path and fails t
// if the analyzer reports anything after suppression — the thin bridge
// public packages use to pin their own surface in `go test`.
func RunClean(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	loader := analysis.NewLoader()
	pkg, err := loader.Load(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		t.Error(fmt.Sprint(d))
	}
}
