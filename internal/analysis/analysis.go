// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus the repolint directive
// vocabulary the analyzers share.
//
// The repo cannot vendor x/tools, so the framework is built directly on
// go/ast, go/types and go/importer: packages are parsed and type-checked
// from source inside the module (see Loader), analyzers walk typed ASTs
// and report Diagnostics, and the runner applies //repolint:allow
// suppression so every waiver in the tree is explicit and auditable.
//
// The analyzers in the subpackages encode the reproduction's contracts —
// the invariants that previously lived only in comments and hand-rolled
// tests:
//
//   - simdeterminism: deterministic packages must not read wall clocks,
//     use the global math/rand source, or let map iteration order feed
//     scheduling or output.
//   - hotpathalloc: functions marked //repolint:hotpath must not build
//     per-call closures for Schedule, format with fmt, concatenate
//     strings, or make non-pooled []byte buffers.
//   - timerbyvalue: sim.Timer is a generation-counted value handle and
//     must never be used through a pointer.
//   - sinkcontract: censor.Sink.Write implementations must not spawn
//     goroutines or mutate package-level state — Stream.Drain serializes
//     writes.
//   - apisurface: the public censor, monitor, and netbridge packages must
//     not expose repro/internal types in their exported signatures.
//   - bridgeboundary: in bridge packages (netbridge), only functions
//     marked //repolint:pump may call into the simulation packages — all
//     other goroutines must reach the sim through the pump.
//
// cmd/repolint is the multichecker driver; analysistest runs analyzers
// over fixture packages with // want expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check, mirroring the x/tools analysis.Analyzer
// shape: a documented Run function over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output, e.g. "simdeterminism".
	Name string
	// Key is the short contract name //repolint:allow directives use to
	// waive this analyzer's findings, e.g. "determinism".
	Key string
	// Doc is the one-paragraph description shown by repolint -list.
	Doc string
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dirs is the package's parsed repolint directive set; analyzers use
	// it for opt-in markers (hotpath, deterministic, public). Suppression
	// of reported diagnostics is applied by the runner, not by analyzers.
	Dirs *Directives

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Key:      p.Analyzer.Key,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	// Key is the directive key a //repolint:allow must name to waive this
	// diagnostic; empty for framework diagnostics, which cannot be waived.
	Key     string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}
