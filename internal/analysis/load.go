package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages from source. Dependencies are
// resolved through the stdlib source importer, which in module mode
// follows the go command's view of the world — so the loader works on any
// package inside this module (including testdata fixture trees the go
// tool itself ignores) without external analysis libraries. The importer
// caches by path, so loading many packages shares their dependency work.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader with a fresh file set and importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses dir's non-test Go files (respecting build constraints) and
// type-checks them as package path pkgPath.
func (l *Loader) Load(dir, pkgPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append(append([]string(nil), bp.GoFiles...), bp.CgoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l.imp}
	pkg, err := cfg.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}, nil
}

// Target is one directory/import-path pair produced by pattern expansion.
type Target struct {
	Dir     string
	PkgPath string
}

// ExpandPatterns resolves go-style package patterns ("./...", ".",
// "./censor") against the module rooted at or above dir, returning the
// buildable package directories in deterministic order. testdata trees,
// hidden directories and nested modules are skipped, matching the go
// tool's walk.
func ExpandPatterns(dir string, patterns []string) ([]Target, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []Target
	add := func(abs string) error {
		if seen[abs] {
			return nil
		}
		bp, err := build.Default.ImportDir(abs, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return fmt.Errorf("analysis: %s: %w", abs, err)
		}
		if len(bp.GoFiles)+len(bp.CgoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		seen[abs] = true
		out = append(out, Target{Dir: abs, PkgPath: pkgPath})
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, pat)
		}
		if abs, err = filepath.Abs(abs); err != nil {
			return nil, err
		}
		if !recursive {
			if err := add(abs); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			// A nested go.mod starts a different module; stay out of it.
			if path != root && path != abs {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}
