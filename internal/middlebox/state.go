package middlebox

import (
	"net/netip"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
	"repro/obs"
)

// Scope selects which traffic a middlebox inspects, the knob behind the
// paper's within-ISP vs outside-ISP coverage gap (Table 2) and the Jio
// anomaly (source filtering makes Jio's boxes invisible from outside).
type Scope int

// Scopes.
const (
	// ScopeSrcOnly inspects packets whose source is inside the owning
	// ISP's prefixes — subscriber egress traffic only. Boxes with this
	// scope are invisible to probes entering from outside (all of Jio's).
	ScopeSrcOnly Scope = iota
	// ScopeSrcOrDst additionally inspects packets addressed to the ISP's
	// own prefixes, so outside probes towards internal hosts see them.
	ScopeSrcOrDst
	// ScopeAll inspects everything crossing the box — used on dedicated
	// customer-peering links, where transiting customer traffic is the
	// point (the collateral-damage mechanism of Table 3).
	ScopeAll
)

// NotifStyle describes the ISP-specific censorship response, which is what
// lets the paper attribute anonymized middleboxes to ISPs (§6.1).
type NotifStyle struct {
	ISP string
	// BodyHTML is the notification body; empty plus Covert means bare RST.
	BodyHTML string
	// MimicHeaders makes the forged response carry the same header *names*
	// as a typical origin server — the property that blinds OONI (§6.2).
	MimicHeaders bool
	// IPID pins the IP identification field of every injected packet
	// (Airtel's boxes always use 242 — the paper's firewalling evasion
	// keys on it).
	IPID uint16
	// Covert styles send only a RST, no notification page (Vodafone).
	Covert bool
}

// Standard notification styles observed in the paper.
var (
	StyleAirtel = NotifStyle{
		ISP: "Airtel",
		BodyHTML: `<html><body><iframe src="http://www.airtel.in/dot/"></iframe>` +
			`The website has been blocked as per instructions of DoT</body></html>`,
		MimicHeaders: true,
		IPID:         242,
	}
	StyleJio = NotifStyle{
		ISP: "Jio",
		BodyHTML: `<html><body><script>window.location="http://49.44.18.2/alert.html"` +
			`</script>Access to this site has been restricted</body></html>`,
		MimicHeaders: true,
	}
	StyleIdea = NotifStyle{
		ISP: "Idea",
		BodyHTML: `<html><body>This URL has been blocked under instructions of a ` +
			`competent Government Authority</body></html>`,
	}
	StyleVodafone = NotifStyle{ISP: "Vodafone", Covert: true}
	StyleTATA     = NotifStyle{
		ISP: "TATA",
		BodyHTML: `<html><body>Error 403: access denied as per DoT directive ` +
			`(TATA Communications)</body></html>`,
	}
)

// Config is shared by both middlebox kinds.
type Config struct {
	ID        string
	ASN       int // owning ISP
	Blocklist Blocklist
	Scope     Scope
	// OwnPrefixes are the owning ISP's advertised prefixes, consulted by
	// Scope checks.
	OwnPrefixes []netip.Prefix
	// LastHostMatch selects the covert-IM "last Host header wins" parsing.
	LastHostMatch bool
	// StateTimeout purges idle flow state; the paper measured 2-3 minutes.
	StateTimeout time.Duration
	// FlowCapacity bounds the flow table; at capacity the coldest live
	// flow is evicted (LRU) to admit a new one, after which the box no
	// longer recognizes the displaced connection as established — the
	// load-dependent censorship miss background traffic makes observable.
	// Zero means defaultFlowCapacity.
	FlowCapacity int
	Style        NotifStyle
}

func (c *Config) timeout() time.Duration {
	if c.StateTimeout == 0 {
		return 150 * time.Second
	}
	return c.StateTimeout
}

// defaultFlowCapacity is generous enough that only population-scale load
// ever reaches it; idle-world campaigns never see a capacity eviction.
const defaultFlowCapacity = 65536

func (c *Config) flowCapacity() int {
	if c.FlowCapacity <= 0 {
		return defaultFlowCapacity
	}
	return c.FlowCapacity
}

func (c *Config) inOwn(a netip.Addr) bool {
	for _, p := range c.OwnPrefixes {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// inScope applies the box's traffic scope to a client->server packet.
func (c *Config) inScope(src, dst netip.Addr) bool {
	switch c.Scope {
	case ScopeAll:
		return true
	case ScopeSrcOrDst:
		return c.inOwn(src) || c.inOwn(dst)
	default:
		return c.inOwn(src)
	}
}

// flowState is the per-connection record a stateful middlebox keeps.
// Records live in flowTable's slot arena; key and prev/next are the
// table's bookkeeping (map removal on eviction, intrusive LRU list).
type flowState struct {
	key        netpkt.FlowKey
	prev, next int32
	synSeen    bool
	synAckSeen bool
	// established is set only after the full three-way handshake was
	// observed — the property the paper's SYN-only/no-handshake probes
	// verify (§4.2.1 caveat).
	established bool
	clientISS   uint32
	serverISS   uint32
	// clientNxt / serverNxt track each side's next sequence number as
	// observed, so forged packets carry numbers the client stack accepts.
	clientNxt uint32
	serverNxt uint32
	lastSeen  sim.Time
	// blackholed flows (interceptive boxes, post-trigger) are dropped.
	blackholed bool
}

// flowTable tracks flows with an idle timeout and a hard capacity bound.
// Records live by value in a slot arena reached through the key map, and
// every slot sits on an intrusive LRU list (head = coldest). Slots are
// recycled through a free list, so once the arena has grown to the working
// set the table allocates nothing per flow — the property the background-
// traffic zero-alloc gate measures through it.
type flowTable struct {
	flows      map[netpkt.FlowKey]int32
	entries    []flowState
	free       []int32
	head, tail int32
	timeout    time.Duration
	capacity   int
	now        func() sim.Time
	// evictions and occupancy are obs instruments from the owning world's
	// registry — the single source of truth the boxes' Evictions()/Len()
	// accessors now read through. Both count virtual events only, so their
	// values are deterministic; nil instruments are no-ops.
	evictions *obs.Counter
	occupancy *obs.Gauge
}

func newFlowTable(timeout time.Duration, capacity int, now func() sim.Time,
	evictions *obs.Counter, occupancy *obs.Gauge) *flowTable {
	if capacity <= 0 {
		capacity = defaultFlowCapacity
	}
	return &flowTable{
		flows:     make(map[netpkt.FlowKey]int32),
		head:      -1,
		tail:      -1,
		timeout:   timeout,
		capacity:  capacity,
		now:       now,
		evictions: evictions,
		occupancy: occupancy,
	}
}

// reset drops all flow state in place, keeping map and arena capacity.
// Rewinding the instruments here is idempotent with the engine-registry
// reset World.Reset performs, and keeps a standalone box Reset coherent.
func (t *flowTable) reset() {
	clear(t.flows)
	t.entries = t.entries[:0]
	t.free = t.free[:0]
	t.head, t.tail = -1, -1
	t.evictions.Reset()
	t.occupancy.Set(0)
}

func (t *flowTable) size() int { return len(t.flows) }

// unlink removes a slot from the LRU list.
//
//repolint:hotpath
func (t *flowTable) unlink(idx int32) {
	e := &t.entries[idx]
	if e.prev >= 0 {
		t.entries[e.prev].next = e.next
	} else {
		t.head = e.next
	}
	if e.next >= 0 {
		t.entries[e.next].prev = e.prev
	} else {
		t.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

// pushTail appends a slot at the hot end of the LRU list.
//
//repolint:hotpath
func (t *flowTable) pushTail(idx int32) {
	e := &t.entries[idx]
	e.prev, e.next = t.tail, -1
	if t.tail >= 0 {
		t.entries[t.tail].next = idx
	} else {
		t.head = idx
	}
	t.tail = idx
}

// touch stamps a slot's activity and moves it to the hot end.
//
//repolint:hotpath
func (t *flowTable) touch(idx int32) {
	t.entries[idx].lastSeen = t.now()
	if t.tail == idx {
		return
	}
	t.unlink(idx)
	t.pushTail(idx)
}

// drop removes a slot from the table entirely and recycles it.
//
//repolint:hotpath
func (t *flowTable) drop(idx int32) {
	t.unlink(idx)
	delete(t.flows, t.entries[idx].key)
	t.free = append(t.free, idx)
	t.occupancy.Set(int64(len(t.flows)))
}

// get returns the slot for the client-first key, purging it when expired;
// -1 when the key is untracked.
//
//repolint:hotpath
func (t *flowTable) get(key netpkt.FlowKey) int32 {
	idx, ok := t.flows[key]
	if !ok {
		return -1
	}
	if t.now().Sub(t.entries[idx].lastSeen) > t.timeout {
		t.drop(idx)
		return -1
	}
	return idx
}

// create claims a slot for key. At capacity it first drops idle-expired
// flows from the cold end (plain expiry), then displaces the coldest live
// flow — the counted eviction that loses an established connection's
// handshake state under population load.
//
//repolint:hotpath
func (t *flowTable) create(key netpkt.FlowKey) int32 {
	if len(t.flows) >= t.capacity {
		now := t.now()
		for t.head >= 0 && len(t.flows) >= t.capacity {
			if now.Sub(t.entries[t.head].lastSeen) <= t.timeout {
				break
			}
			t.drop(t.head)
		}
		for t.head >= 0 && len(t.flows) >= t.capacity {
			t.drop(t.head)
			t.evictions.Inc()
		}
	}
	var idx int32
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.entries = append(t.entries, flowState{})
		idx = int32(len(t.entries) - 1)
	}
	t.entries[idx] = flowState{key: key, prev: -1, next: -1, lastSeen: t.now()}
	t.flows[key] = idx
	t.pushTail(idx)
	t.occupancy.Set(int64(len(t.flows)))
	return idx
}

// observe updates flow state from one packet and returns the state (nil if
// the packet belongs to no tracked flow and starts none). clientToServer
// reports whether pkt travels client->server. The returned pointer is into
// the slot arena and is valid only until the next table mutation.
//
//repolint:hotpath
func (t *flowTable) observe(pkt *netpkt.Packet) (st *flowState, clientToServer bool) {
	tcp := pkt.TCP
	key := pkt.Flow()
	// New flow: a bare SYN defines the client side. A live entry under the
	// same key is a reused 4-tuple (population load cycles fixed source
	// ports); the box starts that flow over.
	if tcp.Flags.Has(netpkt.SYN) && !tcp.Flags.Has(netpkt.ACK) {
		idx := t.get(key)
		if idx >= 0 {
			e := &t.entries[idx]
			*e = flowState{key: key, prev: e.prev, next: e.next}
			t.touch(idx)
		} else {
			idx = t.create(key)
		}
		st = &t.entries[idx]
		st.synSeen = true
		st.clientISS = tcp.Seq
		st.clientNxt = tcp.Seq + 1
		return st, true
	}
	if idx := t.get(key); idx >= 0 {
		t.touch(idx)
		st = &t.entries[idx]
		// client -> server direction
		if tcp.Flags.Has(netpkt.ACK) && st.synAckSeen && !st.established && tcp.Ack == st.serverISS+1 {
			st.established = true
		}
		if adv := tcp.Seq + tcp.SeqSpan(); seqAfter(adv, st.clientNxt) {
			st.clientNxt = adv
		}
		return st, true
	}
	rev := key.Reverse()
	if idx := t.get(rev); idx >= 0 {
		t.touch(idx)
		st = &t.entries[idx]
		// server -> client direction
		if tcp.Flags.Has(netpkt.SYN|netpkt.ACK) && !st.synAckSeen {
			st.synAckSeen = true
			st.serverISS = tcp.Seq
			st.serverNxt = tcp.Seq + 1
		}
		if adv := tcp.Seq + tcp.SeqSpan(); st.synAckSeen && seqAfter(adv, st.serverNxt) {
			st.serverNxt = adv
		}
		return st, false
	}
	return nil, false
}

// seqAfter reports a > b in 32-bit sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }
