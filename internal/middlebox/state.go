package middlebox

import (
	"net/netip"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
)

// Scope selects which traffic a middlebox inspects, the knob behind the
// paper's within-ISP vs outside-ISP coverage gap (Table 2) and the Jio
// anomaly (source filtering makes Jio's boxes invisible from outside).
type Scope int

// Scopes.
const (
	// ScopeSrcOnly inspects packets whose source is inside the owning
	// ISP's prefixes — subscriber egress traffic only. Boxes with this
	// scope are invisible to probes entering from outside (all of Jio's).
	ScopeSrcOnly Scope = iota
	// ScopeSrcOrDst additionally inspects packets addressed to the ISP's
	// own prefixes, so outside probes towards internal hosts see them.
	ScopeSrcOrDst
	// ScopeAll inspects everything crossing the box — used on dedicated
	// customer-peering links, where transiting customer traffic is the
	// point (the collateral-damage mechanism of Table 3).
	ScopeAll
)

// NotifStyle describes the ISP-specific censorship response, which is what
// lets the paper attribute anonymized middleboxes to ISPs (§6.1).
type NotifStyle struct {
	ISP string
	// BodyHTML is the notification body; empty plus Covert means bare RST.
	BodyHTML string
	// MimicHeaders makes the forged response carry the same header *names*
	// as a typical origin server — the property that blinds OONI (§6.2).
	MimicHeaders bool
	// IPID pins the IP identification field of every injected packet
	// (Airtel's boxes always use 242 — the paper's firewalling evasion
	// keys on it).
	IPID uint16
	// Covert styles send only a RST, no notification page (Vodafone).
	Covert bool
}

// Standard notification styles observed in the paper.
var (
	StyleAirtel = NotifStyle{
		ISP: "Airtel",
		BodyHTML: `<html><body><iframe src="http://www.airtel.in/dot/"></iframe>` +
			`The website has been blocked as per instructions of DoT</body></html>`,
		MimicHeaders: true,
		IPID:         242,
	}
	StyleJio = NotifStyle{
		ISP: "Jio",
		BodyHTML: `<html><body><script>window.location="http://49.44.18.2/alert.html"` +
			`</script>Access to this site has been restricted</body></html>`,
		MimicHeaders: true,
	}
	StyleIdea = NotifStyle{
		ISP: "Idea",
		BodyHTML: `<html><body>This URL has been blocked under instructions of a ` +
			`competent Government Authority</body></html>`,
	}
	StyleVodafone = NotifStyle{ISP: "Vodafone", Covert: true}
	StyleTATA     = NotifStyle{
		ISP: "TATA",
		BodyHTML: `<html><body>Error 403: access denied as per DoT directive ` +
			`(TATA Communications)</body></html>`,
	}
)

// Config is shared by both middlebox kinds.
type Config struct {
	ID        string
	ASN       int // owning ISP
	Blocklist Blocklist
	Scope     Scope
	// OwnPrefixes are the owning ISP's advertised prefixes, consulted by
	// Scope checks.
	OwnPrefixes []netip.Prefix
	// LastHostMatch selects the covert-IM "last Host header wins" parsing.
	LastHostMatch bool
	// StateTimeout purges idle flow state; the paper measured 2-3 minutes.
	StateTimeout time.Duration
	Style        NotifStyle
}

func (c *Config) timeout() time.Duration {
	if c.StateTimeout == 0 {
		return 150 * time.Second
	}
	return c.StateTimeout
}

func (c *Config) inOwn(a netip.Addr) bool {
	for _, p := range c.OwnPrefixes {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// inScope applies the box's traffic scope to a client->server packet.
func (c *Config) inScope(src, dst netip.Addr) bool {
	switch c.Scope {
	case ScopeAll:
		return true
	case ScopeSrcOrDst:
		return c.inOwn(src) || c.inOwn(dst)
	default:
		return c.inOwn(src)
	}
}

// flowState is the per-connection record a stateful middlebox keeps.
type flowState struct {
	synSeen    bool
	synAckSeen bool
	// established is set only after the full three-way handshake was
	// observed — the property the paper's SYN-only/no-handshake probes
	// verify (§4.2.1 caveat).
	established bool
	clientISS   uint32
	serverISS   uint32
	// clientNxt / serverNxt track each side's next sequence number as
	// observed, so forged packets carry numbers the client stack accepts.
	clientNxt uint32
	serverNxt uint32
	lastSeen  sim.Time
	// blackholed flows (interceptive boxes, post-trigger) are dropped.
	blackholed bool
}

// flowTable tracks flows with idle timeout.
type flowTable struct {
	flows   map[netpkt.FlowKey]*flowState
	timeout time.Duration
	now     func() sim.Time
}

func newFlowTable(timeout time.Duration, now func() sim.Time) *flowTable {
	return &flowTable{flows: make(map[netpkt.FlowKey]*flowState), timeout: timeout, now: now}
}

// reset drops all flow state in place, keeping map capacity.
func (t *flowTable) reset() { clear(t.flows) }

// get returns live state for the client-first key, purging it when expired.
func (t *flowTable) get(key netpkt.FlowKey) *flowState {
	st, ok := t.flows[key]
	if !ok {
		return nil
	}
	if t.now().Sub(st.lastSeen) > t.timeout {
		delete(t.flows, key)
		return nil
	}
	return st
}

func (t *flowTable) create(key netpkt.FlowKey) *flowState {
	st := &flowState{lastSeen: t.now()}
	t.flows[key] = st
	// Opportunistic sweep to bound memory during large scans.
	if len(t.flows) > 4096 {
		cutoff := t.now()
		for k, s := range t.flows {
			if cutoff.Sub(s.lastSeen) > t.timeout {
				delete(t.flows, k)
			}
		}
	}
	return st
}

// observe updates flow state from one packet and returns the state (nil if
// the packet belongs to no tracked flow and starts none). clientKey
// reports whether pkt travels client->server.
func (t *flowTable) observe(pkt *netpkt.Packet) (st *flowState, clientToServer bool) {
	tcp := pkt.TCP
	key := pkt.Flow()
	// New flow: a bare SYN defines the client side.
	if tcp.Flags.Has(netpkt.SYN) && !tcp.Flags.Has(netpkt.ACK) {
		st = t.create(key)
		st.synSeen = true
		st.clientISS = tcp.Seq
		st.clientNxt = tcp.Seq + 1
		return st, true
	}
	if st = t.get(key); st != nil {
		st.lastSeen = t.now()
		// client -> server direction
		if tcp.Flags.Has(netpkt.ACK) && st.synAckSeen && !st.established && tcp.Ack == st.serverISS+1 {
			st.established = true
		}
		if adv := tcp.Seq + tcp.SeqSpan(); seqAfter(adv, st.clientNxt) {
			st.clientNxt = adv
		}
		return st, true
	}
	rev := key.Reverse()
	if st = t.get(rev); st != nil {
		st.lastSeen = t.now()
		// server -> client direction
		if tcp.Flags.Has(netpkt.SYN|netpkt.ACK) && !st.synAckSeen {
			st.synAckSeen = true
			st.serverISS = tcp.Seq
			st.serverNxt = tcp.Seq + 1
		}
		if adv := tcp.Seq + tcp.SeqSpan(); st.synAckSeen && seqAfter(adv, st.serverNxt) {
			st.serverNxt = adv
		}
		return st, false
	}
	return nil, false
}

// seqAfter reports a > b in 32-bit sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }
