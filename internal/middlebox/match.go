// Package middlebox implements the two censorship middlebox families the
// paper discovered in Indian ISPs:
//
//   - Wiretap middleboxes (WM — Airtel, Reliance Jio): fed by a tap, they
//     race the real server: on seeing a censored GET they inject a forged
//     HTTP 200 OK carrying the censorship notification with TCP FIN+PSH
//     set and correct sequence numbers, followed by a bare RST. Working
//     from a copy of the traffic, they sometimes lose the race (the paper
//     measured ~3 in 10 page loads slipping through).
//
//   - Interceptive middleboxes (IM — Idea overt, Vodafone covert): inline
//     transparent-proxy-like boxes that consume the triggering GET (it
//     never reaches the server), answer the client themselves (overt: a
//     notification page + FIN; covert: a bare RST), send their own RST to
//     the server, and blackhole the remainder of the flow — which is why
//     the paper saw the client's 4-way teardown time out.
//
// Both kinds are stateful: they begin inspecting a flow only after
// observing a complete TCP three-way handshake, keep per-flow state for
// 2-3 minutes refreshed by any traffic, inspect only TCP port 80, and
// trigger exclusively on the Host header of a GET request — matched
// byte-for-byte ("Host" case-sensitively, exactly one space, no padding),
// which is precisely the rigidity every §5 evasion exploits.
package middlebox

import (
	"bytes"
	"sort"
	"strings"
)

var (
	getPrefix = []byte("GET ")
	hostColon = []byte("Host: ")
	crlf      = []byte("\r\n")
)

// ExtractHost pulls the censorship-relevant domain out of one raw TCP
// payload the way the paper's middleboxes do. It returns ok=false when the
// payload would not trigger inspection at all.
//
// lastHost selects the covert-interceptive behaviour (Vodafone): the value
// of the *last* "Host: " occurrence anywhere in the payload is used. The
// default (first match) walks header lines strictly.
//
// The matcher is deliberately brittle, reproducing the observed evasions:
//   - payload must start with exactly "GET " (case-sensitive);
//   - the keyword must be exactly "Host" ("HOst:", "HOST:" never match);
//   - exactly one space after the colon, and no leading/trailing space or
//     tab around the value ("Host:  x.com" and "Host: x.com " never match);
//   - a censored domain anywhere else in the request (the URL path, another
//     header's value) does not trigger.
func ExtractHost(payload []byte, lastHost bool) (string, bool) {
	if !bytes.HasPrefix(payload, getPrefix) {
		return "", false
	}
	if lastHost {
		idx := bytes.LastIndex(payload, hostColon)
		if idx < 0 {
			return "", false
		}
		val := payload[idx+len(hostColon):]
		if end := bytes.Index(val, crlf); end >= 0 {
			val = val[:end]
		}
		return normalizeHostValue(val)
	}
	rest := payload
	first := true
	for len(rest) > 0 {
		line := rest
		if end := bytes.Index(rest, crlf); end >= 0 {
			line = rest[:end]
			rest = rest[end+2:]
		} else {
			rest = nil
		}
		if first { // skip the request line
			first = false
			continue
		}
		if len(line) == 0 { // end of headers
			break
		}
		if bytes.HasPrefix(line, hostColon) {
			return normalizeHostValue(line[len(hostColon):])
		}
	}
	return "", false
}

// normalizeHostValue lower-cases a candidate value, rejecting any value
// with surrounding or embedded whitespace.
func normalizeHostValue(val []byte) (string, bool) {
	if len(val) == 0 {
		return "", false
	}
	if val[0] == ' ' || val[0] == '\t' || val[len(val)-1] == ' ' || val[len(val)-1] == '\t' {
		return "", false
	}
	if bytes.ContainsAny(val, " \t") {
		return "", false
	}
	return strings.ToLower(string(val)), true
}

// Blocklist is a set of censored domains.
type Blocklist map[string]bool

// NewBlocklist builds a set from a domain slice.
func NewBlocklist(domains []string) Blocklist {
	b := make(Blocklist, len(domains))
	for _, d := range domains {
		b[strings.ToLower(d)] = true
	}
	return b
}

// Contains reports membership.
func (b Blocklist) Contains(domain string) bool { return b[domain] }

// Domains returns the list's members, sorted so the same blocklist
// always lists the same way.
func (b Blocklist) Domains() []string {
	out := make([]string, 0, len(b))
	for d := range b {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
