package middlebox

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/netpkt"
	"repro/internal/sim"
	"repro/obs"
)

// testFlowTable builds a flowTable with live obs instruments, the way the
// boxes do, so the tests also cover the instrumented eviction path.
func testFlowTable(timeout time.Duration, capacity int, now func() sim.Time) *flowTable {
	reg := obs.NewRegistry()
	return newFlowTable(timeout, capacity, now,
		reg.Counter("middlebox_flow_evictions_total"),
		reg.Gauge("middlebox_flow_occupancy"))
}

// ftClock is a hand-cranked clock for driving a flowTable without an engine.
type ftClock struct{ t sim.Time }

func (c *ftClock) now() sim.Time           { return c.t }
func (c *ftClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func ftAddr(last byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, 0, last}) }

// synPkt builds the bare SYN opening flow i (distinct client address per i).
func synPkt(i int) *netpkt.Packet {
	return netpkt.NewTCP(ftAddr(byte(i)), ftAddr(200), &netpkt.TCPSegment{
		SrcPort: 40000, DstPort: 80, Seq: 1000, Flags: netpkt.SYN, Window: 65535,
	})
}

// ackPkt builds a client->server ACK on flow i's tuple.
func ackPkt(i int) *netpkt.Packet {
	return netpkt.NewTCP(ftAddr(byte(i)), ftAddr(200), &netpkt.TCPSegment{
		SrcPort: 40000, DstPort: 80, Seq: 1001, Ack: 2001, Flags: netpkt.ACK, Window: 65535,
	})
}

// synAckPkt builds the server->client SYN-ACK answering flow i.
func synAckPkt(i int) *netpkt.Packet {
	return netpkt.NewTCP(ftAddr(200), ftAddr(byte(i)), &netpkt.TCPSegment{
		SrcPort: 80, DstPort: 40000, Seq: 2000, Ack: 1001,
		Flags: netpkt.SYN | netpkt.ACK, Window: 65535,
	})
}

func TestFlowTableIdleExpiry(t *testing.T) {
	clk := &ftClock{}
	tbl := testFlowTable(150*time.Second, 0, clk.now)

	if st, _ := tbl.observe(synPkt(1)); st == nil || !st.synSeen {
		t.Fatalf("SYN did not create flow state")
	}
	if tbl.size() != 1 {
		t.Fatalf("size = %d, want 1", tbl.size())
	}

	// Within the timeout the flow is still tracked.
	clk.advance(149 * time.Second)
	if st, c2s := tbl.observe(ackPkt(1)); st == nil || !c2s {
		t.Fatalf("flow lost before idle timeout")
	}

	// Beyond it the entry is purged on access and the packet matches nothing.
	clk.advance(151 * time.Second)
	if st, _ := tbl.observe(ackPkt(1)); st != nil {
		t.Fatalf("expired flow still tracked")
	}
	if tbl.size() != 0 {
		t.Fatalf("size after expiry = %d, want 0", tbl.size())
	}
	if tbl.evictions.Value() != 0 {
		t.Fatalf("idle expiry counted as eviction")
	}

	// A fresh SYN restarts the flow from scratch.
	if st, _ := tbl.observe(synPkt(1)); st == nil || st.established {
		t.Fatalf("flow did not restart cleanly after expiry")
	}
}

func TestFlowTableReset(t *testing.T) {
	clk := &ftClock{}
	tbl := testFlowTable(150*time.Second, 2, clk.now)

	for i := 1; i <= 4; i++ {
		tbl.observe(synPkt(i))
		clk.advance(time.Second)
	}
	if tbl.size() != 2 || tbl.evictions.Value() != 2 {
		t.Fatalf("precondition: size=%d evictions=%d, want 2/2", tbl.size(), tbl.evictions.Value())
	}

	tbl.reset()
	if tbl.size() != 0 {
		t.Fatalf("size after reset = %d, want 0", tbl.size())
	}
	if tbl.evictions.Value() != 0 {
		t.Fatalf("evictions survived reset")
	}

	// The table must be fully usable again: full handshake to established.
	tbl.observe(synPkt(1))
	tbl.observe(synAckPkt(1))
	st, c2s := tbl.observe(ackPkt(1))
	if st == nil || !c2s || !st.established {
		t.Fatalf("handshake after reset: st=%v c2s=%v", st, c2s)
	}
}

func TestFlowTableCapacityEviction(t *testing.T) {
	clk := &ftClock{}
	tbl := testFlowTable(150*time.Second, 3, clk.now)

	for i := 1; i <= 3; i++ {
		tbl.observe(synPkt(i))
		clk.advance(time.Second)
	}
	if tbl.size() != 3 || tbl.evictions.Value() != 0 {
		t.Fatalf("fill: size=%d evictions=%d", tbl.size(), tbl.evictions.Value())
	}

	// Touch flow 1 so flow 2 becomes the coldest.
	tbl.observe(ackPkt(1))
	clk.advance(time.Second)

	// Admitting flow 4 at capacity evicts the LRU victim: flow 2.
	tbl.observe(synPkt(4))
	if tbl.size() != 3 {
		t.Fatalf("size after eviction = %d, want 3", tbl.size())
	}
	if tbl.evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", tbl.evictions.Value())
	}
	if st, _ := tbl.observe(ackPkt(2)); st != nil {
		t.Fatalf("LRU victim (flow 2) still tracked")
	}
	if st, _ := tbl.observe(ackPkt(1)); st == nil {
		t.Fatalf("recently touched flow 1 was evicted instead of the LRU victim")
	}

	// An established flow displaced under pressure loses its handshake
	// state: the box no longer recognizes the connection.
	tbl.reset()
	tbl.observe(synPkt(1))
	tbl.observe(synAckPkt(1))
	if st, _ := tbl.observe(ackPkt(1)); st == nil || !st.established {
		t.Fatalf("flow 1 did not establish")
	}
	clk.advance(time.Second)
	for i := 2; i <= 4; i++ {
		tbl.observe(synPkt(i))
		clk.advance(time.Second)
	}
	if tbl.evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", tbl.evictions.Value())
	}
	if st, _ := tbl.observe(ackPkt(1)); st != nil {
		t.Fatalf("evicted established flow still tracked")
	}
}

func TestFlowTableCapacityPrefersExpired(t *testing.T) {
	clk := &ftClock{}
	tbl := testFlowTable(100*time.Second, 2, clk.now)

	tbl.observe(synPkt(1))
	tbl.observe(synPkt(2))
	// Both entries idle out; admitting a third must recycle an expired one
	// silently rather than count a capacity eviction. The other expired
	// entry stays until lazily purged on access.
	clk.advance(101 * time.Second)
	tbl.observe(synPkt(3))
	if tbl.evictions.Value() != 0 {
		t.Fatalf("expired entries counted as capacity evictions: %d", tbl.evictions.Value())
	}
	if tbl.size() != 2 {
		t.Fatalf("size = %d, want 2 (one expired entry dropped for room)", tbl.size())
	}
	if st, _ := tbl.observe(ackPkt(2)); st != nil {
		t.Fatalf("expired flow 2 still live")
	}
	if tbl.size() != 1 {
		t.Fatalf("size after lazy purge = %d, want 1", tbl.size())
	}
}

func TestFlowTableTupleReuseRestartsFlow(t *testing.T) {
	clk := &ftClock{}
	tbl := testFlowTable(150*time.Second, 0, clk.now)

	tbl.observe(synPkt(1))
	tbl.observe(synAckPkt(1))
	if st, _ := tbl.observe(ackPkt(1)); st == nil || !st.established {
		t.Fatalf("flow did not establish")
	}

	// A client reusing the 4-tuple (fixed source port) starts the flow
	// over: the old established state must not leak into the new flow.
	st, c2s := tbl.observe(synPkt(1))
	if st == nil || !c2s {
		t.Fatalf("reused-tuple SYN not tracked")
	}
	if st.established || st.synAckSeen {
		t.Fatalf("stale handshake state leaked into restarted flow")
	}
	if tbl.size() != 1 {
		t.Fatalf("tuple reuse duplicated the flow entry: size=%d", tbl.size())
	}
}
