package middlebox

import (
	"time"

	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/obs"
)

// Interceptor is an inline, transparent-proxy-like middlebox (Idea overt,
// Vodafone covert). Unlike a wiretap it sits on the forwarding path: the
// triggering GET is consumed, the remainder of the flow is blackholed, and
// there is no race to lose.
type Interceptor struct {
	Cfg Config
	// Overt boxes answer the client with a notification page + FIN before
	// the trailing RST; covert boxes send only the RST.
	Overt bool
	// ReplyDelay is the box's processing latency.
	ReplyDelay time.Duration

	net *netsim.Network
	tbl *flowTable
	// notif is the forged notification body, rendered once (overt boxes
	// only); the style is build-time configuration.
	notif []byte

	// Triggers counts censorship events; Blackholed counts packets
	// dropped on already-triggered flows (the timed-out 4-way teardowns).
	Triggers   int
	Blackholed int

	// Per-box obs mirrors, labeled by box ID in the world registry.
	cTriggers   *obs.Counter
	cBlackholed *obs.Counter
	cResets     *obs.Counter
}

// NewInterceptor builds an interceptive middlebox; attach it with
// Router.AttachInline.
func NewInterceptor(net *netsim.Network, cfg Config, overt bool) *Interceptor {
	im := &Interceptor{Cfg: cfg, Overt: overt, ReplyDelay: time.Millisecond, net: net}
	if overt {
		im.notif = cfg.Style.ResponseBytes()
	}
	reg := net.Engine().Obs()
	im.cTriggers = reg.Counter(obs.Name("middlebox_triggers_total", "box", cfg.ID))
	im.cBlackholed = reg.Counter(obs.Name("middlebox_blackholed_total", "box", cfg.ID))
	im.cResets = reg.Counter(obs.Name("middlebox_rst_injections_total", "box", cfg.ID))
	im.tbl = newFlowTable(cfg.timeout(), cfg.flowCapacity(), net.Engine().Now,
		reg.Counter(obs.Name("middlebox_flow_evictions_total", "box", cfg.ID)),
		reg.Gauge(obs.Name("middlebox_flow_occupancy", "box", cfg.ID)))
	return im
}

// Evictions reports live flows displaced by capacity pressure since the
// last Reset. It is a shim over the box's obs eviction counter.
func (im *Interceptor) Evictions() uint64 { return im.tbl.evictions.Value() }

// Len reports the number of currently tracked flows.
func (im *Interceptor) Len() int { return im.tbl.size() }

// Reset clears the box's flow table and trigger counters, restoring the
// just-deployed state for world pooling.
func (im *Interceptor) Reset() {
	im.tbl.reset()
	im.Triggers = 0
	im.Blackholed = 0
	im.cTriggers.Reset()
	im.cBlackholed.Reset()
	im.cResets.Reset()
}

// Process implements netsim.Inline.
func (im *Interceptor) Process(pkt *netpkt.Packet, at *netsim.Router) bool {
	if pkt.TCP == nil {
		return false
	}
	if pkt.TCP.DstPort != 80 && pkt.TCP.SrcPort != 80 {
		return false
	}
	st, c2s := im.tbl.observe(pkt)
	if st == nil {
		return false
	}
	if st.blackholed && c2s {
		// Everything from client to the blocked site after the trigger is
		// filtered — the paper saw the client's entire teardown time out.
		im.Blackholed++
		im.cBlackholed.Inc()
		return true
	}
	if !c2s || !st.established || len(pkt.TCP.Payload) == 0 {
		return false
	}
	if !im.Cfg.inScope(pkt.IP.Src, pkt.IP.Dst) {
		return false
	}
	host, ok := ExtractHost(pkt.TCP.Payload, im.Cfg.LastHostMatch)
	if !ok || !im.Cfg.Blocklist.Contains(host) {
		return false
	}
	im.Triggers++
	im.cTriggers.Inc()
	st.blackholed = true

	client, server := pkt.IP.Src, pkt.IP.Dst
	cPort, sPort := pkt.TCP.SrcPort, pkt.TCP.DstPort
	seqToClient := st.serverNxt
	ackToClient := pkt.TCP.Seq + pkt.TCP.SeqSpan()
	// The RST the box sends the server carries the sequence number the
	// server expects — the GET it is pre-empting never arrives, so this
	// differs from what the client's own RST would carry, which is how
	// the paper proved the reset came from the middlebox.
	seqToServer := pkt.TCP.Seq
	eng := im.net.Engine()

	if im.Overt {
		notif := im.notif
		eng.Schedule(im.ReplyDelay, func() {
			p := netpkt.NewTCP(server, client, &netpkt.TCPSegment{
				SrcPort: sPort, DstPort: cPort,
				Seq: seqToClient, Ack: ackToClient,
				Flags: netpkt.FIN | netpkt.PSH | netpkt.ACK, Window: 65535,
				Payload: notif,
			})
			p.IP.ID = im.Cfg.Style.IPID
			im.net.InjectAt(at, p)
		})
	} else {
		eng.Schedule(im.ReplyDelay, func() {
			p := netpkt.NewTCP(server, client, &netpkt.TCPSegment{
				SrcPort: sPort, DstPort: cPort,
				Seq: seqToClient, Ack: ackToClient,
				Flags: netpkt.RST | netpkt.ACK, Window: 65535,
			})
			p.IP.ID = im.Cfg.Style.IPID
			im.cResets.Inc()
			im.net.InjectAt(at, p)
		})
	}
	eng.Schedule(im.ReplyDelay, func() {
		p := netpkt.NewTCP(client, server, &netpkt.TCPSegment{
			SrcPort: cPort, DstPort: sPort,
			Seq: seqToServer, Flags: netpkt.RST, Window: 65535,
		})
		im.cResets.Inc()
		im.net.InjectAt(at, p)
	})
	return true // the GET never reaches the server
}
