package middlebox

import (
	"time"

	"repro/internal/httpwire"
	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/obs"
)

// ResponseBytes renders the forged HTTP response carrying the censorship
// notification for this style.
func (s NotifStyle) ResponseBytes() []byte {
	resp := httpwire.NewResponse(200, "OK", []byte(s.BodyHTML))
	if s.MimicHeaders {
		// Same header names as a typical origin server (websim's
		// ProfileStandard): Content-Length, Content-Type, Server.
		resp.AddHeader("Content-Type", "text/html")
		resp.AddHeader("Server", "nginx/1.14.2")
	} else {
		resp.AddHeader("Content-Type", "text/html")
		resp.AddHeader("X-Information", "network-blocked")
	}
	return resp.Marshal()
}

// Wiretap is a tap-fed middlebox (Airtel, Jio). It cannot stop packets; it
// injects forged ones and hopes to win the race with the real response.
type Wiretap struct {
	Cfg Config
	// LossProb is the probability the box processes a trigger too slowly
	// and the genuine response beats its forgery to the client (the paper
	// observed the page rendering in ~3 of 10 attempts through WMs).
	LossProb float64
	// InjectDelay is the box's processing latency for a trigger.
	InjectDelay time.Duration
	// SlowDelay is the processing latency on a lost race.
	SlowDelay time.Duration

	net *netsim.Network
	tbl *flowTable
	// notif is the forged notification body, rendered once — the style is
	// build-time configuration, so every trigger reuses the same bytes.
	notif []byte

	// Triggers counts censorship events fired; LostRaces the subset
	// deliberately delayed.
	Triggers  int
	LostRaces int

	// Per-box obs mirrors of the counters above plus the injected-RST
	// count, labeled by box ID in the world registry.
	cTriggers  *obs.Counter
	cLostRaces *obs.Counter
	cResets    *obs.Counter
}

// NewWiretap builds a wiretap middlebox; attach it with Router.AttachTap.
func NewWiretap(net *netsim.Network, cfg Config, lossProb float64) *Wiretap {
	w := &Wiretap{
		Cfg: cfg, LossProb: lossProb,
		InjectDelay: 2 * time.Millisecond,
		SlowDelay:   400 * time.Millisecond,
		net:         net,
		notif:       cfg.Style.ResponseBytes(),
	}
	reg := net.Engine().Obs()
	w.cTriggers = reg.Counter(obs.Name("middlebox_triggers_total", "box", cfg.ID))
	w.cLostRaces = reg.Counter(obs.Name("middlebox_lost_races_total", "box", cfg.ID))
	w.cResets = reg.Counter(obs.Name("middlebox_rst_injections_total", "box", cfg.ID))
	w.tbl = newFlowTable(cfg.timeout(), cfg.flowCapacity(), net.Engine().Now,
		reg.Counter(obs.Name("middlebox_flow_evictions_total", "box", cfg.ID)),
		reg.Gauge(obs.Name("middlebox_flow_occupancy", "box", cfg.ID)))
	return w
}

// Evictions reports live flows displaced by capacity pressure since the
// last Reset. It is a shim over the box's obs eviction counter.
func (w *Wiretap) Evictions() uint64 { return w.tbl.evictions.Value() }

// Len reports the number of currently tracked flows.
func (w *Wiretap) Len() int { return w.tbl.size() }

// Reset clears the box's flow table and trigger counters, restoring the
// just-deployed state for world pooling.
func (w *Wiretap) Reset() {
	w.tbl.reset()
	w.Triggers = 0
	w.LostRaces = 0
	w.cTriggers.Reset()
	w.cLostRaces.Reset()
	w.cResets.Reset()
}

// Observe implements netsim.Tap.
func (w *Wiretap) Observe(pkt *netpkt.Packet, at *netsim.Router) {
	if pkt.TCP == nil {
		return
	}
	if pkt.TCP.DstPort != 80 && pkt.TCP.SrcPort != 80 {
		return // port-80-only inspection (§6.3)
	}
	st, c2s := w.tbl.observe(pkt)
	if st == nil || !c2s || !st.established || len(pkt.TCP.Payload) == 0 {
		return
	}
	if !w.Cfg.inScope(pkt.IP.Src, pkt.IP.Dst) {
		return
	}
	host, ok := ExtractHost(pkt.TCP.Payload, w.Cfg.LastHostMatch)
	if !ok || !w.Cfg.Blocklist.Contains(host) {
		return
	}
	w.Triggers++
	w.cTriggers.Inc()

	client, server := pkt.IP.Src, pkt.IP.Dst
	cPort, sPort := pkt.TCP.SrcPort, pkt.TCP.DstPort
	notif := w.notif
	seq := st.serverNxt
	ack := pkt.TCP.Seq + pkt.TCP.SeqSpan()

	delay := w.InjectDelay
	if w.net.Engine().Rand().Float64() < w.LossProb {
		delay = w.SlowDelay
		w.LostRaces++
		w.cLostRaces.Inc()
	}
	eng := w.net.Engine()
	// Forged notification: 200 OK body, FIN+PSH+ACK, server's address.
	eng.Schedule(delay, func() {
		p := netpkt.NewTCP(server, client, &netpkt.TCPSegment{
			SrcPort: sPort, DstPort: cPort,
			Seq: seq, Ack: ack,
			Flags: netpkt.FIN | netpkt.PSH | netpkt.ACK, Window: 65535,
			Payload: notif,
		})
		p.IP.ID = w.Cfg.Style.IPID
		w.net.InjectAt(at, p)
	})
	// Follow-up RST, sequenced after the forged FIN so the client stack
	// accepts it even mid-teardown.
	eng.Schedule(delay+3*time.Millisecond, func() {
		p := netpkt.NewTCP(server, client, &netpkt.TCPSegment{
			SrcPort: sPort, DstPort: cPort,
			Seq:   seq + uint32(len(notif)) + 1,
			Flags: netpkt.RST, Window: 65535,
		})
		p.IP.ID = w.Cfg.Style.IPID
		w.cResets.Inc()
		w.net.InjectAt(at, p)
	})
}
