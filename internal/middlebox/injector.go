package middlebox

import (
	"net/netip"

	"repro/internal/dnswire"
	"repro/internal/netpkt"
	"repro/internal/netsim"
)

// DNSInjector is an on-path DNS injection middlebox in the style attributed
// to the Great Firewall: it watches port-53 queries for censored domains
// and races a forged answer back from mid-path, while the genuine query
// continues to the resolver.
//
// The paper found *no* DNS injection in India — poisoning happens at the
// resolvers themselves — but the Iterative Network Tracer's DNS variant
// exists precisely to tell the two apart, so the reproduction includes an
// injector to validate that the tracer distinguishes them (answers from an
// intermediate hop vs only from the final hop).
type DNSInjector struct {
	Cfg Config
	// Answer is the forged address returned for censored names.
	Answer netip.Addr

	net *netsim.Network

	// Triggers counts injected responses.
	Triggers int
}

// NewDNSInjector builds an injector; attach it with Router.AttachTap.
func NewDNSInjector(net *netsim.Network, cfg Config, answer netip.Addr) *DNSInjector {
	return &DNSInjector{Cfg: cfg, Answer: answer, net: net}
}

// Observe implements netsim.Tap.
func (d *DNSInjector) Observe(pkt *netpkt.Packet, at *netsim.Router) {
	if pkt.UDP == nil || pkt.UDP.DstPort != 53 {
		return
	}
	if !d.Cfg.inScope(pkt.IP.Src, pkt.IP.Dst) {
		return
	}
	q, err := dnswire.Parse(pkt.UDP.Payload)
	if err != nil || q.Response || len(q.Questions) == 0 {
		return
	}
	if !d.Cfg.Blocklist.Contains(q.Questions[0].Name) {
		return
	}
	d.Triggers++
	forged := q.Answer(dnswire.RCodeNoError, 60, d.Answer)
	payload, err := forged.Marshal()
	if err != nil {
		return
	}
	resolver, client := pkt.IP.Dst, pkt.IP.Src
	cPort := pkt.UDP.SrcPort
	d.net.Engine().Schedule(0, func() {
		d.net.InjectAt(at, netpkt.NewUDP(resolver, client, &netpkt.UDPDatagram{
			SrcPort: 53, DstPort: cPort, Payload: payload,
		}))
	})
}
