package middlebox

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dnswire"
	"repro/internal/httpwire"
	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/websim"
)

func TestExtractHost(t *testing.T) {
	get := func(lines ...string) []byte {
		b := httpwire.NewGET("/")
		for _, l := range lines {
			b.RawLine(l)
		}
		return b.Bytes()
	}
	cases := []struct {
		name    string
		payload []byte
		last    bool
		want    string
		ok      bool
	}{
		{"standard", get("Host: blocked.com"), false, "blocked.com", true},
		{"upper-value", get("Host: BLOCKED.com"), false, "blocked.com", true},
		{"case-HOst", get("HOst: blocked.com"), false, "", false},
		{"case-HOST", get("HOST: blocked.com"), false, "", false},
		{"double-space", get("Host:  blocked.com"), false, "", false},
		{"tab-sep", get("Host:\tblocked.com"), false, "", false},
		{"trailing-space", get("Host: blocked.com "), false, "", false},
		{"trailing-tab", get("Host: blocked.com\t"), false, "", false},
		{"first-of-two", get("Host: blocked.com", "Host: allowed.com"), false, "blocked.com", true},
		{"last-of-two", get("Host: blocked.com", "Host: allowed.com"), true, "allowed.com", true},
		{"domain-in-path", []byte("GET /blocked.com HTTP/1.1\r\nHost: allowed.com\r\n\r\n"), false, "allowed.com", true},
		{"no-host", get("Accept: */*"), false, "", false},
		{"lowercase-method", []byte("get / HTTP/1.1\r\nHost: blocked.com\r\n\r\n"), false, "", false},
		{"not-http", []byte("\x16\x03\x01 tls bytes"), false, "", false},
		{"fragment-without-method", []byte("ost: blocked.com\r\n\r\n"), false, "", false},
		{
			"multi-host-after-end",
			append(get("Host: blocked.com"), []byte(" Host: allowed.com\r\n\r\n")...),
			true, "allowed.com", true,
		},
	}
	for _, c := range cases {
		got, ok := ExtractHost(c.payload, c.last)
		if got != c.want || ok != c.ok {
			t.Errorf("%s: ExtractHost = (%q,%v), want (%q,%v)", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestPropertyExtractHostRobust(t *testing.T) {
	f := func(payload []byte, last bool) bool {
		got, ok := ExtractHost(payload, last)
		if !ok {
			return got == ""
		}
		return bytes.HasPrefix(payload, []byte("GET ")) && got != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// fixture: client -- r0 -- r1(box) -- r2 -- server, with a websim server
// hosting one censored and one clean domain.
type fixture struct {
	eng     *sim.Engine
	net     *netsim.Network
	chost   *netsim.Host
	cstack  *tcpsim.Stack
	server  *websim.Server
	sstack  *tcpsim.Stack
	saddr   netip.Addr
	routers []*netsim.Router
	blocked *websim.Site
	clean   *websim.Site
}

const clientPrefix = "10.5.0.0/16"

func newFixture(t testing.TB) *fixture {
	eng := sim.NewEngine(21)
	n := netsim.New(eng)
	rs := make([]*netsim.Router, 3)
	for i := range rs {
		rs[i] = n.AddRouter("r", 77, netip.AddrFrom4([4]byte{100, 70, byte(i), 1}))
		if i > 0 {
			n.Link(rs[i-1], rs[i], time.Millisecond)
		}
	}
	rs[1].Anonymized = true // middlebox routers traceroute as asterisks
	ch := n.AddHost(netip.MustParseAddr("10.5.0.2"), rs[0], time.Millisecond)
	sh := n.AddHost(netip.MustParseAddr("151.10.3.9"), rs[2], time.Millisecond)
	n.ClaimPrefix(netip.MustParsePrefix(clientPrefix), rs[0])
	n.Build()

	cat := websim.NewCatalog(20, 0)
	blocked, clean := cat.PBW[0], cat.PBW[1]
	sstack := tcpsim.NewStack(sh)
	srv := websim.NewServer(sstack, websim.RegionUS, websim.ProfileStandard)
	srv.Host(blocked)
	srv.Host(clean)

	return &fixture{
		eng: eng, net: n, chost: ch, cstack: tcpsim.NewStack(ch),
		server: srv, sstack: sstack, saddr: sh.Addr(), routers: rs,
		blocked: blocked, clean: clean,
	}
}

func (f *fixture) config(scope Scope, style NotifStyle, lastHost bool) Config {
	return Config{
		ID: "box-1", ASN: 77,
		Blocklist:     NewBlocklist([]string{f.blocked.Domain}),
		Scope:         scope,
		OwnPrefixes:   []netip.Prefix{netip.MustParsePrefix(clientPrefix)},
		LastHostMatch: lastHost,
		Style:         style,
	}
}

// doGET opens a connection and sends a standard GET for the domain,
// returning the conn after letting the exchange settle.
func (f *fixture) doGET(t testing.TB, domain string) *tcpsim.Conn {
	c := f.cstack.Connect(f.saddr, 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		if t != nil {
			t.Fatal(err)
		}
		return c
	}
	f.eng.RunFor(20 * time.Millisecond)
	c.Send(httpwire.NewGET("/").Header("Host", domain).Bytes())
	f.eng.RunFor(2 * time.Second)
	return c
}

func TestWiretapInjectsNotificationAndRST(t *testing.T) {
	f := newFixture(t)
	wm := NewWiretap(f.net, f.config(ScopeSrcOnly, StyleAirtel, false), 0)
	f.routers[1].AttachTap(wm)
	f.chost.StartCapture()
	c := f.doGET(t, f.blocked.Domain)

	if wm.Triggers != 1 {
		t.Fatalf("Triggers = %d", wm.Triggers)
	}
	if !c.PeerClosed() {
		t.Error("client should have accepted the forged FIN")
	}
	if !bytes.Contains(c.Stream(), []byte("airtel.in/dot")) {
		t.Errorf("stream missing notification: %q", c.Stream())
	}
	if _, reset := c.WasReset(); !reset && !c.Dead() {
		// The follow-up RST may land after the FIN already moved the conn
		// to CLOSE-WAIT; state must at least be dead or reset by now once
		// the real response arrives and the stack answers it.
		t.Logf("state = %v", c.State())
	}
	// The real response did arrive but must not be in the stream.
	if bytes.Contains(c.Stream(), []byte(f.blocked.Domain+" portal")) {
		t.Error("real content leaked into the stream")
	}
	// Injected packets carry Airtel's fixed IP-ID 242.
	found := false
	for _, rec := range f.chost.Captures() {
		if rec.Dir == netsim.DirIn && rec.Pkt.IP.ID == 242 {
			found = true
		}
	}
	if !found {
		t.Error("no injected packet with IP-ID 242 captured")
	}
}

func TestWiretapLosesRace(t *testing.T) {
	f := newFixture(t)
	wm := NewWiretap(f.net, f.config(ScopeSrcOnly, StyleAirtel, false), 1.0) // always slow
	f.routers[1].AttachTap(wm)
	c := f.doGET(t, f.blocked.Domain)
	if wm.Triggers != 1 || wm.LostRaces != 1 {
		t.Fatalf("Triggers=%d LostRaces=%d", wm.Triggers, wm.LostRaces)
	}
	if !bytes.Contains(c.Stream(), []byte("portal")) {
		t.Errorf("real content should have won the race: %q", c.Stream())
	}
	if bytes.Contains(c.Stream(), []byte("airtel.in/dot")) {
		t.Error("stale forged notification accepted")
	}
}

func TestWiretapRaceRatio(t *testing.T) {
	f := newFixture(t)
	wm := NewWiretap(f.net, f.config(ScopeSrcOnly, StyleAirtel, false), 0.3)
	f.routers[1].AttachTap(wm)
	rendered := 0
	const n = 100
	for i := 0; i < n; i++ {
		c := f.doGET(t, f.blocked.Domain)
		if bytes.Contains(c.Stream(), []byte("portal")) {
			rendered++
		}
		c.Abort()
		f.eng.RunFor(time.Second)
	}
	if rendered < 15 || rendered > 45 {
		t.Errorf("rendered %d/100, want ~30 (paper: ~3 in 10)", rendered)
	}
}

func TestWiretapIgnoresCleanAndOtherPorts(t *testing.T) {
	f := newFixture(t)
	wm := NewWiretap(f.net, f.config(ScopeSrcOnly, StyleAirtel, false), 0)
	f.routers[1].AttachTap(wm)
	c := f.doGET(t, f.clean.Domain)
	if wm.Triggers != 0 {
		t.Errorf("clean domain triggered")
	}
	if !bytes.Contains(c.Stream(), []byte("portal")) {
		t.Errorf("clean fetch failed: %q", c.Stream())
	}
	// Same censored Host on a non-80 port must be ignored.
	f.sstack.Listen(8080, func(sc *tcpsim.Conn) {})
	c2 := f.cstack.Connect(f.saddr, 8080)
	if err := c2.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	c2.Send(httpwire.NewGET("/").Header("Host", f.blocked.Domain).Bytes())
	f.eng.RunFor(time.Second)
	if wm.Triggers != 0 {
		t.Error("port-8080 traffic inspected")
	}
}

// Statefulness: without an observed full handshake the boxes stay silent
// (§4.2.1 caveat experiments).
func TestStatefulnessRequiresHandshake(t *testing.T) {
	f := newFixture(t)
	wm := NewWiretap(f.net, f.config(ScopeSrcOnly, StyleAirtel, false), 0)
	f.routers[1].AttachTap(wm)

	send := func(seg *netpkt.TCPSegment) {
		pkt := netpkt.NewTCP(f.chost.Addr(), f.saddr, seg)
		pkt.IP.TTL = 2 // past the box, short of the server
		f.chost.Send(pkt)
		f.eng.RunFor(200 * time.Millisecond)
	}
	get := httpwire.NewGET("/").Header("Host", f.blocked.Domain).Bytes()
	// SYN then GET, no handshake completion.
	send(&netpkt.TCPSegment{SrcPort: 5000, DstPort: 80, Seq: 100, Flags: netpkt.SYN})
	send(&netpkt.TCPSegment{SrcPort: 5000, DstPort: 80, Seq: 101, Ack: 1, Flags: netpkt.PSH | netpkt.ACK, Payload: get})
	if wm.Triggers != 0 {
		t.Error("SYN+GET without handshake triggered")
	}
	// Bare GET with no preceding handshake at all.
	send(&netpkt.TCPSegment{SrcPort: 5001, DstPort: 80, Seq: 500, Ack: 1, Flags: netpkt.PSH | netpkt.ACK, Payload: get})
	if wm.Triggers != 0 {
		t.Error("handshake-less GET triggered")
	}
	// SYN+ACK first (wrong direction opener) then GET.
	send(&netpkt.TCPSegment{SrcPort: 5002, DstPort: 80, Seq: 9, Ack: 4, Flags: netpkt.SYN | netpkt.ACK})
	send(&netpkt.TCPSegment{SrcPort: 5002, DstPort: 80, Seq: 10, Ack: 5, Flags: netpkt.PSH | netpkt.ACK, Payload: get})
	if wm.Triggers != 0 {
		t.Error("SYN+ACK-opened flow triggered")
	}
}

func TestStateTimeoutPurges(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(ScopeSrcOnly, StyleAirtel, false)
	cfg.StateTimeout = 150 * time.Second
	wm := NewWiretap(f.net, cfg, 0)
	f.routers[1].AttachTap(wm)
	c := f.cstack.Connect(f.saddr, 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	f.eng.RunFor(4 * time.Minute) // exceed the 2-3 minute state window
	c.Send(httpwire.NewGET("/").Header("Host", f.blocked.Domain).Bytes())
	f.eng.RunFor(2 * time.Second)
	if wm.Triggers != 0 {
		t.Error("GET on purged flow state triggered censorship")
	}
	if !bytes.Contains(c.Stream(), []byte("portal")) {
		t.Errorf("content should arrive uncensored after state purge: %q", c.Stream())
	}
}

func TestStateRefreshKeepsFlowAlive(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(ScopeSrcOnly, StyleAirtel, false)
	cfg.StateTimeout = 150 * time.Second
	wm := NewWiretap(f.net, cfg, 0)
	f.routers[1].AttachTap(wm)
	c := f.cstack.Connect(f.saddr, 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	// Keep the flow warm with harmless traffic every minute.
	for i := 0; i < 4; i++ {
		f.eng.RunFor(time.Minute)
		c.SendRaw([]byte("X"), tcpsim.RawOpts{Advance: true})
	}
	c.Send(httpwire.NewGET("/").Header("Host", f.blocked.Domain).Bytes())
	f.eng.RunFor(2 * time.Second)
	if wm.Triggers != 1 {
		t.Errorf("refreshed flow should still be inspected; Triggers = %d", wm.Triggers)
	}
}

func TestInterceptorOvert(t *testing.T) {
	f := newFixture(t)
	im := NewInterceptor(f.net, f.config(ScopeSrcOnly, StyleIdea, false), true)
	f.routers[1].AttachInline(im)
	before := f.server.Requests
	c := f.doGET(t, f.blocked.Domain)

	if im.Triggers != 1 {
		t.Fatalf("Triggers = %d", im.Triggers)
	}
	if f.server.Requests != before {
		t.Error("GET reached the server through an interceptive box")
	}
	if !bytes.Contains(c.Stream(), []byte("competent Government Authority")) {
		t.Errorf("client missing notification: %q", c.Stream())
	}
	// The client's teardown must blackhole: Close then verify the FIN is
	// swallowed and the connection never finishes cleanly.
	c.Close()
	f.eng.RunFor(5 * time.Second)
	if c.State() == tcpsim.StateClosed {
		t.Error("teardown completed despite blackholing")
	}
	if im.Blackholed == 0 {
		t.Error("no packets blackholed")
	}
}

func TestInterceptorServerSideRST(t *testing.T) {
	f := newFixture(t)
	im := NewInterceptor(f.net, f.config(ScopeSrcOnly, StyleIdea, false), true)
	f.routers[1].AttachInline(im)
	var sconn *tcpsim.Conn
	f.sstack.Listen(80, func(c *tcpsim.Conn) { sconn = c })
	f.doGET(t, f.blocked.Domain)
	if sconn == nil {
		t.Fatal("server never accepted the handshake")
	}
	seg, reset := sconn.WasReset()
	if !reset {
		t.Fatal("server connection not reset by middlebox")
	}
	if len(sconn.Stream()) != 0 {
		t.Error("server received request bytes")
	}
	_ = seg
}

func TestInterceptorCovert(t *testing.T) {
	f := newFixture(t)
	im := NewInterceptor(f.net, f.config(ScopeSrcOnly, StyleVodafone, false), false)
	f.routers[1].AttachInline(im)
	c := f.doGET(t, f.blocked.Domain)
	if im.Triggers != 1 {
		t.Fatalf("Triggers = %d", im.Triggers)
	}
	if len(c.Stream()) != 0 {
		t.Errorf("covert box must not send content: %q", c.Stream())
	}
	if _, reset := c.WasReset(); !reset {
		t.Error("client not reset")
	}
}

func TestScopeSrcOnlyIgnoresInbound(t *testing.T) {
	f := newFixture(t)
	// Reverse roles: an outside host (the server side) probes toward the
	// client prefix. Attach a server on the client host.
	im := NewInterceptor(f.net, f.config(ScopeSrcOnly, StyleIdea, false), true)
	f.routers[1].AttachInline(im)
	f.cstack.Listen(80, func(c *tcpsim.Conn) {})
	probe := f.sstack.Connect(f.chost.Addr(), 80)
	if err := probe.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	probe.Send(httpwire.NewGET("/").Header("Host", f.blocked.Domain).Bytes())
	f.eng.RunFor(2 * time.Second)
	if im.Triggers != 0 {
		t.Error("src-only box inspected outside-sourced probe")
	}

	// Same probe against a ScopeSrcOrDst box must trigger.
	f2 := newFixture(t)
	im2 := NewInterceptor(f2.net, f2.config(ScopeSrcOrDst, StyleIdea, false), true)
	f2.routers[1].AttachInline(im2)
	f2.cstack.Listen(80, func(c *tcpsim.Conn) {})
	probe2 := f2.sstack.Connect(f2.chost.Addr(), 80)
	if err := probe2.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	probe2.Send(httpwire.NewGET("/").Header("Host", f2.blocked.Domain).Bytes())
	f2.eng.RunFor(2 * time.Second)
	if im2.Triggers != 1 {
		t.Error("src-or-dst box missed inbound probe")
	}
}

func TestCovertLastHostMatching(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(ScopeSrcOnly, StyleVodafone, true)
	im := NewInterceptor(f.net, cfg, false)
	f.routers[1].AttachInline(im)
	// The multiple-Host evasion: censored first, clean appended after the
	// end of the request.
	c := f.cstack.Connect(f.saddr, 80)
	if err := c.WaitEstablished(time.Second); err != nil {
		t.Fatal(err)
	}
	payload := append(httpwire.NewGET("/").Header("Host", f.blocked.Domain).Bytes(),
		[]byte(" Host: "+f.clean.Domain+"\r\n\r\n")...)
	c.Send(payload)
	f.eng.RunFor(2 * time.Second)
	if im.Triggers != 0 {
		t.Error("covert box triggered despite clean last Host")
	}
	// The server still serves the real (first-Host) content plus a 400.
	if !bytes.Contains(c.Stream(), []byte("portal")) || !bytes.Contains(c.Stream(), []byte("400")) {
		t.Errorf("stream = %q", c.Stream())
	}
}

func TestDNSInjectorBeatsResolver(t *testing.T) {
	f := newFixture(t)
	inj := NewDNSInjector(f.net, f.config(ScopeSrcOnly, NotifStyle{ISP: "synthetic"}, false),
		netip.MustParseAddr("10.5.255.1"))
	f.routers[1].AttachTap(inj)
	// Fake resolver on the server host answering honestly.
	f.chost.SetUDPHandler(7000, nil)
	responses := []netip.Addr{}
	f.chost.SetUDPHandler(7000, func(p *netpkt.Packet) { responses = append(responses, p.IP.Src) })
	q, err := dnswire.NewQuery(42, f.blocked.Domain).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f.chost.Send(netpkt.NewUDP(f.chost.Addr(), f.saddr, &netpkt.UDPDatagram{SrcPort: 7000, DstPort: 53, Payload: q}))
	f.eng.RunFor(time.Second)
	if inj.Triggers != 1 {
		t.Fatalf("injector Triggers = %d", inj.Triggers)
	}
	if len(responses) == 0 {
		t.Fatal("no forged response delivered")
	}
}
