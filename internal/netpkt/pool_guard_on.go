//go:build race || repolint_debug

package netpkt

import "runtime"

// poolGuardActive reports whether the guard is compiled in (tests use it
// to skip or demand the panic path).
const poolGuardActive = true

// poolGuard pins a BufPool to one goroutine: the first Get or Put after a
// rebind binds the pool, and any touch from a different goroutine panics
// with the contract instead of corrupting the lock-free free lists. The
// engine-world ownership hand-off (campaign workers parking and adopting
// replica worlds) goes through BufPool.Rebind, which is the only legal way
// for the owner to change.
//
// The scratch array lives inside the guard (and therefore inside the
// already-heap-allocated pool), so reading the goroutine id allocates
// nothing — the zero-alloc steady-state tests run under -race and must
// stay at 0 allocs/op with the guard compiled in.
type poolGuard struct {
	owner   int64
	scratch [64]byte
}

func (g *poolGuard) check() {
	id := g.goid()
	if g.owner == 0 {
		g.owner = id
		return
	}
	if g.owner != id {
		panic("netpkt: BufPool touched from a second goroutine without Rebind; worlds are single-threaded (see BufPool doc)")
	}
}

func (g *poolGuard) rebind() { g.owner = 0 }

// goid parses the current goroutine id out of the "goroutine N [...]:"
// header runtime.Stack writes, without allocating.
func (g *poolGuard) goid() int64 {
	n := runtime.Stack(g.scratch[:], false)
	b := g.scratch[:n]
	const prefix = "goroutine "
	if len(b) < len(prefix) {
		return -1
	}
	b = b[len(prefix):]
	var id int64
	for _, c := range b {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	if id == 0 {
		return -1
	}
	return id
}
