package netpkt

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcA = netip.AddrFrom4([4]byte{10, 1, 2, 3})
	dstA = netip.AddrFrom4([4]byte{203, 0, 113, 9})
)

func TestTCPRoundTrip(t *testing.T) {
	p := NewTCP(srcA, dstA, &TCPSegment{
		SrcPort: 43512, DstPort: 80,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: SYN | ACK, Window: 65535,
		Payload: []byte("GET / HTTP/1.1\r\nHost: example.com\r\n\r\n"),
	})
	p.IP.TTL = 9
	p.IP.ID = 242
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.IP != p.IP {
		t.Errorf("IP header mismatch: %+v vs %+v", q.IP, p.IP)
	}
	if q.TCP == nil {
		t.Fatal("TCP layer lost")
	}
	if q.TCP.Seq != p.TCP.Seq || q.TCP.Ack != p.TCP.Ack || q.TCP.Flags != p.TCP.Flags ||
		q.TCP.SrcPort != p.TCP.SrcPort || q.TCP.DstPort != p.TCP.DstPort || q.TCP.Window != p.TCP.Window {
		t.Errorf("TCP header mismatch: %+v vs %+v", q.TCP, p.TCP)
	}
	if !bytes.Equal(q.TCP.Payload, p.TCP.Payload) {
		t.Errorf("payload mismatch")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := NewUDP(srcA, dstA, &UDPDatagram{SrcPort: 5353, DstPort: 53, Payload: []byte{1, 2, 3, 4, 5}})
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.UDP == nil || q.UDP.SrcPort != 5353 || q.UDP.DstPort != 53 || !bytes.Equal(q.UDP.Payload, p.UDP.Payload) {
		t.Errorf("UDP mismatch: %+v", q.UDP)
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	p := &Packet{
		IP:   IPv4{Src: srcA, Dst: dstA, TTL: 64, Protocol: ProtoICMP},
		ICMP: &ICMPMessage{Type: ICMPEchoRequest, ID: 77, Seq: 3},
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.ICMP.Type != ICMPEchoRequest || q.ICMP.ID != 77 || q.ICMP.Seq != 3 {
		t.Errorf("ICMP echo mismatch: %+v", q.ICMP)
	}
}

func TestTimeExceededEmbedsOriginalFlow(t *testing.T) {
	probe := NewTCP(srcA, dstA, &TCPSegment{SrcPort: 40000, DstPort: 80, Seq: 1, Flags: SYN})
	probe.IP.TTL = 1
	router := netip.AddrFrom4([4]byte{100, 64, 0, 1})
	te := NewTimeExceeded(router, probe)
	b, err := te.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.IP.Src != router || q.IP.Dst != srcA {
		t.Errorf("time-exceeded addressed wrong: %v > %v", q.IP.Src, q.IP.Dst)
	}
	fk, ok := q.ICMP.OriginalFlow()
	if !ok {
		t.Fatal("OriginalFlow failed")
	}
	want := FlowKey{Src: srcA, Dst: dstA, SrcPort: 40000, DstPort: 80, Proto: ProtoTCP}
	if fk != want {
		t.Errorf("original flow = %v, want %v", fk, want)
	}
}

func TestCorruptionDetected(t *testing.T) {
	p := NewTCP(srcA, dstA, &TCPSegment{SrcPort: 1, DstPort: 2, Payload: []byte("hello")})
	b, _ := p.Marshal()
	for _, i := range []int{8 /*TTL*/, 13 /*src ip*/, 22 /*tcp*/, len(b) - 1 /*payload*/} {
		c := append([]byte(nil), b...)
		c[i] ^= 0xff
		if _, err := Parse(c); err == nil {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x45},
		bytes.Repeat([]byte{0}, 20), // version 0
		append([]byte{0x46}, make([]byte, 19)...), // IHL beyond buffer
	}
	for i, b := range cases {
		if _, err := Parse(b); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: srcA, Dst: dstA, SrcPort: 1234, DstPort: 80, Proto: ProtoTCP}
	r := k.Reverse()
	if r.Src != dstA || r.Dst != srcA || r.SrcPort != 80 || r.DstPort != 1234 {
		t.Errorf("Reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Error("double reverse should be identity")
	}
}

func TestSeqSpan(t *testing.T) {
	cases := []struct {
		seg  TCPSegment
		want uint32
	}{
		{TCPSegment{Flags: SYN}, 1},
		{TCPSegment{Flags: FIN}, 1},
		{TCPSegment{Flags: SYN | FIN}, 2},
		{TCPSegment{Flags: ACK}, 0},
		{TCPSegment{Flags: PSH | ACK, Payload: make([]byte, 10)}, 10},
		{TCPSegment{Flags: FIN | PSH | ACK, Payload: make([]byte, 5)}, 6},
	}
	for i, c := range cases {
		if got := c.seg.SeqSpan(); got != c.want {
			t.Errorf("case %d: SeqSpan = %d, want %d", i, got, c.want)
		}
	}
}

func TestClone(t *testing.T) {
	p := NewTCP(srcA, dstA, &TCPSegment{SrcPort: 1, DstPort: 2, Payload: []byte("abc")})
	q := p.Clone()
	q.TCP.Payload[0] = 'X'
	q.TCP.Seq = 999
	if p.TCP.Payload[0] != 'a' || p.TCP.Seq == 999 {
		t.Error("Clone aliases original")
	}
}

func TestFlagsString(t *testing.T) {
	if s := (SYN | ACK).String(); s != "SYN+ACK" {
		t.Errorf("SYN|ACK = %q", s)
	}
	if s := (FIN | PSH | ACK).String(); s != "ACK+FIN+PSH" {
		t.Errorf("FIN|PSH|ACK = %q", s)
	}
	if s := TCPFlags(0).String(); s != "none" {
		t.Errorf("zero flags = %q", s)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0x0001, 0xf203, 0xf4f5, 0xf6f7 -> sum 0xddf2 -> ^= 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := checksum(b); got != 0x220d {
		t.Errorf("checksum = %#04x, want 0x220d", got)
	}
}

// Property: Marshal/Parse round-trips arbitrary TCP segments.
func TestPropertyTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		p := NewTCP(srcA, dstA, &TCPSegment{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			Flags: TCPFlags(flags & 0x3f), Window: win, Payload: payload,
		})
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Parse(b)
		if err != nil {
			return false
		}
		return q.TCP.Seq == seq && q.TCP.Ack == ack && q.TCP.Flags == TCPFlags(flags&0x3f) &&
			bytes.Equal(q.TCP.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: UDP round-trips arbitrary payloads.
func TestPropertyUDPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		p := NewUDP(srcA, dstA, &UDPDatagram{SrcPort: sp, DstPort: dp, Payload: payload})
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Parse(b)
		if err != nil {
			return false
		}
		return q.UDP.SrcPort == sp && q.UDP.DstPort == dp && bytes.Equal(q.UDP.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshalTCP(b *testing.B) {
	p := NewTCP(srcA, dstA, &TCPSegment{SrcPort: 1234, DstPort: 80, Payload: make([]byte, 512)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseTCP(b *testing.B) {
	p := NewTCP(srcA, dstA, &TCPSegment{SrcPort: 1234, DstPort: 80, Payload: make([]byte, 512)})
	buf, _ := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(buf); err != nil {
			b.Fatal(err)
		}
	}
}
