package netpkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ICMPType is the ICMP message type.
type ICMPType uint8

// ICMP types used by the simulation.
const (
	ICMPEchoReply      ICMPType = 0
	ICMPDestUnreach    ICMPType = 3
	ICMPEchoRequest    ICMPType = 8
	ICMPTimeExceeded   ICMPType = 11
	icmpPortUnreachCod uint8    = 3
)

// ICMPMessage is an ICMP message. For error messages (Time Exceeded,
// Destination Unreachable), Original carries the embedded bytes of the
// offending datagram — IP header plus at least 8 payload bytes, as RFC 792
// requires — which is how traceroute implementations (and our Iterative
// Network Tracer) match responses to probes.
type ICMPMessage struct {
	Type     ICMPType
	Code     uint8
	ID, Seq  uint16 // echo only
	Original []byte // error messages only
}

// Kind renders the message type for traces.
func (m *ICMPMessage) Kind() string {
	switch m.Type {
	case ICMPEchoReply:
		return "echo-reply"
	case ICMPEchoRequest:
		return "echo-request"
	case ICMPTimeExceeded:
		return "time-exceeded"
	case ICMPDestUnreach:
		if m.Code == icmpPortUnreachCod {
			return "port-unreachable"
		}
		return fmt.Sprintf("dest-unreachable(code=%d)", m.Code)
	default:
		return fmt.Sprintf("icmp(type=%d,code=%d)", m.Type, m.Code)
	}
}

const icmpHeaderLen = 8

func (m *ICMPMessage) appendMarshal(dst []byte) []byte {
	start := len(dst)
	var hdr [icmpHeaderLen]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, m.Original...)
	b := dst[start:]
	b[0] = uint8(m.Type)
	b[1] = m.Code
	switch m.Type {
	case ICMPEchoRequest, ICMPEchoReply:
		binary.BigEndian.PutUint16(b[4:6], m.ID)
		binary.BigEndian.PutUint16(b[6:8], m.Seq)
	}
	binary.BigEndian.PutUint16(b[2:4], checksum(b))
	return dst
}

func parseICMP(b []byte) (*ICMPMessage, error) {
	if len(b) < icmpHeaderLen {
		return nil, fmt.Errorf("netpkt: short ICMP message (%d bytes)", len(b))
	}
	if checksum(b) != 0 {
		return nil, fmt.Errorf("netpkt: ICMP checksum mismatch")
	}
	m := &ICMPMessage{Type: ICMPType(b[0]), Code: b[1]}
	switch m.Type {
	case ICMPEchoRequest, ICMPEchoReply:
		m.ID = binary.BigEndian.Uint16(b[4:6])
		m.Seq = binary.BigEndian.Uint16(b[6:8])
	default:
		m.Original = append([]byte(nil), b[icmpHeaderLen:]...)
	}
	return m, nil
}

// icmpQuoteLen is how much of the expired datagram an ICMP error embeds.
// RFC 792: IP header + 64 bits of original payload. Modern stacks embed
// more; we keep 28 bytes (20-byte header + 8), enough for flow matching.
const icmpQuoteLen = 28

// AppendQuote appends the first icmpQuoteLen bytes of the packet's wire
// image to dst — the quote an ICMP error embeds — byte-identical to a
// full AppendMarshal truncated to that length. For TCP the quoted
// transport prefix is just ports plus sequence number, none of which
// touch the transport checksum, so the quote is built directly without
// serializing the payload; other transports (whose checksum field sits
// inside the quote) fall back to a full marshal.
func (p *Packet) AppendQuote(dst []byte) ([]byte, error) {
	if p.TCP != nil && p.IP.Protocol == ProtoTCP {
		start := len(dst)
		var quote [icmpQuoteLen]byte
		dst = append(dst, quote[:]...)
		b := dst[start:]
		p.fillIPv4Header(b, p.WireLen())
		binary.BigEndian.PutUint16(b[20:22], p.TCP.SrcPort)
		binary.BigEndian.PutUint16(b[22:24], p.TCP.DstPort)
		binary.BigEndian.PutUint32(b[24:28], p.TCP.Seq)
		return dst, nil
	}
	start := len(dst)
	out, err := p.AppendMarshal(dst)
	if err != nil {
		return out, err
	}
	if len(out)-start > icmpQuoteLen {
		out = out[:start+icmpQuoteLen]
	}
	return out, nil
}

// NewTimeExceeded builds the ICMP Time Exceeded message a router at
// routerAddr sends back to the source of expired, embedding the first bytes
// of the expired datagram.
func NewTimeExceeded(routerAddr netip.Addr, expired *Packet) *Packet {
	wire, err := expired.Marshal()
	if err != nil {
		wire = nil
	}
	return NewTimeExceededFromWire(routerAddr, expired.IP.Src, wire)
}

// NewTimeExceededFromWire is NewTimeExceeded for callers that already hold
// the expired datagram's wire bytes (e.g. marshaled into a pooled scratch
// buffer): wire is quoted — copied, never retained — so the caller keeps
// ownership of it.
func NewTimeExceededFromWire(routerAddr, expiredSrc netip.Addr, wire []byte) *Packet {
	if len(wire) > icmpQuoteLen {
		wire = wire[:icmpQuoteLen]
	}
	return &Packet{
		IP:   IPv4{Src: routerAddr, Dst: expiredSrc, TTL: 64, Protocol: ProtoICMP},
		ICMP: &ICMPMessage{Type: ICMPTimeExceeded, Code: 0, Original: append([]byte(nil), wire...)},
	}
}

// OriginalFlow recovers the flow key of the datagram embedded in an ICMP
// error message, so probes can match Time Exceeded responses to the probe
// that elicited them.
func (m *ICMPMessage) OriginalFlow() (FlowKey, bool) {
	b := m.Original
	if len(b) < ipv4HeaderLen+4 {
		return FlowKey{}, false
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl+4 {
		return FlowKey{}, false
	}
	return FlowKey{
		Src:     netip.AddrFrom4([4]byte(b[12:16])),
		Dst:     netip.AddrFrom4([4]byte(b[16:20])),
		Proto:   Protocol(b[9]),
		SrcPort: binary.BigEndian.Uint16(b[ihl : ihl+2]),
		DstPort: binary.BigEndian.Uint16(b[ihl+2 : ihl+4]),
	}, true
}
