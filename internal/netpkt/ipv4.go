package netpkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IPv4 is the fixed part of an IPv4 header (no options).
type IPv4 struct {
	Src, Dst netip.Addr
	TTL      uint8
	Protocol Protocol
	ID       uint16 // identification field; Airtel's wiretap boxes pin this to 242
	DF       bool   // don't-fragment
	TOS      uint8
}

// ipv4HeaderLen is the length of an optionless IPv4 header.
const ipv4HeaderLen = 20

// Marshal serializes the whole packet (IP header + transport) into wire
// bytes with valid checksums.
func (p *Packet) Marshal() ([]byte, error) {
	return p.AppendMarshal(nil)
}

// WireLen returns the packet's marshaled size in bytes without
// serializing, so pooled buffers can be sized to hold the wire image
// outright.
func (p *Packet) WireLen() int {
	n := ipv4HeaderLen
	switch {
	case p.TCP != nil:
		n += tcpHeaderLen + len(p.TCP.Payload)
	case p.UDP != nil:
		n += udpHeaderLen + len(p.UDP.Payload)
	case p.ICMP != nil:
		n += icmpHeaderLen + len(p.ICMP.Original)
	}
	return n
}

// AppendMarshal appends the packet's wire bytes (IP header + transport,
// valid checksums) to dst and returns the extended slice. With a recycled
// dst — typically one from a BufPool — serialization allocates nothing.
func (p *Packet) AppendMarshal(dst []byte) ([]byte, error) {
	start := len(dst)
	var zero [ipv4HeaderLen]byte
	dst = append(dst, zero[:]...)
	var err error
	switch {
	case p.TCP != nil:
		if p.IP.Protocol != ProtoTCP {
			return dst[:start], fmt.Errorf("netpkt: protocol %v with TCP layer", p.IP.Protocol)
		}
		dst, err = p.TCP.appendMarshal(dst, p.IP.Src, p.IP.Dst)
	case p.UDP != nil:
		if p.IP.Protocol != ProtoUDP {
			return dst[:start], fmt.Errorf("netpkt: protocol %v with UDP layer", p.IP.Protocol)
		}
		dst, err = p.UDP.appendMarshal(dst, p.IP.Src, p.IP.Dst)
	case p.ICMP != nil:
		if p.IP.Protocol != ProtoICMP {
			return dst[:start], fmt.Errorf("netpkt: protocol %v with ICMP layer", p.IP.Protocol)
		}
		dst = p.ICMP.appendMarshal(dst)
	default:
		return dst[:start], fmt.Errorf("netpkt: packet has no transport layer")
	}
	if err != nil {
		return dst[:start], err
	}
	total := len(dst) - start
	if total > 0xffff {
		return dst[:start], fmt.Errorf("netpkt: packet too large (%d bytes)", total)
	}
	p.fillIPv4Header(dst[start:], total)
	return dst, nil
}

// fillIPv4Header writes the packet's IPv4 header (with checksum) into the
// first 20 bytes of b, declaring a datagram of total wire length total.
// Every header byte is written, so b need not be zeroed.
func (p *Packet) fillIPv4Header(b []byte, total int) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.IP.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], p.IP.ID)
	b[6] = 0
	if p.IP.DF {
		b[6] = 0x40
	}
	b[7] = 0
	b[8] = p.IP.TTL
	b[9] = uint8(p.IP.Protocol)
	b[10], b[11] = 0, 0
	src, dstAddr := p.IP.Src.As4(), p.IP.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dstAddr[:])
	binary.BigEndian.PutUint16(b[10:12], checksum(b[:ipv4HeaderLen]))
}

// Parse decodes wire bytes produced by Marshal (or any optionless IPv4
// packet) back into a Packet, verifying header checksums.
func Parse(b []byte) (*Packet, error) {
	if len(b) < ipv4HeaderLen {
		return nil, fmt.Errorf("netpkt: short IPv4 header (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("netpkt: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("netpkt: bad IHL %d", ihl)
	}
	if checksum(b[:ihl]) != 0 {
		return nil, fmt.Errorf("netpkt: IPv4 header checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return nil, fmt.Errorf("netpkt: bad total length %d", total)
	}
	p := &Packet{IP: IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		DF:       b[6]&0x40 != 0,
		TTL:      b[8],
		Protocol: Protocol(b[9]),
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
	}}
	payload := b[ihl:total]
	var err error
	switch p.IP.Protocol {
	case ProtoTCP:
		p.TCP, err = parseTCP(payload, p.IP.Src, p.IP.Dst)
	case ProtoUDP:
		p.UDP, err = parseUDP(payload, p.IP.Src, p.IP.Dst)
	case ProtoICMP:
		p.ICMP, err = parseICMP(payload)
	default:
		err = fmt.Errorf("netpkt: unsupported protocol %d", p.IP.Protocol)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

// checksum computes the RFC 1071 Internet checksum of b.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP/UDP pseudo-header partial sum.
func pseudoHeaderSum(src, dst netip.Addr, proto Protocol, length int) uint32 {
	var sum uint32
	s, d := src.As4(), dst.As4()
	sum += uint32(binary.BigEndian.Uint16(s[0:2])) + uint32(binary.BigEndian.Uint16(s[2:4]))
	sum += uint32(binary.BigEndian.Uint16(d[0:2])) + uint32(binary.BigEndian.Uint16(d[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// checksumWithPseudo folds a pseudo-header sum together with segment bytes.
func checksumWithPseudo(pseudo uint32, b []byte) uint16 {
	sum := pseudo
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}
