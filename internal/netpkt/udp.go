package netpkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// UDPDatagram is a UDP header plus payload.
type UDPDatagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

const udpHeaderLen = 8

func (u *UDPDatagram) appendMarshal(dst []byte, src, dstAddr netip.Addr) ([]byte, error) {
	n := udpHeaderLen + len(u.Payload)
	if n > 0xffff {
		return dst, fmt.Errorf("netpkt: UDP datagram too large (%d bytes)", n)
	}
	start := len(dst)
	var hdr [udpHeaderLen]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, u.Payload...)
	b := dst[start:]
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(n))
	ck := checksumWithPseudo(pseudoHeaderSum(src, dstAddr, ProtoUDP, n), b)
	if ck == 0 {
		ck = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:8], ck)
	return dst, nil
}

func parseUDP(b []byte, src, dst netip.Addr) (*UDPDatagram, error) {
	if len(b) < udpHeaderLen {
		return nil, fmt.Errorf("netpkt: short UDP header (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint16(b[4:6]))
	if n < udpHeaderLen || n > len(b) {
		return nil, fmt.Errorf("netpkt: bad UDP length %d", n)
	}
	if binary.BigEndian.Uint16(b[6:8]) != 0 {
		if checksumWithPseudo(pseudoHeaderSum(src, dst, ProtoUDP, n), b[:n]) != 0 {
			return nil, fmt.Errorf("netpkt: UDP checksum mismatch")
		}
	}
	return &UDPDatagram{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Payload: append([]byte(nil), b[udpHeaderLen:n]...),
	}, nil
}

// NewUDP builds a UDP packet with TTL 64.
func NewUDP(src, dst netip.Addr, d *UDPDatagram) *Packet {
	return &Packet{
		IP:  IPv4{Src: src, Dst: dst, TTL: 64, Protocol: ProtoUDP},
		UDP: d,
	}
}
