package netpkt

import (
	"math/bits"

	"repro/obs"
)

// BufPool is a free list of byte buffers for one engine's packet path:
// wire images marshaled for ingress filters, ICMP quotes, and any other
// transient serialization come out of the pool and go back at an explicit
// release point instead of churning the garbage collector. Buffers are
// kept in power-of-two size classes from 64 bytes to 64 KiB (an IPv4
// packet never exceeds 64 KiB).
//
// Worlds are single-threaded — every callback runs inside the engine's
// Run loop on one goroutine — so the pool deliberately takes no locks.
// It must not be shared across engines running on different goroutines.
//
// Ownership is strict: a buffer obtained from Get is the caller's until it
// is handed to Put, after which the caller must not touch it again. Put
// accepts any buffer (pooled or not) and re-files it by capacity.
type BufPool struct {
	classes [11][][]byte // 1<<6 .. 1<<16
	// Gets, Hits count traffic for instrumentation.
	Gets, Hits uint64
	// ObsGets, ObsHits mirror Gets/Hits into the owning world's telemetry
	// registry when wired (netsim.New does); nil instruments are no-ops.
	ObsGets, ObsHits *obs.Counter
	// guard enforces the single-goroutine contract in race and
	// repolint_debug builds; it compiles to nothing otherwise.
	guard poolGuard
}

// Rebind releases the pool's goroutine binding (race and repolint_debug
// builds only; a no-op otherwise). The engine's world Reset calls it at
// the hand-off point where a parked world may legitimately move to
// another campaign worker; the next Get or Put re-pins the pool to the
// goroutine that makes it.
func (p *BufPool) Rebind() { p.guard.rebind() }

const (
	poolMinShift = 6  // 64 B
	poolMaxShift = 16 // 64 KiB
)

// classFor returns the size-class index whose buffers hold at least n
// bytes, or -1 when n exceeds the poolable maximum.
func classFor(n int) int {
	if n > 1<<poolMaxShift {
		return -1
	}
	if n <= 1<<poolMinShift {
		return 0
	}
	return bits.Len(uint(n-1)) - poolMinShift
}

// Get returns a zero-length buffer with capacity at least n, recycled when
// possible.
//
//repolint:hotpath
func (p *BufPool) Get(n int) []byte {
	p.guard.check()
	p.Gets++
	p.ObsGets.Inc()
	c := classFor(n)
	if c < 0 {
		//repolint:allow alloc -- over-maximum requests bypass the pool by design
		return make([]byte, 0, n)
	}
	if free := p.classes[c]; len(free) > 0 {
		b := free[len(free)-1]
		free[len(free)-1] = nil
		p.classes[c] = free[:len(free)-1]
		p.Hits++
		p.ObsHits.Inc()
		return b[:0]
	}
	//repolint:allow alloc -- the pool refill is the designated allocation point
	return make([]byte, 0, 1<<(c+poolMinShift))
}

// Put releases a buffer back to the pool. Buffers smaller than the
// smallest class or larger than the largest are dropped for the collector.
//
//repolint:hotpath
func (p *BufPool) Put(b []byte) {
	p.guard.check()
	c := classFor(cap(b))
	if c < 0 || cap(b) < 1<<poolMinShift {
		return
	}
	// File under the class the capacity actually satisfies: a buffer that
	// grew past its class must not be handed out as the bigger size unless
	// it really holds it.
	if cap(b) < 1<<(c+poolMinShift) {
		c--
	}
	if len(p.classes[c]) >= 64 {
		return // bound the pool; the excess goes to the collector
	}
	p.classes[c] = append(p.classes[c], b[:0])
}
