//go:build race || repolint_debug

package netpkt

import "testing"

// TestPoolGuardPanicsOnCrossGoroutineUse proves the guard fires: a pool
// bound by one goroutine's Get panics when touched from another without a
// Rebind in between.
func TestPoolGuardPanicsOnCrossGoroutineUse(t *testing.T) {
	p := &BufPool{}
	p.Put(p.Get(64)) // binds the pool to the test goroutine

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		p.Get(64)
	}()
	if v := <-panicked; v == nil {
		t.Fatal("cross-goroutine Get did not panic with the pool guard compiled in")
	}
}

// TestPoolGuardRebindAllowsHandOff proves the legal ownership transfer:
// Rebind (what Network.ResetRuntime calls at the world hand-off point)
// releases the binding so the next goroutine can adopt the pool.
func TestPoolGuardRebindAllowsHandOff(t *testing.T) {
	p := &BufPool{}
	p.Put(p.Get(64))
	p.Rebind()

	res := make(chan any, 1)
	go func() {
		defer func() { res <- recover() }()
		p.Put(p.Get(64))
	}()
	if v := <-res; v != nil {
		t.Fatalf("Get after Rebind panicked: %v", v)
	}
}

// TestPoolGuardSameGoroutineQuiet pins the non-panic path: repeated use
// from the owning goroutine never trips the guard.
func TestPoolGuardSameGoroutineQuiet(t *testing.T) {
	p := &BufPool{}
	for i := 0; i < 100; i++ {
		p.Put(p.Get(256))
	}
	if p.Gets != 100 {
		t.Fatalf("Gets = %d, want 100", p.Gets)
	}
}
