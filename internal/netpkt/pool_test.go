package netpkt

import (
	"bytes"
	"net/netip"
	"testing"
)

func TestBufPoolRecycles(t *testing.T) {
	var p BufPool
	b := p.Get(100)
	if cap(b) < 100 || len(b) != 0 {
		t.Fatalf("Get(100) = len %d cap %d", len(b), cap(b))
	}
	b = append(b, make([]byte, 100)...)
	p.Put(b)
	c := p.Get(100)
	if cap(c) < 100 {
		t.Fatalf("recycled cap %d < 100", cap(c))
	}
	if p.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", p.Hits)
	}
}

func TestBufPoolClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 16, poolMaxShift - poolMinShift}, {1<<16 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestBufPoolOversized(t *testing.T) {
	var p BufPool
	b := p.Get(1 << 20)
	if cap(b) < 1<<20 {
		t.Fatalf("oversized Get cap %d", cap(b))
	}
	p.Put(b) // dropped, not filed
	for _, class := range p.classes {
		if len(class) != 0 {
			t.Fatal("oversized buffer was pooled")
		}
	}
}

// AppendMarshal into a recycled buffer must produce exactly the bytes
// Marshal produces.
func TestAppendMarshalMatchesMarshal(t *testing.T) {
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	pkts := []*Packet{
		NewTCP(src, dst, &TCPSegment{SrcPort: 1234, DstPort: 80, Seq: 9, Ack: 4,
			Flags: PSH | ACK, Window: 65535, Payload: []byte("GET / HTTP/1.1\r\n\r\n")}),
		NewUDP(src, dst, &UDPDatagram{SrcPort: 9999, DstPort: 53, Payload: []byte("query")}),
		NewTimeExceeded(src, NewUDP(dst, src, &UDPDatagram{SrcPort: 1, DstPort: 2, Payload: []byte("x")})),
	}
	var p BufPool
	for _, pkt := range pkts {
		want, err := pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		buf := p.Get(len(want))
		got, err := pkt.AppendMarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("AppendMarshal differs from Marshal for %s", pkt.Summary())
		}
		if parsed, err := Parse(got); err != nil {
			t.Errorf("Parse(AppendMarshal(%s)): %v", pkt.Summary(), err)
		} else if parsed.IP.Protocol != pkt.IP.Protocol {
			t.Errorf("round-trip protocol mismatch")
		}
		p.Put(got)
	}
}

// Steady-state marshal through the pool allocates nothing.
func TestAppendMarshalPooledZeroAlloc(t *testing.T) {
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	pkt := NewTCP(src, dst, &TCPSegment{SrcPort: 1234, DstPort: 80, Seq: 9,
		Flags: PSH | ACK, Window: 65535, Payload: []byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")})
	var p BufPool
	p.Put(p.Get(256)) // warm the class
	allocs := testing.AllocsPerRun(200, func() {
		buf := p.Get(256)
		out, err := pkt.AppendMarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(out)
	})
	if allocs != 0 {
		t.Errorf("pooled AppendMarshal allocates %.1f objects per run, want 0", allocs)
	}
}

// AppendQuote's TCP fast path must be byte-identical to a truncated full
// marshal, and WireLen must match the marshaled size.
func TestAppendQuoteMatchesTruncatedMarshal(t *testing.T) {
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")
	pkts := []*Packet{
		NewTCP(src, dst, &TCPSegment{SrcPort: 1234, DstPort: 80, Seq: 0xdeadbeef, Ack: 4,
			Flags: PSH | ACK, Window: 4096, Payload: bytes.Repeat([]byte("x"), 700)}),
		NewTCP(src, dst, &TCPSegment{SrcPort: 7, DstPort: 80, Flags: SYN, Window: 65535}),
		NewUDP(src, dst, &UDPDatagram{SrcPort: 9999, DstPort: 53, Payload: []byte("query bytes")}),
	}
	pkts[0].IP.ID = 242
	pkts[0].IP.DF = true
	for _, pkt := range pkts {
		full, err := pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if len(full) != pkt.WireLen() {
			t.Errorf("WireLen = %d, marshaled %d bytes", pkt.WireLen(), len(full))
		}
		want := full
		if len(want) > icmpQuoteLen {
			want = want[:icmpQuoteLen]
		}
		got, err := pkt.AppendQuote(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("AppendQuote differs from truncated Marshal for %s:\n got %x\nwant %x",
				pkt.Summary(), got, want)
		}
	}
}
