// Package netpkt models IPv4, TCP, UDP and ICMP packets with full wire
// serialization, in the layered style of gopacket but with zero
// dependencies. The simulator passes *Packet values between nodes; the
// Marshal/Parse pair produces and consumes real header bytes (including
// checksums), so components that must behave like on-path hardware — the
// censorship middleboxes, the client packet filter — can work from raw
// bytes exactly as their real counterparts do.
package netpkt

import (
	"fmt"
	"net/netip"
)

// Protocol is an IPv4 protocol number.
type Protocol uint8

// Protocol numbers used by the simulation (IANA assigned values).
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Packet is one IPv4 datagram with exactly one transport layer attached.
// Exactly one of TCP, UDP, ICMP is non-nil, matching IP.Protocol.
type Packet struct {
	IP   IPv4
	TCP  *TCPSegment
	UDP  *UDPDatagram
	ICMP *ICMPMessage
}

// Clone deep-copies the packet, so taps (wiretap middleboxes) can hold a
// copy without aliasing payload bytes mutated elsewhere.
func (p *Packet) Clone() *Packet {
	q := &Packet{IP: p.IP}
	if p.TCP != nil {
		t := *p.TCP
		t.Payload = append([]byte(nil), p.TCP.Payload...)
		q.TCP = &t
	}
	if p.UDP != nil {
		u := *p.UDP
		u.Payload = append([]byte(nil), p.UDP.Payload...)
		q.UDP = &u
	}
	if p.ICMP != nil {
		i := *p.ICMP
		i.Original = append([]byte(nil), p.ICMP.Original...)
		q.ICMP = &i
	}
	return q
}

// FlowKey identifies one direction of a transport flow.
type FlowKey struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            Protocol
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Flow returns the packet's flow key, or a zero key for ICMP.
func (p *Packet) Flow() FlowKey {
	switch {
	case p.TCP != nil:
		return FlowKey{Src: p.IP.Src, Dst: p.IP.Dst, SrcPort: p.TCP.SrcPort, DstPort: p.TCP.DstPort, Proto: ProtoTCP}
	case p.UDP != nil:
		return FlowKey{Src: p.IP.Src, Dst: p.IP.Dst, SrcPort: p.UDP.SrcPort, DstPort: p.UDP.DstPort, Proto: ProtoUDP}
	default:
		return FlowKey{Src: p.IP.Src, Dst: p.IP.Dst, Proto: ProtoICMP}
	}
}

// Summary renders a one-line tcpdump-style description, used by the packet
// trace renderers for Figures 1, 3 and 4.
func (p *Packet) Summary() string {
	switch {
	case p.TCP != nil:
		s := fmt.Sprintf("%s:%d > %s:%d TCP %s seq=%d ack=%d len=%d ttl=%d",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			p.TCP.Flags, p.TCP.Seq, p.TCP.Ack, len(p.TCP.Payload), p.IP.TTL)
		if p.IP.ID != 0 {
			s += fmt.Sprintf(" ipid=%d", p.IP.ID)
		}
		return s
	case p.UDP != nil:
		return fmt.Sprintf("%s:%d > %s:%d UDP len=%d ttl=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.UDP.Payload), p.IP.TTL)
	case p.ICMP != nil:
		return fmt.Sprintf("%s > %s ICMP %s", p.IP.Src, p.IP.Dst, p.ICMP.Kind())
	default:
		return fmt.Sprintf("%s > %s proto=%d", p.IP.Src, p.IP.Dst, p.IP.Protocol)
	}
}
