//go:build !race && !repolint_debug

package netpkt

// poolGuardActive reports whether the guard is compiled in.
const poolGuardActive = false

// poolGuard is compiled out in normal builds: zero size, and the no-op
// methods inline to nothing on the packet hot path.
type poolGuard struct{}

func (*poolGuard) check()  {}
func (*poolGuard) rebind() {}
