package netpkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// TCPFlags is the TCP flag bitfield.
type TCPFlags uint8

// TCP flag bits in header order.
const (
	FIN TCPFlags = 1 << 0
	SYN TCPFlags = 1 << 1
	RST TCPFlags = 1 << 2
	PSH TCPFlags = 1 << 3
	ACK TCPFlags = 1 << 4
	URG TCPFlags = 1 << 5
)

// Has reports whether all bits in f are set.
func (t TCPFlags) Has(f TCPFlags) bool { return t&f == f }

func (t TCPFlags) String() string {
	if t == 0 {
		return "none"
	}
	var parts []string
	for _, f := range []struct {
		bit  TCPFlags
		name string
	}{{SYN, "SYN"}, {ACK, "ACK"}, {FIN, "FIN"}, {RST, "RST"}, {PSH, "PSH"}, {URG, "URG"}} {
		if t.Has(f.bit) {
			parts = append(parts, f.name)
		}
	}
	return strings.Join(parts, "+")
}

// TCPSegment is a TCP header plus payload (no options).
type TCPSegment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Payload          []byte
}

const tcpHeaderLen = 20

// SeqSpan returns how much sequence space the segment consumes (payload
// length, plus one for SYN and one for FIN).
func (t *TCPSegment) SeqSpan() uint32 {
	n := uint32(len(t.Payload))
	if t.Flags.Has(SYN) {
		n++
	}
	if t.Flags.Has(FIN) {
		n++
	}
	return n
}

func (t *TCPSegment) appendMarshal(dst []byte, src, dstAddr netip.Addr) ([]byte, error) {
	start := len(dst)
	var hdr [tcpHeaderLen]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, t.Payload...)
	b := dst[start:]
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = (tcpHeaderLen / 4) << 4
	b[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], checksumWithPseudo(pseudoHeaderSum(src, dstAddr, ProtoTCP, len(b)), b))
	return dst, nil
}

func parseTCP(b []byte, src, dst netip.Addr) (*TCPSegment, error) {
	if len(b) < tcpHeaderLen {
		return nil, fmt.Errorf("netpkt: short TCP header (%d bytes)", len(b))
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < tcpHeaderLen || dataOff > len(b) {
		return nil, fmt.Errorf("netpkt: bad TCP data offset %d", dataOff)
	}
	if checksumWithPseudo(pseudoHeaderSum(src, dst, ProtoTCP, len(b)), b) != 0 {
		return nil, fmt.Errorf("netpkt: TCP checksum mismatch")
	}
	return &TCPSegment{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   TCPFlags(b[13]),
		Window:  binary.BigEndian.Uint16(b[14:16]),
		Payload: append([]byte(nil), b[dataOff:]...),
	}, nil
}

// NewTCP builds a TCP packet, filling the IP protocol field. The default
// TTL is 64, overridable by the caller afterwards.
func NewTCP(src, dst netip.Addr, seg *TCPSegment) *Packet {
	return &Packet{
		IP:  IPv4{Src: src, Dst: dst, TTL: 64, Protocol: ProtoTCP},
		TCP: seg,
	}
}
