package probe

// PrecisionRecall computes the paper's accuracy pair from a detector's
// positive set against ground truth: precision = |D∩T|/|D|, recall =
// |D∩T|/|T| (Table 1 semantics).
func PrecisionRecall(detected, truth map[string]bool) (precision, recall float64, tp int) {
	for d := range detected {
		if truth[d] {
			tp++
		}
	}
	if len(detected) > 0 {
		precision = float64(tp) / float64(len(detected))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	return precision, recall, tp
}

// SetOf converts a slice into a membership set.
func SetOf(items []string) map[string]bool {
	out := make(map[string]bool, len(items))
	for _, s := range items {
		out[s] = true
	}
	return out
}
