package probe

import (
	"bytes"
	"net/netip"

	"repro/internal/tlswire"
)

// HTTPSResult is the outcome of one HTTPS (SNI) probe.
type HTTPSResult struct {
	Domain string
	Addr   netip.Addr
	// Connected: the TCP handshake to port 443 completed.
	Connected bool
	// HandshakeOK: a ServerHello for our SNI came back — no on-path
	// element interfered with the TLS exchange.
	HandshakeOK bool
	// Reset: the connection was killed mid-handshake.
	Reset bool
	// DNSManipulated: the locally resolved address disagrees with the
	// Tor-resolved one and the handshake failed — the only HTTPS
	// "censorship" the paper found.
	DNSManipulated bool
}

// DetectHTTPS probes a domain over port 443 with a real ClientHello
// carrying the censored SNI. The paper's middleboxes inspect only port 80,
// so this must succeed whenever resolution was honest — and the
// reproduction's tests assert exactly that.
func (p *Probe) DetectHTTPS(domain string) HTTPSResult {
	res := HTTPSResult{Domain: domain}
	localAddrs, lerr := p.ResolveLocal(domain)
	torAddrs, terr := p.ResolveViaTor(domain)
	addr := netip.Addr{}
	switch {
	case lerr == nil && len(localAddrs) > 0:
		addr = localAddrs[0]
	case terr == nil && len(torAddrs) > 0:
		addr = torAddrs[0]
	default:
		return res
	}
	res.Addr = addr

	c := p.ISP.Client.TCP.Connect(addr, 443)
	if err := c.WaitEstablished(p.Timeout); err == nil {
		res.Connected = true
		var random [32]byte
		hello, err := tlswire.ClientHello(domain, random)
		if err == nil {
			c.Send(hello)
			stream := c.WaitQuiet(p.Timeout)
			res.HandshakeOK = bytes.Contains(stream, []byte("SERVERHELLO:"+domain))
		}
		_, res.Reset = c.WasReset()
		if !c.Dead() {
			c.Abort()
			p.World.Eng.RunFor(p.Timeout / 100)
		}
	}
	if !res.HandshakeOK && terr == nil && lerr == nil && len(torAddrs) > 0 && localAddrs[0] != torAddrs[0] {
		res.DNSManipulated = true
	}
	return res
}
