package probe

import (
	"net/netip"
	"time"

	"repro/internal/httpwire"
	"repro/internal/ispnet"
)

// ScanConfig sizes the coverage/consistency scans of §4.2.2.
type ScanConfig struct {
	// Paths caps the number of within-ISP scan destinations (Alexa sites).
	Paths int
	// SampleURLs is the number of PBW Host values used to classify a path
	// as poisoned (0 = the full list). The paper sent all 1200; the
	// default samples evenly and accepts a small miss probability.
	SampleURLs int
	// Attempts per URL during consistency sweeps; >1 compensates for
	// wiretap race losses, standing in for the paper's long-term repeats.
	Attempts int
	// OutsideTargets caps targets probed per vantage point.
	OutsideTargets int
	// PerURLTimeout bounds each pipelined GET.
	PerURLTimeout time.Duration
}

// DefaultScanConfig returns paper-shaped defaults.
func DefaultScanConfig() ScanConfig {
	return ScanConfig{Paths: 1000, SampleURLs: 150, Attempts: 2, OutsideTargets: 2, PerURLTimeout: 800 * time.Millisecond}
}

// PathScan is the outcome of probing one router-level path.
type PathScan struct {
	Dst      netip.Addr
	Poisoned bool
	// Blocked lists the Host values that drew censorship on this path.
	Blocked []string
}

// scanPath sends GETs with the given Host values towards dst over
// keep-alive connections, reconnecting whenever the censor kills one, and
// records which values drew a censorship response. The middleboxes are
// destination-agnostic (they match the Host field), which is exactly what
// makes this scan possible.
func scanPath(ep *ispnet.Endpoint, dst netip.Addr, hosts []string, attempts int, perURL time.Duration) *PathScan {
	res := &PathScan{Dst: dst}
	eng := ep.Host.Engine()
	conn, err := connEstablish(ep, dst, perURL*4)
	if err != nil {
		return res
	}
	consumed := 0
	for _, h := range hosts {
		blocked := false
		for a := 0; a < attempts && !blocked; a++ {
			if conn == nil || conn.Dead() {
				conn, err = connEstablish(ep, dst, perURL*4)
				if err != nil {
					conn = nil
					break
				}
				consumed = 0
			}
			conn.Send(httpwire.NewGET("/").Header("Host", h).Bytes())
			c := conn
			startLen := consumed
			_ = eng.RunUntil(perURL, func() bool {
				if c.Dead() || c.PeerClosed() {
					return true
				}
				resp := tryParseAll(c.Stream()[startLen:])
				return resp != nil
			})
			// Outcomes: censorship teardown, or an ordinary response.
			if _, reset := c.WasReset(); reset || c.PeerClosed() {
				stream := c.Stream()[startLen:]
				if reset && len(stream) == 0 {
					blocked = true // covert RST
				}
				if _, ok := MatchSignatureIn(ep.World, stream); ok {
					blocked = true
				}
				// Release the dead/half-closed connection (an overt
				// interceptive box leaves the client in CLOSE-WAIT with
				// its teardown blackholed; a real browser would reset).
				c.Abort()
				conn = nil
				continue
			}
			if resp := tryParseAll(c.Stream()[startLen:]); resp != nil {
				// Ordinary 404/200 from the destination host.
				adv := len(c.Stream()) - startLen
				consumed = startLen + adv
			}
		}
		if blocked {
			res.Blocked = append(res.Blocked, h)
			res.Poisoned = true
		}
	}
	if conn != nil && !conn.Dead() {
		conn.Abort()
		eng.RunFor(10 * time.Millisecond)
	}
	return res
}

// sampleEvenly picks n items spread evenly over the list.
func sampleEvenly(list []string, n int) []string {
	if n <= 0 || n >= len(list) {
		return list
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, list[i*len(list)/n])
	}
	return out
}

// CoverageResult reproduces one ISP's Table 2 row plus its Figure 5
// series.
type CoverageResult struct {
	ISP             string
	WithinCoverage  float64
	OutsideCoverage float64
	// Consistency is the §4.2.2 metric over poisoned paths.
	Consistency float64
	// BlockedUnion is every Host value censored on at least one path —
	// the paper's "No. of websites blocked" column.
	BlockedUnion []string
	// Series maps blocked domains to the percentage of poisoned paths
	// blocking them (Figure 5 Y values).
	Series map[string]float64

	PathsScanned  int
	PoisonedPaths int
	OutsidePaths  int
	OutsideHits   int
}

// MeasureCoverageWithin runs the within-ISP scan: TCP connections to
// Alexa destinations from the ISP client, Host values from the PBW list.
func (p *Probe) MeasureCoverageWithin(cfg ScanConfig) *CoverageResult {
	res := &CoverageResult{ISP: p.ISP.Name, Series: map[string]float64{}}
	pbw := p.World.Catalog.PBWDomains()
	sample := sampleEvenly(pbw, cfg.SampleURLs)
	alexa := p.World.Catalog.AlexaDomains()
	if cfg.Paths > 0 && cfg.Paths < len(alexa) {
		alexa = alexa[:cfg.Paths]
	}

	blockedCount := map[string]int{}
	for _, dst := range alexa {
		addrs, err := p.ResolveViaTor(dst)
		if err != nil {
			continue
		}
		// Classification pass with the sample.
		scan := scanPath(p.ISP.Client, addrs[0], sample, 1, cfg.PerURLTimeout)
		res.PathsScanned++
		if !scan.Poisoned {
			continue
		}
		res.PoisonedPaths++
		// Full consistency sweep on poisoned paths.
		full := scanPath(p.ISP.Client, addrs[0], pbw, cfg.Attempts, cfg.PerURLTimeout)
		for _, d := range full.Blocked {
			blockedCount[d]++
		}
	}
	if res.PathsScanned > 0 {
		res.WithinCoverage = float64(res.PoisonedPaths) / float64(res.PathsScanned)
	}
	for _, d := range pbw { // website-ID order
		if blockedCount[d] > 0 {
			res.BlockedUnion = append(res.BlockedUnion, d)
		}
	}
	if res.PoisonedPaths > 0 && len(res.BlockedUnion) > 0 {
		sum := 0.0
		for _, d := range res.BlockedUnion {
			frac := float64(blockedCount[d]) / float64(res.PoisonedPaths)
			res.Series[d] = 100 * frac
			sum += frac
		}
		res.Consistency = sum / float64(len(res.BlockedUnion))
	}
	return res
}

// MeasureCoverageOutside runs the outside-in scan: every vantage point
// probes live in-ISP hosts with censored Host values, counting paths
// that any middlebox poisons. The Jio row of Table 2 comes out as zero
// because its boxes inspect only Jio-sourced traffic.
func (p *Probe) MeasureCoverageOutside(cfg ScanConfig) (paths, poisoned int) {
	pbw := p.World.Catalog.PBWDomains()
	sample := sampleEvenly(pbw, cfg.SampleURLs)
	for _, vp := range p.World.VPs {
		targets := p.ISP.Targets
		if cfg.OutsideTargets > 0 && cfg.OutsideTargets < len(targets) {
			targets = targets[:cfg.OutsideTargets]
		}
		for _, tgt := range targets {
			scan := scanPath(vp, tgt, sample, 1, cfg.PerURLTimeout)
			paths++
			if scan.Poisoned {
				poisoned++
			}
		}
	}
	return paths, poisoned
}

// MeasureCoverage combines both directions into the Table 2 row.
func (p *Probe) MeasureCoverage(cfg ScanConfig) *CoverageResult {
	res := p.MeasureCoverageWithin(cfg)
	res.OutsidePaths, res.OutsideHits = p.MeasureCoverageOutside(cfg)
	if res.OutsidePaths > 0 {
		res.OutsideCoverage = float64(res.OutsideHits) / float64(res.OutsidePaths)
	}
	return res
}
