package probe

import (
	"testing"

	"repro/internal/websim"
)

// The paper's HTTPS negative result (§4.2): censored domains load fine
// over port 443 because the middleboxes inspect only port 80 and never
// parse SNI — the only HTTPS breakage traces back to poisoned DNS.
func TestHTTPSNotFilteredByMiddleboxes(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	p := New(w, idea)
	d := blockedOnPath(t, w, idea)
	// HTTP is censored...
	det := p.DetectHTTP(d)
	if !det.Blocked {
		t.Fatalf("expected %s to be HTTP-censored", d)
	}
	// ...but HTTPS with the same (censored) SNI completes untouched.
	res := p.DetectHTTPS(d)
	if !res.Connected || !res.HandshakeOK {
		t.Errorf("HTTPS for censored domain interfered with: %+v", res)
	}
	if res.Reset {
		t.Error("HTTPS connection reset by a middlebox")
	}
}

func TestHTTPSBrokenOnlyByDNSPoisoning(t *testing.T) {
	w := world(t)
	mtnl := w.ISP("MTNL")
	p := New(w, mtnl)
	var victim string
	for _, d := range mtnl.DNSList {
		s, _ := w.Catalog.Site(d)
		if s != nil && s.Kind == websim.KindNormal && mtnl.Resolvers[0].PoisonsDomain(d) {
			victim = d
			break
		}
	}
	if victim == "" {
		t.Skip("no poisoned normal domain")
	}
	res := p.DetectHTTPS(victim)
	if res.HandshakeOK {
		t.Fatalf("handshake should fail against the poisoned address: %+v", res)
	}
	if !res.DNSManipulated {
		t.Errorf("breakage not attributed to DNS: %+v", res)
	}
	// A clean site over HTTPS works from the same client.
	for _, s := range w.Catalog.PBW {
		if s.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(mtnl, s.Domain); tr.Blocked() {
			continue
		}
		clean := p.DetectHTTPS(s.Domain)
		if !clean.HandshakeOK {
			t.Errorf("clean HTTPS failed: %+v", clean)
		}
		break
	}
}
