package probe

import (
	"bytes"

	"repro/internal/ispnet"
)

// Mechanism labels the evidence that convicted a censored fetch.
type Mechanism string

// The mechanisms the §3/§4 detectors distinguish.
const (
	// MechNone: no censorship evidence.
	MechNone Mechanism = ""
	// MechNotification: the stream carried a known censorship page.
	MechNotification Mechanism = "notification"
	// MechReset: a valid RST killed the connection before any response.
	MechReset Mechanism = "rst"
	// MechBlackhole: the connection established but hung — no response,
	// no teardown — while the uncensored path works.
	MechBlackhole Mechanism = "blackhole"
)

// MatchSignature scans a received byte stream for a known censorship
// notification marker and names the ISP it fingerprints (§6.1).
func MatchSignature(stream []byte) (isp string, ok bool) {
	for _, sig := range KnownSignatures {
		if bytes.Contains(stream, []byte(sig.Marker)) {
			return sig.ISP, true
		}
	}
	return "", false
}

// MatchSignatureIn is MatchSignature extended with the world's own
// notification catalogue — the signatures a researcher inside that world
// would have assembled by browsing blocked sites (§6.1). Scenario worlds
// carry custom censors whose notification bodies appear in no paper
// fleet list; without the world catalogue their overt censorship would
// be undetectable. The paper list is kept as a fallback so partial or
// truncated streams still match on the shorter markers.
func MatchSignatureIn(w *ispnet.World, stream []byte) (isp string, ok bool) {
	if w != nil {
		for _, sig := range w.NotifSignatures() {
			if bytes.Contains(stream, []byte(sig.Marker)) {
				return sig.ISP, true
			}
		}
	}
	return MatchSignature(stream)
}

// CensorVerdict applies the shared censored-fetch heuristic used by the
// detection pipeline (§3.1 manual verification), the collateral sweep
// (§6.1) and the censor package: a fetch is censored when it carried a
// known notification, when a valid RST killed the established connection
// before any response, or when the connection hung with neither response
// nor orderly teardown (blackholed).
func (r *FetchResult) CensorVerdict() (censored bool, mech Mechanism) {
	switch {
	case r.Notification:
		return true, MechNotification
	case r.Connected && r.Reset && len(r.Responses) == 0:
		return true, MechReset
	case r.Connected && len(r.Responses) == 0 && !r.PeerClosed:
		return true, MechBlackhole
	}
	return false, MechNone
}
