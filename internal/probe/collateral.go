package probe

import (
	"net/netip"
	"sort"
)

// CollateralResult reproduces one Table 3 row: censorship observed inside
// a non-censoring ISP, attributed to the neighbouring ISPs whose
// middleboxes caused it.
type CollateralResult struct {
	ISP string
	// ByNeighbor counts blocked sites per attributed neighbour AS.
	ByNeighbor map[string]int
	// Attribution maps each blocked domain to the neighbour (or
	// "unattributed").
	Attribution map[string]string
	// Neighbors lists attributed neighbours sorted by descending count.
	Neighbors []string
}

// NewCollateralResult returns an empty accumulator for one ISP.
func NewCollateralResult(isp string) *CollateralResult {
	return &CollateralResult{
		ISP:         isp,
		ByNeighbor:  make(map[string]int),
		Attribution: make(map[string]string),
	}
}

// Add records one attributed censorship event. Events attributed to the
// measuring ISP itself are dropped: own infrastructure is not collateral
// (does not happen for the paper's clean ISPs; kept for robustness).
func (res *CollateralResult) Add(domain, neighbor string) {
	if neighbor == "" || neighbor == res.ISP {
		return
	}
	res.Attribution[domain] = neighbor
	res.ByNeighbor[neighbor]++
}

// Finalize sorts the neighbour list by descending count, then name.
func (res *CollateralResult) Finalize() *CollateralResult {
	res.Neighbors = res.Neighbors[:0]
	for n := range res.ByNeighbor {
		res.Neighbors = append(res.Neighbors, n)
	}
	sort.Slice(res.Neighbors, func(i, j int) bool {
		if res.ByNeighbor[res.Neighbors[i]] != res.ByNeighbor[res.Neighbors[j]] {
			return res.ByNeighbor[res.Neighbors[i]] > res.ByNeighbor[res.Neighbors[j]]
		}
		return res.Neighbors[i] < res.Neighbors[j]
	})
	return res
}

// CollateralFinding is the per-domain outcome of the §6.1 collateral sweep.
type CollateralFinding struct {
	Domain   string
	Censored bool
	// Mechanism says what killed the fetch when censored.
	Mechanism Mechanism
	// Neighbor is the attributed censor ("unattributed" when the covert
	// tracer could not name one, "" when not censored).
	Neighbor string
}

// CollateralFor measures one domain from the (supposedly clean) ISP's
// client and attributes any censorship event to a neighbouring ISP using
// the §6.1 heuristics: notification-content signatures where the censor is
// overt, and — for covert resets — the AS of the visible traceroute hops
// around the anonymized injecting hop.
func (p *Probe) CollateralFor(domain string) CollateralFinding {
	f := CollateralFinding{Domain: domain}
	// Resolve via the uncensored path: in MTNL/BSNL the default resolver
	// is itself poisoned, and this sweep measures the HTTP path. Several
	// fetches per domain: wiretap boxes lose ~30% of races, and the
	// paper's data came from long-term repetition.
	addrs, err := p.ResolveViaTor(domain)
	if err != nil {
		return f
	}
	var fr *FetchResult
	for attempt := 0; attempt < p.attempts(4) && !f.Censored; attempt++ {
		fr = p.FetchDirectAt(domain, addrs[0])
		f.Censored, f.Mechanism = fr.CensorVerdict()
	}
	if fr == nil || !f.Censored {
		return f
	}
	neighbor := fr.SignatureISP
	if neighbor == "" {
		// Covert censor: locate the anonymized injecting hop and read
		// the AS of its visible neighbours.
		neighbor = p.attributeCovert(domain)
	}
	if neighbor == "" {
		neighbor = "unattributed"
	}
	f.Neighbor = neighbor
	return f
}

// MeasureCollateral sweeps the PBW list from a clean ISP's client and
// aggregates the per-domain findings into the Table 3 row.
func (p *Probe) MeasureCollateral(domains []string) *CollateralResult {
	res := NewCollateralResult(p.ISP.Name)
	for _, d := range domains {
		if f := p.CollateralFor(d); f.Censored {
			res.Add(d, f.Neighbor)
		}
	}
	return res.Finalize()
}

// attributeCovert traces toward the censored domain and attributes the
// anonymized censoring hop to an AS via the nearest visible hops.
func (p *Probe) attributeCovert(domain string) string {
	addrs, err := p.ResolveViaTor(domain)
	if err != nil {
		return ""
	}
	tr := IterativeTraceHTTP(p.ISP.Client, addrs[0], domain, p.Timeout)
	if tr.SignatureISP != "" {
		return tr.SignatureISP
	}
	if tr.CensorHop == 0 {
		return ""
	}
	// Look outward from the censor hop for the first visible router and
	// name its AS (heuristic 2 of §6.1).
	for _, hop := range tr.TraceHops {
		if hop.TTL > tr.CensorHop && !hop.Asterisk {
			if name := p.ispOfRouterAddr(hop.Addr); name != "" {
				return name
			}
		}
	}
	return ""
}

// ispOfRouterAddr maps a router interface address to an ISP name by ASN.
func (p *Probe) ispOfRouterAddr(addr netip.Addr) string {
	b := addr.As4()
	// Router interfaces live in 100.a.x.y where a = ASN-100 (world
	// addressing plan).
	if b[0] != 100 {
		return ""
	}
	for _, isp := range p.World.ISPList {
		if int(b[1]) == isp.ASN-100 {
			return isp.Name
		}
	}
	return ""
}
