package probe

import (
	"net/netip"
	"time"

	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/tcpsim"
)

// Hop is one traceroute hop. Asterisked hops sent no ICMP within the
// per-TTL wait — in the paper's data these are the anonymized routers that
// middleboxes sit behind (§6.1).
type Hop struct {
	TTL      int
	Addr     netip.Addr
	Asterisk bool
}

// TracerouteResult is a full route measurement.
type TracerouteResult struct {
	Dst  netip.Addr
	Hops []Hop
	// N is the paper's hop count to the destination host (0 if the
	// destination never answered).
	N int
}

// Traceroute measures the router path from an endpoint to dst using
// TCP-SYN probes against port 80, one TTL at a time.
func Traceroute(ep *ispnet.Endpoint, dst netip.Addr, maxTTL int, perHop time.Duration) *TracerouteResult {
	res := &TracerouteResult{Dst: dst}
	eng := ep.Host.Engine()
	for ttl := 1; ttl <= maxTTL; ttl++ {
		srcPort := uint16(33434 + ttl)
		ep.Host.StartCapture()
		probe := rawTCP(ep, dst, &netpkt.TCPSegment{
			SrcPort: srcPort, DstPort: 80,
			Seq: uint32(0x51e00000 + ttl), Flags: netpkt.SYN, Window: 65535,
		}, uint8(ttl))
		ep.Host.Send(probe)
		eng.RunFor(perHop)
		hop := Hop{TTL: ttl, Asterisk: true}
		reached := false
		for _, rec := range ep.Host.StopCapture() {
			if rec.Dir != netsim.DirIn {
				continue
			}
			switch {
			case rec.Pkt.ICMP != nil && rec.Pkt.ICMP.Type == netpkt.ICMPTimeExceeded:
				if fk, ok := rec.Pkt.ICMP.OriginalFlow(); ok && fk.SrcPort == srcPort {
					hop.Addr = rec.Pkt.IP.Src
					hop.Asterisk = false
				}
			case rec.Pkt.TCP != nil && rec.Pkt.IP.Src == dst && rec.Pkt.TCP.DstPort == srcPort:
				// SYN+ACK or RST from the destination host itself.
				reached = true
			}
		}
		if reached {
			res.N = ttl
			return res
		}
		res.Hops = append(res.Hops, hop)
	}
	return res
}

// IterTraceResult is the output of the Iterative Network Tracer (Figure 1):
// per-TTL observations against a censored request.
type IterTraceResult struct {
	Domain string
	Dst    netip.Addr
	// CensorHop is the first TTL at which a censorship response appeared
	// (0 = never).
	CensorHop int
	// Covert is true when the censorship response was a bare RST rather
	// than a notification page.
	Covert bool
	// SignatureISP attributes the notification content, when overt.
	SignatureISP string
	// ICMPAt records which TTLs produced ICMP Time Exceeded (visible
	// routers); absent TTLs below CensorHop are the anonymized ones.
	ICMPAt map[int]netip.Addr
	// TraceHops is the plain traceroute measurement of the same path.
	TraceHops []Hop
	// TotalHops is the traceroute hop count to the destination.
	TotalHops int
}

// IterativeTraceHTTP runs the HTTP variant of the Iterative Network
// Tracer: a fresh TCP connection per TTL, then one crafted GET for the
// censored domain with that TTL. The hop where the censorship
// notification-cum-disconnection first appears locates the middlebox.
func IterativeTraceHTTP(ep *ispnet.Endpoint, dst netip.Addr, domain string, timeout time.Duration) *IterTraceResult {
	res := &IterTraceResult{Domain: domain, Dst: dst, ICMPAt: map[int]netip.Addr{}}
	eng := ep.Host.Engine()
	tr := Traceroute(ep, dst, 30, timeout/4)
	res.TotalHops = tr.N
	res.TraceHops = tr.Hops
	maxTTL := tr.N
	if maxTTL == 0 {
		maxTTL = 12
	}
	req := httpwire.NewGET("/").Header("Host", domain).Bytes()
	for ttl := 1; ttl <= maxTTL; ttl++ {
		c, err := connEstablish(ep, dst, timeout)
		if err != nil {
			// Connection no longer possible (e.g. interceptive box
			// blackholed earlier flows keyed differently — should not
			// happen with fresh ports, but stay robust).
			continue
		}
		ep.Host.StartCapture()
		c.SendRaw(req, tcpsim.RawOpts{TTL: uint8(ttl), Advance: true})
		eng.RunFor(timeout / 2)
		censored := false
		if _, reset := c.WasReset(); reset && len(c.Stream()) == 0 {
			censored = true
			res.Covert = true
		}
		if c.PeerClosed() && len(c.Stream()) > 0 {
			censored = true
			if isp, ok := MatchSignatureIn(ep.World, c.Stream()); ok {
				res.SignatureISP = isp
			}
		}
		for _, rec := range ep.Host.StopCapture() {
			if rec.Dir == netsim.DirIn && rec.Pkt.ICMP != nil && rec.Pkt.ICMP.Type == netpkt.ICMPTimeExceeded {
				if _, seen := res.ICMPAt[ttl]; !seen {
					res.ICMPAt[ttl] = rec.Pkt.IP.Src
				}
			}
		}
		if !c.Dead() {
			c.Abort()
			eng.RunFor(10 * time.Millisecond)
		}
		if censored {
			res.CensorHop = ttl
			return res
		}
	}
	return res
}

// DNSTraceResult is the DNS variant's output: whether manipulated answers
// come from mid-path (injection) or only the final hop (poisoning).
type DNSTraceResult struct {
	Resolver netip.Addr
	Domain   string
	// AnswerHop is the first TTL at which a DNS answer arrived.
	AnswerHop int
	// ResolverHop is the TTL of the resolver itself.
	ResolverHop int
	// Injected is true when an answer appeared before the final hop.
	Injected bool
}

// IterativeTraceDNS runs the DNS variant of the tracer against one
// censored domain and resolver. The paper ran exactly this to conclude
// that Indian DNS censorship is resolver poisoning, not on-path injection
// ("in all our tests we received manipulated IP addresses from the last
// hop only").
func IterativeTraceDNS(ep *ispnet.Endpoint, resolver netip.Addr, domain string, timeout time.Duration) *DNSTraceResult {
	res := &DNSTraceResult{Resolver: resolver, Domain: domain}
	// Router-level path to the resolver first (as in §3.2).
	hostsNet := ep.Host.Network()
	rh, ok := hostsNet.Host(resolver)
	if !ok {
		return res
	}
	res.ResolverHop = hostsNet.HopsBetween(ep.Host, rh)
	for ttl := 1; ttl <= res.ResolverHop; ttl++ {
		if _, _, ok := ep.DNS.TTLProbe(resolver, domain, uint8(ttl), timeout/2); ok {
			res.AnswerHop = ttl
			res.Injected = ttl < res.ResolverHop
			return res
		}
	}
	return res
}
