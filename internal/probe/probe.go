// Package probe implements the paper's measurement toolkit — the primary
// contribution of the reproduction. It contains the semi-automatic
// detection pipeline the authors built after abandoning OONI (§3), the
// Iterative Network Tracer (Figure 1) in both its HTTP and DNS variants,
// the trigger-localization experiments of §3.4/§4.2.1, the coverage and
// consistency metrics of §4, and the collateral-damage attribution of §4.3.
//
// The probe deliberately uses only what a real measurement client can see:
// packets on its own host, responses from the network, and fetches through
// a Tor-like uncensored vantage. Ground truth (the ispnet oracle) is used
// only by the accuracy evaluation, never by the detectors.
package probe

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/netpkt"
	"repro/internal/netsim"
	"repro/internal/tcpsim"
	"repro/internal/websim"
)

// NotifSignature identifies an ISP from the content of its censorship
// notification — the attribution heuristic of §6.1 (e.g. Airtel's embedded
// iframe pointing at airtel.in/dot).
type NotifSignature struct {
	ISP    string
	Marker string
}

// KnownSignatures are the notification fingerprints the study catalogued.
var KnownSignatures = []NotifSignature{
	{ISP: "Airtel", Marker: "airtel.in/dot"},
	{ISP: "Jio", Marker: "49.44.18.2"},
	{ISP: "Idea", Marker: "competent Government Authority"},
	{ISP: "TATA", Marker: "TATA Communications"},
}

// Probe is a measurement client inside one ISP.
type Probe struct {
	World *ispnet.World
	ISP   *ispnet.ISP
	// Timeout bounds every network wait.
	Timeout time.Duration
	// Attempts overrides the per-detector retry counts when positive
	// (DetectHTTP's manual verification, CollateralFor's race retries).
	// Zero keeps each detector's paper-calibrated default.
	Attempts int

	// reqDomain/reqBytes cache the standard browser-style GET for the
	// domain currently under measurement: a single detector run fetches
	// the same domain several times (Tor ground path, direct fetch, the
	// manual-verification retries), and all of them reuse one rendering.
	reqDomain string
	reqBytes  []byte
}

// stdRequest returns the standard browser-style GET bytes for domain,
// rebuilt only when the domain changes. The returned slice is shared —
// callers transmit it, never mutate it.
func (p *Probe) stdRequest(domain string) []byte {
	if p.reqDomain != domain || p.reqBytes == nil {
		p.reqBytes = httpwire.NewGET("/").
			Header("Host", domain).
			Header("User-Agent", "Mozilla/5.0 (X11; Linux x86_64) repro/1.0").
			Bytes()
		p.reqDomain = domain
	}
	return p.reqBytes
}

// attempts resolves the retry count for a detector with default def.
func (p *Probe) attempts(def int) int {
	if p.Attempts > 0 {
		return p.Attempts
	}
	return def
}

// New creates a probe for an ISP's measurement client.
func New(w *ispnet.World, isp *ispnet.ISP) *Probe {
	return &Probe{World: w, ISP: isp, Timeout: 3 * time.Second}
}

// FetchResult is the outcome of one HTTP fetch attempt.
type FetchResult struct {
	Domain    string
	Addr      netip.Addr
	Connected bool
	// Reset is true when a valid RST killed the connection.
	Reset bool
	// PeerClosed is true when a FIN was accepted.
	PeerClosed bool
	// Responses are the parsed HTTP responses, in order.
	Responses []*httpwire.Response
	// Stream is the raw received byte stream.
	Stream []byte
	// Notification is set when the stream matches a known censorship
	// signature; SignatureISP names the censor.
	Notification bool
	SignatureISP string
	// SawIPID242 reports an Airtel-style fixed IP identifier on ingress.
	SawIPID242 bool
}

// Body returns the first response body, or nil.
func (r *FetchResult) Body() []byte {
	if len(r.Responses) == 0 {
		return nil
	}
	return r.Responses[0].Body
}

// classify fills the notification fields from the stream, consulting the
// world's own signature catalogue so custom censors attribute too.
func (r *FetchResult) classify(w *ispnet.World) {
	if isp, ok := MatchSignatureIn(w, r.Stream); ok {
		r.Notification = true
		r.SignatureISP = isp
	}
}

// GetFrom performs one GET for domain against dst from an arbitrary
// endpoint, with full result capture. rawRequest overrides the standard
// browser-style request bytes when non-nil.
func GetFrom(ep *ispnet.Endpoint, dst netip.Addr, domain string, rawRequest []byte, timeout time.Duration) *FetchResult {
	res := &FetchResult{Domain: domain, Addr: dst}
	ep.Host.StartCapture()
	defer ep.Host.StopCapture()
	c := ep.TCP.Connect(dst, 80)
	if err := c.WaitEstablished(timeout); err != nil {
		return res
	}
	res.Connected = true
	req := rawRequest
	if req == nil {
		req = httpwire.NewGET("/").
			Header("Host", domain).
			Header("User-Agent", "Mozilla/5.0 (X11; Linux x86_64) repro/1.0").
			Bytes()
	}
	c.Send(req)
	// Wait for a complete response, teardown, or quiet timeout.
	ep.Host.Engine().RunFor(timeout / 3)
	deadline := 3
	for deadline > 0 {
		if parsed := tryParseAll(c.Stream()); parsed != nil {
			res.Responses = parsed
			break
		}
		if c.Dead() || c.PeerClosed() {
			break
		}
		ep.Host.Engine().RunFor(timeout / 3)
		deadline--
	}
	res.Stream = append([]byte(nil), c.Stream()...)
	if res.Responses == nil {
		res.Responses = parseAvailable(res.Stream)
	}
	_, res.Reset = c.WasReset()
	res.PeerClosed = c.PeerClosed()
	for _, rec := range ep.Host.Captures() {
		if rec.Dir == netsim.DirIn && rec.Pkt.IP.ID == 242 {
			res.SawIPID242 = true
		}
	}
	res.classify(ep.World)
	if !c.Dead() {
		c.Abort()
		ep.Host.Engine().RunFor(10 * time.Millisecond)
	}
	return res
}

// tryParseAll parses the stream only if it holds at least one complete
// response; returns nil when incomplete.
func tryParseAll(stream []byte) []*httpwire.Response {
	if len(stream) == 0 {
		return nil
	}
	var out []*httpwire.Response
	rest := stream
	for len(rest) > 0 {
		resp, r2, err := httpwire.ParseResponse(rest)
		if err != nil {
			if err == httpwire.ErrIncomplete && len(out) == 0 {
				return nil
			}
			break
		}
		out = append(out, resp)
		rest = r2
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// parseAvailable parses whatever complete responses the stream holds.
func parseAvailable(stream []byte) []*httpwire.Response {
	var out []*httpwire.Response
	rest := stream
	for len(rest) > 0 {
		resp, r2, err := httpwire.ParseResponse(rest)
		if err != nil {
			break
		}
		out = append(out, resp)
		rest = r2
	}
	return out
}

// ResolveLocal resolves a domain through the ISP's default resolver.
func (p *Probe) ResolveLocal(domain string) ([]netip.Addr, error) {
	addrs, rcode, err := p.ISP.Client.DNS.ResolveA(p.ISP.DefaultResolver, domain, p.Timeout)
	if err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("probe: %s: empty answer (%v)", domain, rcode)
	}
	return addrs, nil
}

// ResolveViaTor resolves through the Tor-exit vantage (uncensored ground
// path), using the public resolver at the exit.
func (p *Probe) ResolveViaTor(domain string) ([]netip.Addr, error) {
	addrs, rcode, err := p.World.TorExit.DNS.ResolveA(p.World.GoogleDNS, domain, p.Timeout)
	if err != nil {
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("probe: tor %s: empty answer (%v)", domain, rcode)
	}
	return addrs, nil
}

// FetchDirect resolves and fetches a domain from the ISP client, exactly
// like a subscriber's browser.
func (p *Probe) FetchDirect(domain string) (*FetchResult, error) {
	addrs, err := p.ResolveLocal(domain)
	if err != nil {
		return nil, err
	}
	return GetFrom(p.ISP.Client, addrs[0], domain, p.stdRequest(domain), p.Timeout), nil
}

// FetchDirectAt fetches a domain from the ISP client at a known address.
func (p *Probe) FetchDirectAt(domain string, addr netip.Addr) *FetchResult {
	return GetFrom(p.ISP.Client, addr, domain, p.stdRequest(domain), p.Timeout)
}

// FetchViaTor fetches through the Tor-like uncensored circuit: resolution
// and HTTP both happen at the exit.
func (p *Probe) FetchViaTor(domain string) (*FetchResult, error) {
	addrs, err := p.ResolveViaTor(domain)
	if err != nil {
		return nil, err
	}
	return GetFrom(p.World.TorExit, addrs[0], domain, p.stdRequest(domain), p.Timeout), nil
}

// SiteRegionAddr is a convenience for tests: the address a region sees.
func (p *Probe) SiteRegionAddr(domain string, region websim.Region) (netip.Addr, bool) {
	s, ok := p.World.Catalog.Site(domain)
	if !ok {
		return netip.Addr{}, false
	}
	a, ok := s.Addrs[region]
	return a, ok
}

// rawTCP builds a raw TCP packet from the client.
func rawTCP(ep *ispnet.Endpoint, dst netip.Addr, seg *netpkt.TCPSegment, ttl uint8) *netpkt.Packet {
	pkt := netpkt.NewTCP(ep.Addr(), dst, seg)
	if ttl > 0 {
		pkt.IP.TTL = ttl
	}
	return pkt
}

// connEstablish opens a TCP connection from an endpoint and waits.
func connEstablish(ep *ispnet.Endpoint, dst netip.Addr, timeout time.Duration) (*tcpsim.Conn, error) {
	c := ep.TCP.Connect(dst, 80)
	if err := c.WaitEstablished(timeout); err != nil {
		return nil, err
	}
	return c, nil
}
