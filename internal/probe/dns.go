package probe

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/dnswire"
)

// Bogon prefixes (the probe's copy of the public bogon list the paper
// cites): answers inside these are never legitimate site addresses.
var bogonPrefixes = []netip.Prefix{
	netip.MustParsePrefix("0.0.0.0/8"),
	netip.MustParsePrefix("10.0.0.0/8"),
	netip.MustParsePrefix("100.64.0.0/10"),
	netip.MustParsePrefix("127.0.0.0/8"),
	netip.MustParsePrefix("169.254.0.0/16"),
	netip.MustParsePrefix("172.16.0.0/12"),
	netip.MustParsePrefix("192.0.2.0/24"),
	netip.MustParsePrefix("192.168.0.0/16"),
	netip.MustParsePrefix("240.0.0.0/4"),
}

// IsBogon reports whether an address falls in a bogon range.
func IsBogon(a netip.Addr) bool {
	for _, p := range bogonPrefixes {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// DiscoverResolvers scans the ISP's advertised prefixes for hosts that
// answer a recursive query for a known-good control domain — the paper's
// open-resolver sweep over the ISP's IPv4 space.
func (p *Probe) DiscoverResolvers(controlDomain string) []netip.Addr {
	var found []netip.Addr
	seen := map[netip.Addr]bool{}
	for _, pfx := range p.World.Net.Prefixes() {
		// Hosts live in the /24s; the /16 is the core's fallback aggregate.
		if pfx.ASN != p.ISP.ASN || pfx.Prefix.Bits() != 24 {
			continue
		}
		base := pfx.Prefix.Addr().As4()
		for last := 1; last <= 254; last++ {
			dst := netip.AddrFrom4([4]byte{base[0], base[1], base[2], byte(last)})
			p.ISP.Client.DNS.QueryAsync(dst, controlDomain, func(m *dnswire.Message, from netip.Addr) {
				if m.RCode == dnswire.RCodeNoError && len(m.Answers) > 0 && !seen[from] {
					seen[from] = true
					found = append(found, from)
				}
			})
		}
		// Flush per prefix to bound outstanding handler registrations.
		p.World.Eng.RunFor(200 * time.Millisecond)
	}
	p.World.Eng.RunFor(time.Second)
	sort.Slice(found, func(i, j int) bool { return found[i].Less(found[j]) })
	return found
}

// AnswerClassifier applies the §3.2 manipulated-answer heuristics to DNS
// answers, caching the Tor-fetch verification of suspect addresses so a
// fleet scan verifies each one once. One classifier serves one probe.
type AnswerClassifier struct {
	p         *Probe
	clientASN int
	verified  map[netip.Addr]bool // Tor-verified shared-hosting addrs
	checked   map[netip.Addr]bool
}

// NewAnswerClassifier builds a classifier for the probe's client vantage.
func (p *Probe) NewAnswerClassifier() *AnswerClassifier {
	return &AnswerClassifier{
		p:         p,
		clientASN: p.World.Net.ASNOf(p.ISP.Client.Addr()),
		verified:  map[netip.Addr]bool{},
		checked:   map[netip.Addr]bool{},
	}
}

// Manipulated decides whether an answer for domain is manipulated:
//
//  1. answers overlapping torSet (the Tor-resolved ground truth) are
//     clean;
//  2. answers inside the client's own AS are manipulated (no PBW is
//     hosted there);
//  3. bogon answers are manipulated;
//  4. when suspect is true (frequency analysis in fleet scans, or a
//     single unexplained divergent answer), the address is cleared only
//     if fetching the domain from it via Tor actually serves content
//     (shared hosting / CDN edges do; block hosts do not).
func (c *AnswerClassifier) Manipulated(domain string, addr netip.Addr, torSet map[netip.Addr]bool, suspect bool) bool {
	if torSet[addr] {
		return false
	}
	switch {
	case c.p.World.Net.ASNOf(addr) == c.clientASN && c.clientASN != 0:
		return true // heuristic 1 of §3.2
	case IsBogon(addr):
		return true // heuristic 2
	case suspect:
		if !c.checked[addr] {
			c.checked[addr] = true
			fr := GetFrom(c.p.World.TorExit, addr, domain, c.p.stdRequest(domain), c.p.Timeout)
			c.verified[addr] = len(fr.Responses) > 0 && fr.Responses[0].StatusCode == 200
		}
		return !c.verified[addr]
	}
	return false
}

// DNSScanResult summarizes the censorship scan of one ISP's resolvers.
type DNSScanResult struct {
	Resolvers []netip.Addr
	// BlockedBy maps each censorious resolver to the PBW domains it
	// manipulated.
	BlockedBy map[netip.Addr][]string
	// BlockedDomains is the union, in website-ID order.
	BlockedDomains []string
	// Coverage is poisoned/total resolvers; Consistency the Figure 2
	// metric: mean over blocked URLs of the fraction of poisoned
	// resolvers blocking them.
	Coverage    float64
	Consistency float64
	// Series maps each blocked domain to the percentage of poisoned
	// resolvers blocking it — the Figure 2 Y values.
	Series map[string]float64
}

// ScanResolvers queries every resolver for every domain and applies the
// paper's §3.2 heuristics to decide which answers are manipulated:
//
//  1. answers overlapping the Tor-resolved set are clean;
//  2. answers inside the client's own AS are manipulated (no PBW is
//     hosted there);
//  3. bogon answers are manipulated;
//  4. addresses answering for many distinct domains (frequency analysis)
//     are suspects, cleared only if fetching the domain from that address
//     via Tor actually serves content (shared hosting / CDN edges do;
//     block hosts do not).
func (p *Probe) ScanResolvers(resolvers []netip.Addr, domains []string) *DNSScanResult {
	res := &DNSScanResult{
		Resolvers: resolvers,
		BlockedBy: make(map[netip.Addr][]string),
		Series:    make(map[string]float64),
	}
	// Tor ground truth per domain, resolved once.
	torSets := make(map[string]map[netip.Addr]bool, len(domains))
	for _, d := range domains {
		addrs, err := p.ResolveViaTor(d)
		set := map[netip.Addr]bool{}
		if err == nil {
			for _, a := range addrs {
				set[a] = true
			}
		}
		torSets[d] = set
	}
	classifier := p.NewAnswerClassifier()

	type answer struct {
		domain string
		addr   netip.Addr
	}
	for _, r := range resolvers {
		var answers []answer
		for _, d := range domains {
			d := d
			p.ISP.Client.DNS.QueryAsync(r, d, func(m *dnswire.Message, _ netip.Addr) {
				if m.RCode == dnswire.RCodeNoError && len(m.Answers) > 0 {
					answers = append(answers, answer{domain: d, addr: m.Answers[0].Addr})
				}
			})
		}
		p.World.Eng.RunFor(2 * time.Second)

		// Frequency analysis over this resolver's answers.
		freq := map[netip.Addr]int{}
		for _, a := range answers {
			if !torSets[a.domain][a.addr] {
				freq[a.addr]++
			}
		}
		var blocked []string
		for _, a := range answers {
			if classifier.Manipulated(a.domain, a.addr, torSets[a.domain], freq[a.addr] > 3) {
				blocked = append(blocked, a.domain)
			}
		}
		if len(blocked) > 0 {
			res.BlockedBy[r] = blocked
		}
	}

	// Metrics.
	poisoned := len(res.BlockedBy)
	if len(resolvers) > 0 {
		res.Coverage = float64(poisoned) / float64(len(resolvers))
	}
	counts := map[string]int{}
	for _, list := range res.BlockedBy {
		for _, d := range list {
			counts[d]++
		}
	}
	for _, d := range domains { // keep website-ID order
		if counts[d] > 0 {
			res.BlockedDomains = append(res.BlockedDomains, d)
		}
	}
	if poisoned > 0 && len(res.BlockedDomains) > 0 {
		sum := 0.0
		for _, d := range res.BlockedDomains {
			frac := float64(counts[d]) / float64(poisoned)
			res.Series[d] = 100 * frac
			sum += frac
		}
		res.Consistency = sum / float64(len(res.BlockedDomains))
	}
	return res
}
