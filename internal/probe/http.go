package probe

import (
	"net/netip"
	"time"

	"repro/internal/difflib"
	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/netpkt"
	"repro/internal/tcpsim"
)

// HTTPDetection is the per-domain outcome of the paper's own detection
// pipeline (§3.1/§3.4): HTTP-diff against a Tor fetch with a 0.3
// threshold, followed by manual verification of everything over it.
type HTTPDetection struct {
	Domain        string
	Diff          float64
	OverThreshold bool
	// Blocked is the post-manual-verification verdict.
	Blocked bool
	// Notification/SignatureISP/Reset describe what manual inspection saw.
	Notification bool
	SignatureISP string
	Reset        bool
}

// DiffThreshold is the paper's HTTP-diff threshold.
const DiffThreshold = 0.3

// DetectHTTP runs the pipeline for one domain: fetch via Tor (ground
// path), fetch directly, compute the body diff, and — when over threshold
// — "manually" verify by refetching a few times and inspecting for actual
// censorship evidence (notification pages, mid-request resets, timeouts).
// Unlike OONI, an over-threshold diff alone never produces a verdict.
func (p *Probe) DetectHTTP(domain string) HTTPDetection {
	det := HTTPDetection{Domain: domain}
	tor, err := p.FetchViaTor(domain)
	if err != nil || len(tor.Responses) == 0 {
		// Unreachable even via Tor: excluded, like the paper's dead-site
		// filtering.
		return det
	}
	direct, err := p.FetchDirect(domain)
	if err != nil {
		// DNS failure locally: not an HTTP verdict.
		return det
	}
	det.Diff = 1 - difflib.RatioLines(string(direct.Body()), string(tor.Body()))
	if len(direct.Responses) == 0 {
		det.Diff = 1
	}
	det.OverThreshold = det.Diff >= DiffThreshold
	if !det.OverThreshold {
		return det
	}
	// Manual verification: retry and look for censorship evidence rather
	// than content drift (the step OONI skips, per §6.2).
	for attempt := 0; attempt < p.attempts(3); attempt++ {
		r, err := p.FetchDirect(domain)
		if err != nil {
			continue
		}
		if censored, mech := r.CensorVerdict(); censored {
			det.Blocked = true
			det.Notification = mech == MechNotification
			det.SignatureISP = r.SignatureISP
			det.Reset = mech == MechReset
			return det
		}
	}
	return det
}

// DetectTCP is the paper's crude TCP/IP-filtering test (§3.3): if the
// 3-way handshake works via Tor but five direct attempts spaced ~2s apart
// all fail, the address is TCP/IP filtered. The paper never observed this
// in any ISP; neither does the reproduction.
func (p *Probe) DetectTCP(domain string) bool {
	addrs, err := p.ResolveViaTor(domain)
	if err != nil {
		return false
	}
	addr := addrs[0]
	torConn, err := connEstablish(p.World.TorExit, addr, p.Timeout)
	if err != nil {
		return false // not reachable at all: no verdict
	}
	torConn.Abort()
	for i := 0; i < 5; i++ {
		c, err := connEstablish(p.ISP.Client, addr, p.Timeout)
		if err == nil {
			c.Abort()
			return false
		}
		p.World.Eng.RunFor(2 * time.Second)
	}
	return true
}

// TriggerReport is the outcome of the §3.4 trigger-localization
// experiments against one censored domain.
type TriggerReport struct {
	Domain string
	// CensoredAtTTLBelowServer: the GET that never reaches the site still
	// drew a censorship response (rules out response-triggered boxes).
	CensoredAtTTLBelowServer bool
	// CensoredAtFullTTL: the normally-delivered GET drew one too.
	CensoredAtFullTTL bool
	// HostCaseEvades: "HOst:" passed the box but the server answered —
	// with the above, this pins possibility 1 (request-only inspection).
	HostCaseEvades bool
	// HostFieldOnly: the censored domain elsewhere in the request (URL
	// path, other headers) does not trigger; only the Host field does.
	HostFieldOnly bool
	// Statefulness (§4.2.1 caveat): no trigger without a complete
	// observed handshake, and state expires after a few idle minutes.
	SYNOnlyTriggers         bool
	NoHandshakeTriggers     bool
	HandshakeThenTriggers   bool
	StateExpiresAfterIdle   bool
	StateRefreshedByTraffic bool
}

// censoredOutcome recognizes a censorship response on a connection,
// matching notification markers against the world's own catalogue.
func (p *Probe) censoredOutcome(c *tcpsim.Conn) bool {
	if _, reset := c.WasReset(); reset && len(c.Stream()) == 0 {
		return true
	}
	if c.PeerClosed() && len(c.Stream()) > 0 {
		if _, ok := MatchSignatureIn(p.World, c.Stream()); ok {
			return true
		}
		// FIN-bearing response without any known marker still counts when
		// it is not a well-formed 404/200 from the site (covert pages).
	}
	return false
}

// TriggerExperiments runs the full §3.4/§4.2.1 battery against a censored
// domain. dst should be the site's real address (resolved via Tor).
func (p *Probe) TriggerExperiments(domain string, dst netip.Addr) *TriggerReport {
	rep := &TriggerReport{Domain: domain}
	ep := p.ISP.Client
	eng := p.World.Eng
	n := Traceroute(ep, dst, 30, p.Timeout/4).N
	if n == 0 {
		n = 10
	}
	get := httpwire.NewGET("/").Header("Host", domain).Bytes()

	// Paired-TTL experiment: TTL n-1 (never reaches the site, same
	// sequence position) then TTL n on a fresh connection.
	if c, err := connEstablish(ep, dst, p.Timeout); err == nil {
		c.SendRaw(get, tcpsim.RawOpts{TTL: uint8(n - 1)})
		eng.RunFor(p.Timeout)
		rep.CensoredAtTTLBelowServer = p.censoredOutcome(c)
		c.Abort()
	}
	if c, err := connEstablish(ep, dst, p.Timeout); err == nil {
		c.SendRaw(get, tcpsim.RawOpts{Advance: true})
		eng.RunFor(p.Timeout)
		rep.CensoredAtFullTTL = p.censoredOutcome(c)
		c.Abort()
	}

	// Host-case mutation: box misses, RFC 2616 server answers.
	if c, err := connEstablish(ep, dst, p.Timeout); err == nil {
		c.Send(httpwire.NewGET("/").RawLine("HOst: " + domain).Bytes())
		eng.RunFor(p.Timeout)
		rep.HostCaseEvades = !p.censoredOutcome(c) && len(c.Stream()) > 0
		c.Abort()
	}

	// Offset fudging: censored domain in the path and a custom header,
	// Host pointing at an uncensored name; TTL stops short of the server
	// so any response is the middlebox's.
	fudged := httpwire.NewGET("/"+domain).
		Header("Host", "popular-0000.com").
		Header("X-Pad", domain).
		Bytes()
	if c, err := connEstablish(ep, dst, p.Timeout); err == nil {
		c.SendRaw(fudged, tcpsim.RawOpts{TTL: uint8(n - 1)})
		eng.RunFor(p.Timeout)
		rep.HostFieldOnly = !p.censoredOutcome(c)
		c.Abort()
	}

	// Statefulness battery with raw packets that expire at the
	// penultimate hop (past any middlebox, short of the server).
	raw := func(seg *netpkt.TCPSegment) *tcpsim.Conn {
		pkt := rawTCP(ep, dst, seg, uint8(n-1))
		ep.Host.Send(pkt)
		eng.RunFor(p.Timeout / 2)
		return nil
	}
	ep.Host.StartCapture()
	raw(&netpkt.TCPSegment{SrcPort: 47001, DstPort: 80, Seq: 9000, Flags: netpkt.SYN, Window: 65535})
	raw(&netpkt.TCPSegment{SrcPort: 47001, DstPort: 80, Seq: 9001, Ack: 1, Flags: netpkt.PSH | netpkt.ACK, Payload: get})
	rep.SYNOnlyTriggers = capturedCensorship(ep, 47001)
	ep.Host.StopCapture()

	ep.Host.StartCapture()
	raw(&netpkt.TCPSegment{SrcPort: 47002, DstPort: 80, Seq: 9500, Ack: 1, Flags: netpkt.PSH | netpkt.ACK, Payload: get})
	rep.NoHandshakeTriggers = capturedCensorship(ep, 47002)
	ep.Host.StopCapture()

	// Control: a real handshake followed by the GET must trigger.
	if c, err := connEstablish(ep, dst, p.Timeout); err == nil {
		c.SendRaw(get, tcpsim.RawOpts{TTL: uint8(n - 1)})
		eng.RunFor(p.Timeout)
		rep.HandshakeThenTriggers = p.censoredOutcome(c)
		c.Abort()
	}

	// Idle state expiry (paper: 2-3 minutes) and refresh.
	if c, err := connEstablish(ep, dst, p.Timeout); err == nil {
		eng.RunFor(4 * time.Minute)
		c.SendRaw(get, tcpsim.RawOpts{Advance: true})
		eng.RunFor(p.Timeout)
		rep.StateExpiresAfterIdle = !p.censoredOutcome(c)
		c.Abort()
	}
	if c, err := connEstablish(ep, dst, p.Timeout); err == nil {
		for i := 0; i < 4; i++ {
			eng.RunFor(time.Minute)
			c.SendRaw([]byte("X"), tcpsim.RawOpts{Advance: true})
		}
		c.SendRaw(get, tcpsim.RawOpts{Advance: true})
		eng.RunFor(p.Timeout)
		rep.StateRefreshedByTraffic = p.censoredOutcome(c)
		c.Abort()
	}
	return rep
}

// NoHandshakeTriggers injects a lone PSH GET for domain toward dst on a
// flow the network never saw handshake, with a TTL that expires at hop
// pathHops-1 (one short of the server, past any middlebox) so that any
// FIN/RST coming back is a middlebox's own. It reports whether the
// un-handshaked request still drew a censorship-style teardown — false
// for the stateful boxes of §4.2.1, which track handshakes before
// matching. pathHops comes from a prior traceroute; values below 2
// cannot isolate the box and report false.
func (p *Probe) NoHandshakeTriggers(domain string, dst netip.Addr, pathHops int) bool {
	if pathHops < 2 {
		return false
	}
	ep := p.ISP.Client
	get := httpwire.NewGET("/").Header("Host", domain).Bytes()
	ep.Host.StartCapture()
	defer ep.Host.StopCapture()
	ep.Host.Send(rawTCP(ep, dst, &netpkt.TCPSegment{
		SrcPort: 47101, DstPort: 80, Seq: 9500, Ack: 1,
		Flags: netpkt.PSH | netpkt.ACK, Payload: get, Window: 65535,
	}, uint8(pathHops-1)))
	p.World.Eng.RunFor(p.Timeout / 2)
	return capturedCensorship(ep, 47101)
}

// capturedCensorship looks for a censorship-looking TCP response to the
// given raw source port in the endpoint's capture.
func capturedCensorship(ep *ispnet.Endpoint, srcPort uint16) bool {
	for _, rec := range ep.Host.Captures() {
		if rec.Pkt.TCP == nil || rec.Pkt.TCP.DstPort != srcPort {
			continue
		}
		if rec.Pkt.TCP.Flags.Has(netpkt.FIN) || rec.Pkt.TCP.Flags.Has(netpkt.RST) {
			return true
		}
	}
	return false
}

// BoxClassification is the remote-controlled-host experiment of §4.2.1
// distinguishing wiretap from interceptive middleboxes.
type BoxClassification struct {
	// ClientSawCensorship: the crafted GET drew a censorship response.
	ClientSawCensorship bool
	// RemoteGotRequest: the GET reached the remote server (wiretap boxes
	// only copy traffic; interceptive boxes consume it).
	RemoteGotRequest bool
	// RemoteGotForeignRST: the remote server received a RST whose
	// sequence number differs from anything the client sent (the
	// interceptive box's own teardown).
	RemoteGotForeignRST bool
	// RendersSometimes: repeated fetches of a blocked domain sometimes
	// deliver real content (the wiretap race, ~3 in 10 in the paper).
	RendersSometimes bool
	// Type is the verdict: "wiretap", "interceptive" or "unknown".
	Type string
}

// ClassifyMiddlebox runs the remote-host experiment: the client sends a
// censored GET to a server under our control and both ends observe.
func (p *Probe) ClassifyMiddlebox(domain string, remote *ispnet.Endpoint, attempts int) *BoxClassification {
	out := &BoxClassification{}
	eng := p.World.Eng
	sawContent := false
	for i := 0; i < attempts; i++ {
		before := remote.Server.Requests
		remote.Host.StartCapture()
		c, err := connEstablish(p.ISP.Client, remote.Addr(), p.Timeout)
		if err != nil {
			continue
		}
		c.Send(httpwire.NewGET("/").Header("Host", domain).Bytes())
		eng.RunFor(p.Timeout)
		clientRSTSeq := c.SndNxt()
		if p.censoredOutcome(c) {
			out.ClientSawCensorship = true
		} else if len(c.Stream()) > 0 {
			sawContent = true
		}
		if remote.Server.Requests > before {
			out.RemoteGotRequest = true
		}
		for _, rec := range remote.Host.StopCapture() {
			if rec.Pkt.TCP != nil && rec.Pkt.TCP.Flags.Has(netpkt.RST) &&
				rec.Pkt.IP.Src == p.ISP.Client.Addr() && rec.Pkt.TCP.Seq != clientRSTSeq {
				out.RemoteGotForeignRST = true
			}
		}
		if !c.Dead() {
			c.Abort()
			eng.RunFor(10 * time.Millisecond)
		}
	}
	// "Renders sometimes" is meaningful only when censorship was also
	// observed: it is the wiretap race, not an unfiltered path.
	out.RendersSometimes = out.ClientSawCensorship && sawContent
	switch {
	case out.ClientSawCensorship && out.RemoteGotRequest:
		out.Type = "wiretap"
	case out.ClientSawCensorship && !out.RemoteGotRequest:
		out.Type = "interceptive"
	default:
		out.Type = "unknown"
	}
	return out
}
