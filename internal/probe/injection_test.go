package probe

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnssim"
	"repro/internal/ispnet"
	"repro/internal/middlebox"
	"repro/internal/websim"
)

// The DNS variant of the Iterative Network Tracer exists to separate
// resolver poisoning from on-path injection. India showed only poisoning;
// this test validates the tracer's discriminating power by wiring a
// GFW-style injector into an otherwise honest path and checking the
// verdict flips.
func TestDNSTracerDetectsInjection(t *testing.T) {
	w := world(t)
	// Use a clean ISP (Sify) whose resolver is honest, and attach an
	// injector tap at its core router.
	sify := w.ISP("Sify")
	victim := w.Catalog.PBWDomains()[0]
	inj := middlebox.NewDNSInjector(w.Net, middlebox.Config{
		ID: "synthetic-injector", ASN: sify.ASN,
		Blocklist:   middlebox.NewBlocklist([]string{victim}),
		Scope:       middlebox.ScopeAll,
		OwnPrefixes: sify.Prefixes,
	}, netip.MustParseAddr("10.99.99.99"))
	sify.Edges[0].AttachTap(inj) // on the client/resolver path

	tr := IterativeTraceDNS(sify.Client, sify.DefaultResolver, victim, time.Second)
	if tr.AnswerHop == 0 {
		t.Fatal("no answer")
	}
	if !tr.Injected {
		t.Errorf("injection not detected: answer at hop %d of %d", tr.AnswerHop, tr.ResolverHop)
	}
	if inj.Triggers == 0 {
		t.Error("injector never fired")
	}

	// Control: a non-censored domain keeps the poisoning signature
	// (answer only from the final hop).
	ctr := IterativeTraceDNS(sify.Client, sify.DefaultResolver, w.Catalog.PBWDomains()[1], time.Second)
	if ctr.Injected {
		t.Error("clean domain misclassified as injected")
	}
}

// The resolver-scan heuristics must also survive an injector: answers
// arriving from mid-path carry the forged address, which the bogon
// heuristic catches.
func TestScanHeuristicsCatchInjectedBogon(t *testing.T) {
	w := world(t)
	siti := w.ISP("Siti")
	victim := pickNormal(t, w)
	inj := middlebox.NewDNSInjector(w.Net, middlebox.Config{
		ID: "synthetic-injector-2", ASN: siti.ASN,
		Blocklist:   middlebox.NewBlocklist([]string{victim}),
		Scope:       middlebox.ScopeAll,
		OwnPrefixes: siti.Prefixes,
	}, netip.MustParseAddr("10.66.6.6"))
	siti.Edges[0].AttachTap(inj)

	p := New(w, siti)
	scan := p.ScanResolvers([]netip.Addr{siti.DefaultResolver}, []string{victim})
	if len(scan.BlockedBy) != 1 {
		t.Errorf("injected-bogon answer not flagged: %+v", scan.BlockedBy)
	}
}

func pickNormal(t testing.TB, w *ispnet.World) string {
	t.Helper()
	for _, s := range w.Catalog.PBW {
		if s.Kind == websim.KindNormal {
			return s.Domain
		}
	}
	t.Fatal("no normal site")
	return ""
}

// dnssim keeps resolvers honest for non-censoring ISPs: sanity-check that
// clean ISPs' default resolvers answer identically to the public one.
func TestCleanResolversHonest(t *testing.T) {
	w := world(t)
	for _, name := range []string{"NKN", "Sify", "Airtel", "Jio"} {
		isp := w.ISP(name)
		d := pickNormal(t, w)
		local, _, err := isp.Client.DNS.ResolveA(isp.DefaultResolver, d, 2*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		public, _, err := w.Control.DNS.ResolveA(w.GoogleDNS, d, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if local[0] != public[0] {
			t.Errorf("%s: local %v != public %v for %s", name, local[0], public[0], d)
		}
	}
	_ = dnssim.Poison{}
}
