package probe

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/ispnet"
	"repro/internal/websim"
)

var sharedWorld *ispnet.World

func world(t testing.TB) *ispnet.World {
	t.Helper()
	if sharedWorld == nil {
		sharedWorld = ispnet.NewWorld(ispnet.SmallConfig())
	}
	// Each test runs on its own goroutine; handing the shared world out is
	// a serialized ownership transfer.
	sharedWorld.Rebind()
	return sharedWorld
}

// blockedOnPath finds a domain truly filtered from the ISP client,
// preferring normal-kind sites (stable servers).
func blockedOnPath(t testing.TB, w *ispnet.World, isp *ispnet.ISP) string {
	t.Helper()
	for _, kind := range []websim.Kind{websim.KindNormal, websim.KindDynamic} {
		for _, d := range isp.HTTPList {
			s, _ := w.Catalog.Site(d)
			if s == nil || s.Kind != kind {
				continue
			}
			if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
				return d
			}
		}
	}
	t.Skipf("%s: no blocked-on-path live domain in this small world", isp.Name)
	return ""
}

func TestTraceroute(t *testing.T) {
	w := world(t)
	airtel := w.ISP("Airtel")
	d := blockedOnPath(t, w, airtel)
	site, _ := w.Catalog.Site(d)
	addr := site.Addr(websim.RegionIN)
	tr := Traceroute(airtel.Client, addr, 30, 300*time.Millisecond)
	if tr.N == 0 {
		t.Fatal("traceroute never reached the destination")
	}
	sh, _ := w.Net.Host(addr)
	want := w.Net.HopsBetween(airtel.Client.Host, sh)
	if tr.N != want {
		t.Errorf("measured hops = %d, want %d", tr.N, want)
	}
	// The middlebox border router must appear asterisked.
	asterisks := 0
	for _, h := range tr.Hops {
		if h.Asterisk {
			asterisks++
		}
	}
	if asterisks == 0 {
		t.Error("no anonymized hop before a middlebox-guarded destination")
	}
}

func TestIterativeTraceHTTPLocatesWM(t *testing.T) {
	w := world(t)
	airtel := w.ISP("Airtel")
	d := blockedOnPath(t, w, airtel)
	site, _ := w.Catalog.Site(d)
	tr := IterativeTraceHTTP(airtel.Client, site.Addr(websim.RegionIN), d, 2*time.Second)
	if tr.CensorHop == 0 {
		t.Fatal("tracer never saw censorship")
	}
	if tr.SignatureISP != "Airtel" {
		t.Errorf("signature = %q", tr.SignatureISP)
	}
	// The censor hop must be before the destination (an on-path border).
	if tr.TotalHops > 0 && tr.CensorHop >= tr.TotalHops {
		t.Errorf("censor hop %d not before destination %d", tr.CensorHop, tr.TotalHops)
	}
	// And it must be an asterisked hop in the plain traceroute.
	for _, h := range tr.TraceHops {
		if h.TTL == tr.CensorHop && !h.Asterisk {
			t.Error("censor hop is not anonymized")
		}
	}
}

// blockedAnywhere finds a (domain, destination) pair filtered from the ISP
// client — needed for low-coverage ISPs (Vodafone ~11%) where a site's own
// path often misses every box; the boxes are destination-agnostic.
func blockedAnywhere(t testing.TB, w *ispnet.World, isp *ispnet.ISP) (string, netip.Addr) {
	t.Helper()
	var dests []netip.Addr
	for _, a := range w.Catalog.Alexa {
		dests = append(dests, a.Addr(websim.RegionUS))
	}
	for _, d := range isp.HTTPList {
		for _, dst := range dests {
			if ok, _ := w.HTTPTruthOnPath(isp.Client, dst, d); ok {
				return d, dst
			}
		}
	}
	t.Fatalf("%s: no filtered (domain,dst) pair", isp.Name)
	return "", netip.Addr{}
}

func TestIterativeTraceHTTPCovert(t *testing.T) {
	w := world(t)
	vod := w.ISP("Vodafone")
	d, dst := blockedAnywhere(t, w, vod)
	tr := IterativeTraceHTTP(vod.Client, dst, d, 2*time.Second)
	if tr.CensorHop == 0 {
		t.Fatal("tracer never saw censorship")
	}
	if !tr.Covert {
		t.Error("Vodafone censorship should be covert (bare RST)")
	}
}

func TestIterativeTraceDNSPoisoningNotInjection(t *testing.T) {
	w := world(t)
	mtnl := w.ISP("MTNL")
	var victim string
	for _, d := range mtnl.DNSList {
		if mtnl.Resolvers[0].PoisonsDomain(d) {
			victim = d
			break
		}
	}
	tr := IterativeTraceDNS(mtnl.Client, mtnl.DefaultResolver, victim, time.Second)
	if tr.AnswerHop == 0 {
		t.Fatal("no answer observed")
	}
	if tr.Injected {
		t.Errorf("poisoning misclassified as injection (answer at hop %d of %d)", tr.AnswerHop, tr.ResolverHop)
	}
	if tr.AnswerHop != tr.ResolverHop {
		t.Errorf("answer hop %d != resolver hop %d", tr.AnswerHop, tr.ResolverHop)
	}
}

func TestDetectHTTPBlockedAndClean(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	p := New(w, idea)
	d := blockedOnPath(t, w, idea)
	det := p.DetectHTTP(d)
	if !det.OverThreshold || !det.Blocked {
		t.Errorf("blocked site: %+v", det)
	}
	if det.SignatureISP != "Idea" {
		t.Errorf("signature = %q", det.SignatureISP)
	}
	// A clean, normal site must stay under threshold.
	for _, s := range w.Catalog.PBW {
		if s.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(idea, s.Domain); tr.Blocked() {
			continue
		}
		det := p.DetectHTTP(s.Domain)
		if det.Blocked {
			t.Errorf("clean site %s flagged: %+v", s.Domain, det)
		}
		break
	}
}

// The manual-verification stage must clear dead/CDN sites that exceed the
// diff threshold — the paper's ~40% threshold false positives.
func TestDetectHTTPManualClearsContentDrift(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	p := New(w, idea)
	checked := 0
	for _, s := range w.Catalog.PBW {
		if checked >= 3 {
			break
		}
		if s.Kind != websim.KindDead {
			continue
		}
		if tr := w.TruthFor(idea, s.Domain); tr.Blocked() {
			continue
		}
		det := p.DetectHTTP(s.Domain)
		if det.OverThreshold && det.Blocked {
			t.Errorf("dead site %s wrongly confirmed blocked", s.Domain)
		}
		if det.OverThreshold {
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no over-threshold dead sites in small catalog")
	}
}

func TestDetectTCPNeverFires(t *testing.T) {
	w := world(t)
	p := New(w, w.ISP("Idea"))
	// Even truly censored sites show no TCP/IP filtering (the paper found
	// none): handshakes always complete — interception happens later.
	d := blockedOnPath(t, w, w.ISP("Idea"))
	if p.DetectTCP(d) {
		t.Error("TCP/IP filtering misdetected on an HTTP-filtered site")
	}
}

func TestTriggerExperimentsIdea(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	p := New(w, idea)
	d := blockedOnPath(t, w, idea)
	site, _ := w.Catalog.Site(d)
	rep := p.TriggerExperiments(d, site.Addr(websim.RegionIN))
	if !rep.CensoredAtTTLBelowServer || !rep.CensoredAtFullTTL {
		t.Errorf("paired-TTL: below=%v full=%v (rules out response triggering)",
			rep.CensoredAtTTLBelowServer, rep.CensoredAtFullTTL)
	}
	if !rep.HostCaseEvades {
		t.Error("HOst: mutation should evade and elicit the real server")
	}
	if !rep.HostFieldOnly {
		t.Error("censored domain outside Host field must not trigger")
	}
	if rep.SYNOnlyTriggers || rep.NoHandshakeTriggers {
		t.Error("stateless triggering observed; boxes must require a handshake")
	}
	if !rep.HandshakeThenTriggers {
		t.Error("control experiment (handshake + GET) failed to trigger")
	}
	if !rep.StateExpiresAfterIdle {
		t.Error("state should expire after 4 idle minutes")
	}
	if !rep.StateRefreshedByTraffic {
		t.Error("traffic should refresh the state timer")
	}
}

func TestClassifyMiddleboxTypes(t *testing.T) {
	w := world(t)
	remote := w.VPs[0]
	cases := []struct {
		isp  string
		want string
	}{
		{"Airtel", "wiretap"},
		{"Idea", "interceptive"},
		{"Vodafone", "interceptive"},
	}
	for _, c := range cases {
		isp := w.ISP(c.isp)
		p := New(w, isp)
		// Pick a (domain, remote VP) pair whose path crosses a box (the
		// boxes are destination-agnostic, so any list entry on that path
		// works). Low-coverage ISPs need trying several VPs.
		var domain string
		target := remote
		for _, vp := range w.VPs {
			for _, d := range isp.HTTPList {
				if ok, _ := w.HTTPTruthOnPath(isp.Client, vp.Addr(), d); ok {
					domain, target = d, vp
					break
				}
			}
			if domain != "" {
				break
			}
		}
		if domain == "" {
			t.Fatalf("%s: no filtered domain toward any remote VP", c.isp)
		}
		cls := p.ClassifyMiddlebox(domain, target, 10)
		if cls.Type != c.want {
			t.Errorf("%s: classified %q, want %q (%+v)", c.isp, cls.Type, c.want, cls)
		}
		if c.want == "interceptive" && !cls.RemoteGotForeignRST {
			t.Errorf("%s: interceptive box should reset the server with its own seq", c.isp)
		}
		if c.want == "wiretap" && !cls.RendersSometimes {
			t.Errorf("%s: wiretap should lose some races over 10 attempts", c.isp)
		}
	}
}

func TestScanPathAndCoverageSmall(t *testing.T) {
	w := world(t)
	idea := w.ISP("Idea")
	p := New(w, idea)
	cfg := ScanConfig{Paths: 24, SampleURLs: 40, Attempts: 1, OutsideTargets: 1, PerURLTimeout: 600 * time.Millisecond}
	res := p.MeasureCoverage(cfg)
	if res.PathsScanned == 0 {
		t.Fatal("no paths scanned")
	}
	// Idea: ~92% calibrated coverage.
	if res.WithinCoverage < 0.7 {
		t.Errorf("Idea within coverage = %.2f, want high", res.WithinCoverage)
	}
	if res.OutsideCoverage < 0.6 {
		t.Errorf("Idea outside coverage = %.2f, want high", res.OutsideCoverage)
	}
	if res.Consistency < 0.5 {
		t.Errorf("Idea consistency = %.2f, want ~0.77", res.Consistency)
	}
	if len(res.BlockedUnion) == 0 {
		t.Error("no blocked union")
	}

	jio := w.ISP("Jio")
	pj := New(w, jio)
	paths, poisoned := pj.MeasureCoverageOutside(cfg)
	if paths == 0 {
		t.Fatal("no outside paths")
	}
	if poisoned != 0 {
		t.Errorf("Jio outside poisoned = %d, want 0 (source filtering)", poisoned)
	}
}

func TestDNSResolverScan(t *testing.T) {
	w := world(t)
	bsnl := w.ISP("BSNL")
	p := New(w, bsnl)
	resolvers := p.DiscoverResolvers(w.Catalog.AlexaDomains()[0])
	if len(resolvers) != len(bsnl.Resolvers) {
		t.Fatalf("discovered %d resolvers, want %d", len(resolvers), len(bsnl.Resolvers))
	}
	scan := p.ScanResolvers(resolvers, w.Catalog.PBWDomains())
	poisonedTruth := 0
	for _, r := range bsnl.Resolvers {
		if r.Poisoned() {
			poisonedTruth++
		}
	}
	if len(scan.BlockedBy) != poisonedTruth {
		t.Errorf("censorious resolvers detected = %d, truth %d", len(scan.BlockedBy), poisonedTruth)
	}
	wantCov := float64(poisonedTruth) / float64(len(bsnl.Resolvers))
	if scan.Coverage < wantCov-0.02 || scan.Coverage > wantCov+0.02 {
		t.Errorf("coverage = %.3f, want ~%.3f", scan.Coverage, wantCov)
	}
	if len(scan.BlockedDomains) == 0 {
		t.Error("no blocked domains found")
	}
	// No CDN false positives: every detected domain must really be in the
	// ISP's DNS list.
	inList := SetOf(bsnl.DNSList)
	for _, d := range scan.BlockedDomains {
		if !inList[d] {
			t.Errorf("false positive in DNS scan: %s", d)
		}
	}
}

func TestMeasureCollateralNKN(t *testing.T) {
	w := world(t)
	nkn := w.ISP("NKN")
	p := New(w, nkn)
	res := p.MeasureCollateral(w.Catalog.PBWDomains())
	if len(res.ByNeighbor) == 0 {
		t.Fatal("no collateral detected")
	}
	for n := range res.ByNeighbor {
		if n != "Vodafone" && n != "TATA" {
			t.Errorf("unexpected neighbour %q (%d sites)", n, res.ByNeighbor[n])
		}
	}
	// Compare against ground truth counts.
	truthBy := map[string]int{}
	for _, d := range w.Catalog.PBWDomains() {
		if tr := w.TruthFor(nkn, d); tr.HTTPFiltered {
			truthBy[tr.By.Owner]++
		}
	}
	for n, want := range truthBy {
		got := res.ByNeighbor[n]
		if got < want*7/10 || got > want {
			t.Errorf("%s: measured %d, truth %d", n, got, want)
		}
	}
}

func TestIsBogon(t *testing.T) {
	cases := []struct {
		addr string
		want bool
	}{
		{"10.66.1.2", true},
		{"192.168.1.1", true},
		{"127.0.0.1", true},
		{"8.8.8.8", false},
		{"151.10.0.1", false},
		{"100.64.3.3", true},
	}
	for _, c := range cases {
		if got := IsBogon(mustAddr(c.addr)); got != c.want {
			t.Errorf("IsBogon(%s) = %v", c.addr, got)
		}
	}
}

func mustAddr(s string) (a netip.Addr) {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}
