package difflib

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIdenticalTexts(t *testing.T) {
	s := "line one\nline two\nline three"
	if r := RatioLines(s, s); !almost(r, 1.0) {
		t.Errorf("identical ratio = %v", r)
	}
}

func TestEmptyTexts(t *testing.T) {
	if r := RatioLines("", ""); !almost(r, 1.0) {
		t.Errorf("empty/empty = %v, want 1.0", r)
	}
	if r := RatioLines("abc", ""); !almost(r, 0.0) {
		t.Errorf("abc/empty = %v, want 0.0", r)
	}
}

func TestDisjointTexts(t *testing.T) {
	if r := RatioLines("a\nb\nc", "x\ny\nz"); !almost(r, 0.0) {
		t.Errorf("disjoint = %v, want 0.0", r)
	}
}

// Known vector from the CPython docs: SequenceMatcher(None, "abcd", "bcde")
// has ratio 0.75.
func TestPythonKnownVector(t *testing.T) {
	if r := RatioBytes([]byte("abcd"), []byte("bcde")); !almost(r, 0.75) {
		t.Errorf("abcd/bcde = %v, want 0.75", r)
	}
}

// CPython doc example: " abcd" vs "abcd abcd" -> 2*4/14 with autojunk off
// would find "abcd " too; verify against the exact matching-block
// semantics: longest match is " abcd" (size 5)? The documented ratio for
// SequenceMatcher(None, " abcd", "abcd abcd") is 0.714285...
func TestPythonDocExample(t *testing.T) {
	r := RatioBytes([]byte(" abcd"), []byte("abcd abcd"))
	if !almost(r, 10.0/14.0) {
		t.Errorf("ratio = %v, want %v", r, 10.0/14.0)
	}
}

func TestHalfOverlap(t *testing.T) {
	a := "one\ntwo\nthree\nfour"
	b := "one\ntwo\nfive\nsix"
	// matches: "one","two" => M=2, T=8, ratio=0.5
	if r := RatioLines(a, b); !almost(r, 0.5) {
		t.Errorf("half overlap = %v, want 0.5", r)
	}
}

func TestSimilarThreshold(t *testing.T) {
	base := strings.Repeat("content line\n", 10)
	tweaked := base + "extra ad line"
	if !Similar(base, tweaked, 0.3) {
		t.Error("small addition should be under 0.3 difference")
	}
	if Similar("completely different", base, 0.3) {
		t.Error("unrelated texts should exceed 0.3 difference")
	}
}

func TestOrderMatters(t *testing.T) {
	// Reversed sequences still share subsequences; matching blocks are
	// non-crossing, so ratio must be below 1 but above 0.
	a := "a\nb\nc\nd"
	b := "d\nc\nb\na"
	r := RatioLines(a, b)
	if r <= 0 || r >= 1 {
		t.Errorf("reversed ratio = %v, want in (0,1)", r)
	}
	// Exactly one block of size 1 can match in a non-crossing way.
	if !almost(r, 2.0/8.0) {
		t.Errorf("reversed ratio = %v, want 0.25", r)
	}
}

func TestRatioStrings(t *testing.T) {
	if r := RatioStrings([]string{"x", "y"}, []string{"x", "y"}); !almost(r, 1.0) {
		t.Errorf("RatioStrings identical = %v", r)
	}
}

// Property: matched elements cannot exceed the shorter sequence, so
// ratio <= 2*min(|a|,|b|)/(|a|+|b|). (Note ratio is not exactly symmetric —
// CPython's tie-breaking has the same behaviour — so we don't test that.)
func TestPropertyUpperBound(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 200 {
			a = a[:200]
		}
		if len(b) > 200 {
			b = b[:200]
		}
		if len(a)+len(b) == 0 {
			return true
		}
		minLen := len(a)
		if len(b) < minLen {
			minLen = len(b)
		}
		bound := 2 * float64(minLen) / float64(len(a)+len(b))
		return RatioBytes(a, b) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ratio is always in [0,1], and 1 for identical inputs.
func TestPropertyBounds(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 200 {
			a = a[:200]
		}
		if len(b) > 200 {
			b = b[:200]
		}
		r := RatioBytes(a, b)
		if r < 0 || r > 1 {
			return false
		}
		return almost(RatioBytes(a, a), 1.0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: appending shared suffixes never decreases the match count.
func TestPropertySharedSuffix(t *testing.T) {
	f := func(a, b, suffix []byte) bool {
		if len(a) > 100 {
			a = a[:100]
		}
		if len(b) > 100 {
			b = b[:100]
		}
		if len(suffix) > 100 {
			suffix = suffix[:100]
		}
		if len(suffix) == 0 {
			return true
		}
		ra := RatioBytes(append(append([]byte{}, a...), suffix...), append(append([]byte{}, b...), suffix...))
		// With a shared suffix of length s, matched >= s, so
		// ratio >= 2s/(len(a)+len(b)+2s).
		s := float64(len(suffix))
		lower := 2 * s / (float64(len(a)+len(b)) + 2*s)
		return ra >= lower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRatioLines(b *testing.B) {
	a := strings.Repeat("the quick brown fox\n", 200)
	c := strings.Repeat("the quick brown fox\n", 150) + strings.Repeat("jumps over\n", 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RatioLines(a, c)
	}
}
