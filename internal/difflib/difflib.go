// Package difflib ports the similarity-ratio core of Python's difflib
// (SequenceMatcher). The paper's detection scripts "used python difflib"
// to compare the HTTP body fetched directly against the body fetched over
// Tor, flagging a site for manual review when the similarity falls below a
// 0.3-equivalent threshold; this package supplies the identical metric so
// the probe code matches the paper's pipeline.
package difflib

import "strings"

// match is one maximal matching block between sequences a and b.
type match struct{ a, b, size int }

// matcher computes matching blocks between two sequences, following
// Python's SequenceMatcher (without junk heuristics — measurement code
// wants the deterministic exact algorithm).
type matcher[E comparable] struct {
	a, b []E
	b2j  map[E][]int
}

func newMatcher[E comparable](a, b []E) *matcher[E] {
	m := &matcher[E]{a: a, b: b, b2j: make(map[E][]int, len(b))}
	for j, e := range b {
		m.b2j[e] = append(m.b2j[e], j)
	}
	return m
}

// findLongestMatch finds the longest matching block in a[alo:ahi] and
// b[blo:bhi], preferring the earliest in a then earliest in b, exactly as
// CPython's implementation does.
func (m *matcher[E]) findLongestMatch(alo, ahi, blo, bhi int) match {
	besti, bestj, bestsize := alo, blo, 0
	j2len := map[int]int{}
	for i := alo; i < ahi; i++ {
		newj2len := map[int]int{}
		for _, j := range m.b2j[m.a[i]] {
			if j < blo {
				continue
			}
			if j >= bhi {
				break
			}
			k := j2len[j-1] + 1
			newj2len[j] = k
			if k > bestsize {
				besti, bestj, bestsize = i-k+1, j-k+1, k
			}
		}
		j2len = newj2len
	}
	return match{besti, bestj, bestsize}
}

// matchingBlocks returns all maximal matching blocks, iteratively (CPython
// uses an explicit queue to avoid recursion depth issues; so do we).
func (m *matcher[E]) matchingBlocks() []match {
	type span struct{ alo, ahi, blo, bhi int }
	queue := []span{{0, len(m.a), 0, len(m.b)}}
	var matched []match
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		mt := m.findLongestMatch(s.alo, s.ahi, s.blo, s.bhi)
		if mt.size > 0 {
			matched = append(matched, mt)
			if s.alo < mt.a && s.blo < mt.b {
				queue = append(queue, span{s.alo, mt.a, s.blo, mt.b})
			}
			if mt.a+mt.size < s.ahi && mt.b+mt.size < s.bhi {
				queue = append(queue, span{mt.a + mt.size, s.ahi, mt.b + mt.size, s.bhi})
			}
		}
	}
	return matched
}

// ratio computes 2*M/T where M is the number of matched elements and T the
// total length of both sequences. Two empty sequences are identical (1.0).
func ratio[E comparable](a, b []E) float64 {
	total := len(a) + len(b)
	if total == 0 {
		return 1.0
	}
	m := newMatcher(a, b)
	matched := 0
	for _, blk := range m.matchingBlocks() {
		matched += blk.size
	}
	return 2.0 * float64(matched) / float64(total)
}

// RatioLines compares two texts line-by-line, the granularity the paper's
// scripts used for HTTP bodies.
func RatioLines(a, b string) float64 {
	return ratio(splitLines(a), splitLines(b))
}

// RatioStrings compares two pre-tokenized sequences.
func RatioStrings(a, b []string) float64 { return ratio(a, b) }

// RatioBytes compares two byte slices element-wise (Python's behaviour on
// bytes objects). Quadratic in the worst case; intended for short inputs.
func RatioBytes(a, b []byte) float64 { return ratio(a, b) }

// Similar reports whether the two texts differ by no more than the
// threshold used throughout the paper: difference < threshold, i.e.
// ratio > 1-threshold.
func Similar(a, b string, threshold float64) bool {
	return 1.0-RatioLines(a, b) < threshold
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
