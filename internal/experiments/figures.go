package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"repro/internal/httpwire"
	"repro/internal/ispnet"
	"repro/internal/probe"
	"repro/internal/websim"
)

// ---------------------------------------------------------------- Figure 1

// Figure1Result is the Iterative Network Tracer demonstration: per-TTL
// observations on the way to a censored site.
type Figure1Result struct {
	ISP    string
	Domain string
	Trace  *probe.IterTraceResult
}

// Figure1 runs the tracer in one wiretap ISP against an observed-censored
// domain.
func (s *Suite) Figure1() *Figure1Result {
	name := "Airtel"
	isp := s.World.ISP(name)
	domain, dst := s.observedBlockedPair(name)
	if domain == "" {
		return &Figure1Result{ISP: name}
	}
	tr := probe.IterativeTraceHTTP(isp.Client, dst, domain, 3*time.Second)
	return &Figure1Result{ISP: name, Domain: domain, Trace: tr}
}

// observedBlockedPair finds a blocked (domain, destination) without the
// oracle: it scans list candidates against site addresses and then Alexa
// destinations until censorship is observed.
func (s *Suite) observedBlockedPair(name string) (string, netip.Addr) {
	p := s.probeFor(name)
	blocked := s.coverageFor(name).BlockedUnion
	for _, d := range blocked {
		site, ok := s.World.Catalog.Site(d)
		if !ok || site.Kind != websim.KindNormal {
			continue
		}
		addr := site.Addr(websim.RegionIN)
		for attempt := 0; attempt < 3; attempt++ {
			fr := probe.GetFrom(s.World.ISP(name).Client, addr, d, nil, p.Timeout)
			if fr.Notification || (fr.Reset && len(fr.Responses) == 0) {
				return d, addr
			}
		}
	}
	// Fall back to Alexa destinations (destination-agnostic boxes).
	for _, a := range s.World.Catalog.Alexa[:min(40, len(s.World.Catalog.Alexa))] {
		addr := a.Addr(websim.RegionUS)
		for _, d := range blocked[:min(40, len(blocked))] {
			for attempt := 0; attempt < 2; attempt++ {
				fr := probe.GetFrom(s.World.ISP(name).Client, addr, d, nil, p.Timeout)
				if fr.Notification || (fr.Reset && len(fr.Responses) == 0) {
					return d, addr
				}
			}
		}
	}
	return "", netip.Addr{}
}

// RenderFigure1 prints the per-TTL storyline of Figure 1.
func RenderFigure1(r *Figure1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Iterative Network Tracer (%s, %s)\n", r.ISP, r.Domain)
	if r.Trace == nil || r.Trace.CensorHop == 0 {
		b.WriteString("  no censorship observed\n")
		return b.String()
	}
	max := r.Trace.CensorHop
	for ttl := 1; ttl <= max; ttl++ {
		switch {
		case ttl == r.Trace.CensorHop:
			kind := "censorship notification-cum-disconnection"
			if r.Trace.Covert {
				kind = "forged RST (covert censorship)"
			}
			fmt.Fprintf(&b, "  TTL=%-2d -> %s", ttl, kind)
			if r.Trace.SignatureISP != "" {
				fmt.Fprintf(&b, " [signature: %s]", r.Trace.SignatureISP)
			}
			b.WriteString("\n")
		default:
			if addr, ok := r.Trace.ICMPAt[ttl]; ok {
				fmt.Fprintf(&b, "  TTL=%-2d -> ICMP time-exceeded from %v\n", ttl, addr)
			} else {
				fmt.Fprintf(&b, "  TTL=%-2d -> * (anonymized router)\n", ttl)
			}
		}
	}
	fmt.Fprintf(&b, "  traceroute hop count to destination: %d\n", r.Trace.TotalHops)
	return b.String()
}

// ---------------------------------------------------------------- Figure 2

// Figure2Result is one DNS-censoring ISP's resolver scan.
type Figure2Result struct {
	ISP            string
	TotalResolvers int
	Scan           *probe.DNSScanResult
}

// Figure2 scans MTNL and BSNL resolver fleets.
func (s *Suite) Figure2() []Figure2Result {
	var out []Figure2Result
	for _, name := range DNSCensors {
		p := s.probeFor(name)
		control := s.World.Catalog.AlexaDomains()[0]
		resolvers := p.DiscoverResolvers(control)
		scan := p.ScanResolvers(resolvers, s.World.Catalog.PBWDomains())
		out = append(out, Figure2Result{ISP: name, TotalResolvers: len(resolvers), Scan: scan})
	}
	return out
}

// RenderFigure2 prints coverage/consistency and a compact series summary.
func RenderFigure2(rows []Figure2Result) string {
	var b strings.Builder
	b.WriteString("Figure 2 / §4.1: DNS resolver censorship\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s resolvers=%d poisoned=%d coverage=%.1f%% consistency=%.1f%% blocked-domains=%d\n",
			r.ISP, r.TotalResolvers, len(r.Scan.BlockedBy),
			100*r.Scan.Coverage, 100*r.Scan.Consistency, len(r.Scan.BlockedDomains))
		b.WriteString(seriesSummary(r.Scan.Series))
	}
	return b.String()
}

// seriesSummary prints quartiles of a per-domain percentage series.
func seriesSummary(series map[string]float64) string {
	if len(series) == 0 {
		return "       (empty series)\n"
	}
	vals := make([]float64, 0, len(series))
	for _, v := range series {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	q := func(p float64) float64 { return vals[int(p*float64(len(vals)-1))] }
	return fmt.Sprintf("       series: min=%.1f%% p25=%.1f%% median=%.1f%% p75=%.1f%% max=%.1f%% (n=%d)\n",
		vals[0], q(0.25), q(0.5), q(0.75), vals[len(vals)-1], len(vals))
}

// ---------------------------------------------------------- Figures 3 & 4

// FigureTrace is a packet-level trace of one censorship event, observed at
// both the client and a remote controlled server (Figures 3 and 4).
type FigureTrace struct {
	ISP          string
	Domain       string
	BoxType      string
	ClientTrace  []string
	RemoteTrace  []string
	Observations []string
}

// middleboxTrace runs the remote-controlled-host experiment with packet
// capture at both ends.
func (s *Suite) middleboxTrace(name string) *FigureTrace {
	isp := s.World.ISP(name)
	p := s.probeFor(name)
	out := &FigureTrace{ISP: name}

	// Find a (domain, VP) pair that triggers, trying a few times for
	// wiretap races.
	blocked := s.coverageFor(name).BlockedUnion
	var domain string
	var remote *ispnet.Endpoint
	for _, vp := range s.World.VPs {
		for _, d := range blocked[:min(20, len(blocked))] {
			cls := p.ClassifyMiddlebox(d, vp, 4)
			if cls.ClientSawCensorship {
				domain, remote = d, vp
				out.BoxType = cls.Type
				break
			}
		}
		if domain != "" {
			break
		}
	}
	if domain == "" {
		return out
	}
	out.Domain = domain

	// The instrumented run.
	for attempt := 0; attempt < 6; attempt++ {
		isp.Client.Host.StartCapture()
		remote.Host.StartCapture()
		before := remote.Server.Requests
		c := isp.Client.TCP.Connect(remote.Addr(), 80)
		if err := c.WaitEstablished(3 * time.Second); err != nil {
			isp.Client.Host.StopCapture()
			remote.Host.StopCapture()
			continue
		}
		c.Send(httpwire.NewGET("/").Header("Host", domain).Bytes())
		s.World.Eng.RunFor(2 * time.Second)
		censored := false
		if _, reset := c.WasReset(); (reset && len(c.Stream()) == 0) || (c.PeerClosed() && len(c.Stream()) > 0) {
			censored = true
		}
		// Attempt an orderly close, as the paper's clients did; against an
		// interceptive box this times out (blackholed) and ends in a RST.
		c.Close()
		s.World.Eng.RunFor(2 * time.Second)
		if !c.Dead() {
			c.Abort()
			s.World.Eng.RunFor(500 * time.Millisecond)
			out.Observations = append(out.Observations, "4-way teardown timed out; client aborted with RST")
		}
		clientCap := isp.Client.Host.StopCapture()
		remoteCap := remote.Host.StopCapture()
		if !censored {
			continue
		}
		for _, rec := range clientCap {
			out.ClientTrace = append(out.ClientTrace, rec.String())
		}
		for _, rec := range remoteCap {
			out.RemoteTrace = append(out.RemoteTrace, rec.String())
		}
		if remote.Server.Requests > before {
			out.Observations = append(out.Observations, "remote host received the GET (wiretap copy)")
		} else {
			out.Observations = append(out.Observations, "remote host never received the GET (interceptive consume)")
		}
		break
	}
	return out
}

// Figure3 traces an interceptive middlebox (Idea).
func (s *Suite) Figure3() *FigureTrace { return s.middleboxTrace("Idea") }

// Figure4 traces a wiretap middlebox (Airtel).
func (s *Suite) Figure4() *FigureTrace { return s.middleboxTrace("Airtel") }

// RenderFigureTrace prints both captures.
func RenderFigureTrace(title string, tr *FigureTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s, box=%s, domain=%s)\n", title, tr.ISP, tr.BoxType, tr.Domain)
	if tr.Domain == "" {
		b.WriteString("  no censorship event captured\n")
		return b.String()
	}
	b.WriteString("  client-side capture:\n")
	for _, l := range tr.ClientTrace {
		fmt.Fprintf(&b, "    %s\n", l)
	}
	b.WriteString("  remote-host capture:\n")
	for _, l := range tr.RemoteTrace {
		fmt.Fprintf(&b, "    %s\n", l)
	}
	for _, o := range tr.Observations {
		fmt.Fprintf(&b, "  note: %s\n", o)
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 5

// Figure5Row is one ISP's middlebox-consistency series.
type Figure5Row struct {
	ISP         string
	Consistency float64 // %
	Series      map[string]float64
}

// Figure5 reuses the Table 2 scans for the three ISPs in the figure.
func (s *Suite) Figure5() []Figure5Row {
	var rows []Figure5Row
	for _, name := range []string{"Airtel", "Vodafone", "Idea"} {
		cov := s.coverageFor(name)
		rows = append(rows, Figure5Row{
			ISP: name, Consistency: 100 * cov.Consistency, Series: cov.Series,
		})
	}
	return rows
}

// RenderFigure5 prints the consistency summary per ISP.
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: Consistency of middleboxes (% of poisoned paths blocking each site)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s consistency=%.1f%% blocked-sites=%d\n", r.ISP, r.Consistency, len(r.Series))
		b.WriteString(seriesSummary(r.Series))
	}
	return b.String()
}

// helpers

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
