package experiments

import (
	"fmt"
	"strings"
)

// Section31Row reproduces the §3.1 methodology argument for one ISP: of
// the sites whose HTTP diff against the Tor fetch exceeds the 0.3
// threshold (everything OONI-style tooling would flag), what fraction does
// manual verification clear as non-censored? The paper's Airtel example:
// 390 sites over threshold, ~40% of them actually non-censored; across
// ISPs they report 30-40%.
type Section31Row struct {
	ISP           string
	Tested        int
	OverThreshold int
	Confirmed     int // blocked after manual verification
	Cleared       int // over threshold but not censored
}

// ClearedFraction is the would-be false-positive rate of a
// threshold-only pipeline.
func (r Section31Row) ClearedFraction() float64 {
	if r.OverThreshold == 0 {
		return 0
	}
	return float64(r.Cleared) / float64(r.OverThreshold)
}

// Section31 runs the full detection pipeline over the PBW list for the
// given ISPs and tabulates the threshold-vs-manual outcome.
func (s *Suite) Section31(isps []string) []Section31Row {
	domains := s.World.Catalog.PBWDomains()
	if s.Opt.OONISample > 0 && s.Opt.OONISample < len(domains) {
		domains = domains[:s.Opt.OONISample]
	}
	var rows []Section31Row
	for _, name := range isps {
		p := s.probeFor(name)
		row := Section31Row{ISP: name}
		for _, d := range domains {
			det := p.DetectHTTP(d)
			row.Tested++
			if !det.OverThreshold {
				continue
			}
			row.OverThreshold++
			if det.Blocked {
				row.Confirmed++
			} else {
				row.Cleared++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderSection31 prints the §3.1 comparison.
func RenderSection31(rows []Section31Row) string {
	var b strings.Builder
	b.WriteString("Section 3.1: HTTP-diff threshold (0.3) vs manual verification\n")
	fmt.Fprintf(&b, "%-10s %8s %14s %10s %9s %20s\n",
		"ISP", "tested", "over-threshold", "confirmed", "cleared", "threshold-FP-rate")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %14d %10d %9d %19.0f%%\n",
			r.ISP, r.Tested, r.OverThreshold, r.Confirmed, r.Cleared, 100*r.ClearedFraction())
	}
	return b.String()
}
