package experiments

import (
	"fmt"
	"os"
	"testing"
	"time"
)

func TestFullScaleDryRun(t *testing.T) {
	if os.Getenv("FULLRUN") == "" {
		t.Skip("set FULLRUN=1")
	}
	start := time.Now()
	s := NewSuite(DefaultOptions())
	fmt.Printf("world built in %v\n", time.Since(start))
	stage := func(name string, fn func() string) {
		t0 := time.Now()
		out := fn()
		fmt.Printf("%s[%s in %v]\n\n", out, name, time.Since(t0))
	}
	stage("table2", func() string { return RenderTable2(s.Table2()) })
	stage("figure5", func() string { return RenderFigure5(s.Figure5()) })
	stage("table1", func() string { return RenderTable1(s.Table1(OONITargets)) })
	stage("figure2", func() string { return RenderFigure2(s.Figure2()) })
	stage("table3", func() string { return RenderTable3(s.Table3()) })
	stage("figure1", func() string { return RenderFigure1(s.Figure1()) })
	stage("figure3", func() string { return RenderFigureTrace("Figure 3", s.Figure3()) })
	stage("figure4", func() string { return RenderFigureTrace("Figure 4", s.Figure4()) })
	stage("section5", func() string { return RenderSection5(s.Section5()) })
}
