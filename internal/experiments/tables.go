package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/censor"
	"repro/internal/anticensor"
	"repro/internal/ooni"
	"repro/internal/probe"
	"repro/internal/websim"
)

// ---------------------------------------------------------------- Table 1

// Table1Row is one ISP's OONI accuracy: (precision, recall) per censorship
// type, as in the paper's Table 1.
type Table1Row struct {
	ISP                   string
	Total, DNS, TCP, HTTP ooni.Accuracy
}

// Table1 runs the censor package's ooni measurement on each ISP and
// scores it against the oracle (standing in for the authors' manual
// verification).
func (s *Suite) Table1(isps []string) []Table1Row {
	domains := s.World.Catalog.PBWDomains()
	if s.Opt.OONISample > 0 && s.Opt.OONISample < len(domains) {
		domains = domains[:s.Opt.OONISample]
	}
	var rows []Table1Row
	for _, name := range isps {
		isp := s.World.ISP(name)
		results, err := s.Session.Measure(context.Background(), name, censor.OONI(), domains...)
		if err != nil {
			panic(fmt.Sprintf("experiments: table 1: %v", err))
		}
		rep := ooni.NewReport(name)
		for _, r := range results {
			rep.Add(r.Domain, ooni.Blocking(r.Mechanism))
		}
		// Ground truth follows the paper's scoring: the study's full
		// findings. For DNS that is the union over all the ISP's
		// resolvers (OONI only ever consults the default one — the root
		// of its low DNS recall); for HTTP it is what manual browsing
		// from the client vantage confirms.
		truthDNS, truthHTTP := map[string]bool{}, map[string]bool{}
		inDomains := map[string]bool{}
		for _, d := range domains {
			inDomains[d] = true
		}
		for _, d := range isp.DNSList {
			if inDomains[d] {
				truthDNS[d] = true
			}
		}
		for _, d := range domains {
			if t := s.World.TruthFor(isp, d); t.HTTPFiltered {
				truthHTTP[d] = true
			}
		}
		total, dns, tcp, http := ooni.Evaluate(rep, truthDNS, truthHTTP)
		rows = append(rows, Table1Row{ISP: name, Total: total, DNS: dns, TCP: tcp, HTTP: http})
	}
	return rows
}

// RenderTable1 prints the paper-style table.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Accuracy of OONI (precision, recall)\n")
	fmt.Fprintf(&b, "%-10s %-14s %-14s %-14s %-14s\n", "ISP", "Total", "DNS", "TCP", "HTTP")
	pr := func(a ooni.Accuracy) string {
		return fmt.Sprintf("%.2f, %.2f", a.Precision, a.Recall)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-14s %-14s %-14s %-14s\n",
			r.ISP, pr(r.Total), pr(r.DNS), pr(r.TCP), pr(r.HTTP))
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one ISP's HTTP-filtering summary.
type Table2Row struct {
	ISP             string
	WithinCoverage  float64 // %
	OutsideCoverage float64 // %
	BoxType         string  // "WM" / "IM" / "?"
	BlockedCount    int
	Consistency     float64 // % (the Figure 5 average)
}

// Table2 runs the coverage scans plus the middlebox-type classification.
func (s *Suite) Table2() []Table2Row {
	var rows []Table2Row
	for _, name := range HTTPCensors {
		cov := s.coverageFor(name)
		row := Table2Row{
			ISP:             name,
			WithinCoverage:  100 * cov.WithinCoverage,
			OutsideCoverage: 100 * cov.OutsideCoverage,
			BlockedCount:    len(cov.BlockedUnion),
			Consistency:     100 * cov.Consistency,
			BoxType:         s.classify(name, cov.BlockedUnion),
		}
		rows = append(rows, row)
	}
	return rows
}

// classify runs the remote-controlled-host experiment using observed
// blocked domains (no oracle). A cheap single-fetch prescreen finds a
// (domain, vantage) pair whose path actually crosses a box before paying
// for the full instrumented classification.
func (s *Suite) classify(name string, blocked []string) string {
	p := s.probeFor(name)
	for _, vp := range s.World.VPs {
		for _, d := range blocked {
			hit := false
			for attempt := 0; attempt < 2 && !hit; attempt++ {
				fr := probe.GetFrom(s.World.ISP(name).Client, vp.Addr(), d, nil, p.Timeout)
				hit = fr.Notification || (fr.Reset && len(fr.Responses) == 0)
			}
			if !hit {
				continue
			}
			cls := p.ClassifyMiddlebox(d, vp, s.Opt.ClassifyAttempts)
			switch cls.Type {
			case "wiretap":
				return "WM"
			case "interceptive":
				return "IM"
			}
		}
	}
	return "?"
}

// RenderTable2 prints the paper-style table.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: HTTP filtering in different ISPs\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %6s %10s %13s\n",
		"ISP", "Cov(within)%", "Cov(outside)%", "Box", "#Blocked", "Consistency%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.1f %14.1f %6s %10d %13.1f\n",
			r.ISP, r.WithinCoverage, r.OutsideCoverage, r.BoxType, r.BlockedCount, r.Consistency)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one clean ISP's collateral-damage attribution.
type Table3Row struct {
	ISP    string
	Result *probe.CollateralResult
}

// Table3 sweeps the PBW list from every clean ISP through the censor
// package's uniform collateral measurement, aggregating the per-domain
// records into the paper's rows.
func (s *Suite) Table3() []Table3Row {
	domains := s.World.Catalog.PBWDomains()
	var rows []Table3Row
	for _, name := range CleanISPs {
		results, err := s.Session.Measure(context.Background(), name, censor.Collateral(), domains...)
		if err != nil {
			panic(fmt.Sprintf("experiments: table 3: %v", err))
		}
		agg := probe.NewCollateralResult(name)
		for _, r := range results {
			if r.Blocked {
				agg.Add(r.Domain, r.Censor)
			}
		}
		rows = append(rows, Table3Row{ISP: name, Result: agg.Finalize()})
	}
	return rows
}

// RenderTable3 prints the paper-style table.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Collateral damage (censored ISP <- neighbours causing it)\n")
	for _, r := range rows {
		var parts []string
		for _, n := range r.Result.Neighbors {
			parts = append(parts, fmt.Sprintf("%s (%d)", n, r.Result.ByNeighbor[n]))
		}
		if len(parts) == 0 {
			parts = []string{"none"}
		}
		fmt.Fprintf(&b, "%-10s %s\n", r.ISP, strings.Join(parts, ", "))
	}
	return b.String()
}

// -------------------------------------------------------------- Section 5

// Section5Row is one ISP's evasion matrix.
type Section5Row struct {
	ISP    string
	Matrix *anticensor.Matrix
}

// Section5 runs the censor package's evasion measurement against
// observed-blocked domains in every HTTP-censoring ISP, plus the
// poisoned domains of the DNS-censoring ones, and folds the per-domain
// EvasionDetails into the paper's technique × ISP matrix.
func (s *Suite) Section5() []Section5Row {
	var rows []Section5Row
	for _, name := range HTTPCensors {
		// Candidates come from the coverage scan's observed blocked set,
		// preferring stable (normal-kind) sites whose real content can
		// render. The evasion measurement's own baseline decides which
		// candidates actually have a censored site path and count toward
		// the sample (at small scales a wiretap ISP may censor no site
		// paths at all; its row then reads 0/0, like the skipped wiretap
		// cases in the unit tests).
		var candidates []string
		for _, d := range s.coverageFor(name).BlockedUnion {
			if site, ok := s.World.Catalog.Site(d); ok && site.Kind == websim.KindNormal {
				candidates = append(candidates, d)
			}
		}
		rows = append(rows, Section5Row{ISP: name, Matrix: s.evasionMatrix(name, candidates)})
	}
	for _, name := range DNSCensors {
		isp := s.World.ISP(name)
		var victims []string
		for _, d := range isp.DNSList {
			site, ok := s.World.Catalog.Site(d)
			if ok && site.Kind == websim.KindNormal && isp.Resolvers[0].PoisonsDomain(d) {
				if t := s.World.TruthFor(isp, d); !t.HTTPFiltered {
					victims = append(victims, d)
				}
			}
			if len(victims) >= s.Opt.EvasionSample {
				break
			}
		}
		rows = append(rows, Section5Row{ISP: name, Matrix: s.evasionMatrix(name, victims)})
	}
	return rows
}

// evasionMatrix measures candidates through censor.Evasion in chunks of
// the sample size — batched Measure calls share the vantage and its
// Tor-verification cache within a chunk, and chunking stops as soon as
// the quota of baseline-censored domains is met, so neither an
// all-censored nor an all-clean candidate list over-measures. Candidates
// the baseline clears (no censorship on the user's own fetch path) do
// not join the sample; the total candidates scanned are capped at a
// small multiple of the sample size so an ISP with no censored site
// paths stays cheap.
func (s *Suite) evasionMatrix(name string, candidates []string) *anticensor.Matrix {
	m := &anticensor.Matrix{ISP: name, Success: map[anticensor.Technique]int{}}
	if limit := 8 * s.Opt.EvasionSample; len(candidates) > limit {
		candidates = candidates[:limit]
	}
	chunk := s.Opt.EvasionSample
	for start := 0; start < len(candidates) && m.Tried < s.Opt.EvasionSample; start += chunk {
		end := min(start+chunk, len(candidates))
		results, err := s.Session.Measure(context.Background(), name, censor.Evasion(), candidates[start:end]...)
		if err != nil {
			panic(fmt.Sprintf("experiments: section 5: %v", err))
		}
		for _, r := range results {
			if m.Tried >= s.Opt.EvasionSample {
				break
			}
			d, ok := censor.DetailAs[censor.EvasionDetail](r)
			if !ok {
				continue // not censored at baseline: not part of the §5 sample
			}
			m.Tried++
			if d.Evaded {
				m.AnyPerDomain++
			}
			for _, o := range d.Techniques {
				if o.Success {
					m.Success[anticensor.Technique(o.Technique)]++
				}
			}
		}
	}
	return m
}

// RenderSection5 prints the evasion matrix.
func RenderSection5(rows []Section5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5: anti-censorship success (successes/domains tried)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s evaded %d/%d blocked domains\n", r.ISP, r.Matrix.AnyPerDomain, r.Matrix.Tried)
		for _, t := range append(anticensor.AllTechniques, anticensor.TechAltResolver) {
			if n, ok := r.Matrix.Success[t]; ok {
				fmt.Fprintf(&b, "    %-24s %d/%d\n", t, n, r.Matrix.Tried)
			}
		}
	}
	return b.String()
}
