package experiments

import (
	"strings"
	"testing"
)

var sharedSuite *Suite

func suite(t testing.TB) *Suite {
	t.Helper()
	if sharedSuite == nil {
		sharedSuite = NewSuite(QuickOptions())
	}
	return sharedSuite
}

func TestTable1Quick(t *testing.T) {
	s := suite(t)
	rows := s.Table1([]string{"MTNL", "Airtel", "Vodafone"})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// TCP column must be exactly zero everywhere, as in the paper.
		if r.TCP.Flagged != 0 {
			t.Errorf("%s: OONI flagged %d TCP blockings, want 0", r.ISP, r.TCP.Flagged)
		}
		// Precision must be below 1: OONI false positives must exist.
		if r.Total.Flagged > 0 && r.Total.Precision >= 0.999 {
			t.Errorf("%s: OONI total precision %.2f — no false positives simulated?", r.ISP, r.Total.Precision)
		}
	}
	// MTNL must show DNS flags; Airtel must not.
	if rows[0].DNS.Flagged == 0 {
		t.Error("MTNL: no DNS flags")
	}
	// Vodafone's covert resets give it higher HTTP recall than Airtel's
	// mimicking wiretap notifications (the paper's Table 1 contrast).
	if rows[2].HTTP.Truth > 2 && rows[1].HTTP.Truth > 2 && rows[2].HTTP.Recall <= rows[1].HTTP.Recall {
		t.Errorf("recall contrast: Vodafone %.2f <= Airtel %.2f", rows[2].HTTP.Recall, rows[1].HTTP.Recall)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "MTNL") || !strings.Contains(out, "Table 1") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable2AndFigure5Quick(t *testing.T) {
	s := suite(t)
	rows := s.Table2()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byISP := map[string]Table2Row{}
	for _, r := range rows {
		byISP[r.ISP] = r
	}
	// Quick-scale tolerances are wide (36 paths); the full-scale run in
	// bench_test.go checks the calibrated values.
	if byISP["Jio"].OutsideCoverage != 0 {
		t.Errorf("Jio outside coverage = %.1f, want 0", byISP["Jio"].OutsideCoverage)
	}
	if byISP["Idea"].WithinCoverage < 70 {
		t.Errorf("Idea within = %.1f, want ~92", byISP["Idea"].WithinCoverage)
	}
	if byISP["Airtel"].WithinCoverage < 50 || byISP["Airtel"].WithinCoverage > 95 {
		t.Errorf("Airtel within = %.1f, want ~75", byISP["Airtel"].WithinCoverage)
	}
	if byISP["Vodafone"].WithinCoverage > 35 {
		t.Errorf("Vodafone within = %.1f, want ~11", byISP["Vodafone"].WithinCoverage)
	}
	// Ordering must match the paper even when absolute values are noisy.
	if !(byISP["Idea"].WithinCoverage > byISP["Airtel"].WithinCoverage &&
		byISP["Airtel"].WithinCoverage > byISP["Vodafone"].WithinCoverage &&
		byISP["Vodafone"].WithinCoverage >= byISP["Jio"].WithinCoverage) {
		t.Errorf("coverage ordering broken: %+v", rows)
	}
	if byISP["Airtel"].BoxType != "WM" || byISP["Idea"].BoxType != "IM" || byISP["Vodafone"].BoxType != "IM" {
		t.Errorf("box types: %+v", rows)
	}
	// Idea's consistency must dominate the others (Figure 5 ordering).
	f5 := s.Figure5()
	var idea, airtel, vod float64
	for _, r := range f5 {
		switch r.ISP {
		case "Idea":
			idea = r.Consistency
		case "Airtel":
			airtel = r.Consistency
		case "Vodafone":
			vod = r.Consistency
		}
	}
	if !(idea > airtel && idea > vod) {
		t.Errorf("Figure 5 ordering: idea=%.1f airtel=%.1f vodafone=%.1f", idea, airtel, vod)
	}
	out := RenderTable2(rows) + RenderFigure5(f5)
	if !strings.Contains(out, "Figure 5") {
		t.Error("render missing")
	}
}

func TestFigure2Quick(t *testing.T) {
	s := suite(t)
	rows := s.Figure2()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	mtnl, bsnl := rows[0], rows[1]
	if mtnl.ISP != "MTNL" || bsnl.ISP != "BSNL" {
		t.Fatalf("order: %s, %s", mtnl.ISP, bsnl.ISP)
	}
	// MTNL: high coverage (~77%), BSNL low (~9%).
	if mtnl.Scan.Coverage < 0.6 || bsnl.Scan.Coverage > 0.2 {
		t.Errorf("coverage: MTNL=%.2f BSNL=%.2f", mtnl.Scan.Coverage, bsnl.Scan.Coverage)
	}
	// MTNL consistency well above BSNL's.
	if mtnl.Scan.Consistency <= bsnl.Scan.Consistency {
		t.Errorf("consistency: MTNL=%.3f BSNL=%.3f", mtnl.Scan.Consistency, bsnl.Scan.Consistency)
	}
	_ = RenderFigure2(rows)
}

func TestTable3Quick(t *testing.T) {
	s := suite(t)
	rows := s.Table3()
	byISP := map[string]*Table3Row{}
	for i := range rows {
		byISP[rows[i].ISP] = &rows[i]
	}
	expect := map[string][]string{
		"NKN":  {"Vodafone", "TATA"},
		"Sify": {"TATA", "Airtel"},
		"Siti": {"Airtel"},
		"MTNL": {"TATA", "Airtel"},
		"BSNL": {"TATA", "Airtel"},
	}
	for isp, neighbors := range expect {
		r := byISP[isp]
		if r == nil {
			t.Fatalf("missing row %s", isp)
		}
		for _, n := range neighbors {
			if r.Result.ByNeighbor[n] == 0 {
				t.Errorf("%s: no collateral attributed to %s (got %v)", isp, n, r.Result.ByNeighbor)
			}
		}
		for n := range r.Result.ByNeighbor {
			if n == "unattributed" {
				continue
			}
			found := false
			for _, want := range neighbors {
				if n == want {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: unexpected neighbour %s", isp, n)
			}
		}
	}
	_ = RenderTable3(rows)
}

func TestFigure1Quick(t *testing.T) {
	s := suite(t)
	r := s.Figure1()
	if r.Trace == nil || r.Trace.CensorHop == 0 {
		t.Fatalf("tracer found nothing: %+v", r)
	}
	out := RenderFigure1(r)
	if !strings.Contains(out, "censorship notification") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFigures3And4Quick(t *testing.T) {
	s := suite(t)
	f3 := s.Figure3()
	if f3.Domain == "" || f3.BoxType != "interceptive" {
		t.Errorf("figure 3: %+v", f3)
	}
	f4 := s.Figure4()
	if f4.Domain == "" || f4.BoxType != "wiretap" {
		t.Errorf("figure 4: %+v", f4)
	}
	out := RenderFigureTrace("Figure 3", f3) + RenderFigureTrace("Figure 4", f4)
	if !strings.Contains(out, "client-side capture") {
		t.Error("render missing captures")
	}
}

func TestSection5Quick(t *testing.T) {
	s := suite(t)
	rows := s.Section5()
	for _, r := range rows {
		if r.Matrix.Tried == 0 {
			continue
		}
		if r.Matrix.AnyPerDomain != r.Matrix.Tried {
			t.Errorf("%s: evaded %d/%d", r.ISP, r.Matrix.AnyPerDomain, r.Matrix.Tried)
		}
	}
	_ = RenderSection5(rows)
}

func TestSection31Quick(t *testing.T) {
	s := suite(t)
	rows := s.Section31([]string{"Idea"})
	if len(rows) != 1 {
		t.Fatal("no rows")
	}
	r := rows[0]
	if r.OverThreshold == 0 {
		t.Fatal("nothing over threshold")
	}
	// Paper: 30-40% of over-threshold sites are actually non-censored;
	// the cleared fraction must be substantial but not dominant.
	f := r.ClearedFraction()
	if f <= 0.05 || f >= 0.95 {
		t.Errorf("cleared fraction = %.2f (over=%d cleared=%d)", f, r.OverThreshold, r.Cleared)
	}
	if !strings.Contains(RenderSection31(rows), "threshold-FP-rate") {
		t.Error("render broken")
	}
}
