// Package experiments regenerates every table and figure in the paper's
// evaluation from the simulated world, using only the probe toolkit (plus
// the oracle where the paper used manual verification). Each experiment
// has a generator returning structured results and a renderer printing the
// same rows/series the paper reports.
//
// Experiment index:
//
//	Table 1   — OONI precision/recall per ISP        (Table1)
//	Figure 1  — Iterative Network Tracer trace        (Figure1)
//	Figure 2  — DNS resolver consistency, MTNL/BSNL   (Figure2)
//	Table 2   — HTTP filtering coverage + box types   (Table2)
//	Figure 3  — interceptive middlebox packet trace   (Figure3)
//	Figure 4  — wiretap middlebox packet trace        (Figure4)
//	Figure 5  — middlebox consistency per ISP         (Figure5, from Table2)
//	Table 3   — collateral damage                     (Table3)
//	Section 5 — anti-censorship matrix                (Section5)
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/censor"
	"repro/internal/ispnet"
	"repro/internal/probe"
)

// Options sizes a suite run.
type Options struct {
	// Scenario is the world spec the suite session is built from.
	Scenario censor.Scenario
	Scan     probe.ScanConfig
	// OONISample caps the domains measured for Table 1 (0 = all PBWs).
	OONISample int
	// EvasionSample is the number of blocked domains per ISP tried in the
	// §5 matrix.
	EvasionSample int
	// ClassifyAttempts is the per-ISP repeat count for the middlebox-type
	// experiment (needs >1 to observe wiretap races).
	ClassifyAttempts int
}

// DefaultOptions is the paper-scale configuration.
func DefaultOptions() Options {
	scan := probe.DefaultScanConfig()
	scan.Paths = 300 // destinations sampled from the Alexa list
	return Options{
		Scenario:         censor.MustLookupScenario("paper-2018"),
		Scan:             scan,
		EvasionSample:    5,
		ClassifyAttempts: 10,
	}
}

// QuickOptions is a reduced configuration for tests and smoke runs. The
// small catalog forces full-list path sampling (SampleURLs 0) because the
// per-box lists are tiny.
func QuickOptions() Options {
	return Options{
		Scenario: censor.MustLookupScenario("small"),
		Scan: probe.ScanConfig{
			Paths: 36, SampleURLs: 0, Attempts: 2, OutsideTargets: 1,
			PerURLTimeout: 600 * time.Millisecond,
		},
		OONISample:       120,
		EvasionSample:    2,
		ClassifyAttempts: 8,
	}
}

// Suite runs the paper's evaluation on a censor.Session's world and
// caches expensive intermediate results so that Table 2 and Figure 5
// (same scan) are computed once.
type Suite struct {
	Opt     Options
	Session *censor.Session
	World   *ispnet.World

	coverage map[string]*probe.CoverageResult
}

// NewSuite builds a measurement session (and with it the world). The
// session's vantage set is the scenario's full ISP list, so custom worlds
// that drop a study ISP still construct (their suite runs will fail only
// on the experiments that need the missing ISP).
func NewSuite(opt Options) *Suite {
	names := make([]string, 0, len(opt.Scenario.ISPs))
	for i := range opt.Scenario.ISPs {
		names = append(names, opt.Scenario.ISPs[i].Name)
	}
	sess, err := censor.NewSession(context.Background(),
		censor.WithScenario(opt.Scenario), censor.WithVantages(names...))
	if err != nil {
		// Only reachable with an invalid scenario spec.
		panic(fmt.Sprintf("experiments: session: %v", err))
	}
	return NewSuiteWith(sess, opt)
}

// NewSuiteWith runs the evaluation on an existing session (the cmd tools
// build one from flags). opt.Scenario is ignored in favour of the
// session's.
func NewSuiteWith(sess *censor.Session, opt Options) *Suite {
	opt.Scenario = sess.Scenario()
	return &Suite{
		Opt:      opt,
		Session:  sess,
		World:    sess.World(),
		coverage: make(map[string]*probe.CoverageResult),
	}
}

// HTTPCensors are the four ISPs of Table 2.
var HTTPCensors = []string{"Airtel", "Idea", "Vodafone", "Jio"}

// OONITargets are the five ISPs of Table 1.
var OONITargets = []string{"MTNL", "Airtel", "Idea", "Vodafone", "Jio"}

// DNSCensors are the two ISPs of §4.1 / Figure 2.
var DNSCensors = []string{"MTNL", "BSNL"}

// CleanISPs are the Table 3 victims.
var CleanISPs = []string{"NKN", "Sify", "Siti", "MTNL", "BSNL"}

// probeFor builds a probe for an ISP via the session's vantage.
func (s *Suite) probeFor(name string) *probe.Probe {
	v, err := s.Session.Vantage(name)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return v.Probe()
}

// coverageFor runs (or returns the cached) Table 2 scan for one ISP.
func (s *Suite) coverageFor(name string) *probe.CoverageResult {
	if res, ok := s.coverage[name]; ok {
		return res
	}
	res := s.probeFor(name).MeasureCoverage(s.Opt.Scan)
	s.coverage[name] = res
	return res
}
