// Package repro reproduces "Where The Light Gets In: Analyzing Web
// Censorship Mechanisms in India" (Yadav et al., IMC 2018) as a Go
// library: a deterministic packet-level simulation of the nine studied
// ISPs and their censorship infrastructure, the paper's measurement
// toolkit, an OONI web_connectivity replica, and the anti-censorship
// techniques of §5.
//
// The root package holds only the benchmark harness (bench_test.go), one
// benchmark per table and figure in the paper's evaluation. The public
// API is the top-level censor package — a context-aware measurement
// session whose detectors live in an extensible registry (censor.Register
// / Lookup / Names; every analysis of the paper is a named measurement,
// from the five probe detectors to evasion, ooni and fingerprint), with
// concurrent deterministic campaigns streaming to pluggable sinks (JSONL,
// CSV, in-memory aggregation). The library underneath lives in internal/.
//
// Worlds come from the scenario layer: censor.Scenario is a public,
// JSON-serializable world spec (sizing plus per-ISP censorship behaviour)
// compiled down to the packet-level simulation, with a preset registry
// (censor.RegisterScenario / LookupScenario / Scenarios) in which the
// paper's calibration is just the "paper-2018" entry next to regimes the
// study never observed (dns-only, all-interceptive, a no-censorship
// control). Campaign workers pool world replicas — one build lazily per
// task-picking worker, engine-level reset between tasks, reset replicas
// parked on the session across campaigns — so parallel campaigns stay
// byte-identical to sequential ones while building at most min(workers,
// tasks) worlds, and usually none after the first run. The stable-order
// merger moves whole task batches, not results: one channel send per
// task, emitted slots nilled and recycled through a per-stream free
// list, and Stream.Drain delivering each batch to sinks that implement
// the optional BatchSink interface in a single WriteBatch call — so
// result storage stays O(workers) and allocations stay flat as workers
// grow, without loosening the byte-identity contract.
//
// Scenarios can seat synthetic user populations (internal/trafficgen):
// per-ISP PopulationSpecs — user counts, DNS/HTTP/HTTPS request mix,
// exponential think times, Zipf domain popularity over the shared site
// list — compile to generator hosts on the ISP's edges whose flows cross
// the same links and middlebox flow tables the campaigns measure. Flow
// tables are bounded (per-ISP FlowCapacity) with idle expiry plus LRU
// eviction, so population load makes stateful realism measurable: a
// dallying connection's state can be displaced and a blocklisted request
// then sails past the censor — an eviction-induced miss an idle world
// never shows, reproduced deterministically because background traffic
// draws from the same seeded engine as everything else.
// censor.ApplyLoad overlays a load directive ("users=10000,capacity=2048")
// onto any scenario, surfaced as -load on censorscan and censord; the
// "paper-2018-loaded" preset is the paper calibration under an 11k-user
// population.
//
// Underneath, the simulation engine (internal/sim) is built for the
// packet hot path: events live by value in a recycled arena behind a
// binary heap of slot indices, cancellation hands out generation-counted
// timers, and packet hops are scheduled closure-free through
// ScheduleCall, with transient wire bytes drawn from a per-network free
// list. Steady state, a forwarded packet allocates nothing — the
// property the netsim zero-alloc test and the CI benchmark gate pin
// down. See README.md's Performance section.
//
// The netbridge package opens the simulated internet to real code: it
// seats userspace endpoints on bridge hosts inside the vantage ISPs and
// exposes them as net.Conn / net.Listener / a DialContext for
// http.Transport, so unmodified Go networking code experiences the
// censors first-hand. A single pump goroutine owns the engine and
// advances virtual time while application goroutines block; every sim
// touch crosses a serialized boundary (the bridgeboundary analyzer
// keeps it that way). Flows can be captured to classic .pcap files with
// virtual timestamps — netbridge.PcapSink on a bridge dialer, or
// censor.WithPcap / censorscan -pcap for deterministic per-task campaign
// captures. The bridge edge itself is deliberately outside the
// determinism contract: wall-clock scheduling decides how real
// goroutines interleave with virtual time.
//
// The design contracts above are mechanically enforced by the
// repolint analyzer suite (internal/analysis, driven by cmd/repolint and
// run in CI before the tests):
//
//   - Determinism: the simulation packages read no wall clock, draw from
//     no global random source, and never let map iteration order reach
//     scheduling or output (simdeterminism).
//   - Zero-alloc hot path: functions marked //repolint:hotpath use
//     ScheduleCall instead of closures, pooled buffers instead of
//     make([]byte), and no fmt or string concatenation (hotpathalloc).
//   - Value-only timers: *sim.Timer never appears; the generation-counted
//     handle is copied, and Stop on a stale copy is safe (timerbyvalue).
//   - Serialized sinks: censor.Sink.Write and censor.BatchSink.WriteBatch
//     implementations spawn no goroutines and mutate no package-level
//     state — Stream.Drain is the serialization point (sinkcontract).
//   - Clean surface: no repro/internal type appears in the exported API
//     of censor, monitor or netbridge, except the waived oracle and
//     bridge hatches (apisurface).
//   - Bridge boundary: in netbridge, only functions marked
//     //repolint:pump — the ones the pump goroutine runs — may call into
//     the simulation packages (bridgeboundary).
//
// Deliberate exceptions carry //repolint:allow <key> -- <reason> waivers
// in the source they except; stale waivers are themselves findings.
//
// Everything above is observable through the obs package: zero-alloc
// counters, gauges and power-of-two histograms plus a span tracer, all
// nil-safe so an uninstrumented run pays a single pointer check. The
// engine owns a per-world registry counting only virtual events —
// reset with the world, merged into the campaign's per-process
// registry after every task — so metrics stay byte-identical across
// worker counts and replica pooling, a property the simdeterminism
// analyzer and the campaign determinism test both pin down. Campaign
// spans ride wall time; netbridge spans ride engine time, which lines
// trace exports up with pcap timestamps. Surfaces: censord serves
// Prometheus text at /metrics (and expvar at /debug/vars), censorscan
// -trace writes Chrome trace_event JSON for Perfetto with -metrics-dump
// printing the final registry, and censor.WithTelemetry /
// netbridge.WithTelemetry hand any registry to library callers. See
// README.md's Observability section.
//
// The monitor package is the service layer over all of that: a
// Scheduler for recurring campaigns, a bounded concurrency-safe result
// Store (per-key ring buffers spread over 64 hashed shards, write-time
// per-run tallies behind per-run locks, monotonic run epochs,
// blocklist-churn deltas between runs — so concurrent campaigns
// batch-ingest without serializing on one mutex, while the single-writer
// path stays zero-alloc), and the HTTP handler the cmd/censord daemon
// serves — healthz plus versioned /v1 endpoints for scenarios, runs,
// campaign triggers, filtered JSONL results and aggregate summaries.
// See README.md for a quickstart.
package repro
