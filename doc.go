// Package repro reproduces "Where The Light Gets In: Analyzing Web
// Censorship Mechanisms in India" (Yadav et al., IMC 2018) as a Go
// library: a deterministic packet-level simulation of the nine studied
// ISPs and their censorship infrastructure, the paper's measurement
// toolkit, an OONI web_connectivity replica, and the anti-censorship
// techniques of §5.
//
// The root package holds only the benchmark harness (bench_test.go), one
// benchmark per table and figure in the paper's evaluation. The public
// API is the top-level censor package — a context-aware measurement
// session with concurrent, deterministic campaigns — with the library
// underneath in internal/ (internal/core is a deprecated alias shim).
// See README.md for a quickstart.
package repro
