package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if got := reg.Counter("c_total"); got != c {
		t.Fatalf("registry did not return the same counter")
	}
	g := reg.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	reg.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("reset left values: c=%d g=%d", c.Value(), g.Value())
	}
	// Identity survives Reset: the pointer handed out before still works.
	c.Inc()
	if reg.Counter("c_total").Value() != 1 {
		t.Fatalf("instrument identity lost across Reset")
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x")
	var tr *Tracer
	// All of these must be no-ops, not panics.
	c.Inc()
	c.Add(2)
	c.Reset()
	g.Set(1)
	g.Add(1)
	g.Reset()
	h.Observe(1)
	h.Reset()
	tr.Finish(tr.Start("s", "c", 0))
	tr.Instant("i", "c", 0, "", 0)
	tr.SetClock(WallClock)
	tr.Reset()
	reg.Reset()
	reg.AddTo(NewRegistry())
	NewRegistry().AddTo(reg)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Fatalf("nil instruments recorded values")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h_ns")
	h.Observe(0)  // bucket 0
	h.Observe(1)  // bucket 1
	h.Observe(2)  // bucket 2: [2,4)
	h.Observe(3)  // bucket 2
	h.Observe(-5) // clamps to 0, bucket 0
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 6 {
		t.Fatalf("sum = %d, want 6", h.Sum())
	}
	for i, want := range map[int]uint64{0: 2, 1: 1, 2: 2, 3: 0} {
		if got := h.Bucket(i); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestName(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Fatalf("Name no-labels = %q", got)
	}
	if got := Name("x_total", "box", "b0"); got != `x_total{box="b0"}` {
		t.Fatalf("Name one label = %q", got)
	}
	if got := Name("x", "a", "1", "b", "2"); got != `x{a="1",b="2"}` {
		t.Fatalf("Name two labels = %q", got)
	}
}

func TestAddToMerges(t *testing.T) {
	src, dst := NewRegistry(), NewRegistry()
	src.Counter("c_total").Add(3)
	src.Counter("zero_total") // zero counters still materialize in dst
	src.Gauge("g").Set(2)
	src.Histogram("h").Observe(5)
	dst.Counter("c_total").Add(1)
	src.AddTo(dst)
	if got := dst.Counter("c_total").Value(); got != 4 {
		t.Fatalf("merged counter = %d, want 4", got)
	}
	if got := dst.Counter("zero_total").Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0 (but present)", got)
	}
	if got := dst.Gauge("g").Value(); got != 2 {
		t.Fatalf("merged gauge = %d, want 2", got)
	}
	if dst.Histogram("h").Count() != 1 || dst.Histogram("h").Sum() != 5 {
		t.Fatalf("merged histogram count/sum = %d/%d", dst.Histogram("h").Count(), dst.Histogram("h").Sum())
	}
	var sb strings.Builder
	if err := dst.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "zero_total 0\n") {
		t.Fatalf("zero counter missing from exposition:\n%s", sb.String())
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Name("evictions_total", "box", "b0")).Add(2)
	reg.Counter(Name("evictions_total", "box", "b1")).Add(3)
	reg.Gauge("depth").Set(9)
	reg.Histogram("lat_ns").Observe(3) // bucket 2, le=3
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE depth gauge\ndepth 9\n",
		"# TYPE evictions_total counter\n",
		`evictions_total{box="b0"} 2`,
		`evictions_total{box="b1"} 3`,
		"# TYPE lat_ns histogram\n",
		`lat_ns_bucket{le="0"} 0`,
		`lat_ns_bucket{le="3"} 1`,
		`lat_ns_bucket{le="+Inf"} 1`,
		"lat_ns_sum 3",
		"lat_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One # TYPE line per base name, even with two labeled series.
	if strings.Count(out, "# TYPE evictions_total") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
	// Deterministic output: same registry, same bytes.
	var sb2 strings.Builder
	reg.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Fatalf("exposition not reproducible")
	}
}

func TestTracerSpans(t *testing.T) {
	now := int64(1000)
	tr := NewTracer(func() int64 { return now })
	id := tr.Start("task", "worker", 1)
	now = 2500
	tr.Finish(id)
	tr.Instant("wake", "pump", 0, "wake_ns", 42)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Start != 1000 || spans[0].End != 2500 {
		t.Fatalf("span times = %d..%d", spans[0].Start, spans[0].End)
	}
	if spans[1].End != -1 || spans[1].Arg != "wake_ns" || spans[1].ArgV != 42 {
		t.Fatalf("instant = %+v", spans[1])
	}

	var jsonl strings.Builder
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `{"name":"task","cat":"worker","tid":1,"start":1000,"end":2500}`) {
		t.Fatalf("jsonl:\n%s", jsonl.String())
	}
	if !strings.Contains(jsonl.String(), `"end":null,"wake_ns":42`) {
		t.Fatalf("jsonl instant:\n%s", jsonl.String())
	}

	var chrome strings.Builder
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	out := chrome.String()
	for _, want := range []string{
		`"ph":"X"`, `"ts":1.000`, `"dur":1.500`, // 1000ns span -> 1.5us dur
		`"ph":"i"`, `"args":{"wake_ns":42}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q:\n%s", want, out)
		}
	}

	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("reset left %d spans", tr.Len())
	}
}

// TestTelemetryZeroAlloc pins the hot-path contract the repolint
// hotpathalloc markers promise: live instruments and a warmed tracer
// never allocate. It mirrors TestForwardSteadyStateZeroAlloc in netsim.
func TestTelemetryZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	g := reg.Gauge("g")
	h := reg.Histogram("h_ns")
	tr := NewTracer(func() int64 { return 0 })
	// Warm the tracer's span buffer: Reset keeps capacity.
	for i := 0; i < 8; i++ {
		tr.Finish(tr.Start("warm", "t", 0))
	}
	tr.Reset()

	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Add(-1)
		h.Observe(17)
		tr.Finish(tr.Start("s", "t", 0))
		tr.Instant("i", "t", 0, "v", 1)
		tr.Reset()
	}); n != 0 {
		t.Fatalf("telemetry hot path allocates: %v allocs/op", n)
	}

	// Stripped telemetry (nil instruments) must also be alloc-free.
	var nilReg *Registry
	nc := nilReg.Counter("c")
	ng := nilReg.Gauge("g")
	nh := nilReg.Histogram("h")
	var ntr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		nc.Inc()
		ng.Set(1)
		nh.Observe(1)
		ntr.Finish(ntr.Start("s", "t", 0))
	}); n != 0 {
		t.Fatalf("nil telemetry allocates: %v allocs/op", n)
	}
}
