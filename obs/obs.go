// Package obs is the repo's stdlib-only telemetry layer: zero-alloc
// counters, gauges and fixed-bucket histograms collected in registries,
// plus trace spans stamped by an injectable clock and exported as JSONL
// or Chrome trace_event JSON (loadable in Perfetto / chrome://tracing).
//
// Two registry scopes exist by convention. A per-world registry is owned
// by the simulation engine (sim.Engine.Obs) and counts only virtual
// events, so its contents are deterministic: reset with the world and
// byte-identical across campaign workers and pooled replicas. A
// per-process registry (censor.WithTelemetry, monitor.WithMetrics)
// aggregates world deltas and wall-clock operational signals — those
// values legitimately differ run to run.
//
// Every instrument and the tracer are nil-safe: methods on a nil
// receiver are no-ops, so instrumented hot paths cost a single predicted
// branch when telemetry is stripped (sim.Engine.StripTelemetry) and a
// single padded atomic op when enabled. The package is covered by the
// repolint simdeterminism analyzer: nothing here may read the wall clock
// except WallClock, the one explicitly-waived escape hatch that the
// analyzer in turn bans from deterministic packages.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// WallClock returns the current wall-clock time in nanoseconds since the
// Unix epoch. It is the clock source for process-side tracers and the
// ONLY sanctioned wall-clock read in this package. Deterministic
// packages must never call it — sim-side spans and metric stamps use
// engine virtual time (sim.Engine.Now), and the simdeterminism analyzer
// reports any obs.WallClock use inside them.
func WallClock() int64 {
	//repolint:allow determinism -- the single process-side clock source; sim packages are banned from calling WallClock by the simdeterminism obs check
	return time.Now().UnixNano()
}

// pad fills a Counter/Gauge out to its own cache line so adjacent
// instruments created together do not false-share under concurrent
// workers.
type pad [64 - 8]byte

// Counter is a monotonically increasing event count. The zero value is
// usable; a nil Counter is a no-op.
type Counter struct {
	v    atomic.Uint64
	_    pad
	name string
}

// Inc adds one.
//
//repolint:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//repolint:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset rewinds the counter to zero.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Name returns the full instrument name, including any {label="value"}
// suffix built by Name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an instantaneous level (heap depth, flow-table occupancy).
// The zero value is usable; a nil Gauge is a no-op.
type Gauge struct {
	v    atomic.Int64
	_    pad
	name string
}

// Set stores v.
//
//repolint:hotpath
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (which may be negative).
//
//repolint:hotpath
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Reset rewinds the gauge to zero.
func (g *Gauge) Reset() {
	if g != nil {
		g.v.Store(0)
	}
}

// Name returns the full instrument name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// histBuckets is the fixed bucket count: observation v lands in bucket
// bits.Len64(v), i.e. bucket 0 holds zero, bucket k holds [2^(k-1), 2^k).
// 64 buckets cover every uint64, so Observe never branches on range.
const histBuckets = 65

// Histogram is a fixed power-of-two-bucket distribution, sized for
// nanosecond latencies but usable for any non-negative magnitude.
// Bucket boundaries are powers of two: observation v lands in bucket
// bits.Len64(v). The zero value is usable; a nil Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	name    string
}

// Observe records one observation. Negative values clamp to zero.
//
//repolint:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the raw (non-cumulative) count of bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= histBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Reset rewinds every bucket, the count and the sum to zero.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Name returns the full instrument name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// addFrom merges src into h (used by Registry.AddTo).
func (h *Histogram) addFrom(src *Histogram) {
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
}

// Name builds a full instrument name from a base and alternating
// label-key/label-value pairs: Name("x_total", "box", "Airtel-box0")
// returns `x_total{box="Airtel-box0"}`. With no pairs it returns base
// unchanged. It allocates and belongs at instrument-creation time, never
// on a hot path.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	b := make([]byte, 0, len(base)+16*len(kv))
	b = append(b, base...)
	b = append(b, '{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, kv[i]...)
		b = append(b, '=', '"')
		b = append(b, kv[i+1]...)
		b = append(b, '"')
	}
	b = append(b, '}')
	return string(b)
}
