package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Span is one recorded trace event. Complete spans (End >= Start) export
// as Chrome "X" duration events; spans with End < 0 are instants ("i").
// Times are nanoseconds from the tracer's clock — engine virtual time
// for sim-side tracers, WallClock for process-side ones.
type Span struct {
	Name  string
	Cat   string
	TID   int
	Start int64
	End   int64
	Arg   string // optional argument key ("" = none)
	ArgV  int64  // argument value, exported under Arg
}

// Tracer records spans into an in-memory buffer. Start/Finish/Instant
// are safe for concurrent use and allocation-free once the buffer has
// grown to steady-state capacity (Reset keeps capacity, mirroring the
// engine arena). A nil Tracer is a no-op whose Start returns -1.
type Tracer struct {
	mu    sync.Mutex
	clock func() int64
	spans []Span
}

// NewTracer returns a tracer stamping spans with clock. A nil clock
// stamps zeros until SetClock is called — netbridge.WithTrace relies on
// this, injecting the engine's virtual clock before the pump starts.
func NewTracer(clock func() int64) *Tracer {
	return &Tracer{clock: clock}
}

// SetClock replaces the clock source. Call it before recording begins;
// swapping clocks mid-trace mixes timebases.
func (t *Tracer) SetClock(clock func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// now must be called with t.mu held.
func (t *Tracer) now() int64 {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// Start opens a span and returns its id for Finish. A nil tracer
// returns -1 (which Finish ignores).
//
//repolint:hotpath
func (t *Tracer) Start(name, cat string, tid int) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	id := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, Cat: cat, TID: tid, Start: t.now(), End: -1})
	t.mu.Unlock()
	return id
}

// Finish closes the span returned by Start. Out-of-range ids (including
// -1 from a nil Start) are ignored.
//
//repolint:hotpath
func (t *Tracer) Finish(id int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if id >= 0 && id < len(t.spans) {
		t.spans[id].End = t.now()
	}
	t.mu.Unlock()
}

// Instant records a zero-duration event with one optional numeric
// argument (pass arg "" to omit it).
//
//repolint:hotpath
func (t *Tracer) Instant(name, cat string, tid int, arg string, argv int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	now := t.now()
	t.spans = append(t.spans, Span{Name: name, Cat: cat, TID: tid, Start: now, End: -1, Arg: arg, ArgV: argv})
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Reset drops all recorded spans but keeps the buffer capacity, so a
// warmed tracer records without allocating.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.mu.Unlock()
}

// WriteJSONL writes one JSON object per span:
//
//	{"name":"lease","cat":"pump","tid":0,"start":1000,"end":2500}
//
// Instants carry "end":null plus the argument if present. Times are
// clock nanoseconds.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, s := range t.Spans() {
		fmt.Fprintf(bw, `{"name":%s,"cat":%s,"tid":%d,"start":%d`,
			strconv.Quote(s.Name), strconv.Quote(s.Cat), s.TID, s.Start)
		if s.End >= 0 {
			fmt.Fprintf(bw, `,"end":%d`, s.End)
		} else {
			bw.WriteString(`,"end":null`)
		}
		if s.Arg != "" {
			fmt.Fprintf(bw, `,%s:%d`, strconv.Quote(s.Arg), s.ArgV)
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// WriteChromeTrace writes the spans as a Chrome trace_event JSON array
// (the format Perfetto and chrome://tracing open directly). Complete
// spans become "X" duration events, instants become "i"; timestamps are
// converted from clock nanoseconds to the format's microseconds with
// three decimal places, so nanosecond precision survives.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	for i, s := range t.Spans() {
		if i > 0 {
			bw.WriteString(",\n ")
		}
		fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"%s","pid":0,"tid":%d,"ts":%s`,
			strconv.Quote(s.Name), strconv.Quote(s.Cat), phase(s), s.TID, micros(s.Start))
		if s.End >= s.Start {
			fmt.Fprintf(bw, `,"dur":%s`, micros(s.End-s.Start))
		}
		if s.Arg != "" {
			fmt.Fprintf(bw, `,"args":{%s:%d}`, strconv.Quote(s.Arg), s.ArgV)
		} else if s.End < s.Start {
			// Unfinished span exported as instant: mark it so.
			bw.WriteString(`,"args":{"unfinished":1}`)
		}
		bw.WriteString("}")
	}
	bw.WriteString("]\n")
	return bw.Flush()
}

func phase(s Span) string {
	if s.End >= s.Start {
		return "X"
	}
	return "i"
}

// micros renders ns as microseconds with fixed 3-decimal precision
// ("1234.567") without going through float64.
func micros(ns int64) string {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := strconv.FormatInt(ns/1000, 10) + "." + fmt.Sprintf("%03d", ns%1000)
	if neg {
		return "-" + s
	}
	return s
}
