package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is a get-or-create collection of instruments keyed by full
// name (base plus optional {label="value"} suffix, see Name). Lookup
// and creation take a mutex; the instruments themselves are lock-free
// atomics, so the pattern is: resolve instruments once at construction
// time, then Inc/Set/Observe freely from hot paths.
//
// A nil Registry hands out nil instruments, which are no-ops — this is
// how sim.Engine.StripTelemetry turns the whole layer off without a
// single call-site change.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Reset rewinds every registered instrument to zero. Instrument
// identity is preserved: pointers handed out before Reset keep working,
// which is what lets World.Reset restore a replica's registry to the
// just-constructed state without re-wiring a single call site.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// AddTo accumulates every instrument's current value into the
// same-named instrument of dst, creating instruments in dst as needed.
// Counter and histogram contents add; gauges add their levels (a world
// gauge is normally back at zero by merge time, so sums stay
// worker-count-invariant). AddTo with a nil receiver or nil dst is a
// no-op. It is safe to call concurrently against a shared dst.
func (r *Registry) AddTo(dst *Registry) {
	if r == nil || dst == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			dst.Counter(name).Add(v)
		} else {
			dst.Counter(name) // still materialize, so /metrics shows zeros
		}
	}
	for name, g := range r.gauges {
		dst.Gauge(name).Add(g.Value())
	}
	for name, h := range r.hists {
		dst.Histogram(name).addFrom(h)
	}
}

// WritePrometheus writes every instrument in Prometheus text exposition
// format (version 0.0.4), sorted by name so output is reproducible
// regardless of registration order. Histograms expose cumulative
// power-of-two `le` buckets plus `_sum` and `_count` series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type row struct {
		name string // full name incl. labels
		kind string // counter | gauge | histogram
	}
	r.mu.Lock()
	rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		rows = append(rows, row{name, "counter"})
	}
	for name := range r.gauges {
		rows = append(rows, row{name, "gauge"})
	}
	for name := range r.hists {
		rows = append(rows, row{name, "histogram"})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	var b strings.Builder
	lastBase := ""
	for _, rw := range rows {
		base := baseName(rw.name)
		if base != lastBase {
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, rw.kind)
			lastBase = base
		}
		switch rw.kind {
		case "counter":
			fmt.Fprintf(&b, "%s %d\n", rw.name, r.counters[rw.name].Value())
		case "gauge":
			fmt.Fprintf(&b, "%s %d\n", rw.name, r.gauges[rw.name].Value())
		case "histogram":
			writeHistProm(&b, rw.name, r.hists[rw.name])
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistProm emits one histogram: cumulative buckets up to the
// highest populated power-of-two bound, then +Inf, _sum and _count.
func writeHistProm(b *strings.Builder, name string, h *Histogram) {
	base, labels := splitName(name)
	top := 0
	for i := histBuckets - 1; i > 0; i-- {
		if h.buckets[i].Load() != 0 {
			top = i
			break
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.buckets[i].Load()
		// Bucket i holds values < 2^i, i.e. le = 2^i - 1.
		bound := uint64(math.MaxUint64)
		if i < 64 {
			bound = 1<<uint(i) - 1
		}
		fmt.Fprintf(b, "%s_bucket{%sle=\"%d\"} %d\n", base, labels, bound, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, h.Count())
	fmt.Fprintf(b, "%s_sum%s %d\n", base, bracket(labels), h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", base, bracket(labels), h.Count())
}

// baseName strips a {label} suffix: `x_total{box="b0"}` -> `x_total`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName separates a full name into base and a label prefix ready to
// splice before `le=`: `h{box="b0"}` -> ("h", `box="b0",`); a bare name
// returns ("h", "").
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], name[i+1:len(name)-1] + ","
}

// bracket re-wraps a splitName label prefix for series with no le label.
func bracket(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

// Snapshot returns a plain map view of the registry — counters and
// gauges as numbers, histograms as {count, sum} maps — suitable for
// expvar.Func publication or JSON dumps.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = map[string]uint64{"count": h.Count(), "sum": h.Sum()}
	}
	return out
}
