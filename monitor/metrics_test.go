package monitor

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/censor"
	"repro/obs"
)

// TestMetricsEndpoint wires one registry through the store and the
// handler and checks the /metrics, /debug/vars and extended /healthz
// faces over a pushed run.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	store := NewStore(WithTelemetry(reg))
	srv := httptest.NewServer(NewHandler(store, nil, WithMetrics(reg)))
	defer srv.Close()

	sink := store.Begin("small", "test")
	for i := 0; i < 3; i++ {
		if err := sink.Write(censor.Result{Vantage: "Airtel", Measurement: "dns", Domain: "x.example", Blocked: true}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	body := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, metrics := body("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE monitor_results_ingested_total counter",
		"monitor_results_ingested_total 3",
		"monitor_runs_total 1",
		"monitor_results_evicted_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	code, vars := body("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	if !strings.Contains(vars, `"censord"`) || !strings.Contains(vars, "monitor_results_ingested_total") {
		t.Errorf("/debug/vars missing registry snapshot:\n%s", vars)
	}

	code, health := body("/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	for _, want := range []string{`"status": "ok"`, `"go": "go`, `"uptime"`, `"uptime_ns"`} {
		if !strings.Contains(health, want) {
			t.Errorf("/healthz missing %q:\n%s", want, health)
		}
	}

	// Without WithMetrics the endpoints are absent, not empty.
	bare := httptest.NewServer(NewHandler(NewStore(), nil))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET bare /metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bare /metrics = %d, want 404", resp.StatusCode)
	}
}
