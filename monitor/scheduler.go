package monitor

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/censor"
)

// Job describes one recurring campaign: a scenario, the campaign to run
// on it, and the cadence. The zero cadence (Every == 0) registers an
// on-demand job: it never self-schedules, only RunOnce (or the
// POST /v1/campaigns endpoint) triggers it.
type Job struct {
	// Name identifies the job (RunOnce, the API); defaults to the
	// scenario's name.
	Name string
	// Scenario is the world the job measures. The scheduler builds one
	// session per job up front and reuses it across runs — the campaign
	// replica pool makes repeated runs cheap.
	Scenario censor.Scenario
	// Campaign is the fan-out each run executes. Nil fields keep the
	// censor.Campaign defaults (all PBW domains, all registered
	// detectors).
	Campaign censor.Campaign
	// DomainCap caps a nil-Domains campaign to the first N PBW domains
	// (0 = no cap). Resolved against the session's world at run time, so
	// callers need not build the world themselves just to slice its list.
	DomainCap int
	// Load optionally overlays a background-traffic directive (see
	// censor.ApplyLoad) on Scenario before the session builds, e.g.
	// "users=10000,capacity=2048" — the job then measures a world whose
	// censors are under population load.
	Load string
	// Every is the cadence; 0 means on-demand only.
	Every time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) to each scheduled
	// firing, de-synchronizing jobs that share a cadence.
	Jitter time.Duration
	// Workers is the campaign worker-pool size (0 = the session default).
	Workers int
	// Options are extra session options (WithVantages, WithTimeout,
	// WithAttempts). World-shaping options belong in Scenario.
	Options []censor.Option
}

// Scheduler runs Jobs against a Store: every firing executes the job's
// campaign on its pooled session and drains the stream into a fresh
// store run. Runs of the same job serialize; distinct jobs run
// concurrently. Shutdown is context-driven — cancel the context passed
// to Run and every in-flight campaign winds down through the stream's
// own cancellation path.
type Scheduler struct {
	store *Store
	jobs  map[string]*schedJob
	names []string
}

type schedJob struct {
	spec Job
	sess *censor.Session
	mu   sync.Mutex // serializes runs of this job
}

// NewScheduler validates every job and builds its session (so a bad
// scenario fails construction, not the first firing).
func NewScheduler(ctx context.Context, store *Store, jobs ...Job) (*Scheduler, error) {
	if store == nil {
		return nil, fmt.Errorf("monitor: scheduler needs a store")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("monitor: scheduler needs at least one job")
	}
	s := &Scheduler{store: store, jobs: map[string]*schedJob{}}
	for _, j := range jobs {
		if j.Name == "" {
			j.Name = j.Scenario.Name
		}
		if j.Name == "" {
			return nil, fmt.Errorf("monitor: job has neither a name nor a scenario name")
		}
		if _, dup := s.jobs[j.Name]; dup {
			return nil, fmt.Errorf("monitor: duplicate job %q", j.Name)
		}
		if j.Load != "" {
			loaded, err := censor.ApplyLoad(j.Scenario, j.Load)
			if err != nil {
				return nil, fmt.Errorf("monitor: job %q: %w", j.Name, err)
			}
			j.Scenario = loaded
		}
		opts := append([]censor.Option{censor.WithScenario(j.Scenario)}, j.Options...)
		sess, err := censor.NewSession(ctx, opts...)
		if err != nil {
			return nil, fmt.Errorf("monitor: job %q: %w", j.Name, err)
		}
		s.jobs[j.Name] = &schedJob{spec: j, sess: sess}
		s.names = append(s.names, j.Name)
	}
	return s, nil
}

// Jobs lists the registered job names in registration order.
func (s *Scheduler) Jobs() []string {
	return append([]string(nil), s.names...)
}

// Session exposes a job's pooled session (examples, direct Measure
// calls beside the schedule).
func (s *Scheduler) Session(name string) (*censor.Session, bool) {
	j, ok := s.jobs[name]
	if !ok {
		return nil, false
	}
	return j.sess, true
}

// RunOnce fires one job now: it opens a store run, executes the
// campaign, and drains it into the store, returning the finished run's
// info. Concurrent RunOnce calls for the same job serialize; the ctx
// cancels the campaign mid-flight (the partial run is finalized with its
// error recorded). The run's source is "scheduler" for scheduled
// firings and "api" when triggered through the HTTP handler.
func (s *Scheduler) RunOnce(ctx context.Context, name string) (RunInfo, error) {
	return s.runOnce(ctx, name, "api")
}

func (s *Scheduler) runOnce(ctx context.Context, name, source string) (RunInfo, error) {
	j, ok := s.jobs[name]
	if !ok {
		return RunInfo{}, fmt.Errorf("monitor: unknown job %q (registered: %v)", name, s.names)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := ctx.Err(); err != nil {
		// Cancelled while waiting behind the previous run (or at
		// shutdown): don't open an empty store run for it.
		return RunInfo{}, err
	}

	var opts []censor.Option
	if j.spec.Workers > 0 {
		opts = append(opts, censor.WithWorkers(j.spec.Workers))
	}
	campaign := j.spec.Campaign
	if campaign.Domains == nil && j.spec.DomainCap > 0 {
		if pbw := j.sess.PBWDomains(); j.spec.DomainCap < len(pbw) {
			campaign.Domains = pbw[:j.spec.DomainCap]
		}
	}
	stream, err := j.sess.Run(ctx, campaign, opts...)
	if err != nil {
		return RunInfo{}, err
	}
	sink := s.store.Begin(j.spec.Scenario.Name, source)
	if err := stream.Drain(sink); err != nil {
		// Drain flushed the sink; annotate the truncated run and report.
		sink.FinishErr(err)
		info, _ := s.store.Run(sink.Run())
		return info, err
	}
	info, _ := s.store.Run(sink.Run())
	return info, nil
}

// Run executes the schedule until ctx is cancelled, then returns
// ctx.Err(). Each periodic job (Every > 0) first fires one cadence
// (plus jitter) after start — callers that want data immediately issue
// a synchronous RunOnce first, as cmd/censord does, rather than paying
// for the same campaign twice at startup. A firing that would overlap
// the previous run of the same job waits behind it (runs of one job
// serialize, they do not pile up). On-demand jobs (Every == 0) are
// untouched.
func (s *Scheduler) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for _, name := range s.names {
		j := s.jobs[name]
		if j.spec.Every <= 0 {
			continue
		}
		wg.Add(1)
		go func(name string, j *schedJob) {
			defer wg.Done()
			for {
				delay := j.spec.Every
				if j.spec.Jitter > 0 {
					delay += time.Duration(rand.Int63n(int64(j.spec.Jitter)))
				}
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return
				}
				// Errors here are cancellations or sink failures; the run
				// records them (RunInfo.Err) and the loop keeps going — a
				// monitoring service outlives one bad campaign.
				s.runOnce(ctx, name, "scheduler") //nolint:errcheck
			}
		}(name, j)
	}
	<-ctx.Done()
	wg.Wait()
	return ctx.Err()
}
