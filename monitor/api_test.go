package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/censor"
)

// newTestService wires store + scheduler + handler around the shared
// small session's scenario with a tiny, fast campaign.
func newTestService(t *testing.T) (*Store, *Scheduler, *httptest.Server) {
	t.Helper()
	smallSession(t) // fail fast if the world cannot build
	store := NewStore()
	sched, err := NewScheduler(context.Background(), store, Job{
		Scenario:  censor.MustLookupScenario("small"),
		Campaign:  censor.Campaign{Measurements: []censor.Measurement{censor.DNS(), censor.HTTP()}},
		DomainCap: 4,
		Workers:   4,
		Options:   []censor.Option{censor.WithVantages("Airtel", "Idea")},
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	srv := httptest.NewServer(NewHandler(store, sched))
	t.Cleanup(srv.Close)
	return store, sched, srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestAPIEndpoints(t *testing.T) {
	store, _, srv := newTestService(t)

	// healthz is alive before any run exists.
	var health struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, health)
	}

	// Summary before any run: a clean 404, not a crash.
	if code := getJSON(t, srv.URL+"/v1/summary", nil); code != http.StatusNotFound {
		t.Fatalf("summary with no runs = %d, want 404", code)
	}

	// Scenario registry includes the presets and marks the job.
	var scenarios []struct {
		Name string `json:"name"`
		Job  bool   `json:"job"`
	}
	if code := getJSON(t, srv.URL+"/v1/scenarios", &scenarios); code != 200 {
		t.Fatalf("scenarios = %d", code)
	}
	found := false
	for _, sc := range scenarios {
		if sc.Name == "small" {
			found = true
			if !sc.Job {
				t.Error("small is this censord's job but not marked as one")
			}
		}
	}
	if !found {
		t.Fatalf("scenario registry missing small: %+v", scenarios)
	}

	// Trigger a campaign (empty body: the single job is the default).
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", nil)
	if err != nil {
		t.Fatalf("POST campaigns: %v", err)
	}
	var info RunInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("campaign response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !info.Done || info.Results != 16 {
		t.Fatalf("campaign trigger = %d %+v, want 201 with 16 results (2x2x4)", resp.StatusCode, info)
	}

	// Unknown job: 400 with the registered names.
	resp, err = http.Post(srv.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"job":"nope"}`))
	if err != nil {
		t.Fatalf("POST campaigns: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(body, []byte("small")) {
		t.Errorf("unknown job = %d %s, want 400 listing jobs", resp.StatusCode, body)
	}

	// Runs list the trigger.
	var runs []RunInfo
	if code := getJSON(t, srv.URL+"/v1/runs", &runs); code != 200 || len(runs) != 1 {
		t.Fatalf("runs = %d %+v", code, runs)
	}

	// Filtered results stream as JSONL in ingestion order.
	resp, err = http.Get(srv.URL + "/v1/results?vantage=Airtel&measurement=dns")
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results content-type = %q", ct)
	}
	var lines []StoredResult
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var r StoredResult
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("results line: %v", err)
		}
		lines = append(lines, r)
	}
	resp.Body.Close()
	if len(lines) != 4 {
		t.Fatalf("filtered results = %d lines, want 4", len(lines))
	}
	for _, r := range lines {
		if r.Vantage != "Airtel" || r.Measurement != "dns" || r.Run != info.Run {
			t.Errorf("filter leak: %+v", r)
		}
	}

	// Bad filter values fail clean.
	if code := getJSON(t, srv.URL+"/v1/results?run=abc", nil); code != http.StatusBadRequest {
		t.Errorf("bad run filter = %d, want 400", code)
	}

	// Summary: JSON form carries per-vantage tallies in campaign order...
	var sum RunSummary
	if code := getJSON(t, srv.URL+"/v1/summary", &sum); code != 200 {
		t.Fatalf("summary = %d", code)
	}
	if len(sum.Vantages) != 2 || sum.Vantages[0].Vantage != "Airtel" || sum.Vantages[1].Vantage != "Idea" {
		t.Fatalf("summary vantages = %+v", sum.Vantages)
	}
	if got := sum.Vantages[0].Tally.Total; got != 8 {
		t.Errorf("Airtel tally total = %d, want 8", got)
	}
	// ...and the text form is byte-for-byte the store's AggregateSink
	// rendering.
	resp, err = http.Get(srv.URL + "/v1/summary?format=text")
	if err != nil {
		t.Fatalf("GET summary text: %v", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want, _ := store.SummaryText(info.Run)
	if string(text) != want {
		t.Errorf("summary text diverged from store rendering:\n%s\nvs\n%s", text, want)
	}

	// Push a JSONL batch (the censorscan -push shape) and diff the runs.
	batch := []censor.Result{
		res("Airtel", "dns", "pushed-a.com", true),
		res("Airtel", "dns", "pushed-b.com", false),
	}
	var buf bytes.Buffer
	if err := censor.WriteJSONL(&buf, batch); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/v1/results?scenario=batch&source=censorscan",
		"application/x-ndjson", &buf)
	if err != nil {
		t.Fatalf("POST results: %v", err)
	}
	var pushed RunInfo
	if err := json.NewDecoder(resp.Body).Decode(&pushed); err != nil {
		t.Fatalf("push response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || pushed.Results != 2 ||
		pushed.Scenario != "batch" || pushed.Source != "censorscan" || !pushed.Done {
		t.Fatalf("push = %d %+v", resp.StatusCode, pushed)
	}

	// Delta between the campaign run and the pushed run reports churn.
	var delta Delta
	if code := getJSON(t, fmt.Sprintf("%s/v1/delta?from=%d&to=%d", srv.URL, info.Run, pushed.Run), &delta); code != 200 {
		t.Fatalf("delta = %d", code)
	}
	for _, vd := range delta.Vantages {
		if vd.Vantage == "Airtel" && !slices.Contains(vd.Added, "pushed-a.com") {
			t.Errorf("delta missing pushed-a.com: %+v", vd)
		}
	}
	if code := getJSON(t, srv.URL+"/v1/delta", nil); code != http.StatusBadRequest {
		t.Errorf("delta without from = %d, want 400", code)
	}
}

func TestAPIStoreOnly(t *testing.T) {
	// A censord without a scheduler still archives pushes and serves
	// queries; triggering campaigns is a clean 503.
	store := NewStore()
	srv := httptest.NewServer(NewHandler(store, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("campaign trigger without scheduler = %d, want 503", resp.StatusCode)
	}
}

// TestAPIQueriesDuringIngest is the acceptance scenario: /v1/results and
// /v1/summary keep answering — under -race — while a campaign is
// actively ingesting into the store.
func TestAPIQueriesDuringIngest(t *testing.T) {
	store, sched, srv := newTestService(t)

	// One finished run up front, so /v1/summary always has an answer.
	first, err := sched.RunOnce(context.Background(), "small")
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}

	// Scheduled ingest in the background.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ingestDone := make(chan error, 1)
	go func() {
		var firstErr error
		for i := 0; i < 3; i++ {
			if _, err := sched.RunOnce(ctx, "small"); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		ingestDone <- firstErr
	}()

	// Concurrent query hammer.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{
					"/v1/results?vantage=Airtel&latest=5",
					fmt.Sprintf("/v1/summary?run=%d", first.Run),
					"/v1/summary?format=text",
					"/v1/runs",
					"/healthz",
				} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Errorf("GET %s during ingest: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("GET %s during ingest = %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}

	select {
	case err := <-ingestDone:
		if err != nil {
			t.Errorf("background ingest: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Error("background ingest did not finish")
	}
	close(stop)
	wg.Wait()

	if runs := store.Runs(); len(runs) != 4 {
		t.Errorf("store has %d runs after the stress, want 4", len(runs))
	}
}
