package monitor

import (
	"fmt"
	"testing"

	"repro/censor"
)

// BenchmarkStoreIngest prices one result ingestion: ring append plus the
// write-time roll-ups (run counters, blocked sets, tally fold). Memory
// is bounded by construction — the rings evict, the roll-ups count — so
// steady-state allocations should stay near zero however long the
// observatory runs; BENCH_monitor.json records the baseline.
func BenchmarkStoreIngest(b *testing.B) {
	vantages := []string{"Airtel", "Idea", "Vodafone", "MTNL"}
	measurements := []string{"dns", "http"}
	const domains = 256
	results := make([]censor.Result, 0, len(vantages)*len(measurements)*domains)
	for _, v := range vantages {
		for _, m := range measurements {
			for d := 0; d < domains; d++ {
				r := censor.Result{
					Vantage: v, Measurement: m,
					Domain:  fmt.Sprintf("site-%04d.example", d),
					Blocked: d%3 == 0,
				}
				if r.Blocked {
					r.Mechanism = censor.MechanismNotification
					r.Censor = v
				}
				results = append(results, r)
			}
		}
	}

	store := NewStore(WithRingSize(512))
	sink := store.Begin("bench", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sink.Write(results[i%len(results)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "results/s")
	if st := store.Stats(); st.Results > len(vantages)*len(measurements)*512 {
		b.Fatalf("ring bound violated: %d raw results retained", st.Results)
	}
}
