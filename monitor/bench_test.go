package monitor

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/censor"
)

// BenchmarkStoreIngest prices one result ingestion: ring append plus the
// write-time roll-ups (run counters, blocked sets, tally fold). Memory
// is bounded by construction — the rings evict, the roll-ups count — so
// steady-state allocations should stay near zero however long the
// observatory runs; BENCH_monitor.json records the baseline.
func BenchmarkStoreIngest(b *testing.B) {
	vantages := []string{"Airtel", "Idea", "Vodafone", "MTNL"}
	measurements := []string{"dns", "http"}
	const domains = 256
	results := make([]censor.Result, 0, len(vantages)*len(measurements)*domains)
	for _, v := range vantages {
		for _, m := range measurements {
			for d := 0; d < domains; d++ {
				r := censor.Result{
					Vantage: v, Measurement: m,
					Domain:  fmt.Sprintf("site-%04d.example", d),
					Blocked: d%3 == 0,
				}
				if r.Blocked {
					r.Mechanism = censor.MechanismNotification
					r.Censor = v
				}
				results = append(results, r)
			}
		}
	}

	store := NewStore(WithRingSize(512))
	sink := store.Begin("bench", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sink.Write(results[i%len(results)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "results/s")
	if st := store.Stats(); st.Results > len(vantages)*len(measurements)*512 {
		b.Fatalf("ring bound violated: %d raw results retained", st.Results)
	}
}

// benchResults builds one vantage's worth of ingestible results.
func benchResults(vantage string, n int) []censor.Result {
	out := make([]censor.Result, 0, n)
	for d := 0; d < n; d++ {
		r := censor.Result{
			Vantage: vantage, Measurement: "dns",
			Domain:  fmt.Sprintf("site-%04d.example", d),
			Blocked: d%3 == 0,
		}
		if r.Blocked {
			r.Mechanism = censor.MechanismNotification
			r.Censor = vantage
		}
		out = append(out, r)
	}
	return out
}

// BenchmarkStoreIngestParallel prices concurrent ingestion — the shape
// censord takes when several campaigns drain at once. Each goroutine
// ingests its own run under its own vantage, so with the sharded store
// writers contend only on the global sequence counter; run with
// -cpu=1,2,4 to read the scaling. Compare against BenchmarkStoreIngest
// for the single-writer baseline.
func BenchmarkStoreIngestParallel(b *testing.B) {
	store := NewStore(WithRingSize(512))
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := worker.Add(1)
		results := benchResults(fmt.Sprintf("vantage-%d", id), 256)
		sink := store.Begin(fmt.Sprintf("bench-%d", id), "bench")
		i := 0
		for pb.Next() {
			if err := sink.Write(results[i%len(results)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "results/s")
}

// BenchmarkStoreIngestBatch prices the batched path a BatchSink drain
// takes: whole task slices per WriteBatch call, one run-lock round-trip
// and (per key group) one shard lock each.
func BenchmarkStoreIngestBatch(b *testing.B) {
	store := NewStore(WithRingSize(512))
	sink := store.Begin("bench", "bench")
	batch := benchResults("Airtel", 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sink.WriteBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "results/s")
}
