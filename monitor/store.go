// Package monitor is the continuous-measurement observatory layer: the
// long-running service half of the reproduction, on top of the censor
// package's one-shot campaigns.
//
// The paper's study was a sequence of manual measurement campaigns; the
// questions it could not ask — how blocklists churn week over week, when
// a middlebox deployment changes behaviour — need a service that keeps
// measuring and keeps the answers queryable. This package provides that
// service in three pieces:
//
//   - [Store], a concurrency-safe in-memory result store implementing
//     [censor.Sink] and [censor.BatchSink]. Raw results live in bounded
//     per-(scenario, vantage, measurement) ring buffers; every ingested
//     result is also folded into per-run [censor.Tally] roll-ups at
//     write time, so summary queries never scan raw results. Runs carry
//     monotonic epochs.
//   - [Scheduler], which executes recurring campaigns (per-job cadence
//     and jitter, context-aware shutdown) against pooled sessions and
//     ingests each run into the store.
//   - [NewHandler], the HTTP face: /healthz plus the versioned /v1/*
//     query and trigger endpoints cmd/censord serves.
//
// Store queries run concurrently with ingestion, and ingestion scales
// past one writer: instead of a store-wide mutex, raw-result rings are
// spread over a fixed array of key shards (hashed by scenario, vantage
// and measurement), per-run roll-ups take a per-run lock, and the
// lifetime counters are atomics. Two campaigns ingesting different
// vantages never contend; a batched drain locks its single shard once
// per task. Every query returns copies — a deliberate contrast with
// JSONLSink/CSVSink, which are only safe single-writer through
// Stream.Drain.
package monitor

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/censor"
	"repro/obs"
)

// key addresses one ring buffer: raw results are retained per
// (scenario, vantage, measurement) so one chatty detector cannot evict
// another's history.
type key struct {
	Scenario, Vantage, Measurement string
}

// storeShards is the fixed shard count for the raw-result rings. A
// power of two so shardFor reduces with a mask; 64 comfortably exceeds
// any plausible writer parallelism while costing ~4KB of empty store.
const storeShards = 64

// shardFor hashes a ring key onto its shard: FNV-1a over the three
// strings with a separator byte between them, masked to the shard
// count. Zero-alloc — the ingest hot path runs through here.
func shardFor(k key) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(k.Scenario); i++ {
		h = (h ^ uint32(k.Scenario[i])) * prime32
	}
	h = (h ^ 0xff) * prime32
	for i := 0; i < len(k.Vantage); i++ {
		h = (h ^ uint32(k.Vantage[i])) * prime32
	}
	h = (h ^ 0xff) * prime32
	for i := 0; i < len(k.Measurement); i++ {
		h = (h ^ uint32(k.Measurement[i])) * prime32
	}
	return h & (storeShards - 1)
}

// storeShard is one slice of the raw-result rings: its own lock, its
// own key set (first-seen order within the shard). Padded so adjacent
// shard locks do not share a cache line under write contention.
type storeShard struct {
	mu    sync.RWMutex
	rings map[key]*ring
	keys  []key
	_     [64]byte
}

// StoredResult is one retained measurement record: the uniform
// censor.Result plus the observatory coordinates — which run (epoch)
// produced it, under which scenario, its global ingestion sequence
// number, and the wall-clock ingestion time.
type StoredResult struct {
	censor.Result
	Run      int       `json:"run"`
	Scenario string    `json:"scenario"`
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
}

// RunInfo describes one ingestion run: a scheduler campaign, an
// on-demand API trigger, or a batch push from censorscan.
type RunInfo struct {
	// Run is the monotonic epoch, unique across all scenarios.
	Run int `json:"run"`
	// Scenario names the world the results were measured on.
	Scenario string `json:"scenario"`
	// Source records who ingested the run ("scheduler", "api", "push",
	// "direct").
	Source string `json:"source,omitempty"`
	// Started/Finished bracket the ingestion wall-clock time; Finished is
	// zero until the run's sink is flushed.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Done reports whether the run's sink has been flushed.
	Done bool `json:"done"`
	// Results/Blocked/Errors count every ingested record of the run —
	// ring eviction never decrements them.
	Results int `json:"results"`
	Blocked int `json:"blocked"`
	Errors  int `json:"errors"`
	// Err records a campaign that ended early (cancellation, sink
	// failure); empty for a complete run.
	Err string `json:"err,omitempty"`
}

// runState is one run's retained roll-up: its info row, the aggregate
// (fed the same fold as a drained AggregateSink, so summaries match
// byte-for-byte), and the per-vantage blocked-domain sets behind
// DeltaSince. Each run carries its own lock, so concurrent runs roll up
// without contending; the aggregate locks itself.
type runState struct {
	mu      sync.Mutex // guards info and blocked
	info    RunInfo
	agg     *censor.AggregateSink
	blocked map[string]map[string]bool // vantage -> blocked domains
}

// infoCopy snapshots the run's info row under its lock.
func (st *runState) infoCopy() RunInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.info
}

// ring is a fixed-capacity result buffer: append overwrites the oldest
// entry once full.
type ring struct {
	buf     []StoredResult
	head, n int
}

func (rg *ring) append(r StoredResult) (evicted bool) {
	if rg.n < len(rg.buf) {
		rg.buf[(rg.head+rg.n)%len(rg.buf)] = r
		rg.n++
		return false
	}
	rg.buf[rg.head] = r
	rg.head = (rg.head + 1) % len(rg.buf)
	return true
}

// each visits the ring's entries oldest-first.
func (rg *ring) each(fn func(StoredResult)) {
	for i := 0; i < rg.n; i++ {
		fn(rg.buf[(rg.head+i)%len(rg.buf)])
	}
}

// Store is the observatory's in-memory result store. It implements
// censor.Sink and censor.BatchSink (writes land in an implicit "direct"
// run) and hands out per-run sinks via Begin for callers that manage
// run boundaries — the Scheduler, the campaign-trigger endpoint, and
// the batch-push endpoint.
//
// Unlike the stream sinks, Store is explicitly safe for concurrent use:
// any number of goroutines may Write while any number query — Results,
// Summary, Runs, DeltaSince all return copies. Locking is sharded so
// writers scale with cores instead of serializing on one mutex: each
// write takes its run's lock for the roll-ups and its key shard's lock
// for the ring append; writers to different runs and different
// (scenario, vantage, measurement) keys proceed in parallel. Memory is
// bounded on both axes: raw results by per-key ring buffers
// (WithRingSize), roll-ups by run retention (WithRunRetention).
type Store struct {
	ringSize int
	runCap   int
	clock    func() time.Time

	shards [storeShards]storeShard

	runsMu  sync.RWMutex // guards the runs slice and nextRun
	runs    []*runState  // retained runs, ascending epoch
	nextRun int

	nextSeq  atomic.Uint64 // global ingestion order
	ingested atomic.Uint64 // results ever written
	evicted  atomic.Uint64 // results displaced from rings

	// obs mirrors of the counters above, plus run opens; nil (no-op)
	// instruments unless WithTelemetry was given.
	reg       *obs.Registry
	cRuns     *obs.Counter
	cIngested *obs.Counter
	cEvicted  *obs.Counter

	directMu sync.Mutex
	direct   *RunSink // implicit run behind the Sink interface
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithRingSize bounds each (scenario, vantage, measurement) ring buffer
// to n raw results (default 512). Aggregates are unaffected by eviction.
func WithRingSize(n int) StoreOption {
	return func(s *Store) {
		if n > 0 {
			s.ringSize = n
		}
	}
}

// WithRunRetention bounds how many runs keep their roll-ups (info,
// tallies, delta sets); the oldest *finished* run is dropped past n
// (default 64) — in-flight runs are never evicted.
func WithRunRetention(n int) StoreOption {
	return func(s *Store) {
		if n > 0 {
			s.runCap = n
		}
	}
}

// withClock injects the ingestion clock (tests).
func withClock(fn func() time.Time) StoreOption {
	return func(s *Store) { s.clock = fn }
}

// WithTelemetry mirrors the store's counters — runs opened, results
// ingested, ring evictions — into reg under the monitor_* prefix, for
// the /metrics endpoint. A nil registry leaves them as no-ops.
func WithTelemetry(reg *obs.Registry) StoreOption {
	return func(s *Store) { s.reg = reg }
}

// NewStore builds an empty store.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		ringSize: 512,
		runCap:   64,
		clock:    time.Now,
		nextRun:  1,
	}
	for _, o := range opts {
		o(s)
	}
	for i := range s.shards {
		s.shards[i].rings = map[key]*ring{}
	}
	s.cRuns = s.reg.Counter("monitor_runs_total")
	s.cIngested = s.reg.Counter("monitor_results_ingested_total")
	s.cEvicted = s.reg.Counter("monitor_results_evicted_total")
	return s
}

// RunSink ingests one run's results into the store. It implements
// censor.Sink and censor.BatchSink: hand it to Stream.Drain (which
// delivers whole task batches — one run-lock and usually one shard-lock
// round-trip per task), or Write from application code — writes are
// individually locked, so concurrent writers are safe (their
// interleaving decides sequence numbers). Flush finalizes the run;
// writes after Flush fail.
type RunSink struct {
	s   *Store
	st  *runState
	run int
}

// Begin opens a new run under the given scenario name and returns its
// sink. Epochs are monotonic across all scenarios and sources.
func (s *Store) Begin(scenario, source string) *RunSink {
	s.runsMu.Lock()
	defer s.runsMu.Unlock()
	st := &runState{
		info: RunInfo{
			Run:      s.nextRun,
			Scenario: scenario,
			Source:   source,
			Started:  s.clock(),
		},
		agg:     censor.NewAggregateSink(),
		blocked: map[string]map[string]bool{},
	}
	s.nextRun++
	s.cRuns.Inc()
	s.runs = append(s.runs, st)
	if len(s.runs) > s.runCap {
		// Evict the oldest finished run. An in-flight run is never
		// dropped — its sink would start failing mid-campaign — so the
		// cap can be transiently exceeded while many runs ingest at once.
		for i, old := range s.runs {
			if old.infoCopy().Done {
				s.runs = append(s.runs[:i], s.runs[i+1:]...)
				break
			}
		}
	}
	return &RunSink{s: s, st: st, run: st.info.Run}
}

// Run returns the sink's run epoch.
func (rs *RunSink) Run() int { return rs.run }

// Write ingests one result into the sink's run.
func (rs *RunSink) Write(r censor.Result) error {
	st := rs.st
	st.mu.Lock()
	if st.info.Done {
		st.mu.Unlock()
		return fmt.Errorf("monitor: run %d already finished", rs.run)
	}
	rollupLocked(st, &r)
	st.mu.Unlock()
	st.agg.Write(r) // same fold as a drained AggregateSink
	rs.s.appendRaw(st.info.Scenario, rs.run, r)
	return nil
}

// WriteBatch ingests one task's results: the run roll-ups fold under a
// single run-lock round-trip, the aggregate under one of its own, and
// the ring appends group consecutive same-key results so a campaign
// task (one vantage, one measurement) costs one shard lock, not one
// per result.
func (rs *RunSink) WriteBatch(batch []censor.Result) error {
	if len(batch) == 0 {
		return nil
	}
	st := rs.st
	st.mu.Lock()
	if st.info.Done {
		st.mu.Unlock()
		return fmt.Errorf("monitor: run %d already finished", rs.run)
	}
	for i := range batch {
		rollupLocked(st, &batch[i])
	}
	st.mu.Unlock()
	st.agg.WriteBatch(batch)
	for start := 0; start < len(batch); {
		end := start + 1
		for end < len(batch) &&
			batch[end].Vantage == batch[start].Vantage &&
			batch[end].Measurement == batch[start].Measurement {
			end++
		}
		rs.s.appendRawGroup(st.info.Scenario, rs.run, batch[start:end])
		start = end
	}
	return nil
}

// rollupLocked folds one result into the run's write-time roll-ups.
// Caller holds st.mu.
func rollupLocked(st *runState, r *censor.Result) {
	st.info.Results++
	if r.Blocked {
		st.info.Blocked++
		set := st.blocked[r.Vantage]
		if set == nil {
			set = map[string]bool{}
			st.blocked[r.Vantage] = set
		}
		set[r.Domain] = true
	}
	if r.Error != "" {
		st.info.Errors++
	}
}

// appendRaw lands one result in its key's ring.
func (s *Store) appendRaw(scenario string, run int, r censor.Result) {
	k := key{Scenario: scenario, Vantage: r.Vantage, Measurement: r.Measurement}
	sh := &s.shards[shardFor(k)]
	sh.mu.Lock()
	evicted := s.ringAppendLocked(sh, k, run, r)
	sh.mu.Unlock()
	if evicted {
		s.countAppend(1, 1)
	} else {
		s.countAppend(1, 0)
	}
}

// appendRawGroup lands a same-key group of results under one shard
// lock.
func (s *Store) appendRawGroup(scenario string, run int, rs []censor.Result) {
	k := key{Scenario: scenario, Vantage: rs[0].Vantage, Measurement: rs[0].Measurement}
	sh := &s.shards[shardFor(k)]
	evicted := 0
	sh.mu.Lock()
	for i := range rs {
		if s.ringAppendLocked(sh, k, run, rs[i]) {
			evicted++
		}
	}
	sh.mu.Unlock()
	s.countAppend(len(rs), evicted)
}

// ringAppendLocked appends one result to its ring (creating it on first
// use), stamping the global sequence number and ingestion time. Caller
// holds the shard lock.
func (s *Store) ringAppendLocked(sh *storeShard, k key, run int, r censor.Result) (evicted bool) {
	rg, ok := sh.rings[k]
	if !ok {
		rg = &ring{buf: make([]StoredResult, s.ringSize)}
		sh.rings[k] = rg
		sh.keys = append(sh.keys, k)
	}
	return rg.append(StoredResult{
		Result:   r,
		Run:      run,
		Scenario: k.Scenario,
		Seq:      s.nextSeq.Add(1),
		Time:     s.clock(),
	})
}

// countAppend advances the lifetime counters after ring appends.
func (s *Store) countAppend(n, evicted int) {
	s.ingested.Add(uint64(n))
	s.cIngested.Add(uint64(n))
	if evicted > 0 {
		s.evicted.Add(uint64(evicted))
		s.cEvicted.Add(uint64(evicted))
	}
}

// Flush finalizes the run: stamps Finished, marks it Done.
func (rs *RunSink) Flush() error {
	rs.st.mu.Lock()
	defer rs.st.mu.Unlock()
	if !rs.st.info.Done {
		rs.st.info.Done = true
		rs.st.info.Finished = rs.s.clock()
	}
	return nil
}

// FinishErr records a campaign error on the run (the stream ended early)
// and finalizes it. Use after Stream.Drain returns non-nil; Drain has
// already flushed the sink by then, so this only annotates the run.
func (rs *RunSink) FinishErr(err error) {
	rs.st.mu.Lock()
	defer rs.st.mu.Unlock()
	if err != nil {
		rs.st.info.Err = err.Error()
	}
	if !rs.st.info.Done {
		rs.st.info.Done = true
		rs.st.info.Finished = rs.s.clock()
	}
}

// findRun resolves a retained run by epoch. Retained runs are few
// (runCap) and ascending; scan from the tail, where the open runs live.
func (s *Store) findRun(run int) *runState {
	s.runsMu.RLock()
	defer s.runsMu.RUnlock()
	for i := len(s.runs) - 1; i >= 0; i-- {
		if s.runs[i].info.Run == run {
			return s.runs[i]
		}
	}
	return nil
}

// ------------------------------------------------------- censor.Sink face

// Write implements censor.Sink on the store itself: results land in an
// implicit run (scenario "", source "direct") opened on first write.
// Callers that know their run boundaries should prefer Begin.
func (s *Store) Write(r censor.Result) error {
	return s.directSink().Write(r)
}

// WriteBatch implements censor.BatchSink on the store itself, batching
// into the same implicit run as Write.
func (s *Store) WriteBatch(rs []censor.Result) error {
	return s.directSink().WriteBatch(rs)
}

func (s *Store) directSink() *RunSink {
	s.directMu.Lock()
	defer s.directMu.Unlock()
	if s.direct == nil {
		s.direct = s.Begin("", "direct")
	}
	return s.direct
}

// Flush finalizes the implicit run opened by Write; the next Write opens
// a fresh one.
func (s *Store) Flush() error {
	s.directMu.Lock()
	rs := s.direct
	s.direct = nil
	s.directMu.Unlock()
	if rs == nil {
		return nil
	}
	return rs.Flush()
}

// --------------------------------------------------------------- queries

// Stats is the store's health roll-up.
type Stats struct {
	// Runs counts retained runs; Open counts those not yet flushed.
	Runs int `json:"runs"`
	Open int `json:"open"`
	// Results counts raw results currently retained in rings; Ingested
	// and Evicted count lifetime writes and ring displacements.
	Results  int    `json:"results"`
	Ingested uint64 `json:"ingested"`
	Evicted  uint64 `json:"evicted"`
}

// Stats reports the store's counters.
func (s *Store) Stats() Stats {
	st := Stats{Ingested: s.ingested.Load(), Evicted: s.evicted.Load()}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rg := range sh.rings {
			st.Results += rg.n
		}
		sh.mu.RUnlock()
	}
	for _, run := range s.runSnapshot() {
		st.Runs++
		if !run.infoCopy().Done {
			st.Open++
		}
	}
	return st
}

// runSnapshot copies the retained-run list (ascending epoch) out of the
// runs lock, so per-run locks are taken without holding it.
func (s *Store) runSnapshot() []*runState {
	s.runsMu.RLock()
	defer s.runsMu.RUnlock()
	return append([]*runState(nil), s.runs...)
}

// Runs lists the retained runs in ascending epoch order.
func (s *Store) Runs() []RunInfo {
	runs := s.runSnapshot()
	out := make([]RunInfo, len(runs))
	for i, st := range runs {
		out[i] = st.infoCopy()
	}
	return out
}

// Run returns one run's info.
func (s *Store) Run(run int) (RunInfo, bool) {
	if st := s.findRun(run); st != nil {
		return st.infoCopy(), true
	}
	return RunInfo{}, false
}

// LatestRun returns the newest finished run, optionally restricted to a
// scenario ("" matches any).
func (s *Store) LatestRun(scenario string) (RunInfo, bool) {
	runs := s.runSnapshot()
	for i := len(runs) - 1; i >= 0; i-- {
		info := runs[i].infoCopy()
		if info.Done && (scenario == "" || info.Scenario == scenario) {
			return info, true
		}
	}
	return RunInfo{}, false
}

// Query selects stored results. The zero Query matches everything;
// string fields match exactly when non-empty.
type Query struct {
	Scenario    string
	Vantage     string
	Measurement string
	Mechanism   string
	Domain      string
	// Run selects one epoch exactly (0 = any); SinceRun selects every
	// epoch ≥ its value — the longitudinal "what changed since" filter.
	Run, SinceRun int
	// Since keeps results ingested at or after the given wall-clock time.
	Since time.Time
	// BlockedOnly keeps only positive verdicts.
	BlockedOnly bool
	// Latest keeps only the N most recently ingested matches (0 = all).
	Latest int
}

func (q Query) match(r StoredResult) bool {
	if q.Scenario != "" && r.Scenario != q.Scenario {
		return false
	}
	if q.Vantage != "" && r.Vantage != q.Vantage {
		return false
	}
	if q.Measurement != "" && r.Measurement != q.Measurement {
		return false
	}
	if q.Mechanism != "" && r.Mechanism != q.Mechanism {
		return false
	}
	if q.Domain != "" && r.Domain != q.Domain {
		return false
	}
	if q.Run != 0 && r.Run != q.Run {
		return false
	}
	if q.SinceRun != 0 && r.Run < q.SinceRun {
		return false
	}
	if !q.Since.IsZero() && r.Time.Before(q.Since) {
		return false
	}
	if q.BlockedOnly && !r.Blocked {
		return false
	}
	return true
}

// Results returns the retained results matching the query, in global
// ingestion order (ascending Seq); with Latest set, only the newest N.
// The slice and its entries are copies — callers own them. Shards are
// visited one at a time (ingestion keeps flowing on the others); the
// final sort by sequence number restores the global order.
func (s *Store) Results(q Query) []StoredResult {
	var out []StoredResult
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, k := range sh.keys {
			if q.Scenario != "" && k.Scenario != q.Scenario {
				continue
			}
			if q.Vantage != "" && k.Vantage != q.Vantage {
				continue
			}
			if q.Measurement != "" && k.Measurement != q.Measurement {
				continue
			}
			sh.rings[k].each(func(r StoredResult) {
				if q.match(r) {
					out = append(out, r)
				}
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if q.Latest > 0 && len(out) > q.Latest {
		out = out[len(out)-q.Latest:]
	}
	return out
}

// VantageSummary is one vantage's roll-up inside a run summary.
type VantageSummary struct {
	Vantage string       `json:"vantage"`
	Tally   censor.Tally `json:"tally"`
}

// RunSummary is one run's aggregate view: its info row plus the
// per-vantage tallies, in the campaign's vantage order. Built entirely
// from write-time roll-ups — no raw-result scan.
type RunSummary struct {
	RunInfo
	Vantages []VantageSummary `json:"vantages"`
}

// Summary returns one run's aggregate (false if the run was evicted or
// never existed).
func (s *Store) Summary(run int) (RunSummary, bool) {
	st := s.findRun(run)
	if st == nil {
		return RunSummary{}, false
	}
	// AggregateSink has its own lock; reading it outside the run lock
	// keeps ingest flowing during summary marshalling.
	out := RunSummary{RunInfo: st.infoCopy()}
	for _, v := range st.agg.Vantages() {
		out.Vantages = append(out.Vantages, VantageSummary{Vantage: v, Tally: st.agg.TallyFor(v)})
	}
	return out, true
}

// SummaryText renders one run's aggregate exactly as a drained
// censor.AggregateSink would: same fold, same renderer, byte-for-byte
// identical to draining the run's stream into an AggregateSink directly.
func (s *Store) SummaryText(run int) (string, bool) {
	st := s.findRun(run)
	if st == nil {
		return "", false
	}
	return st.agg.Summary(), true
}

// VantageDelta is one vantage's blocklist churn between two runs.
type VantageDelta struct {
	Vantage string `json:"vantage"`
	// Added lists domains blocked in the later run but not the earlier;
	// Removed the reverse. Sorted.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// Delta is the blocklist churn between two runs — the longitudinal view
// the paper's one-shot campaigns could not produce.
type Delta struct {
	From     int            `json:"from"`
	To       int            `json:"to"`
	Vantages []VantageDelta `json:"vantages"`
}

// blockedCopy snapshots a run's per-vantage blocked-domain sets under
// its lock.
func (st *runState) blockedCopy() map[string]map[string]bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]map[string]bool, len(st.blocked))
	for v, set := range st.blocked {
		cp := make(map[string]bool, len(set))
		for d := range set {
			cp[d] = true
		}
		out[v] = cp
	}
	return out
}

// DeltaSince computes per-vantage blocked-domain churn from run `from`
// to run `to`. Vantages appear in the later run's first-write order,
// then any vantage only the earlier run saw.
func (s *Store) DeltaSince(from, to int) (Delta, error) {
	a := s.findRun(from)
	b := s.findRun(to)
	if a == nil {
		return Delta{}, fmt.Errorf("monitor: run %d not retained", from)
	}
	if b == nil {
		return Delta{}, fmt.Errorf("monitor: run %d not retained", to)
	}
	aBlocked, bBlocked := a.blockedCopy(), b.blockedCopy()
	d := Delta{From: from, To: to}
	vantages := append([]string(nil), b.agg.Vantages()...)
	for _, v := range a.agg.Vantages() {
		if !slices.Contains(vantages, v) {
			vantages = append(vantages, v)
		}
	}
	for _, v := range vantages {
		vd := VantageDelta{Vantage: v}
		for dom := range bBlocked[v] {
			if !aBlocked[v][dom] {
				vd.Added = append(vd.Added, dom)
			}
		}
		for dom := range aBlocked[v] {
			if !bBlocked[v][dom] {
				vd.Removed = append(vd.Removed, dom)
			}
		}
		sort.Strings(vd.Added)
		sort.Strings(vd.Removed)
		if len(vd.Added) > 0 || len(vd.Removed) > 0 {
			d.Vantages = append(d.Vantages, vd)
		}
	}
	return d, nil
}
