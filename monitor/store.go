// Package monitor is the continuous-measurement observatory layer: the
// long-running service half of the reproduction, on top of the censor
// package's one-shot campaigns.
//
// The paper's study was a sequence of manual measurement campaigns; the
// questions it could not ask — how blocklists churn week over week, when
// a middlebox deployment changes behaviour — need a service that keeps
// measuring and keeps the answers queryable. This package provides that
// service in three pieces:
//
//   - [Store], a concurrency-safe in-memory result store implementing
//     [censor.Sink]. Raw results live in bounded per-(scenario, vantage,
//     measurement) ring buffers; every ingested result is also folded
//     into per-run [censor.Tally] roll-ups at write time, so summary
//     queries never scan raw results. Runs carry monotonic epochs.
//   - [Scheduler], which executes recurring campaigns (per-job cadence
//     and jitter, context-aware shutdown) against pooled sessions and
//     ingests each run into the store.
//   - [NewHandler], the HTTP face: /healthz plus the versioned /v1/*
//     query and trigger endpoints cmd/censord serves.
//
// Store queries run concurrently with ingestion: Write takes the write
// lock per result, queries take read locks, and every query returns
// copies — a deliberate contrast with JSONLSink/CSVSink, which are only
// safe single-writer through Stream.Drain.
package monitor

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/censor"
	"repro/obs"
)

// key addresses one ring buffer: raw results are retained per
// (scenario, vantage, measurement) so one chatty detector cannot evict
// another's history.
type key struct {
	Scenario, Vantage, Measurement string
}

// StoredResult is one retained measurement record: the uniform
// censor.Result plus the observatory coordinates — which run (epoch)
// produced it, under which scenario, its global ingestion sequence
// number, and the wall-clock ingestion time.
type StoredResult struct {
	censor.Result
	Run      int       `json:"run"`
	Scenario string    `json:"scenario"`
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
}

// RunInfo describes one ingestion run: a scheduler campaign, an
// on-demand API trigger, or a batch push from censorscan.
type RunInfo struct {
	// Run is the monotonic epoch, unique across all scenarios.
	Run int `json:"run"`
	// Scenario names the world the results were measured on.
	Scenario string `json:"scenario"`
	// Source records who ingested the run ("scheduler", "api", "push",
	// "direct").
	Source string `json:"source,omitempty"`
	// Started/Finished bracket the ingestion wall-clock time; Finished is
	// zero until the run's sink is flushed.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Done reports whether the run's sink has been flushed.
	Done bool `json:"done"`
	// Results/Blocked/Errors count every ingested record of the run —
	// ring eviction never decrements them.
	Results int `json:"results"`
	Blocked int `json:"blocked"`
	Errors  int `json:"errors"`
	// Err records a campaign that ended early (cancellation, sink
	// failure); empty for a complete run.
	Err string `json:"err,omitempty"`
}

// runState is one run's retained roll-up: its info row, the aggregate
// (fed the same fold as a drained AggregateSink, so summaries match
// byte-for-byte), and the per-vantage blocked-domain sets behind
// DeltaSince.
type runState struct {
	info    RunInfo
	agg     *censor.AggregateSink
	blocked map[string]map[string]bool // vantage -> blocked domains
}

// ring is a fixed-capacity result buffer: append overwrites the oldest
// entry once full.
type ring struct {
	buf     []StoredResult
	head, n int
}

func (rg *ring) append(r StoredResult) (evicted bool) {
	if rg.n < len(rg.buf) {
		rg.buf[(rg.head+rg.n)%len(rg.buf)] = r
		rg.n++
		return false
	}
	rg.buf[rg.head] = r
	rg.head = (rg.head + 1) % len(rg.buf)
	return true
}

// each visits the ring's entries oldest-first.
func (rg *ring) each(fn func(StoredResult)) {
	for i := 0; i < rg.n; i++ {
		fn(rg.buf[(rg.head+i)%len(rg.buf)])
	}
}

// Store is the observatory's in-memory result store. It implements
// censor.Sink (writes land in an implicit "direct" run) and hands out
// per-run sinks via Begin for callers that manage run boundaries — the
// Scheduler, the campaign-trigger endpoint, and the batch-push endpoint.
//
// Unlike the stream sinks, Store is explicitly safe for concurrent use:
// any number of goroutines may Write (each write locks per result) while
// any number query — Results, Summary, Runs, DeltaSince all take read
// locks and return copies. Memory is bounded on both axes: raw results
// by per-key ring buffers (WithRingSize), roll-ups by run retention
// (WithRunRetention).
type Store struct {
	mu       sync.RWMutex
	ringSize int
	runCap   int
	clock    func() time.Time

	rings map[key]*ring
	keys  []key // first-seen order, for deterministic iteration

	runs    []*runState // retained runs, ascending epoch
	nextRun int
	nextSeq uint64

	ingested uint64 // results ever written
	evicted  uint64 // results displaced from rings

	// obs mirrors of the counters above, plus run opens; nil (no-op)
	// instruments unless WithTelemetry was given. The atomic Inc calls
	// ride inside the store lock, so ingest stays one lock round-trip.
	reg       *obs.Registry
	cRuns     *obs.Counter
	cIngested *obs.Counter
	cEvicted  *obs.Counter

	direct *RunSink // implicit run behind the Sink interface
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithRingSize bounds each (scenario, vantage, measurement) ring buffer
// to n raw results (default 512). Aggregates are unaffected by eviction.
func WithRingSize(n int) StoreOption {
	return func(s *Store) {
		if n > 0 {
			s.ringSize = n
		}
	}
}

// WithRunRetention bounds how many runs keep their roll-ups (info,
// tallies, delta sets); the oldest *finished* run is dropped past n
// (default 64) — in-flight runs are never evicted.
func WithRunRetention(n int) StoreOption {
	return func(s *Store) {
		if n > 0 {
			s.runCap = n
		}
	}
}

// withClock injects the ingestion clock (tests).
func withClock(fn func() time.Time) StoreOption {
	return func(s *Store) { s.clock = fn }
}

// WithTelemetry mirrors the store's counters — runs opened, results
// ingested, ring evictions — into reg under the monitor_* prefix, for
// the /metrics endpoint. A nil registry leaves them as no-ops.
func WithTelemetry(reg *obs.Registry) StoreOption {
	return func(s *Store) { s.reg = reg }
}

// NewStore builds an empty store.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		ringSize: 512,
		runCap:   64,
		clock:    time.Now,
		rings:    map[key]*ring{},
		nextRun:  1,
	}
	for _, o := range opts {
		o(s)
	}
	s.cRuns = s.reg.Counter("monitor_runs_total")
	s.cIngested = s.reg.Counter("monitor_results_ingested_total")
	s.cEvicted = s.reg.Counter("monitor_results_evicted_total")
	return s
}

// RunSink ingests one run's results into the store. It implements
// censor.Sink: hand it to Stream.Drain, or Write from application code —
// writes are individually locked, so concurrent writers are safe (their
// interleaving decides sequence numbers). Flush finalizes the run;
// writes after Flush fail.
type RunSink struct {
	s   *Store
	run int
}

// Begin opens a new run under the given scenario name and returns its
// sink. Epochs are monotonic across all scenarios and sources.
func (s *Store) Begin(scenario, source string) *RunSink {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beginLocked(scenario, source)
}

func (s *Store) beginLocked(scenario, source string) *RunSink {
	st := &runState{
		info: RunInfo{
			Run:      s.nextRun,
			Scenario: scenario,
			Source:   source,
			Started:  s.clock(),
		},
		agg:     censor.NewAggregateSink(),
		blocked: map[string]map[string]bool{},
	}
	s.nextRun++
	s.cRuns.Inc()
	s.runs = append(s.runs, st)
	if len(s.runs) > s.runCap {
		// Evict the oldest finished run. An in-flight run is never
		// dropped — its sink would start failing mid-campaign — so the
		// cap can be transiently exceeded while many runs ingest at once.
		for i, old := range s.runs {
			if old.info.Done {
				s.runs = append(s.runs[:i], s.runs[i+1:]...)
				break
			}
		}
	}
	return &RunSink{s: s, run: st.info.Run}
}

// Run returns the sink's run epoch.
func (rs *RunSink) Run() int { return rs.run }

// Write ingests one result into the sink's run.
func (rs *RunSink) Write(r censor.Result) error {
	rs.s.mu.Lock()
	defer rs.s.mu.Unlock()
	return rs.s.writeLocked(rs.run, r)
}

// Flush finalizes the run: stamps Finished, marks it Done.
func (rs *RunSink) Flush() error {
	rs.s.mu.Lock()
	defer rs.s.mu.Unlock()
	st := rs.s.runLocked(rs.run)
	if st == nil {
		return fmt.Errorf("monitor: run %d evicted before flush", rs.run)
	}
	if !st.info.Done {
		st.info.Done = true
		st.info.Finished = rs.s.clock()
	}
	return nil
}

// FinishErr records a campaign error on the run (the stream ended early)
// and finalizes it. Use after Stream.Drain returns non-nil; Drain has
// already flushed the sink by then, so this only annotates the run.
func (rs *RunSink) FinishErr(err error) {
	rs.s.mu.Lock()
	defer rs.s.mu.Unlock()
	st := rs.s.runLocked(rs.run)
	if st == nil {
		return
	}
	if err != nil {
		st.info.Err = err.Error()
	}
	if !st.info.Done {
		st.info.Done = true
		st.info.Finished = rs.s.clock()
	}
}

func (s *Store) writeLocked(run int, r censor.Result) error {
	st := s.runLocked(run)
	if st == nil {
		return fmt.Errorf("monitor: run %d not open", run)
	}
	if st.info.Done {
		return fmt.Errorf("monitor: run %d already finished", run)
	}

	// Roll-ups first: counts survive ring eviction.
	st.info.Results++
	if r.Blocked {
		st.info.Blocked++
		set := st.blocked[r.Vantage]
		if set == nil {
			set = map[string]bool{}
			st.blocked[r.Vantage] = set
		}
		set[r.Domain] = true
	}
	if r.Error != "" {
		st.info.Errors++
	}
	st.agg.Write(r) // same fold as a drained AggregateSink

	k := key{Scenario: st.info.Scenario, Vantage: r.Vantage, Measurement: r.Measurement}
	rg, ok := s.rings[k]
	if !ok {
		rg = &ring{buf: make([]StoredResult, s.ringSize)}
		s.rings[k] = rg
		s.keys = append(s.keys, k)
	}
	s.nextSeq++
	s.ingested++
	s.cIngested.Inc()
	if rg.append(StoredResult{
		Result:   r,
		Run:      run,
		Scenario: st.info.Scenario,
		Seq:      s.nextSeq,
		Time:     s.clock(),
	}) {
		s.evicted++
		s.cEvicted.Inc()
	}
	return nil
}

func (s *Store) runLocked(run int) *runState {
	// Retained runs are few (runCap) and ascending; scan from the tail,
	// where the open runs live.
	for i := len(s.runs) - 1; i >= 0; i-- {
		if s.runs[i].info.Run == run {
			return s.runs[i]
		}
	}
	return nil
}

// ------------------------------------------------------- censor.Sink face

// Write implements censor.Sink on the store itself: results land in an
// implicit run (scenario "", source "direct") opened on first write.
// Callers that know their run boundaries should prefer Begin.
func (s *Store) Write(r censor.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.direct == nil {
		s.direct = s.beginLocked("", "direct")
	}
	return s.writeLocked(s.direct.run, r)
}

// Flush finalizes the implicit run opened by Write; the next Write opens
// a fresh one.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.direct == nil {
		return nil
	}
	if st := s.runLocked(s.direct.run); st != nil && !st.info.Done {
		st.info.Done = true
		st.info.Finished = s.clock()
	}
	s.direct = nil
	return nil
}

// --------------------------------------------------------------- queries

// Stats is the store's health roll-up.
type Stats struct {
	// Runs counts retained runs; Open counts those not yet flushed.
	Runs int `json:"runs"`
	Open int `json:"open"`
	// Results counts raw results currently retained in rings; Ingested
	// and Evicted count lifetime writes and ring displacements.
	Results  int    `json:"results"`
	Ingested uint64 `json:"ingested"`
	Evicted  uint64 `json:"evicted"`
}

// Stats reports the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Ingested: s.ingested, Evicted: s.evicted}
	for _, rg := range s.rings {
		st.Results += rg.n
	}
	st.Runs = len(s.runs)
	for _, r := range s.runs {
		if !r.info.Done {
			st.Open++
		}
	}
	return st
}

// Runs lists the retained runs in ascending epoch order.
func (s *Store) Runs() []RunInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RunInfo, len(s.runs))
	for i, st := range s.runs {
		out[i] = st.info
	}
	return out
}

// Run returns one run's info.
func (s *Store) Run(run int) (RunInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if st := s.runLocked(run); st != nil {
		return st.info, true
	}
	return RunInfo{}, false
}

// LatestRun returns the newest finished run, optionally restricted to a
// scenario ("" matches any).
func (s *Store) LatestRun(scenario string) (RunInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := len(s.runs) - 1; i >= 0; i-- {
		info := s.runs[i].info
		if info.Done && (scenario == "" || info.Scenario == scenario) {
			return info, true
		}
	}
	return RunInfo{}, false
}

// Query selects stored results. The zero Query matches everything;
// string fields match exactly when non-empty.
type Query struct {
	Scenario    string
	Vantage     string
	Measurement string
	Mechanism   string
	Domain      string
	// Run selects one epoch exactly (0 = any); SinceRun selects every
	// epoch ≥ its value — the longitudinal "what changed since" filter.
	Run, SinceRun int
	// Since keeps results ingested at or after the given wall-clock time.
	Since time.Time
	// BlockedOnly keeps only positive verdicts.
	BlockedOnly bool
	// Latest keeps only the N most recently ingested matches (0 = all).
	Latest int
}

func (q Query) match(r StoredResult) bool {
	if q.Scenario != "" && r.Scenario != q.Scenario {
		return false
	}
	if q.Vantage != "" && r.Vantage != q.Vantage {
		return false
	}
	if q.Measurement != "" && r.Measurement != q.Measurement {
		return false
	}
	if q.Mechanism != "" && r.Mechanism != q.Mechanism {
		return false
	}
	if q.Domain != "" && r.Domain != q.Domain {
		return false
	}
	if q.Run != 0 && r.Run != q.Run {
		return false
	}
	if q.SinceRun != 0 && r.Run < q.SinceRun {
		return false
	}
	if !q.Since.IsZero() && r.Time.Before(q.Since) {
		return false
	}
	if q.BlockedOnly && !r.Blocked {
		return false
	}
	return true
}

// Results returns the retained results matching the query, in global
// ingestion order (ascending Seq); with Latest set, only the newest N.
// The slice and its entries are copies — callers own them.
func (s *Store) Results(q Query) []StoredResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []StoredResult
	for _, k := range s.keys {
		if q.Scenario != "" && k.Scenario != q.Scenario {
			continue
		}
		if q.Vantage != "" && k.Vantage != q.Vantage {
			continue
		}
		if q.Measurement != "" && k.Measurement != q.Measurement {
			continue
		}
		s.rings[k].each(func(r StoredResult) {
			if q.match(r) {
				out = append(out, r)
			}
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if q.Latest > 0 && len(out) > q.Latest {
		out = out[len(out)-q.Latest:]
	}
	return out
}

// VantageSummary is one vantage's roll-up inside a run summary.
type VantageSummary struct {
	Vantage string       `json:"vantage"`
	Tally   censor.Tally `json:"tally"`
}

// RunSummary is one run's aggregate view: its info row plus the
// per-vantage tallies, in the campaign's vantage order. Built entirely
// from write-time roll-ups — no raw-result scan.
type RunSummary struct {
	RunInfo
	Vantages []VantageSummary `json:"vantages"`
}

// Summary returns one run's aggregate (false if the run was evicted or
// never existed).
func (s *Store) Summary(run int) (RunSummary, bool) {
	s.mu.RLock()
	st := s.runLocked(run)
	if st == nil {
		s.mu.RUnlock()
		return RunSummary{}, false
	}
	info := st.info
	agg := st.agg
	s.mu.RUnlock()
	// AggregateSink has its own lock; reading it outside the store lock
	// keeps ingest flowing during summary marshalling.
	out := RunSummary{RunInfo: info}
	for _, v := range agg.Vantages() {
		out.Vantages = append(out.Vantages, VantageSummary{Vantage: v, Tally: agg.TallyFor(v)})
	}
	return out, true
}

// SummaryText renders one run's aggregate exactly as a drained
// censor.AggregateSink would: same fold, same renderer, byte-for-byte
// identical to draining the run's stream into an AggregateSink directly.
func (s *Store) SummaryText(run int) (string, bool) {
	s.mu.RLock()
	st := s.runLocked(run)
	if st == nil {
		s.mu.RUnlock()
		return "", false
	}
	agg := st.agg
	s.mu.RUnlock()
	return agg.Summary(), true
}

// VantageDelta is one vantage's blocklist churn between two runs.
type VantageDelta struct {
	Vantage string `json:"vantage"`
	// Added lists domains blocked in the later run but not the earlier;
	// Removed the reverse. Sorted.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// Delta is the blocklist churn between two runs — the longitudinal view
// the paper's one-shot campaigns could not produce.
type Delta struct {
	From     int            `json:"from"`
	To       int            `json:"to"`
	Vantages []VantageDelta `json:"vantages"`
}

// DeltaSince computes per-vantage blocked-domain churn from run `from`
// to run `to`. Vantages appear in the later run's first-write order,
// then any vantage only the earlier run saw.
func (s *Store) DeltaSince(from, to int) (Delta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a := s.runLocked(from)
	b := s.runLocked(to)
	if a == nil {
		return Delta{}, fmt.Errorf("monitor: run %d not retained", from)
	}
	if b == nil {
		return Delta{}, fmt.Errorf("monitor: run %d not retained", to)
	}
	d := Delta{From: from, To: to}
	vantages := append([]string(nil), b.agg.Vantages()...)
	for _, v := range a.agg.Vantages() {
		if !slices.Contains(vantages, v) {
			vantages = append(vantages, v)
		}
	}
	for _, v := range vantages {
		vd := VantageDelta{Vantage: v}
		for dom := range b.blocked[v] {
			if !a.blocked[v][dom] {
				vd.Added = append(vd.Added, dom)
			}
		}
		for dom := range a.blocked[v] {
			if !b.blocked[v][dom] {
				vd.Removed = append(vd.Removed, dom)
			}
		}
		sort.Strings(vd.Added)
		sort.Strings(vd.Removed)
		if len(vd.Added) > 0 || len(vd.Removed) > 0 {
			d.Vantages = append(d.Vantages, vd)
		}
	}
	return d, nil
}
