package monitor

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"repro/censor"
	"repro/obs"
)

// maxPushBytes caps one POST /v1/results body — a defensive bound on
// top of the store's ring/retention bounds.
const maxPushBytes = 64 << 20

// HandlerOption configures NewHandler beyond the store and scheduler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	reg *obs.Registry
}

// WithMetrics mounts two extra endpoints over reg:
//
//	GET /metrics     Prometheus text exposition of every instrument
//	GET /debug/vars  standard expvar JSON, with the registry published
//	                 under the "censord" key
//
// Pass the same registry the store, scheduler jobs (censor.WithTelemetry)
// and bridges write into, so one scrape sees the whole stack.
func WithMetrics(reg *obs.Registry) HandlerOption {
	return func(c *handlerConfig) { c.reg = reg }
}

// NewHandler builds censord's HTTP face over a store and an optional
// scheduler (nil disables the campaign-trigger endpoint; the store-only
// form serves pure result archives, e.g. a censorscan push target).
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz                 liveness, build info, uptime, store counters
//	GET  /metrics                 Prometheus text (with WithMetrics)
//	GET  /debug/vars              expvar JSON (with WithMetrics)
//	GET  /v1/scenarios            the scenario preset registry
//	GET  /v1/runs                 retained runs, ascending epoch
//	POST /v1/campaigns            trigger a job run now: {"job":"name"}
//	GET  /v1/results              filtered results, JSONL streaming
//	POST /v1/results?scenario=s   ingest a JSONL batch as a new run
//	GET  /v1/summary?run=N        per-vantage aggregate (or ?format=text)
//	GET  /v1/delta?from=N&to=M    blocked-domain churn between two runs
//
// /v1/results filters map 1:1 onto Query: scenario, vantage,
// measurement, mechanism, domain, run, since_run, latest, blocked=true.
// Every handler is safe under concurrent ingestion — that is the store's
// contract, exercised by the tests under -race.
func NewHandler(store *Store, sched *Scheduler, opts ...HandlerOption) http.Handler {
	var hc handlerConfig
	for _, o := range opts {
		o(&hc)
	}
	mux := http.NewServeMux()
	started := time.Now()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"go":        runtime.Version(),
			"revision":  vcsRevision(),
			"uptime":    time.Since(started).Round(time.Second).String(),
			"uptime_ns": time.Since(started).Nanoseconds(),
			"stats":     store.Stats(),
		})
	})

	if hc.reg != nil {
		reg := hc.reg
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w) //nolint:errcheck // client disconnects are not actionable
		})
		// Publish once per process: NewHandler may run many times in tests,
		// and expvar panics on duplicate names.
		if expvar.Get("censord") == nil {
			expvar.Publish("censord", expvar.Func(func() any { return reg.Snapshot() }))
		}
		mux.Handle("GET /debug/vars", expvar.Handler())
	}

	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		type scenarioInfo struct {
			Name        string   `json:"name"`
			Description string   `json:"description,omitempty"`
			ISPs        int      `json:"isps"`
			PBWSites    int      `json:"pbw_sites"`
			Vantages    []string `json:"vantages,omitempty"`
			Job         bool     `json:"job"` // scheduled/triggerable here
		}
		jobs := map[string]bool{}
		if sched != nil {
			for _, name := range sched.Jobs() {
				jobs[name] = true
			}
		}
		var out []scenarioInfo
		for _, name := range censor.Scenarios() {
			sc, _ := censor.LookupScenario(name)
			out = append(out, scenarioInfo{
				Name: sc.Name, Description: sc.Description,
				ISPs: len(sc.ISPs), PBWSites: sc.PBWSites,
				Vantages: sc.Vantages, Job: jobs[sc.Name],
			})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, store.Runs())
	})

	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		if sched == nil {
			httpError(w, http.StatusServiceUnavailable, "no scheduler: this censord only archives pushed results")
			return
		}
		var req struct {
			Job string `json:"job"`
		}
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, "body: %v", err)
				return
			}
		}
		if req.Job == "" {
			names := sched.Jobs()
			if len(names) != 1 {
				httpError(w, http.StatusBadRequest, "job required (registered: %v)", names)
				return
			}
			req.Job = names[0]
		}
		// Synchronous: the response is the finished run's info. Client
		// disconnect cancels the campaign through the request context.
		info, err := sched.RunOnce(r.Context(), req.Job)
		if err != nil {
			if info.Run != 0 {
				// Partial run: report it with the error recorded.
				writeJSON(w, http.StatusOK, info)
				return
			}
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/results", func(w http.ResponseWriter, r *http.Request) {
		q, err := queryFromURL(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		results := store.Results(q)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for i := range results {
			if err := enc.Encode(&results[i]); err != nil {
				return // client went away mid-stream
			}
		}
	})

	mux.HandleFunc("POST /v1/results", func(w http.ResponseWriter, r *http.Request) {
		scenario := r.URL.Query().Get("scenario")
		source := r.URL.Query().Get("source")
		if source == "" {
			source = "push"
		}
		// Stream-decode into bounded chunks and batch-ingest each: the
		// body is never materialized, so a push cannot grow the daemon
		// beyond the store's own bounds (plus this defensive per-request
		// cap), while each WriteBatch pays the run lock once per chunk
		// instead of once per result on the sharded store.
		body := http.MaxBytesReader(w, r.Body, maxPushBytes)
		sink := store.Begin(scenario, source)
		dec := json.NewDecoder(body)
		const pushChunk = 256
		chunk := make([]censor.Result, 0, pushChunk)
		ingest := func() error {
			if len(chunk) == 0 {
				return nil
			}
			err := sink.WriteBatch(chunk)
			chunk = chunk[:0]
			return err
		}
		for {
			var res censor.Result
			if err := dec.Decode(&res); err == io.EOF {
				break
			} else if err != nil {
				// Ingest what decoded cleanly, then finalize the partial
				// run — its Err makes the truncated ingest observable
				// instead of leaving a phantom open run.
				if ierr := ingest(); ierr != nil {
					err = ierr
				}
				sink.FinishErr(fmt.Errorf("jsonl body: %v", err))
				httpError(w, http.StatusBadRequest, "jsonl body: %v", err)
				return
			}
			chunk = append(chunk, res)
			if len(chunk) == pushChunk {
				if err := ingest(); err != nil {
					sink.FinishErr(err)
					httpError(w, http.StatusInternalServerError, "%v", err)
					return
				}
			}
		}
		if err := ingest(); err != nil {
			sink.FinishErr(err)
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if err := sink.Flush(); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		info, _ := store.Run(sink.Run())
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /v1/summary", func(w http.ResponseWriter, r *http.Request) {
		run, err := runParam(r, store)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			text, ok := store.SummaryText(run)
			if !ok {
				httpError(w, http.StatusNotFound, "run %d not retained", run)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, text)
			return
		}
		sum, ok := store.Summary(run)
		if !ok {
			httpError(w, http.StatusNotFound, "run %d not retained", run)
			return
		}
		writeJSON(w, http.StatusOK, sum)
	})

	mux.HandleFunc("GET /v1/delta", func(w http.ResponseWriter, r *http.Request) {
		from, err := intParam(r, "from", 0)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if from == 0 {
			httpError(w, http.StatusBadRequest, "from run required")
			return
		}
		to, err := intParam(r, "to", 0)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if to == 0 {
			latest, ok := store.LatestRun(r.URL.Query().Get("scenario"))
			if !ok {
				httpError(w, http.StatusNotFound, "no finished run to diff against")
				return
			}
			to = latest.Run
		}
		delta, err := store.DeltaSince(from, to)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, delta)
	})

	return mux
}

// queryFromURL maps /v1/results parameters onto a store Query.
func queryFromURL(r *http.Request) (Query, error) {
	v := r.URL.Query()
	q := Query{
		Scenario:    v.Get("scenario"),
		Vantage:     v.Get("vantage"),
		Measurement: v.Get("measurement"),
		Mechanism:   v.Get("mechanism"),
		Domain:      v.Get("domain"),
		BlockedOnly: v.Get("blocked") == "true",
	}
	var err error
	if q.Run, err = intParam(r, "run", 0); err != nil {
		return q, err
	}
	if q.SinceRun, err = intParam(r, "since_run", 0); err != nil {
		return q, err
	}
	if q.Latest, err = intParam(r, "latest", 0); err != nil {
		return q, err
	}
	if s := v.Get("since"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return q, fmt.Errorf("since: %v", err)
		}
		q.Since = t
	}
	return q, nil
}

// runParam resolves the run selector of /v1/summary: an explicit ?run=N,
// or the latest finished run (optionally per ?scenario=).
func runParam(r *http.Request, store *Store) (int, error) {
	run, err := intParam(r, "run", 0)
	if err != nil {
		return 0, err
	}
	if run != 0 {
		return run, nil
	}
	latest, ok := store.LatestRun(r.URL.Query().Get("scenario"))
	if !ok {
		return 0, fmt.Errorf("no finished run yet")
	}
	return latest.Run, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def, fmt.Errorf("%s: %v", name, err)
	}
	return n, nil
}

// vcsRevision extracts the VCS commit a binary was built from, when the
// toolchain stamped one ("" otherwise — e.g. `go test` binaries).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client disconnects are not actionable
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
