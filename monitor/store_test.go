package monitor

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/censor"
)

// fakeClock is a deterministic, monotonically advancing test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 7, 27, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(time.Second)
	return c.now
}

// res builds a synthetic result for store-only tests.
func res(vantage, measurement, domain string, blocked bool) censor.Result {
	r := censor.Result{Vantage: vantage, Measurement: measurement, Domain: domain, Blocked: blocked}
	if blocked {
		r.Mechanism = censor.MechanismNotification
		r.Censor = vantage
	}
	return r
}

// sharedSession caches one small-world session for the campaign-backed
// tests (the same pattern the censor package tests use).
var (
	sessOnce sync.Once
	sess     *censor.Session
	sessErr  error
)

func smallSession(t *testing.T) *censor.Session {
	t.Helper()
	sessOnce.Do(func() {
		sess, sessErr = censor.NewSession(context.Background(),
			censor.WithScenario(censor.MustLookupScenario("small")))
	})
	if sessErr != nil {
		t.Fatalf("NewSession: %v", sessErr)
	}
	return sess
}

func TestStoreRingEviction(t *testing.T) {
	store := NewStore(WithRingSize(4), withClock(newFakeClock().Now))
	sink := store.Begin("s", "test")
	for i := 0; i < 10; i++ {
		if err := sink.Write(res("Airtel", "dns", fmt.Sprintf("d%02d.com", i), i%2 == 0)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got := store.Results(Query{})
	if len(got) != 4 {
		t.Fatalf("ring retained %d results, want 4", len(got))
	}
	for i, r := range got {
		want := fmt.Sprintf("d%02d.com", 6+i)
		if r.Domain != want {
			t.Errorf("retained[%d] = %s, want %s (oldest must be evicted first)", i, r.Domain, want)
		}
		if r.Run != sink.Run() || r.Scenario != "s" {
			t.Errorf("retained[%d] coordinates wrong: %+v", i, r)
		}
	}

	st := store.Stats()
	if st.Ingested != 10 || st.Evicted != 6 || st.Results != 4 {
		t.Errorf("stats = %+v, want ingested=10 evicted=6 results=4", st)
	}

	// Roll-ups are eviction-proof: the run and its tally still count all
	// ten results.
	info, ok := store.Run(sink.Run())
	if !ok || info.Results != 10 || info.Blocked != 5 || !info.Done {
		t.Errorf("run info = %+v, want 10 results, 5 blocked, done", info)
	}
	sum, ok := store.Summary(sink.Run())
	if !ok || len(sum.Vantages) != 1 || sum.Vantages[0].Tally.Total != 10 {
		t.Errorf("summary lost evicted results: %+v", sum)
	}
}

func TestStoreSinkInterface(t *testing.T) {
	// Store itself is a censor.Sink: writes land in an implicit run.
	store := NewStore(withClock(newFakeClock().Now))
	var sink censor.Sink = store
	if err := sink.Write(res("Idea", "http", "a.com", true)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	runs := store.Runs()
	if len(runs) != 1 || runs[0].Source != "direct" || !runs[0].Done || runs[0].Results != 1 {
		t.Fatalf("implicit run wrong: %+v", runs)
	}
	// The next Write opens a fresh epoch.
	if err := sink.Write(res("Idea", "http", "b.com", false)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if runs = store.Runs(); len(runs) != 2 || runs[1].Run != runs[0].Run+1 {
		t.Fatalf("second direct write did not open a new run: %+v", runs)
	}
}

func TestStoreWriteAfterFlush(t *testing.T) {
	store := NewStore(withClock(newFakeClock().Now))
	sink := store.Begin("s", "test")
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := sink.Write(res("Idea", "dns", "a.com", false)); err == nil {
		t.Fatal("Write after Flush succeeded, want error")
	}
}

func TestStoreQueryFilters(t *testing.T) {
	clock := newFakeClock()
	store := NewStore(withClock(clock.Now))

	run1 := store.Begin("alpha", "test")
	run1.Write(res("Airtel", "dns", "a.com", true))
	run1.Write(res("Airtel", "http", "a.com", false))
	run1.Write(res("Idea", "http", "b.com", true))
	run1.Flush()
	var cut time.Time
	{
		// Everything after this instant belongs to run 2.
		cut = clock.Now()
	}
	run2 := store.Begin("beta", "test")
	run2.Write(res("Airtel", "dns", "c.com", true))
	run2.Write(res("Idea", "http", "b.com", false))
	run2.Flush()

	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 5},
		{"scenario", Query{Scenario: "alpha"}, 3},
		{"vantage", Query{Vantage: "Airtel"}, 3},
		{"measurement", Query{Measurement: "http"}, 3},
		{"mechanism", Query{Mechanism: censor.MechanismNotification}, 3},
		{"domain", Query{Domain: "b.com"}, 2},
		{"blocked", Query{BlockedOnly: true}, 3},
		{"run", Query{Run: run2.Run()}, 2},
		{"since-run", Query{SinceRun: run2.Run()}, 2},
		{"since-time", Query{Since: cut}, 2},
		{"latest", Query{Latest: 2}, 2},
		{"combined", Query{Vantage: "Idea", Measurement: "http", BlockedOnly: true}, 1},
	}
	for _, tc := range cases {
		got := store.Results(tc.q)
		if len(got) != tc.want {
			t.Errorf("%s: got %d results, want %d (%+v)", tc.name, len(got), tc.want, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Seq <= got[i-1].Seq {
				t.Errorf("%s: results out of ingestion order", tc.name)
			}
		}
	}
	// Latest keeps the newest matches.
	latest := store.Results(Query{Latest: 2})
	if latest[0].Domain != "c.com" || latest[1].Domain != "b.com" {
		t.Errorf("Latest kept the wrong tail: %+v", latest)
	}
}

func TestStoreDelta(t *testing.T) {
	store := NewStore(withClock(newFakeClock().Now))
	run1 := store.Begin("s", "test")
	run1.Write(res("Airtel", "http", "x.com", true))
	run1.Write(res("Airtel", "http", "y.com", true))
	run1.Write(res("Idea", "http", "x.com", true))
	run1.Flush()
	run2 := store.Begin("s", "test")
	run2.Write(res("Airtel", "http", "y.com", true))
	run2.Write(res("Airtel", "http", "z.com", true))
	run2.Write(res("Idea", "http", "x.com", true))
	run2.Flush()

	d, err := store.DeltaSince(run1.Run(), run2.Run())
	if err != nil {
		t.Fatalf("DeltaSince: %v", err)
	}
	if len(d.Vantages) != 1 {
		t.Fatalf("delta = %+v, want churn for Airtel only", d)
	}
	vd := d.Vantages[0]
	if vd.Vantage != "Airtel" ||
		len(vd.Added) != 1 || vd.Added[0] != "z.com" ||
		len(vd.Removed) != 1 || vd.Removed[0] != "x.com" {
		t.Errorf("Airtel churn = %+v, want added [z.com] removed [x.com]", vd)
	}

	if _, err := store.DeltaSince(99, run2.Run()); err == nil {
		t.Error("DeltaSince accepted an unknown run")
	}
}

func TestStoreRunRetention(t *testing.T) {
	store := NewStore(WithRunRetention(2), withClock(newFakeClock().Now))
	var runs []*RunSink
	for i := 0; i < 4; i++ {
		s := store.Begin("s", "test")
		s.Write(res("Airtel", "dns", "a.com", false))
		s.Flush()
		runs = append(runs, s)
	}
	if got := store.Runs(); len(got) != 2 || got[0].Run != runs[2].Run() {
		t.Fatalf("retained runs = %+v, want the newest two", got)
	}
	if _, ok := store.Summary(runs[0].Run()); ok {
		t.Error("evicted run still has a summary")
	}
}

// TestStoreRetentionSparesOpenRuns: retention pressure must never evict
// a run that is still ingesting — its sink would start failing
// mid-campaign.
func TestStoreRetentionSparesOpenRuns(t *testing.T) {
	store := NewStore(WithRunRetention(1), withClock(newFakeClock().Now))
	open := store.Begin("s", "test")
	open.Write(res("Airtel", "dns", "a.com", false))
	// Churn through finished runs well past the cap.
	for i := 0; i < 3; i++ {
		s := store.Begin("s", "test")
		s.Write(res("Airtel", "dns", "b.com", false))
		s.Flush()
	}
	// The open run is still writable...
	if err := open.Write(res("Airtel", "dns", "c.com", false)); err != nil {
		t.Fatalf("open run evicted under retention pressure: %v", err)
	}
	if err := open.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// ...and counted everything.
	info, ok := store.Run(open.Run())
	if !ok || info.Results != 2 {
		t.Errorf("open run info = %+v (ok=%v), want 2 results", info, ok)
	}
}

// TestStoreConcurrentWriteQuery is the store's concurrency contract
// under -race: many writers (distinct runs), many readers, no locks held
// by the caller.
func TestStoreConcurrentWriteQuery(t *testing.T) {
	store := NewStore(WithRingSize(64))
	const writers, perWriter = 4, 200
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			sink := store.Begin(fmt.Sprintf("s%d", w), "test")
			for i := 0; i < perWriter; i++ {
				if err := sink.Write(res("Airtel", "dns", fmt.Sprintf("d%d.com", i), i%3 == 0)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
			sink.Flush()
		}(w)
	}
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				store.Results(Query{Vantage: "Airtel", Latest: 10})
				store.Runs()
				store.Stats()
				if info, ok := store.LatestRun(""); ok {
					store.Summary(info.Run)
					store.SummaryText(info.Run)
				}
				// Yield so writers make progress on small CPU counts; the
				// point is interleaving, not throughput.
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() { writeWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent writers did not finish")
	}
	close(stop)
	readWG.Wait()
	if st := store.Stats(); st.Ingested != writers*perWriter || st.Runs != writers {
		t.Errorf("stats after concurrent ingest = %+v", st)
	}
}

// TestStoreSummaryMatchesAggregateSink is the acceptance check: draining
// one campaign into both an AggregateSink and a store run must yield
// byte-for-byte identical summaries.
func TestStoreSummaryMatchesAggregateSink(t *testing.T) {
	s := smallSession(t)
	store := NewStore()
	stream, err := s.Run(context.Background(), censor.Campaign{
		Domains:      s.PBWDomains()[:12],
		Measurements: []censor.Measurement{censor.DNS(), censor.HTTP()},
	}, censor.WithVantages("Airtel", "Idea", "MTNL"), censor.WithWorkers(4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	agg := censor.NewAggregateSink()
	sink := store.Begin("small", "test")
	if err := stream.Drain(agg, sink); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	text, ok := store.SummaryText(sink.Run())
	if !ok {
		t.Fatal("store lost the run")
	}
	if !bytes.Equal([]byte(text), []byte(agg.Summary())) {
		t.Fatalf("store summary diverged from drained AggregateSink:\n--- store ---\n%s\n--- sink ---\n%s",
			text, agg.Summary())
	}
	if text == "" || !bytes.Contains([]byte(text), []byte("Airtel")) {
		t.Fatalf("summary looks empty: %q", text)
	}
}

// batchRes builds a mixed-key result set: several vantages and
// measurements so batches cross ring (and shard) boundaries.
func batchRes(n int) []censor.Result {
	vantages := []string{"Airtel", "Idea", "Vodafone"}
	measurements := []string{"dns", "http"}
	out := make([]censor.Result, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, res(vantages[i%len(vantages)], measurements[(i/3)%len(measurements)],
			fmt.Sprintf("d%03d.com", i), i%4 == 0))
	}
	return out
}

// TestStoreWriteBatchMatchesWrite pins the batch-ingest contract: a run
// fed through WriteBatch (in uneven, key-crossing chunks) is
// indistinguishable — results, sequence order, info row, summary — from
// the same results fed one Write at a time.
func TestStoreWriteBatchMatchesWrite(t *testing.T) {
	results := batchRes(60)

	single := NewStore(withClock(newFakeClock().Now))
	ss := single.Begin("s", "test")
	for _, r := range results {
		if err := ss.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	ss.Flush()

	batched := NewStore(withClock(newFakeClock().Now))
	bs := batched.Begin("s", "test")
	for start := 0; start < len(results); {
		end := start + 7 // uneven chunks: batches straddle key groups
		if end > len(results) {
			end = len(results)
		}
		if err := bs.WriteBatch(results[start:end]); err != nil {
			t.Fatalf("WriteBatch: %v", err)
		}
		start = end
	}
	bs.Flush()

	sr, br := single.Results(Query{}), batched.Results(Query{})
	if len(sr) != len(results) || len(br) != len(results) {
		t.Fatalf("retained %d / %d results, want %d", len(sr), len(br), len(results))
	}
	for i := range sr {
		if !reflect.DeepEqual(sr[i], br[i]) {
			t.Fatalf("result %d diverged:\nwrite:      %+v\nwritebatch: %+v", i, sr[i], br[i])
		}
	}
	si, _ := single.Run(ss.Run())
	bi, _ := batched.Run(bs.Run())
	if si != bi {
		t.Errorf("run info diverged:\nwrite:      %+v\nwritebatch: %+v", si, bi)
	}
	st, _ := single.SummaryText(ss.Run())
	bt, _ := batched.SummaryText(bs.Run())
	if st != bt {
		t.Errorf("summary diverged:\n--- write ---\n%s\n--- writebatch ---\n%s", st, bt)
	}
	if ss, bs := single.Stats(), batched.Stats(); ss != bs {
		t.Errorf("stats diverged: %+v vs %+v", ss, bs)
	}
}

// TestStoreWriteBatchAfterFlush mirrors the Write-after-Flush guard on
// the batch path.
func TestStoreWriteBatchAfterFlush(t *testing.T) {
	store := NewStore()
	sink := store.Begin("s", "test")
	if err := sink.WriteBatch(batchRes(3)); err != nil {
		t.Fatalf("WriteBatch: %v", err)
	}
	sink.Flush()
	if err := sink.WriteBatch(batchRes(3)); err == nil {
		t.Fatal("WriteBatch after Flush succeeded, want error")
	}
	if st := store.Stats(); st.Ingested != 3 {
		t.Errorf("Ingested = %d, want 3", st.Ingested)
	}
}

// TestStoreConcurrentBatchIngest exercises the sharded write path the
// way censord's batched drains do: several runs batch-ingesting at once
// while queries interleave, with counters checked at the end.
func TestStoreConcurrentBatchIngest(t *testing.T) {
	store := NewStore(WithRingSize(64))
	const writers, batches, perBatch = 4, 25, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := store.Begin(fmt.Sprintf("s%d", w), "test")
			chunk := batchRes(perBatch)
			for i := 0; i < batches; i++ {
				if err := sink.WriteBatch(chunk); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				store.Results(Query{Scenario: fmt.Sprintf("s%d", w), Latest: 5})
			}
			sink.Flush()
		}(w)
	}
	wg.Wait()
	st := store.Stats()
	if want := uint64(writers * batches * perBatch); st.Ingested != want {
		t.Errorf("Ingested = %d, want %d", st.Ingested, want)
	}
	if st.Open != 0 {
		t.Errorf("Open = %d, want 0", st.Open)
	}
	// Sequence numbers must be unique and the per-run tallies complete.
	seen := map[uint64]bool{}
	for _, r := range store.Results(Query{}) {
		if seen[r.Seq] {
			t.Fatalf("duplicate Seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
	for _, info := range store.Runs() {
		if info.Results != batches*perBatch {
			t.Errorf("run %d rolled up %d results, want %d", info.Run, info.Results, batches*perBatch)
		}
	}
}

func TestSchedulerRunOnce(t *testing.T) {
	store := NewStore()
	sched, err := NewScheduler(context.Background(), store, Job{
		Scenario:  censor.MustLookupScenario("small"),
		Campaign:  censor.Campaign{Measurements: []censor.Measurement{censor.DNS()}},
		DomainCap: 2,
		Workers:   2,
		Options:   []censor.Option{censor.WithVantages("Airtel", "Idea")},
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	info, err := sched.RunOnce(context.Background(), "small")
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if !info.Done || info.Results != 4 || info.Scenario != "small" || info.Source != "api" {
		t.Errorf("run info = %+v, want 4 results (2 vantages x 1 measurement x 2 domains)", info)
	}
	if _, err := sched.RunOnce(context.Background(), "nope"); err == nil {
		t.Error("RunOnce accepted an unknown job")
	}
}

func TestSchedulerCadenceAndShutdown(t *testing.T) {
	store := NewStore()
	sched, err := NewScheduler(context.Background(), store, Job{
		Scenario:  censor.MustLookupScenario("small"),
		Campaign:  censor.Campaign{Measurements: []censor.Measurement{censor.DNS()}},
		DomainCap: 2,
		Every:     30 * time.Millisecond,
		Jitter:    5 * time.Millisecond,
		Workers:   2,
		Options:   []censor.Option{censor.WithVantages("Airtel")},
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	if err := sched.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	runs := store.Runs()
	if len(runs) < 2 {
		t.Fatalf("scheduler recorded %d runs in 600ms at 30ms cadence, want >= 2", len(runs))
	}
	for _, r := range runs {
		if r.Scenario != "small" || r.Source != "scheduler" {
			t.Errorf("scheduled run mis-labelled: %+v", r)
		}
		// Every run either completed (2 results) or was the final one cut
		// by shutdown (Err records the cancellation).
		if r.Done && r.Err == "" && r.Results != 2 {
			t.Errorf("complete run has %d results, want 2: %+v", r.Results, r)
		}
	}
}

func TestSchedulerValidation(t *testing.T) {
	store := NewStore()
	if _, err := NewScheduler(context.Background(), store); err == nil {
		t.Error("NewScheduler accepted zero jobs")
	}
	if _, err := NewScheduler(context.Background(), nil, Job{}); err == nil {
		t.Error("NewScheduler accepted a nil store")
	}
	if _, err := NewScheduler(context.Background(), store, Job{}); err == nil {
		t.Error("NewScheduler accepted a nameless job")
	}
	small := censor.MustLookupScenario("small")
	if _, err := NewScheduler(context.Background(), store,
		Job{Scenario: small}, Job{Scenario: small}); err == nil {
		t.Error("NewScheduler accepted duplicate job names")
	}
	bad := small
	bad.ISPs = nil
	if _, err := NewScheduler(context.Background(), store, Job{Name: "bad", Scenario: bad}); err == nil {
		t.Error("NewScheduler accepted an invalid scenario")
	}
}
