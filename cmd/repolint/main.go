// Command repolint runs the repository's custom analyzer suite — the
// mechanical form of the contracts the simulator's tests can only spot-check:
//
//	simdeterminism  no wall clocks, global math/rand, or map-order
//	                scheduling/output in the deterministic sim packages
//	hotpathalloc    no per-call allocation patterns in //repolint:hotpath funcs
//	timerbyvalue    no *sim.Timer anywhere; the handle is value-only
//	sinkcontract    no goroutines or package-level mutation in Sink.Write
//	apisurface      no repro/internal types in the public censor, monitor,
//	                and netbridge surfaces
//	bridgeboundary  sim-package calls in bridge packages only from
//	                //repolint:pump functions
//
// Usage:
//
//	go run ./cmd/repolint [flags] [packages]
//
// Packages default to ./... relative to the current directory, which must
// be inside the module. Exit status is 1 when any finding survives the
// //repolint:allow waivers (stale waivers are findings too), 2 on usage or
// load errors.
//
// The -vet flag additionally runs the curated go vet subset the tree is
// kept clean under, so CI needs a single lint entry point.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/apisurface"
	"repro/internal/analysis/bridgeboundary"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/simdeterminism"
	"repro/internal/analysis/sinkcontract"
	"repro/internal/analysis/timerbyvalue"
)

// suite is every analyzer repolint knows, in output order.
var suite = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	hotpathalloc.Analyzer,
	timerbyvalue.Analyzer,
	sinkcontract.Analyzer,
	apisurface.Analyzer,
	bridgeboundary.Analyzer,
}

// vetChecks is the curated go vet subset run under -vet: the analyses
// with near-zero false-positive rates on this tree.
var vetChecks = []string{
	"-atomic", "-bools", "-buildtag", "-copylocks", "-loopclosure",
	"-lostcancel", "-nilfunc", "-printf", "-stdmethods", "-unreachable",
	"-unusedresult",
}

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	vet := flag.Bool("vet", false, "also run the curated go vet subset")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s (key %q) %s\n", a.Name, a.Key, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := analysis.ExpandPatterns(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		return 2
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "repolint: no packages match", strings.Join(patterns, " "))
		return 2
	}

	loader := analysis.NewLoader()
	findings := 0
	for _, tgt := range targets {
		pkg, err := loader.Load(tgt.Dir, tgt.PkgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d.String())
		}
		findings += len(diags)
	}

	if *vet {
		if code := runVet(patterns); code != 0 {
			return code
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runVet shells out to the curated go vet subset over the same patterns.
func runVet(patterns []string) int {
	args := append(append([]string{"vet"}, vetChecks...), patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return 1
		}
		fmt.Fprintln(os.Stderr, "repolint: go vet:", err)
		return 2
	}
	return 0
}
