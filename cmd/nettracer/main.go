// Command nettracer fingerprints censoring middleboxes through the
// public censor.Fingerprint measurement: inside a chosen ISP it measures
// a censored domain — iterative tracer localization, wiretap vs
// interceptive classification, statefulness, visibility and injection
// signature — then runs the DNS-variant fingerprint in a DNS-poisoning
// ISP to show the resolver-poisoning-not-injection verdict of §3.2.
//
// Usage:
//
//	nettracer [-isp Idea] [-quick]
//
// Note: at the reduced scale the wiretap ISPs (Airtel, Jio) may censor no
// client→site paths at all — their boxes sit on paths toward other
// destinations; use the interceptive ISPs or drop -quick=true for them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/censor"
	"repro/internal/websim"
)

func main() {
	ispName := flag.String("isp", "Idea", "ISP to trace inside (Airtel, Idea, Vodafone, Jio)")
	quick := flag.Bool("quick", true, "use the reduced world")
	flag.Parse()

	world := "paper-2018"
	if *quick {
		world = "small"
	}
	ctx := context.Background()
	sess, err := censor.NewSession(ctx,
		censor.WithScenario(censor.MustLookupScenario(world)), censor.WithVantages(*ispName, "MTNL"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettracer: %v\n", err)
		os.Exit(1)
	}
	w := sess.World()
	isp := w.ISP(*ispName)

	// Pick a censored domain from the ISP's own list (measurement-only
	// knowledge would come from a detection sweep; the list makes the
	// demo fast).
	var domain string
	for _, d := range isp.HTTPList {
		site, ok := w.Catalog.Site(d)
		if !ok || site.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
			domain = d
			break
		}
	}
	if domain == "" {
		fmt.Printf("no censored site path from inside %s at this scale (wiretap boxes sit on other paths); try -isp Idea or -quick=false\n", *ispName)
		return
	}

	fmt.Printf("== fingerprinting the middlebox censoring %s in %s ==\n", domain, *ispName)
	results, err := sess.Measure(ctx, *ispName, censor.Fingerprint(), domain)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettracer: %v\n", err)
		os.Exit(1)
	}
	printFingerprint(results[0])

	// DNS variant, against a DNS-censoring ISP.
	mtnl := w.ISP("MTNL")
	var victim string
	for _, d := range mtnl.DNSList {
		if mtnl.Resolvers[0].PoisonsDomain(d) {
			victim = d
			break
		}
	}
	if victim == "" {
		return
	}
	fmt.Printf("\n== DNS fingerprint variant (MTNL resolver, %s) ==\n", victim)
	results, err = sess.Measure(ctx, "MTNL", censor.Fingerprint(), victim)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettracer: %v\n", err)
		os.Exit(1)
	}
	r := results[0]
	det, ok := censor.DetailAs[censor.FingerprintDetail](r)
	if !ok || !det.DNSPoisoned {
		fmt.Println("  no DNS manipulation observed")
		return
	}
	fmt.Printf("  resolver at hop %d; first manipulated answer at hop %d\n", det.ResolverHop, det.AnswerHop)
	if det.DNSInjected {
		fmt.Println("  verdict: on-path DNS injection")
	} else {
		fmt.Println("  verdict: resolver poisoning (answers only from the last hop, as the paper found)")
	}
}

// printFingerprint renders one fingerprint result's detail.
func printFingerprint(r censor.Result) {
	if !r.Blocked {
		fmt.Printf("  %s: no censorship observed (error=%q)\n", r.Domain, r.Error)
		return
	}
	det, ok := censor.DetailAs[censor.FingerprintDetail](r)
	if !ok {
		fmt.Printf("  %s: blocked (mechanism=%s) but no fingerprint detail\n", r.Domain, r.Mechanism)
		return
	}
	fmt.Printf("  mechanism:        %s\n", r.Mechanism)
	fmt.Printf("  box type:         %s\n", det.BoxType)
	switch {
	case det.Covert:
		fmt.Println("  visibility:       covert (bare forged RST)")
	case det.Overt:
		fmt.Printf("  visibility:       overt (notification page, signature=%q)\n", det.SignatureISP)
	}
	if det.CensorHop > 0 {
		fmt.Printf("  located at hop:   %d of %d (iterative tracer)\n", det.CensorHop, det.PathHops)
	}
	if det.StatefulChecked {
		fmt.Printf("  stateful:         %v (handshake required before the trigger fires)\n", det.Stateful)
	}
	if det.IPID != 0 {
		fmt.Printf("  IP-ID signature:  %d on injected packets\n", det.IPID)
	}
}
