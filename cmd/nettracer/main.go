// Command nettracer demonstrates the Iterative Network Tracer (Figure 1)
// inside a chosen ISP: plain traceroute to a censored site, then the
// per-TTL crafted-GET sweep that locates the censoring middlebox, and the
// DNS-variant trace that distinguishes resolver poisoning from on-path
// injection.
//
// Usage:
//
//	nettracer [-isp Airtel] [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/censor"
	"repro/internal/experiments"
	"repro/internal/probe"
	"repro/internal/websim"
)

func main() {
	ispName := flag.String("isp", "Airtel", "ISP to trace inside (Airtel, Idea, Vodafone, Jio)")
	quick := flag.Bool("quick", true, "use the reduced world")
	flag.Parse()

	scale := censor.ScalePaper
	if *quick {
		scale = censor.ScaleSmall
	}
	sess, err := censor.NewSession(context.Background(),
		censor.WithScale(scale), censor.WithVantages(*ispName, "MTNL"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "nettracer: %v\n", err)
		os.Exit(1)
	}
	w := sess.World()
	isp := w.ISP(*ispName)

	// Find a censored (domain, destination) by probing the ISP's own
	// blocked list against site addresses (measurement-only knowledge
	// would come from a detection sweep; the list makes the demo fast).
	var domain string
	var dst = isp.Client.Addr() // placeholder
	for _, d := range isp.HTTPList {
		site, ok := w.Catalog.Site(d)
		if !ok || site.Kind != websim.KindNormal {
			continue
		}
		addr := site.Addr(websim.RegionIN)
		if blocked, _ := w.HTTPTruthOnPath(isp.Client, addr, d); blocked {
			domain, dst = d, addr
			break
		}
	}
	if domain == "" {
		// Destination-agnostic fallback: any Alexa address.
		for _, a := range w.Catalog.Alexa {
			for _, d := range isp.HTTPList {
				if blocked, _ := w.HTTPTruthOnPath(isp.Client, a.Addr(websim.RegionUS), d); blocked {
					domain, dst = d, a.Addr(websim.RegionUS)
					break
				}
			}
			if domain != "" {
				break
			}
		}
	}
	if domain == "" {
		fmt.Println("no censored path found from this client")
		return
	}

	fmt.Printf("== plain traceroute to %v (censored domain: %s) ==\n", dst, domain)
	tr := probe.Traceroute(isp.Client, dst, 30, 300*time.Millisecond)
	for _, h := range tr.Hops {
		if h.Asterisk {
			fmt.Printf("  %2d  *\n", h.TTL)
		} else {
			fmt.Printf("  %2d  %v\n", h.TTL, h.Addr)
		}
	}
	fmt.Printf("  %2d  destination (n=%d)\n\n", tr.N, tr.N)

	fmt.Println("== iterative network tracer (crafted GETs with increasing TTL) ==")
	it := probe.IterativeTraceHTTP(isp.Client, dst, domain, 3*time.Second)
	fmt.Print(experiments.RenderFigure1(&experiments.Figure1Result{ISP: isp.Name, Domain: domain, Trace: it}))

	// DNS variant, against a DNS-censoring ISP.
	mtnl := w.ISP("MTNL")
	var victim string
	for _, d := range mtnl.DNSList {
		if mtnl.Resolvers[0].PoisonsDomain(d) {
			victim = d
			break
		}
	}
	fmt.Printf("\n== DNS tracer variant (MTNL resolver, %s) ==\n", victim)
	dt := probe.IterativeTraceDNS(mtnl.Client, mtnl.DefaultResolver, victim, time.Second)
	fmt.Printf("  resolver at hop %d; first manipulated answer at hop %d\n", dt.ResolverHop, dt.AnswerHop)
	if dt.Injected {
		fmt.Println("  verdict: on-path DNS injection")
	} else {
		fmt.Println("  verdict: resolver poisoning (answers only from the last hop, as the paper found)")
	}
}
