// Command censord is the continuous censorship-measurement observatory:
// a long-running daemon that schedules recurring campaigns on a
// simulated world, stores their results in the bounded in-memory monitor
// store, and serves them over HTTP.
//
// On startup it runs one campaign synchronously — so /v1/summary has
// data the moment the listener is up — then serves; with -every > 0 the
// scheduler keeps re-running the campaign on that cadence (plus
// -jitter). SIGINT/SIGTERM shut it down gracefully: in-flight campaigns
// are cancelled through their context, the HTTP server drains.
//
// Endpoints:
//
//	GET  /healthz                  liveness, build info, uptime, store counters
//	GET  /metrics                  Prometheus text exposition of all telemetry
//	GET  /debug/vars               the same registry as expvar JSON
//	GET  /v1/scenarios             the scenario preset registry
//	GET  /v1/runs                  retained runs
//	POST /v1/campaigns             trigger a run now ({"job":"small"})
//	GET  /v1/results?vantage=...   filtered results, JSONL
//	POST /v1/results?scenario=...  ingest a JSONL batch (censorscan -push)
//	GET  /v1/summary[?format=text] per-vantage aggregates
//	GET  /v1/delta?from=N[&to=M]   blocked-domain churn between runs
//	GET  /debug/pprof/...          profiling (only with -pprof)
//
// Usage:
//
//	censord -scenario small
//	censord -scenario small -every 5m -jitter 30s -workers 8
//	censord -scenario my_world.json -measure dns,http -domains 64
//	curl -s localhost:8080/v1/summary?format=text
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/censor"
	"repro/internal/cliutil"
	"repro/monitor"
	"repro/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
	scenario := flag.String("scenario", "small", "world scenario: a registered preset name or a JSON spec file")
	every := flag.Duration("every", 0, "re-run the campaign on this cadence (0 = startup run + on-demand only)")
	jitter := flag.Duration("jitter", 0, "uniform random extra delay added to each scheduled run")
	workers := flag.Int("workers", 4, "campaign worker pool size")
	domains := flag.Int("domains", 16, "cap each campaign to the first N PBW domains (0 = all)")
	measure := flag.String("measure", "dns,http", "comma-separated detector names (empty = all registered)")
	isps := flag.String("isps", "", "comma-separated vantage ISPs (default: the scenario's vantage set)")
	ringSize := flag.Int("ring", 512, "per-(scenario,vantage,measurement) result ring size")
	runCap := flag.Int("runs", 64, "how many runs keep their roll-ups")
	timeout := flag.Duration("timeout", 3*time.Second, "per-probe network timeout")
	seed := flag.Int64("seed", 0, "override the world seed (0 = scenario default)")
	load := flag.String("load", "", "background-traffic overlay for the world, e.g. users=10000 or users=10000,capacity=2048")
	withPprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default)")
	flag.Parse()

	if err := run(*listen, *scenario, *every, *jitter, *workers, *domains,
		*measure, *isps, *ringSize, *runCap, *timeout, *seed, *load, *withPprof); err != nil {
		fmt.Fprintf(os.Stderr, "censord: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, scenario string, every, jitter time.Duration, workers, domainCap int,
	measure, isps string, ringSize, runCap int, timeout time.Duration, seed int64, load string, withPprof bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	world, _, err := cliutil.ReadScenario(scenario)
	if err != nil {
		return err
	}
	measurements, err := cliutil.PickMeasurements(measure)
	if err != nil {
		return err
	}
	// One process-wide registry: campaign telemetry (censor.WithTelemetry),
	// store counters and the /metrics endpoint all share it, so a single
	// scrape sees the whole stack — merged sim-side sums included.
	reg := obs.NewRegistry()
	opts := []censor.Option{censor.WithTimeout(timeout), censor.WithTelemetry(reg)}
	if seed != 0 {
		world.Seed = seed
	}
	if vantages := cliutil.SplitList(isps); len(vantages) > 0 {
		opts = append(opts, censor.WithVantages(vantages...))
	}

	store := monitor.NewStore(monitor.WithRingSize(ringSize), monitor.WithRunRetention(runCap),
		monitor.WithTelemetry(reg))
	job := monitor.Job{
		Scenario:  world,
		Campaign:  censor.Campaign{Measurements: measurements},
		DomainCap: domainCap,
		Load:      load,
		Every:     every,
		Jitter:    jitter,
		Workers:   workers,
		Options:   opts,
	}

	start := time.Now()
	sched, err := monitor.NewScheduler(ctx, store, job)
	if err != nil {
		return err
	}
	name := sched.Jobs()[0]
	fmt.Fprintf(os.Stderr, "censord: world %q built in %v\n", name, time.Since(start))

	// Startup campaign: synchronous, so the first /v1/summary never 404s.
	start = time.Now()
	info, err := sched.RunOnce(ctx, name)
	if err != nil {
		return fmt.Errorf("startup campaign: %w", err)
	}
	fmt.Fprintf(os.Stderr, "censord: startup run %d: %d results (%d blocked) in %v\n",
		info.Run, info.Results, info.Blocked, time.Since(start))

	if every > 0 {
		go sched.Run(ctx) //nolint:errcheck // exits with ctx at shutdown
	}

	var handler http.Handler = monitor.NewHandler(store, sched, monitor.WithMetrics(reg))
	if withPprof {
		// Profiling endpoints for live perf work against a running
		// observatory; opt-in because they expose internals.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: listen, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "censord: listening on %s\n", listen)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "censord: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
