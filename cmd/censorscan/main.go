// Command censorscan runs the paper's full evaluation against the
// simulated Indian Internet and prints each table/figure in the same shape
// the paper reports.
//
// Usage:
//
//	censorscan [-quick] [-only table1,table2,table3,figure1,figure2,figure5,section5]
//	censorscan -only figure2 -series        # dump the full Figure 2 series
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced world (fast smoke run)")
	only := flag.String("only", "", "comma-separated experiment list (default: all)")
	series := flag.Bool("series", false, "dump full per-website series for figures 2 and 5")
	flag.Parse()

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	start := time.Now()
	s := experiments.NewSuite(opt)
	fmt.Fprintf(os.Stderr, "world built in %v (%v)\n", time.Since(start), s.World.Net)

	if run("table1") {
		stage(func() { fmt.Print(experiments.RenderTable1(s.Table1(experiments.OONITargets))) })
	}
	if run("table2") {
		stage(func() { fmt.Print(experiments.RenderTable2(s.Table2())) })
	}
	if run("figure5") {
		stage(func() {
			rows := s.Figure5()
			fmt.Print(experiments.RenderFigure5(rows))
			if *series {
				dumpSeries(rows)
			}
		})
	}
	if run("figure2") {
		stage(func() {
			rows := s.Figure2()
			fmt.Print(experiments.RenderFigure2(rows))
			if *series {
				for _, r := range rows {
					fmt.Printf("# %s series (domain, %% of poisoned resolvers)\n", r.ISP)
					printSeries(r.Scan.Series)
				}
			}
		})
	}
	if run("table3") {
		stage(func() { fmt.Print(experiments.RenderTable3(s.Table3())) })
	}
	if run("figure1") {
		stage(func() { fmt.Print(experiments.RenderFigure1(s.Figure1())) })
	}
	if run("figure3") {
		stage(func() { fmt.Print(experiments.RenderFigureTrace("Figure 3: interceptive middlebox", s.Figure3())) })
	}
	if run("figure4") {
		stage(func() { fmt.Print(experiments.RenderFigureTrace("Figure 4: wiretap middlebox", s.Figure4())) })
	}
	if run("section31") {
		stage(func() {
			fmt.Print(experiments.RenderSection31(s.Section31(experiments.OONITargets)))
		})
	}
	if run("section5") {
		stage(func() { fmt.Print(experiments.RenderSection5(s.Section5())) })
	}
}

func stage(fn func()) {
	t := time.Now()
	fn()
	fmt.Fprintf(os.Stderr, "[%v]\n", time.Since(t))
	fmt.Println()
}

func dumpSeries(rows []experiments.Figure5Row) {
	for _, r := range rows {
		fmt.Printf("# %s series (domain, %% of poisoned paths)\n", r.ISP)
		printSeries(r.Series)
	}
}

func printSeries(series map[string]float64) {
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s\t%.1f\n", k, series[k])
	}
}
