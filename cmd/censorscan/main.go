// Command censorscan runs the paper's evaluation against the simulated
// Indian Internet through the public censor API.
//
// The default mode prints each table/figure in the same shape the paper
// reports. Campaign mode instead fans detectors out across vantage ISPs
// on a worker pool and streams one uniform record per (vantage,
// measurement, domain) to stdout — as JSONL, CSV, or an aggregated
// summary. Detectors are resolved by name from the censor registry, so
// every registered measurement (built-in or external) is reachable via
// -measure. Any campaign flag implies -campaign.
//
// Worlds come from scenarios: -scenario accepts any registered preset
// name (-list-scenarios shows them) or a JSON spec file, so campaigns run
// on worlds the paper never measured — or on worlds the user invented.
//
// Usage:
//
//	censorscan [-quick] [-only table1,table2,table3,figure1,figure2,figure5,section5]
//	censorscan -only figure2 -series        # dump the full Figure 2 series
//	censorscan -campaign -workers 4 -domains 100 > results.jsonl
//	censorscan -isps MTNL,BSNL -measure dns,https -format csv
//	censorscan -quick -measure evasion -domains 20 -format summary
//	censorscan -list-scenarios
//	censorscan -scenario dns-only -measure dns,http -format summary
//	censorscan -scenario my_world.json -workers 8 > results.jsonl
//	censorscan -quick -measure dns -push http://localhost:8080 > results.jsonl
//	censorscan -quick -campaign -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
//	censorscan -quick -measure dns,http -domains 10 -pcap captures/ > results.jsonl
//	censorscan -quick -measure dns,http -trace trace.json > results.jsonl
//	censorscan -quick -measure dns -metrics-dump > results.jsonl
//
// -trace writes the campaign's worker/merger timeline as a Chrome
// trace_event file (open it in Perfetto or chrome://tracing);
// -metrics-dump prints the campaign's full telemetry registry to stderr
// in Prometheus text format after the run.
//
// -push POSTs the finished campaign's JSONL to a running censord
// (cmd/censord) so batch runs land in the observatory's store.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/censor"
	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/obs"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced world (fast smoke run)")
	scenario := flag.String("scenario", "", "world scenario: a registered preset name or a JSON spec file (see -list-scenarios)")
	listScenarios := flag.Bool("list-scenarios", false, "list the registered scenario presets and exit")
	only := flag.String("only", "", "comma-separated experiment list (default: all)")
	series := flag.Bool("series", false, "dump full per-website series for figures 2 and 5")
	campaign := flag.Bool("campaign", false, "stream a measurement campaign instead of rendering tables")
	workers := flag.Int("workers", 1, "campaign worker pool size (output is identical for any value)")
	isps := flag.String("isps", "", "comma-separated vantage ISPs (default: the nine studied ISPs)")
	measure := flag.String("measure", "", "comma-separated detector names from the registry (default: all registered)")
	domains := flag.Int("domains", 0, "cap the campaign to the first N PBW domains (0 = all)")
	load := flag.String("load", "", "background-traffic overlay for the world, e.g. users=10000 or users=10000,capacity=2048")
	format := flag.String("format", "jsonl", "campaign output format: jsonl, csv, or summary")
	push := flag.String("push", "", "POST the finished campaign's JSONL results to a running censord at this base URL")
	timeout := flag.Duration("timeout", 3*time.Second, "per-probe network timeout")
	seed := flag.Int64("seed", 0, "override the world seed (0 = calibrated default)")
	pcapDir := flag.String("pcap", "", "write one .pcap per campaign task (vantage client's packets) into this directory")
	tracePath := flag.String("trace", "", "write the campaign's worker/merge timeline to this file as Chrome trace_event JSON")
	metricsDump := flag.Bool("metrics-dump", false, "print the campaign's telemetry registry to stderr (Prometheus text) after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	ctx := context.Background()

	if *listScenarios {
		printScenarios(os.Stdout)
		return
	}

	// Mode resolution: any campaign flag implies campaign mode; table-mode
	// flags conflict with it. Everything is validated before the world is
	// built, so a typo fails instantly even at paper scale.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["quick"] && set["scenario"] {
		fmt.Fprintln(os.Stderr, "censorscan: -quick and -scenario both pick the world; use one")
		os.Exit(2)
	}
	for _, name := range []string{"workers", "isps", "measure", "domains", "format", "push", "load", "pcap", "trace", "metrics-dump"} {
		if !set[name] {
			continue
		}
		if set["campaign"] && !*campaign {
			fmt.Fprintf(os.Stderr, "censorscan: -%s is a campaign flag; it conflicts with -campaign=false\n", name)
			os.Exit(2)
		}
		*campaign = true
	}
	if *campaign {
		for _, name := range []string{"only", "series"} {
			if set[name] {
				fmt.Fprintf(os.Stderr, "censorscan: -%s is a table-mode flag; drop the campaign flags\n", name)
				os.Exit(2)
			}
		}
	}

	switch *format {
	case "jsonl", "csv", "summary":
	default:
		fmt.Fprintf(os.Stderr, "censorscan: unknown -format %q (available: jsonl, csv, summary)\n", *format)
		os.Exit(2)
	}
	measurements, err := cliutil.PickMeasurements(*measure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "censorscan: %v\n", err)
		os.Exit(2)
	}
	world, preset, err := pickScenario(*scenario, *quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "censorscan: %v\n", err)
		os.Exit(2)
	}
	if *load != "" {
		world, err = censor.ApplyLoad(world, *load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "censorscan: %v\n", err)
			os.Exit(2)
		}
	}
	// Table mode regenerates the paper's evaluation, which only the two
	// paper presets calibrate (a JSON spec file never qualifies, whatever
	// its name field claims). The preset also decides the quick/paper
	// experiment options below.
	if !*campaign && set["scenario"] {
		if !preset || (world.Name != "paper-2018" && world.Name != "small") {
			fmt.Fprintf(os.Stderr, "censorscan: table mode needs the paper world; combine -scenario %s with campaign flags (-measure, -workers, ...)\n", *scenario)
			os.Exit(2)
		}
	}
	reduced := *quick || world.Name == "small"

	// Profiling hooks, so perf work on the measurement engine is
	// profile-driven rather than guessed: the profiles wrap everything from
	// the world build to the last result. They are written on the normal
	// return paths (error exits abandon them).
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "censorscan: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "censorscan: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "censorscan: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "censorscan: -memprofile: %v\n", err)
			}
		}()
	}

	opts := []censor.Option{censor.WithScenario(world), censor.WithTimeout(*timeout)}
	if *seed != 0 {
		opts = append(opts, censor.WithSeed(*seed))
	}
	if *pcapDir != "" {
		// WithPcap probes the directory when applied, so — like
		// -cpuprofile's os.Create above — an unusable path fails here,
		// before the world build, not after a full campaign.
		opts = append(opts, censor.WithPcap(*pcapDir))
	}
	if vantages := cliutil.SplitList(*isps); len(vantages) > 0 {
		opts = append(opts, censor.WithVantages(vantages...))
	}

	start := time.Now()
	// NewSession validates vantages against the world's profile list
	// before paying for the build, listing the available ISPs on a typo.
	sess, err := censor.NewSession(ctx, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "censorscan: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "world built in %v (%v)\n", time.Since(start), sess.World().Net)

	if *campaign {
		// Turn Ctrl-C into graceful stream cancellation — installed only
		// now, so the build above and table mode below keep the default
		// kill-on-SIGINT (neither observes a context).
		ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
		defer stop()
		if err := runCampaign(ctx, sess, world.Name, *workers, measurements, *domains, *format, *push, *tracePath, *metricsDump); err != nil {
			fmt.Fprintf(os.Stderr, "censorscan: %v\n", err)
			os.Exit(1)
		}
		return
	}
	runTables(sess, reduced, *only, *series)
}

// pickScenario resolves the world spec: a registered preset name, a
// JSON spec file (both via the shared cliutil resolver), or the scale
// flags' presets. preset reports whether the spec came from the
// registry (a JSON file never counts, whatever its name field claims).
func pickScenario(arg string, quick bool) (sc censor.Scenario, preset bool, err error) {
	if arg == "" {
		if quick {
			return censor.MustLookupScenario("small"), true, nil
		}
		return censor.MustLookupScenario("paper-2018"), true, nil
	}
	return cliutil.ReadScenario(arg)
}

// printScenarios renders the preset registry.
func printScenarios(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NAME\tISPS\tPBWS\tDESCRIPTION")
	for _, name := range censor.Scenarios() {
		sc, _ := censor.LookupScenario(name)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", sc.Name, len(sc.ISPs), sc.PBWSites, sc.Description)
	}
	tw.Flush()
}

// runCampaign streams the uniform-record campaign to stdout in the
// requested format; with -push it additionally captures the JSONL form
// and POSTs it to a running censord, so batch runs land in the
// observatory's store as a queryable run.
func runCampaign(ctx context.Context, sess *censor.Session, scenario string, workers int, measurements []censor.Measurement, domainCap int, format, pushURL, tracePath string, metricsDump bool) error {
	pbw := sess.PBWDomains()
	if domainCap > 0 && domainCap < len(pbw) {
		pbw = pbw[:domainCap]
	}
	runOpts := []censor.Option{censor.WithWorkers(workers)}
	var reg *obs.Registry
	var tracer *obs.Tracer
	if metricsDump || tracePath != "" {
		// One registry for both exports: the trace flag alone still gets
		// telemetry, so a trace and a later -metrics-dump line up.
		reg = obs.NewRegistry()
		runOpts = append(runOpts, censor.WithTelemetry(reg))
	}
	if tracePath != "" {
		// Probe the path now, like -cpuprofile: fail before the campaign.
		tf, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %v", err)
		}
		defer tf.Close()
		tracer = obs.NewTracer(nil) // clock bound by WithTrace
		runOpts = append(runOpts, censor.WithTrace(tracer))
		defer func() {
			if err := tracer.WriteChromeTrace(tf); err != nil {
				fmt.Fprintf(os.Stderr, "censorscan: -trace: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "trace: %d spans written to %s\n", tracer.Len(), tracePath)
		}()
	}
	if metricsDump {
		defer func() {
			if err := reg.WritePrometheus(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "censorscan: -metrics-dump: %v\n", err)
			}
		}()
	}
	stream, err := sess.Run(ctx, censor.Campaign{
		Domains:      pbw,
		Measurements: measurements,
	}, runOpts...)
	if err != nil {
		return err
	}
	var pushBuf bytes.Buffer
	var sinks []censor.Sink
	var agg *censor.AggregateSink
	switch format {
	case "csv":
		sinks = append(sinks, censor.NewCSVSink(os.Stdout))
	case "summary":
		agg = censor.NewAggregateSink()
		sinks = append(sinks, agg)
	default:
		sinks = append(sinks, censor.NewJSONLSink(os.Stdout))
	}
	if pushURL != "" {
		sinks = append(sinks, censor.NewJSONLSink(&pushBuf))
	}
	if err := stream.Drain(sinks...); err != nil {
		return err
	}
	if agg != nil {
		fmt.Print(agg.Summary())
	}
	if pushURL != "" {
		return pushResults(ctx, pushURL, scenario, &pushBuf)
	}
	return nil
}

// pushResults POSTs a campaign's JSONL to censord's batch-ingest
// endpoint and reports the run the observatory recorded.
func pushResults(ctx context.Context, baseURL, scenario string, body io.Reader) error {
	u := strings.TrimSuffix(baseURL, "/") +
		"/v1/results?scenario=" + url.QueryEscape(scenario) + "&source=censorscan"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, body)
	if err != nil {
		return fmt.Errorf("push: %v", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("push: %v", err)
	}
	defer resp.Body.Close()
	reply, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("push: censord answered %s: %s", resp.Status, strings.TrimSpace(string(reply)))
	}
	fmt.Fprintf(os.Stderr, "pushed to %s: %s\n", baseURL, strings.TrimSpace(string(reply)))
	return nil
}

// runTables renders the paper's tables and figures via the suite.
func runTables(sess *censor.Session, quick bool, only string, series bool) {
	opt := experiments.DefaultOptions()
	if quick {
		opt = experiments.QuickOptions()
	}
	s := experiments.NewSuiteWith(sess, opt)

	want := map[string]bool{}
	if only != "" {
		for _, k := range cliutil.SplitList(only) {
			want[k] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	if run("table1") {
		stage(func() { fmt.Print(experiments.RenderTable1(s.Table1(experiments.OONITargets))) })
	}
	if run("table2") {
		stage(func() { fmt.Print(experiments.RenderTable2(s.Table2())) })
	}
	if run("figure5") {
		stage(func() {
			rows := s.Figure5()
			fmt.Print(experiments.RenderFigure5(rows))
			if series {
				dumpSeries(rows)
			}
		})
	}
	if run("figure2") {
		stage(func() {
			rows := s.Figure2()
			fmt.Print(experiments.RenderFigure2(rows))
			if series {
				for _, r := range rows {
					fmt.Printf("# %s series (domain, %% of poisoned resolvers)\n", r.ISP)
					printSeries(r.Scan.Series)
				}
			}
		})
	}
	if run("table3") {
		stage(func() { fmt.Print(experiments.RenderTable3(s.Table3())) })
	}
	if run("figure1") {
		stage(func() { fmt.Print(experiments.RenderFigure1(s.Figure1())) })
	}
	if run("figure3") {
		stage(func() { fmt.Print(experiments.RenderFigureTrace("Figure 3: interceptive middlebox", s.Figure3())) })
	}
	if run("figure4") {
		stage(func() { fmt.Print(experiments.RenderFigureTrace("Figure 4: wiretap middlebox", s.Figure4())) })
	}
	if run("section31") {
		stage(func() {
			fmt.Print(experiments.RenderSection31(s.Section31(experiments.OONITargets)))
		})
	}
	if run("section5") {
		stage(func() { fmt.Print(experiments.RenderSection5(s.Section5())) })
	}
}

func stage(fn func()) {
	t := time.Now()
	fn()
	fmt.Fprintf(os.Stderr, "[%v]\n", time.Since(t))
	fmt.Println()
}

func dumpSeries(rows []experiments.Figure5Row) {
	for _, r := range rows {
		fmt.Printf("# %s series (domain, %% of poisoned paths)\n", r.ISP)
		printSeries(r.Series)
	}
}

func printSeries(series map[string]float64) {
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s\t%.1f\n", k, series[k])
	}
}
