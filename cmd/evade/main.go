// Command evade demonstrates the §5 anti-censorship techniques through
// the public censor.Evasion measurement: for each censoring ISP it picks
// a few truly blocked domains (via the oracle, to keep the demo fast),
// measures them, and prints the per-technique success matrix plus the
// aggregated summary.
//
// Usage:
//
//	evade [-quick] [-n 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/censor"
	"repro/internal/websim"
)

func main() {
	quick := flag.Bool("quick", true, "use the reduced world")
	n := flag.Int("n", 3, "blocked domains per ISP to attack")
	flag.Parse()

	world := "paper-2018"
	if *quick {
		world = "small"
	}
	ctx := context.Background()
	sess, err := censor.NewSession(ctx, censor.WithScenario(censor.MustLookupScenario(world)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "evade: %v\n", err)
		os.Exit(1)
	}
	w := sess.World()
	agg := censor.NewAggregateSink()

	for _, name := range []string{"Airtel", "Idea", "Vodafone", "Jio"} {
		isp := w.ISP(name)
		var blocked []string
		for _, d := range isp.HTTPList {
			site, ok := w.Catalog.Site(d)
			if !ok || site.Kind != websim.KindNormal {
				continue
			}
			if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
				blocked = append(blocked, d)
			}
			if len(blocked) >= *n {
				break
			}
		}
		fmt.Printf("== %s (%s) — %d blocked domains ==\n", name, isp.Censor, len(blocked))
		results, err := sess.Measure(ctx, name, censor.Evasion(), blocked...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evade: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			agg.Write(r)
			fmt.Printf("  %s\n", r.Domain)
			if r.Error != "" {
				fmt.Printf("    measurement failed: %s\n", r.Error)
				continue
			}
			det, ok := censor.DetailAs[censor.EvasionDetail](r)
			if !ok {
				fmt.Printf("    not censored at baseline (mechanism=%q)\n", r.Mechanism)
				continue
			}
			for _, t := range det.Techniques {
				status := "evaded"
				if !t.Success {
					status = "still blocked"
				}
				fmt.Printf("    %-24s %s\n", t.Technique, status)
			}
		}
		fmt.Println()
	}

	for _, name := range []string{"MTNL", "BSNL"} {
		isp := w.ISP(name)
		var victim string
		for _, d := range isp.DNSList {
			site, ok := w.Catalog.Site(d)
			if ok && site.Kind == websim.KindNormal && isp.Resolvers[0].PoisonsDomain(d) {
				if tr := w.TruthFor(isp, d); !tr.HTTPFiltered {
					victim = d
					break
				}
			}
		}
		if victim == "" {
			continue
		}
		results, err := sess.Measure(ctx, name, censor.Evasion(), victim)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evade: %v\n", err)
			os.Exit(1)
		}
		r := results[0]
		agg.Write(r)
		success := false
		if det, ok := censor.DetailAs[censor.EvasionDetail](r); ok {
			for _, t := range det.Techniques {
				if t.Technique == "alternate-resolver" {
					success = t.Success
				}
			}
		}
		fmt.Printf("== %s (dns-poisoning) — %s via alternate-resolver: success=%v ==\n",
			name, victim, success)
	}

	fmt.Println()
	fmt.Print(agg.Summary())
}
