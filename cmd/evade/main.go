// Command evade demonstrates the §5 anti-censorship techniques against
// every censoring ISP in the simulated world, printing which technique
// defeated which middlebox type.
//
// Usage:
//
//	evade [-quick] [-n 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/censor"
	"repro/internal/anticensor"
	"repro/internal/websim"
)

func main() {
	quick := flag.Bool("quick", true, "use the reduced world")
	n := flag.Int("n", 3, "blocked domains per ISP to attack")
	flag.Parse()

	scale := censor.ScalePaper
	if *quick {
		scale = censor.ScaleSmall
	}
	sess, err := censor.NewSession(context.Background(), censor.WithScale(scale))
	if err != nil {
		fmt.Fprintf(os.Stderr, "evade: %v\n", err)
		os.Exit(1)
	}
	w := sess.World()

	for _, name := range []string{"Airtel", "Idea", "Vodafone", "Jio"} {
		isp := w.ISP(name)
		v := censor.MustVantage(sess, name)
		p := v.Probe()
		var blocked []string
		for _, d := range isp.HTTPList {
			site, ok := w.Catalog.Site(d)
			if !ok || site.Kind != websim.KindNormal {
				continue
			}
			if tr := w.TruthFor(isp, d); tr.HTTPFiltered {
				blocked = append(blocked, d)
			}
			if len(blocked) >= *n {
				break
			}
		}
		fmt.Printf("== %s (%s) — %d blocked domains ==\n", name, isp.Censor, len(blocked))
		for _, d := range blocked {
			fmt.Printf("  %s\n", d)
			for _, tech := range anticensor.AllTechniques {
				ok := false
				for r := 0; r < 3 && !ok; r++ {
					ok = anticensor.Evade(p, tech, d).Success
				}
				status := "evaded"
				if !ok {
					status = "still blocked"
				}
				fmt.Printf("    %-24s %s\n", tech, status)
			}
		}
		fmt.Println()
	}

	for _, name := range []string{"MTNL", "BSNL"} {
		isp := w.ISP(name)
		v := censor.MustVantage(sess, name)
		p := v.Probe()
		var victim string
		for _, d := range isp.DNSList {
			site, ok := w.Catalog.Site(d)
			if ok && site.Kind == websim.KindNormal && isp.Resolvers[0].PoisonsDomain(d) {
				if tr := w.TruthFor(isp, d); !tr.HTTPFiltered {
					victim = d
					break
				}
			}
		}
		if victim == "" {
			continue
		}
		at := anticensor.Evade(p, anticensor.TechAltResolver, victim)
		fmt.Printf("== %s (dns-poisoning) — %s via %s: success=%v ==\n",
			name, victim, anticensor.TechAltResolver, at.Success)
	}
}
