// Module tools pins the versions of external developer tooling (CI's
// staticcheck) without adding dependencies to the main module, which
// stays stdlib-only. It is a separate module so `go build ./...` and
// `go test ./...` at the repo root never resolve these; CI runs
// `go mod tidy` here (network) before installing the pinned tool.
module repro/tools

go 1.24

tool honnef.co/go/tools/cmd/staticcheck

require honnef.co/go/tools v0.6.1
