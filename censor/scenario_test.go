package censor

import (
	"bytes"
	"context"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// presetSession builds a session for a preset by name.
func presetSession(t *testing.T, name string, opts ...Option) *Session {
	t.Helper()
	sc, ok := LookupScenario(name)
	if !ok {
		t.Fatalf("preset %q not registered", name)
	}
	s, err := NewSession(context.Background(), append([]Option{WithScenario(sc)}, opts...)...)
	if err != nil {
		t.Fatalf("NewSession(%s): %v", name, err)
	}
	return s
}

// campaignJSONL digests a small fixed campaign on a session (nil domains:
// the first six PBWs).
func campaignJSONL(t *testing.T, s *Session, workers int, domains []string, opts ...Option) []byte {
	t.Helper()
	if domains == nil {
		domains = s.PBWDomains()
		if len(domains) > 6 {
			domains = domains[:6]
		}
	}
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      domains,
		Measurements: []Measurement{DNS(), HTTP()},
	}, append([]Option{WithWorkers(workers)}, opts...)...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := stream.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestScenarioPresetRoundTrip is the preset contract: every registered
// scenario survives JSON marshal → unmarshal → Validate with an identical
// world — same compiled config, and a byte-identical golden campaign.
func TestScenarioPresetRoundTrip(t *testing.T) {
	for _, name := range Scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc := MustLookupScenario(name)
			raw, err := json.Marshal(sc)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			var back Scenario
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("Validate after round trip: %v", err)
			}
			wantCfg, err := sc.lower().Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			gotCfg, err := back.lower().Compile()
			if err != nil {
				t.Fatalf("Compile after round trip: %v", err)
			}
			if !reflect.DeepEqual(gotCfg, wantCfg) {
				t.Fatal("compiled config changed across JSON round trip")
			}
			if !reflect.DeepEqual(back, sc) {
				t.Fatal("scenario value changed across JSON round trip")
			}
			if name == "paper-2018" && testing.Short() {
				t.Skip("golden campaign on the full-scale world skipped in -short")
			}
			orig, err := NewSession(context.Background(), WithScenario(sc))
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			rt, err := NewSession(context.Background(), WithScenario(back))
			if err != nil {
				t.Fatalf("NewSession(round-tripped): %v", err)
			}
			vantages := WithVantages(defaultVantages(sc)[:1]...)
			want := campaignJSONL(t, orig, 2, nil, vantages)
			got := campaignJSONL(t, rt, 2, nil, vantages)
			if !bytes.Equal(got, want) {
				t.Fatalf("golden campaign diverged across JSON round trip:\n--- original ---\n%s\n--- round-tripped ---\n%s", want, got)
			}
		})
	}
}

// TestScenarioRejection: invalid specs fail NewSession with the
// validation error, before any world is built.
func TestScenarioRejection(t *testing.T) {
	base := MustLookupScenario("small")
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"negative middlebox count", func(s *Scenario) { s.ISPs[0].Middleboxes = -1 }, "negative"},
		{"unknown transit provider", func(s *Scenario) { s.ISPs[4].Transits[0].Provider = "Hathway" }, "unknown transit provider"},
		{"consistency above 1", func(s *Scenario) { s.ISPs[0].Consistency = 1.01 }, "outside [0,1]"},
		{"dns consistency below 0", func(s *Scenario) { s.ISPs[4].DNSConsistency = -0.5 }, "outside [0,1]"},
		{"unknown mechanism", func(s *Scenario) { s.ISPs[0].Mechanism = "quantum" }, "unknown mechanism"},
		{"no ISPs", func(s *Scenario) { s.ISPs = nil }, "no ISPs"},
		{"vantage names no ISP", func(s *Scenario) { s.Vantages = []string{"Airtel", "Typo"} }, "names no ISP"},
		{"loss prob on interceptive", func(s *Scenario) { s.ISPs[1].WiretapLossProb = 0.3 }, "only wiretap boxes race"},
	}
	for _, tc := range cases {
		sc := base.Clone()
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want mention of %q", tc.name, err, tc.want)
		}
		_, err := NewSession(context.Background(), WithScenario(sc))
		if err == nil {
			t.Errorf("%s: NewSession accepted the invalid scenario", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: NewSession error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestScenarioRegistry covers registration semantics: lookups deep-copy,
// and programmer errors panic like the detector registry's.
func TestScenarioRegistry(t *testing.T) {
	a := MustLookupScenario("dns-only")
	a.ISPs[0].Name = "Mutated"
	b := MustLookupScenario("dns-only")
	if b.ISPs[0].Name == "Mutated" {
		t.Fatal("LookupScenario returned a shared copy")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { RegisterScenario(Scenario{}) })
	mustPanic("duplicate", func() { RegisterScenario(MustLookupScenario("small")) })
	invalid := MustLookupScenario("small")
	invalid.Name = "broken"
	invalid.ISPs[0].Consistency = 7
	mustPanic("invalid spec", func() { RegisterScenario(invalid) })
}

// TestScenarioVantages: a scenario's Vantages list is the campaign
// default; empty means all ISPs; WithVantages overrides.
func TestScenarioVantages(t *testing.T) {
	s := presetSession(t, "dns-only")
	if got, want := s.Vantages(), []string{"HeavyPoison", "LightPoison", "Honest"}; !reflect.DeepEqual(got, want) {
		t.Errorf("default vantages = %v, want all ISPs %v", got, want)
	}
	s = presetSession(t, "dns-only", WithVantages("Honest"))
	if got := s.Vantages(); !reflect.DeepEqual(got, []string{"Honest"}) {
		t.Errorf("WithVantages override = %v", got)
	}
	paper := MustLookupScenario("paper-2018")
	if !reflect.DeepEqual(paper.Vantages, StudyISPs) {
		t.Errorf("paper preset vantages = %v, want the nine study ISPs", paper.Vantages)
	}
}

// TestWithScaleShim: the deprecated WithScale is exactly the presets.
func TestWithScaleShim(t *testing.T) {
	//lint:ignore SA1019 the deprecated shim is exactly what this test pins
	s, err := NewSession(context.Background(), WithScale(ScaleSmall))
	if err != nil {
		t.Fatalf("NewSession(WithScale): %v", err)
	}
	if got := s.Scenario().Name; got != "small" {
		t.Errorf("WithScale(ScaleSmall) scenario = %q, want small", got)
	}
	if got, want := s.Vantages(), StudyISPs; !reflect.DeepEqual(got, want) {
		t.Errorf("WithScale vantages = %v, want %v", got, want)
	}
}

// TestPooledCampaignDeterminism is the pooling regression of the
// determinism contract, on a non-paper preset: workers=1 reuses one world
// for every task, workers=8 builds eight, and a fresh-world-per-task run
// is the pre-pooling reference — all three must be byte-identical. A
// Reset that leaks any engine, stack, server or middlebox state between
// tasks shows up here.
func TestPooledCampaignDeterminism(t *testing.T) {
	s := presetSession(t, "all-interceptive")
	// Measure a mix of untouched PBWs and domains actually on the dense
	// censor's blocklist, so the streams being compared carry censorship
	// (and with it middlebox state worth leaking).
	domains := append([]string(nil), s.PBWDomains()[:4]...)
	domains = append(domains, s.World().ISP("OvertDense").HTTPList...)
	if len(domains) > 10 {
		domains = domains[:10]
	}
	sequential := campaignJSONL(t, s, 1, domains)
	parallel := campaignJSONL(t, s, 8, domains)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("pooled campaign diverged between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			sequential, parallel)
	}
	fresh := campaignJSONL(t, s, 8, domains, withFreshReplicaWorlds())
	if !bytes.Equal(sequential, fresh) {
		t.Fatalf("pooled campaign diverged from fresh-world-per-task run:\n--- pooled ---\n%s\n--- fresh ---\n%s",
			sequential, fresh)
	}
	if !bytes.Contains(sequential, []byte(`"blocked":true`)) {
		t.Error("all-interceptive campaign observed no censorship at all")
	}
}

// TestPooledAllDetectorsDeterminism runs the full detector registry — the
// default campaign shape — through the pooled runner. The heavy detectors
// (fingerprint's tracer with its ICMP hooks and multi-minute virtual
// idles, evasion's packet filters, ooni's control fetches) leave the most
// runtime state behind, so this is the broadest leak check a Reset bug
// could fail.
func TestPooledAllDetectorsDeterminism(t *testing.T) {
	s := presetSession(t, "all-interceptive")
	domains := append([]string(nil), s.PBWDomains()[:1]...)
	domains = append(domains, s.World().ISP("OvertDense").HTTPList[0])
	run := func(workers int, opts ...Option) []byte {
		stream, err := s.Run(context.Background(), Campaign{Domains: domains},
			append([]Option{WithWorkers(workers), WithVantages("OvertDense", "Observer")}, opts...)...)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := stream.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	sequential := run(1)
	parallel := run(8)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("all-detector pooled campaign diverged between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			sequential, parallel)
	}
	fresh := run(8, withFreshReplicaWorlds())
	if !bytes.Equal(sequential, fresh) {
		t.Fatalf("all-detector pooled campaign diverged from fresh-world-per-task run:\n--- pooled ---\n%s\n--- fresh ---\n%s",
			sequential, fresh)
	}
}

// TestNoCensorshipControl: the control preset yields zero positives for
// every detector — any hit is by construction a false positive.
func TestNoCensorshipControl(t *testing.T) {
	s := presetSession(t, "no-censorship")
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      s.PBWDomains()[:8],
		Measurements: []Measurement{DNS(), HTTP(), HTTPS(), TCP(), Collateral()},
	}, WithWorkers(4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	results, err := stream.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	for _, r := range results {
		if r.Blocked {
			t.Errorf("false positive on control world: %+v", r)
		}
	}
}

// TestPublicAPINoInternalTypes walks the package's exported API (every
// exported func, method, struct field and var in the non-test sources)
// and fails if a signature references a repro/internal/... type. The
// documented oracle escape hatches — Session.World, Vantage.World,
// Vantage.Probe — are the only allowed exceptions; the option surface in
// particular must be fully public, so an external caller can build any
// world from JSON alone.
func TestPublicAPINoInternalTypes(t *testing.T) {
	allowed := map[string]bool{
		"Session.World": true, "Vantage.World": true, "Vantage.Probe": true,
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatalf("ParseDir: %v", err)
	}
	pkg, ok := pkgs["censor"]
	if !ok {
		t.Fatalf("package censor not found (got %v)", pkgs)
	}
	for fileName, file := range pkg.Files {
		if strings.HasSuffix(fileName, "_test.go") {
			continue
		}
		// Local names of internal imports in this file.
		internal := map[string]bool{}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !strings.Contains(path, "/internal/") {
				continue
			}
			name := path[strings.LastIndex(path, "/")+1:]
			if imp.Name != nil {
				name = imp.Name.Name
			}
			internal[name] = true
		}
		if len(internal) == 0 {
			continue
		}
		leaks := func(n ast.Node) (string, bool) {
			var found string
			ast.Inspect(n, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && internal[id.Name] {
					found = id.Name + "." + sel.Sel.Name
					return false
				}
				return true
			})
			return found, found != ""
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				key := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					recv := d.Recv.List[0].Type
					if star, ok := recv.(*ast.StarExpr); ok {
						recv = star.X
					}
					id, ok := recv.(*ast.Ident)
					if !ok || !id.IsExported() {
						continue // method on an unexported type
					}
					key = id.Name + "." + d.Name.Name
				}
				if allowed[key] {
					continue
				}
				if leak, ok := leaks(d.Type); ok {
					t.Errorf("%s: exported %s references internal type %s", fileName, key, leak)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						// Only exported fields leak: walk struct fields and
						// interface methods that are exported.
						st, ok := sp.Type.(*ast.StructType)
						if !ok {
							if leak, ok := leaks(sp.Type); ok {
								t.Errorf("%s: exported type %s references internal type %s", fileName, sp.Name.Name, leak)
							}
							continue
						}
						for _, f := range st.Fields.List {
							exported := len(f.Names) == 0 // embedded
							for _, n := range f.Names {
								exported = exported || n.IsExported()
							}
							if !exported {
								continue
							}
							if leak, ok := leaks(f.Type); ok {
								t.Errorf("%s: exported field %s.%v references internal type %s", fileName, sp.Name.Name, f.Names, leak)
							}
						}
					case *ast.ValueSpec:
						for i, n := range sp.Names {
							if !n.IsExported() {
								continue
							}
							if sp.Type != nil {
								if leak, ok := leaks(sp.Type); ok {
									t.Errorf("%s: exported %s references internal type %s", fileName, n.Name, leak)
								}
								continue
							}
							// Consts with inferred types copy untyped values
							// (string(...) conversions, numeric constants) —
							// not a type leak. Vars with inferred types take
							// the initializer's type, so an internal
							// expression there does leak.
							if d.Tok == token.VAR && i < len(sp.Values) {
								if leak, ok := leaks(sp.Values[i]); ok {
									t.Errorf("%s: exported var %s infers internal type from %s", fileName, n.Name, leak)
								}
							}
						}
					}
				}
			}
		}
	}
}
