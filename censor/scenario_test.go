package censor

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/apisurface"
)

// presetSession builds a session for a preset by name.
func presetSession(t *testing.T, name string, opts ...Option) *Session {
	t.Helper()
	sc, ok := LookupScenario(name)
	if !ok {
		t.Fatalf("preset %q not registered", name)
	}
	s, err := NewSession(context.Background(), append([]Option{WithScenario(sc)}, opts...)...)
	if err != nil {
		t.Fatalf("NewSession(%s): %v", name, err)
	}
	return s
}

// campaignJSONL digests a small fixed campaign on a session (nil domains:
// the first six PBWs).
func campaignJSONL(t *testing.T, s *Session, workers int, domains []string, opts ...Option) []byte {
	t.Helper()
	if domains == nil {
		domains = s.PBWDomains()
		if len(domains) > 6 {
			domains = domains[:6]
		}
	}
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      domains,
		Measurements: []Measurement{DNS(), HTTP()},
	}, append([]Option{WithWorkers(workers)}, opts...)...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := stream.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestScenarioPresetRoundTrip is the preset contract: every registered
// scenario survives JSON marshal → unmarshal → Validate with an identical
// world — same compiled config, and a byte-identical golden campaign.
func TestScenarioPresetRoundTrip(t *testing.T) {
	for _, name := range Scenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc := MustLookupScenario(name)
			raw, err := json.Marshal(sc)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			var back Scenario
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if err := back.Validate(); err != nil {
				t.Fatalf("Validate after round trip: %v", err)
			}
			wantCfg, err := sc.lower().Compile()
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			gotCfg, err := back.lower().Compile()
			if err != nil {
				t.Fatalf("Compile after round trip: %v", err)
			}
			if !reflect.DeepEqual(gotCfg, wantCfg) {
				t.Fatal("compiled config changed across JSON round trip")
			}
			if !reflect.DeepEqual(back, sc) {
				t.Fatal("scenario value changed across JSON round trip")
			}
			if name == "paper-2018" && testing.Short() {
				t.Skip("golden campaign on the full-scale world skipped in -short")
			}
			orig, err := NewSession(context.Background(), WithScenario(sc))
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			rt, err := NewSession(context.Background(), WithScenario(back))
			if err != nil {
				t.Fatalf("NewSession(round-tripped): %v", err)
			}
			vantages := WithVantages(defaultVantages(sc)[:1]...)
			want := campaignJSONL(t, orig, 2, nil, vantages)
			got := campaignJSONL(t, rt, 2, nil, vantages)
			if !bytes.Equal(got, want) {
				t.Fatalf("golden campaign diverged across JSON round trip:\n--- original ---\n%s\n--- round-tripped ---\n%s", want, got)
			}
		})
	}
}

// TestScenarioRejection: invalid specs fail NewSession with the
// validation error, before any world is built.
func TestScenarioRejection(t *testing.T) {
	base := MustLookupScenario("small")
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"negative middlebox count", func(s *Scenario) { s.ISPs[0].Middleboxes = -1 }, "negative"},
		{"unknown transit provider", func(s *Scenario) { s.ISPs[4].Transits[0].Provider = "Hathway" }, "unknown transit provider"},
		{"consistency above 1", func(s *Scenario) { s.ISPs[0].Consistency = 1.01 }, "outside [0,1]"},
		{"dns consistency below 0", func(s *Scenario) { s.ISPs[4].DNSConsistency = -0.5 }, "outside [0,1]"},
		{"unknown mechanism", func(s *Scenario) { s.ISPs[0].Mechanism = "quantum" }, "unknown mechanism"},
		{"no ISPs", func(s *Scenario) { s.ISPs = nil }, "no ISPs"},
		{"vantage names no ISP", func(s *Scenario) { s.Vantages = []string{"Airtel", "Typo"} }, "names no ISP"},
		{"loss prob on interceptive", func(s *Scenario) { s.ISPs[1].WiretapLossProb = 0.3 }, "only wiretap boxes race"},
	}
	for _, tc := range cases {
		sc := base.Clone()
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want mention of %q", tc.name, err, tc.want)
		}
		_, err := NewSession(context.Background(), WithScenario(sc))
		if err == nil {
			t.Errorf("%s: NewSession accepted the invalid scenario", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: NewSession error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestScenarioRegistry covers registration semantics: lookups deep-copy,
// and programmer errors panic like the detector registry's.
func TestScenarioRegistry(t *testing.T) {
	a := MustLookupScenario("dns-only")
	a.ISPs[0].Name = "Mutated"
	b := MustLookupScenario("dns-only")
	if b.ISPs[0].Name == "Mutated" {
		t.Fatal("LookupScenario returned a shared copy")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { RegisterScenario(Scenario{}) })
	mustPanic("duplicate", func() { RegisterScenario(MustLookupScenario("small")) })
	invalid := MustLookupScenario("small")
	invalid.Name = "broken"
	invalid.ISPs[0].Consistency = 7
	mustPanic("invalid spec", func() { RegisterScenario(invalid) })
}

// TestScenarioVantages: a scenario's Vantages list is the campaign
// default; empty means all ISPs; WithVantages overrides.
func TestScenarioVantages(t *testing.T) {
	s := presetSession(t, "dns-only")
	if got, want := s.Vantages(), []string{"HeavyPoison", "LightPoison", "Honest"}; !reflect.DeepEqual(got, want) {
		t.Errorf("default vantages = %v, want all ISPs %v", got, want)
	}
	s = presetSession(t, "dns-only", WithVantages("Honest"))
	if got := s.Vantages(); !reflect.DeepEqual(got, []string{"Honest"}) {
		t.Errorf("WithVantages override = %v", got)
	}
	paper := MustLookupScenario("paper-2018")
	if !reflect.DeepEqual(paper.Vantages, StudyISPs) {
		t.Errorf("paper preset vantages = %v, want the nine study ISPs", paper.Vantages)
	}
}

// TestWithScaleShim: the deprecated WithScale is exactly the presets.
func TestWithScaleShim(t *testing.T) {
	//lint:ignore SA1019 the deprecated shim is exactly what this test pins
	s, err := NewSession(context.Background(), WithScale(ScaleSmall))
	if err != nil {
		t.Fatalf("NewSession(WithScale): %v", err)
	}
	if got := s.Scenario().Name; got != "small" {
		t.Errorf("WithScale(ScaleSmall) scenario = %q, want small", got)
	}
	if got, want := s.Vantages(), StudyISPs; !reflect.DeepEqual(got, want) {
		t.Errorf("WithScale vantages = %v, want %v", got, want)
	}
}

// TestPooledCampaignDeterminism is the pooling regression of the
// determinism contract, on a non-paper preset: workers=1 reuses one world
// for every task, workers=8 builds eight, and a fresh-world-per-task run
// is the pre-pooling reference — all three must be byte-identical. A
// Reset that leaks any engine, stack, server or middlebox state between
// tasks shows up here.
func TestPooledCampaignDeterminism(t *testing.T) {
	s := presetSession(t, "all-interceptive")
	// Measure a mix of untouched PBWs and domains actually on the dense
	// censor's blocklist, so the streams being compared carry censorship
	// (and with it middlebox state worth leaking).
	domains := append([]string(nil), s.PBWDomains()[:4]...)
	domains = append(domains, s.World().ISP("OvertDense").HTTPList...)
	if len(domains) > 10 {
		domains = domains[:10]
	}
	sequential := campaignJSONL(t, s, 1, domains)
	parallel := campaignJSONL(t, s, 8, domains)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("pooled campaign diverged between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			sequential, parallel)
	}
	fresh := campaignJSONL(t, s, 8, domains, withFreshReplicaWorlds())
	if !bytes.Equal(sequential, fresh) {
		t.Fatalf("pooled campaign diverged from fresh-world-per-task run:\n--- pooled ---\n%s\n--- fresh ---\n%s",
			sequential, fresh)
	}
	if !bytes.Contains(sequential, []byte(`"blocked":true`)) {
		t.Error("all-interceptive campaign observed no censorship at all")
	}
}

// TestPooledAllDetectorsDeterminism runs the full detector registry — the
// default campaign shape — through the pooled runner. The heavy detectors
// (fingerprint's tracer with its ICMP hooks and multi-minute virtual
// idles, evasion's packet filters, ooni's control fetches) leave the most
// runtime state behind, so this is the broadest leak check a Reset bug
// could fail.
func TestPooledAllDetectorsDeterminism(t *testing.T) {
	s := presetSession(t, "all-interceptive")
	domains := append([]string(nil), s.PBWDomains()[:1]...)
	domains = append(domains, s.World().ISP("OvertDense").HTTPList[0])
	run := func(workers int, opts ...Option) []byte {
		stream, err := s.Run(context.Background(), Campaign{Domains: domains},
			append([]Option{WithWorkers(workers), WithVantages("OvertDense", "Observer")}, opts...)...)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := stream.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	sequential := run(1)
	parallel := run(8)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("all-detector pooled campaign diverged between workers=1 and workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			sequential, parallel)
	}
	fresh := run(8, withFreshReplicaWorlds())
	if !bytes.Equal(sequential, fresh) {
		t.Fatalf("all-detector pooled campaign diverged from fresh-world-per-task run:\n--- pooled ---\n%s\n--- fresh ---\n%s",
			sequential, fresh)
	}
}

// TestNoCensorshipControl: the control preset yields zero positives for
// every detector — any hit is by construction a false positive.
func TestNoCensorshipControl(t *testing.T) {
	s := presetSession(t, "no-censorship")
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      s.PBWDomains()[:8],
		Measurements: []Measurement{DNS(), HTTP(), HTTPS(), TCP(), Collateral()},
	}, WithWorkers(4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	results, err := stream.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	for _, r := range results {
		if r.Blocked {
			t.Errorf("false positive on control world: %+v", r)
		}
	}
}

// TestPublicAPINoInternalTypes runs the apisurface analyzer over this
// package's non-test sources and fails on any finding. The analyzer
// (internal/analysis/apisurface) replaced the hand-rolled AST walk that
// used to live here: it works on resolved types rather than selector
// spelling, so aliased imports and indirect leaks are caught too. The
// documented oracle escape hatches — Session.World, Vantage.World,
// Vantage.Probe — carry //repolint:allow apisurface waivers at their
// declarations; everything else, the option surface in particular, must
// be fully public so an external caller can build any world from JSON
// alone.
func TestPublicAPINoInternalTypes(t *testing.T) {
	analysistest.RunClean(t, apisurface.Analyzer, ".", "repro/censor")
}
