package censor

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ApplyLoad overlays a background-load directive onto a scenario and
// returns the loaded copy. The directive is a comma-separated list of
// key=value settings:
//
//	users=N      total synthetic users, apportioned across the scenario's
//	             ISPs proportionally to their edge counts (users=0 strips
//	             every population)
//	think=D      mean think time between page visits (Go duration, e.g.
//	             2s or 1500ms; default 2s)
//	zipf=F       popularity exponent over the ranked site list (default 1.1)
//	dns=F        request-mix weights (defaults 0.1 / 0.8 / 0.1); weights
//	http=F       are relative, any subset may be given
//	https=F
//	capacity=K   bound every censoring or transit-provider ISP's middlebox
//	             flow tables at K entries (0 leaves tables at the default)
//
// "users=10000" alone reproduces the paper calibration under load;
// "users=10000,capacity=2048" adds the flow-table pressure that makes
// eviction-induced censorship misses observable. The input scenario is
// never mutated; the result is re-validated before it is returned.
func ApplyLoad(sc Scenario, directive string) (Scenario, error) {
	users := -1
	think := 2 * time.Second
	zipf := 1.1
	dnsW, httpW, httpsW := 0.1, 0.8, 0.1
	capacity := 0

	for _, part := range strings.Split(directive, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Scenario{}, fmt.Errorf("load directive %q: want key=value", part)
		}
		var err error
		switch key {
		case "users":
			users, err = strconv.Atoi(val)
			if err == nil && users < 0 {
				err = fmt.Errorf("negative")
			}
		case "think":
			think, err = time.ParseDuration(val)
			if err == nil && think <= 0 {
				err = fmt.Errorf("non-positive")
			}
		case "zipf":
			zipf, err = strconv.ParseFloat(val, 64)
		case "dns":
			dnsW, err = strconv.ParseFloat(val, 64)
		case "http":
			httpW, err = strconv.ParseFloat(val, 64)
		case "https":
			httpsW, err = strconv.ParseFloat(val, 64)
		case "capacity":
			capacity, err = strconv.Atoi(val)
			if err == nil && capacity < 0 {
				err = fmt.Errorf("negative")
			}
		default:
			return Scenario{}, fmt.Errorf("load directive: unknown key %q (users, think, zipf, dns, http, https, capacity)", key)
		}
		if err != nil {
			return Scenario{}, fmt.Errorf("load directive %q: %v", part, err)
		}
	}
	if users < 0 {
		return Scenario{}, fmt.Errorf("load directive %q: users=N is required", directive)
	}

	out := sc.Clone()
	if users == 0 {
		for i := range out.ISPs {
			out.ISPs[i].Population = PopulationSpec{}
		}
	} else {
		apportionUsers(out.ISPs, users, think, zipf, dnsW, httpW, httpsW)
	}
	if capacity > 0 {
		providers := make(map[string]bool)
		for i := range out.ISPs {
			for _, t := range out.ISPs[i].Transits {
				providers[t.Provider] = true
			}
		}
		for i := range out.ISPs {
			isp := &out.ISPs[i]
			switch isp.Mechanism {
			case "wiretap", "interceptive-overt", "interceptive-covert":
				isp.FlowCapacity = capacity
			default:
				if providers[isp.Name] {
					isp.FlowCapacity = capacity
				}
			}
		}
	}
	if err := out.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("load directive %q: %w", directive, err)
	}
	return out, nil
}

// apportionUsers distributes the total proportionally to each ISP's edge
// count by largest remainder, so every user is seated and the split is
// deterministic.
func apportionUsers(isps []ISPSpec, total int, think time.Duration, zipf, dnsW, httpW, httpsW float64) {
	edges := 0
	for i := range isps {
		edges += isps[i].Edges
	}
	if edges == 0 {
		return
	}
	type slot struct {
		idx   int
		count int
		rem   int
	}
	slots := make([]slot, len(isps))
	seated := 0
	for i := range isps {
		share := total * isps[i].Edges
		slots[i] = slot{idx: i, count: share / edges, rem: share % edges}
		seated += slots[i].count
	}
	sort.SliceStable(slots, func(a, b int) bool { return slots[a].rem > slots[b].rem })
	for i := 0; seated < total; i++ {
		slots[i%len(slots)].count++
		seated++
	}
	for _, s := range slots {
		isp := &isps[s.idx]
		if s.count == 0 {
			isp.Population = PopulationSpec{}
			continue
		}
		isp.Population = PopulationSpec{
			Users: s.count,
			DNS:   dnsW, HTTP: httpW, HTTPS: httpsW,
			ThinkMS: int(think / time.Millisecond),
			Zipf:    zipf,
		}
	}
}
