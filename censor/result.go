package censor

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/probe"
)

// Mechanism values Result.Mechanism can carry, so consumers never
// hardcode the wire strings.
const (
	MechanismNotification = string(probe.MechNotification)
	MechanismReset        = string(probe.MechReset)
	MechanismBlackhole    = string(probe.MechBlackhole)
	MechanismDNSPoisoning = "dns-poisoning"
	MechanismTCPFilter    = "tcp-filter"
)

// DiffThreshold is the paper's HTTP-diff verification threshold; Results
// from the HTTP detector with Diff at or above it were individually
// verified before Blocked was decided.
const DiffThreshold = probe.DiffThreshold

// Result is the uniform record every measurement produces — one JSONL
// line per (vantage, measurement, domain). Suites, exporters and future
// backends all consume this one shape.
type Result struct {
	// Vantage is the ISP the measurement ran from.
	Vantage string `json:"vantage"`
	// Measurement is the detector kind — a registered name such as "dns",
	// "http", "https", "tcp", "collateral", "evasion", "ooni",
	// "fingerprint" (see Names for the full registry).
	Measurement string `json:"measurement"`
	// Domain is the measured website.
	Domain string `json:"domain"`
	// Blocked is the detector's verdict.
	Blocked bool `json:"blocked"`
	// Mechanism says how the censorship manifested ("notification",
	// "rst", "blackhole", "dns-poisoning", "tcp-filter").
	Mechanism string `json:"mechanism,omitempty"`
	// Censor names the ISP the event was attributed to, where the
	// detector attributes (notification signatures, collateral tracing).
	Censor string `json:"censor,omitempty"`
	// Diff is the HTTP-diff ratio against the uncensored fetch, for
	// detectors that compute one.
	Diff float64 `json:"diff,omitempty"`
	// Addrs are resolved addresses, for DNS-flavoured detectors.
	Addrs []string `json:"addrs,omitempty"`
	// Error records a measurement-infrastructure failure (e.g. the domain
	// is dead even via the uncensored path); Blocked is meaningless then.
	Error string `json:"error,omitempty"`
	// Detail carries the detector-specific typed payload, when the
	// detector produces one: EvasionDetail, OONIDetail and
	// FingerprintDetail for the built-ins; externally registered
	// detectors may attach their own JSON-marshalable types. In-process
	// the field holds the concrete type; after a JSONL round-trip it
	// holds generic JSON — recover the typed view with DetailAs.
	Detail any `json:"detail,omitempty"`
}

// DetailAs extracts a Result's Detail as a concrete payload type. It
// returns the value directly when the result still carries the typed
// detail (in-process), and re-decodes through JSON when the result came
// off the wire (ReadJSONL leaves Detail as generic JSON). Check
// Result.Measurement before decoding: a generic JSON object decodes
// loosely into any detail struct.
func DetailAs[T any](r Result) (T, bool) {
	if d, ok := r.Detail.(T); ok {
		return d, true
	}
	var out T
	if r.Detail == nil {
		return out, false
	}
	b, err := json.Marshal(r.Detail)
	if err != nil {
		return out, false
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return out, false
	}
	return out, true
}

// WriteJSONL writes results as JSON Lines: one deterministic, stable-order
// object per line.
func WriteJSONL(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(&results[i]); err != nil {
			return fmt.Errorf("censor: jsonl: %w", err)
		}
	}
	return nil
}

// ReadJSONL decodes a JSON Lines stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Result, error) {
	dec := json.NewDecoder(r)
	var out []Result
	for {
		var res Result
		if err := dec.Decode(&res); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("censor: jsonl: %w", err)
		}
		out = append(out, res)
	}
}
