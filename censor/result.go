package censor

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/probe"
)

// Mechanism values Result.Mechanism can carry, so consumers never
// hardcode the wire strings.
const (
	MechanismNotification = string(probe.MechNotification)
	MechanismReset        = string(probe.MechReset)
	MechanismBlackhole    = string(probe.MechBlackhole)
	MechanismDNSPoisoning = "dns-poisoning"
	MechanismTCPFilter    = "tcp-filter"
)

// DiffThreshold is the paper's HTTP-diff verification threshold; Results
// from the HTTP detector with Diff at or above it were individually
// verified before Blocked was decided.
const DiffThreshold = probe.DiffThreshold

// Result is the uniform record every measurement produces — one JSONL
// line per (vantage, measurement, domain). Suites, exporters and future
// backends all consume this one shape.
type Result struct {
	// Vantage is the ISP the measurement ran from.
	Vantage string `json:"vantage"`
	// Measurement is the detector kind ("dns", "http", "https", "tcp",
	// "collateral").
	Measurement string `json:"measurement"`
	// Domain is the measured website.
	Domain string `json:"domain"`
	// Blocked is the detector's verdict.
	Blocked bool `json:"blocked"`
	// Mechanism says how the censorship manifested ("notification",
	// "rst", "blackhole", "dns-poisoning", "tcp-filter").
	Mechanism string `json:"mechanism,omitempty"`
	// Censor names the ISP the event was attributed to, where the
	// detector attributes (notification signatures, collateral tracing).
	Censor string `json:"censor,omitempty"`
	// Diff is the HTTP-diff ratio against the uncensored fetch, for
	// detectors that compute one.
	Diff float64 `json:"diff,omitempty"`
	// Addrs are resolved addresses, for DNS-flavoured detectors.
	Addrs []string `json:"addrs,omitempty"`
	// Error records a measurement-infrastructure failure (e.g. the domain
	// is dead even via the uncensored path); Blocked is meaningless then.
	Error string `json:"error,omitempty"`
}

// WriteJSONL writes results as JSON Lines: one deterministic, stable-order
// object per line.
func WriteJSONL(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(&results[i]); err != nil {
			return fmt.Errorf("censor: jsonl: %w", err)
		}
	}
	return nil
}

// ReadJSONL decodes a JSON Lines stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Result, error) {
	dec := json.NewDecoder(r)
	var out []Result
	for {
		var res Result
		if err := dec.Decode(&res); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("censor: jsonl: %w", err)
		}
		out = append(out, res)
	}
}
