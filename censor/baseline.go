package censor

import (
	"net/netip"

	"repro/internal/probe"
)

// baseline is the censorship status the analysis measurements (evasion,
// fingerprint) establish before doing their expensive work: what — if
// anything — interferes with a plain user fetch of the domain.
type baseline struct {
	// torAddrs is the Tor-resolved ground truth; torAddrs[0] is the
	// genuine address the HTTP probes target.
	torAddrs []netip.Addr
	torSet   map[netip.Addr]bool
	// dnsPoisoned: the vantage's default resolver manipulates the answer
	// (§3.2 heuristics, same classifier as the dns detector).
	dnsPoisoned bool
	// httpCensored: a plain fetch at the genuine address drew censorship
	// evidence; mech/signatureISP describe it.
	httpCensored bool
	mech         probe.Mechanism
	signatureISP string
	// sawIPID242: an Airtel-style fixed IP identifier appeared on ingress
	// during the fetches.
	sawIPID242 bool
}

// torSetOf builds the membership set of the Tor-resolved ground truth.
func torSetOf(addrs []netip.Addr) map[netip.Addr]bool {
	set := make(map[netip.Addr]bool, len(addrs))
	for _, a := range addrs {
		set[a] = true
	}
	return set
}

// answersManipulated applies the §3.2 heuristics to a local answer set
// against the Tor ground truth, through the vantage's caching classifier
// — one poisoned record in an otherwise clean set still marks the domain
// manipulated. Shared by the dns detector and the analysis baselines.
func answersManipulated(v *Vantage, domain string, local []netip.Addr, torSet map[netip.Addr]bool) bool {
	for _, a := range local {
		if v.classifier.Manipulated(domain, a, torSet, true) {
			return true
		}
	}
	return false
}

// measureBaseline resolves the domain via Tor (failing like the paper's
// dead-site filtering when even that path is dead), applies the DNS
// manipulation heuristics to the default resolver's answer (a local
// resolution failure counts as not-poisoned; only the analysis's HTTP
// side needs the domain reachable), and probes the genuine address with
// up to tries plain fetches (retried against wiretap race losses).
func measureBaseline(v *Vantage, domain string, tries int) (baseline, error) {
	p := v.probe
	tor, err := p.ResolveViaTor(domain)
	if err != nil {
		return baseline{}, err
	}
	b := baseline{torAddrs: tor, torSet: torSetOf(tor)}
	if local, lerr := p.ResolveLocal(domain); lerr == nil {
		b.dnsPoisoned = answersManipulated(v, domain, local, b.torSet)
	}
	for attempt := 0; attempt < tries && !b.httpCensored; attempt++ {
		fr := p.FetchDirectAt(domain, b.torAddrs[0])
		if fr.SawIPID242 {
			b.sawIPID242 = true
		}
		if censored, mech := fr.CensorVerdict(); censored {
			b.httpCensored = true
			b.mech = mech
			b.signatureISP = fr.SignatureISP
		}
	}
	return b, nil
}
