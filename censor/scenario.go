package censor

import (
	"fmt"
	"sync"

	"repro/internal/ispnet"
)

// A Scenario is a declarative, JSON-serializable description of one
// simulated Internet: global sizing plus one ISPSpec per network operator.
// It is the world-building half of the public API — everything
// WithScenario needs to construct a session, with no internal types
// anywhere in the spec. The paper's calibration is just one Scenario (the
// "paper-2018" preset); LookupScenario resolves it and every other
// registered preset, and external callers can write their own specs in Go
// or JSON:
//
//	raw, _ := os.ReadFile("world.json")
//	var sc censor.Scenario
//	json.Unmarshal(raw, &sc)
//	sess, err := censor.NewSession(ctx, censor.WithScenario(sc))
//
// Addressing and AS numbers are assigned by the compiler from ISP order;
// a spec carries only behaviour. Validate (or WithScenario, which calls
// it) reports structural errors — impossible sizings, unknown mechanisms
// or transit providers, calibration outside its domain — before any world
// is built.
type Scenario struct {
	// Name identifies the scenario (registry key for presets).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`

	// Seed drives every random draw of the simulation; same seed, same
	// world, same measurements.
	Seed int64 `json:"seed"`
	// PBWSites sizes the potentially-blocked-website population (the
	// paper measured 1200); blocklist sizes scale against a 1200
	// baseline.
	PBWSites int `json:"pbw_sites"`
	// AlexaSites sizes the popular-destination population used as scan
	// targets and controls.
	AlexaSites int `json:"alexa_sites"`
	// VantagePoints is the number of outside (PlanetLab-style) vantage
	// points spread across the hosting fabric.
	VantagePoints int `json:"vantage_points"`
	// Pods is the number of global web-hosting pods (first half US,
	// second half EU). The paper world uses 80; the minimum is 4.
	Pods int `json:"pods"`

	// ISPs are the network operators, in order (order fixes addressing).
	ISPs []ISPSpec `json:"isps"`

	// Vantages optionally names the default campaign vantage set, in
	// order. Empty means every ISP in the scenario. WithVantages still
	// overrides per session or per run.
	Vantages []string `json:"vantages,omitempty"`
}

// ISPSpec describes one network operator: topology sizing, the censorship
// mechanism it runs, and the mechanism's calibration. Zero values mean
// "none of that": no middleboxes, no resolvers, no transits.
type ISPSpec struct {
	Name string `json:"name"`
	// Mechanism is the censorship the ISP operates itself: "none",
	// "wiretap", "interceptive-overt", "interceptive-covert" or
	// "dns-poisoning". Empty means "none".
	Mechanism string `json:"mechanism"`

	// Edges is the number of access/aggregation units (each a /24 of
	// subscribers); the measurement client lives on the first. Minimum 1.
	Edges int `json:"edges"`
	// Borders is the number of egress units peering with the hosting
	// pods; 0 makes the ISP a transit customer (Transits required).
	Borders int `json:"borders,omitempty"`

	// Middleboxes deploys that many filtering boxes across the borders
	// (mechanisms wiretap / interceptive-*).
	Middleboxes int `json:"middleboxes,omitempty"`
	// InboundMiddleboxes is the subset also inspecting traffic addressed
	// to the ISP, making them visible to outside probes (Table 2's
	// within/outside coverage gap; 0 reproduces the Jio anomaly).
	InboundMiddleboxes int `json:"inbound_middleboxes,omitempty"`
	// Consistency is the per-URL share of boxes carrying each blocklist
	// entry, in [0,1] (Figure 5).
	Consistency float64 `json:"consistency,omitempty"`
	// HTTPBlocklist is the size of the ISP's HTTP blocklist.
	HTTPBlocklist int `json:"http_blocklist,omitempty"`
	// WiretapLossProb is the probability a wiretap box loses the
	// injection race, in [0,1] (the paper observed ~3 in 10).
	WiretapLossProb float64 `json:"wiretap_loss_prob,omitempty"`
	// Notification styles the forged censorship response; also used for
	// boxes this ISP operates on customer peering links.
	Notification NotifSpec `json:"notification,omitempty"`

	// Resolvers sizes the ISP's recursive resolver fleet (any mechanism
	// may run an honest fleet).
	Resolvers int `json:"resolvers,omitempty"`
	// PoisonedResolvers is how many of them answer censored domains with
	// a block host or bogon (mechanism dns-poisoning).
	PoisonedResolvers int `json:"poisoned_resolvers,omitempty"`
	// DNSBlocklist is the size of the DNS blocklist.
	DNSBlocklist int `json:"dns_blocklist,omitempty"`
	// DNSConsistency is the per-domain share of poisoned resolvers
	// carrying each entry, in [0,1] (Figure 2).
	DNSConsistency float64 `json:"dns_consistency,omitempty"`
	// ClientResolverPoison caps the poison list of the subscriber-default
	// resolver.
	ClientResolverPoison int `json:"client_resolver_poison,omitempty"`

	// Population adds synthetic background users whose DNS/HTTP/HTTPS
	// traffic shares the links and middlebox flow tables the campaign
	// measures. Zero value means an idle ISP.
	Population PopulationSpec `json:"population,omitempty"`
	// FlowCapacity bounds each of this ISP's middlebox flow tables
	// (including boxes it deploys on customer peering links). At capacity
	// the coldest live flow is evicted, so under population load the box
	// can lose a connection's handshake state — an eviction-induced
	// censorship miss. 0 keeps the generous default (65536).
	FlowCapacity int `json:"flow_capacity,omitempty"`

	// Transits wire the ISP to upstream providers per hosting region; the
	// provider's middlebox on each peering link is the collateral-damage
	// mechanism of Table 3.
	Transits []TransitSpec `json:"transits,omitempty"`
}

// PopulationSpec describes one ISP's synthetic background users
// (internal/trafficgen). Users browse a Zipf-ranked site list with
// exponential think times, mixing DNS lookups, HTTP page fetches and
// HTTPS handshakes by weight.
type PopulationSpec struct {
	// Users is the number of concurrent synthetic users (0 = none). Each
	// ISP edge seats up to 40000.
	Users int `json:"users,omitempty"`
	// DNS, HTTP and HTTPS are relative request-mix weights; all zero
	// means pure HTTP.
	DNS   float64 `json:"dns,omitempty"`
	HTTP  float64 `json:"http,omitempty"`
	HTTPS float64 `json:"https,omitempty"`
	// ThinkMS is the mean think time between one user's page visits in
	// milliseconds (default 3000).
	ThinkMS int `json:"think_ms,omitempty"`
	// Zipf is the popularity exponent over the ranked site list (default
	// 1.1; larger concentrates traffic on popular sites).
	Zipf float64 `json:"zipf,omitempty"`
}

// NotifSpec is the censorship-notification style of an ISP's middleboxes:
// the forged response body and the wire-level signatures the paper used
// for attribution (§6.1). The zero value is an anonymous default style.
type NotifSpec struct {
	// Body is the notification HTML; empty plus Covert means a bare RST.
	Body string `json:"body,omitempty"`
	// MimicHeaders copies a typical origin server's header names onto the
	// forged response — the property that blinds OONI's header check.
	MimicHeaders bool `json:"mimic_headers,omitempty"`
	// IPID pins the IP identification field of injected packets (Airtel's
	// boxes always use 242).
	IPID uint16 `json:"ipid,omitempty"`
	// Covert marks a style that sends only a RST, no notification page.
	Covert bool `json:"covert,omitempty"`
}

// TransitSpec routes one hosting region of a customer ISP through a
// provider, whose peering-link middlebox carries Collateral blocklist
// entries.
type TransitSpec struct {
	// Provider names another ISP in the same scenario (Borders ≥ 1).
	Provider string `json:"provider"`
	// Region is "US", "EU" or "ALL" (single-homed customers).
	Region string `json:"region"`
	// Collateral is the size of the provider's blocklist on this link.
	Collateral int `json:"collateral"`
}

// Validate checks the scenario for structural errors without building a
// world; WithScenario and RegisterScenario call it for you.
func (s Scenario) Validate() error {
	if err := s.lower().Validate(); err != nil {
		return err
	}
	// Vantages is a censor-layer field (the compiler never sees it):
	// every entry must name an ISP of this scenario.
	known := make(map[string]bool, len(s.ISPs))
	for i := range s.ISPs {
		known[s.ISPs[i].Name] = true
	}
	for _, v := range s.Vantages {
		if !known[v] {
			return fmt.Errorf("scenario %q: vantage %q names no ISP", s.Name, v)
		}
	}
	return nil
}

// Clone returns a deep copy, so callers can tweak a preset without
// mutating the registry's.
func (s Scenario) Clone() Scenario {
	out := s
	out.ISPs = make([]ISPSpec, len(s.ISPs))
	for i, isp := range s.ISPs {
		out.ISPs[i] = isp
		out.ISPs[i].Transits = append([]TransitSpec(nil), isp.Transits...)
	}
	out.Vantages = append([]string(nil), s.Vantages...)
	return out
}

// lower converts the public spec to the internal compiler's schema.
func (s Scenario) lower() ispnet.Scenario {
	out := ispnet.Scenario{
		Name: s.Name, Description: s.Description,
		Seed: s.Seed, PBWSites: s.PBWSites, AlexaSites: s.AlexaSites,
		VantagePoints: s.VantagePoints, Pods: s.Pods,
	}
	for _, isp := range s.ISPs {
		spec := ispnet.ISPSpec{
			Name: isp.Name, Mechanism: isp.Mechanism,
			Edges: isp.Edges, Borders: isp.Borders,
			Middleboxes: isp.Middleboxes, InboundMiddleboxes: isp.InboundMiddleboxes,
			Consistency: isp.Consistency, HTTPBlocklist: isp.HTTPBlocklist,
			WiretapLossProb: isp.WiretapLossProb,
			Notification: ispnet.NotifSpec{
				Body: isp.Notification.Body, MimicHeaders: isp.Notification.MimicHeaders,
				IPID: isp.Notification.IPID, Covert: isp.Notification.Covert,
			},
			Resolvers: isp.Resolvers, PoisonedResolvers: isp.PoisonedResolvers,
			DNSBlocklist: isp.DNSBlocklist, DNSConsistency: isp.DNSConsistency,
			ClientResolverPoison: isp.ClientResolverPoison,
			Population: ispnet.PopulationSpec{
				Users: isp.Population.Users,
				DNS:   isp.Population.DNS, HTTP: isp.Population.HTTP, HTTPS: isp.Population.HTTPS,
				ThinkMS: isp.Population.ThinkMS, Zipf: isp.Population.Zipf,
			},
			FlowCapacity: isp.FlowCapacity,
		}
		for _, t := range isp.Transits {
			spec.Transits = append(spec.Transits, ispnet.TransitSpec{
				Provider: t.Provider, Region: t.Region, Collateral: t.Collateral,
			})
		}
		out.ISPs = append(out.ISPs, spec)
	}
	return out
}

// liftScenario converts an internal spec to the public schema (used for
// the presets whose calibration lives next to the compiler).
func liftScenario(sp ispnet.Scenario) Scenario {
	out := Scenario{
		Name: sp.Name, Description: sp.Description,
		Seed: sp.Seed, PBWSites: sp.PBWSites, AlexaSites: sp.AlexaSites,
		VantagePoints: sp.VantagePoints, Pods: sp.Pods,
	}
	for _, isp := range sp.ISPs {
		spec := ISPSpec{
			Name: isp.Name, Mechanism: isp.Mechanism,
			Edges: isp.Edges, Borders: isp.Borders,
			Middleboxes: isp.Middleboxes, InboundMiddleboxes: isp.InboundMiddleboxes,
			Consistency: isp.Consistency, HTTPBlocklist: isp.HTTPBlocklist,
			WiretapLossProb: isp.WiretapLossProb,
			Notification: NotifSpec{
				Body: isp.Notification.Body, MimicHeaders: isp.Notification.MimicHeaders,
				IPID: isp.Notification.IPID, Covert: isp.Notification.Covert,
			},
			Resolvers: isp.Resolvers, PoisonedResolvers: isp.PoisonedResolvers,
			DNSBlocklist: isp.DNSBlocklist, DNSConsistency: isp.DNSConsistency,
			ClientResolverPoison: isp.ClientResolverPoison,
			Population: PopulationSpec{
				Users: isp.Population.Users,
				DNS:   isp.Population.DNS, HTTP: isp.Population.HTTP, HTTPS: isp.Population.HTTPS,
				ThinkMS: isp.Population.ThinkMS, Zipf: isp.Population.Zipf,
			},
			FlowCapacity: isp.FlowCapacity,
		}
		for _, t := range isp.Transits {
			spec.Transits = append(spec.Transits, TransitSpec{
				Provider: t.Provider, Region: t.Region, Collateral: t.Collateral,
			})
		}
		out.ISPs = append(out.ISPs, spec)
	}
	return out
}

// ------------------------------------------------------------- registry

var (
	scMu    sync.RWMutex
	scNames []string
	scSpecs = map[string]Scenario{}
)

// RegisterScenario adds a scenario to the preset registry under its Name,
// making it resolvable by LookupScenario, listed by Scenarios, and
// addressable via censorscan's -scenario flag. Like Register (detectors),
// it panics on programmer errors: an empty name, a duplicate, or a spec
// that fails Validate.
func RegisterScenario(s Scenario) {
	if s.Name == "" {
		panic("censor: RegisterScenario: empty scenario name")
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("censor: RegisterScenario(%q): %v", s.Name, err))
	}
	scMu.Lock()
	defer scMu.Unlock()
	if _, dup := scSpecs[s.Name]; dup {
		panic(fmt.Sprintf("censor: RegisterScenario(%q): already registered", s.Name))
	}
	scSpecs[s.Name] = s.Clone()
	scNames = append(scNames, s.Name)
}

// Scenarios lists the registered scenario names: the built-in presets
// first, in their canonical order, then external registrations in
// registration order.
func Scenarios() []string {
	scMu.RLock()
	defer scMu.RUnlock()
	return append([]string(nil), scNames...)
}

// LookupScenario resolves a registered scenario by name, returning a deep
// copy the caller may modify freely.
func LookupScenario(name string) (Scenario, bool) {
	scMu.RLock()
	defer scMu.RUnlock()
	s, ok := scSpecs[name]
	if !ok {
		return Scenario{}, false
	}
	return s.Clone(), true
}

// MustLookupScenario is LookupScenario for presets known to be registered
// (examples, tests, the built-ins); it panics on an unknown name.
func MustLookupScenario(name string) Scenario {
	s, ok := LookupScenario(name)
	if !ok {
		panic(fmt.Sprintf("censor: scenario %q not registered", name))
	}
	return s
}

// mustScenario resolves a built-in preset.
func mustScenario(name string) Scenario { return MustLookupScenario(name) }

// ------------------------------------------------------------- presets

// The built-in presets: the paper's calibration at both scales (whose
// numbers live beside the compiler in internal/ispnet), plus three
// regimes the study never observed — worth measuring precisely because
// the paper could not.
func init() {
	paper := liftScenario(ispnet.PaperScenario())
	paper.Vantages = append([]string(nil), StudyISPs...)
	RegisterScenario(paper)

	small := liftScenario(ispnet.SmallScenario())
	small.Vantages = append([]string(nil), StudyISPs...)
	RegisterScenario(small)

	loaded := liftScenario(ispnet.LoadedScenario())
	loaded.Vantages = append([]string(nil), StudyISPs...)
	RegisterScenario(loaded)

	RegisterScenario(dnsOnlyScenario())
	RegisterScenario(allInterceptiveScenario())
	RegisterScenario(noCensorshipScenario())
}

// dnsOnlyScenario is a world censored exclusively through resolver
// poisoning — no middlebox anywhere — at two very different consistency
// regimes, with a clean ISP as control. HTTP detectors must come back
// empty here; the dns detector must see both regimes.
func dnsOnlyScenario() Scenario {
	return Scenario{
		Name:        "dns-only",
		Description: "resolver poisoning only (two regimes, MTNL-like and BSNL-like), no middleboxes, clean control ISP",
		Seed:        7001, PBWSites: 240, AlexaSites: 100, VantagePoints: 8, Pods: 40,
		ISPs: []ISPSpec{
			{
				Name: "HeavyPoison", Mechanism: "dns-poisoning",
				Edges: 8, Borders: 8,
				Resolvers: 64, PoisonedResolvers: 48,
				DNSBlocklist: 120, DNSConsistency: 0.45, ClientResolverPoison: 40,
			},
			{
				Name: "LightPoison", Mechanism: "dns-poisoning",
				Edges: 4, Borders: 4,
				Resolvers: 32, PoisonedResolvers: 3,
				DNSBlocklist: 60, DNSConsistency: 0.08, ClientResolverPoison: 15,
			},
			{
				Name: "Honest", Mechanism: "none",
				Edges: 4, Borders: 4, Resolvers: 8,
			},
		},
	}
}

// allInterceptiveScenario is a world where every censoring ISP runs
// interceptive middleboxes — the regime the paper saw only at Idea and
// Vodafone — mixing overt and covert styles and full vs sparse blocklist
// consistency, with a clean observer riding a censoring transit (so the
// collateral-damage path is interceptive too).
func allInterceptiveScenario() Scenario {
	return Scenario{
		Name:        "all-interceptive",
		Description: "every censor interceptive: overt and covert boxes, dense and sparse consistency, collateral via a covert transit",
		Seed:        7002, PBWSites: 240, AlexaSites: 100, VantagePoints: 8, Pods: 40,
		ISPs: []ISPSpec{
			{
				Name: "OvertDense", Mechanism: "interceptive-overt",
				Edges: 6, Borders: 8,
				Middleboxes: 8, InboundMiddleboxes: 8, Consistency: 0.9, HTTPBlocklist: 90,
				Notification: NotifSpec{
					Body: "<html><body>Blocked by order of the OvertDense network authority</body></html>",
				},
			},
			{
				Name: "OvertSparse", Mechanism: "interceptive-overt",
				Edges: 4, Borders: 12,
				Middleboxes: 3, InboundMiddleboxes: 1, Consistency: 0.15, HTTPBlocklist: 140,
				Notification: NotifSpec{
					Body:         "<html><body>This URL is restricted (OvertSparse compliance)</body></html>",
					MimicHeaders: true,
				},
			},
			{
				Name: "CovertNet", Mechanism: "interceptive-covert",
				Edges: 4, Borders: 6,
				Middleboxes: 6, InboundMiddleboxes: 2, Consistency: 0.5, HTTPBlocklist: 110,
				Notification: NotifSpec{Covert: true},
			},
			{
				Name: "Observer", Mechanism: "none",
				Edges: 2,
				Transits: []TransitSpec{
					{Provider: "CovertNet", Region: "ALL", Collateral: 30},
				},
			},
		},
	}
}

// noCensorshipScenario is the control world: identical fabric, zero
// interference. Every detector must stay silent; anything it reports on
// this preset is by construction a false positive.
func noCensorshipScenario() Scenario {
	return Scenario{
		Name:        "no-censorship",
		Description: "control world with zero interference - any positive verdict is a false positive",
		Seed:        7003, PBWSites: 240, AlexaSites: 100, VantagePoints: 8, Pods: 40,
		ISPs: []ISPSpec{
			{Name: "NorthNet", Mechanism: "none", Edges: 6, Borders: 8, Resolvers: 16},
			{Name: "SouthNet", Mechanism: "none", Edges: 4, Borders: 4, Resolvers: 8},
			// No transit customers: a peering link always carries the
			// provider's middlebox, so a true control world is all-bordered.
			{Name: "EdgeNet", Mechanism: "none", Edges: 2, Borders: 2},
		},
	}
}

// defaultVantages resolves a scenario's campaign vantage set: its own
// Vantages list when set, else every ISP in scenario order.
func defaultVantages(s Scenario) []string {
	if len(s.Vantages) > 0 {
		return append([]string(nil), s.Vantages...)
	}
	out := make([]string, len(s.ISPs))
	for i := range s.ISPs {
		out[i] = s.ISPs[i].Name
	}
	return out
}
