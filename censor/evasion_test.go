package censor

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/websim"
)

// evadableDomains finds up to n normal-kind domains truly censored on the
// vantage's own path to the site (the only paths where §5 evasion is
// meaningful; wiretap ISPs may censor none at small scale — callers skip).
func evadableDomains(t *testing.T, s *Session, isp string, n int) []string {
	t.Helper()
	w := s.World()
	var out []string
	for _, d := range w.ISP(isp).HTTPList {
		if site, ok := w.Catalog.Site(d); !ok || site.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(w.ISP(isp), d); tr.HTTPFiltered {
			out = append(out, d)
		}
		if len(out) >= n {
			break
		}
	}
	return out
}

// TestEvasionMatrixGolden reproduces the §5 matrix through the public
// Evasion measurement: every baseline-censored domain must be evaded by
// at least one technique (the paper's headline claim), and the
// middlebox-family-specific cells must hold — extra-space defeats Idea's
// overt interceptive boxes, multiple-host defeats Vodafone's covert
// ones, and the alternate resolver fixes MTNL's poisoning.
func TestEvasionMatrixGolden(t *testing.T) {
	s := session(t)
	ctx := context.Background()

	cases := []struct {
		isp       string
		technique string // the §5 cell that must be all-successes
	}{
		{"Idea", "host-extra-space"},
		{"Vodafone", "multiple-host-headers"},
	}
	for _, c := range cases {
		domains := evadableDomains(t, s, c.isp, 2)
		if len(domains) == 0 {
			t.Logf("%s: no censored site path at this scale, skipping row", c.isp)
			continue
		}
		results, err := s.Measure(ctx, c.isp, Evasion(), domains...)
		if err != nil {
			t.Fatalf("%s: Measure: %v", c.isp, err)
		}
		for _, r := range results {
			if !r.Blocked {
				t.Errorf("%s/%s: oracle-censored domain not censored at baseline", c.isp, r.Domain)
				continue
			}
			det, ok := DetailAs[EvasionDetail](r)
			if !ok {
				t.Fatalf("%s/%s: no EvasionDetail", c.isp, r.Domain)
			}
			if !det.HTTPCensored {
				t.Errorf("%s/%s: baseline misses HTTP censorship: %+v", c.isp, r.Domain, det)
			}
			if !det.Evaded {
				t.Errorf("%s/%s: no technique evaded the middlebox: %+v", c.isp, r.Domain, det)
			}
			found := false
			for _, o := range det.Techniques {
				if o.Technique == c.technique {
					found = true
					if !o.Success {
						t.Errorf("%s/%s: %s failed (paper: defeats this middlebox family)", c.isp, r.Domain, c.technique)
					}
				}
			}
			if !found {
				t.Errorf("%s/%s: technique %s not attempted: %+v", c.isp, r.Domain, c.technique, det)
			}
		}
	}

	// DNS row: a poisoned, not-HTTP-filtered domain in MTNL must be fixed
	// by the alternate resolver.
	w := s.World()
	mtnl := w.ISP("MTNL")
	var victim string
	for _, d := range mtnl.DNSList {
		site, ok := w.Catalog.Site(d)
		if ok && site.Kind == websim.KindNormal && mtnl.Resolvers[0].PoisonsDomain(d) {
			if tr := w.TruthFor(mtnl, d); !tr.HTTPFiltered {
				victim = d
				break
			}
		}
	}
	if victim == "" {
		t.Fatal("MTNL: no poisoned normal domain at this scale")
	}
	results, err := s.Measure(ctx, "MTNL", Evasion(), victim)
	if err != nil {
		t.Fatalf("MTNL: Measure: %v", err)
	}
	r := results[0]
	det, ok := DetailAs[EvasionDetail](r)
	if !ok || !r.Blocked {
		t.Fatalf("MTNL/%s: blocked=%v detail=%#v", victim, r.Blocked, r.Detail)
	}
	if !det.DNSPoisoned || r.Mechanism != MechanismDNSPoisoning {
		t.Errorf("MTNL/%s: baseline = %+v mechanism=%q", victim, det, r.Mechanism)
	}
	if len(det.Techniques) != 1 || det.Techniques[0].Technique != "alternate-resolver" {
		t.Fatalf("MTNL/%s: DNS-only censorship should try only the resolver switch: %+v", victim, det.Techniques)
	}
	if !det.Techniques[0].Success || !det.Evaded {
		t.Errorf("MTNL/%s: alternate resolver did not fix poisoning: %+v", victim, det)
	}
}

// TestEvasionCampaignDeterministic is the acceptance check behind
// `censorscan -measure evasion -format summary`: an evasion campaign
// streamed to CSV and summary sinks is byte-identical across worker
// counts.
func TestEvasionCampaignDeterministic(t *testing.T) {
	s := session(t)
	domains := append(evadableDomains(t, s, "Idea", 2), s.PBWDomains()[:2]...)
	campaign := Campaign{Domains: domains, Measurements: []Measurement{Evasion()}}

	runWith := func(workers int) (string, string) {
		stream, err := s.Run(context.Background(), campaign,
			WithVantages("Idea", "MTNL"), WithWorkers(workers))
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		agg := NewAggregateSink()
		if err := stream.Drain(NewCSVSink(&buf), agg); err != nil {
			t.Fatalf("Drain(workers=%d): %v", workers, err)
		}
		return buf.String(), agg.Summary()
	}
	csv1, sum1 := runWith(1)
	csv8, sum8 := runWith(8)
	if csv1 != csv8 {
		t.Errorf("CSV diverged between workers 1 and 8:\n%s\n---\n%s", csv1, csv8)
	}
	if sum1 != sum8 {
		t.Errorf("summary diverged between workers 1 and 8:\n%s\n---\n%s", sum1, sum8)
	}
	if !bytes.Contains([]byte(sum1), []byte("Evasion (§5)")) {
		t.Errorf("summary missing evasion section:\n%s", sum1)
	}
}
