package censor

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/obs"
)

// simPrefixes are the metric families merged from the per-world (engine)
// registries. These sums are part of the determinism contract: identical
// for any worker count and for pooled vs fresh replicas. The censor_*
// process-side families (task timing, pool hits) legitimately vary and
// are excluded.
var simPrefixes = []string{"sim_", "netsim_", "middlebox_", "trafficgen_"}

// simMetrics renders reg's Prometheus exposition filtered down to the
// deterministic sim-side families.
func simMetrics(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var full strings.Builder
	if err := reg.WritePrometheus(&full); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	var out strings.Builder
	for _, line := range strings.Split(full.String(), "\n") {
		name := strings.TrimPrefix(line, "# TYPE ")
		for _, p := range simPrefixes {
			if strings.HasPrefix(name, p) {
				out.WriteString(line)
				out.WriteByte('\n')
				break
			}
		}
	}
	return out.String()
}

// TestCampaignTelemetryDeterminism is TestCampaignParallelGolden with the
// telemetry layer live: the result stream must stay byte-identical across
// worker counts and replica pooling, and the sim-side metric sums merged
// from each task's world registry must be byte-identical too.
func TestCampaignTelemetryDeterminism(t *testing.T) {
	s := session(t)
	campaign := Campaign{
		Domains:      s.PBWDomains()[:6],
		Measurements: []Measurement{DNS(), HTTP()},
	}
	vantages := WithVantages("Airtel", "MTNL", "Idea")

	runWith := func(workers int, extra ...Option) ([]byte, string) {
		reg := obs.NewRegistry()
		opts := append([]Option{vantages, WithWorkers(workers), WithTelemetry(reg)}, extra...)
		stream, err := s.Run(context.Background(), campaign, opts...)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := stream.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL(workers=%d): %v", workers, err)
		}
		return buf.Bytes(), simMetrics(t, reg)
	}

	seqOut, seqMetrics := runWith(1)
	parOut, parMetrics := runWith(4)
	freshOut, freshMetrics := runWith(4, withFreshReplicaWorlds())

	if !bytes.Equal(seqOut, parOut) || !bytes.Equal(seqOut, freshOut) {
		t.Fatalf("campaign output diverged with telemetry enabled")
	}
	if seqMetrics != parMetrics {
		t.Fatalf("sim-side metrics diverged between workers=1 and workers=4:\n--- w1 ---\n%s\n--- w4 ---\n%s",
			seqMetrics, parMetrics)
	}
	if seqMetrics != freshMetrics {
		t.Fatalf("sim-side metrics diverged between pooled and fresh replicas:\n--- pooled ---\n%s\n--- fresh ---\n%s",
			seqMetrics, freshMetrics)
	}
	// The merge actually carried content, not just empty registries.
	for _, want := range []string{"sim_events_run_total", "netsim_packets_forwarded_total"} {
		if !strings.Contains(seqMetrics, want) {
			t.Errorf("merged metrics missing %s:\n%s", want, seqMetrics)
		}
	}
}

// TestCampaignTrace checks the per-campaign trace export: every task gets
// a <vantage>/<kind> span on its worker's row, the merger's head-of-line
// waits land on their own row, and the export is valid Chrome JSON.
func TestCampaignTrace(t *testing.T) {
	s := session(t)
	campaign := Campaign{
		Domains:      s.PBWDomains()[:4],
		Measurements: []Measurement{DNS(), HTTP()},
	}
	tracer := obs.NewTracer(nil) // WithTrace binds the wall clock
	stream, err := s.Run(context.Background(), campaign,
		WithVantages("Airtel", "MTNL"), WithWorkers(2), WithTrace(tracer))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := stream.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	const tasks = 2 * 2 // vantages x measurements
	var taskSpans, mergeSpans int
	for _, sp := range tracer.Spans() {
		switch sp.Cat {
		case "task":
			taskSpans++
			if !strings.Contains(sp.Name, "/") {
				t.Errorf("task span name %q, want vantage/kind", sp.Name)
			}
			if sp.TID < 0 || sp.TID >= 2 {
				t.Errorf("task span tid = %d, want worker id in [0,2)", sp.TID)
			}
			if sp.End < sp.Start {
				t.Errorf("task span %q unfinished", sp.Name)
			}
		case "merge":
			mergeSpans++
			if sp.TID != 2 {
				t.Errorf("merge span tid = %d, want 2 (workers)", sp.TID)
			}
		}
	}
	if taskSpans != tasks {
		t.Errorf("task spans = %d, want %d", taskSpans, tasks)
	}
	if mergeSpans != tasks {
		t.Errorf("merge-wait spans = %d, want %d", mergeSpans, tasks)
	}

	var chrome bytes.Buffer
	if err := tracer.WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Contains(chrome.Bytes(), []byte(`"ph":"X"`)) {
		t.Errorf("chrome trace has no duration events:\n%s", chrome.String())
	}
	if !json.Valid(chrome.Bytes()) {
		t.Errorf("chrome trace is not valid JSON:\n%s", chrome.String())
	}
}

// TestCampaignPoolCounters pins the replica-pool economics the telemetry
// reports: a campaign builds at most min(workers, tasks) worlds, the rest
// of the task pickups are pool hits, and every task is counted.
func TestCampaignPoolCounters(t *testing.T) {
	s, err := NewSession(context.Background(), WithScenario(MustLookupScenario("small")))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	reg := obs.NewRegistry()
	campaign := Campaign{
		Domains:      s.PBWDomains()[:2],
		Measurements: []Measurement{DNS(), HTTP()},
	}
	run := func() {
		stream, err := s.Run(context.Background(), campaign,
			WithVantages("Airtel", "MTNL"), WithWorkers(2), WithTelemetry(reg))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := stream.Drain(); err != nil {
			t.Fatalf("Drain: %v", err)
		}
	}
	run()
	const tasks = 2 * 2
	if got := reg.Counter("censor_tasks_total").Value(); got != tasks {
		t.Errorf("tasks_total = %d, want %d", got, tasks)
	}
	builds := reg.Counter("censor_replica_builds_total").Value()
	if builds == 0 || builds > 2 {
		t.Errorf("replica_builds_total = %d, want 1..2 (min(workers,tasks) cap)", builds)
	}
	if reg.Histogram("censor_task_ns").Count() != tasks {
		t.Errorf("task_ns count = %d, want %d", reg.Histogram("censor_task_ns").Count(), tasks)
	}
	if reg.Histogram("censor_merge_wait_ns").Count() != tasks {
		t.Errorf("merge_wait_ns count = %d, want %d", reg.Histogram("censor_merge_wait_ns").Count(), tasks)
	}

	// A second campaign reuses the parked replicas: no new builds, only
	// pool hits — the shape censord's recurring runs lean on.
	run()
	if got := reg.Counter("censor_replica_builds_total").Value(); got != builds {
		t.Errorf("second campaign built %d new worlds, want 0", got-builds)
	}
	if reg.Counter("censor_replica_pool_hits_total").Value() == 0 {
		t.Error("second campaign recorded no pool hits")
	}
}
