package censor

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ispnet"
)

// errSinkBoom is the mid-stream failure the drain tests inject.
var errSinkBoom = errors.New("sink boom")

// failSink fails every Write after the first `after` successes and
// records whether Flush ran.
type failSink struct {
	after, writes int
	flushed       bool
}

func (s *failSink) Write(Result) error {
	s.writes++
	if s.writes > s.after {
		return errSinkBoom
	}
	return nil
}

func (s *failSink) Flush() error {
	s.flushed = true
	return nil
}

// countSink records writes and flushes.
type countSink struct {
	writes  int
	flushed bool
}

func (s *countSink) Write(Result) error { s.writes++; return nil }
func (s *countSink) Flush() error       { s.flushed = true; return nil }

// drainGuarded runs Drain with a deadlock guard: the failure paths must
// terminate, not hang behind blocked workers.
func drainGuarded(t *testing.T, st *Stream, sinks ...Sink) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- st.Drain(sinks...) }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("Drain did not terminate")
		return nil
	}
}

// TestDrainSinkError: a sink whose Write fails mid-stream must cancel
// the campaign, terminate the drain, flush every sibling sink, and
// surface the sink's error — not the induced cancellation.
func TestDrainSinkError(t *testing.T) {
	s := session(t)
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      s.PBWDomains()[:16],
		Measurements: []Measurement{HTTP()},
	}, WithVantages("Airtel", "Idea"), WithWorkers(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	fail := &failSink{after: 3}
	sibling := &countSink{}
	err = drainGuarded(t, stream, fail, sibling)
	if !errors.Is(err, errSinkBoom) {
		t.Fatalf("Drain returned %v, want the sink error", err)
	}
	if !fail.flushed || !sibling.flushed {
		t.Errorf("flush skipped on the error path: fail=%v sibling=%v", fail.flushed, sibling.flushed)
	}
	// The sibling saw exactly the successful writes: Drain stops fanning
	// out a result once a sink has rejected it.
	if sibling.writes != fail.after {
		t.Errorf("sibling sink got %d writes, want %d", sibling.writes, fail.after)
	}
}

// TestDrainCancelledStream: draining a stream whose campaign was already
// cancelled must consume the backlog, flush, and report the campaign's
// cancellation error rather than dropping it.
func TestDrainCancelledStream(t *testing.T) {
	s := session(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// More results than the stream buffer holds, so the campaign cannot
	// complete without a consumer and the cancellation always lands.
	stream, err := s.Run(ctx, Campaign{
		Domains:      s.PBWDomains()[:64],
		Measurements: []Measurement{HTTP()},
	}, WithVantages("Airtel", "Idea", "Vodafone"), WithWorkers(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cancel()
	sink := &countSink{}
	if err := drainGuarded(t, stream, sink); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain returned %v, want context.Canceled", err)
	}
	if !sink.flushed {
		t.Error("sink not flushed after cancelled drain")
	}
}

// TestLazyReplicaPool enforces the pool's build contract: replica worlds
// are built on first task pickup only, so a campaign builds at most
// min(workers, tasks) worlds — idle workers in an oversized pool build
// nothing.
func TestLazyReplicaPool(t *testing.T) {
	s := session(t)
	var builds int32
	orig := newReplicaWorld
	newReplicaWorld = func(cfg ispnet.Config) *ispnet.World {
		atomic.AddInt32(&builds, 1)
		return orig(cfg)
	}
	defer func() { newReplicaWorld = orig }()

	// 1 vantage x 2 measurements = 2 tasks, pool of 16 workers.
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      s.PBWDomains()[:2],
		Measurements: []Measurement{DNS(), HTTP()},
	}, WithVantages("Airtel"), WithWorkers(16))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	results, err := stream.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if n := atomic.LoadInt32(&builds); n > 2 {
		t.Errorf("campaign with 2 tasks built %d replica worlds, want at most 2", n)
	}
}
