package censor

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"testing"
)

// echoDetail is the custom detector's typed payload, proving external
// details survive every sink.
type echoDetail struct {
	Length int    `json:"length"`
	Tag    string `json:"tag"`
}

// echoMeasurement is an externally registered detector: deterministic,
// stateless, verdicts derived from the domain name alone.
type echoMeasurement struct{}

func (echoMeasurement) Kind() string { return "echo" }

func (m echoMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	if strings.HasPrefix(domain, "porn-") || strings.HasPrefix(domain, "escort-") {
		res.Blocked = true
		res.Mechanism = "echo-list"
		res.Censor = v.Name()
	}
	res.Detail = echoDetail{Length: len(domain), Tag: "echo"}
	return res
}

func init() { Register("echo", func() Measurement { return echoMeasurement{} }) }

// TestCSVSinkEmptyStream: a campaign that matches nothing still produces
// the documented fixed header.
func TestCSVSinkEmptyStream(t *testing.T) {
	s := session(t)
	stream, err := s.Run(context.Background(), Campaign{Domains: []string{}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := stream.Drain(NewCSVSink(&buf)); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != strings.Join(csvHeader, ",") {
		t.Errorf("empty campaign CSV = %q, want header row only", got)
	}
}

// TestExternalDetectorThroughSinks proves the registry extension point
// end to end: an externally Register-ed detector resolves by name, runs
// in a parallel campaign, and its results — typed Detail included —
// round-trip through every shipped Sink, byte-identically across worker
// counts.
func TestExternalDetectorThroughSinks(t *testing.T) {
	s := session(t)
	m, ok := Lookup("echo")
	if !ok {
		t.Fatal("externally registered detector not found in registry")
	}
	campaign := Campaign{
		Domains:      s.PBWDomains()[:6],
		Measurements: []Measurement{m},
	}

	type output struct {
		jsonl, csvText, summary string
	}
	runWith := func(workers int) output {
		stream, err := s.Run(context.Background(), campaign,
			WithVantages("Airtel", "MTNL"), WithWorkers(workers))
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		var jb, cb bytes.Buffer
		agg := NewAggregateSink()
		if err := stream.Drain(NewJSONLSink(&jb), NewCSVSink(&cb), agg); err != nil {
			t.Fatalf("Drain(workers=%d): %v", workers, err)
		}
		return output{jsonl: jb.String(), csvText: cb.String(), summary: agg.Summary()}
	}

	seq := runWith(1)
	par := runWith(4)
	if seq != par {
		t.Fatalf("parallel campaign output diverged from sequential:\n--- workers=1 ---\n%+v\n--- workers=4 ---\n%+v", seq, par)
	}

	// JSONL: every record decodes, and the typed detail is recoverable.
	results, err := ReadJSONL(strings.NewReader(seq.jsonl))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	wantLen := 2 * len(campaign.Domains)
	if len(results) != wantLen {
		t.Fatalf("got %d JSONL results, want %d", len(results), wantLen)
	}
	for i, r := range results {
		if r.Measurement != "echo" {
			t.Fatalf("result %d measurement = %q", i, r.Measurement)
		}
		d, ok := DetailAs[echoDetail](r)
		if !ok {
			t.Fatalf("result %d: detail did not round-trip: %#v", i, r.Detail)
		}
		if d.Tag != "echo" || d.Length != len(r.Domain) {
			t.Errorf("result %d detail = %+v", i, d)
		}
	}

	// CSV: header plus one record per result, detail in the last column.
	records, err := csv.NewReader(strings.NewReader(seq.csvText)).ReadAll()
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	if len(records) != wantLen+1 {
		t.Fatalf("got %d CSV rows, want %d", len(records), wantLen+1)
	}
	if got := strings.Join(records[0], ","); got != strings.Join(csvHeader, ",") {
		t.Errorf("csv header = %q", got)
	}
	for _, rec := range records[1:] {
		if !strings.Contains(rec[len(rec)-1], `"tag":"echo"`) {
			t.Errorf("csv detail column = %q", rec[len(rec)-1])
		}
	}

	// Aggregate: tallies match a direct count over the JSONL records.
	agg := NewAggregateSink()
	blocked := map[string]int{}
	for _, r := range results {
		agg.Write(r)
		if r.Blocked {
			blocked[r.Vantage]++
		}
	}
	if got := agg.Vantages(); len(got) != 2 || got[0] != "Airtel" || got[1] != "MTNL" {
		t.Fatalf("aggregate vantages = %v", got)
	}
	for _, v := range agg.Vantages() {
		tl := agg.TallyFor(v)
		if tl.Total != len(campaign.Domains) || tl.Blocked != blocked[v] {
			t.Errorf("%s tally = %+v, want total=%d blocked=%d", v, tl, len(campaign.Domains), blocked[v])
		}
	}
	if !strings.Contains(seq.summary, "Campaign summary") {
		t.Errorf("summary render:\n%s", seq.summary)
	}
}
