package censor

import (
	"context"

	"repro/internal/anticensor"
)

// TechniqueOutcome is one technique's outcome inside an EvasionDetail.
type TechniqueOutcome struct {
	// Technique is the §5 technique name (anticensor.Technique values:
	// "host-keyword-case", "host-extra-space", "host-trailing-space",
	// "multiple-host-headers", "segmented-request", "drop-fin-rst",
	// "alternate-resolver").
	Technique string `json:"technique"`
	// Success: the client rendered genuine site content.
	Success bool `json:"success"`
	// Censored: a censorship response was still observed during at least
	// one attempt.
	Censored bool `json:"censored,omitempty"`
}

// EvasionDetail is the typed Result.Detail payload of the evasion
// measurement: the per-technique success matrix for one (vantage,
// domain) — one cell column of the paper's §5 claim table.
type EvasionDetail struct {
	// HTTPCensored / DNSPoisoned describe the baseline the techniques
	// were evaluated against: a middlebox interfered with a plain fetch
	// at the genuine address, and/or the vantage's default resolver
	// manipulated the answer.
	HTTPCensored bool `json:"http_censored"`
	DNSPoisoned  bool `json:"dns_poisoned"`
	// Evaded: at least one technique retrieved genuine content.
	Evaded bool `json:"evaded"`
	// Techniques are the attempted techniques in canonical order: the
	// request/packet-filter mutations of §5 when HTTP censorship was
	// observed, the alternate-resolver fix when DNS poisoning was.
	Techniques []TechniqueOutcome `json:"techniques,omitempty"`
}

// Evasion returns the §5 anti-censorship measurement: it establishes the
// censorship baseline for the domain (plain fetches at the genuine
// address, DNS answers against Tor ground truth), then attempts every
// applicable evasion technique and records the success matrix in an
// EvasionDetail. Result.Blocked reports the baseline; unblocked domains
// skip the techniques and carry no Detail.
func Evasion() Measurement { return evasionMeasurement{} }

type evasionMeasurement struct{}

func (evasionMeasurement) Kind() string { return "evasion" }

func (m evasionMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	p := v.probe
	tries := p.Attempts
	if tries <= 0 {
		tries = 3 // the §5 retry budget against wiretap race losses
	}

	b, err := measureBaseline(v, domain, tries)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	det := EvasionDetail{HTTPCensored: b.httpCensored, DNSPoisoned: b.dnsPoisoned}
	if b.httpCensored {
		res.Mechanism = string(b.mech)
		res.Censor = b.signatureISP
	} else if b.dnsPoisoned {
		res.Mechanism = MechanismDNSPoisoning
	}
	res.Blocked = det.HTTPCensored || det.DNSPoisoned
	if !res.Blocked {
		return res
	}

	// Techniques applicable to the observed mechanisms: the request and
	// packet-filter mutations against middleboxes, the resolver switch
	// against poisoning.
	var techniques []anticensor.Technique
	if det.HTTPCensored {
		techniques = append(techniques, anticensor.AllTechniques...)
	}
	if det.DNSPoisoned {
		techniques = append(techniques, anticensor.TechAltResolver)
	}
	for _, tech := range techniques {
		if err := ctx.Err(); err != nil {
			res.Error = err.Error()
			break
		}
		out := TechniqueOutcome{Technique: string(tech)}
		for attempt := 0; attempt < tries && !out.Success; attempt++ {
			at := anticensor.Evade(p, tech, domain)
			out.Success = at.Success
			out.Censored = out.Censored || at.Censored
		}
		det.Evaded = det.Evaded || out.Success
		det.Techniques = append(det.Techniques, out)
	}
	res.Detail = det
	return res
}
