package censor

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestCampaignPcapGolden pins the pcap-artifact contract: capture files
// are byte-identical across worker counts and across repeat runs on the
// same session (which exercises pooled, engine-reset replica worlds).
func TestCampaignPcapGolden(t *testing.T) {
	s, err := NewSession(context.Background(),
		WithScenario(MustLookupScenario("small")), WithVantages("Idea", "MTNL"))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	domains := s.PBWDomains()[:3]
	dnsM, _ := Lookup("dns")
	httpM, _ := Lookup("http")
	c := Campaign{Domains: domains, Measurements: []Measurement{dnsM, httpM}}

	capture := func(workers int) map[string][]byte {
		t.Helper()
		dir := t.TempDir()
		st, err := s.Run(context.Background(), c, WithWorkers(workers), WithPcap(dir))
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		results, err := st.Collect()
		if err != nil {
			t.Fatalf("Collect(workers=%d): %v", workers, err)
		}
		for _, r := range results {
			if r.Error != "" {
				t.Fatalf("workers=%d: result error: %s", workers, r.Error)
			}
		}
		files := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = b
		}
		return files
	}

	serial := capture(1)
	parallel := capture(4)
	again := capture(4) // pooled replicas, post-Reset

	// One file per (vantage, measurement) task.
	want := []string{"Idea_dns.pcap", "Idea_http.pcap", "MTNL_dns.pcap", "MTNL_http.pcap"}
	if len(serial) != len(want) {
		t.Fatalf("serial run produced %d files, want %d: %v", len(serial), len(want), keys(serial))
	}
	for _, name := range want {
		base, ok := serial[name]
		if !ok {
			t.Fatalf("missing capture %s", name)
		}
		if len(base) <= 24 {
			t.Errorf("%s: only the global header (%d bytes), no packets", name, len(base))
		}
		if base[0] != 0xd4 || base[1] != 0xc3 || base[2] != 0xb2 || base[3] != 0xa1 {
			t.Errorf("%s: bad little-endian pcap magic % x", name, base[:4])
		}
		if !bytes.Equal(base, parallel[name]) {
			t.Errorf("%s differs between workers=1 and workers=4", name)
		}
		if !bytes.Equal(base, again[name]) {
			t.Errorf("%s differs between fresh and pooled (reset) replicas", name)
		}
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWithPcapFailFast pins the option's contract: an unusable directory
// is an error at option-application time, not a silent mid-campaign loss.
func TestWithPcapFailFast(t *testing.T) {
	if _, err := NewSession(context.Background(),
		WithScenario(MustLookupScenario("small")), WithPcap("")); err == nil {
		t.Error("WithPcap(\"\") accepted")
	}
	// A path whose parent is a regular file cannot be created.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(context.Background(),
		WithScenario(MustLookupScenario("small")), WithPcap(filepath.Join(f, "sub"))); err == nil {
		t.Error("WithPcap under a regular file accepted")
	}
}
