package censor

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"sync"

	"repro/internal/ispnet"
)

// Campaign describes one fan-out: every configured vantage runs every
// measurement over every domain. Nil fields fall back to the session:
// nil Domains means the full potentially-blocked-website list, nil
// Measurements means every registered detector (Measurements()). Empty
// non-nil slices mean exactly what they say — nothing — so a filter that
// matched nothing does not explode into a full sweep.
type Campaign struct {
	// Domains are the websites to measure, in output order.
	Domains []string
	// Measurements are the detectors to run, in output order.
	Measurements []Measurement
}

// Stream delivers campaign results in their deterministic order: by
// vantage (configured order), then measurement, then domain. Consume
// Results() to completion, then check Err(). A consumer that stops
// reading early must call Cancel (or cancel the campaign context) so the
// workers behind the stream wind down.
type Stream struct {
	ch     chan Result
	cancel context.CancelFunc
	err    error // written by the merger before ch closes
}

// Results is the stream's delivery channel; it closes when the campaign
// completes or is cancelled.
func (st *Stream) Results() <-chan Result { return st.ch }

// Cancel stops the campaign early. Results() still closes (drain it),
// and Err() reports the cancellation. Safe to call multiple times.
func (st *Stream) Cancel() { st.cancel() }

// Err reports why the stream ended early (context cancellation), or nil
// after a complete run. Only valid once Results() is closed.
func (st *Stream) Err() error { return st.err }

// Collect drains the stream into a slice.
func (st *Stream) Collect() ([]Result, error) {
	var out []Result
	for r := range st.ch {
		out = append(out, r)
	}
	return out, st.err
}

// Drain consumes the stream to completion, delivering every result to
// each sink as it arrives — in the stream's deterministic order — and
// flushing the sinks once the stream closes. On a sink error it cancels
// the campaign and drains the remainder so no worker is left blocked
// behind the stream, then returns that error. Every sink is flushed on
// every path — a sibling sink's buffered output is not lost to another
// sink's failure — and the first error wins. Otherwise it returns the
// stream's own Err.
func (st *Stream) Drain(sinks ...Sink) error {
	var firstErr error
	for r := range st.ch {
		for _, s := range sinks {
			if err := s.Write(r); err != nil {
				firstErr = err
				st.Cancel()
				for range st.ch {
				}
				break
			}
		}
		if firstErr != nil {
			break
		}
	}
	for _, s := range sinks {
		if err := s.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return st.err
}

// WriteJSONL drains the stream through a JSONLSink, writing each result
// as one JSONL line as it arrives.
func (st *Stream) WriteJSONL(w io.Writer) error {
	return st.Drain(NewJSONLSink(w))
}

// task is one schedulable unit: one vantage running one measurement over
// all campaign domains inside its own world replica.
type task struct {
	vantage string
	m       Measurement
}

// Run executes a campaign and returns its result stream. Options override
// the session's defaults for this run only (vantages, workers, timeout,
// attempts).
//
// Scheduling is deterministic by construction: each task runs in a fresh
// world built from the session's seed, so its results do not depend on
// which worker executes it or when; the merger then emits task outputs in
// task order. WithWorkers(N) for any N ≥ 1 therefore yields byte-identical
// streams.
func (s *Session) Run(parent context.Context, c Campaign, opts ...Option) (*Stream, error) {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	// Only vantages/workers/timeout/attempts are overridable per run:
	// replica worlds must mirror the session world that supplied the
	// domain list and validated the vantages, or the determinism contract
	// (and the catalog itself) breaks.
	if !reflect.DeepEqual(cfg.world, s.cfg.world) {
		return nil, fmt.Errorf("censor: world options (WithScale/WithSeed/WithWorldConfig) are fixed per session; start a new Session instead")
	}
	for _, name := range cfg.vantages {
		if s.world.ISP(name) == nil {
			return nil, fmt.Errorf("censor: unknown vantage ISP %q", name)
		}
	}
	domains := c.Domains
	if domains == nil {
		domains = s.PBWDomains()
	}
	measurements := c.Measurements
	if measurements == nil {
		measurements = Measurements()
	}

	var tasks []task
	if len(domains) > 0 {
		for _, name := range cfg.vantages {
			for _, m := range measurements {
				tasks = append(tasks, task{vantage: name, m: m})
			}
		}
	}

	ctx, cancel := context.WithCancel(parent)
	st := &Stream{ch: make(chan Result, 64), cancel: cancel}
	results := make([][]Result, len(tasks))
	done := make([]chan struct{}, len(tasks))
	for i := range done {
		done[i] = make(chan struct{})
	}

	// Feeder + workers: claim tasks in order, run each in isolation.
	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := range tasks {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	workers := cfg.workers
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				results[i] = runTask(ctx, cfg, tasks[i], domains)
				close(done[i])
			}
		}()
	}

	// Merger: emit task outputs in task order as they complete.
	go func() {
		defer close(st.ch)
		defer cancel() // release the derived context once fully drained
		defer wg.Wait()
		for i := range tasks {
			select {
			case <-done[i]:
			case <-ctx.Done():
				st.err = ctx.Err()
				return
			}
			for _, r := range results[i] {
				select {
				case st.ch <- r:
				case <-ctx.Done():
					st.err = ctx.Err()
					return
				}
			}
		}
		// Every result was delivered: the campaign completed, even if a
		// cancellation raced in after the final send.
	}()
	return st, nil
}

// runTask builds the task's private world replica and measures every
// domain in order, stopping at the first context cancellation.
//
// One replica per (vantage, measurement) is deliberate: the ~100ms build
// is negligible against the measurement sweep, it gives the worker pool
// finer units to balance, and — more importantly — every detector sees a
// pristine network, so no detector's verdicts depend on the engine state
// an earlier detector left behind.
func runTask(ctx context.Context, cfg config, t task, domains []string) []Result {
	if ctx.Err() != nil {
		return nil
	}
	world := ispnet.NewWorld(cfg.world)
	v, err := newVantage(world, t.vantage, cfg)
	if err != nil {
		// Vantages were validated against the session world; a replica
		// missing one is unreachable, but fail loudly rather than panic.
		return []Result{{Vantage: t.vantage, Measurement: t.m.Kind(), Error: err.Error()}}
	}
	out := make([]Result, 0, len(domains))
	for _, d := range domains {
		if ctx.Err() != nil {
			return out
		}
		out = append(out, t.m.Measure(ctx, v, d))
	}
	return out
}
