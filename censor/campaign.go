package censor

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"

	"repro/internal/ispnet"
	"repro/internal/pcapwire"
	"repro/obs"
)

// Campaign describes one fan-out: every configured vantage runs every
// measurement over every domain. Nil fields fall back to the session:
// nil Domains means the full potentially-blocked-website list, nil
// Measurements means every registered detector (Measurements()). Empty
// non-nil slices mean exactly what they say — nothing — so a filter that
// matched nothing does not explode into a full sweep.
type Campaign struct {
	// Domains are the websites to measure, in output order.
	Domains []string
	// Measurements are the detectors to run, in output order.
	Measurements []Measurement
}

// Stream delivers campaign results in their deterministic order: by
// vantage (configured order), then measurement, then domain. Consume
// Results() to completion, then check Err(). A consumer that stops
// reading early must call Cancel (or cancel the campaign context) so the
// workers behind the stream wind down.
//
// Internally the stream moves whole task batches, not individual
// results: the merger emits each task's result slice with a single
// channel send, and Drain hands the batch to sinks that implement
// BatchSink in one call. Results(), Collect and Drain are alternative
// single-consumer faces of the same batch channel — pick one per
// stream.
type Stream struct {
	batches chan []Result
	free    chan []Result // recycled task slices; see takeSlice/release
	ctx     context.Context
	cancel  context.CancelFunc
	// Consumer-side abandonment signals, distinct from the derived
	// context: the merger cancels st.ctx during normal teardown, so the
	// Results() forwarder cannot use it to tell "consumer walked away"
	// from "campaign finished with batches still buffered". abort closes
	// on Cancel(); parentDone is the caller's own context.
	abort      chan struct{}
	abortOnce  sync.Once
	parentDone <-chan struct{}
	// err is written by the merger before batches closes, or by the
	// Results() forwarder (before resCh closes) when the consumer
	// abandons results mid-flight; Err() reads it only after the channel
	// it consumes has closed, which orders every access.
	err error

	resOnce sync.Once
	resCh   chan Result
}

// Results is the stream's per-result delivery channel; it closes when
// the campaign completes or is cancelled. It is a compatibility view
// over the batch channel: a forwarder copies each batch out result by
// result, so batch recycling never touches values a consumer holds.
func (st *Stream) Results() <-chan Result {
	st.resOnce.Do(func() {
		st.resCh = make(chan Result, 64)
		// abandon stops forwarding on consumer-side cancellation: results
		// still in flight are dropped, the batch channel is drained until
		// the merger closes it (that close orders the merger's st.err
		// write), and the cancellation is recorded — the merger may have
		// already emitted every batch and exited cleanly, so the forwarder
		// is the only goroutine that knows delivery was cut short.
		abandon := func(batch []Result) {
			st.release(batch)
			for b := range st.batches {
				st.release(b)
			}
			if st.err == nil {
				if err := st.ctx.Err(); err != nil {
					st.err = err
				} else {
					// Parent done-channels close a beat before the
					// cancellation propagates to derived contexts.
					st.err = context.Canceled
				}
			}
		}
		go func() {
			defer close(st.resCh)
			for batch := range st.batches {
				for i := range batch {
					// Check abandonment first: a consumer that keeps
					// draining after Cancel must still observe the cut.
					select {
					case <-st.abort:
						abandon(batch)
						return
					case <-st.parentDone:
						abandon(batch)
						return
					default:
					}
					select {
					case st.resCh <- batch[i]:
					case <-st.abort:
						abandon(batch)
						return
					case <-st.parentDone:
						abandon(batch)
						return
					}
				}
				st.release(batch)
			}
		}()
	})
	return st.resCh
}

// Cancel stops the campaign early. Results() still closes (drain it),
// and Err() reports the cancellation. Safe to call multiple times.
func (st *Stream) Cancel() {
	st.cancel()
	st.abortOnce.Do(func() { close(st.abort) })
}

// Err reports why the stream ended early (context cancellation), or nil
// after a complete run. Only valid once Results() is closed.
func (st *Stream) Err() error { return st.err }

// Collect drains the stream into a slice.
func (st *Stream) Collect() ([]Result, error) {
	var out []Result
	for batch := range st.batches {
		out = append(out, batch...)
		st.release(batch)
	}
	return out, st.err
}

// takeSlice checks a recycled task slice out of the stream's free list,
// or allocates one. The free list is per stream, so a drained campaign
// pins no result memory beyond the stream's own lifetime.
func (st *Stream) takeSlice(capHint int) []Result {
	select {
	case b := <-st.free:
		if cap(b) >= capHint {
			return b
		}
	default:
	}
	return make([]Result, 0, capHint)
}

// release clears a delivered batch (dropping the per-result pointers so
// the GC can reclaim them) and parks the backing array for the next
// task. Consumers own batch values only until their consuming loop
// moves on — Drain documents the same contract for BatchSink.
func (st *Stream) release(b []Result) {
	if cap(b) == 0 {
		return
	}
	clear(b)
	select {
	case st.free <- b[:0]:
	default:
	}
}

// Drain consumes the stream to completion, delivering every result to
// each sink as it arrives — in the stream's deterministic order — and
// flushing the sinks once the stream closes. On a sink error it cancels
// the campaign and drains the remainder so no worker is left blocked
// behind the stream, then returns that error. Every sink is flushed on
// every path — a sibling sink's buffered output is not lost to another
// sink's failure — and the first error wins. Otherwise it returns the
// stream's own Err.
//
// Delivery granularity: when every sink implements BatchSink, Drain
// hands each task's results over as one WriteBatch call — the batch is
// the atomic delivery unit, and a failing sink stops its siblings at
// the batch boundary. If any sink only implements Sink, Drain falls
// back to per-result Write fan-out for all of them, preserving the
// original lockstep semantics (a result rejected by one sink is not
// offered to the next). Output bytes are identical either way.
func (st *Stream) Drain(sinks ...Sink) error {
	batchers := make([]BatchSink, len(sinks))
	allBatch := true
	for i, s := range sinks {
		b, ok := s.(BatchSink)
		if !ok {
			allBatch = false
			break
		}
		batchers[i] = b
	}

	var firstErr error
	for batch := range st.batches {
		if allBatch {
			for _, b := range batchers {
				if err := b.WriteBatch(batch); err != nil {
					firstErr = err
					break
				}
			}
		} else {
			for i := range batch {
				for _, s := range sinks {
					if err := s.Write(batch[i]); err != nil {
						firstErr = err
						break
					}
				}
				if firstErr != nil {
					break
				}
			}
		}
		st.release(batch)
		if firstErr != nil {
			st.Cancel()
			for b := range st.batches {
				st.release(b)
			}
			break
		}
	}
	for _, s := range sinks {
		if err := s.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return st.err
}

// WriteJSONL drains the stream through a JSONLSink, writing each result
// as one JSONL line as it arrives.
func (st *Stream) WriteJSONL(w io.Writer) error {
	return st.Drain(NewJSONLSink(w))
}

// task is one schedulable unit: one vantage running one measurement over
// all campaign domains inside its own world replica.
type task struct {
	vantage string
	m       Measurement
}

// newReplicaWorld builds one campaign replica world. It is a variable so
// the lazy-pool regression test can count builds: the pool's contract is
// at most min(workers, tasks) builds per campaign, and none at all for a
// worker that never picks up a task.
var newReplicaWorld = ispnet.NewWorld

// withFreshReplicaWorlds disables the per-worker replica pool for one
// run, rebuilding a world per task — the pre-pooling behaviour.
// Unexported: it exists so the benchmarks can price the pool's win and
// the determinism tests can cross-check pooled against fresh output.
func withFreshReplicaWorlds() Option {
	return func(c *config) { c.freshReplicas = true }
}

// Run executes a campaign and returns its result stream. Options override
// the session's defaults for this run only (vantages, workers, timeout,
// attempts).
//
// Scheduling is deterministic by construction: each task runs in a
// pristine replica of the session's world — same scenario, same seed — so
// its results do not depend on which worker executes it or when; the
// merger then emits task outputs in task order. WithWorkers(N) for any
// N ≥ 1 therefore yields byte-identical streams.
//
// Replicas are pooled per worker and across campaigns: a worker checks a
// parked world out of the session pool (or builds one on its first task),
// and after each task an engine-level reset rewinds it to the just-built
// state (the reset world is indistinguishable from a fresh build — that
// is the pooling contract the determinism tests enforce). A campaign
// therefore pays for at most workers world builds instead of one per
// (vantage, measurement) task, and a session's later campaigns usually
// pay none at all — the shape the censord scheduler leans on for its
// recurring runs.
func (s *Session) Run(parent context.Context, c Campaign, opts ...Option) (*Stream, error) {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	// Only vantages/workers/timeout/attempts are overridable per run:
	// replica worlds must mirror the session world that supplied the
	// domain list and validated the vantages, or the determinism contract
	// (and the catalog itself) breaks.
	if !reflect.DeepEqual(cfg.world, s.cfg.world) {
		return nil, fmt.Errorf("censor: world options (WithScenario/WithScale/WithSeed) are fixed per session; start a new Session instead")
	}
	for _, name := range cfg.vantages {
		if s.world.ISP(name) == nil {
			return nil, fmt.Errorf("censor: unknown vantage ISP %q", name)
		}
	}
	domains := c.Domains
	if domains == nil {
		domains = s.PBWDomains()
	}
	measurements := c.Measurements
	if measurements == nil {
		measurements = Measurements()
	}

	var tasks []task
	if len(domains) > 0 {
		for _, name := range cfg.vantages {
			for _, m := range measurements {
				tasks = append(tasks, task{vantage: name, m: m})
			}
		}
	}

	// Process-side telemetry: task counts, replica-pool economics, and
	// wall-clock timing. These live in the caller's registry under the
	// censor_* prefix and — unlike the sim-side sums merged from each
	// replica's world registry — legitimately vary with worker count and
	// machine load, so the determinism tests exclude them.
	cTasks := cfg.obs.Counter("censor_tasks_total")
	cPoolHits := cfg.obs.Counter("censor_replica_pool_hits_total")
	cBuilds := cfg.obs.Counter("censor_replica_builds_total")
	hTask := cfg.obs.Histogram("censor_task_ns")
	hMergeWait := cfg.obs.Histogram("censor_merge_wait_ns")

	ctx, cancel := context.WithCancel(parent)
	workers := cfg.workers
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}
	st := &Stream{
		// A couple of task batches of lookahead: enough that the merger
		// rarely blocks behind the consumer, small enough that a consumer
		// abandoning mid-stream (TestDrainCancelledStream's shape) still
		// forces the campaign through the cancellation path.
		batches:    make(chan []Result, 2),
		free:       make(chan []Result, workers+2),
		ctx:        ctx,
		cancel:     cancel,
		abort:      make(chan struct{}),
		parentDone: parent.Done(),
	}
	results := make([][]Result, len(tasks))
	done := make([]chan struct{}, len(tasks))
	for i := range done {
		done[i] = make(chan struct{})
	}

	// Feeder + workers: claim tasks in order, run each in isolation.
	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := range tasks {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			// Replica pool, one slot per worker: the world comes from the
			// session's cross-run pool when a previous campaign parked one,
			// else it is built lazily on the worker's first task pickup
			// (never for an idle worker), and is handed back after each
			// task with an engine-level Reset restoring pristine state.
			// With workers capped at the task count above, a campaign
			// builds at most min(workers, tasks) worlds — and a session's
			// second campaign usually builds none.
			var world *ispnet.World
			for i := range idxCh {
				if ctx.Err() != nil {
					close(done[i])
					continue
				}
				if world == nil {
					if !cfg.freshReplicas {
						world = s.takeReplica()
					}
					if world != nil {
						cPoolHits.Inc()
					} else {
						world = newReplicaWorld(cfg.world)
						cBuilds.Inc()
					}
				}
				span := cfg.trace.Start(tasks[i].vantage+"/"+tasks[i].m.Kind(), "task", wid)
				start := obs.WallClock()
				results[i] = runTask(ctx, world, cfg, tasks[i], domains, st)
				hTask.Observe(obs.WallClock() - start)
				cfg.trace.Finish(span)
				cTasks.Inc()
				// Merge the replica's deterministic sim-side sums into the
				// caller's registry before Reset zeroes them. Counter sums are
				// commutative, so the totals are invariant across worker
				// counts and pooled-vs-fresh replicas — the property the
				// telemetry determinism test pins down.
				world.Obs().AddTo(cfg.obs)
				if cfg.freshReplicas {
					world = nil
				} else {
					world.Reset()
				}
				close(done[i])
			}
			if world != nil && !cfg.freshReplicas {
				// The world was reset after its last task: park it pristine
				// for the session's next campaign.
				s.parkReplica(world)
			}
		}(w)
	}

	// Merger: emit task outputs in task order as they complete — one
	// channel send per task, not per result, and each emitted slot is
	// released immediately so a long campaign never pins every result
	// until the drain finishes.
	go func() {
		defer close(st.batches)
		defer cancel() // release the derived context once fully drained
		defer wg.Wait()
		for i := range tasks {
			// Merge-wait is the time the in-order merger stalls behind this
			// task — the head-of-line blocking that decides whether adding
			// workers helps (tid = workers puts these spans on their own
			// trace row, below the worker rows).
			span := cfg.trace.Start("merge-wait", "merge", workers)
			start := obs.WallClock()
			select {
			case <-done[i]:
			case <-ctx.Done():
				cfg.trace.Finish(span)
				st.err = ctx.Err()
				return
			}
			hMergeWait.Observe(obs.WallClock() - start)
			cfg.trace.Finish(span)
			batch := results[i]
			results[i] = nil // the consumer owns the batch now
			if len(batch) == 0 {
				st.release(batch)
				continue
			}
			select {
			case st.batches <- batch:
			case <-ctx.Done():
				st.err = ctx.Err()
				return
			}
		}
		// Every result was delivered: the campaign completed, even if a
		// cancellation raced in after the final send.
	}()
	return st, nil
}

// runTask measures every campaign domain in order on the worker's pooled
// world replica, stopping at the first context cancellation.
//
// A pristine world per (vantage, measurement) task is deliberate: every
// detector sees an untouched network, so no detector's verdicts depend on
// the engine state an earlier detector left behind. Pooling preserves
// exactly that property — Reset rewinds the replica to its just-built
// state between tasks — while paying the build cost once per worker
// instead of once per task.
func runTask(ctx context.Context, world *ispnet.World, cfg config, t task, domains []string, st *Stream) []Result {
	if ctx.Err() != nil {
		return nil
	}
	v, err := newVantage(world, t.vantage, cfg)
	if err != nil {
		// Vantages were validated against the session world; a replica
		// missing one is unreachable, but fail loudly rather than panic.
		return []Result{{Vantage: t.vantage, Measurement: t.m.Kind(), Error: err.Error()}}
	}
	finishPcap := startTaskPcap(world, cfg, t)
	// The task slice comes from the stream's free list: once the consumer
	// is done with an emitted batch it is cleared and reused, so a
	// campaign's steady-state result storage is O(workers), not O(tasks).
	out := st.takeSlice(len(domains) + 1)
	for _, d := range domains {
		if ctx.Err() != nil {
			break
		}
		out = append(out, t.m.Measure(ctx, v, d))
	}
	if err := finishPcap(); err != nil {
		out = append(out, Result{Vantage: t.vantage, Measurement: t.m.Kind(),
			Error: fmt.Sprintf("pcap: %v", err)})
	}
	return out
}

// startTaskPcap installs a packet tap on the task vantage's client host,
// streaming every packet the client sends or receives into
// <pcapDir>/<vantage>_<kind>.pcap. The returned finish func detaches the
// tap and closes the file, reporting the first error of the capture.
// Virtual timestamps make the file a deterministic artifact: identical
// across runs, worker counts, and replica reuse.
func startTaskPcap(world *ispnet.World, cfg config, t task) func() error {
	if cfg.pcapDir == "" {
		return func() error { return nil }
	}
	host := world.ISP(t.vantage).Client.Host
	path := filepath.Join(cfg.pcapDir, t.vantage+"_"+t.m.Kind()+".pcap")
	f, err := os.Create(path)
	if err != nil {
		return func() error { return err }
	}
	bw := bufio.NewWriter(f)
	pw, err := pcapwire.NewWriter(bw)
	if err != nil {
		f.Close()
		return func() error { return err }
	}
	host.SetTap(pw.Tap())
	return func() error {
		host.SetTap(nil)
		err := pw.Err()
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
}
