package censor

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/websim"
)

// testSession builds one shared small-world session for the package tests.
var sharedSession *Session

func session(t *testing.T) *Session {
	t.Helper()
	if sharedSession == nil {
		s, err := NewSession(context.Background(), WithScenario(MustLookupScenario("small")))
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		sharedSession = s
	}
	// Each test runs on its own goroutine; handing the shared session out
	// is a serialized ownership transfer of its world.
	sharedSession.world.Rebind()
	return sharedSession
}

// blockedDomain finds an HTTP-censored normal-kind domain via the oracle.
func blockedDomain(t *testing.T, s *Session, isp string) string {
	t.Helper()
	w := s.World()
	for _, d := range w.ISP(isp).HTTPList {
		if site, ok := w.Catalog.Site(d); !ok || site.Kind != websim.KindNormal {
			continue
		}
		if tr := w.TruthFor(w.ISP(isp), d); tr.HTTPFiltered {
			return d
		}
	}
	t.Skipf("no blocked normal domain in %s", isp)
	return ""
}

func TestSessionMeasure(t *testing.T) {
	s := session(t)
	d := blockedDomain(t, s, "Idea")
	results, err := s.Measure(context.Background(), "Idea", HTTP(), d)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if len(results) != 1 || !results[0].Blocked {
		t.Fatalf("HTTP measurement missed oracle-blocked domain: %+v", results)
	}
	if results[0].Measurement != "http" || results[0].Vantage != "Idea" || results[0].Domain != d {
		t.Errorf("result identity fields wrong: %+v", results[0])
	}
	if results[0].Mechanism == "" {
		t.Errorf("blocked result carries no mechanism: %+v", results[0])
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(context.Background(), WithScenario(MustLookupScenario("small")), WithVantages("NoSuchISP")); err == nil {
		t.Error("NewSession accepted an unknown vantage")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSession(cancelled); err == nil {
		t.Error("NewSession ignored a cancelled context")
	}
	s := session(t)
	if _, err := s.Run(context.Background(), Campaign{}, WithVantages("NoSuchISP")); err == nil {
		t.Error("Run accepted an unknown vantage")
	}
	if _, err := s.Run(context.Background(), Campaign{}, WithSeed(42)); err == nil {
		t.Error("Run accepted a world-mutating per-run option")
	}
	// Empty non-nil slices mean "nothing", not "everything".
	stream, err := s.Run(context.Background(), Campaign{Domains: []string{}})
	if err != nil {
		t.Fatalf("Run(empty domains): %v", err)
	}
	if results, err := stream.Collect(); err != nil || len(results) != 0 {
		t.Errorf("empty Domains produced %d results (err=%v), want 0", len(results), err)
	}
}

// TestCampaignParallelGolden is the determinism contract: a campaign with
// WithWorkers(N) must produce byte-identical JSONL to the sequential run.
// Run under -race this also exercises the worker pool for data races.
func TestCampaignParallelGolden(t *testing.T) {
	s := session(t)
	campaign := Campaign{
		Domains:      s.PBWDomains()[:8],
		Measurements: []Measurement{DNS(), HTTP()},
	}
	vantages := WithVantages("Airtel", "MTNL", "Idea")

	runWith := func(workers int) []byte {
		stream, err := s.Run(context.Background(), campaign, vantages, WithWorkers(workers))
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := stream.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL(workers=%d): %v", workers, err)
		}
		return buf.Bytes()
	}

	sequential := runWith(1)
	parallel := runWith(6)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("parallel campaign diverged from sequential run:\n--- workers=1 ---\n%s\n--- workers=6 ---\n%s",
			sequential, parallel)
	}

	// The stream must be well-formed and in deterministic task order:
	// vantage-major, then measurement, then domain.
	results, err := ReadJSONL(bytes.NewReader(sequential))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	wantLen := 3 * 2 * len(campaign.Domains)
	if len(results) != wantLen {
		t.Fatalf("got %d results, want %d", len(results), wantLen)
	}
	i := 0
	blocked := 0
	for _, vant := range []string{"Airtel", "MTNL", "Idea"} {
		for _, kind := range []string{"dns", "http"} {
			for _, d := range campaign.Domains {
				r := results[i]
				if r.Vantage != vant || r.Measurement != kind || r.Domain != d {
					t.Fatalf("result %d out of order: got (%s,%s,%s), want (%s,%s,%s)",
						i, r.Vantage, r.Measurement, r.Domain, vant, kind, d)
				}
				if r.Blocked {
					blocked++
				}
				i++
			}
		}
	}
	if blocked == 0 {
		t.Error("campaign over censoring ISPs observed no censorship at all")
	}
}

// TestCampaignNineISPs fans the full default vantage set out across
// workers — the paper's nine-ISP sweep — and checks every vantage
// reported. Under -race this is the concurrency stress for the pool.
func TestCampaignNineISPs(t *testing.T) {
	s := session(t)
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      s.PBWDomains()[:2],
		Measurements: []Measurement{DNS()},
	}, WithWorkers(9))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	results, err := stream.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(results) != len(StudyISPs)*2 {
		t.Fatalf("got %d results, want %d", len(results), len(StudyISPs)*2)
	}
	for i, vant := range StudyISPs {
		if results[2*i].Vantage != vant {
			t.Errorf("vantage order broken at %d: %s", i, results[2*i].Vantage)
		}
	}
}

func TestCampaignCancellation(t *testing.T) {
	s := session(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := s.Run(ctx, Campaign{
		// Enough work that cancellation strikes mid-campaign.
		Domains:      s.PBWDomains()[:64],
		Measurements: []Measurement{HTTP()},
	}, WithVantages("Airtel", "Idea", "Vodafone"), WithWorkers(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Consume one result to prove the stream was live, then cancel.
	if _, ok := <-stream.Results(); !ok {
		t.Fatal("stream closed before first result")
	}
	cancel()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-stream.Results():
			if !ok {
				if stream.Err() != context.Canceled {
					t.Fatalf("Err() = %v, want context.Canceled", stream.Err())
				}
				return
			}
		case <-deadline:
			t.Fatal("stream did not terminate after cancellation")
		}
	}
}

// TestStreamCancel covers the consumer-side abandon path: Cancel() must
// wind the campaign down and still close the stream.
func TestStreamCancel(t *testing.T) {
	s := session(t)
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      s.PBWDomains()[:64],
		Measurements: []Measurement{HTTP()},
	}, WithVantages("Airtel", "Idea", "Vodafone"), WithWorkers(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := <-stream.Results(); !ok {
		t.Fatal("stream closed before first result")
	}
	stream.Cancel()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case _, ok := <-stream.Results():
			if !ok {
				if stream.Err() != context.Canceled {
					t.Fatalf("Err() = %v, want context.Canceled", stream.Err())
				}
				return
			}
		case <-deadline:
			t.Fatal("stream did not terminate after Cancel")
		}
	}
}

func TestMeasurementKinds(t *testing.T) {
	// The built-ins, in canonical registration order. External
	// registrations (the tests register "echo") append after these.
	want := []string{"dns", "http", "https", "tcp", "collateral", "evasion", "ooni", "fingerprint"}
	names := Names()
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least the %d built-ins", names, len(want))
	}
	for i, k := range want {
		if names[i] != k {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], k)
		}
		m, ok := Lookup(k)
		if !ok {
			t.Fatalf("Lookup(%q) missing", k)
		}
		if m.Kind() != k {
			t.Errorf("Lookup(%q).Kind() = %q", k, m.Kind())
		}
	}
	all := Measurements()
	if len(all) != len(names) {
		t.Fatalf("Measurements() = %d entries, Names() = %d", len(all), len(names))
	}
	for i, m := range all {
		if m.Kind() != names[i] {
			t.Errorf("measurement %d kind = %q, want %q", i, m.Kind(), names[i])
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", DNS) })
	mustPanic("nil factory", func() { Register("x", nil) })
	mustPanic("kind mismatch", func() { Register("not-dns", DNS) })
	mustPanic("duplicate", func() { Register("dns", DNS) })
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Result{
		{Vantage: "Airtel", Measurement: "http", Domain: "porn-site-001.com", Blocked: true, Mechanism: "notification", Censor: "Airtel", Diff: 1},
		{Vantage: "NKN", Measurement: "dns", Domain: "popular-0000.com", Addrs: []string{"199.1.2.3"}},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
