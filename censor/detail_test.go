package censor

import (
	"context"
	"testing"

	"repro/internal/ooni"
)

// TestOONIMeasurement audits the ooni detector: verdicts use OONI's
// blocking vocabulary, the detail carries the agreement fields Table 1
// aggregates, and Agrees is consistent with Blocked vs TruthBlocked.
func TestOONIMeasurement(t *testing.T) {
	s := session(t)
	for _, isp := range []string{"MTNL", "Idea"} {
		results, err := s.Measure(context.Background(), isp, OONI(), s.PBWDomains()[:20]...)
		if err != nil {
			t.Fatalf("%s: Measure: %v", isp, err)
		}
		flagged := 0
		for _, r := range results {
			det, ok := DetailAs[OONIDetail](r)
			if !ok {
				t.Fatalf("%s/%s: no OONIDetail", isp, r.Domain)
			}
			if r.Blocked != (ooni.Blocking(det.Verdict) != ooni.BlockingNone) {
				t.Errorf("%s/%s: Blocked=%v but verdict=%q", isp, r.Domain, r.Blocked, det.Verdict)
			}
			if r.Mechanism != det.Verdict {
				t.Errorf("%s/%s: mechanism %q != verdict %q", isp, r.Domain, r.Mechanism, det.Verdict)
			}
			if det.Agrees != (r.Blocked == det.TruthBlocked) {
				t.Errorf("%s/%s: Agrees=%v Blocked=%v TruthBlocked=%v", isp, r.Domain, det.Agrees, r.Blocked, det.TruthBlocked)
			}
			if r.Blocked {
				flagged++
			}
		}
		if flagged == 0 {
			t.Errorf("%s: OONI flagged nothing over 20 PBW domains", isp)
		}
	}
}

// TestFingerprintMeasurement takes the §4 fingerprint of Idea's overt
// interceptive middlebox and MTNL's resolver poisoning through the
// public measurement.
func TestFingerprintMeasurement(t *testing.T) {
	s := session(t)

	domains := evadableDomains(t, s, "Idea", 1)
	if len(domains) == 0 {
		t.Fatal("Idea: no censored site path at this scale")
	}
	results, err := s.Measure(context.Background(), "Idea", Fingerprint(), domains[0])
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	r := results[0]
	if !r.Blocked {
		t.Fatalf("oracle-censored domain not fingerprinted: %+v", r)
	}
	det, ok := DetailAs[FingerprintDetail](r)
	if !ok {
		t.Fatalf("no FingerprintDetail: %#v", r.Detail)
	}
	if det.BoxType != "interceptive" {
		t.Errorf("Idea box type = %q, want interceptive (%+v)", det.BoxType, det)
	}
	if !det.Overt || det.Covert {
		t.Errorf("Idea censorship should be overt: %+v", det)
	}
	if det.CensorHop == 0 || det.PathHops == 0 || det.CensorHop >= det.PathHops {
		t.Errorf("tracer did not localize the box mid-path: hop %d of %d", det.CensorHop, det.PathHops)
	}
	if !det.StatefulChecked {
		t.Errorf("statefulness not probed: %+v", det)
	}

	// Non-censored domain: no detail, no verdict.
	clean, err := s.Measure(context.Background(), "NKN", Fingerprint(), s.PBWDomains()[0])
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if clean[0].Blocked && clean[0].Error == "" {
		// NKN deploys no middleboxes; collateral censorship on this path
		// would still be a legitimate fingerprint, so only assert detail
		// presence tracks the verdict.
		if _, ok := DetailAs[FingerprintDetail](clean[0]); !ok {
			t.Errorf("blocked result without detail: %+v", clean[0])
		}
	}

	// DNS variant: MTNL poisoning is resolver-local, never on-path.
	w := s.World()
	mtnl := w.ISP("MTNL")
	var victim string
	for _, d := range mtnl.DNSList {
		if mtnl.Resolvers[0].PoisonsDomain(d) {
			victim = d
			break
		}
	}
	if victim == "" {
		t.Fatal("MTNL: no poisoned domain")
	}
	results, err = s.Measure(context.Background(), "MTNL", Fingerprint(), victim)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	r = results[0]
	det, ok = DetailAs[FingerprintDetail](r)
	if !ok || !r.Blocked {
		t.Fatalf("MTNL/%s: blocked=%v detail=%#v", victim, r.Blocked, r.Detail)
	}
	if !det.DNSPoisoned {
		t.Fatalf("MTNL/%s: poisoning not fingerprinted: %+v", victim, det)
	}
	if det.DNSInjected {
		t.Errorf("MTNL/%s: classified as on-path injection; the paper found resolver poisoning only", victim)
	}
	if det.ResolverHop == 0 || det.AnswerHop != det.ResolverHop {
		t.Errorf("MTNL/%s: answers should come from the last hop: answer=%d resolver=%d", victim, det.AnswerHop, det.ResolverHop)
	}
}
