package censor

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkCampaignThroughput measures end-to-end campaign throughput —
// world replication, the worker pool, the stable-order merger and the
// aggregate sink — at several worker counts. CI runs it with
// -benchtime=1x as a smoke (any regression that deadlocks or breaks
// determinism fails the run); BENCH_campaign.json records the first
// recorded baseline.
func BenchmarkCampaignThroughput(b *testing.B) {
	sess, err := NewSession(context.Background(), WithScale(ScaleSmall))
	if err != nil {
		b.Fatal(err)
	}
	domains := sess.PBWDomains()
	if len(domains) > 32 {
		domains = domains[:32]
	}
	campaign := Campaign{
		Domains:      domains,
		Measurements: []Measurement{DNS(), HTTP()},
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				stream, err := sess.Run(context.Background(), campaign, WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				agg := NewAggregateSink()
				if err := stream.Drain(agg); err != nil {
					b.Fatal(err)
				}
				n := 0
				for _, v := range agg.Vantages() {
					n += agg.TallyFor(v).Total
				}
				want := len(StudyISPs) * len(campaign.Measurements) * len(domains)
				if n != want {
					b.Fatalf("campaign delivered %d results, want %d", n, want)
				}
				total += n
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "results/s")
		})
	}
}
