package censor

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ispnet"
)

// BenchmarkWorldBuild prices one world construction per preset — the cost
// the campaign replica pool amortizes from one-per-task down to
// one-per-worker.
func BenchmarkWorldBuild(b *testing.B) {
	for _, name := range []string{"small", "paper-2018"} {
		sc := MustLookupScenario(name)
		cfg, err := sc.lower().Compile()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ispnet.NewWorld(cfg)
			}
		})
	}
}

// BenchmarkCampaignReplicas compares the pooled runner (build one world
// per worker, Reset between tasks) against the pre-pooling behaviour
// (build one world per task). Identical output — the determinism tests
// assert byte-equality — so the delta is pure world-build savings:
// 18 tasks over 4 workers builds 4 worlds pooled vs 18 fresh.
func BenchmarkCampaignReplicas(b *testing.B) {
	sess, err := NewSession(context.Background(), WithScenario(MustLookupScenario("small")))
	if err != nil {
		b.Fatal(err)
	}
	campaign := Campaign{
		Domains:      sess.PBWDomains()[:8],
		Measurements: []Measurement{DNS(), HTTP()},
	}
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"pooled", []Option{WithWorkers(4)}},
		{"fresh", []Option{WithWorkers(4), withFreshReplicaWorlds()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stream, err := sess.Run(context.Background(), campaign, mode.opts...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := stream.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignThroughput measures end-to-end campaign throughput —
// world replication, the worker pool, the batched stable-order merger
// and the aggregate sink — at several worker counts; run with
// -cpu=1,2,4 to read multi-core scaling. CI runs it with -benchtime=1x
// as a smoke (any regression that deadlocks or breaks determinism fails
// the run); BENCH_campaign.json records the recorded baselines.
//
// The replica pool is warmed to the largest worker count before any
// sub-benchmark runs: with -benchtime=Nx there is no calibration ramp,
// so a cold pool would bill each sub-benchmark's one-time world builds
// to its measured iterations — at w=8 that is ~70k allocs/op of pure
// warm-up, swamping the steady-state number this benchmark exists to
// track. Build cost is priced explicitly by BenchmarkWorldBuild and
// BenchmarkCampaignReplicas.
func BenchmarkCampaignThroughput(b *testing.B) {
	sess, err := NewSession(context.Background(), WithScenario(MustLookupScenario("small")))
	if err != nil {
		b.Fatal(err)
	}
	domains := sess.PBWDomains()
	if len(domains) > 32 {
		domains = domains[:32]
	}
	campaign := Campaign{
		Domains:      domains,
		Measurements: []Measurement{DNS(), HTTP()},
	}
	workerCounts := []int{1, 4, 8}
	warm, err := sess.Run(context.Background(), campaign,
		WithWorkers(workerCounts[len(workerCounts)-1]))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Collect(); err != nil {
		b.Fatal(err)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				stream, err := sess.Run(context.Background(), campaign, WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				agg := NewAggregateSink()
				if err := stream.Drain(agg); err != nil {
					b.Fatal(err)
				}
				n := 0
				for _, v := range agg.Vantages() {
					n += agg.TallyFor(v).Total
				}
				want := len(StudyISPs) * len(campaign.Measurements) * len(domains)
				if n != want {
					b.Fatalf("campaign delivered %d results, want %d", n, want)
				}
				total += n
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "results/s")
		})
	}
}

// BenchmarkCampaignLoaded prices the same campaign with synthetic
// background populations sharing the world: the users-vs-throughput curve
// recorded in BENCH_campaign.json. Background flows churn every bounded
// flow table while the probes measure, so the delta against users=0 is
// the full cost of population-scale load. (The 100k-user point lives in
// internal/trafficgen's BenchmarkBackgroundLoad, where no campaign
// multiplies the event volume.)
func BenchmarkCampaignLoaded(b *testing.B) {
	for _, users := range []int{0, 1000, 10000} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			sc := MustLookupScenario("small")
			if users > 0 {
				var err error
				sc, err = ApplyLoad(sc, fmt.Sprintf("users=%d,capacity=2048", users))
				if err != nil {
					b.Fatal(err)
				}
			}
			sess, err := NewSession(context.Background(), WithScenario(sc))
			if err != nil {
				b.Fatal(err)
			}
			domains := sess.PBWDomains()
			if len(domains) > 4 {
				domains = domains[:4]
			}
			campaign := Campaign{
				Domains:      domains,
				Measurements: []Measurement{DNS(), HTTP()},
			}
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				stream, err := sess.Run(context.Background(), campaign, WithWorkers(4))
				if err != nil {
					b.Fatal(err)
				}
				agg := NewAggregateSink()
				if err := stream.Drain(agg); err != nil {
					b.Fatal(err)
				}
				for _, v := range agg.Vantages() {
					total += agg.TallyFor(v).Total
				}
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "results/s")
		})
	}
}
