package censor

import (
	"fmt"
	"sync"
)

// Factory constructs one detector instance. Factories must return
// stateless Measurements: campaign workers share a single value returned
// by a factory across goroutines.
type Factory func() Measurement

var (
	regMu        sync.RWMutex
	regNames     []string
	regFactories = map[string]Factory{}
)

// Register adds a detector to the registry under a unique name, making it
// resolvable by Lookup, listed by Names, included in Measurements, and
// runnable through campaigns and the cmd tools' -measure flags. The
// built-in detectors self-register; external packages typically Register
// from an init function:
//
//	func init() {
//		censor.Register("my-detector", func() censor.Measurement { return myDetector{} })
//	}
//
// Register panics on an empty name, a nil factory, a duplicate name, or a
// factory whose Measurement reports a different Kind — all programmer
// errors, caught at startup.
func Register(name string, f Factory) {
	if name == "" {
		panic("censor: Register: empty detector name")
	}
	if f == nil {
		panic(fmt.Sprintf("censor: Register(%q): nil factory", name))
	}
	if kind := f().Kind(); kind != name {
		panic(fmt.Sprintf("censor: Register(%q): factory builds a %q measurement", name, kind))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regFactories[name]; dup {
		panic(fmt.Sprintf("censor: Register(%q): already registered", name))
	}
	regFactories[name] = f
	regNames = append(regNames, name)
}

// Lookup resolves a registered detector by name, returning a fresh
// instance from its factory.
func Lookup(name string) (Measurement, bool) {
	regMu.RLock()
	f, ok := regFactories[name]
	regMu.RUnlock()
	if !ok {
		return nil, false
	}
	return f(), true
}

// Names lists every registered detector: the built-ins first, in their
// canonical order, then external registrations in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regNames...)
}

// Measurements returns one instance of every registered detector, in
// Names order. This is the detector set a Campaign with nil Measurements
// runs.
func Measurements() []Measurement {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Measurement, 0, len(regNames))
	for _, name := range regNames {
		out = append(out, regFactories[name]())
	}
	return out
}

// The built-ins self-register here (a single init keeps the canonical
// order independent of file order): the five per-domain probe detectors
// of §3, then the three paper analyses promoted to measurements —
// evasion (§5), ooni (§6.2) and fingerprint (§4).
func init() {
	Register("dns", DNS)
	Register("http", HTTP)
	Register("https", HTTPS)
	Register("tcp", TCP)
	Register("collateral", Collateral)
	Register("evasion", Evasion)
	Register("ooni", OONI)
	Register("fingerprint", Fingerprint)
}
