package censor

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"weak"
)

// sinkOnly hides a sink's WriteBatch method, forcing Drain onto the
// legacy per-result fan-out path.
type sinkOnly struct {
	s Sink
}

func (w sinkOnly) Write(r Result) error { return w.s.Write(r) }
func (w sinkOnly) Flush() error         { return w.s.Flush() }

// drainOutputs runs one small campaign and drains it into JSONL, CSV
// and aggregate sinks, optionally stripped of their batch capability.
func drainOutputs(t *testing.T, s *Session, batched bool, opts ...Option) (jsonl, csv []byte, summary string) {
	t.Helper()
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      s.PBWDomains()[:24],
		Measurements: []Measurement{DNS(), HTTP()},
	}, append([]Option{WithVantages("Airtel", "Idea", "Vodafone")}, opts...)...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var jb, cb bytes.Buffer
	agg := NewAggregateSink()
	sinks := []Sink{NewJSONLSink(&jb), NewCSVSink(&cb), agg}
	if !batched {
		for i, s := range sinks {
			sinks[i] = sinkOnly{s}
		}
	}
	if err := stream.Drain(sinks...); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	return jb.Bytes(), cb.Bytes(), agg.Summary()
}

// TestDrainBatchedVsUnbatchedIdentity pins the BatchSink contract: the
// batch path and the per-result fallback produce byte-identical JSONL,
// CSV and summary output.
func TestDrainBatchedVsUnbatchedIdentity(t *testing.T) {
	s := session(t)
	bj, bc, bs := drainOutputs(t, s, true)
	uj, uc, us := drainOutputs(t, s, false)
	if !bytes.Equal(bj, uj) {
		t.Error("JSONL output differs batched vs unbatched")
	}
	if !bytes.Equal(bc, uc) {
		t.Error("CSV output differs batched vs unbatched")
	}
	if bs != us {
		t.Error("summary differs batched vs unbatched")
	}
	if len(bj) == 0 || len(bc) == 0 || bs == "" {
		t.Fatal("campaign produced no output")
	}
}

// TestDrainBatchedWorkerIdentity pins the parallelism contract on the
// batch path: workers=1 and workers=8 drains are byte-identical.
func TestDrainBatchedWorkerIdentity(t *testing.T) {
	s := session(t)
	j1, c1, s1 := drainOutputs(t, s, true, WithWorkers(1))
	j8, c8, s8 := drainOutputs(t, s, true, WithWorkers(8))
	if !bytes.Equal(j1, j8) {
		t.Error("JSONL output differs workers 1 vs 8")
	}
	if !bytes.Equal(c1, c8) {
		t.Error("CSV output differs workers 1 vs 8")
	}
	if s1 != s8 {
		t.Error("summary differs workers 1 vs 8")
	}
}

// TestDrainBatchedFreshReplicaIdentity checks the batch path against
// per-task fresh worlds: pooling plus batching changes nothing in the
// output bytes.
func TestDrainBatchedFreshReplicaIdentity(t *testing.T) {
	s := session(t)
	pj, pc, ps := drainOutputs(t, s, true)
	fj, fc, fs := drainOutputs(t, s, true, withFreshReplicaWorlds())
	if !bytes.Equal(pj, fj) {
		t.Error("JSONL output differs pooled vs fresh replicas")
	}
	if !bytes.Equal(pc, fc) {
		t.Error("CSV output differs pooled vs fresh replicas")
	}
	if ps != fs {
		t.Error("summary differs pooled vs fresh replicas")
	}
}

// cancelBatchSink cancels a context after its first batch, then keeps
// accepting writes — the consumer-cancels-mid-drain shape.
type cancelBatchSink struct {
	cancel  context.CancelFunc
	batches int
}

func (c *cancelBatchSink) Write(Result) error { return nil }
func (c *cancelBatchSink) WriteBatch(rs []Result) error {
	c.batches++
	if c.batches == 1 {
		c.cancel()
	}
	return nil
}
func (c *cancelBatchSink) Flush() error { return nil }

// TestDrainBatchedContextCancel cancels the campaign context from
// inside a WriteBatch call mid-drain: Drain must terminate (no stuck
// workers behind the batch channel) and report the cancellation.
func TestDrainBatchedContextCancel(t *testing.T) {
	s := session(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := s.Run(ctx, Campaign{
		Domains:      s.PBWDomains()[:64],
		Measurements: []Measurement{DNS(), HTTP()},
	}, WithVantages("Airtel", "Idea", "Vodafone"), WithWorkers(2))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sink := &cancelBatchSink{cancel: cancel}
	// 6 tasks against a 2-batch stream buffer: the merger cannot have
	// emitted every batch when the first one lands in the sink, so the
	// cancellation deterministically strikes a live campaign.
	if err := stream.Drain(sink); err != context.Canceled {
		t.Fatalf("Drain = %v, want context.Canceled", err)
	}
	if sink.batches == 0 {
		t.Fatal("sink saw no batches")
	}
}

// failBatchSink fails on its nth WriteBatch.
type failBatchSink struct {
	after   int
	batches int
}

func (f *failBatchSink) Write(Result) error { return nil }
func (f *failBatchSink) WriteBatch(rs []Result) error {
	f.batches++
	if f.batches > f.after {
		return errBatchBoom
	}
	return nil
}
func (f *failBatchSink) Flush() error { return nil }

// countBatchSink tallies batches and results; records Flush.
type countBatchSink struct {
	batches, results int
	flushed          bool
}

func (c *countBatchSink) Write(Result) error { return nil }
func (c *countBatchSink) WriteBatch(rs []Result) error {
	c.batches++
	c.results += len(rs)
	return nil
}
func (c *countBatchSink) Flush() error {
	c.flushed = true
	return nil
}

var errBatchBoom = errBoom("batch sink exploded")

type errBoom string

func (e errBoom) Error() string { return string(e) }

// TestDrainBatchedSinkError pins batch-path error semantics: the batch
// is the atomic delivery unit, a sink failing on batch N stops the
// fan-out at that batch boundary, every sink still gets flushed, and
// the sink error wins over the stream's cancellation error.
func TestDrainBatchedSinkError(t *testing.T) {
	s := session(t)
	stream, err := s.Run(context.Background(), Campaign{
		Domains:      s.PBWDomains()[:16],
		Measurements: []Measurement{DNS(), HTTP()},
	}, WithVantages("Airtel", "Idea", "Vodafone"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	fail := &failBatchSink{after: 2}
	sibling := &countBatchSink{}
	if err := stream.Drain(fail, sibling); err != errBatchBoom {
		t.Fatalf("Drain = %v, want %v", err, errBatchBoom)
	}
	// The failing sink rejected batch 3 before the sibling saw it.
	if sibling.batches != fail.after {
		t.Errorf("sibling saw %d batches, want %d", sibling.batches, fail.after)
	}
	if !sibling.flushed {
		t.Error("sibling sink was not flushed after the failure")
	}
}

// weakBatchSink records weak pointers to each delivered batch's first
// result without retaining any strong reference to the batch.
type weakBatchSink struct {
	ptrs []weak.Pointer[Result]
}

func (w *weakBatchSink) Write(Result) error { return nil }
func (w *weakBatchSink) WriteBatch(rs []Result) error {
	if len(rs) > 0 {
		w.ptrs = append(w.ptrs, weak.Make(&rs[0]))
	}
	return nil
}
func (w *weakBatchSink) Flush() error { return nil }

// TestCampaignReleasesTaskSlices is the retention regression test for
// the merger: emitted slots are nilled and batch backing arrays live
// only as long as the stream's free list. Once the stream is gone, no
// task slice may remain reachable.
func TestCampaignReleasesTaskSlices(t *testing.T) {
	s := session(t)
	// Drain inside a closure so no local keeps the stream or a batch
	// rooted when the GC runs below.
	ptrs := func() []weak.Pointer[Result] {
		stream, err := s.Run(context.Background(), Campaign{
			Domains:      s.PBWDomains()[:32],
			Measurements: []Measurement{DNS(), HTTP()},
		}, WithVantages("Airtel", "Idea", "Vodafone"), WithWorkers(4))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		sink := &weakBatchSink{}
		if err := stream.Drain(sink); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		return sink.ptrs
	}()
	if len(ptrs) == 0 {
		t.Fatal("no batches observed")
	}
	// Two cycles: the first reclaims the stream and its free list, the
	// second the arrays that list was keeping alive.
	runtime.GC()
	runtime.GC()
	for i, p := range ptrs {
		if p.Value() != nil {
			t.Fatalf("task slice %d of %d still reachable after drain + GC", i, len(ptrs))
		}
	}
}
