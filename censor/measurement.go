package censor

import (
	"context"
	"net/netip"
)

// Measurement is one detector of the paper's toolkit behind a uniform
// interface. Implementations must be stateless: campaign workers share
// one Measurement value across goroutines, each calling Measure with its
// own private Vantage. Detectors become discoverable by name — in
// campaigns, Lookup, and the cmd tools — by Register-ing a factory.
type Measurement interface {
	// Kind names the detector in Result records and in the registry.
	Kind() string
	// Measure runs the detector for one domain from a vantage. The
	// campaign runner observes ctx between domains; implementations with
	// expensive internal steps may additionally check ctx at step
	// boundaries (the DNS detector does, before its verification fetch).
	Measure(ctx context.Context, v *Vantage, domain string) Result
}

// base pre-fills the uniform record fields.
func base(m Measurement, v *Vantage, domain string) Result {
	return Result{Vantage: v.name, Measurement: m.Kind(), Domain: domain}
}

func addrStrings(addrs []netip.Addr) []string {
	if len(addrs) == 0 {
		return nil
	}
	out := make([]string, len(addrs))
	for i, a := range addrs {
		out[i] = a.String()
	}
	return out
}

// ------------------------------------------------------------------- DNS

// DNS returns the per-domain resolver-manipulation detector: the §3.2
// heuristics (ground-truth overlap, in-AS answers, bogons, Tor-verified
// shared hosting) applied to the vantage's default resolver.
func DNS() Measurement { return dnsMeasurement{} }

type dnsMeasurement struct{}

func (dnsMeasurement) Kind() string { return "dns" }

func (m dnsMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	p := v.probe
	local, lerr := p.ResolveLocal(domain)
	if lerr != nil {
		res.Error = lerr.Error()
		return res
	}
	res.Addrs = addrStrings(local)
	tor, terr := p.ResolveViaTor(domain)
	if terr != nil {
		// No uncensored ground truth: dead domain, no verdict.
		res.Error = terr.Error()
		return res
	}
	if ctx.Err() != nil {
		res.Error = ctx.Err().Error()
		return res
	}
	// Classify every answer, like the fleet scan. An unexplained
	// divergent answer is always a suspect — the vantage's classifier
	// Tor-verifies it once per address (shared hosting and CDN edges
	// serve content, block hosts do not).
	if answersManipulated(v, domain, local, torSetOf(tor)) {
		res.Blocked = true
		res.Mechanism = MechanismDNSPoisoning
	}
	return res
}

// ------------------------------------------------------------------ HTTP

// HTTP returns the paper's own HTTP detection pipeline (§3.1/§3.4):
// HTTP-diff against a Tor fetch with the 0.3 threshold, then verification
// of everything over it by refetching and inspecting for censorship
// evidence.
func HTTP() Measurement { return httpMeasurement{} }

type httpMeasurement struct{}

func (httpMeasurement) Kind() string { return "http" }

func (m httpMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	det := v.probe.DetectHTTP(domain)
	res.Blocked = det.Blocked
	res.Diff = det.Diff
	res.Censor = det.SignatureISP
	switch {
	case det.Notification:
		res.Mechanism = MechanismNotification
	case det.Reset:
		res.Mechanism = MechanismReset
	case det.Blocked:
		res.Mechanism = MechanismBlackhole
	}
	return res
}

// ----------------------------------------------------------------- HTTPS

// HTTPS returns the SNI probe of the study: a real ClientHello carrying
// the censored name on port 443. The paper's middleboxes inspect only
// port 80, so the only HTTPS "censorship" is manipulated resolution.
func HTTPS() Measurement { return httpsMeasurement{} }

type httpsMeasurement struct{}

func (httpsMeasurement) Kind() string { return "https" }

func (m httpsMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	det := v.probe.DetectHTTPS(domain)
	if det.Addr.IsValid() {
		res.Addrs = []string{det.Addr.String()}
	}
	if det.DNSManipulated {
		res.Blocked = true
		res.Mechanism = MechanismDNSPoisoning
	}
	return res
}

// ------------------------------------------------------------------- TCP

// TCP returns the §3.3 TCP/IP-filtering test: handshake works via Tor but
// repeated direct attempts all fail. The paper never observed this in any
// ISP; neither does the reproduction.
func TCP() Measurement { return tcpMeasurement{} }

type tcpMeasurement struct{}

func (tcpMeasurement) Kind() string { return "tcp" }

func (m tcpMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	if v.probe.DetectTCP(domain) {
		res.Blocked = true
		res.Mechanism = MechanismTCPFilter
	}
	return res
}

// ------------------------------------------------------------ Collateral

// Collateral returns the §6.1 collateral-damage sweep: censorship
// observed from a (supposedly clean) vantage, attributed to the
// neighbouring ISP whose middlebox caused it — via notification
// signatures for overt censors and the iterative tracer for covert ones.
func Collateral() Measurement { return collateralMeasurement{} }

type collateralMeasurement struct{}

func (collateralMeasurement) Kind() string { return "collateral" }

func (m collateralMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	f := v.probe.CollateralFor(domain)
	res.Blocked = f.Censored
	res.Mechanism = string(f.Mechanism)
	res.Censor = f.Neighbor
	return res
}
