package censor

import (
	"context"

	"repro/internal/ooni"
)

// OONI verdict strings the ooni detector places in Result.Mechanism —
// web_connectivity's own blocking vocabulary, distinct from the probe
// mechanisms of the paper's detectors.
const (
	MechanismOONIDNS         = string(ooni.BlockingDNS)
	MechanismOONITCP         = string(ooni.BlockingTCP)
	MechanismOONIHTTPDiff    = string(ooni.BlockingHTTPDiff)
	MechanismOONIHTTPFailure = string(ooni.BlockingHTTPFailure)
)

// OONIDetail is the typed Result.Detail payload of the ooni measurement:
// web_connectivity's verdict, the intermediate comparison signals the
// verdict was derived from, and the agreement with the simulation's
// ground truth — the per-domain cell behind the paper's Table 1.
type OONIDetail struct {
	// Verdict is OONI's blocking value ("", "dns", "tcp_ip", "http-diff",
	// "http-failure").
	Verdict string `json:"verdict"`
	// Accessible is OONI's accessibility conclusion.
	Accessible bool `json:"accessible"`
	// The comparison signals of the published web_connectivity rules.
	DNSConsistent bool `json:"dns_consistent"`
	TCPSucceeded  bool `json:"tcp_succeeded"`
	BodyPropOK    bool `json:"body_prop_ok"`
	HeadersMatch  bool `json:"headers_match"`
	TitleCompared bool `json:"title_compared"`
	TitleMatch    bool `json:"title_match"`
	// TruthBlocked: the oracle (standing in for the authors' manual
	// verification) says some mechanism really interferes with this
	// domain from this vantage.
	TruthBlocked bool `json:"truth_blocked"`
	// Agrees: OONI's flagged/clean verdict matches TruthBlocked — the
	// per-domain agreement Table 1 aggregates into precision and recall.
	Agrees bool `json:"agrees"`
}

// OONI returns the §6.2 audit measurement: it runs the OONI
// web_connectivity replica for the domain and scores the verdict against
// the simulation's ground truth. Result.Blocked is OONI's verdict — NOT
// the ground truth — so campaigns over this measurement reproduce OONI's
// false positives and negatives; the OONIDetail carries the agreement
// fields Table 1 is built from.
func OONI() Measurement { return ooniMeasurement{} }

type ooniMeasurement struct{}

func (ooniMeasurement) Kind() string { return "ooni" }

func (m ooniMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	if err := ctx.Err(); err != nil {
		res.Error = err.Error()
		return res
	}
	runner := ooni.NewRunner(v.world, v.probe.ISP)
	runner.Timeout = v.probe.Timeout
	meas := runner.Run(domain)

	res.Blocked = meas.Verdict != ooni.BlockingNone
	res.Mechanism = string(meas.Verdict)
	truth := v.world.TruthFor(v.probe.ISP, domain)
	res.Detail = OONIDetail{
		Verdict:       string(meas.Verdict),
		Accessible:    meas.Accessible,
		DNSConsistent: meas.DNSConsistent,
		TCPSucceeded:  meas.TCPSucceeded,
		BodyPropOK:    meas.BodyPropOK,
		HeadersMatch:  meas.HeadersMatch,
		TitleCompared: meas.TitleCompared,
		TitleMatch:    meas.TitleMatch,
		TruthBlocked:  truth.Blocked(),
		Agrees:        res.Blocked == truth.Blocked(),
	}
	return res
}
