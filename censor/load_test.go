package censor

import (
	"bytes"
	"context"
	"testing"
)

func TestApplyLoadDirectives(t *testing.T) {
	base := MustLookupScenario("paper-2018")

	loaded, err := ApplyLoad(base, "users=10000,capacity=2048,think=1500ms,zipf=1.3")
	if err != nil {
		t.Fatalf("ApplyLoad: %v", err)
	}
	total, edges := 0, 0
	for _, isp := range loaded.ISPs {
		total += isp.Population.Users
		edges += isp.Edges
		if isp.Population.Users > 0 {
			if isp.Population.ThinkMS != 1500 || isp.Population.Zipf != 1.3 {
				t.Errorf("%s: think/zipf not applied: %+v", isp.Name, isp.Population)
			}
		}
		censoring := isp.Mechanism == "wiretap" || isp.Mechanism == "interceptive-overt" ||
			isp.Mechanism == "interceptive-covert"
		provider := isp.Name == "TATA" || isp.Name == "Airtel" || isp.Name == "Vodafone"
		if censoring || provider {
			if isp.FlowCapacity != 2048 {
				t.Errorf("%s deploys boxes but capacity not applied (%d)", isp.Name, isp.FlowCapacity)
			}
		} else if isp.FlowCapacity != 0 {
			t.Errorf("%s deploys no boxes but got capacity %d", isp.Name, isp.FlowCapacity)
		}
	}
	if total != 10000 {
		t.Fatalf("apportioned %d users, want exactly 10000", total)
	}
	// Proportionality: MTNL has 56 of the edges, so it seats the largest
	// population.
	for _, isp := range loaded.ISPs {
		if isp.Name != "MTNL" && isp.Population.Users > pop(loaded, "MTNL") {
			t.Errorf("%s seats %d users, more than MTNL's %d despite fewer edges",
				isp.Name, isp.Population.Users, pop(loaded, "MTNL"))
		}
	}
	// The input scenario is untouched.
	for _, isp := range base.ISPs {
		if isp.Population.Users != 0 || isp.FlowCapacity != 0 {
			t.Fatalf("ApplyLoad mutated its input: %+v", isp)
		}
	}

	// users=0 strips populations from an already-loaded scenario.
	idle, err := ApplyLoad(MustLookupScenario("paper-2018-loaded"), "users=0")
	if err != nil {
		t.Fatalf("ApplyLoad(users=0): %v", err)
	}
	for _, isp := range idle.ISPs {
		if isp.Population.Users != 0 {
			t.Errorf("users=0 left %s populated", isp.Name)
		}
	}

	for _, bad := range []string{
		"",                  // users missing
		"think=2s",          // users missing
		"users=ten",         // not a number
		"users=-5",          // negative
		"users=10,weird=1",  // unknown key
		"users=10,think=0s", // non-positive think
		"users",             // not key=value
	} {
		if _, err := ApplyLoad(base, bad); err == nil {
			t.Errorf("ApplyLoad(%q) accepted a bad directive", bad)
		}
	}
}

func pop(sc Scenario, name string) int {
	for _, isp := range sc.ISPs {
		if isp.Name == name {
			return isp.Population.Users
		}
	}
	return -1
}

// TestLoadedCampaignDeterminism runs a campaign against a world under
// background load: the replica pool, the byte-identity contract and the
// result stream must all behave exactly as they do idle — workers=1,
// workers=4 and fresh-world-per-task runs byte-identical, with background
// flows churning every box's table throughout.
func TestLoadedCampaignDeterminism(t *testing.T) {
	sc, err := ApplyLoad(MustLookupScenario("small"), "users=1200,capacity=512")
	if err != nil {
		t.Fatalf("ApplyLoad: %v", err)
	}
	s, err := NewSession(context.Background(), WithScenario(sc))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	domains := append([]string(nil), s.PBWDomains()[:2]...)
	domains = append(domains, s.World().ISP("Idea").HTTPList[:2]...)

	sequential := campaignJSONL(t, s, 1, domains)
	parallel := campaignJSONL(t, s, 4, domains)
	if !bytes.Equal(sequential, parallel) {
		t.Fatalf("loaded campaign diverged between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			sequential, parallel)
	}
	fresh := campaignJSONL(t, s, 4, domains, withFreshReplicaWorlds())
	if !bytes.Equal(sequential, fresh) {
		t.Fatalf("loaded campaign diverged from fresh-world-per-task run:\n--- pooled ---\n%s\n--- fresh ---\n%s",
			sequential, fresh)
	}
	if !bytes.Contains(sequential, []byte(`"blocked":true`)) {
		t.Error("loaded small campaign observed no censorship")
	}
}
