// Package censor is the public measurement API of the reproduction.
//
// A Session binds a simulated Indian Internet (the world of Yadav et al.,
// IMC 2018) to a measurement configuration. Individual measurements run
// synchronously on the session's world via [Session.Measure]; campaigns —
// many vantages × many detectors × many domains, the shape of the paper's
// months-long study — run through [Session.Run], which fans tasks out over
// a deterministic worker pool and streams uniform [Result] records back in
// a stable order. A campaign executed with [WithWorkers](N) produces
// byte-identical output to the same campaign executed sequentially.
//
// Detectors live in a registry: every analysis of the paper is a named
// [Measurement] — the five probe detectors ("dns", "http", "https",
// "tcp", "collateral") plus the promoted subsystems "evasion" (§5),
// "ooni" (§6.2) and "fingerprint" (§4) — resolvable with [Lookup],
// enumerable with [Names], and extensible with [Register]. Detectors
// with structured findings attach typed payloads ([EvasionDetail],
// [OONIDetail], [FingerprintDetail]) to [Result.Detail]; recover them
// with [DetailAs].
//
// Campaign output flows through pluggable [Sink]s ([Stream.Drain]):
// [JSONLSink] and [CSVSink] stream records, [AggregateSink] folds them
// into per-vantage/per-mechanism tallies — the paper's summary-table
// shapes — in memory.
//
// Worlds are built from scenarios: a [Scenario] is a JSON-serializable
// spec of global sizing plus per-ISP censorship behaviour (mechanism,
// middlebox deployment and consistency, blocklists, resolver poisoning,
// transit links), compiled to a packet-level world by [WithScenario].
// Presets live in their own registry ([RegisterScenario] /
// [LookupScenario] / [Scenarios]): "paper-2018" and "small" are the
// paper's calibration, and "dns-only", "all-interceptive" and
// "no-censorship" cover regimes the study never observed. The paper is
// one point in the scenario space, not the shape of the API.
//
// A typical session:
//
//	sess, _ := censor.NewSession(ctx, censor.WithScenario(censor.MustLookupScenario("small")))
//	stream, _ := sess.Run(ctx, censor.Campaign{
//		Domains:      sess.PBWDomains()[:50],
//		Measurements: []censor.Measurement{censor.HTTP(), censor.DNS()},
//	}, censor.WithWorkers(4))
//	for res := range stream.Results() {
//		fmt.Println(res.Domain, res.Blocked, res.Mechanism)
//	}
//
// Determinism: every task of a campaign (one vantage running one
// measurement over the campaign's domains) executes inside its own
// freshly built world seeded from the session's configuration, so task
// results are independent of scheduling, and the merger emits them in
// task order. This is what makes parallel campaigns reproducible — and it
// is the seam later scaling work (sharding, caching, remote backends)
// plugs into.
package censor

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/ispnet"
	"repro/internal/probe"
	"repro/obs"
)

// Scale selects a world size.
type Scale int

// The two calibrated world sizes.
const (
	// ScalePaper is the paper-scale world: 1200 potentially blocked
	// websites, Alexa 1000, 40 vantage points, the nine ISPs plus TATA.
	ScalePaper Scale = iota
	// ScaleSmall is the reduced world for experimentation and tests.
	ScaleSmall
)

// StudyISPs are the nine ISPs of the study, in the paper's order: the
// default vantage set for campaigns.
var StudyISPs = []string{
	"Airtel", "Idea", "Vodafone", "Jio", "MTNL", "BSNL", "NKN", "Sify", "Siti",
}

// config carries session and campaign settings; Options mutate it.
type config struct {
	world    ispnet.Config
	scenario Scenario
	err      error // deferred option error, surfaced by NewSession/Run
	timeout  time.Duration
	attempts int
	// vantages nil means "not chosen": NewSession falls back to the
	// scenario's default vantage set.
	vantages []string
	workers  int
	// freshReplicas disables the campaign world pool, rebuilding a world
	// per task — the pre-pooling behaviour, kept (unexported) so the
	// benchmarks and the determinism tests can compare against it.
	freshReplicas bool
	// pcapDir, when set, makes campaign tasks record the vantage client's
	// packets into <pcapDir>/<vantage>_<kind>.pcap files.
	pcapDir string
	// obs, when set, receives campaign telemetry: each task's world-metric
	// delta is merged in, and the runner's own process-side instruments
	// (task timing, merge wait, replica pool traffic) live here too.
	obs *obs.Registry
	// trace, when set, records per-worker task spans and merge-wait spans
	// (wall-clock timebase).
	trace *obs.Tracer
}

func defaultConfig() config {
	return config{
		scenario: mustScenario("paper-2018"),
		world:    ispnet.DefaultConfig(),
		timeout:  3 * time.Second,
		workers:  1,
	}
}

// Option configures a Session or overrides its defaults for one campaign.
type Option func(*config)

// WithScenario builds the session's world from a scenario spec — a
// registered preset from LookupScenario, or any Scenario the caller
// defined in Go or unmarshalled from JSON. The spec is validated and
// compiled here; an invalid one fails NewSession with the validation
// error. The scenario's Vantages (or, when empty, its full ISP list)
// becomes the default campaign vantage set unless WithVantages overrides
// it.
func WithScenario(s Scenario) Option {
	return func(c *config) {
		// Full spec validation (including the censor-layer Vantages
		// field), then the lowering to a world config.
		if err := s.Validate(); err != nil {
			c.err = fmt.Errorf("censor: %w", err)
			return
		}
		world, err := s.lower().Compile()
		if err != nil {
			c.err = fmt.Errorf("censor: %w", err)
			return
		}
		c.world = world
		c.scenario = s.Clone()
	}
}

// WithScale picks one of the calibrated world sizes.
//
// Deprecated: scales are just the two paper presets now — use
// WithScenario with LookupScenario("paper-2018") or
// LookupScenario("small"), which also opens every other preset and custom
// world.
func WithScale(s Scale) Option {
	name := "paper-2018"
	if s == ScaleSmall {
		name = "small"
	}
	return WithScenario(mustScenario(name))
}

// WithSeed reseeds the world's deterministic engine.
func WithSeed(seed int64) Option {
	return func(c *config) {
		c.world.Seed = seed
		c.scenario.Seed = seed
	}
}

// WithTimeout bounds every network wait a probe performs.
func WithTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithAttempts sets the per-fetch retry count detectors use to beat
// wiretap race losses (0 keeps each detector's paper-calibrated default).
func WithAttempts(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.attempts = n
		}
	}
}

// WithVantages sets the vantage ISPs campaigns fan out over, in order.
// The default is the nine studied ISPs (StudyISPs). Direct access via
// Session.Vantage/Measure is not restricted by this list.
func WithVantages(isps ...string) Option {
	return func(c *config) {
		if len(isps) > 0 {
			c.vantages = append([]string(nil), isps...)
		}
	}
}

// WithPcap makes campaign tasks capture the vantage client's packets into
// classic .pcap files under dir, one per (vantage, measurement) task,
// named <vantage>_<kind>.pcap. Timestamps are virtual, so for a given
// scenario the files are byte-identical run to run and across worker
// counts — golden artifacts, same contract as the result stream.
//
// The directory is created and probed for writability when the option is
// applied; an unusable path surfaces as an error from NewSession or Run
// rather than as silent capture loss mid-campaign.
func WithPcap(dir string) Option {
	return func(c *config) {
		if dir == "" {
			c.err = fmt.Errorf("censor: WithPcap: empty directory")
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			c.err = fmt.Errorf("censor: WithPcap: %w", err)
			return
		}
		probe, err := os.CreateTemp(dir, ".pcap-probe-*")
		if err != nil {
			c.err = fmt.Errorf("censor: WithPcap: directory not writable: %w", err)
			return
		}
		probe.Close()
		os.Remove(probe.Name())
		c.pcapDir = dir
	}
}

// WithWorkers sets campaign parallelism. Results are byte-identical for
// every N ≥ 1; only wall-clock time changes.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithTelemetry aggregates campaign telemetry into reg. Two kinds of
// series land there. World metrics (sim_*, netsim_*, middlebox_*,
// trafficgen_* — scheduler traffic, packet counts, flow-table pressure)
// are merged in per task as each task's world delta; they count virtual
// events only, so their sums are byte-identical across worker counts and
// replica pooling. Process metrics (censor_* — task/merge wall timing,
// replica pool hits and builds) describe the runner itself and
// legitimately vary run to run. The same registry may serve many
// campaigns and a monitor /metrics endpoint concurrently.
func WithTelemetry(reg *obs.Registry) Option {
	return func(c *config) { c.obs = reg }
}

// WithTrace records campaign execution spans into tr: one span per task
// (named <vantage>/<kind>, on the worker's trace thread) and one
// merge-wait span per task the merger had to block for. Spans are
// stamped with obs.WallClock — campaign tracing profiles the runner, not
// the simulation, so unlike the result stream it is not deterministic.
// Export with Tracer.WriteChromeTrace (Perfetto) or WriteJSONL.
func WithTrace(tr *obs.Tracer) Option {
	return func(c *config) {
		if tr != nil {
			tr.SetClock(obs.WallClock)
		}
		c.trace = tr
	}
}

// Session binds one simulated world to a measurement configuration. The
// session's own world backs Measure and Vantage; campaign tasks build
// isolated replicas of it (same seed, same sizing) so they can run
// concurrently without sharing the single-threaded simulation engine.
//
// Concurrency: Measure calls serialize on the shared world and may be
// issued from multiple goroutines. Probes reached through Vantage drive
// that same world WITHOUT the lock — do not use them concurrently with
// Measure or with each other. Campaigns take no lock at all; they scale
// across workers on replica worlds instead.
type Session struct {
	cfg config

	mu    sync.Mutex // guards world: the sim engine is single-threaded
	world *ispnet.World

	// replicaMu guards replicas: reset replica worlds parked between
	// campaigns, so back-to-back Runs (the censord scheduler's recurring
	// firings, benchmark loops) stop paying world builds entirely. Every
	// parked world satisfies the Reset contract — indistinguishable from a
	// fresh build — which is what keeps cross-run pooling invisible in the
	// output.
	replicaMu sync.Mutex
	replicas  []*ispnet.World
}

// replicaPoolMax bounds how many reset replica worlds a session parks
// between campaigns.
const replicaPoolMax = 16

// takeReplica checks a parked replica world out of the session pool.
func (s *Session) takeReplica() *ispnet.World {
	s.replicaMu.Lock()
	defer s.replicaMu.Unlock()
	if n := len(s.replicas); n > 0 {
		w := s.replicas[n-1]
		s.replicas[n-1] = nil
		s.replicas = s.replicas[:n-1]
		return w
	}
	return nil
}

// parkReplica checks a reset replica world back in for the next campaign.
func (s *Session) parkReplica(w *ispnet.World) {
	s.replicaMu.Lock()
	defer s.replicaMu.Unlock()
	if len(s.replicas) < replicaPoolMax {
		s.replicas = append(s.replicas, w)
	}
}

// NewSession builds the world and validates the configuration.
func NewSession(ctx context.Context, opts ...Option) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if cfg.vantages == nil {
		cfg.vantages = defaultVantages(cfg.scenario)
	}
	// Validate vantages against the profile list before paying for the
	// world build, so a typo fails instantly even at paper scale — the
	// error lists what this world offers.
	avail := make([]string, 0, len(cfg.world.Profiles))
	known := make(map[string]bool, len(cfg.world.Profiles))
	for i := range cfg.world.Profiles {
		avail = append(avail, cfg.world.Profiles[i].Name)
		known[cfg.world.Profiles[i].Name] = true
	}
	for _, name := range cfg.vantages {
		if !known[name] {
			return nil, fmt.Errorf("censor: unknown vantage ISP %q (available: %s)",
				name, strings.Join(avail, ", "))
		}
	}
	return &Session{cfg: cfg, world: ispnet.NewWorld(cfg.world)}, nil
}

// World exposes the session's shared world (in-repo callers: oracle
// access for evaluation, raw endpoints for packet-level demos). The world
// is bound to a single-threaded engine; serialize access with the
// session's measurement calls.
//
//repolint:allow apisurface -- documented oracle hatch; evaluation code needs ground truth the clean surface hides
func (s *Session) World() *ispnet.World { return s.world }

// AcquireWorld checks the session's shared world out to an external
// serialized driver — the netbridge pump goroutine — and returns it with a
// release func. The caller owns the world until release: Measure blocks
// for the duration (campaigns are unaffected; they run on replicas).
// Release is idempotent. This is the bridge hatch: everything else about
// the clean surface stays internal-free, but seating real net.Conn
// endpoints on the simulation requires handing the packet-level world to
// exactly one foreign goroutine at a time.
//
//repolint:allow apisurface -- documented bridge hatch; netbridge seats real sockets on the session world under this lock
func (s *Session) AcquireWorld() (*ispnet.World, func()) {
	s.mu.Lock()
	// The lock serializes all world use; adopt it for the acquiring side.
	s.world.Rebind()
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.world.Rebind()
			s.mu.Unlock()
		})
	}
	return s.world, release
}

// Scenario returns a copy of the scenario this session's world was built
// from — the spec campaign workers replicate.
func (s *Session) Scenario() Scenario { return s.cfg.scenario.Clone() }

// Vantages returns the session's configured vantage ISPs.
func (s *Session) Vantages() []string {
	return append([]string(nil), s.cfg.vantages...)
}

// PBWDomains returns the world's potentially-blocked-website list, the
// paper's 1200-domain measurement population.
func (s *Session) PBWDomains() []string {
	return s.world.Catalog.PBWDomains()
}

// Vantage returns a measurement vantage inside the named ISP, bound to
// the session's shared world.
func (s *Session) Vantage(name string) (*Vantage, error) {
	return newVantage(s.world, name, s.cfg)
}

// MustVantage is Vantage for vantages known to exist (demo binaries,
// tests); it panics on an unknown ISP.
func MustVantage(s *Session, name string) *Vantage {
	v, err := s.Vantage(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Measure runs one measurement for each domain from the named vantage on
// the session's shared world, synchronously and in order, honouring ctx
// between domains. For fan-out across vantages or detectors use Run.
func (s *Session) Measure(ctx context.Context, vantage string, m Measurement, domains ...string) ([]Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Holding mu serializes all world use; adopt it for this goroutine.
	s.world.Rebind()
	v, err := s.Vantage(vantage)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(domains))
	for _, d := range domains {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out = append(out, m.Measure(ctx, v, d))
	}
	return out, nil
}

// Vantage is a measurement client inside one ISP. Vantages returned by
// Session.Vantage share the session's world and must not be used
// concurrently with each other; campaign workers get private ones.
type Vantage struct {
	name  string
	world *ispnet.World
	probe *probe.Probe
	// classifier caches §3.2 Tor-verifications across this vantage's
	// measurements, like the paper's fleet scans.
	classifier *probe.AnswerClassifier
}

func newVantage(w *ispnet.World, name string, cfg config) (*Vantage, error) {
	isp := w.ISP(name)
	if isp == nil {
		return nil, fmt.Errorf("censor: unknown vantage ISP %q", name)
	}
	p := probe.New(w, isp)
	p.Timeout = cfg.timeout
	p.Attempts = cfg.attempts
	return &Vantage{name: name, world: w, probe: p, classifier: p.NewAnswerClassifier()}, nil
}

// Name returns the vantage's ISP name.
func (v *Vantage) Name() string { return v.name }

// Probe exposes the underlying measurement toolkit for flows the uniform
// Measurement interface does not cover (tracers, trigger batteries,
// resolver sweeps).
//
//repolint:allow apisurface -- documented oracle hatch; demos and detectors-in-progress reach the raw toolkit here
func (v *Vantage) Probe() *probe.Probe { return v.probe }

// World exposes the world this vantage measures in.
//
//repolint:allow apisurface -- documented oracle hatch; evaluation code needs ground truth the clean surface hides
func (v *Vantage) World() *ispnet.World { return v.world }
