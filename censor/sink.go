package censor

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sink consumes a campaign's Result stream.
//
// Concurrency contract: campaigns deliver results to sinks in the
// stream's deterministic order (Stream.Drain), one result at a time from
// a single goroutine, and Flush once the stream is done — Drain
// serializes all writes, so sinks written only through Drain need no
// internal locking. JSONLSink and CSVSink rely on exactly that and are
// NOT safe for concurrent use from multiple goroutines. AggregateSink
// locks anyway, so it can also fold results written concurrently from
// application code; monitor.Store makes the same promise and further
// allows queries concurrent with writes.
type Sink interface {
	// Write consumes one result.
	Write(Result) error
	// Flush finalizes buffered output after the last Write.
	Flush() error
}

// BatchSink is the optional batch face of a Sink. Campaign streams move
// whole task batches internally; when every sink handed to Stream.Drain
// implements BatchSink, each batch is delivered with a single WriteBatch
// call instead of one Write per result — one lock round-trip, one
// dispatch, per task.
//
// Contract: WriteBatch must consume the batch equivalently to calling
// Write on each element in order (output bytes are asserted identical by
// the byte-identity tests), and it must NOT retain the slice — the
// stream clears and reuses the backing array as soon as WriteBatch
// returns. Copy the Result values out (they are plain values; copying
// one is safe) if the sink keeps them, as monitor.Store does. The
// serialization contract is unchanged: Drain calls WriteBatch from a
// single goroutine, one batch at a time.
type BatchSink interface {
	Sink
	// WriteBatch consumes one task's results, in order.
	WriteBatch([]Result) error
}

// ------------------------------------------------------------------ JSONL

// JSONLSink writes one JSON object per result line — the raw-data shape
// long-running deployments archive.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink builds a JSONL sink over a writer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Write encodes one result as a JSON line.
func (s *JSONLSink) Write(r Result) error {
	if err := s.enc.Encode(&r); err != nil {
		return fmt.Errorf("censor: jsonl: %w", err)
	}
	return nil
}

// WriteBatch encodes one task's results, one JSON line each.
func (s *JSONLSink) WriteBatch(rs []Result) error {
	for i := range rs {
		if err := s.enc.Encode(&rs[i]); err != nil {
			return fmt.Errorf("censor: jsonl: %w", err)
		}
	}
	return nil
}

// Flush is a no-op: every Write is already complete output.
func (s *JSONLSink) Flush() error { return nil }

// -------------------------------------------------------------------- CSV

// csvHeader is the fixed column set of CSVSink, one column per Result
// field; Detail is serialized as a JSON object in the last column.
var csvHeader = []string{
	"vantage", "measurement", "domain", "blocked",
	"mechanism", "censor", "diff", "addrs", "error", "detail",
}

// CSVSink writes results as CSV with a fixed header row — the shape
// spreadsheet and dataframe tooling ingests directly.
type CSVSink struct {
	w          *csv.Writer
	headerDone bool
}

// NewCSVSink builds a CSV sink over a writer.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Write appends one CSV record (and the header before the first one).
func (s *CSVSink) Write(r Result) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	diff := ""
	if r.Diff != 0 {
		diff = strconv.FormatFloat(r.Diff, 'g', -1, 64)
	}
	detail := ""
	if r.Detail != nil {
		b, err := json.Marshal(r.Detail)
		if err != nil {
			return fmt.Errorf("censor: csv: detail: %w", err)
		}
		detail = string(b)
	}
	rec := []string{
		r.Vantage, r.Measurement, r.Domain, strconv.FormatBool(r.Blocked),
		r.Mechanism, r.Censor, diff, strings.Join(r.Addrs, " "), r.Error, detail,
	}
	if err := s.w.Write(rec); err != nil {
		return fmt.Errorf("censor: csv: %w", err)
	}
	return nil
}

// WriteBatch appends one task's results as CSV records.
func (s *CSVSink) WriteBatch(rs []Result) error {
	for i := range rs {
		if err := s.Write(rs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (s *CSVSink) writeHeader() error {
	if s.headerDone {
		return nil
	}
	if err := s.w.Write(csvHeader); err != nil {
		return fmt.Errorf("censor: csv: %w", err)
	}
	s.headerDone = true
	return nil
}

// Flush writes any buffered records through — including the header row
// alone when the stream delivered no results, so the output always
// carries the documented fixed header.
func (s *CSVSink) Flush() error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		return fmt.Errorf("censor: csv: %w", err)
	}
	return nil
}

// -------------------------------------------------------------- Aggregate

// Tally is one vantage's aggregate over a campaign: the overall verdict
// counts (the Table 2/3 shapes), plus folds of the detail-bearing
// measurements — the §5 evasion matrix, Table 1 agreement, and the §4
// middlebox fingerprints.
type Tally struct {
	Total, Blocked, Errors int
	// ByMeasurement counts blocked verdicts per detector kind.
	ByMeasurement map[string]int
	// ByMechanism counts blocked verdicts per mechanism (Table 2 shape).
	ByMechanism map[string]int
	// ByCensor counts blocked verdicts per attributed censor — from this
	// vantage's perspective the Table 3 collateral row.
	ByCensor map[string]int

	// Evasion fold (§5): domains measured / baseline-censored / evaded by
	// at least one technique, and per-technique success counts.
	EvasionTried, EvasionBlocked, EvasionEvaded int
	TechniqueSuccess                            map[string]int

	// OONI fold (Table 1): runs, flags, ground truth and agreement.
	OONIRuns, OONIFlagged, OONITruth, OONITruePositive, OONIAgree int

	// Fingerprint fold (§4): observed box types, statefulness and IP-ID
	// signatures among censored domains.
	BoxTypes                map[string]int
	Stateful, IPIDSignature int
}

func newTally() *Tally {
	return &Tally{
		ByMeasurement:    map[string]int{},
		ByMechanism:      map[string]int{},
		ByCensor:         map[string]int{},
		TechniqueSuccess: map[string]int{},
		BoxTypes:         map[string]int{},
	}
}

// Add folds one result into the tally — the single fold AggregateSink
// and monitor's result store share, so their roll-ups can never drift
// apart. Nil count maps are allocated on demand, making the zero Tally
// usable. Add is not safe for concurrent use; callers that share a Tally
// across goroutines must guard it (AggregateSink does).
func (t *Tally) Add(r Result) {
	if t.ByMeasurement == nil {
		t.ByMeasurement = map[string]int{}
		t.ByMechanism = map[string]int{}
		t.ByCensor = map[string]int{}
		t.TechniqueSuccess = map[string]int{}
		t.BoxTypes = map[string]int{}
	}
	t.Total++
	if r.Error != "" {
		t.Errors++
	}
	if r.Blocked {
		t.Blocked++
		t.ByMeasurement[r.Measurement]++
		if r.Mechanism != "" {
			t.ByMechanism[r.Mechanism]++
		}
		if r.Censor != "" {
			t.ByCensor[r.Censor]++
		}
	}
	switch r.Measurement {
	case "evasion":
		t.EvasionTried++
		if r.Blocked {
			t.EvasionBlocked++
		}
		if d, ok := DetailAs[EvasionDetail](r); ok {
			if d.Evaded {
				t.EvasionEvaded++
			}
			for _, o := range d.Techniques {
				if o.Success {
					t.TechniqueSuccess[o.Technique]++
				}
			}
		}
	case "ooni":
		if d, ok := DetailAs[OONIDetail](r); ok {
			t.OONIRuns++
			if r.Blocked {
				t.OONIFlagged++
			}
			if d.TruthBlocked {
				t.OONITruth++
			}
			if r.Blocked && d.TruthBlocked {
				t.OONITruePositive++
			}
			if d.Agrees {
				t.OONIAgree++
			}
		}
	case "fingerprint":
		if d, ok := DetailAs[FingerprintDetail](r); ok {
			if d.BoxType != "" {
				t.BoxTypes[d.BoxType]++
			}
			if d.StatefulChecked && d.Stateful {
				t.Stateful++
			}
			if d.IPID != 0 {
				t.IPIDSignature++
			}
		}
	}
}

// AggregateSink folds results into per-vantage tallies without retaining
// individual records — the in-memory backend behind censorscan's
// -format summary. Summary renders deterministically for a deterministic
// write order, so a parallel campaign drained into an AggregateSink
// summarizes byte-identically to the sequential run.
type AggregateSink struct {
	mu       sync.Mutex
	vantages []string // first-seen order: the campaign's vantage order
	tallies  map[string]*Tally
}

// NewAggregateSink builds an empty aggregate.
func NewAggregateSink() *AggregateSink {
	return &AggregateSink{tallies: map[string]*Tally{}}
}

// Write folds one result into its vantage's tally.
func (s *AggregateSink) Write(r Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeLocked(r)
	return nil
}

// WriteBatch folds one task's results under a single lock round-trip.
func (s *AggregateSink) WriteBatch(rs []Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range rs {
		s.writeLocked(rs[i])
	}
	return nil
}

func (s *AggregateSink) writeLocked(r Result) {
	t, ok := s.tallies[r.Vantage]
	if !ok {
		t = newTally()
		s.tallies[r.Vantage] = t
		s.vantages = append(s.vantages, r.Vantage)
	}
	t.Add(r)
}

// Flush is a no-op; the aggregate lives in memory until read.
func (s *AggregateSink) Flush() error { return nil }

// Vantages returns the vantages seen, in first-write order (the
// campaign's configured vantage order when driven by Stream.Drain).
func (s *AggregateSink) Vantages() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.vantages...)
}

// TallyFor returns a copy of one vantage's tally (zero Tally if unseen).
func (s *AggregateSink) TallyFor(vantage string) Tally {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tallies[vantage]
	if !ok {
		return Tally{}
	}
	cp := *t
	cp.ByMeasurement = copyCounts(t.ByMeasurement)
	cp.ByMechanism = copyCounts(t.ByMechanism)
	cp.ByCensor = copyCounts(t.ByCensor)
	cp.TechniqueSuccess = copyCounts(t.TechniqueSuccess)
	cp.BoxTypes = copyCounts(t.BoxTypes)
	return cp
}

func copyCounts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Summary renders the aggregate as the paper-flavoured text tables:
// per-vantage verdicts and mechanisms, then — when the campaign carried
// the corresponding measurements — the evasion matrix, the OONI
// agreement table, and the fingerprint census. Output is deterministic:
// vantages in first-write order, map folds sorted by key.
func (s *AggregateSink) Summary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	total := 0
	for _, t := range s.tallies {
		total += t.Total
	}
	fmt.Fprintf(&b, "Campaign summary: %d results across %d vantages\n", total, len(s.vantages))
	fmt.Fprintf(&b, "%-10s %7s %8s %7s  %s\n", "vantage", "total", "blocked", "errors", "mechanisms")
	for _, v := range s.vantages {
		t := s.tallies[v]
		fmt.Fprintf(&b, "%-10s %7d %8d %7d  %s\n", v, t.Total, t.Blocked, t.Errors, foldCounts(t.ByMechanism))
		if len(t.ByCensor) > 0 {
			fmt.Fprintf(&b, "%-10s %25s %s\n", "", "attributed:", foldCounts(t.ByCensor))
		}
	}

	if s.any(func(t *Tally) bool { return t.EvasionTried > 0 }) {
		b.WriteString("\nEvasion (§5) — successes per technique over baseline-censored domains:\n")
		for _, v := range s.vantages {
			t := s.tallies[v]
			if t.EvasionTried == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-10s censored=%d/%d evaded=%d  %s\n",
				v, t.EvasionBlocked, t.EvasionTried, t.EvasionEvaded, foldCounts(t.TechniqueSuccess))
		}
	}

	if s.any(func(t *Tally) bool { return t.OONIRuns > 0 }) {
		b.WriteString("\nOONI web_connectivity vs ground truth (Table 1 shape):\n")
		fmt.Fprintf(&b, "%-10s %7s %7s %6s %6s %10s %7s\n",
			"vantage", "runs", "flagged", "truth", "agree", "precision", "recall")
		for _, v := range s.vantages {
			t := s.tallies[v]
			if t.OONIRuns == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-10s %7d %7d %6d %6d %10s %7s\n",
				v, t.OONIRuns, t.OONIFlagged, t.OONITruth, t.OONIAgree,
				ratio(t.OONITruePositive, t.OONIFlagged), ratio(t.OONITruePositive, t.OONITruth))
		}
	}

	if s.any(func(t *Tally) bool { return len(t.BoxTypes) > 0 || t.Stateful > 0 || t.IPIDSignature > 0 }) {
		b.WriteString("\nMiddlebox fingerprints (§4):\n")
		for _, v := range s.vantages {
			t := s.tallies[v]
			if len(t.BoxTypes) == 0 && t.Stateful == 0 && t.IPIDSignature == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-10s %s stateful=%d ipid-signature=%d\n",
				v, foldCounts(t.BoxTypes), t.Stateful, t.IPIDSignature)
		}
	}
	return b.String()
}

func (s *AggregateSink) any(pred func(*Tally) bool) bool {
	for _, t := range s.tallies {
		if pred(t) {
			return true
		}
	}
	return false
}

// foldCounts renders a count map as "k=v" pairs sorted by key.
func foldCounts(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

func ratio(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(num)/float64(den))
}
