package censor

import (
	"context"

	"repro/internal/probe"
)

// FingerprintDetail is the typed Result.Detail payload of the
// fingerprint measurement: the §4 middlebox anatomy for one censored
// (vantage, domain) — deployment style, visibility, state handling and
// injection signature — plus the DNS-side tracer verdict when the
// domain's resolution is manipulated. Unblocked domains carry no Detail.
type FingerprintDetail struct {
	// BoxType is the §4.2.1 remote-controlled-host verdict: "wiretap"
	// (the box copies traffic and races the genuine response),
	// "interceptive" (the box consumes the request), or "unknown".
	BoxType string `json:"box_type,omitempty"`
	// Overt / Covert describe the censorship's visibility: a notification
	// page versus a bare forged RST.
	Overt  bool `json:"overt,omitempty"`
	Covert bool `json:"covert,omitempty"`
	// SignatureISP attributes an overt notification's content (§6.1).
	SignatureISP string `json:"signature_isp,omitempty"`
	// StatefulChecked / Stateful report the §4.2.1 handshake-state probe:
	// a stateful box ignores a GET on a flow it never saw handshake.
	StatefulChecked bool `json:"stateful_checked,omitempty"`
	Stateful        bool `json:"stateful,omitempty"`
	// IPID is the fixed IP-identifier signature observed on injected
	// packets (Airtel's 242), 0 when none.
	IPID uint16 `json:"ipid,omitempty"`
	// CensorHop / PathHops locate the middlebox: the TTL at which the
	// iterative tracer first drew a censorship response, against the
	// traceroute hop count to the destination (Figure 1).
	CensorHop int `json:"censor_hop,omitempty"`
	PathHops  int `json:"path_hops,omitempty"`
	// DNS-side fingerprint, when the default resolver manipulates the
	// domain: the iterative DNS tracer distinguishes resolver poisoning
	// (answers only from the last hop — the paper's universal finding)
	// from on-path injection.
	DNSPoisoned bool `json:"dns_poisoned,omitempty"`
	DNSInjected bool `json:"dns_injected,omitempty"`
	ResolverHop int  `json:"resolver_hop,omitempty"`
	AnswerHop   int  `json:"answer_hop,omitempty"`
}

// Fingerprint returns the §4 middlebox-fingerprint measurement: a cheap
// censorship prescreen, then — for interfered domains only — the
// iterative network tracer (Figure 1), the remote-controlled-host
// wiretap/interceptive classification (§4.2.1), the handshake-state
// probe, the IP-ID injection signature, and the DNS tracer variant. The
// verdicts land in a FingerprintDetail.
func Fingerprint() Measurement { return fingerprintMeasurement{} }

type fingerprintMeasurement struct{}

func (fingerprintMeasurement) Kind() string { return "fingerprint" }

func (m fingerprintMeasurement) Measure(ctx context.Context, v *Vantage, domain string) Result {
	res := base(m, v, domain)
	p := v.probe
	tries := p.Attempts
	if tries <= 0 {
		tries = 4 // enough plain fetches to beat the ~30% wiretap race
	}
	if err := ctx.Err(); err != nil {
		res.Error = err.Error()
		return res
	}

	// The shared prescreen doubles as the cheap gate: unblocked domains
	// never pay for the traces below. Its capture also surfaces the
	// injection IP-ID signature.
	b, err := measureBaseline(v, domain, tries)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	det := FingerprintDetail{DNSPoisoned: b.dnsPoisoned}
	if b.sawIPID242 {
		det.IPID = 242
	}
	httpCensored := b.httpCensored
	addr := b.torAddrs[0]
	if httpCensored {
		res.Mechanism = string(b.mech)
		res.Censor = b.signatureISP
	}
	if !httpCensored && !det.DNSPoisoned {
		return res // nothing interferes: no fingerprint to take
	}
	res.Blocked = true

	if det.DNSPoisoned {
		if res.Mechanism == "" {
			res.Mechanism = MechanismDNSPoisoning
		}
		dt := probe.IterativeTraceDNS(p.ISP.Client, p.ISP.DefaultResolver, domain, p.Timeout)
		det.DNSInjected = dt.Injected
		det.ResolverHop = dt.ResolverHop
		det.AnswerHop = dt.AnswerHop
	}

	if httpCensored {
		if err := ctx.Err(); err != nil {
			res.Error = err.Error()
			res.Detail = det
			return res
		}
		// Localize the box on the path (Figure 1) and read its visibility.
		tr := probe.IterativeTraceHTTP(p.ISP.Client, addr, domain, p.Timeout)
		det.CensorHop = tr.CensorHop
		det.PathHops = tr.TotalHops
		det.Covert = tr.Covert
		det.Overt = tr.CensorHop > 0 && !tr.Covert
		det.SignatureISP = tr.SignatureISP
		if res.Censor == "" {
			res.Censor = tr.SignatureISP
		}

		// Wiretap vs interceptive via a remote controlled host (§4.2.1).
		det.BoxType = "unknown"
		for _, vp := range v.world.VPs {
			if err := ctx.Err(); err != nil {
				res.Error = err.Error()
				res.Detail = det
				return res
			}
			cls := p.ClassifyMiddlebox(domain, vp, tries)
			if cls.ClientSawCensorship {
				det.BoxType = cls.Type
				break
			}
		}

		// Handshake-state probe: a lone GET on a never-handshaked flow,
		// expiring one hop short of the server so only a box can answer.
		// Meaningful only when the traceroute pinned the path length.
		if det.PathHops > 1 {
			det.StatefulChecked = true
			det.Stateful = !p.NoHandshakeTriggers(domain, addr, det.PathHops)
		}
	}
	res.Detail = det
	return res
}
