// Quickstart: build the simulated Indian Internet, point a probe at one
// ISP, and detect censorship of a handful of potentially blocked websites
// the way the paper's own scripts do — HTTP diff against a Tor fetch, then
// verification of everything over the 0.3 threshold.
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	// A reduced world keeps the quickstart fast; swap in
	// core.DefaultWorldConfig() for the full 1200-site population.
	w := core.NewWorld(core.SmallWorldConfig())
	fmt.Printf("world: %v\n\n", w.Net)

	p := core.NewProbe(w, "Idea")
	fmt.Println("Scanning the first 25 potentially blocked websites from inside Idea:")
	blocked := 0
	for _, domain := range w.Catalog.PBWDomains()[:25] {
		det := p.DetectHTTP(domain)
		switch {
		case det.Blocked && det.Notification:
			fmt.Printf("  BLOCKED   %-28s (notification from %s)\n", domain, det.SignatureISP)
			blocked++
		case det.Blocked:
			fmt.Printf("  BLOCKED   %-28s (connection killed)\n", domain)
			blocked++
		case det.OverThreshold:
			fmt.Printf("  suspect   %-28s (diff %.2f, cleared by manual check)\n", domain, det.Diff)
		default:
			fmt.Printf("  ok        %-28s (diff %.2f)\n", domain, det.Diff)
		}
	}
	fmt.Printf("\n%d of 25 confirmed blocked.\n", blocked)

	// The same client never sees TCP/IP filtering — like the paper.
	if !p.DetectTCP(w.Catalog.PBWDomains()[0]) {
		fmt.Println("TCP/IP filtering: none detected (matches §3.3).")
	}
}
