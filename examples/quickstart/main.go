// Quickstart: build the simulated Indian Internet, run a small censorship
// campaign through the public censor API — the paper's HTTP detection
// pipeline from one ISP vantage — and stream the uniform results as they
// arrive.
package main

import (
	"context"
	"fmt"
	"os"

	"repro/censor"
)

func main() {
	ctx := context.Background()

	// Worlds are built from scenario specs; "small" is the paper's world
	// at reduced scale ("paper-2018" is the full 1200-site population,
	// and censor.Scenarios() lists every other preset). Custom worlds are
	// plain censor.Scenario values — see examples/custom_scenario.
	sess, err := censor.NewSession(ctx, censor.WithScenario(censor.MustLookupScenario("small")))
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("world: %v\n\n", sess.World().Net)

	fmt.Println("Scanning the first 25 potentially blocked websites from inside Idea:")
	stream, err := sess.Run(ctx, censor.Campaign{
		Domains:      sess.PBWDomains()[:25],
		Measurements: []censor.Measurement{censor.HTTP()},
	}, censor.WithVantages("Idea"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	blocked := 0
	for res := range stream.Results() {
		switch {
		case res.Blocked && res.Mechanism == censor.MechanismNotification:
			fmt.Printf("  BLOCKED   %-28s (notification from %s)\n", res.Domain, res.Censor)
			blocked++
		case res.Blocked:
			fmt.Printf("  BLOCKED   %-28s (%s)\n", res.Domain, res.Mechanism)
			blocked++
		case res.Diff >= censor.DiffThreshold:
			fmt.Printf("  suspect   %-28s (diff %.2f, cleared by manual check)\n", res.Domain, res.Diff)
		default:
			fmt.Printf("  ok        %-28s (diff %.2f)\n", res.Domain, res.Diff)
		}
	}
	if err := stream.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n%d of 25 confirmed blocked.\n", blocked)

	// The same vantage never sees TCP/IP filtering — like the paper.
	results, err := sess.Measure(ctx, "Idea", censor.TCP(), sess.PBWDomains()[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	if !results[0].Blocked {
		fmt.Println("TCP/IP filtering: none detected (matches §3.3).")
	} else {
		fmt.Println("TCP/IP filtering detected — unexpected for this world.")
	}

	// Campaigns also stream into pluggable sinks. Detectors resolve by
	// name from the registry (censor.Names() lists all of them, including
	// any you censor.Register yourself), and the aggregate sink folds the
	// stream into the paper's summary shapes.
	dns, _ := censor.Lookup("dns")
	http, _ := censor.Lookup("http")
	stream, err = sess.Run(ctx, censor.Campaign{
		Domains:      sess.PBWDomains()[:25],
		Measurements: []censor.Measurement{dns, http},
	}, censor.WithVantages("MTNL", "Idea"), censor.WithWorkers(4))
	if err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	agg := censor.NewAggregateSink()
	if err := stream.Drain(agg); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(agg.Summary())
}
