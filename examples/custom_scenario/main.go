// Example custom_scenario builds a world the paper never measured, purely
// through the public scenario API: two ISPs — a wiretap censor with its
// own notification page, and a clean ISP reaching the web through that
// censor's transit (so it inherits collateral blocking) — then runs a
// campaign over both and aggregates the verdicts.
//
// The same spec works as JSON (the program prints it): save it to a file
// and run `censorscan -scenario world.json -measure http -format summary`.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/censor"
)

func main() {
	world := censor.Scenario{
		Name:        "two-isp-demo",
		Description: "a wiretap censor and a clean customer riding its transit",
		Seed:        42, PBWSites: 240, AlexaSites: 100, VantagePoints: 8, Pods: 40,
		ISPs: []censor.ISPSpec{
			{
				Name: "FilterNet", Mechanism: "wiretap",
				Edges: 6, Borders: 8,
				Middleboxes: 6, InboundMiddleboxes: 4,
				Consistency: 0.6, HTTPBlocklist: 120,
				WiretapLossProb: 0.3,
				Notification: censor.NotifSpec{
					Body:         "<html><body>Access denied by FilterNet acceptable-use policy</body></html>",
					MimicHeaders: true,
				},
			},
			{
				Name: "OpenNet", Mechanism: "none",
				Edges: 3,
				Transits: []censor.TransitSpec{
					{Provider: "FilterNet", Region: "ALL", Collateral: 40},
				},
			},
		},
	}

	// The spec is plain data: print the JSON an external caller would
	// feed to censorscan -scenario.
	spec, _ := json.MarshalIndent(world, "", "  ")
	fmt.Printf("scenario spec:\n%s\n\n", spec)

	ctx := context.Background()
	sess, err := censor.NewSession(ctx, censor.WithScenario(world))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	stream, err := sess.Run(ctx, censor.Campaign{
		Domains:      sess.PBWDomains()[:80],
		Measurements: []censor.Measurement{censor.HTTP(), censor.DNS()},
	}, censor.WithWorkers(2))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	agg := censor.NewAggregateSink()
	if err := stream.Drain(agg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(agg.Summary())
	fmt.Println()
	fmt.Println("FilterNet blocks its subscribers directly; OpenNet is clean on paper,")
	fmt.Println("but its transit crosses FilterNet's peering middlebox — the same")
	fmt.Println("collateral-damage mechanism the paper measured between Indian ISPs.")
}
